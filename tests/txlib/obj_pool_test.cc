#include "txlib/obj_pool.hh"

#include <gtest/gtest.h>

namespace pmtest::txlib
{
namespace
{

class ObjPoolTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }

    /** Start PMTest so library traces are checked. */
    void
    startPmtest()
    {
        pmtestInit(Config{});
        pmtestThreadInit();
        pmtestStart();
    }

    core::Report
    finishPmtest()
    {
        pmtestSendTrace();
        auto report = pmtestResults();
        pmtestEnd();
        pmtestExit();
        return report;
    }
};

TEST_F(ObjPoolTest, RootObjectIsStableAndZeroed)
{
    ObjPool pool(1 << 20);
    struct R { uint64_t a, b; };
    R *r1 = pool.root<R>();
    EXPECT_EQ(r1->a, 0u);
    EXPECT_EQ(r1->b, 0u);
    r1->a = 5;
    R *r2 = pool.root<R>();
    EXPECT_EQ(r1, r2);
    EXPECT_EQ(r2->a, 5u);
}

TEST_F(ObjPoolTest, CommittedTransactionPersistsInPlace)
{
    ObjPool pool(1 << 20);
    auto *x = static_cast<uint64_t *>(pool.allocRaw(8));
    *x = 1;

    pool.txBegin();
    pool.txAdd(x, 8);
    pool.txAssign<uint64_t>(x, 42);
    pool.txCommit();
    EXPECT_EQ(*x, 42u);
}

TEST_F(ObjPoolTest, TransactionTracePassesCheckers)
{
    // A correct transaction produces no findings under PMTest,
    // including with the TX checkers wrapped around it.
    ObjPool pool(1 << 20);
    auto *x = static_cast<uint64_t *>(pool.allocRaw(8));

    startPmtest();
    PMTEST_TX_CHECKER_START();
    pool.txBegin();
    pool.txAdd(x, 8);
    pool.txAssign<uint64_t>(x, 42);
    pool.txCommit();
    PMTEST_TX_CHECKER_END();
    const auto report = finishPmtest();
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST_F(ObjPoolTest, MissingTxAddDetected)
{
    ObjPool pool(1 << 20);
    auto *x = static_cast<uint64_t *>(pool.allocRaw(8));

    startPmtest();
    pool.txBegin();
    pool.txAssign<uint64_t>(x, 42); // no txAdd: bug
    pool.txCommit();
    const auto report = finishPmtest();
    EXPECT_GE(report.failCount(), 1u);
    EXPECT_EQ(report.findings()[0].kind, core::FindingKind::MissingLog);
}

TEST_F(ObjPoolTest, TxAllocCoversFreshObjects)
{
    ObjPool pool(1 << 20);

    startPmtest();
    pool.txBegin();
    auto *fresh = pool.txAlloc<uint64_t>();
    pool.txAssign<uint64_t>(fresh, 7); // no explicit txAdd needed
    pool.txCommit();
    const auto report = finishPmtest();
    EXPECT_TRUE(report.passed()) << report.str();
}

TEST_F(ObjPoolTest, TxAddDedupSkipsSecondSnapshot)
{
    ObjPool pool(1 << 20);
    auto *x = static_cast<uint64_t *>(pool.allocRaw(8));

    startPmtest();
    pool.txBegin();
    pool.txAdd(x, 8);
    pool.txAdd(x, 8); // deduplicated: no WARN
    pool.txAssign<uint64_t>(x, 1);
    pool.txCommit();
    const auto report = finishPmtest();
    EXPECT_EQ(report.warnCount(), 0u) << report.str();
}

TEST_F(ObjPoolTest, TxAddDupModelsHistoricalDoubleLog)
{
    ObjPool pool(1 << 20);
    auto *x = static_cast<uint64_t *>(pool.allocRaw(8));

    startPmtest();
    pool.txBegin();
    pool.txAdd(x, 8);
    pool.txAddDup(x, 8); // forced duplicate: WARN
    pool.txAssign<uint64_t>(x, 1);
    pool.txCommit();
    const auto report = finishPmtest();
    EXPECT_EQ(report.warnCount(), 1u);
    EXPECT_EQ(report.findings()[0].kind,
              core::FindingKind::DuplicateLog);
}

TEST_F(ObjPoolTest, NestedTransactionPersistsAtOutermostEnd)
{
    // §7.1: updates are only guaranteed persistent when the
    // *outermost* transaction ends. A TX checker around the inner
    // transaction FAILs; around the outer transaction it passes.
    ObjPool pool(1 << 20);
    auto *x = static_cast<uint64_t *>(pool.allocRaw(8));

    startPmtest();
    PMTEST_TX_CHECKER_START();
    pool.txBegin(); // outer
    pool.txAdd(x, 8);
    pool.txBegin(); // inner
    pool.txAssign<uint64_t>(x, 9);
    pool.txCommit(); // inner end: nothing flushed yet
    pool.txCommit(); // outer end: flush + fence
    PMTEST_TX_CHECKER_END();
    const auto outer_report = finishPmtest();
    EXPECT_TRUE(outer_report.passed()) << outer_report.str();

    startPmtest();
    PMTEST_TX_CHECKER_START();
    pool.txBegin();
    pool.txAdd(x, 8);
    pool.txBegin();
    pool.txAssign<uint64_t>(x, 10);
    pool.txCommit();
    PMTEST_TX_CHECKER_END(); // inner checker: updates NOT persistent
    pool.txCommit();
    const auto inner_report = finishPmtest();
    EXPECT_GE(inner_report.failCount(), 1u);
}

TEST_F(ObjPoolTest, SkipCommitFlushBugDetected)
{
    ObjPool pool(1 << 20);
    pool.bugs.skipCommitFlush = true;
    auto *x = static_cast<uint64_t *>(pool.allocRaw(8));

    startPmtest();
    PMTEST_TX_CHECKER_START();
    pool.txBegin();
    pool.txAdd(x, 8);
    pool.txAssign<uint64_t>(x, 42);
    pool.txCommit();
    PMTEST_TX_CHECKER_END();
    const auto report = finishPmtest();
    EXPECT_GE(report.failCount(), 1u);
    bool incomplete = false;
    for (const auto &f : report.findings())
        incomplete |= f.kind == core::FindingKind::IncompleteTx;
    EXPECT_TRUE(incomplete) << report.str();
}

TEST_F(ObjPoolTest, RecoveryRollsBackInterruptedTransaction)
{
    ObjPool pool(1 << 20);
    auto *x = static_cast<uint64_t *>(pool.allocRaw(8));
    *x = 11;

    // Simulate a crash mid-transaction: snapshot, modify, then take
    // the image WITHOUT committing.
    pool.txBegin();
    pool.txAdd(x, 8);
    pool.txAssign<uint64_t>(x, 99);

    std::vector<uint8_t> image(pool.pmPool().base(),
                               pool.pmPool().base() +
                                   pool.pmPool().size());
    EXPECT_TRUE(imageLogValid(image));
    const size_t applied = recoverImage(image);
    EXPECT_GE(applied, 1u);

    uint64_t recovered;
    std::memcpy(&recovered,
                image.data() + pool.pmPool().offsetOf(x),
                sizeof(recovered));
    EXPECT_EQ(recovered, 11u) << "rolled back to the snapshot";
    EXPECT_FALSE(imageLogValid(image)) << "recovery is idempotent";

    pool.txCommit();
}

TEST_F(ObjPoolTest, RecoveryAfterCommitIsNoOp)
{
    ObjPool pool(1 << 20);
    auto *x = static_cast<uint64_t *>(pool.allocRaw(8));
    *x = 11;

    pool.txBegin();
    pool.txAdd(x, 8);
    pool.txAssign<uint64_t>(x, 99);
    pool.txCommit();

    std::vector<uint8_t> image(pool.pmPool().base(),
                               pool.pmPool().base() +
                                   pool.pmPool().size());
    EXPECT_FALSE(imageLogValid(image));
    EXPECT_EQ(recoverImage(image), 0u);

    uint64_t value;
    std::memcpy(&value, image.data() + pool.pmPool().offsetOf(x),
                sizeof(value));
    EXPECT_EQ(value, 99u);
}

TEST_F(ObjPoolTest, LargeTxAddSplitsAcrossEntries)
{
    ObjPool pool(1 << 20);
    constexpr size_t kBig = 1000; // > LogEntry::kMaxData
    auto *buf = static_cast<uint8_t *>(pool.allocRaw(kBig));
    std::memset(buf, 0x11, kBig);

    pool.txBegin();
    pool.txAdd(buf, kBig);
    std::vector<uint8_t> updated(kBig, 0x22);
    pool.txWrite(buf, updated.data(), kBig);

    std::vector<uint8_t> image(pool.pmPool().base(),
                               pool.pmPool().base() +
                                   pool.pmPool().size());
    recoverImage(image);
    for (size_t i = 0; i < kBig; i++) {
        ASSERT_EQ(image[pool.pmPool().offsetOf(buf) + i], 0x11)
            << "byte " << i;
    }
    pool.txCommit();
}

} // namespace
} // namespace pmtest::txlib
