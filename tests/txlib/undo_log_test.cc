#include "txlib/undo_log.hh"

#include <gtest/gtest.h>

#include <cstring>

namespace pmtest::txlib
{
namespace
{

/** Hand-build a minimal pool image with a log. */
class UndoLogImageTest : public ::testing::Test
{
  protected:
    static constexpr size_t kImageSize = 64 * 1024;
    static constexpr uint64_t kLogOffset = 2048;
    static constexpr uint64_t kLogSize = 16 * 1024;

    void
    SetUp() override
    {
        image_.assign(kImageSize, 0);
        PoolHeader header;
        header.magic = PoolHeader::kMagic;
        header.logOffset = kLogOffset;
        header.logSize = kLogSize;
        std::memcpy(image_.data(), &header, sizeof(header));
    }

    void
    setLogHeader(uint64_t valid, uint64_t count)
    {
        LogHeader log;
        log.valid = valid;
        log.entryCount = count;
        std::memcpy(image_.data() + kLogOffset, &log, sizeof(log));
    }

    void
    setEntry(uint64_t index, uint64_t kind, uint64_t offset,
             uint64_t size, uint8_t fill)
    {
        LogEntry entry;
        entry.kind = kind;
        entry.offset = offset;
        entry.size = size;
        std::memset(entry.data, fill, std::min(size, LogEntry::kMaxData));
        std::memcpy(image_.data() + kLogOffset + logEntryOffset(index),
                    &entry, sizeof(entry));
    }

    std::vector<uint8_t> image_;
};

TEST_F(UndoLogImageTest, InvalidMagicIsIgnored)
{
    image_[0] ^= 0xff;
    setLogHeader(1, 1);
    EXPECT_FALSE(imageLogValid(image_));
    EXPECT_EQ(recoverImage(image_), 0u);
}

TEST_F(UndoLogImageTest, CleanLogNeedsNoRecovery)
{
    setLogHeader(0, 0);
    EXPECT_FALSE(imageLogValid(image_));
    EXPECT_EQ(recoverImage(image_), 0u);
}

TEST_F(UndoLogImageTest, SnapshotsAppliedInReverse)
{
    // Two snapshots of the same location: the older one (entry 0)
    // must win, restoring pre-transaction data.
    constexpr uint64_t kTarget = 32 * 1024;
    setLogHeader(1, 2);
    setEntry(0, LogEntry::Snapshot, kTarget, 8, 0xAA); // oldest
    setEntry(1, LogEntry::Snapshot, kTarget, 8, 0xBB);
    std::memset(image_.data() + kTarget, 0xCC, 8); // current (dirty)

    EXPECT_EQ(recoverImage(image_), 2u);
    EXPECT_EQ(image_[kTarget], 0xAA);
    EXPECT_FALSE(imageLogValid(image_));
}

TEST_F(UndoLogImageTest, AllocEntriesAreSkipped)
{
    constexpr uint64_t kTarget = 32 * 1024;
    setLogHeader(1, 1);
    setEntry(0, LogEntry::Alloc, kTarget, 8, 0x00);
    std::memset(image_.data() + kTarget, 0xCC, 8);

    EXPECT_EQ(recoverImage(image_), 0u);
    EXPECT_EQ(image_[kTarget], 0xCC) << "alloc entries restore nothing";
}

TEST_F(UndoLogImageTest, TornEntryIsSkipped)
{
    // An entry whose size field is corrupt must not be applied.
    setLogHeader(1, 1);
    setEntry(0, LogEntry::Snapshot, 32 * 1024,
             LogEntry::kMaxData + 999, 0xAA);
    EXPECT_EQ(recoverImage(image_), 0u);
}

TEST_F(UndoLogImageTest, OutOfBoundsTargetIsSkipped)
{
    setLogHeader(1, 1);
    setEntry(0, LogEntry::Snapshot, kImageSize - 4, 8, 0xAA);
    EXPECT_EQ(recoverImage(image_), 0u);
}

TEST(UndoLogLayoutTest, CapacityMath)
{
    const uint64_t cap = logCapacity(1 << 20);
    EXPECT_GT(cap, 3000u);
    EXPECT_EQ(logEntryOffset(0), sizeof(LogHeader));
    EXPECT_EQ(logEntryOffset(2),
              sizeof(LogHeader) + 2 * sizeof(LogEntry));
}

} // namespace
} // namespace pmtest::txlib
