/**
 * @file
 * A subtle x86 persistency fact, pinned as a test: skipping the fence
 * between the commit flushes and the log retirement is NOT detectable
 * as a durability bug, because sfence is global — the retirement's
 * own fence completes the data writebacks too. (It is still an
 * ordering hazard between data and log-retire, which undo logging
 * tolerates: recovery of a retired log is a no-op.) This documents
 * why the Table 5 completion class uses skipCommitFlush, not
 * skipCommitFence.
 */

#include <gtest/gtest.h>

#include "txlib/obj_pool.hh"

namespace pmtest::txlib
{
namespace
{

class CommitFenceTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }
};

TEST_F(CommitFenceTest, SkippedCommitFenceIsMaskedByRetireFence)
{
    ObjPool pool(1 << 20);
    pool.bugs.skipCommitFence = true;
    auto *x = static_cast<uint64_t *>(pool.allocRaw(8));

    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    PMTEST_TX_CHECKER_START();
    pool.txBegin();
    pool.txAdd(x, 8);
    pool.txAssign<uint64_t>(x, 3);
    pool.txCommit();
    PMTEST_TX_CHECKER_END();
    pmtestSendTrace();

    const auto report = pmtestResults();
    EXPECT_TRUE(report.passed())
        << "the log-retire sfence completes the data writebacks: "
        << report.str();
}

TEST_F(CommitFenceTest, SkippedCommitFlushIsNotMasked)
{
    // The contrast: without the writebacks there is nothing for the
    // retire fence to complete, so the bug is visible.
    ObjPool pool(1 << 20);
    pool.bugs.skipCommitFlush = true;
    auto *x = static_cast<uint64_t *>(pool.allocRaw(8));

    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    PMTEST_TX_CHECKER_START();
    pool.txBegin();
    pool.txAdd(x, 8);
    pool.txAssign<uint64_t>(x, 3);
    pool.txCommit();
    PMTEST_TX_CHECKER_END();
    pmtestSendTrace();

    const auto report = pmtestResults();
    EXPECT_FALSE(report.passed());
}

} // namespace
} // namespace pmtest::txlib
