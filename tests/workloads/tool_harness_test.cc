/**
 * @file
 * The tool harness itself: framework lifecycle around runs, staged
 * setup exclusion from tracking, the DBI flag protocol, and finding
 * propagation into RunResult.
 */

#include <gtest/gtest.h>

#include "baseline/pmemcheck.hh"
#include "workloads/tool_harness.hh"

namespace pmtest::workloads
{
namespace
{

class ToolHarnessTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
        baseline::setDbiActive(false);
    }
};

TEST_F(ToolHarnessTest, NativeRunsWithoutFramework)
{
    bool checkers_flag = true;
    const auto result = runUnderTool(Tool::Native, [&](bool checkers) {
        checkers_flag = checkers;
        EXPECT_FALSE(pmtestInitialized());
    });
    EXPECT_FALSE(checkers_flag);
    EXPECT_GE(result.seconds, 0.0);
    EXPECT_EQ(result.opsRecorded, 0u);
}

TEST_F(ToolHarnessTest, PmtestRunTracksAndReports)
{
    alignas(64) static uint64_t cell;
    const auto result = runUnderTool(Tool::PMTest, [](bool checkers) {
        EXPECT_TRUE(checkers);
        uint64_t v = 1;
        pmStore(&cell, &v, sizeof(cell)); // never flushed
        pmtestIsPersist(&cell, sizeof(cell));
    });
    EXPECT_EQ(result.failCount, 1u);
    EXPECT_EQ(result.opsRecorded, 2u);
    EXPECT_FALSE(pmtestInitialized()) << "harness cleans up";
}

TEST_F(ToolHarnessTest, NoCheckVariantDisablesAnnotations)
{
    bool checkers_flag = true;
    runUnderTool(Tool::PMTestNoCheck,
                 [&](bool checkers) { checkers_flag = checkers; });
    EXPECT_FALSE(checkers_flag);
}

TEST_F(ToolHarnessTest, StagedSetupIsUntracked)
{
    alignas(64) static uint64_t cell;
    const auto result = runStaged(Tool::PMTest, [](bool) {
        // Setup phase: PM ops here must not be traced.
        uint64_t v = 7;
        pmStore(&cell, &v, sizeof(cell));
        return [] {
            uint64_t w = 8;
            pmStore(&cell, &w, sizeof(cell));
            PMTEST_CLWB(&cell, sizeof(cell));
            PMTEST_SFENCE();
        };
    });
    EXPECT_EQ(result.opsRecorded, 3u)
        << "only the run closure's three ops are traced";
    EXPECT_EQ(result.failCount, 0u);
}

TEST_F(ToolHarnessTest, DbiFlagSetDuringPmemcheckRunOnly)
{
    EXPECT_FALSE(baseline::dbiActive());
    bool seen_during_run = false;
    runUnderTool(Tool::Pmemcheck, [&](bool) {
        seen_during_run = baseline::dbiActive();
    });
    EXPECT_TRUE(seen_during_run);
    EXPECT_FALSE(baseline::dbiActive()) << "restored after the run";

    runUnderTool(Tool::PMTest,
                 [&](bool) { seen_during_run = baseline::dbiActive(); });
    EXPECT_FALSE(seen_during_run);
}

TEST_F(ToolHarnessTest, PmemcheckFindingsPropagate)
{
    alignas(64) static uint64_t cell;
    const auto result =
        runUnderTool(Tool::Pmemcheck, [](bool) {
            uint64_t v = 1;
            pmStore(&cell, &v, sizeof(cell)); // unflushed at exit
        });
    EXPECT_GE(result.failCount, 1u);
}

TEST_F(ToolHarnessTest, InlineVariantUsesZeroWorkers)
{
    const auto result = runUnderTool(Tool::PMTestInline, [](bool) {
        alignas(64) static uint64_t cell;
        uint64_t v = 1;
        pmStore(&cell, &v, sizeof(cell));
        PMTEST_CLWB(&cell, sizeof(cell));
        PMTEST_SFENCE();
    });
    EXPECT_EQ(result.failCount, 0u);
    EXPECT_EQ(result.traces, 1u);
}

TEST_F(ToolHarnessTest, ToolNamesAreDistinct)
{
    EXPECT_STREQ(toolName(Tool::Native), "native");
    EXPECT_STREQ(toolName(Tool::PMTest), "pmtest");
    EXPECT_STREQ(toolName(Tool::PMTestNoCheck), "pmtest-nocheck");
    EXPECT_STREQ(toolName(Tool::PMTestInline), "pmtest-inline");
    EXPECT_STREQ(toolName(Tool::Pmemcheck), "pmemcheck");
}

} // namespace
} // namespace pmtest::workloads
