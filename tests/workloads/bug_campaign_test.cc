#include "workloads/bug_injector.hh"

#include <gtest/gtest.h>

namespace pmtest::workloads
{
namespace
{

TEST(BugCampaignTest, Table5Has42Cases)
{
    const auto cases = buildTable5Campaign();
    EXPECT_EQ(cases.size(), 42u);

    std::map<std::string, size_t> per_category;
    for (const auto &c : cases)
        per_category[c.category]++;
    // The paper's Table 5 row counts.
    EXPECT_EQ(per_category["ordering"], 4u);
    EXPECT_EQ(per_category["writeback"], 6u);
    EXPECT_EQ(per_category["perf-writeback"], 2u);
    EXPECT_EQ(per_category["backup"], 19u);
    EXPECT_EQ(per_category["completion"], 7u);
    EXPECT_EQ(per_category["perf-log"], 4u);
}

TEST(BugCampaignTest, CaseIdsAreUnique)
{
    const auto cases = buildTable5Campaign();
    std::set<std::string> ids;
    for (const auto &c : cases)
        EXPECT_TRUE(ids.insert(c.id).second) << "duplicate " << c.id;
}

TEST(BugCampaignTest, AllTable5BugsDetected)
{
    const auto outcome = runCampaign(buildTable5Campaign());
    EXPECT_EQ(outcome.total, 42u);
    std::string missed;
    for (const auto &id : outcome.missed)
        missed += id + " ";
    EXPECT_EQ(outcome.detected, outcome.total)
        << "missed: " << missed;
}

TEST(BugCampaignTest, AllTable6BugsDetected)
{
    const auto cases = buildTable6Campaign();
    EXPECT_EQ(cases.size(), 6u);
    const auto outcome = runCampaign(cases);
    std::string missed;
    for (const auto &id : outcome.missed)
        missed += id + " ";
    EXPECT_EQ(outcome.detected, 6u) << "missed: " << missed;
    EXPECT_EQ(outcome.byCategory.at("known").second, 3u);
    EXPECT_EQ(outcome.byCategory.at("new").second, 3u);
}

TEST(BugCampaignTest, CleanRunsProduceNoFalsePositives)
{
    // Sanity inverse: the same workloads with no fault knob set must
    // not produce the findings the campaign looks for.
    const auto cases = buildTable5Campaign();
    // Spot-check one case per category by re-running its fault-free
    // sibling via the public microbench/servers paths — covered by
    // MapCleanRunTest and ServersTest; here just assert the campaign
    // cases themselves declare distinct expectations.
    std::set<core::FindingKind> kinds;
    for (const auto &c : cases)
        kinds.insert(c.expected);
    EXPECT_GE(kinds.size(), 5u);
}

} // namespace
} // namespace pmtest::workloads
