/**
 * @file
 * The load-generating clients: deterministic from their seed, with
 * the op mixes Table 4 prescribes, and runnable against their
 * servers without findings.
 */

#include <gtest/gtest.h>

#include "core/api.hh"
#include "workloads/clients.hh"

namespace pmtest::workloads
{
namespace
{

class ClientsTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }
};

TEST_F(ClientsTest, MemslapIsSetLight)
{
    // 5% sets: the store should hold far fewer keys than ops.
    mnemosyne::Region region(32 << 20);
    MemcachedLite server(region);
    ClientConfig config;
    config.ops = 2000;
    config.keySpace = 2000;
    runMemslapClient(server, config);
    EXPECT_GT(server.count(), 20u);
    EXPECT_LT(server.count(), 400u) << "memslap is 5% SET";
}

TEST_F(ClientsTest, YcsbIsUpdateHeavy)
{
    mnemosyne::Region region(32 << 20);
    MemcachedLite server(region);
    ClientConfig config;
    config.ops = 2000;
    config.keySpace = 2000;
    runYcsbClient(server, config);
    EXPECT_GT(server.count(), 500u) << "YCSB-A is 50% update";
}

TEST_F(ClientsTest, ClientsAreDeterministic)
{
    auto run = [](uint64_t seed) {
        mnemosyne::Region region(32 << 20);
        MemcachedLite server(region);
        ClientConfig config;
        config.ops = 500;
        config.keySpace = 100;
        config.seed = seed;
        runYcsbClient(server, config);
        return server.count();
    };
    EXPECT_EQ(run(5), run(5));
    // Different seeds draw different key subsets (usually).
    EXPECT_EQ(run(5), run(5));
}

TEST_F(ClientsTest, RedisLruClientChurnsWithEviction)
{
    txlib::ObjPool pool(64 << 20);
    RedisLite server(pool, /*capacity=*/64);
    ClientConfig config;
    config.ops = 1000;
    config.keySpace = 500;
    runRedisLruClient(server, config);
    EXPECT_LE(server.count(), 64u);
    EXPECT_GT(server.evictions(), 0u);
}

TEST_F(ClientsTest, FilebenchKeepsWorkingSetBounded)
{
    pmfs::Pmfs fs(16 << 20, false, false);
    ClientConfig config;
    config.ops = 400;
    config.valueSize = 256;
    runFilebenchClient(fs, config, 3);
    EXPECT_LE(fs.fileCount(), 16u) << "per-client working set";
}

TEST_F(ClientsTest, OltpReadModifyWriteGrowsTable)
{
    pmfs::Pmfs fs(16 << 20, false, false);
    ClientConfig config;
    config.ops = 100;
    runOltpClient(fs, config, 0);
    const int ino = fs.lookup("table-0");
    ASSERT_GE(ino, 0);
    EXPECT_EQ(fs.fileSize(ino),
              pmfs::kDirectBlocks * pmfs::kBlockSize);
}

TEST_F(ClientsTest, TwoClientsOnOnePmfsVolume)
{
    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    pmfs::Pmfs fs(32 << 20, false, false);
    ClientConfig config;
    config.ops = 150;
    config.valueSize = 128;
    runFilebenchClient(fs, config, 0);
    runFilebenchClient(fs, config, 1);
    pmtestSendTrace();

    const auto report = pmtestResults();
    EXPECT_TRUE(report.clean()) << report.str();
}

} // namespace
} // namespace pmtest::workloads
