#include <gtest/gtest.h>

#include <thread>

#include "core/api.hh"
#include "workloads/clients.hh"
#include "workloads/memcached_lite.hh"
#include "workloads/microbench.hh"
#include "workloads/redis_lite.hh"
#include "workloads/tool_harness.hh"

namespace pmtest::workloads
{
namespace
{

class ServersTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }
};

TEST_F(ServersTest, MemcachedSetGetDelete)
{
    mnemosyne::Region region(16 << 20);
    MemcachedLite server(region);

    server.set("alpha", "one");
    server.set("beta", "two");
    EXPECT_EQ(server.count(), 2u);

    std::string out;
    EXPECT_TRUE(server.get("alpha", &out));
    EXPECT_EQ(out, "one");
    server.set("alpha", "uno"); // update
    EXPECT_TRUE(server.get("alpha", &out));
    EXPECT_EQ(out, "uno");
    EXPECT_EQ(server.count(), 2u);

    EXPECT_TRUE(server.del("alpha"));
    EXPECT_FALSE(server.get("alpha", &out));
    EXPECT_FALSE(server.del("alpha"));
    EXPECT_EQ(server.count(), 1u);
}

TEST_F(ServersTest, MemcachedUnderPmtestIsClean)
{
    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    mnemosyne::Region region(16 << 20);
    region.emitCheckers = true;
    MemcachedLite server(region);
    ClientConfig config;
    config.ops = 200;
    config.keySpace = 50;
    runMemslapClient(server, config);
    pmtestSendTrace();

    const auto report = pmtestResults();
    EXPECT_TRUE(report.clean()) << report.str();
    pmtestExit();
}

TEST_F(ServersTest, MemcachedMultiThreadedClients)
{
    pmtestInit(Config{.model = core::ModelKind::X86, .workers = 2});

    mnemosyne::Region region(32 << 20);
    MemcachedLite server(region);

    std::vector<std::thread> clients;
    for (uint32_t t = 0; t < 4; t++) {
        clients.emplace_back([&server, t] {
            pmtestThreadInit();
            pmtestStart();
            ClientConfig config;
            config.ops = 100;
            config.keySpace = 40;
            config.seed = 100 + t;
            runYcsbClient(server, config);
            pmtestSendTrace();
            pmtestEnd();
        });
    }
    for (auto &c : clients)
        c.join();

    const auto report = pmtestResults();
    EXPECT_TRUE(report.clean()) << report.str();
    EXPECT_GT(server.count(), 0u);
    pmtestExit();
}

TEST_F(ServersTest, RedisSetGetAndEviction)
{
    txlib::ObjPool pool(32 << 20);
    RedisLite server(pool, /*capacity=*/50);

    for (int i = 0; i < 200; i++) {
        server.set("k" + std::to_string(i),
                   "v" + std::to_string(i));
    }
    EXPECT_LE(server.count(), 50u);
    EXPECT_GT(server.evictions(), 0u);

    // Recently set keys should mostly be present.
    std::string out;
    EXPECT_TRUE(server.get("k199", &out));
    EXPECT_EQ(out, "v199");
}

TEST_F(ServersTest, RedisUnderPmtestIsClean)
{
    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    txlib::ObjPool pool(32 << 20);
    RedisLite server(pool, 100);
    server.emitCheckers = true;
    ClientConfig config;
    config.ops = 300;
    config.keySpace = 150; // forces eviction churn
    runRedisLruClient(server, config);
    pmtestSendTrace();

    const auto report = pmtestResults();
    EXPECT_TRUE(report.clean()) << report.str();
    pmtestExit();
}

TEST_F(ServersTest, FilebenchAndOltpClientsRun)
{
    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    pmfs::Pmfs fs(8 << 20, false, false);
    ClientConfig config;
    config.ops = 100;
    config.valueSize = 256;
    runFilebenchClient(fs, config, 0);
    runOltpClient(fs, config, 1);
    pmtestSendTrace();

    const auto report = pmtestResults();
    EXPECT_TRUE(report.clean()) << report.str();
    EXPECT_GT(fs.fileCount(), 0u);
    pmtestExit();
}

TEST_F(ServersTest, MicrobenchRunsUnderEveryTool)
{
    MicrobenchConfig config;
    config.kind = pmds::MapKind::Ctree;
    config.insertions = 50;
    config.valueSize = 64;

    for (Tool tool : {Tool::Native, Tool::PMTest, Tool::PMTestNoCheck,
                      Tool::PMTestInline, Tool::Pmemcheck}) {
        const auto result = runMicrobench(config, tool);
        EXPECT_EQ(result.failCount, 0u) << toolName(tool);
        EXPECT_GT(result.seconds, 0.0);
        if (tool != Tool::Native) {
            EXPECT_GT(result.opsRecorded, 0u) << toolName(tool);
        }
    }
}

TEST_F(ServersTest, MicrobenchTracksTransactionSize)
{
    MicrobenchConfig small;
    small.insertions = 20;
    small.valueSize = 64;
    MicrobenchConfig big = small;
    big.valueSize = 4096;

    const auto r_small = runMicrobench(small, Tool::PMTest);
    const auto r_big = runMicrobench(big, Tool::PMTest);
    // Bigger values -> more bytes per op but no failure either way.
    EXPECT_EQ(r_small.failCount, 0u);
    EXPECT_EQ(r_big.failCount, 0u);
}

} // namespace
} // namespace pmtest::workloads
