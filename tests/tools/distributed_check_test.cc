/**
 * @file
 * Distributed scatter/gather checking, asserted against the real
 * pmtest_check binary: --distribute=N output is byte-identical to
 * the sequential run on the seed corpus and on a multi-file set, a
 * killed worker fails the whole run naming the shard, and worker
 * mode emits a wire report instead of stdout output.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/report_io.hh"
#include "tests/tools/tool_driver.hh"

namespace
{

using pmtest::testtools::RunResult;
using pmtest::testtools::run;

/** Write the seed corpus to @p path via the real tool. */
void
seedCorpus(const std::string &path)
{
    const RunResult r =
        run(std::string(PMTEST_SEED_BIN) + " " + path);
    ASSERT_EQ(r.exitCode, 0) << r.stderrText;
}

std::string
tempName(const char *name)
{
    return testing::TempDir() + "dist_" + std::to_string(getpid()) +
           "_" + name;
}

TEST(DistributedCheckTest, MatchesSequentialOnSeedCorpus)
{
    const std::string corpus = tempName("corpus.trace");
    seedCorpus(corpus);

    const std::string check = PMTEST_CHECK_BIN;
    const RunResult sequential = run(check + " " + corpus);
    const RunResult distributed =
        run(check + " --distribute=4 " + corpus);

    EXPECT_EQ(sequential.exitCode, 1) << "seed corpus has FAILs";
    EXPECT_EQ(distributed.exitCode, sequential.exitCode);
    EXPECT_EQ(distributed.stdoutText, sequential.stdoutText);
    EXPECT_TRUE(distributed.stderrText.empty())
        << distributed.stderrText;
    std::remove(corpus.c_str());
}

TEST(DistributedCheckTest, MatchesSequentialOnMultiFileSet)
{
    // Three input files; distinct paths, fileId assigned by position.
    std::vector<std::string> files;
    for (const char *name :
         {"multi_a.trace", "multi_b.trace", "multi_c.trace"}) {
        files.push_back(tempName(name));
        seedCorpus(files.back());
    }
    std::string args;
    for (const std::string &f : files)
        args += " " + f;

    const std::string check = PMTEST_CHECK_BIN;
    const RunResult sequential = run(check + args);
    // More workers than files: the surplus shard must be harmless.
    for (const char *n : {"2", "4"}) {
        const RunResult distributed =
            run(check + " --distribute=" + n + args);
        EXPECT_EQ(distributed.exitCode, sequential.exitCode) << n;
        EXPECT_EQ(distributed.stdoutText, sequential.stdoutText)
            << "--distribute=" << n;
    }
    for (const std::string &f : files)
        std::remove(f.c_str());
}

TEST(DistributedCheckTest, KilledWorkerFailsTheRunNamingTheShard)
{
    const std::string corpus = tempName("kill.trace");
    seedCorpus(corpus);

    const RunResult r = run("PMTEST_WORKER_FAIL=1 " +
                            std::string(PMTEST_CHECK_BIN) +
                            " --distribute=3 " + corpus);
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_NE(r.stderrText.find("distributed check failed"),
              std::string::npos)
        << r.stderrText;
    EXPECT_NE(r.stderrText.find("worker 1/3"), std::string::npos)
        << r.stderrText;
    std::remove(corpus.c_str());
}

TEST(DistributedCheckTest, WorkerModeEmitsWireReportNotStdout)
{
    const std::string corpus = tempName("worker.trace");
    seedCorpus(corpus);
    const std::string report = tempName("worker.report");

    const RunResult r = run(std::string(PMTEST_CHECK_BIN) +
                            " --worker=0/2 --report-out=" + report +
                            " " + corpus);
    EXPECT_TRUE(r.exitCode == 0 || r.exitCode == 1) << r.exitCode;
    EXPECT_TRUE(r.stdoutText.empty()) << r.stdoutText;

    pmtest::core::Report part;
    pmtest::core::ReportMeta meta;
    std::string error;
    ASSERT_TRUE(
        pmtest::core::loadReportFile(report, &part, &meta, &error))
        << error;
    EXPECT_EQ(meta.workerIndex, 0u);
    EXPECT_EQ(meta.workerCount, 2u);
    std::remove(corpus.c_str());
    std::remove(report.c_str());
}

TEST(DistributedCheckTest, ReportOutKeepsAndMergesWorkerReports)
{
    const std::string corpus = tempName("gather.trace");
    seedCorpus(corpus);
    const std::string report = tempName("gather.report");

    const RunResult r = run(std::string(PMTEST_CHECK_BIN) +
                            " --distribute=2 --quiet --report-out=" +
                            report + " " + corpus);
    EXPECT_EQ(r.exitCode, 1);

    // The merged report plus one kept wire report per worker.
    pmtest::core::Report merged;
    pmtest::core::ReportMeta meta;
    std::string error;
    ASSERT_TRUE(
        pmtest::core::loadReportFile(report, &merged, &meta, &error))
        << error;
    EXPECT_GT(merged.failCount(), 0u);
    EXPECT_EQ(meta.workerCount, 2u);
    for (int i = 0; i < 2; i++) {
        const std::string part = report + "." + std::to_string(i);
        pmtest::core::Report worker;
        EXPECT_TRUE(pmtest::core::loadReportFile(part, &worker,
                                                 nullptr, &error))
            << error;
        std::remove(part.c_str());
    }
    std::remove(corpus.c_str());
    std::remove(report.c_str());
}

} // namespace
