/**
 * @file
 * The uniform flag-error contract, asserted against the real
 * binaries: every unknown flag and every malformed value makes
 * pmtest_check, pmtest_recall and pmtest_seed_corpus print a
 * diagnostic plus their usage text to stderr and exit 2, and --help
 * prints usage to stdout and exits 0. Binary paths are injected by
 * CMake (PMTEST_*_BIN).
 */

#include <gtest/gtest.h>

#include <string>

#include "tests/tools/tool_driver.hh"

namespace
{

using pmtest::testtools::RunResult;
using pmtest::testtools::run;

void
expectUsageError(const std::string &bin, const std::string &args,
                 const std::string &needle)
{
    const RunResult r = run(bin + " " + args);
    EXPECT_EQ(r.exitCode, 2) << bin << " " << args;
    EXPECT_NE(r.stderrText.find("usage:"), std::string::npos)
        << bin << " " << args << " stderr: " << r.stderrText;
    EXPECT_NE(r.stderrText.find(needle), std::string::npos)
        << bin << " " << args << " stderr: " << r.stderrText;
}

const char *const kAllBins[] = {PMTEST_CHECK_BIN, PMTEST_RECALL_BIN,
                                PMTEST_SEED_BIN};

TEST(UsageErrorsTest, UnknownFlagExitsTwoOnEveryTool)
{
    for (const char *bin : kAllBins)
        expectUsageError(bin, "--no-such-flag",
                         "unknown option '--no-such-flag'");
}

TEST(UsageErrorsTest, HelpExitsZeroOnEveryTool)
{
    for (const char *bin : kAllBins) {
        const RunResult r = run(std::string(bin) + " --help");
        EXPECT_EQ(r.exitCode, 0) << bin;
        EXPECT_NE(r.stdoutText.find("usage:"), std::string::npos)
            << bin;
        EXPECT_TRUE(r.stderrText.empty()) << bin;
    }
}

TEST(UsageErrorsTest, CheckRejectsBadValues)
{
    const std::string bin = PMTEST_CHECK_BIN;
    expectUsageError(bin, "--workers=abc x.trace",
                     "invalid value for --workers: 'abc'");
    expectUsageError(bin, "--max-findings= x.trace",
                     "invalid value for --max-findings: ''");
    expectUsageError(bin, "--model=sparc x.trace",
                     "(choices: x86, hops, arm)");
    expectUsageError(bin, "--metrics-port=99999 x.trace",
                     "(max 65535)");
    expectUsageError(bin, "--quiet=1 x.trace",
                     "--quiet takes no value");
    expectUsageError(bin, "", "usage:"); // missing positional
}

TEST(UsageErrorsTest, CheckRejectsBadDistributedSpecs)
{
    const std::string bin = PMTEST_CHECK_BIN;
    expectUsageError(bin, "--worker=nonsense x.trace",
                     "invalid value for --worker: 'nonsense'");
    expectUsageError(bin, "--worker=3/2 --report-out=r x.trace",
                     "out of range");
    expectUsageError(bin, "--worker=0/2 x.trace",
                     "--worker needs --report-out=FILE");
    expectUsageError(bin, "--distribute=abc x.trace",
                     "invalid value for --distribute: 'abc'");
    expectUsageError(bin,
                     "--distribute=2 --worker=0/2 --report-out=r "
                     "x.trace",
                     "mutually exclusive");
    expectUsageError(bin, "--distribute=2 --stats x.trace",
                     "--stats is per-process");
}

TEST(UsageErrorsTest, RecallRejectsBadValues)
{
    const std::string bin = PMTEST_RECALL_BIN;
    expectUsageError(bin, "--metrics-port=notaport",
                     "invalid value for --metrics-port: 'notaport'");
    expectUsageError(bin, "--json=", "--json needs a value");
    expectUsageError(bin, "unexpected-positional",
                     "unexpected argument 'unexpected-positional'");
}

TEST(UsageErrorsTest, SeedCorpusRejectsBadArgCounts)
{
    const std::string bin = PMTEST_SEED_BIN;
    expectUsageError(bin, "", "usage:"); // missing out path
    expectUsageError(bin, "a.trace b.trace",
                     "unexpected argument 'b.trace'");
}

} // namespace
