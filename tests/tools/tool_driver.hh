/**
 * @file
 * Shared helper for the tool-driving tests: run a real binary via
 * /bin/sh, capturing its exit code, stdout and stderr. Binary paths
 * come in as the PMTEST_*_BIN compile definitions.
 */

#ifndef PMTEST_TESTS_TOOLS_TOOL_DRIVER_HH
#define PMTEST_TESTS_TOOLS_TOOL_DRIVER_HH

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/wait.h>
#include <unistd.h>

namespace pmtest::testtools
{

struct RunResult
{
    int exitCode = -1;
    std::string stdoutText;
    std::string stderrText;
};

/** Run @p cmd under /bin/sh, capturing exit code and both streams. */
inline RunResult
run(const std::string &cmd)
{
    static int counter = 0;
    const std::string base = testing::TempDir() + "tooldrv_" +
                             std::to_string(getpid()) + "_" +
                             std::to_string(counter++);
    const std::string out_path = base + ".out";
    const std::string err_path = base + ".err";
    const int status = std::system(
        (cmd + " >" + out_path + " 2>" + err_path).c_str());

    const auto slurp = [](const std::string &path) {
        std::string text;
        if (std::FILE *f = std::fopen(path.c_str(), "rb")) {
            char buf[4096];
            size_t n;
            while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
                text.append(buf, n);
            std::fclose(f);
        }
        std::remove(path.c_str());
        return text;
    };
    RunResult result;
    result.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    result.stdoutText = slurp(out_path);
    result.stderrText = slurp(err_path);
    return result;
}

} // namespace pmtest::testtools

#endif // PMTEST_TESTS_TOOLS_TOOL_DRIVER_HH
