#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "pmds/pm_map.hh"
#include "util/random.hh"

namespace pmtest::pmds
{
namespace
{

/** Functional correctness of each structure against std::map. */
class MapCorrectnessTest : public ::testing::TestWithParam<MapKind>
{
  protected:
    static std::vector<uint8_t>
    valueFor(uint64_t key)
    {
        std::vector<uint8_t> v(16 + key % 48);
        for (size_t i = 0; i < v.size(); i++)
            v[i] = static_cast<uint8_t>(key + i);
        return v;
    }
};

TEST_P(MapCorrectnessTest, InsertLookup)
{
    txlib::ObjPool pool(16 << 20);
    auto map = makeMap(GetParam(), pool);

    for (uint64_t k = 1; k <= 200; k++) {
        const auto v = valueFor(k);
        map->insert(k, v.data(), v.size());
    }
    EXPECT_EQ(map->count(), 200u);

    std::vector<uint8_t> out;
    for (uint64_t k = 1; k <= 200; k++) {
        ASSERT_TRUE(map->lookup(k, &out)) << "key " << k;
        EXPECT_EQ(out, valueFor(k));
    }
    EXPECT_FALSE(map->lookup(0));
    EXPECT_FALSE(map->lookup(10000));
}

TEST_P(MapCorrectnessTest, UpdateReplacesValue)
{
    txlib::ObjPool pool(8 << 20);
    auto map = makeMap(GetParam(), pool);

    const std::vector<uint8_t> v1(32, 0x11), v2(64, 0x22);
    map->insert(5, v1.data(), v1.size());
    map->insert(5, v2.data(), v2.size());
    EXPECT_EQ(map->count(), 1u);

    std::vector<uint8_t> out;
    ASSERT_TRUE(map->lookup(5, &out));
    EXPECT_EQ(out, v2);
}

TEST_P(MapCorrectnessTest, RemoveDeletesKeys)
{
    txlib::ObjPool pool(16 << 20);
    auto map = makeMap(GetParam(), pool);

    for (uint64_t k = 1; k <= 100; k++) {
        const auto v = valueFor(k);
        map->insert(k, v.data(), v.size());
    }
    for (uint64_t k = 2; k <= 100; k += 2)
        EXPECT_TRUE(map->remove(k)) << "key " << k;
    EXPECT_FALSE(map->remove(2)) << "already removed";
    EXPECT_EQ(map->count(), 50u);

    for (uint64_t k = 1; k <= 100; k++)
        EXPECT_EQ(map->lookup(k), k % 2 == 1) << "key " << k;
}

TEST_P(MapCorrectnessTest, RandomizedAgainstReference)
{
    txlib::ObjPool pool(32 << 20);
    auto map = makeMap(GetParam(), pool);
    std::map<uint64_t, std::vector<uint8_t>> reference;
    Rng rng(0xfeedu + static_cast<uint64_t>(GetParam()));

    for (int step = 0; step < 2000; step++) {
        const uint64_t key = 1 + rng.below(300);
        const uint64_t dice = rng.below(100);
        if (dice < 60) {
            std::vector<uint8_t> v(8 + rng.below(64));
            for (auto &b : v)
                b = static_cast<uint8_t>(rng.next());
            map->insert(key, v.data(), v.size());
            reference[key] = v;
        } else if (dice < 85) {
            EXPECT_EQ(map->remove(key), reference.erase(key) > 0)
                << "step " << step << " key " << key;
        } else {
            std::vector<uint8_t> out;
            const bool present = map->lookup(key, &out);
            auto it = reference.find(key);
            ASSERT_EQ(present, it != reference.end())
                << "step " << step << " key " << key;
            if (present) {
                ASSERT_EQ(out, it->second) << "step " << step;
            }
        }
        ASSERT_EQ(map->count(), reference.size()) << "step " << step;
    }
}

TEST_P(MapCorrectnessTest, SequentialAndReverseInsertions)
{
    // Stress tree-balancing paths (splits, rotations, fixups).
    txlib::ObjPool pool(16 << 20);
    auto map = makeMap(GetParam(), pool);
    const std::vector<uint8_t> v(24, 0x3c);

    for (uint64_t k = 1; k <= 300; k++)
        map->insert(k, v.data(), v.size());
    for (uint64_t k = 1000; k >= 701; k--)
        map->insert(k, v.data(), v.size());
    EXPECT_EQ(map->count(), 600u);
    for (uint64_t k = 1; k <= 300; k++)
        EXPECT_TRUE(map->lookup(k));
    for (uint64_t k = 701; k <= 1000; k++)
        EXPECT_TRUE(map->lookup(k));

    // Drain completely.
    for (uint64_t k = 1; k <= 300; k++)
        EXPECT_TRUE(map->remove(k));
    for (uint64_t k = 1000; k >= 701; k--)
        EXPECT_TRUE(map->remove(k));
    EXPECT_EQ(map->count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllMaps, MapCorrectnessTest,
    ::testing::Values(MapKind::Ctree, MapKind::Btree, MapKind::Rbtree,
                      MapKind::HashmapTx, MapKind::HashmapAtomic),
    [](const auto &info) {
        std::string name = mapKindName(info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace pmtest::pmds
