/**
 * @file
 * Parameterized property sweep over (structure, value size): every
 * structure must round-trip values of every size class the Fig. 10
 * benchmark uses, and correct runs must stay finding-free under
 * PMTest at every size.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/api.hh"
#include "pmds/pm_map.hh"

namespace pmtest::pmds
{
namespace
{

using SweepParam = std::tuple<MapKind, size_t>;

class MapValueSweepTest : public ::testing::TestWithParam<SweepParam>
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }
};

TEST_P(MapValueSweepTest, RoundTripAndCleanUnderPmtest)
{
    const auto [kind, value_size] = GetParam();
    txlib::ObjPool pool(64 * (value_size + 512) + (8u << 20));
    auto map = makeMap(kind, pool);

    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    std::vector<uint8_t> value(value_size);
    for (size_t i = 0; i < value.size(); i++)
        value[i] = static_cast<uint8_t>(i * 7);

    for (uint64_t k = 1; k <= 40; k++)
        map->insert(k * 13, value.data(), value.size());

    std::vector<uint8_t> out;
    for (uint64_t k = 1; k <= 40; k++) {
        ASSERT_TRUE(map->lookup(k * 13, &out)) << "key " << k * 13;
        ASSERT_EQ(out, value);
    }
    pmtestSendTrace();

    const auto report = pmtestResults();
    EXPECT_TRUE(report.clean()) << report.str();
}

INSTANTIATE_TEST_SUITE_P(
    Fig10Sizes, MapValueSweepTest,
    ::testing::Combine(
        ::testing::Values(MapKind::Ctree, MapKind::Btree,
                          MapKind::Rbtree, MapKind::HashmapTx,
                          MapKind::HashmapAtomic),
        ::testing::Values(size_t{64}, size_t{512}, size_t{4096})),
    [](const auto &info) {
        std::string name =
            mapKindName(std::get<0>(info.param)) + std::string("_") +
            std::to_string(std::get<1>(info.param));
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace pmtest::pmds
