/**
 * @file
 * Deep delete-path stress for the tree structures: build large trees,
 * remove every key in adversarial orders (the B-tree borrow/merge and
 * red-black fixup paths), re-insert, and verify against a reference —
 * all while PMTest confirms the transactional protocols stay clean.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/api.hh"
#include "pmds/btree_map.hh"
#include "pmds/rbtree_map.hh"
#include "util/random.hh"

namespace pmtest::pmds
{
namespace
{

class TreeStressTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }
};

template <typename MapT>
void
drainInOrder(bool ascending, uint64_t n)
{
    txlib::ObjPool pool(64 << 20);
    MapT map(pool);
    const std::vector<uint8_t> value(16, 0x2a);

    for (uint64_t k = 1; k <= n; k++)
        map.insert(k, value.data(), value.size());
    ASSERT_EQ(map.count(), n);

    if (ascending) {
        for (uint64_t k = 1; k <= n; k++)
            ASSERT_TRUE(map.remove(k)) << "key " << k;
    } else {
        for (uint64_t k = n; k >= 1; k--)
            ASSERT_TRUE(map.remove(k)) << "key " << k;
    }
    ASSERT_EQ(map.count(), 0u);

    // The structure is reusable after being fully drained.
    for (uint64_t k = 1; k <= 50; k++)
        map.insert(k, value.data(), value.size());
    EXPECT_EQ(map.count(), 50u);
}

TEST_F(TreeStressTest, BtreeDrainAscending)
{
    drainInOrder<BtreeMap>(true, 1000);
}

TEST_F(TreeStressTest, BtreeDrainDescending)
{
    drainInOrder<BtreeMap>(false, 1000);
}

TEST_F(TreeStressTest, RbtreeDrainAscending)
{
    drainInOrder<RbtreeMap>(true, 1000);
}

TEST_F(TreeStressTest, RbtreeDrainDescending)
{
    drainInOrder<RbtreeMap>(false, 1000);
}

template <typename MapT>
void
shuffledChurn(uint64_t seed)
{
    txlib::ObjPool pool(64 << 20);
    MapT map(pool);
    const std::vector<uint8_t> value(16, 0x2b);
    Rng rng(seed);

    // Insert a large shuffled key set.
    std::vector<uint64_t> keys;
    for (uint64_t k = 1; k <= 800; k++)
        keys.push_back(k);
    for (size_t i = keys.size(); i > 1; i--)
        std::swap(keys[i - 1], keys[rng.below(i)]);
    for (uint64_t k : keys)
        map.insert(k, value.data(), value.size());

    // Remove a shuffled half.
    std::set<uint64_t> removed;
    for (size_t i = 0; i < 400; i++) {
        const uint64_t k = keys[i];
        ASSERT_TRUE(map.remove(k)) << "key " << k;
        removed.insert(k);
    }
    ASSERT_EQ(map.count(), 400u);
    for (uint64_t k = 1; k <= 800; k++)
        ASSERT_EQ(map.lookup(k), removed.count(k) == 0) << "key " << k;
}

TEST_F(TreeStressTest, BtreeShuffledChurn)
{
    shuffledChurn<BtreeMap>(11);
}

TEST_F(TreeStressTest, RbtreeShuffledChurn)
{
    shuffledChurn<RbtreeMap>(12);
}

TEST_F(TreeStressTest, BtreeDeletePathsStayCleanUnderPmtest)
{
    // The borrow/merge paths must keep the undo-log discipline: a
    // build-then-drain cycle under PMTest yields zero findings.
    txlib::ObjPool pool(32 << 20);
    BtreeMap map(pool);
    map.emitCheckers = true;
    const std::vector<uint8_t> value(16, 0x2c);

    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    for (uint64_t k = 1; k <= 300; k++)
        map.insert(k, value.data(), value.size());
    for (uint64_t k = 1; k <= 300; k++)
        map.remove(k);
    pmtestSendTrace();

    const auto report = pmtestResults();
    EXPECT_TRUE(report.clean()) << report.summaryStr();
}

TEST_F(TreeStressTest, RbtreeDeletePathsStayCleanUnderPmtest)
{
    txlib::ObjPool pool(32 << 20);
    RbtreeMap map(pool);
    map.emitCheckers = true;
    const std::vector<uint8_t> value(16, 0x2d);

    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    Rng rng(9);
    for (uint64_t k = 1; k <= 300; k++)
        map.insert(1 + rng.below(200), value.data(), value.size());
    for (uint64_t k = 1; k <= 200; k++)
        map.remove(k);
    pmtestSendTrace();

    const auto report = pmtestResults();
    EXPECT_TRUE(report.clean()) << report.summaryStr();
}

} // namespace
} // namespace pmtest::pmds
