/**
 * @file
 * The persistent ring queue: FIFO correctness, capacity behaviour,
 * checker cleanliness, fault detection, and crash/recovery content
 * validation through the cache model.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <deque>

#include "core/api.hh"
#include "pmds/pm_queue.hh"
#include "pmem/crash_injector.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace pmtest::pmds
{
namespace
{

class PmQueueTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }

    static std::vector<uint8_t>
    payload(uint64_t tag)
    {
        std::vector<uint8_t> p(32);
        for (size_t i = 0; i < p.size(); i++)
            p[i] = static_cast<uint8_t>(tag + i);
        return p;
    }
};

TEST_F(PmQueueTest, FifoOrder)
{
    txlib::ObjPool pool(1 << 20);
    PmQueue queue(pool, 16);
    for (uint64_t i = 0; i < 5; i++) {
        const auto p = payload(i);
        EXPECT_TRUE(queue.enqueue(p.data(), p.size()));
    }
    EXPECT_EQ(queue.size(), 5u);

    for (uint64_t i = 0; i < 5; i++) {
        std::vector<uint8_t> out;
        ASSERT_TRUE(queue.dequeue(&out));
        EXPECT_EQ(out, payload(i)) << "entry " << i;
    }
    EXPECT_TRUE(queue.empty());
    EXPECT_FALSE(queue.dequeue());
}

TEST_F(PmQueueTest, CapacityEnforcedAndRingWraps)
{
    txlib::ObjPool pool(1 << 20);
    PmQueue queue(pool, 4);
    const auto p = payload(0);
    for (int i = 0; i < 4; i++)
        EXPECT_TRUE(queue.enqueue(p.data(), p.size()));
    EXPECT_TRUE(queue.full());
    EXPECT_FALSE(queue.enqueue(p.data(), p.size()));

    // Wrap the ring several times.
    for (uint64_t round = 0; round < 20; round++) {
        std::vector<uint8_t> out;
        ASSERT_TRUE(queue.dequeue(&out));
        const auto in = payload(round);
        ASSERT_TRUE(queue.enqueue(in.data(), in.size()));
    }
    EXPECT_EQ(queue.size(), 4u);
}

TEST_F(PmQueueTest, OversizePayloadTruncated)
{
    txlib::ObjPool pool(1 << 20);
    PmQueue queue(pool, 4);
    std::vector<uint8_t> big(PmQueue::kSlotPayload + 100, 0x3f);
    EXPECT_TRUE(queue.enqueue(big.data(), big.size()));
    std::vector<uint8_t> out;
    ASSERT_TRUE(queue.dequeue(&out));
    EXPECT_EQ(out.size(), PmQueue::kSlotPayload);
}

TEST_F(PmQueueTest, CleanRunUnderPmtest)
{
    txlib::ObjPool pool(1 << 20);
    PmQueue queue(pool, 32);
    queue.emitCheckers = true;

    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    Rng rng(4);
    for (int i = 0; i < 200; i++) {
        if (rng.chance(60, 100) && !queue.full()) {
            const auto p = payload(i);
            queue.enqueue(p.data(), p.size());
        } else if (!queue.empty()) {
            queue.dequeue();
        }
    }
    pmtestSendTrace();

    const auto report = pmtestResults();
    EXPECT_TRUE(report.clean()) << report.summaryStr();
}

TEST_F(PmQueueTest, SkipSlotFlushDetected)
{
    ScopedLogSilencer quiet;
    txlib::ObjPool pool(1 << 20);
    PmQueue queue(pool, 8);
    queue.emitCheckers = true;
    queue.faults.skipSlotFlush = true;

    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();
    const auto p = payload(1);
    queue.enqueue(p.data(), p.size());
    pmtestSendTrace();

    const auto report = pmtestResults();
    bool not_persisted = false;
    for (const auto &f : report.findings())
        not_persisted |= f.kind == core::FindingKind::NotPersisted;
    EXPECT_TRUE(not_persisted) << report.str();
}

TEST_F(PmQueueTest, SkipSlotFenceDetected)
{
    ScopedLogSilencer quiet;
    txlib::ObjPool pool(1 << 20);
    PmQueue queue(pool, 8);
    queue.emitCheckers = true;
    queue.faults.skipSlotFence = true;

    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();
    const auto p = payload(1);
    queue.enqueue(p.data(), p.size());
    pmtestSendTrace();

    const auto report = pmtestResults();
    bool not_ordered = false;
    for (const auto &f : report.findings())
        not_ordered |= f.kind == core::FindingKind::NotOrdered;
    EXPECT_TRUE(not_ordered) << report.str();
}

TEST_F(PmQueueTest, ExtraFlushWarned)
{
    ScopedLogSilencer quiet;
    txlib::ObjPool pool(1 << 20);
    PmQueue queue(pool, 8);
    queue.faults.extraSlotFlush = true;

    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();
    const auto p = payload(1);
    queue.enqueue(p.data(), p.size());
    pmtestSendTrace();

    const auto report = pmtestResults();
    bool redundant = false;
    for (const auto &f : report.findings())
        redundant |= f.kind == core::FindingKind::RedundantFlush;
    EXPECT_TRUE(redundant) << report.str();
    EXPECT_EQ(report.failCount(), 0u);
}

TEST_F(PmQueueTest, CrashStatesHoldConsistentPrefix)
{
    pmtestInit(Config{});
    pmtestThreadInit();

    txlib::ObjPool pool(1 << 20, /*simulate_crashes=*/true);
    pmtestAttachPool(&pool.pmPool());
    PmQueue queue(pool, 16);

    std::deque<std::vector<uint8_t>> reference;
    Rng rng(10);
    for (int step = 0; step < 40; step++) {
        if (rng.chance(70, 100) && !queue.full()) {
            const auto p = payload(step);
            queue.enqueue(p.data(), p.size());
            reference.push_back(p);
        } else if (!queue.empty()) {
            queue.dequeue();
            reference.pop_front();
        }

        // Every completed op is durable: all crash states must show
        // exactly the reference content.
        if (step % 8 != 7)
            continue;
        pmem::CrashInjector injector(*pool.pmPool().cache());
        Rng crash_rng(step);
        for (int s = 0; s < 5; s++) {
            const auto image = injector.sample(crash_rng);
            std::vector<std::vector<uint8_t>> walked;
            ASSERT_TRUE(
                PmQueue::readImage(pool.pmPool(), image, &walked));
            ASSERT_EQ(walked.size(), reference.size())
                << "step " << step;
            for (size_t i = 0; i < walked.size(); i++)
                ASSERT_EQ(walked[i], reference[i]);
        }
    }
    pmtestDetachPool();
}

TEST_F(PmQueueTest, SkipFenceBugCausesRealStaleEntry)
{
    // The ordering bug the checkers flag is a real one: with the
    // fence skipped, some crash state publishes a slot whose payload
    // never reached the medium.
    ScopedLogSilencer quiet;
    pmtestInit(Config{});
    pmtestThreadInit();

    txlib::ObjPool pool(1 << 20, true);
    pmtestAttachPool(&pool.pmPool());
    PmQueue queue(pool, 16);
    queue.faults.skipSlotFlush = true; // payload never written back
    queue.faults.skipSlotFence = true;

    const auto p = payload(9);
    queue.enqueue(p.data(), p.size());

    pmem::CrashInjector injector(*pool.pmPool().cache());
    Rng rng(11);
    bool stale_seen = false;
    for (int s = 0; s < 40 && !stale_seen; s++) {
        const auto image = injector.sample(rng);
        std::vector<std::vector<uint8_t>> walked;
        if (!PmQueue::readImage(pool.pmPool(), image, &walked))
            continue;
        stale_seen = walked.size() == 1 && walked[0] != p;
    }
    EXPECT_TRUE(stale_seen)
        << "the published slot should be stale in some crash state";
    pmtestDetachPool();
}

} // namespace
} // namespace pmtest::pmds
