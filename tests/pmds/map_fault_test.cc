#include <gtest/gtest.h>

#include "core/api.hh"
#include "pmds/btree_map.hh"
#include "pmds/ctree_map.hh"
#include "pmds/hashmap_atomic.hh"
#include "pmds/hashmap_tx.hh"
#include "pmds/rbtree_map.hh"
#include "util/logging.hh"

namespace pmtest::pmds
{
namespace
{

/** Each fault knob must produce its specific finding kind. */
class MapFaultTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }

    template <typename MapT>
    core::Report
    runFaulty(MapFaults faults, size_t ops,
              txlib::BugKnobs knobs = {})
    {
        ScopedLogSilencer quiet;
        txlib::ObjPool pool(8 << 20);
        pool.bugs = knobs;
        MapT map(pool);
        map.faults = faults;
        map.emitCheckers = true;

        pmtestInit(Config{});
        pmtestThreadInit();
        pmtestStart();
        std::vector<uint8_t> value(64, 0x44);
        for (size_t i = 0; i < ops; i++)
            map.insert(1 + i, value.data(), value.size());
        pmtestSendTrace();
        auto report = pmtestResults();
        pmtestEnd();
        pmtestExit();
        return report;
    }

    static bool
    hasKind(const core::Report &report, core::FindingKind kind)
    {
        for (const auto &f : report.findings())
            if (f.kind == kind)
                return true;
        return false;
    }
};

TEST_F(MapFaultTest, CtreeSkipTxAddIsMissingLog)
{
    MapFaults f;
    f.skipTxAdd = true;
    const auto report = runFaulty<CtreeMap>(f, 4);
    EXPECT_TRUE(hasKind(report, core::FindingKind::MissingLog))
        << report.str();
}

TEST_F(MapFaultTest, BtreeSkipTxAddIsMissingLog)
{
    MapFaults f;
    f.skipTxAdd = true;
    const auto report = runFaulty<BtreeMap>(f, 4);
    EXPECT_TRUE(hasKind(report, core::FindingKind::MissingLog));
}

TEST_F(MapFaultTest, RbtreeSkipTxAddIsMissingLog)
{
    MapFaults f;
    f.skipTxAdd = true;
    // Ascending keys force rotations, the buggy site.
    const auto report = runFaulty<RbtreeMap>(f, 8);
    EXPECT_TRUE(hasKind(report, core::FindingKind::MissingLog));
}

TEST_F(MapFaultTest, HashmapTxSkipTxAddIsMissingLog)
{
    MapFaults f;
    f.skipTxAdd = true;
    const auto report = runFaulty<HashmapTx>(f, 2);
    EXPECT_TRUE(hasKind(report, core::FindingKind::MissingLog));
}

TEST_F(MapFaultTest, ExtraTxAddIsDuplicateLog)
{
    MapFaults f;
    f.extraTxAdd = true;
    const auto report = runFaulty<HashmapTx>(f, 2);
    EXPECT_TRUE(hasKind(report, core::FindingKind::DuplicateLog));
    EXPECT_EQ(report.failCount(), 0u)
        << "performance bug only: " << report.str();
}

TEST_F(MapFaultTest, AtomicSkipFlushIsNotPersisted)
{
    MapFaults f;
    f.skipFlush = true;
    const auto report = runFaulty<HashmapAtomic>(f, 4);
    EXPECT_TRUE(hasKind(report, core::FindingKind::NotPersisted));
}

TEST_F(MapFaultTest, AtomicSkipFenceIsNotOrdered)
{
    MapFaults f;
    f.skipFence = true;
    const auto report = runFaulty<HashmapAtomic>(f, 4);
    EXPECT_TRUE(hasKind(report, core::FindingKind::NotOrdered))
        << report.str();
}

TEST_F(MapFaultTest, AtomicMisplacedFenceIsNotOrdered)
{
    MapFaults f;
    f.misplacedFence = true;
    const auto report = runFaulty<HashmapAtomic>(f, 4);
    EXPECT_TRUE(hasKind(report, core::FindingKind::NotOrdered));
}

TEST_F(MapFaultTest, AtomicExtraFlushIsRedundantFlush)
{
    MapFaults f;
    f.extraFlush = true;
    const auto report = runFaulty<HashmapAtomic>(f, 4);
    EXPECT_TRUE(hasKind(report, core::FindingKind::RedundantFlush));
    EXPECT_EQ(report.failCount(), 0u) << report.str();
}

TEST_F(MapFaultTest, SkipCommitFlushIsIncompleteTx)
{
    txlib::BugKnobs knobs;
    knobs.skipCommitFlush = true;
    const auto report = runFaulty<CtreeMap>({}, 4, knobs);
    EXPECT_TRUE(hasKind(report, core::FindingKind::IncompleteTx))
        << report.str();
}

TEST_F(MapFaultTest, FaultyRunStillFunctionallyCorrect)
{
    // The injected bugs are crash-consistency bugs, not functional
    // ones: the map still answers lookups correctly.
    ScopedLogSilencer quiet;
    txlib::ObjPool pool(8 << 20);
    CtreeMap map(pool);
    map.faults.skipTxAdd = true;
    std::vector<uint8_t> value(16, 1);
    for (uint64_t k = 1; k <= 50; k++)
        map.insert(k, value.data(), value.size());
    for (uint64_t k = 1; k <= 50; k++)
        EXPECT_TRUE(map.lookup(k));
}

} // namespace
} // namespace pmtest::pmds
