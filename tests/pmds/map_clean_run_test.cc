#include <gtest/gtest.h>

#include "core/api.hh"
#include "pmds/btree_map.hh"
#include "pmds/ctree_map.hh"
#include "pmds/hashmap_atomic.hh"
#include "pmds/hashmap_tx.hh"
#include "pmds/rbtree_map.hh"
#include "pmds/pm_map.hh"
#include "util/random.hh"

namespace pmtest::pmds
{
namespace
{

/**
 * No-false-positive property: a *correct* structure, run under PMTest
 * with all checkers enabled, must produce zero findings. This guards
 * both the structures' crash-consistency protocols and the engine's
 * rules against false alarms.
 */
class MapCleanRunTest : public ::testing::TestWithParam<MapKind>
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }
};

void
enableCheckers(PmMap &map, MapKind kind)
{
    switch (kind) {
      case MapKind::Ctree:
        static_cast<CtreeMap &>(map).emitCheckers = true;
        break;
      case MapKind::Btree:
        static_cast<BtreeMap &>(map).emitCheckers = true;
        break;
      case MapKind::Rbtree:
        static_cast<RbtreeMap &>(map).emitCheckers = true;
        break;
      case MapKind::HashmapTx:
        static_cast<HashmapTx &>(map).emitCheckers = true;
        break;
      case MapKind::HashmapAtomic:
        static_cast<HashmapAtomic &>(map).emitCheckers = true;
        break;
    }
}

TEST_P(MapCleanRunTest, MixedWorkloadYieldsNoFindings)
{
    txlib::ObjPool pool(32 << 20);
    auto map = makeMap(GetParam(), pool);
    enableCheckers(*map, GetParam());

    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    Rng rng(99);
    std::vector<uint8_t> value(64, 0x7e);
    for (int step = 0; step < 500; step++) {
        const uint64_t key = 1 + rng.below(120);
        if (rng.chance(70, 100)) {
            map->insert(key, value.data(), value.size());
        } else {
            map->remove(key);
        }
    }
    pmtestSendTrace();

    const auto report = pmtestResults();
    EXPECT_EQ(report.failCount(), 0u) << report.str();
    EXPECT_EQ(report.warnCount(), 0u) << report.str();
    EXPECT_GT(pmtestTracesSubmitted(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllMaps, MapCleanRunTest,
    ::testing::Values(MapKind::Ctree, MapKind::Btree, MapKind::Rbtree,
                      MapKind::HashmapTx, MapKind::HashmapAtomic),
    [](const auto &info) {
        std::string name = mapKindName(info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace pmtest::pmds
