/**
 * @file
 * The hashmap_atomic count-recovery protocol: the countDirty flag
 * brackets counter updates so recovery can recount the chains — the
 * PMDK hashmap_atomic design the structure models.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/api.hh"
#include "pmds/hashmap_atomic.hh"
#include "pmem/crash_injector.hh"
#include "util/random.hh"

namespace pmtest::pmds
{
namespace
{

class HashmapAtomicRecoveryTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }
};

TEST_F(HashmapAtomicRecoveryTest, CleanImageNeedsNoRepair)
{
    txlib::ObjPool pool(4 << 20);
    HashmapAtomic map(pool);
    const std::vector<uint8_t> value(32, 0x4d);
    for (uint64_t k = 1; k <= 25; k++)
        map.insert(k, value.data(), value.size());

    std::vector<uint8_t> image(pool.pmPool().base(),
                               pool.pmPool().base() +
                                   pool.pmPool().size());
    uint64_t recounted = 0;
    ASSERT_TRUE(
        HashmapAtomic::recoverImage(pool.pmPool(), image, &recounted));
    EXPECT_EQ(recounted, 25u);
}

TEST_F(HashmapAtomicRecoveryTest, DirtyCounterIsRecomputed)
{
    txlib::ObjPool pool(4 << 20);
    HashmapAtomic map(pool);
    const std::vector<uint8_t> value(32, 0x4e);
    for (uint64_t k = 1; k <= 10; k++)
        map.insert(k, value.data(), value.size());

    // Corrupt the image the way a crash inside updateCount() would:
    // dirty flag set, stale counter.
    std::vector<uint8_t> image(pool.pmPool().base(),
                               pool.pmPool().base() +
                                   pool.pmPool().size());
    txlib::PoolHeader header;
    std::memcpy(&header, image.data(), sizeof(header));
    // Root layout: buckets(8) nbuckets(8) count(8) countDirty(8).
    const uint64_t count_off = header.rootOffset + 16;
    uint64_t bogus_count = 9999, dirty = 1;
    std::memcpy(image.data() + count_off, &bogus_count, 8);
    std::memcpy(image.data() + count_off + 8, &dirty, 8);

    uint64_t recounted = 0;
    ASSERT_TRUE(
        HashmapAtomic::recoverImage(pool.pmPool(), image, &recounted));
    EXPECT_EQ(recounted, 10u);

    // The repaired image reads back clean.
    uint64_t fixed_count, fixed_dirty;
    std::memcpy(&fixed_count, image.data() + count_off, 8);
    std::memcpy(&fixed_dirty, image.data() + count_off + 8, 8);
    EXPECT_EQ(fixed_count, 10u);
    EXPECT_EQ(fixed_dirty, 0u);
}

TEST_F(HashmapAtomicRecoveryTest, CrashSampledImagesRepairToTruth)
{
    pmtestInit(Config{});
    pmtestThreadInit();

    txlib::ObjPool pool(4 << 20, /*simulate_crashes=*/true);
    pmtestAttachPool(&pool.pmPool());
    HashmapAtomic map(pool);
    const std::vector<uint8_t> value(32, 0x4f);
    for (uint64_t k = 1; k <= 12; k++)
        map.insert(k, value.data(), value.size());

    // Every completed insert fenced the link and the counter, so
    // recovery over any crash state recounts to exactly 12.
    pmem::CrashInjector injector(*pool.pmPool().cache());
    Rng rng(3);
    for (int s = 0; s < 20; s++) {
        auto image = injector.sample(rng);
        uint64_t recounted = 0;
        ASSERT_TRUE(HashmapAtomic::recoverImage(pool.pmPool(), image,
                                                &recounted));
        EXPECT_EQ(recounted, 12u);
    }
    pmtestDetachPool();
}

} // namespace
} // namespace pmtest::pmds
