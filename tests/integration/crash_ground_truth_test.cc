/**
 * @file
 * Ground-truth validation of PMTest's interval verdicts: random small
 * x86 traces are checked by the engine AND exhaustively enumerated as
 * crash states on the simulated device; the verdicts must agree.
 * Also end-to-end crash/recovery tests of the transactional
 * libraries through the cache model.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/api.hh"
#include "core/engine.hh"
#include "mnemosyne/region.hh"
#include "pmem/crash_injector.hh"
#include "txlib/obj_pool.hh"
#include "txlib/undo_log.hh"
#include "util/random.hh"

namespace pmtest
{
namespace
{

/**
 * A randomly generated protocol over K distinct cache lines, each
 * written at most once. The generator interleaves writes, writebacks
 * of already-written lines, and fences.
 */
struct RandomProtocol
{
    static constexpr size_t kLines = 4;
    static constexpr uint64_t kBase = 0; // device offsets

    std::vector<PmOp> ops;
    std::vector<bool> written = std::vector<bool>(kLines, false);

    static uint64_t lineAddr(size_t line) { return line * 64; }

    explicit RandomProtocol(Rng &rng)
    {
        const size_t n_ops = 4 + rng.below(10);
        for (size_t i = 0; i < n_ops; i++) {
            const uint64_t dice = rng.below(100);
            const size_t line = rng.below(kLines);
            if (dice < 45) {
                if (!written[line]) {
                    ops.push_back(PmOp::write(lineAddr(line), 8));
                    written[line] = true;
                }
            } else if (dice < 80) {
                if (written[line])
                    ops.push_back(PmOp::clwb(lineAddr(line), 8));
            } else {
                ops.push_back(PmOp::sfence());
            }
        }
    }
};

/**
 * Enumerate all final crash states of the protocol and return, for
 * each line, the set of "new value persisted" outcomes observed.
 * states[i] is a bitmask of lines holding their new value.
 */
std::vector<uint32_t>
enumerateCrashStates(const RandomProtocol &proto)
{
    pmem::PmDevice device(RandomProtocol::kLines * 64);
    pmem::CacheSim cache(device, true);

    for (const auto &op : proto.ops) {
        switch (op.type) {
          case OpType::Write: {
            const uint64_t value = op.addr / 64 + 1;
            cache.store(op.addr, &value, 8);
            break;
          }
          case OpType::Clwb:
            cache.clwb(op.addr, 8);
            break;
          case OpType::Sfence:
            cache.sfence();
            break;
          default:
            break;
        }
    }

    pmem::CrashInjector injector(cache);
    std::vector<uint32_t> states;
    injector.enumerate([&](const std::vector<uint8_t> &image) {
        uint32_t mask = 0;
        for (size_t line = 0; line < RandomProtocol::kLines; line++) {
            uint64_t v;
            std::memcpy(&v, image.data() + line * 64, 8);
            if (v == line + 1)
                mask |= 1u << line;
        }
        states.push_back(mask);
    });
    return states;
}

class GroundTruthTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(GroundTruthTest, IsPersistAgreesWithEnumeration)
{
    Rng rng(GetParam());
    for (int round = 0; round < 40; round++) {
        RandomProtocol proto(rng);
        const auto states = enumerateCrashStates(proto);

        for (size_t line = 0; line < RandomProtocol::kLines; line++) {
            if (!proto.written[line])
                continue;

            Trace trace(1, 0);
            trace.append(proto.ops);
            trace.append(
                PmOp::isPersist(RandomProtocol::lineAddr(line), 8));
            core::Engine engine(core::ModelKind::X86);
            const bool pmtest_pass = engine.check(trace).passed();

            bool always_persisted = true;
            for (uint32_t mask : states)
                always_persisted &= (mask >> line) & 1;

            ASSERT_EQ(pmtest_pass, always_persisted)
                << "round " << round << " line " << line << "\n"
                << trace.str();
        }
    }
}

TEST_P(GroundTruthTest, IsOrderedBeforeAgreesWithEnumeration)
{
    Rng rng(GetParam() + 1000);
    for (int round = 0; round < 40; round++) {
        RandomProtocol proto(rng);
        const auto states = enumerateCrashStates(proto);

        for (size_t a = 0; a < RandomProtocol::kLines; a++) {
            for (size_t b = 0; b < RandomProtocol::kLines; b++) {
                if (a == b || !proto.written[a] || !proto.written[b])
                    continue;

                Trace trace(1, 0);
                trace.append(proto.ops);
                trace.append(PmOp::isOrderedBefore(
                    RandomProtocol::lineAddr(a), 8,
                    RandomProtocol::lineAddr(b), 8));
                core::Engine engine(core::ModelKind::X86);
                const bool pmtest_pass = engine.check(trace).passed();

                // Violation: B's new value persisted while A's stale.
                bool violation = false;
                for (uint32_t mask : states) {
                    const bool a_new = (mask >> a) & 1;
                    const bool b_new = (mask >> b) & 1;
                    violation |= b_new && !a_new;
                }

                // Soundness: a passing checker means no crash state
                // violates the order.
                if (pmtest_pass) {
                    ASSERT_FALSE(violation)
                        << "round " << round << " a=" << a
                        << " b=" << b << "\n"
                        << trace.str();
                }
            }
        }
    }
}

/**
 * Crash-state masks at EVERY op boundary, not just the end: needed
 * for the completeness direction of isOrderedBefore, because an
 * ordering violation may only be exposed at an intermediate crash
 * point (both lines can be durable by the end of the trace).
 */
std::vector<std::vector<uint32_t>>
enumeratePrefixCrashStates(const RandomProtocol &proto)
{
    pmem::PmDevice device(RandomProtocol::kLines * 64);
    pmem::CacheSim cache(device, true);

    std::vector<std::vector<uint32_t>> per_prefix;
    for (const auto &op : proto.ops) {
        switch (op.type) {
          case OpType::Write: {
            const uint64_t value = op.addr / 64 + 1;
            cache.store(op.addr, &value, 8);
            break;
          }
          case OpType::Clwb:
            cache.clwb(op.addr, 8);
            break;
          case OpType::Sfence:
            cache.sfence();
            break;
          default:
            break;
        }
        pmem::CrashInjector injector(cache);
        std::vector<uint32_t> states;
        injector.enumerate([&](const std::vector<uint8_t> &image) {
            uint32_t mask = 0;
            for (size_t line = 0; line < RandomProtocol::kLines;
                 line++) {
                uint64_t v;
                std::memcpy(&v, image.data() + line * 64, 8);
                if (v == line + 1)
                    mask |= 1u << line;
            }
            states.push_back(mask);
        });
        per_prefix.push_back(std::move(states));
    }
    return per_prefix;
}

TEST_P(GroundTruthTest, IsOrderedBeforeExactlyMatchesPrefixEnumeration)
{
    // Full equivalence on single-write-per-line protocols: the
    // checker FAILs if and only if some crash point admits a state
    // where B's new value is durable while A's is not.
    Rng rng(GetParam() + 2000);
    for (int round = 0; round < 25; round++) {
        RandomProtocol proto(rng);
        const auto prefix_states = enumeratePrefixCrashStates(proto);

        for (size_t a = 0; a < RandomProtocol::kLines; a++) {
            for (size_t b = 0; b < RandomProtocol::kLines; b++) {
                if (a == b || !proto.written[a] || !proto.written[b])
                    continue;

                Trace trace(1, 0);
                trace.append(proto.ops);
                trace.append(PmOp::isOrderedBefore(
                    RandomProtocol::lineAddr(a), 8,
                    RandomProtocol::lineAddr(b), 8));
                core::Engine engine(core::ModelKind::X86);
                const bool pmtest_pass = engine.check(trace).passed();

                bool violation = false;
                for (const auto &states : prefix_states) {
                    for (uint32_t mask : states) {
                        const bool a_new = (mask >> a) & 1;
                        const bool b_new = (mask >> b) & 1;
                        violation |= b_new && !a_new;
                    }
                    if (violation)
                        break;
                }

                ASSERT_EQ(pmtest_pass, !violation)
                    << "round " << round << " a=" << a << " b=" << b
                    << "\n"
                    << trace.str();
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroundTruthTest,
                         ::testing::Values(11, 22, 33, 44));

class LibraryCrashTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }
};

TEST_F(LibraryCrashTest, UndoLogRecoveryOverSimulatedCrashImages)
{
    pmtestInit(Config{});
    pmtestThreadInit();

    txlib::ObjPool pool(1 << 20, /*simulate_crashes=*/true);
    pmtestAttachPool(&pool.pmPool());

    auto *x = static_cast<uint64_t *>(pool.allocRaw(64));
    uint64_t eleven = 11;
    pool.persist(x, &eleven, sizeof(eleven));

    // Crash mid-transaction: the log entry is durable (txAdd fences),
    // the in-place update is in flight.
    pool.txBegin();
    pool.txAdd(x, 8);
    pool.txAssign<uint64_t>(x, 99);

    pmem::CrashInjector injector(*pool.pmPool().cache());
    Rng rng(5);
    for (int i = 0; i < 30; i++) {
        auto image = injector.sample(rng);
        txlib::recoverImage(image);
        uint64_t recovered;
        std::memcpy(&recovered,
                    image.data() + pool.pmPool().offsetOf(x),
                    sizeof(recovered));
        EXPECT_EQ(recovered, 11u)
            << "every crash state rolls back to the snapshot";
    }

    pool.txCommit();
    pmtestDetachPool();
}

TEST_F(LibraryCrashTest, RedoLogRecoveryOverSimulatedCrashImages)
{
    pmtestInit(Config{});
    pmtestThreadInit();

    mnemosyne::Region region(1 << 20, /*simulate_crashes=*/true);
    pmtestAttachPool(&region.pmPool());

    auto *x = static_cast<uint64_t *>(region.alloc(64));
    uint64_t seven = 7;
    region.persist(x, &seven, sizeof(seven));

    // A completed commit fences the in-place data before retiring the
    // log, so every crash state after commit must already hold the
    // new value (recovery is then a no-op). This checks the commit
    // protocol end-to-end through the cache model.
    region.txBegin();
    region.logAssign<uint64_t>(x, 55);
    region.txCommit();

    pmem::CrashInjector injector(*region.pmPool().cache());
    Rng rng(6);
    for (int i = 0; i < 30; i++) {
        auto image = injector.sample(rng);
        mnemosyne::Region::recoverImage(image);
        uint64_t recovered;
        std::memcpy(&recovered,
                    image.data() + region.pmPool().offsetOf(x),
                    sizeof(recovered));
        EXPECT_EQ(recovered, 55u)
            << "committed transactions always replay";
    }
    pmtestDetachPool();
}

TEST_F(LibraryCrashTest, AtomicityAcrossRandomCrashSamples)
{
    // Multi-word transaction: after a mid-transaction crash plus
    // recovery, either ALL pre-state or (never) a mix.
    pmtestInit(Config{});
    pmtestThreadInit();

    txlib::ObjPool pool(1 << 20, true);
    pmtestAttachPool(&pool.pmPool());

    constexpr int kWords = 6;
    uint64_t *words[kWords];
    for (int i = 0; i < kWords; i++) {
        words[i] = static_cast<uint64_t *>(pool.allocRaw(64));
        uint64_t v = 100 + i;
        pool.persist(words[i], &v, sizeof(v));
    }

    pool.txBegin();
    for (int i = 0; i < kWords; i++) {
        pool.txAdd(words[i], 8);
        pool.txAssign<uint64_t>(words[i], 200 + i);
    }
    // No commit: crash.

    pmem::CrashInjector injector(*pool.pmPool().cache());
    Rng rng(7);
    for (int s = 0; s < 50; s++) {
        auto image = injector.sample(rng);
        txlib::recoverImage(image);
        for (int i = 0; i < kWords; i++) {
            uint64_t v;
            std::memcpy(&v,
                        image.data() +
                            pool.pmPool().offsetOf(words[i]),
                        sizeof(v));
            EXPECT_EQ(v, 100u + i) << "word " << i;
        }
    }
    pool.txCommit();
    pmtestDetachPool();
}

} // namespace
} // namespace pmtest
