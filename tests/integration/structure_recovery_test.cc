/**
 * @file
 * Structure-level crash/recovery validation: run real data-structure
 * workloads on the simulated pool, take crash images, run undo-log
 * recovery, and walk the recovered structure out of the raw image —
 * it must match a reference model exactly. Also the converse: the
 * commit-flush bug PMTest flags corresponds to *actual* crash-state
 * corruption.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/api.hh"
#include "pmds/ctree_map.hh"
#include "pmds/hashmap_tx.hh"
#include "pmem/crash_injector.hh"
#include "txlib/undo_log.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace pmtest
{
namespace
{

using ByteMap = std::map<uint64_t, std::vector<uint8_t>>;

class StructureRecoveryTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }
};

/** Drive ops, mirror into the cache, validate recovered images. */
template <typename MapT>
void
runRecoveryScenario(uint64_t seed)
{
    pmtestInit(Config{});
    pmtestThreadInit();

    txlib::ObjPool pool(4 << 20, /*simulate_crashes=*/true);
    pmtestAttachPool(&pool.pmPool());
    MapT map(pool);
    ByteMap reference;
    Rng rng(seed);

    for (int step = 0; step < 60; step++) {
        const uint64_t key = 1 + rng.below(40);
        if (rng.chance(3, 4)) {
            std::vector<uint8_t> value(8 + rng.below(48));
            for (auto &b : value)
                b = static_cast<uint8_t>(rng.next());
            map.insert(key, value.data(), value.size());
            reference[key] = std::move(value);
        } else if (map.remove(key)) {
            reference.erase(key);
        }

        if (step % 10 != 9)
            continue;

        // Every completed operation is fully persistent, so every
        // crash image, after recovery, must walk to the reference.
        pmem::CrashInjector injector(*pool.pmPool().cache());
        Rng crash_rng(seed * 1000 + step);
        for (int s = 0; s < 5; s++) {
            auto image = injector.sample(crash_rng);
            txlib::recoverImage(image);
            ByteMap walked;
            ASSERT_TRUE(
                MapT::readImage(pool.pmPool(), image, &walked))
                << "structurally corrupt image at step " << step;
            ASSERT_EQ(walked, reference) << "step " << step;
        }
    }
    pmtestDetachPool();
    pmtestExit();
}

TEST_F(StructureRecoveryTest, HashmapTxSurvivesCrashSamples)
{
    runRecoveryScenario<pmds::HashmapTx>(101);
}

TEST_F(StructureRecoveryTest, CtreeSurvivesCrashSamples)
{
    runRecoveryScenario<pmds::CtreeMap>(202);
}

TEST_F(StructureRecoveryTest, MidTransactionCrashRollsBackHashmap)
{
    pmtestInit(Config{});
    pmtestThreadInit();

    txlib::ObjPool pool(4 << 20, true);
    pmtestAttachPool(&pool.pmPool());
    pmds::HashmapTx map(pool);
    ByteMap reference;

    const std::vector<uint8_t> value(32, 0x61);
    for (uint64_t k = 1; k <= 10; k++) {
        map.insert(k, value.data(), value.size());
        reference[k] = value;
    }

    // Open a transaction by hand and crash inside it: snapshot the
    // bucket head the same way the map would, modify, don't commit.
    pool.txBegin();
    auto *probe = static_cast<uint64_t *>(pool.allocRaw(64));
    pool.txAdd(probe, 8);
    pool.txAssign<uint64_t>(probe, 0xdead);

    pmem::CrashInjector injector(*pool.pmPool().cache());
    Rng rng(7);
    for (int s = 0; s < 10; s++) {
        auto image = injector.sample(rng);
        txlib::recoverImage(image);
        ByteMap walked;
        ASSERT_TRUE(
            pmds::HashmapTx::readImage(pool.pmPool(), image, &walked));
        ASSERT_EQ(walked, reference)
            << "in-flight transaction must not be visible";
    }
    pool.txCommit();
    pmtestDetachPool();
    pmtestExit();
}

TEST_F(StructureRecoveryTest, CommitFlushBugCausesRealCorruption)
{
    // The IncompleteTx finding corresponds to genuine crash-state
    // data loss: with the commit flush skipped, some sampled crash
    // state fails to walk to the reference even after recovery.
    ScopedLogSilencer quiet;
    pmtestInit(Config{});
    pmtestThreadInit();

    txlib::ObjPool pool(4 << 20, true);
    pool.bugs.skipCommitFlush = true;
    pmtestAttachPool(&pool.pmPool());
    pmds::HashmapTx map(pool);
    ByteMap reference;

    Rng rng(55);
    const std::vector<uint8_t> value(48, 0x42);
    for (uint64_t k = 1; k <= 20; k++) {
        map.insert(k, value.data(), value.size());
        reference[k] = value;
    }

    pmem::CrashInjector injector(*pool.pmPool().cache());
    bool corruption_seen = false;
    for (int s = 0; s < 40 && !corruption_seen; s++) {
        auto image = injector.sample(rng);
        txlib::recoverImage(image);
        ByteMap walked;
        const bool intact =
            pmds::HashmapTx::readImage(pool.pmPool(), image, &walked);
        corruption_seen = !intact || walked != reference;
    }
    EXPECT_TRUE(corruption_seen)
        << "the skipped commit flush should lose data in some "
           "crash state";

    pmtestDetachPool();
    pmtestExit();
}

} // namespace
} // namespace pmtest
