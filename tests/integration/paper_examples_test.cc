/**
 * @file
 * End-to-end reproductions of the paper's motivating examples:
 * Fig. 1a (buggy ArrayUpdate with low-level primitives), Fig. 1b
 * (buggy appendList with a transactional interface), and the §7.1
 * nested-transaction semantics discovery.
 */

#include <gtest/gtest.h>

#include "core/api.hh"
#include "txlib/obj_pool.hh"
#include "util/logging.hh"

namespace pmtest
{
namespace
{

class PaperExamplesTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }

    void
    startPmtest()
    {
        ScopedLogSilencer quiet;
        pmtestInit(Config{});
        pmtestThreadInit();
        pmtestStart();
    }

    core::Report
    finishPmtest()
    {
        pmtestSendTrace();
        auto report = pmtestResults();
        pmtestEnd();
        pmtestExit();
        return report;
    }
};

/** The Fig. 1a undo-logging array, annotated with checkers. */
struct ArrayBackup
{
    uint64_t val = 0;
    uint64_t valid = 0;
};

void
arrayUpdate(uint64_t *array, ArrayBackup *backup, int index,
            uint64_t new_val, bool buggy)
{
    // backup.val = array[index];
    pmAssign(&backup->val, array[index], PMTEST_HERE);
    if (!buggy) {
        PMTEST_CLWB(&backup->val, sizeof(backup->val));
        PMTEST_SFENCE(); // the barrier line 2/3 of Fig. 1a misses
    }
    // backup.valid = true;
    pmAssign<uint64_t>(&backup->valid, 1, PMTEST_HERE);
    PMTEST_CLWB(&backup->valid, sizeof(backup->valid));
    PMTEST_SFENCE();

    // The checker programmers would add: the saved value must be
    // durable no later than the valid flag.
    PMTEST_IS_ORDERED_BEFORE(&backup->val, sizeof(backup->val),
                             &backup->valid, sizeof(backup->valid));

    // array[index] = new_val;
    pmAssign(&array[index], new_val, PMTEST_HERE);
    if (!buggy) {
        PMTEST_CLWB(&array[index], sizeof(uint64_t));
        PMTEST_SFENCE(); // the other missing barrier
    }
    // backup.valid = false;
    pmAssign<uint64_t>(&backup->valid, 0, PMTEST_HERE);
    PMTEST_CLWB(&backup->valid, sizeof(backup->valid));
    PMTEST_SFENCE();

    PMTEST_IS_ORDERED_BEFORE(&array[index], sizeof(uint64_t),
                             &backup->valid, sizeof(backup->valid));
}

TEST_F(PaperExamplesTest, Fig1aBuggyArrayUpdateDetected)
{
    // Backup and array live on separate cache lines, as in real code.
    alignas(64) static uint64_t array[8];
    alignas(64) static ArrayBackup backup;

    startPmtest();
    arrayUpdate(array, &backup, 2, 42, /*buggy=*/true);
    const auto report = finishPmtest();

    ASSERT_GE(report.failCount(), 1u);
    for (const auto &f : report.findings())
        EXPECT_EQ(f.kind, core::FindingKind::NotOrdered);
}

TEST_F(PaperExamplesTest, Fig1aFixedArrayUpdatePasses)
{
    alignas(64) static uint64_t array[8];
    alignas(64) static ArrayBackup backup;

    startPmtest();
    arrayUpdate(array, &backup, 2, 42, /*buggy=*/false);
    const auto report = finishPmtest();
    EXPECT_TRUE(report.clean()) << report.str();
}

/** The Fig. 1b linked list on the transactional interface. */
struct ListNode
{
    uint64_t value;
    ListNode *next;
};

struct List
{
    ListNode *head;
    uint64_t length;
};

void
appendList(txlib::ObjPool &pool, List *list, uint64_t new_val,
           bool buggy)
{
    PMTEST_TX_CHECKER_START();
    {
        txlib::TxScope tx(pool, PMTEST_HERE);
        auto *node = pool.txAlloc<ListNode>(PMTEST_HERE);
        ListNode init{new_val, list->head};
        pool.txWrite(node, &init, sizeof(init), PMTEST_HERE);

        pool.txAdd(&list->head, sizeof(list->head), PMTEST_HERE);
        pool.txAssign(&list->head, node, PMTEST_HERE);
        if (!buggy) {
            // The TX_ADD the Fig. 1b programmer forgot.
            pool.txAdd(&list->length, sizeof(list->length),
                       PMTEST_HERE);
        }
        pool.txAssign(&list->length, list->length + 1, PMTEST_HERE);
    }
    PMTEST_TX_CHECKER_END();
}

TEST_F(PaperExamplesTest, Fig1bMissingTxAddDetected)
{
    txlib::ObjPool pool(1 << 20);
    auto *list = pool.root<List>();

    startPmtest();
    appendList(pool, list, 7, /*buggy=*/true);
    const auto report = finishPmtest();

    ASSERT_GE(report.failCount(), 1u);
    EXPECT_EQ(report.findings()[0].kind, core::FindingKind::MissingLog);
}

TEST_F(PaperExamplesTest, Fig1bFixedAppendPasses)
{
    txlib::ObjPool pool(1 << 20);
    auto *list = pool.root<List>();

    startPmtest();
    appendList(pool, list, 7, /*buggy=*/false);
    appendList(pool, list, 8, /*buggy=*/false);
    const auto report = finishPmtest();
    EXPECT_TRUE(report.clean()) << report.str();
    EXPECT_EQ(list->length, 2u);
    EXPECT_EQ(list->head->value, 8u);
}

TEST_F(PaperExamplesTest, NestedTransactionSemanticsDiscovery)
{
    // §7.1: a TX checker around an inner transaction reports that
    // updates are not yet persistent; around the outer transaction it
    // passes — exactly how the paper says PMTest demystifies PMDK's
    // nested-transaction semantics.
    txlib::ObjPool pool(1 << 20);
    auto *x = static_cast<uint64_t *>(pool.allocRaw(8));

    startPmtest();
    pool.txBegin();
    PMTEST_TX_CHECKER_START();
    pool.txBegin(); // inner
    pool.txAdd(x, 8);
    pool.txAssign<uint64_t>(x, 1);
    pool.txCommit();
    PMTEST_TX_CHECKER_END(); // around the inner TX
    pool.txCommit();
    const auto inner = finishPmtest();
    EXPECT_GE(inner.failCount(), 1u)
        << "updates are not persistent at the inner TX_END";

    startPmtest();
    PMTEST_TX_CHECKER_START();
    pool.txBegin();
    pool.txBegin();
    pool.txAdd(x, 8);
    pool.txAssign<uint64_t>(x, 2);
    pool.txCommit();
    pool.txCommit();
    PMTEST_TX_CHECKER_END(); // around the outer TX
    const auto outer = finishPmtest();
    EXPECT_TRUE(outer.passed()) << outer.str();
}

} // namespace
} // namespace pmtest
