/**
 * @file
 * Ground-truth oracle at Table-1 scale: workloads whose crash-state
 * spaces are far beyond exhaustive enumeration (2^20+ states at a
 * single crash point) get full validation through representative
 * exploration — recovery's read set collapses the unread dirty lines
 * into multiplicative weights, so every state is accounted for while
 * only a handful of recovery runs execute. Covers the three workload
 * families: a pmds map (low-level hashmap), txlib transactions, and
 * the PMFS journal — plus an injected-bug case proving pruning does
 * not hide real failures.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>

#include "baseline/yat.hh"
#include "core/api.hh"
#include "pmds/hashmap_atomic.hh"
#include "pmds/hashmap_tx.hh"
#include "pmfs/pmfs.hh"
#include "txlib/undo_log.hh"
#include "util/logging.hh"

namespace pmtest
{
namespace
{

using baseline::Yat;
using ByteMap = std::map<uint64_t, std::vector<uint8_t>>;

/** Spaces this size and beyond are what exhaustive Yat cannot do. */
constexpr uint64_t kIntractable = uint64_t{1} << 20;

class OracleScaleTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }

    static Yat::OracleOptions
    representative()
    {
        Yat::OracleOptions opts;
        opts.mode = Yat::OracleOptions::Mode::Representative;
        return opts;
    }
};

TEST_F(OracleScaleTest, TxlibOpenTransactionValidatesAtScale)
{
    pmtestInit(Config{});
    pmtestThreadInit();

    txlib::ObjPool pool(4 << 20, /*simulate_crashes=*/true);
    pmtestAttachPool(&pool.pmPool());
    pmds::HashmapTx map(pool);
    ByteMap reference;

    const std::vector<uint8_t> value(40, 0x5a);
    for (uint64_t k = 1; k <= 12; k++) {
        map.insert(k, value.data(), value.size());
        reference[k] = value;
    }

    // A large open transaction: two dozen fresh objects written but
    // not committed. Every data line is in flight (txlib flushes them
    // only at commit), so the crash-state space at this point is
    // >= 2^24 — recovery rolls all of it back without reading any of
    // it, which is exactly what representative exploration exploits.
    pool.txBegin();
    for (int i = 0; i < 24; i++) {
        auto *obj = static_cast<uint64_t *>(pool.txAllocRaw(64));
        uint64_t payload[8];
        for (int w = 0; w < 8; w++)
            payload[w] = 0x1000 * i + w;
        pool.txWrite(obj, payload, sizeof(payload));
    }

    const auto result = Yat::explorePool(
        pool.pmPool(),
        [&](pmem::TrackedImage &image) {
            txlib::recoverImage(image);
            ByteMap walked;
            if (!pmds::HashmapTx::readImage(pool.pmPool(),
                                            image.raw(), &walked,
                                            image.tracker()))
                return false;
            return walked == reference;
        },
        representative());

    EXPECT_EQ(result.failures, 0u)
        << "an uncommitted transaction must be invisible in every "
           "crash state";
    EXPECT_GE(result.statesCovered, kIntractable);
    EXPECT_FALSE(result.truncated);
    EXPECT_GE(result.reductionRatio(), 10.0);
    pool.txCommit();
    pmtestDetachPool();
    pmtestExit();
}

TEST_F(OracleScaleTest, UnloggedWriteBugIsFoundAtScale)
{
    // The missing-TX_ADD bug class: a store inside a transaction
    // with no undo entry. Recovery cannot roll it back, so the crash
    // states where that line reached the medium are corrupt — and
    // the oracle must find them inside a 2^20+ space without testing
    // it exhaustively.
    pmtestInit(Config{});
    pmtestThreadInit();

    txlib::ObjPool pool(4 << 20, /*simulate_crashes=*/true);
    pmtestAttachPool(&pool.pmPool());
    pmds::HashmapTx map(pool);
    ByteMap reference;

    const std::vector<uint8_t> value(40, 0x5b);
    for (uint64_t k = 1; k <= 12; k++) {
        map.insert(k, value.data(), value.size());
        reference[k] = value;
    }

    pool.txBegin();
    for (int i = 0; i < 24; i++) {
        auto *obj = static_cast<uint64_t *>(pool.txAllocRaw(64));
        uint64_t payload[8];
        for (int w = 0; w < 8; w++)
            payload[w] = 0x2000 * i + w + 1;
        pool.txWrite(obj, payload, sizeof(payload));
    }
    // The unlogged store: bump the map's element count in place.
    // readImage cross-checks the walked size against it, so any
    // crash state where this line persisted fails validation.
    txlib::PoolHeader header;
    std::memcpy(&header, pool.pmPool().base(), sizeof(header));
    auto *count = reinterpret_cast<uint64_t *>(
        pool.pmPool().base() + header.rootOffset + 16);
    pmAssign(count, *count + 1);

    const auto result = Yat::explorePool(
        pool.pmPool(),
        [&](pmem::TrackedImage &image) {
            txlib::recoverImage(image);
            ByteMap walked;
            if (!pmds::HashmapTx::readImage(pool.pmPool(),
                                            image.raw(), &walked,
                                            image.tracker()))
                return false;
            return walked == reference;
        },
        representative());

    EXPECT_GT(result.failures, 0u)
        << "states where the unlogged count persisted are corrupt";
    EXPECT_LT(result.failures, result.statesCovered)
        << "states where the line stayed stale are still consistent";
    EXPECT_GE(result.statesCovered, kIntractable);
    EXPECT_GE(result.reductionRatio(), 10.0);
    pool.txCommit();
    pmtestDetachPool();
    pmtestExit();
}

TEST_F(OracleScaleTest, AtomicMapValidatesAtScale)
{
    pmtestInit(Config{});
    pmtestThreadInit();

    txlib::ObjPool pool(4 << 20, /*simulate_crashes=*/true);
    pmtestAttachPool(&pool.pmPool());
    pmds::HashmapAtomic map(pool);

    const std::vector<uint8_t> value(32, 0x4c);
    for (uint64_t k = 1; k <= 15; k++)
        map.insert(k, value.data(), value.size());

    // Thirty staged-but-unpublished value buffers: written, never
    // flushed, reachable from nothing. They multiply the crash-state
    // space past 2^30 while recovery can never observe them.
    for (int i = 0; i < 30; i++) {
        auto *buf = static_cast<uint64_t *>(pool.allocRaw(64));
        uint64_t payload[8];
        for (int w = 0; w < 8; w++)
            payload[w] = 0xbeef0000 + 8 * i + w;
        pmStore(buf, payload, sizeof(payload));
    }

    const auto result = Yat::explorePool(
        pool.pmPool(),
        [&](pmem::TrackedImage &image) {
            uint64_t recounted = 0;
            if (!pmds::HashmapAtomic::recoverImage(
                    pool.pmPool(), image.raw(), &recounted,
                    image.tracker()))
                return false;
            return recounted == 15;
        },
        representative());

    EXPECT_EQ(result.failures, 0u)
        << "every completed insert is fully durable";
    EXPECT_GE(result.statesCovered, kIntractable);
    EXPECT_GE(result.reductionRatio(), 10.0);
    pmtestDetachPool();
    pmtestExit();
}

TEST_F(OracleScaleTest, PmfsValidatesAtScale)
{
    pmtestInit(Config{});
    pmtestThreadInit();

    pmfs::Pmfs fs(4 << 20, /*simulate_crashes=*/true,
                  /*use_fifo=*/false);
    pmtestAttachPool(&fs.pmPool());

    // Metadata is journaled and durable; with the data flush
    // suppressed the file payloads stay in flight, inflating the
    // crash-state space past 2^30 with lines the journal-recovery
    // path and the metadata walk never read.
    fs.faults.skipDataFlush = true;
    const std::string payload(700, 'q');
    for (int i = 0; i < 3; i++) {
        const std::string name = "scale" + std::to_string(i);
        const int ino = fs.create(name);
        ASSERT_GE(ino, 0);
        ASSERT_EQ(fs.write(ino, 0, payload.data(), payload.size()),
                  static_cast<long>(payload.size()));
    }

    const auto result = Yat::explorePool(
        fs.pmPool(),
        [&](pmem::TrackedImage &image) {
            pmfs::Pmfs::recoverImage(image);
            const auto sb = image.readAt<pmfs::Superblock>(0);
            if (sb.magic != pmfs::Superblock::kMagic)
                return false;
            size_t in_use = 0;
            for (uint64_t i = 0; i < sb.nInodes; i++) {
                const auto ino = image.readAt<pmfs::Inode>(
                    sb.inodeTableOffset + i * sizeof(pmfs::Inode));
                if (!ino.inUse)
                    continue;
                in_use++;
                if (std::strncmp(ino.name, "scale", 5) != 0 ||
                    ino.size != 700)
                    return false;
            }
            return in_use == 3;
        },
        representative());

    EXPECT_EQ(result.failures, 0u)
        << "journaled metadata survives every crash state";
    EXPECT_GE(result.statesCovered, kIntractable);
    EXPECT_GE(result.reductionRatio(), 10.0);
    pmtestDetachPool();
    pmtestExit();
}

} // namespace
} // namespace pmtest
