/**
 * @file
 * The check-session layer: CheckPlan validation (exit-2 semantics
 * for flag combinations, input errors without the usage hint) and
 * the worker/sequential equivalence at the heart of distributed
 * checking — N in-process worker-shaped sessions merge to the exact
 * findings of one plain session over the seed corpus.
 */

#include "core/check_session.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

#include "core/report_io.hh"
#include "trace/seed_corpus.hh"
#include "trace/trace_io.hh"

namespace pmtest::core
{
namespace
{

/** Write the seed corpus to a temp v2 trace file, returning its path. */
std::string
corpusFile(const char *name)
{
    const std::string path = testing::TempDir() + name;
    std::vector<SeedTrace> corpus = seedCorpusTraces();
    std::vector<Trace> traces;
    for (SeedTrace &seed : corpus)
        traces.push_back(std::move(seed.trace));
    EXPECT_TRUE(saveTracesToFile(path, traces, TraceFormat::V2));
    return path;
}

CheckPlan
quietPlan(const std::string &input)
{
    CheckPlan plan;
    plan.inputArgs = {input};
    plan.quiet = true;
    plan.workers = 2;
    return plan;
}

TEST(CheckPlanTest, MissingInputIsAUsageError)
{
    CheckPlan plan;
    std::string error;
    bool usage = false;
    EXPECT_FALSE(plan.finalize(&error, &usage));
    EXPECT_EQ(error, "missing input trace file");
    EXPECT_TRUE(usage);
}

TEST(CheckPlanTest, EmptyDirectoryIsNotAUsageError)
{
    const std::string dir = testing::TempDir() + "plan_empty_dir";
    ASSERT_EQ(mkdir(dir.c_str(), 0755), 0);
    CheckPlan plan;
    plan.inputArgs = {dir};
    std::string error;
    bool usage = true;
    EXPECT_FALSE(plan.finalize(&error, &usage));
    EXPECT_NE(error.find("no trace files"), std::string::npos)
        << error;
    EXPECT_FALSE(usage) << "input errors do not reprint usage";
    rmdir(dir.c_str());
}

TEST(CheckPlanTest, DuplicateInputsRejected)
{
    const std::string path = corpusFile("plan_dup.trace");
    CheckPlan plan;
    plan.inputArgs = {path, path};
    std::string error;
    EXPECT_FALSE(plan.finalize(&error));
    EXPECT_NE(error.find("duplicate input"), std::string::npos);
    std::remove(path.c_str());
}

TEST(CheckPlanTest, WorkerModeValidation)
{
    const std::string path = corpusFile("plan_worker.trace");
    std::string error;
    bool usage = false;

    CheckPlan no_out = quietPlan(path);
    no_out.workerIndex = 0;
    no_out.workerCount = 2;
    EXPECT_FALSE(no_out.finalize(&error, &usage));
    EXPECT_EQ(error, "--worker needs --report-out=FILE");
    EXPECT_TRUE(usage);

    CheckPlan bad_index = quietPlan(path);
    bad_index.workerIndex = 2;
    bad_index.workerCount = 2;
    bad_index.reportOutPath = "r.bin";
    EXPECT_FALSE(bad_index.finalize(&error, &usage));
    EXPECT_NE(error.find("out of range"), std::string::npos);

    CheckPlan both = quietPlan(path);
    both.workerCount = 2;
    both.distribute = 2;
    both.reportOutPath = "r.bin";
    EXPECT_FALSE(both.finalize(&error, &usage));
    EXPECT_NE(error.find("mutually exclusive"), std::string::npos);
    std::remove(path.c_str());
}

TEST(CheckPlanTest, DistributeRejectsPerProcessSurfaces)
{
    const std::string path = corpusFile("plan_dist.trace");
    const auto expectRejected = [&](void (*tweak)(CheckPlan &),
                                    const char *needle) {
        CheckPlan plan = quietPlan(path);
        plan.distribute = 2;
        tweak(plan);
        std::string error;
        bool usage = false;
        EXPECT_FALSE(plan.finalize(&error, &usage)) << needle;
        EXPECT_NE(error.find(needle), std::string::npos) << error;
        EXPECT_TRUE(usage);
    };
    expectRejected([](CheckPlan &p) { p.shards = 4; }, "--shards");
    expectRejected([](CheckPlan &p) { p.fixHints = true; },
                   "--fix-hints");
    expectRejected([](CheckPlan &p) { p.metricsLinger = true; },
                   "--metrics-linger");
    expectRejected([](CheckPlan &p) { p.showStats = true; },
                   "--stats");
    expectRejected([](CheckPlan &p) { p.traceEventsPath = "t.json"; },
                   "--trace-events");
    std::remove(path.c_str());
}

TEST(CheckPlanTest, ValidPlanExpandsInputs)
{
    const std::string path = corpusFile("plan_ok.trace");
    CheckPlan plan = quietPlan(path);
    std::string error;
    EXPECT_TRUE(plan.finalize(&error)) << error;
    ASSERT_EQ(plan.inputs.size(), 1u);
    EXPECT_EQ(plan.inputs[0], path);
    std::remove(path.c_str());
}

TEST(CheckSessionTest, PlainSessionWritesWireReport)
{
    const std::string path = corpusFile("session_plain.trace");
    const std::string report_path =
        testing::TempDir() + "session_plain.report";
    CheckPlan plan = quietPlan(path);
    plan.reportOutPath = report_path;
    std::string error;
    ASSERT_TRUE(plan.finalize(&error)) << error;
    EXPECT_EQ(runCheckTool(plan), 1) << "seed corpus has FAILs";

    Report report;
    ReportMeta meta;
    ASSERT_TRUE(loadReportFile(report_path, &report, &meta, &error))
        << error;
    EXPECT_GT(report.failCount(), 0u);
    EXPECT_EQ(meta.workerCount, 0u) << "plain run, not a worker";
    EXPECT_EQ(meta.traceCount, seedCorpusTraces().size());
    EXPECT_EQ(meta.sourceCount, 1u);
    std::remove(path.c_str());
    std::remove(report_path.c_str());
}

TEST(CheckSessionTest, WorkerShardsMergeToTheSequentialReport)
{
    const std::string path = corpusFile("session_shards.trace");
    std::string error;

    // Sequential baseline.
    const std::string seq_path =
        testing::TempDir() + "session_seq.report";
    CheckPlan seq = quietPlan(path);
    seq.reportOutPath = seq_path;
    ASSERT_TRUE(seq.finalize(&error)) << error;
    EXPECT_EQ(runCheckTool(seq), 1);
    Report seq_report;
    ReportMeta seq_meta;
    ASSERT_TRUE(
        loadReportFile(seq_path, &seq_report, &seq_meta, &error))
        << error;

    // Three worker-shaped sessions over the same input, in-process.
    const uint32_t n = 3;
    std::vector<WorkerReport> parts;
    for (uint32_t i = 0; i < n; i++) {
        const std::string part_path = testing::TempDir() +
                                      "session_worker." +
                                      std::to_string(i);
        CheckPlan worker = quietPlan(path);
        worker.workerIndex = i;
        worker.workerCount = n;
        worker.reportOutPath = part_path;
        ASSERT_TRUE(worker.finalize(&error)) << error;
        const int rc = runCheckTool(worker);
        EXPECT_TRUE(rc == 0 || rc == 1) << "worker verdict, got "
                                        << rc;
        WorkerReport part;
        ASSERT_TRUE(loadReportFile(part_path, &part.report,
                                   &part.meta, &error))
            << error;
        EXPECT_EQ(part.meta.workerIndex, i);
        EXPECT_EQ(part.meta.workerCount, n);
        parts.push_back(std::move(part));
        std::remove(part_path.c_str());
    }

    Report merged;
    ReportMeta merged_meta;
    mergeReports(std::move(parts), &merged, &merged_meta);
    EXPECT_EQ(merged_meta.traceCount, seq_meta.traceCount);
    EXPECT_EQ(merged_meta.totalOps, seq_meta.totalOps);

    // Byte-level equivalence of the findings + string table: encode
    // both under a normalized meta (workerCount legitimately differs
    // between the two run shapes).
    ReportMeta normalized = seq_meta;
    normalized.workerIndex = 0;
    normalized.workerCount = 0;
    std::string seq_wire, merged_wire;
    encodeReport(seq_report, normalized, &seq_wire);
    encodeReport(merged, normalized, &merged_wire);
    EXPECT_EQ(merged_wire, seq_wire);

    std::remove(path.c_str());
    std::remove(seq_path.c_str());
}

} // namespace
} // namespace pmtest::core
