/**
 * @file
 * The pmtest-report-v1 wire format: lossless round-trips for every
 * finding kind and fix-hint shape, fail-closed parsing under
 * truncation and bit flips at every byte position, and gather-order
 * independence of mergeReports — the properties distributed
 * scatter/gather checking leans on.
 */

#include "core/report_io.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace pmtest::core
{
namespace
{

FixHint
hint(FixAction action, uint64_t addr = 0x1000, uint64_t size = 64,
     uint64_t op_index = 3)
{
    FixHint h;
    h.action = action;
    h.addr = addr;
    h.size = size;
    h.opIndex = op_index;
    return h;
}

Finding
finding(Severity severity, FindingKind kind, const char *file,
        uint32_t line, std::string msg, uint32_t file_id,
        uint64_t trace_id, size_t op_index, FixHint h = {})
{
    Finding f;
    f.severity = severity;
    f.kind = kind;
    f.loc = SourceLocation(file, line);
    f.message = std::move(msg);
    f.fileId = file_id;
    f.traceId = trace_id;
    f.opIndex = op_index;
    f.hint = h;
    return f;
}

/**
 * A report exercising every finding kind, every fix action, both
 * hint flags, non-x86 op vocabulary, an empty message and a missing
 * source location.
 */
Report
sampleReport()
{
    Report r;
    FixHint ordering = hint(FixAction::InsertOrdering, 0x2000, 8, 5);
    ordering.addrB = 0x3000;
    ordering.sizeB = 16;
    ordering.withFlush = true;
    ordering.verified = true;
    FixHint arm = hint(FixAction::InsertFlushFence, 0x4000, 64, 7);
    arm.flushOp = OpType::DcCvap;
    arm.fenceOp = OpType::Dsb;
    FixHint tx_end = hint(FixAction::InsertTxEnd, 0, 0, 9);
    tx_end.count = 3;

    r.add(finding(Severity::Fail, FindingKind::NotPersisted, "a.cc",
                  10, "not persisted", 0, 1, 2,
                  hint(FixAction::InsertFlushFence)));
    r.add(finding(Severity::Fail, FindingKind::NotOrdered, "a.cc", 11,
                  "not ordered", 0, 1, 3, ordering));
    r.add(finding(Severity::Fail, FindingKind::MissingLog, "b.cc", 20,
                  "write without backup", 0, 2, 1,
                  hint(FixAction::InsertTxAdd, 0x5000, 32, 4)));
    r.add(finding(Severity::Fail, FindingKind::IncompleteTx, "b.cc",
                  21, "tx left updates unpersisted", 1, 3, 6, arm));
    r.add(finding(Severity::Fail, FindingKind::UnmatchedTx, "c.cc",
                  30, "region closed with open tx", 1, 4, 8, tx_end));
    r.add(finding(Severity::Warn, FindingKind::RedundantFlush, "d.cc",
                  40, "flushed twice", 2, 5, 2,
                  hint(FixAction::DeleteFlush, 0x6000, 64, 2)));
    r.add(finding(Severity::Warn, FindingKind::UnnecessaryFlush,
                  "d.cc", 41, "flush of clean range", 2, 5, 4,
                  hint(FixAction::InsertFence, 0, 0, 4)));
    r.add(finding(Severity::Warn, FindingKind::DuplicateLog, "e.cc",
                  50, "", 3, 6, 1,
                  hint(FixAction::DeleteTxAdd, 0x7000, 16, 1)));
    r.add(finding(Severity::Fail, FindingKind::Malformed, nullptr, 0,
                  "tx-end without tx-begin", 3, 7, 0,
                  hint(FixAction::None)));
    return r;
}

ReportMeta
sampleMeta()
{
    ReportMeta m;
    m.workerIndex = 2;
    m.workerCount = 4;
    m.traceCount = 11;
    m.totalOps = 48;
    m.sourceCount = 3;
    m.model = ModelKind::Arm;
    return m;
}

void
expectSameFindings(const Report &got, const Report &want)
{
    ASSERT_EQ(got.findings().size(), want.findings().size());
    for (size_t i = 0; i < want.findings().size(); i++) {
        const Finding &a = want.findings()[i];
        const Finding &b = got.findings()[i];
        EXPECT_EQ(b.severity, a.severity) << "finding " << i;
        EXPECT_EQ(b.kind, a.kind) << "finding " << i;
        EXPECT_EQ(b.message, a.message) << "finding " << i;
        EXPECT_EQ(b.loc.str(), a.loc.str()) << "finding " << i;
        EXPECT_EQ(b.fileId, a.fileId) << "finding " << i;
        EXPECT_EQ(b.traceId, a.traceId) << "finding " << i;
        EXPECT_EQ(b.opIndex, a.opIndex) << "finding " << i;
        EXPECT_TRUE(b.hint.sameEdit(a.hint)) << "finding " << i;
        EXPECT_EQ(b.hint.verified, a.hint.verified) << "finding " << i;
        EXPECT_EQ(b.str(), a.str()) << "finding " << i;
    }
}

TEST(ReportIoTest, RoundTripEveryKindAndHint)
{
    const Report original = sampleReport();
    const ReportMeta meta = sampleMeta();
    std::string wire;
    encodeReport(original, meta, &wire);

    Report decoded;
    ReportMeta decoded_meta;
    std::string error;
    ASSERT_TRUE(decodeReport(wire.data(), wire.size(), &decoded,
                             &decoded_meta, &error))
        << error;
    expectSameFindings(decoded, original);
    EXPECT_EQ(decoded_meta.workerIndex, meta.workerIndex);
    EXPECT_EQ(decoded_meta.workerCount, meta.workerCount);
    EXPECT_EQ(decoded_meta.traceCount, meta.traceCount);
    EXPECT_EQ(decoded_meta.totalOps, meta.totalOps);
    EXPECT_EQ(decoded_meta.sourceCount, meta.sourceCount);
    EXPECT_EQ(decoded_meta.model, meta.model);
}

TEST(ReportIoTest, DecodedReportIsSelfContained)
{
    std::string wire;
    {
        // The encoded report dies before the decoded one is read:
        // decoded locations must point into the report's own arena.
        const Report original = sampleReport();
        encodeReport(original, sampleMeta(), &wire);
    }
    Report decoded;
    ASSERT_TRUE(
        decodeReport(wire.data(), wire.size(), &decoded, nullptr));
    wire.assign(wire.size(), '\0'); // scramble the source bytes
    EXPECT_EQ(decoded.findings()[0].loc.str(), "a.cc:10");
    EXPECT_FALSE(decoded.str().empty());
}

TEST(ReportIoTest, EmptyReportRoundTrips)
{
    std::string wire;
    encodeReport(Report{}, ReportMeta{}, &wire);
    Report decoded;
    ReportMeta meta;
    std::string error;
    ASSERT_TRUE(decodeReport(wire.data(), wire.size(), &decoded,
                             &meta, &error))
        << error;
    EXPECT_TRUE(decoded.clean());
    EXPECT_EQ(meta.workerCount, 0u);
}

TEST(ReportIoTest, ReencodeOfDecodeIsByteIdentical)
{
    std::string wire;
    encodeReport(sampleReport(), sampleMeta(), &wire);
    Report decoded;
    ReportMeta meta;
    ASSERT_TRUE(
        decodeReport(wire.data(), wire.size(), &decoded, &meta));
    std::string rewire;
    encodeReport(decoded, meta, &rewire);
    EXPECT_EQ(wire, rewire);
}

TEST(ReportIoTest, EveryTruncationFailsClosed)
{
    std::string wire;
    encodeReport(sampleReport(), sampleMeta(), &wire);
    for (size_t len = 0; len < wire.size(); len++) {
        Report sink;
        sink.add(finding(Severity::Warn, FindingKind::DuplicateLog,
                         "sentinel.cc", 1, "sentinel", 0, 0, 0));
        ReportMeta meta;
        meta.traceCount = 999;
        std::string error;
        EXPECT_FALSE(
            decodeReport(wire.data(), len, &sink, &meta, &error))
            << "prefix of " << len << " bytes decoded";
        EXPECT_FALSE(error.empty()) << "at " << len;
        // All-or-nothing: a failed decode must not touch the outputs.
        ASSERT_EQ(sink.findings().size(), 1u) << "at " << len;
        EXPECT_EQ(sink.findings()[0].message, "sentinel");
        EXPECT_EQ(meta.traceCount, 999u) << "at " << len;
    }
}

TEST(ReportIoTest, EveryFlippedByteFailsClosed)
{
    std::string wire;
    encodeReport(sampleReport(), sampleMeta(), &wire);
    for (size_t i = 0; i < wire.size(); i++) {
        for (const uint8_t mask : {uint8_t{0x01}, uint8_t{0xff}}) {
            std::string corrupt = wire;
            corrupt[i] = static_cast<char>(
                static_cast<uint8_t>(corrupt[i]) ^ mask);
            Report sink;
            ReportMeta meta;
            std::string error;
            EXPECT_FALSE(decodeReport(corrupt.data(), corrupt.size(),
                                      &sink, &meta, &error))
                << "byte " << i << " ^ " << int(mask) << " decoded";
            EXPECT_TRUE(sink.clean()) << "byte " << i;
        }
    }
}

TEST(ReportIoTest, TrailingBytesRejected)
{
    std::string wire;
    encodeReport(sampleReport(), sampleMeta(), &wire);
    wire.push_back('\0');
    Report sink;
    std::string error;
    EXPECT_FALSE(
        decodeReport(wire.data(), wire.size(), &sink, nullptr, &error));
    EXPECT_EQ(error, "report length mismatch");
}

TEST(ReportIoTest, ForeignBytesRejectedWithReason)
{
    const std::string junk(64, 'x');
    Report sink;
    std::string error;
    EXPECT_FALSE(decodeReport(junk.data(), junk.size(), &sink,
                              nullptr, &error));
    EXPECT_EQ(error, "not a pmtest report (bad magic)");
}

TEST(ReportIoTest, SaveLoadFileRoundTrips)
{
    const std::string path =
        testing::TempDir() + "report_io_roundtrip.bin";
    const Report original = sampleReport();
    std::string error;
    ASSERT_TRUE(saveReportFile(path, original, sampleMeta(), &error))
        << error;
    Report loaded;
    ReportMeta meta;
    ASSERT_TRUE(loadReportFile(path, &loaded, &meta, &error)) << error;
    expectSameFindings(loaded, original);
    EXPECT_EQ(meta.workerIndex, 2u);
    std::remove(path.c_str());
}

TEST(ReportIoTest, LoadErrorsNameThePath)
{
    const std::string missing =
        testing::TempDir() + "no_such_report.bin";
    Report sink;
    std::string error;
    EXPECT_FALSE(loadReportFile(missing, &sink, nullptr, &error));
    EXPECT_NE(error.find(missing), std::string::npos);

    const std::string garbage =
        testing::TempDir() + "garbage_report.bin";
    std::FILE *f = std::fopen(garbage.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    for (int i = 0; i < 64; i++)
        std::fputc('x', f); // long enough to get past the length check
    std::fclose(f);
    EXPECT_FALSE(loadReportFile(garbage, &sink, nullptr, &error));
    EXPECT_NE(error.find(garbage), std::string::npos);
    EXPECT_NE(error.find("bad magic"), std::string::npos);
    std::remove(garbage.c_str());
}

/** Split sampleReport's findings into @p n per-worker parts. */
std::vector<WorkerReport>
splitIntoWorkers(size_t n)
{
    const Report whole = sampleReport();
    std::vector<WorkerReport> parts(n);
    for (size_t w = 0; w < n; w++) {
        parts[w].meta.workerIndex = static_cast<uint32_t>(w);
        parts[w].meta.workerCount = static_cast<uint32_t>(n);
        parts[w].meta.traceCount = w + 1;
        parts[w].meta.totalOps = 10 * (w + 1);
        parts[w].meta.sourceCount = 1;
        parts[w].meta.model = ModelKind::X86;
    }
    for (size_t i = 0; i < whole.findings().size(); i++)
        parts[i % n].report.add(whole.findings()[i]);
    return parts;
}

TEST(ReportIoTest, MergeIsGatherOrderIndependent)
{
    std::vector<WorkerReport> ordered = splitIntoWorkers(3);
    Report baseline_report;
    ReportMeta baseline_meta;
    mergeReports(ordered, &baseline_report, &baseline_meta);
    std::string baseline;
    encodeReport(baseline_report, baseline_meta, &baseline);

    // Every permutation of the gather order folds to the same bytes.
    std::vector<size_t> perm{0, 1, 2};
    do {
        std::vector<WorkerReport> shuffled;
        for (const size_t i : perm)
            shuffled.push_back(splitIntoWorkers(3)[i]);
        Report merged;
        ReportMeta meta;
        mergeReports(std::move(shuffled), &merged, &meta);
        std::string wire;
        encodeReport(merged, meta, &wire);
        EXPECT_EQ(wire, baseline)
            << "gather order " << perm[0] << perm[1] << perm[2];
    } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(ReportIoTest, MergeSumsTotalsAndCanonicalizes)
{
    Report merged;
    ReportMeta meta;
    mergeReports(splitIntoWorkers(3), &merged, &meta);
    EXPECT_EQ(meta.workerCount, 3u);
    EXPECT_EQ(meta.traceCount, 1u + 2 + 3);
    EXPECT_EQ(meta.totalOps, 10u + 20 + 30);
    EXPECT_EQ(meta.sourceCount, 3u);
    EXPECT_EQ(merged.findings().size(),
              sampleReport().findings().size());
    const auto &fs = merged.findings();
    for (size_t i = 1; i < fs.size(); i++) {
        const auto key = [](const Finding &f) {
            return std::make_tuple(f.fileId, f.traceId, f.opIndex);
        };
        EXPECT_LE(key(fs[i - 1]), key(fs[i])) << "finding " << i;
    }
}

TEST(ReportIoTest, MergeRoundTripsThroughTheWire)
{
    // The actual coordinator path: encode each part, decode, merge.
    std::vector<WorkerReport> parts = splitIntoWorkers(2);
    std::vector<WorkerReport> gathered;
    for (const WorkerReport &part : parts) {
        std::string wire;
        encodeReport(part.report, part.meta, &wire);
        WorkerReport back;
        ASSERT_TRUE(decodeReport(wire.data(), wire.size(),
                                 &back.report, &back.meta));
        gathered.push_back(std::move(back));
    }
    Report direct, via_wire;
    ReportMeta direct_meta, wire_meta;
    mergeReports(std::move(parts), &direct, &direct_meta);
    mergeReports(std::move(gathered), &via_wire, &wire_meta);
    std::string a, b;
    encodeReport(direct, direct_meta, &a);
    encodeReport(via_wire, wire_meta, &b);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace pmtest::core
