#include "core/arm_model.hh"

#include <gtest/gtest.h>

#include "core/engine.hh"

namespace pmtest::core
{
namespace
{

class ArmModelTest : public ::testing::Test
{
  protected:
    void
    apply(const PmOp &op)
    {
        model_.apply(op, shadow_, report_, index_++);
    }

    ArmModel model_;
    ShadowMemory shadow_;
    Report report_;
    size_t index_ = 0;
};

TEST_F(ArmModelTest, WriteCleanDsbPersists)
{
    apply(PmOp::write(0x10, 64));
    apply(PmOp::dcCvap(0x10, 64));
    apply(PmOp::dsb());
    std::string why;
    EXPECT_TRUE(model_.checkPersisted(AddrRange(0x10, 64), shadow_,
                                      &why));
    EXPECT_TRUE(report_.clean());
}

TEST_F(ArmModelTest, MissingCleanNeverPersists)
{
    apply(PmOp::write(0x10, 64));
    apply(PmOp::dsb());
    std::string why;
    EXPECT_FALSE(model_.checkPersisted(AddrRange(0x10, 64), shadow_,
                                       &why));
}

TEST_F(ArmModelTest, DsbOrdersLikeSfence)
{
    apply(PmOp::write(0x10, 64)); // A
    apply(PmOp::dcCvap(0x10, 64));
    apply(PmOp::dsb());
    apply(PmOp::write(0x50, 64)); // B
    std::string why;
    EXPECT_TRUE(model_.checkOrderedBefore(AddrRange(0x10, 64),
                                          AddrRange(0x50, 64),
                                          shadow_, &why));
    EXPECT_FALSE(model_.checkOrderedBefore(AddrRange(0x50, 64),
                                           AddrRange(0x10, 64),
                                           shadow_, &why));
}

TEST_F(ArmModelTest, RedundantCleanWarned)
{
    apply(PmOp::write(0x10, 64));
    apply(PmOp::dcCvap(0x10, 64));
    apply(PmOp::dcCvap(0x10, 64));
    ASSERT_EQ(report_.warnCount(), 1u);
    EXPECT_EQ(report_.findings()[0].kind, FindingKind::RedundantFlush);
}

TEST_F(ArmModelTest, UnnecessaryCleanWarned)
{
    apply(PmOp::dcCvap(0x900, 64));
    ASSERT_EQ(report_.warnCount(), 1u);
    EXPECT_EQ(report_.findings()[0].kind,
              FindingKind::UnnecessaryFlush);
}

TEST_F(ArmModelTest, ForeignOpsAreMalformed)
{
    apply(PmOp::clwb(0x10, 64));
    apply(PmOp::sfence());
    apply(PmOp::ofence());
    apply(PmOp::dfence());
    EXPECT_EQ(report_.failCount(), 4u);
    for (const auto &f : report_.findings())
        EXPECT_EQ(f.kind, FindingKind::Malformed);
}

TEST_F(ArmModelTest, ArmOpsMalformedUnderOtherModels)
{
    Engine x86(ModelKind::X86);
    Trace t(1, 0);
    t.append(PmOp::dcCvap(0x10, 64));
    t.append(PmOp::dsb());
    EXPECT_EQ(x86.check(t).failCount(), 2u);

    Engine hops(ModelKind::Hops);
    EXPECT_EQ(hops.check(t).failCount(), 2u);
}

TEST_F(ArmModelTest, EngineEndToEndWithArmModel)
{
    Engine engine(ModelKind::Arm);
    Trace t(1, 0);
    t.append(PmOp::write(0x10, 64));
    t.append(PmOp::dcCvap(0x10, 64));
    t.append(PmOp::dsb());
    t.append(PmOp::write(0x50, 64));
    t.append(PmOp::isPersist(0x10, 64));        // pass
    t.append(PmOp::isPersist(0x50, 64));        // FAIL
    t.append(PmOp::isOrderedBefore(0x10, 64, 0x50, 64)); // pass
    const Report report = engine.check(t);
    ASSERT_EQ(report.failCount(), 1u) << report.str();
    EXPECT_EQ(report.findings()[0].kind, FindingKind::NotPersisted);
}

} // namespace
} // namespace pmtest::core
