#include "core/interval.hh"

#include <gtest/gtest.h>

namespace pmtest::core
{
namespace
{

TEST(IntervalTest, OpenIntervalProperties)
{
    const Interval i = Interval::open(3);
    EXPECT_EQ(i.begin, 3u);
    EXPECT_TRUE(i.isOpen());
    EXPECT_FALSE(i.closedBy(100));
}

TEST(IntervalTest, CloseIsIdempotent)
{
    Interval i = Interval::open(1);
    i.close(4);
    EXPECT_EQ(i.end, 4u);
    i.close(9); // no-op: already closed
    EXPECT_EQ(i.end, 4u);
    EXPECT_TRUE(i.closedBy(4));
    EXPECT_TRUE(i.closedBy(5));
    EXPECT_FALSE(i.closedBy(3));
}

TEST(IntervalTest, OverlapMatchesPaperFig7)
{
    // Paper Fig. 7: A = (0,1), B = (1,inf) do NOT overlap — A is
    // guaranteed complete by the epoch B may begin in.
    const Interval a(0, 1);
    const Interval b = Interval::open(1);
    EXPECT_FALSE(a.overlaps(b));
    EXPECT_TRUE(a.endsBefore(b));

    // Two open intervals starting at different epochs overlap.
    const Interval c = Interval::open(0);
    EXPECT_TRUE(c.overlaps(b));
    EXPECT_FALSE(c.endsBefore(b));
}

TEST(IntervalTest, OverlapIsSymmetric)
{
    const Interval a(0, 2);
    const Interval b(1, 3);
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_TRUE(b.overlaps(a));

    const Interval c(2, 3);
    EXPECT_FALSE(a.overlaps(c));
    EXPECT_FALSE(c.overlaps(a));
}

TEST(IntervalTest, StrFormatsInfinity)
{
    EXPECT_EQ(Interval(0, 1).str(), "(0,1)");
    EXPECT_EQ(Interval::open(2).str(), "(2,inf)");
}

TEST(AddrRangeTest, OverlapAndCoverage)
{
    const AddrRange a(0x100, 0x40);
    const AddrRange b(0x130, 0x40);
    const AddrRange c(0x140, 0x10);
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_FALSE(a.overlaps(c));
    EXPECT_TRUE(b.covers(c));
    EXPECT_FALSE(c.covers(b));
    EXPECT_TRUE(a.covers(a));
}

TEST(AddrRangeTest, EmptyRange)
{
    const AddrRange e(0x10, 0);
    EXPECT_TRUE(e.empty());
    EXPECT_FALSE(e.overlaps(AddrRange(0x0, 0x100)));
}

TEST(AddrRangeTest, StrIsHex)
{
    EXPECT_EQ(AddrRange(0x10, 0x40).str(), "[0x10,0x50)");
}

} // namespace
} // namespace pmtest::core
