#include "core/hops_model.hh"

#include <gtest/gtest.h>

namespace pmtest::core
{
namespace
{

class HopsModelTest : public ::testing::Test
{
  protected:
    void
    apply(const PmOp &op)
    {
        model_.apply(op, shadow_, report_, index_++);
    }

    HopsModel model_;
    ShadowMemory shadow_;
    Report report_;
    size_t index_ = 0;
};

TEST_F(HopsModelTest, PaperFig3bTrace)
{
    // write A; ofence; write B; dfence — both ordered and persisted.
    apply(PmOp::write(0x10, 64)); // A
    apply(PmOp::ofence());
    apply(PmOp::write(0x50, 64)); // B
    apply(PmOp::dfence());

    std::string why;
    EXPECT_TRUE(model_.checkOrderedBefore(AddrRange(0x10, 64),
                                          AddrRange(0x50, 64),
                                          shadow_, &why));
    EXPECT_TRUE(model_.checkPersisted(AddrRange(0x10, 64), shadow_,
                                      &why));
    EXPECT_TRUE(model_.checkPersisted(AddrRange(0x50, 64), shadow_,
                                      &why));
    EXPECT_TRUE(report_.clean());
}

TEST_F(HopsModelTest, OfenceOrdersWithoutDurability)
{
    // Ordering holds after an ofence even though neither write is
    // durable — the defining HOPS relaxation (§5.2).
    apply(PmOp::write(0x10, 64));
    apply(PmOp::ofence());
    apply(PmOp::write(0x50, 64));

    std::string why;
    EXPECT_TRUE(model_.checkOrderedBefore(AddrRange(0x10, 64),
                                          AddrRange(0x50, 64),
                                          shadow_, &why));
    EXPECT_FALSE(model_.checkPersisted(AddrRange(0x10, 64), shadow_,
                                       &why));
    EXPECT_FALSE(model_.checkPersisted(AddrRange(0x50, 64), shadow_,
                                       &why));
}

TEST_F(HopsModelTest, MissingOfenceBreaksOrdering)
{
    apply(PmOp::write(0x10, 64));
    apply(PmOp::write(0x50, 64)); // same epoch: unordered
    std::string why;
    EXPECT_FALSE(model_.checkOrderedBefore(AddrRange(0x10, 64),
                                           AddrRange(0x50, 64),
                                           shadow_, &why));
}

TEST_F(HopsModelTest, DfencePersistsEverythingPrior)
{
    apply(PmOp::write(0x10, 8));
    apply(PmOp::write(0x200, 8));
    apply(PmOp::dfence());
    std::string why;
    EXPECT_TRUE(model_.checkPersisted(AddrRange(0x10, 8), shadow_,
                                      &why));
    EXPECT_TRUE(model_.checkPersisted(AddrRange(0x200, 8), shadow_,
                                      &why));
}

TEST_F(HopsModelTest, WriteAfterDfenceIsNotCovered)
{
    apply(PmOp::write(0x10, 8));
    apply(PmOp::dfence());
    apply(PmOp::write(0x50, 8));
    std::string why;
    EXPECT_FALSE(model_.checkPersisted(AddrRange(0x50, 8), shadow_,
                                       &why));
}

TEST_F(HopsModelTest, X86OpsAreMalformed)
{
    apply(PmOp::clwb(0x10, 64));
    apply(PmOp::sfence());
    EXPECT_EQ(report_.failCount(), 2u);
    for (const auto &f : report_.findings())
        EXPECT_EQ(f.kind, FindingKind::Malformed);
}

} // namespace
} // namespace pmtest::core
