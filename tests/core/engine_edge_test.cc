/**
 * @file
 * Edge-case behaviour of the checking engine: empty and degenerate
 * traces, partial exclusions, zero-size checkers, checker self-
 * ordering, and transaction-checker corner cases.
 */

#include <gtest/gtest.h>

#include "core/engine.hh"

namespace pmtest::core
{
namespace
{

Trace
makeTrace(std::vector<PmOp> ops)
{
    Trace t(1, 0);
    t.append(ops);
    return t;
}

PmOp
op(OpType type, uint64_t addr = 0, uint64_t size = 0)
{
    return PmOp{type, addr, size, 0, 0, {}};
}

TEST(EngineEdgeTest, EmptyTraceIsClean)
{
    Engine engine(ModelKind::X86);
    EXPECT_TRUE(engine.check(Trace()).clean());
}

TEST(EngineEdgeTest, FenceOnlyTraceIsClean)
{
    Engine engine(ModelKind::X86);
    EXPECT_TRUE(engine
                    .check(makeTrace({PmOp::sfence(), PmOp::sfence(),
                                      PmOp::sfence()}))
                    .clean());
}

TEST(EngineEdgeTest, ZeroSizeCheckerPassesVacuously)
{
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        PmOp::write(0x10, 64),
        PmOp::isPersist(0x10, 0),
        PmOp::isOrderedBefore(0x10, 0, 0x50, 0),
    }));
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST(EngineEdgeTest, SelfOrderingFails)
{
    // A range cannot be ordered before itself unless unwritten.
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        PmOp::write(0x10, 64),
        PmOp::clwb(0x10, 64),
        PmOp::sfence(),
        PmOp::isOrderedBefore(0x10, 64, 0x10, 64),
    }));
    EXPECT_EQ(report.failCount(), 1u);
}

TEST(EngineEdgeTest, PartialExclusionStillChecksRest)
{
    // Excluding part of a range does not silence ops on the rest.
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        op(OpType::Exclude, 0x10, 16),
        PmOp::write(0x10, 64), // straddles the exclusion boundary
        PmOp::isPersist(0x10, 64),
    }));
    EXPECT_EQ(report.failCount(), 1u)
        << "the non-excluded part is still unflushed";
}

TEST(EngineEdgeTest, ExclusionAppliesOnlyForward)
{
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        PmOp::write(0x10, 64), // tracked: exclusion comes later
        op(OpType::Exclude, 0x10, 64),
        PmOp::isPersist(0x10, 64), // skipped by the exclusion
    }));
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST(EngineEdgeTest, OverlappingWritesKeepLatestInterval)
{
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        PmOp::write(0x10, 64),
        PmOp::clwb(0x10, 64),
        PmOp::sfence(),
        PmOp::write(0x30, 64), // overlaps the tail of the first
        PmOp::isPersist(0x10, 32),  // untouched prefix: persisted
        PmOp::isPersist(0x30, 64),  // rewritten: open
    }));
    EXPECT_EQ(report.failCount(), 1u) << report.str();
}

TEST(EngineEdgeTest, CheckerBetweenClwbAndFence)
{
    // clwb alone gives no durability guarantee (paper §2.1).
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        PmOp::write(0x10, 64),
        PmOp::clwb(0x10, 64),
        PmOp::isPersist(0x10, 64), // FAIL: fence still outstanding
        PmOp::sfence(),
        PmOp::isPersist(0x10, 64), // pass
    }));
    EXPECT_EQ(report.failCount(), 1u);
    EXPECT_EQ(report.findings()[0].opIndex, 2u);
}

TEST(EngineEdgeTest, BackToBackTransactions)
{
    Engine engine(ModelKind::X86);
    std::vector<PmOp> ops;
    for (int i = 0; i < 5; i++) {
        const uint64_t base = 0x100 * (i + 1);
        ops.push_back(op(OpType::TxCheckStart));
        ops.push_back(op(OpType::TxBegin));
        ops.push_back(op(OpType::TxAdd, base, 64));
        ops.push_back(PmOp::write(base, 64));
        ops.push_back(PmOp::clwb(base, 64));
        ops.push_back(PmOp::sfence());
        ops.push_back(op(OpType::TxEnd));
        ops.push_back(op(OpType::TxCheckEnd));
    }
    EXPECT_TRUE(engine.check(makeTrace(ops)).clean());
}

TEST(EngineEdgeTest, TxCheckRegionWithoutTransaction)
{
    // The checker region can wrap plain low-level code: its auto
    // isPersist still applies to writes inside the region.
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        op(OpType::TxCheckStart),
        PmOp::write(0x10, 64), // never flushed
        op(OpType::TxCheckEnd),
    }));
    ASSERT_EQ(report.failCount(), 1u);
    EXPECT_EQ(report.findings()[0].kind, FindingKind::IncompleteTx);
}

TEST(EngineEdgeTest, SecondTxCheckRegionStartsFresh)
{
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        op(OpType::TxCheckStart),
        PmOp::write(0x10, 64),
        PmOp::clwb(0x10, 64),
        PmOp::sfence(),
        op(OpType::TxCheckEnd),
        op(OpType::TxCheckStart), // the first region's writes are
        op(OpType::TxCheckEnd),   // not re-checked here
    }));
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST(EngineEdgeTest, HopsTransactionChecking)
{
    // The TX checkers are model-independent: a HOPS transaction that
    // ends with a dfence passes; one that ends with only an ofence
    // does not.
    Engine engine(ModelKind::Hops);
    const Report good = engine.check(makeTrace({
        op(OpType::TxCheckStart),
        op(OpType::TxBegin),
        op(OpType::TxAdd, 0x10, 64),
        PmOp::write(0x10, 64),
        PmOp::dfence(),
        op(OpType::TxEnd),
        op(OpType::TxCheckEnd),
    }));
    EXPECT_TRUE(good.clean()) << good.str();

    const Report bad = engine.check(makeTrace({
        op(OpType::TxCheckStart),
        op(OpType::TxBegin),
        op(OpType::TxAdd, 0x10, 64),
        PmOp::write(0x10, 64),
        PmOp::ofence(), // orders but does not persist
        op(OpType::TxEnd),
        op(OpType::TxCheckEnd),
    }));
    ASSERT_EQ(bad.failCount(), 1u);
    EXPECT_EQ(bad.findings()[0].kind, FindingKind::IncompleteTx);
}

TEST(EngineEdgeTest, ManyEpochsDoNotOverflow)
{
    Engine engine(ModelKind::X86);
    std::vector<PmOp> ops;
    for (int i = 0; i < 10000; i++)
        ops.push_back(PmOp::sfence());
    ops.push_back(PmOp::write(0x10, 8));
    ops.push_back(PmOp::clwb(0x10, 8));
    ops.push_back(PmOp::sfence());
    ops.push_back(PmOp::isPersist(0x10, 8));
    EXPECT_TRUE(engine.check(makeTrace(ops)).clean());
}

TEST(EngineEdgeTest, InterleavedIndependentObjects)
{
    // Two objects with interleaved protocols; only the broken one
    // fails its checker.
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        PmOp::write(0x100, 64),
        PmOp::write(0x200, 64),
        PmOp::clwb(0x100, 64),
        PmOp::sfence(),
        PmOp::isPersist(0x100, 64), // pass
        PmOp::isPersist(0x200, 64), // FAIL: no writeback
    }));
    ASSERT_EQ(report.failCount(), 1u);
    EXPECT_EQ(report.findings()[0].opIndex, 5u);
}

} // namespace
} // namespace pmtest::core
