#include "core/x86_model.hh"

#include <gtest/gtest.h>

namespace pmtest::core
{
namespace
{

class X86ModelTest : public ::testing::Test
{
  protected:
    void
    apply(const PmOp &op)
    {
        model_.apply(op, shadow_, report_, index_++);
    }

    X86Model model_;
    ShadowMemory shadow_;
    Report report_;
    size_t index_ = 0;
};

TEST_F(X86ModelTest, WriteClwbSfencePersists)
{
    apply(PmOp::write(0x10, 64));
    apply(PmOp::clwb(0x10, 64));
    apply(PmOp::sfence());
    std::string why;
    EXPECT_TRUE(model_.checkPersisted(AddrRange(0x10, 64), shadow_,
                                      &why));
    EXPECT_TRUE(report_.clean());
}

TEST_F(X86ModelTest, MissingClwbNeverPersists)
{
    apply(PmOp::write(0x10, 64));
    apply(PmOp::sfence());
    std::string why;
    EXPECT_FALSE(model_.checkPersisted(AddrRange(0x10, 64), shadow_,
                                       &why));
    EXPECT_NE(why.find("may not have persisted"), std::string::npos);
}

TEST_F(X86ModelTest, PaperFig4Trace)
{
    // sfence; write A; clwb A; write B; sfence —
    // isOrderedBefore(A,B) FAILs (intervals overlap) and isPersist(B)
    // FAILs (no writeback for B).
    apply(PmOp::sfence());
    apply(PmOp::write(0x10, 64)); // A
    apply(PmOp::clwb(0x10, 64));
    apply(PmOp::write(0x50, 64)); // B
    apply(PmOp::sfence());

    std::string why;
    EXPECT_FALSE(model_.checkOrderedBefore(AddrRange(0x10, 64),
                                           AddrRange(0x50, 64),
                                           shadow_, &why));
    EXPECT_FALSE(model_.checkPersisted(AddrRange(0x50, 64), shadow_,
                                       &why));
    EXPECT_TRUE(model_.checkPersisted(AddrRange(0x10, 64), shadow_,
                                      &why));
}

TEST_F(X86ModelTest, PaperFig7Trace)
{
    // write(0x10,64); clwb(0x10,64); sfence; write(0x50,64);
    // isPersist(0x50) FAILs, isOrderedBefore(0x10, 0x50) passes.
    apply(PmOp::write(0x10, 64));
    apply(PmOp::clwb(0x10, 64));
    apply(PmOp::sfence());
    apply(PmOp::write(0x50, 64));

    std::string why;
    EXPECT_FALSE(model_.checkPersisted(AddrRange(0x50, 64), shadow_,
                                       &why));
    EXPECT_TRUE(model_.checkOrderedBefore(AddrRange(0x10, 64),
                                          AddrRange(0x50, 64),
                                          shadow_, &why));
}

TEST_F(X86ModelTest, OrderedBeforeFailsWhenAPersistsAfterB)
{
    // B persists in epoch window (0,1); A only in (1,2): "A before B"
    // must fail even though the intervals do not overlap.
    apply(PmOp::write(0x50, 64)); // B
    apply(PmOp::clwb(0x50, 64));
    apply(PmOp::sfence());
    apply(PmOp::write(0x10, 64)); // A
    apply(PmOp::clwb(0x10, 64));
    apply(PmOp::sfence());

    std::string why;
    EXPECT_FALSE(model_.checkOrderedBefore(AddrRange(0x10, 64),
                                           AddrRange(0x50, 64),
                                           shadow_, &why));
    EXPECT_TRUE(model_.checkOrderedBefore(AddrRange(0x50, 64),
                                          AddrRange(0x10, 64),
                                          shadow_, &why));
}

TEST_F(X86ModelTest, OrderedBeforeVacuousWithoutWrites)
{
    apply(PmOp::write(0x10, 64));
    std::string why;
    EXPECT_TRUE(model_.checkOrderedBefore(AddrRange(0x10, 64),
                                          AddrRange(0x900, 64),
                                          shadow_, &why));
    EXPECT_TRUE(model_.checkOrderedBefore(AddrRange(0x900, 64),
                                          AddrRange(0x10, 64),
                                          shadow_, &why));
}

TEST_F(X86ModelTest, RedundantFlushWarned)
{
    apply(PmOp::write(0x10, 64));
    apply(PmOp::clwb(0x10, 64));
    apply(PmOp::clwb(0x10, 64));
    ASSERT_EQ(report_.warnCount(), 1u);
    EXPECT_EQ(report_.findings()[0].kind, FindingKind::RedundantFlush);
}

TEST_F(X86ModelTest, UnnecessaryFlushOfUnmodifiedData)
{
    apply(PmOp::clwb(0x900, 64));
    ASSERT_EQ(report_.warnCount(), 1u);
    EXPECT_EQ(report_.findings()[0].kind,
              FindingKind::UnnecessaryFlush);
}

TEST_F(X86ModelTest, UnnecessaryFlushOfCleanData)
{
    apply(PmOp::write(0x10, 64));
    apply(PmOp::clwb(0x10, 64));
    apply(PmOp::sfence());
    apply(PmOp::clwb(0x10, 64)); // data already persistent
    ASSERT_EQ(report_.warnCount(), 1u);
    EXPECT_EQ(report_.findings()[0].kind,
              FindingKind::UnnecessaryFlush);
}

TEST_F(X86ModelTest, FreshWriteThenFlushIsClean)
{
    apply(PmOp::write(0x10, 64));
    apply(PmOp::clwb(0x10, 64));
    apply(PmOp::sfence());
    apply(PmOp::write(0x10, 64)); // re-dirty
    apply(PmOp::clwb(0x10, 64)); // legitimate second flush
    apply(PmOp::sfence());
    EXPECT_TRUE(report_.clean());
}

TEST_F(X86ModelTest, HopsFencesAreMalformed)
{
    apply(PmOp::ofence());
    apply(PmOp::dfence());
    EXPECT_EQ(report_.failCount(), 2u);
    EXPECT_EQ(report_.findings()[0].kind, FindingKind::Malformed);
}

TEST_F(X86ModelTest, ClflushVariantsBehaveLikeClwb)
{
    apply(PmOp{OpType::Clflush, 0x10, 64, 0, 0, {}});
    // Flush of unmodified data warns, like clwb.
    EXPECT_EQ(report_.warnCount(), 1u);

    apply(PmOp::write(0x80, 64));
    apply(PmOp{OpType::ClflushOpt, 0x80, 64, 0, 0, {}});
    apply(PmOp::sfence());
    std::string why;
    EXPECT_TRUE(model_.checkPersisted(AddrRange(0x80, 64), shadow_,
                                      &why));
}

} // namespace
} // namespace pmtest::core
