/**
 * @file
 * Round-trip tests of the detect→repair→replay loop: for each
 * finding kind, a seeded buggy trace must yield a finding whose
 * synthesized FixHint, applied by the trace patcher and replayed
 * through the same engine, produces a clean report — and verifyHints
 * must mark it verified. Plus the negative space: unfixable shapes,
 * deliberately wrong patches, and missing replay traces.
 */

#include "core/fix_verify.hh"

#include <gtest/gtest.h>

#include "core/api.hh"
#include "core/engine.hh"
#include "trace/fix_hint.hh"
#include "util/json.hh"
#include "workloads/bug_injector.hh"

namespace pmtest::core
{
namespace
{

Trace
makeTrace(std::vector<PmOp> ops)
{
    Trace t(1, 0);
    t.append(ops);
    return t;
}

PmOp
op(OpType type, uint64_t addr = 0, uint64_t size = 0)
{
    return PmOp{type, addr, size, 0, 0, {}};
}

/** First finding of @p kind, or nullptr. */
const Finding *
findByKind(const Report &report, FindingKind kind)
{
    for (const Finding &f : report.findings())
        if (f.kind == kind)
            return &f;
    return nullptr;
}

/**
 * The common positive path: check @p trace, expect exactly one
 * finding of @p kind carrying @p action, then verify it by patched
 * replay and expect the replayed trace to come back clean.
 */
void
expectRoundTrip(std::vector<PmOp> ops, ModelKind model,
                FindingKind kind, FixAction action)
{
    const Trace trace = makeTrace(std::move(ops));
    Engine engine(model);
    Report report = engine.check(trace);

    const Finding *f = findByKind(report, kind);
    ASSERT_NE(f, nullptr) << report.str();
    ASSERT_EQ(f->hint.action, action)
        << "wrong action: " << fixActionName(f->hint.action);

    // The hint must actually fix the trace.
    const Trace patched = applyFixHint(trace, f->hint);
    EXPECT_TRUE(engine.check(patched).clean())
        << "patched replay not clean:\n"
        << engine.check(patched).str();

    // ... and verifyHints must agree.
    const HintVerifyStats stats = verifyHints(report, {trace}, model);
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.verified, stats.candidates);
    EXPECT_GE(stats.verified, 1u);
    EXPECT_TRUE(findByKind(report, kind)->hint.verified);
}

TEST(FixVerifyTest, NotPersistedX86RoundTrip)
{
    expectRoundTrip(
        {
            PmOp::write(0x10, 64),
            PmOp::isPersist(0x10, 64),
        },
        ModelKind::X86, FindingKind::NotPersisted,
        FixAction::InsertFlushFence);
}

TEST(FixVerifyTest, NotPersistedFlushedButUnfencedRoundTrip)
{
    // The writeback exists but no fence completes it: the span of
    // un-flushed bytes is empty, so a bare fence is the repair.
    expectRoundTrip(
        {
            PmOp::write(0x10, 64),
            PmOp::clwb(0x10, 64),
            PmOp::isPersist(0x10, 64),
        },
        ModelKind::X86, FindingKind::NotPersisted,
        FixAction::InsertFence);
}

TEST(FixVerifyTest, NotOrderedFig1aRoundTrip)
{
    // The intro's ArrayUpdate bug: val and valid land in the same
    // epoch. The repair materializes val's writeback + fence before
    // valid's write and retires the original trailing writeback.
    expectRoundTrip(
        {
            PmOp::write(0x100, 8),
            PmOp::write(0x140, 1),
            PmOp::clwb(0x100, 8),
            PmOp::clwb(0x140, 1),
            PmOp::sfence(),
            PmOp::isOrderedBefore(0x100, 8, 0x140, 1),
        },
        ModelKind::X86, FindingKind::NotOrdered,
        FixAction::InsertOrdering);
}

TEST(FixVerifyTest, NotOrderedMissingFenceRoundTrip)
{
    // A's writeback precedes B's write; only the fence between the
    // epochs is missing, so the patcher inserts just the fence.
    expectRoundTrip(
        {
            PmOp::write(0x100, 8),
            PmOp::clwb(0x100, 8),
            PmOp::write(0x140, 1),
            PmOp::clwb(0x140, 1),
            PmOp::sfence(),
            PmOp::isOrderedBefore(0x100, 8, 0x140, 1),
        },
        ModelKind::X86, FindingKind::NotOrdered,
        FixAction::InsertOrdering);
}

TEST(FixVerifyTest, NotPersistedHopsRoundTrip)
{
    // HOPS durability repair is a dfence, never a writeback.
    expectRoundTrip(
        {
            PmOp::write(0x10, 64),
            PmOp::isPersist(0x10, 64),
        },
        ModelKind::Hops, FindingKind::NotPersisted,
        FixAction::InsertFence);
}

TEST(FixVerifyTest, NotOrderedHopsRoundTrip)
{
    // HOPS ordering repair is an ofence in front of B's write.
    expectRoundTrip(
        {
            PmOp::write(0x10, 64),
            PmOp::write(0x50, 64),
            PmOp::dfence(),
            PmOp::isOrderedBefore(0x10, 64, 0x50, 64),
        },
        ModelKind::Hops, FindingKind::NotOrdered,
        FixAction::InsertOrdering);
}

TEST(FixVerifyTest, NotPersistedArmRoundTrip)
{
    expectRoundTrip(
        {
            PmOp::write(0x10, 64),
            PmOp::isPersist(0x10, 64),
        },
        ModelKind::Arm, FindingKind::NotPersisted,
        FixAction::InsertFlushFence);
}

TEST(FixVerifyTest, MissingLogRoundTrip)
{
    expectRoundTrip(
        {
            op(OpType::TxBegin),
            op(OpType::TxAdd, 0x10, 64),
            PmOp::write(0x10, 64),
            PmOp::write(0x80, 64), // not backed up
            PmOp::clwb(0x10, 64),
            PmOp::clwb(0x80, 64),
            PmOp::sfence(),
            op(OpType::TxEnd),
        },
        ModelKind::X86, FindingKind::MissingLog,
        FixAction::InsertTxAdd);
}

TEST(FixVerifyTest, IncompleteTxRoundTrip)
{
    expectRoundTrip(
        {
            op(OpType::TxCheckStart),
            op(OpType::TxBegin),
            op(OpType::TxAdd, 0x10, 64),
            PmOp::write(0x10, 64),
            op(OpType::TxEnd), // updates may still be volatile
            op(OpType::TxCheckEnd),
        },
        ModelKind::X86, FindingKind::IncompleteTx,
        FixAction::InsertFlushFence);
}

TEST(FixVerifyTest, UnmatchedTxAtTraceEndRoundTrip)
{
    expectRoundTrip({op(OpType::TxBegin)}, ModelKind::X86,
                    FindingKind::UnmatchedTx, FixAction::InsertTxEnd);
}

TEST(FixVerifyTest, UnmatchedNestedTxRoundTrip)
{
    // Two open transactions: the hint carries count = txDepth and the
    // patcher appends that many TxEnds.
    expectRoundTrip(
        {
            op(OpType::TxBegin),
            op(OpType::TxBegin),
        },
        ModelKind::X86, FindingKind::UnmatchedTx,
        FixAction::InsertTxEnd);
}

TEST(FixVerifyTest, RedundantFlushRoundTrip)
{
    expectRoundTrip(
        {
            PmOp::write(0x10, 64),
            PmOp::clwb(0x10, 64),
            PmOp::clwb(0x10, 64), // same line, same epoch
            PmOp::sfence(),
        },
        ModelKind::X86, FindingKind::RedundantFlush,
        FixAction::DeleteFlush);
}

TEST(FixVerifyTest, UnnecessaryFlushOfCleanDataRoundTrip)
{
    expectRoundTrip(
        {
            PmOp::write(0x10, 64),
            PmOp::clwb(0x10, 64),
            PmOp::sfence(),
            PmOp::clwb(0x10, 64), // already persistent
        },
        ModelKind::X86, FindingKind::UnnecessaryFlush,
        FixAction::DeleteFlush);
}

TEST(FixVerifyTest, UnnecessaryFlushOfUntouchedDataRoundTrip)
{
    expectRoundTrip({PmOp::clwb(0x900, 64)}, ModelKind::X86,
                    FindingKind::UnnecessaryFlush,
                    FixAction::DeleteFlush);
}

TEST(FixVerifyTest, RedundantFlushArmRoundTrip)
{
    expectRoundTrip(
        {
            PmOp::write(0x10, 64),
            PmOp::dcCvap(0x10, 64),
            PmOp::dcCvap(0x10, 64),
            PmOp::dsb(),
        },
        ModelKind::Arm, FindingKind::RedundantFlush,
        FixAction::DeleteFlush);
}

TEST(FixVerifyTest, DuplicateLogRoundTrip)
{
    expectRoundTrip(
        {
            op(OpType::TxBegin),
            op(OpType::TxAdd, 0x10, 64),
            op(OpType::TxAdd, 0x10, 64), // duplicate backup
            PmOp::write(0x10, 64),
            PmOp::clwb(0x10, 64),
            PmOp::sfence(),
            op(OpType::TxEnd),
        },
        ModelKind::X86, FindingKind::DuplicateLog,
        FixAction::DeleteTxAdd);
}

TEST(FixVerifyTest, MalformedCarriesNoHint)
{
    Engine engine(ModelKind::X86);
    const Trace trace = makeTrace({op(OpType::TxEnd)});
    Report report = engine.check(trace);
    ASSERT_EQ(report.failCount(), 1u);
    EXPECT_EQ(report.findings()[0].kind, FindingKind::Malformed);
    EXPECT_FALSE(report.findings()[0].hint.valid());

    const HintVerifyStats stats =
        verifyHints(report, {trace}, ModelKind::X86);
    EXPECT_EQ(stats.candidates, 0u);
}

TEST(FixVerifyTest, WrongPatchIsRejected)
{
    // A fence alone cannot persist a write that was never flushed;
    // forging the hint to InsertFence must fail verification.
    const Trace trace = makeTrace({
        PmOp::write(0x10, 64),
        PmOp::isPersist(0x10, 64),
    });
    Engine engine(ModelKind::X86);
    Report report = engine.check(trace);
    Finding *f = &report.mutableFindings()[0];
    ASSERT_EQ(f->kind, FindingKind::NotPersisted);
    f->hint = FixHint{};
    f->hint.action = FixAction::InsertFence;
    f->hint.opIndex = 1;

    const HintVerifyStats stats =
        verifyHints(report, {trace}, ModelKind::X86);
    EXPECT_EQ(stats.candidates, 1u);
    EXPECT_EQ(stats.rejected, 1u);
    EXPECT_EQ(stats.verified, 0u);
    EXPECT_FALSE(report.findings()[0].hint.verified);
}

TEST(FixVerifyTest, UnfixableOpenTxInsideCheckerIsRejected)
{
    // A TxEnd inserted before the TxCheckEnd closes the transaction,
    // but the original trailing TxEnd then has no match and becomes
    // Malformed: the mechanical repair trades one finding for
    // another, so verification must reject it.
    const Trace trace = makeTrace({
        op(OpType::TxCheckStart),
        op(OpType::TxBegin),
        op(OpType::TxCheckEnd), // TX still open here
        op(OpType::TxEnd),
    });
    Engine engine(ModelKind::X86);
    Report report = engine.check(trace);
    const Finding *f = findByKind(report, FindingKind::UnmatchedTx);
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(f->hint.action, FixAction::InsertTxEnd);

    const HintVerifyStats stats =
        verifyHints(report, {trace}, ModelKind::X86);
    EXPECT_EQ(stats.verified, 0u);
    EXPECT_GE(stats.rejected, 1u);
    EXPECT_FALSE(findByKind(report, FindingKind::UnmatchedTx)
                     ->hint.verified);
}

TEST(FixVerifyTest, MissingTraceIsCounted)
{
    Engine engine(ModelKind::X86);
    Report report = engine.check(makeTrace({
        PmOp::write(0x10, 64),
        PmOp::isPersist(0x10, 64),
    }));
    const HintVerifyStats stats =
        verifyHints(report, std::vector<Trace>{}, ModelKind::X86);
    EXPECT_EQ(stats.candidates, 1u);
    EXPECT_EQ(stats.missingTrace, 1u);
    EXPECT_EQ(stats.verified, 0u);
    EXPECT_FALSE(report.findings()[0].hint.verified);
}

TEST(FixVerifyTest, FixHintsJsonIsBalancedAndTagged)
{
    const Trace trace = makeTrace({
        PmOp::write(0x10, 64),
        PmOp::isPersist(0x10, 64),
    });
    Engine engine(ModelKind::X86);
    Report report = engine.check(trace);
    const HintVerifyStats stats =
        verifyHints(report, {trace}, ModelKind::X86);

    JsonWriter w;
    writeFixHintsJson(w, report, stats, ModelKind::X86);
    EXPECT_TRUE(w.balanced());
    const std::string &json = w.str();
    EXPECT_NE(json.find("pmtest-fixhints-v1"), std::string::npos);
    EXPECT_NE(json.find("insert-flush-fence"), std::string::npos);
    EXPECT_NE(json.find("\"verified\":true"), std::string::npos)
        << json;
}

TEST(FixVerifyTest, CapturedLiveRunRoundTrips)
{
    // End-to-end through the real capture path: an instrumented
    // missing-flush workload, sealed traces intercepted by the
    // capture sink, hints verified against exactly those traces.
    alignas(64) static char cell[64];
    const workloads::CapturedRun run = workloads::capturedRun([] {
        PMTEST_ASSIGN(reinterpret_cast<uint64_t *>(cell),
                      uint64_t{42});
        PMTEST_IS_PERSIST(cell, sizeof(uint64_t));
    });
    ASSERT_FALSE(run.traces.empty());
    Report report = run.report;
    const Finding *f =
        findByKind(report, FindingKind::NotPersisted);
    ASSERT_NE(f, nullptr) << report.str();
    ASSERT_TRUE(f->hint.valid());

    const HintVerifyStats stats =
        verifyHints(report, run.traces, ModelKind::X86);
    EXPECT_EQ(stats.missingTrace, 0u);
    EXPECT_GE(stats.verified, 1u);
    EXPECT_EQ(stats.rejected, 0u);
}

} // namespace
} // namespace pmtest::core
