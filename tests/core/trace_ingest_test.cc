/**
 * @file
 * Unified-ingest tests: the arena-ownership regression (a Report
 * must stay valid after every pipeline object that produced it is
 * destroyed), multi-source ingest stats, and the engine's fileId
 * stamping of findings.
 */

#include "core/trace_ingest.hh"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "trace/trace_io.hh"

namespace pmtest::core
{
namespace
{

std::string
tmpPath(const char *tag)
{
    return "/tmp/pmtest_trace_ingest_test_" +
           std::to_string(getpid()) + "_" + tag + ".bin";
}

/** A trace whose un-flushed store produces one FAIL finding. */
Trace
buggyTrace(uint64_t id)
{
    Trace t(id, 0);
    t.append(PmOp::write(0x1000, 64,
                         SourceLocation("workload.cc", 42)));
    t.append(PmOp::sfence(SourceLocation("workload.cc", 43)));
    t.append(PmOp::isPersist(0x1000, 64,
                             SourceLocation("checker.cc", 9)));
    return t;
}

TEST(TraceIngestTest, ReportOutlivesEveryPipelineObject)
{
    const std::string path = tmpPath("arena_lifetime");
    {
        std::vector<Trace> traces;
        for (uint64_t i = 0; i < 4; i++)
            traces.push_back(buggyTrace(i));
        ASSERT_TRUE(saveTracesToFile(path, traces, TraceFormat::V2));
    }

    // Everything that could own the decoded file-name strings —
    // source, reader, pool, engines, the traces themselves — is
    // destroyed inside this scope. Only the report survives.
    Report merged;
    {
        std::string error;
        auto source =
            openTraceSource(path, IngestMode::Auto, 0, &error);
        ASSERT_TRUE(source) << error;
        PoolOptions options;
        options.workers = 2;
        EnginePool pool(options);
        SourceError source_error;
        ASSERT_TRUE(ingest(*source, pool, IngestOptions{}, nullptr,
                           &source_error))
            << source_error.str();
        merged = pool.results();
    }
    std::remove(path.c_str());
    merged.canonicalize();

    // The report shares ownership of the decoder arenas, so the
    // findings' const char* locations are still readable (under
    // ASan a dangling arena would fault here).
    ASSERT_EQ(merged.failCount(), 4u);
    EXPECT_FALSE(merged.arenas().empty());
    for (const auto &finding : merged.findings()) {
        ASSERT_TRUE(finding.loc.valid());
        EXPECT_EQ(std::string(finding.loc.file), "checker.cc");
        EXPECT_EQ(finding.loc.line, 9u);
    }
}

TEST(TraceIngestTest, MergePropagatesHeldArenas)
{
    const std::string path = tmpPath("merge_arenas");
    {
        std::vector<Trace> traces{buggyTrace(0)};
        ASSERT_TRUE(saveTracesToFile(path, traces, TraceFormat::V2));
    }

    Report outer;
    {
        std::string error;
        auto source =
            openTraceSource(path, IngestMode::Auto, 0, &error);
        ASSERT_TRUE(source) << error;
        EnginePool pool(PoolOptions{});
        SourceError source_error;
        ASSERT_TRUE(ingest(*source, pool, IngestOptions{}, nullptr,
                           &source_error));
        const Report inner = pool.results();
        EXPECT_FALSE(inner.arenas().empty());
        outer.merge(inner);
    }
    std::remove(path.c_str());

    EXPECT_FALSE(outer.arenas().empty())
        << "merge must carry arena ownership into the aggregate";
    ASSERT_EQ(outer.failCount(), 1u);
    EXPECT_EQ(std::string(outer.findings()[0].loc.file),
              "checker.cc");
}

TEST(TraceIngestTest, MultiSourceStatsAndFileIdStamping)
{
    const std::string path_a = tmpPath("multi_a");
    const std::string path_b = tmpPath("multi_b");
    {
        std::vector<Trace> a{buggyTrace(0), buggyTrace(1)};
        std::vector<Trace> b{buggyTrace(0)};
        ASSERT_TRUE(saveTracesToFile(path_a, a, TraceFormat::V2));
        ASSERT_TRUE(saveTracesToFile(path_b, b, TraceFormat::V1));
    }

    std::string error;
    std::vector<std::unique_ptr<TraceSource>> children;
    children.push_back(
        openTraceSource(path_a, IngestMode::Auto, 0, &error));
    ASSERT_TRUE(children.back()) << error;
    children.push_back(
        openTraceSource(path_b, IngestMode::Auto, 1, &error));
    ASSERT_TRUE(children.back()) << error;
    MultiTraceSource combined(std::move(children));

    EnginePool pool(PoolOptions{});
    IngestStats stats;
    SourceError source_error;
    ASSERT_TRUE(ingest(combined, pool, IngestOptions{}, &stats,
                       &source_error))
        << source_error.str();
    EXPECT_TRUE(stats.active);
    EXPECT_EQ(stats.sources, 2u);
    EXPECT_EQ(stats.tracesDecoded, 3u);
    // The v1 child is buffer-backed, so the composite is not fully
    // mmap-backed.
    EXPECT_FALSE(stats.mmapBacked);

    Report merged = pool.results();
    merged.canonicalize();
    ASSERT_EQ(merged.failCount(), 3u);
    // Canonical order is (fileId, traceId): file 0's traces 0, 1
    // first, then file 1's trace 0 — even though its traceId ties
    // with file 0's first trace.
    ASSERT_EQ(merged.findings().size(), 3u);
    EXPECT_EQ(merged.findings()[0].fileId, 0u);
    EXPECT_EQ(merged.findings()[0].traceId, 0u);
    EXPECT_EQ(merged.findings()[1].fileId, 0u);
    EXPECT_EQ(merged.findings()[1].traceId, 1u);
    EXPECT_EQ(merged.findings()[2].fileId, 1u);
    EXPECT_EQ(merged.findings()[2].traceId, 0u);

    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

} // namespace
} // namespace pmtest::core
