/**
 * @file
 * Equivalence guarantees for the devirtualised checking kernel: the
 * model-templated fast path (which batches write runs into sorted
 * shadow splices), the same kernel with batching off
 * (Dispatch::TemplatedPerOp), the virtual-dispatch per-op oracle,
 * and a reused (state-retaining) engine must all emit byte-identical
 * reports — (kind, opIndex, message) — on random traces, on the
 * Table 1 data-structure workloads, and on the seeded-bug corpus.
 * Dispatch, batching and state reuse are performance features, never
 * semantic ones.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "core/api.hh"
#include "core/engine.hh"
#include "pmds/pm_map.hh"
#include "trace/seed_corpus.hh"
#include "txlib/obj_pool.hh"
#include "util/random.hh"

namespace pmtest::core
{
namespace
{

/** Full report signature: every finding as (kind, opIndex, message). */
std::vector<std::tuple<int, size_t, std::string>>
signature(const Report &report)
{
    std::vector<std::tuple<int, size_t, std::string>> sig;
    for (const auto &f : report.findings())
        sig.emplace_back(static_cast<int>(f.kind), f.opIndex, f.message);
    std::sort(sig.begin(), sig.end());
    return sig;
}

/** Random trace of PM ops, TX events and checkers for @p kind. */
Trace
randomTrace(Rng &rng, uint64_t id, ModelKind kind)
{
    Trace trace(id, 0);
    int tx_depth = 0;
    const size_t n = 5 + rng.below(40);
    for (size_t i = 0; i < n; i++) {
        const uint64_t addr = 64 * rng.below(16);
        switch (rng.below(10)) {
          case 0:
          case 1:
          case 2:
            trace.append(PmOp::write(addr, 8 + rng.below(56)));
            break;
          case 3:
          case 4:
            trace.append(PmOp::clwb(addr, 64));
            break;
          case 5:
            trace.append(PmOp::sfence());
            break;
          case 6:
            trace.append(PmOp::isPersist(addr, 64));
            break;
          case 7:
            trace.append(
                PmOp::isOrderedBefore(addr, 64, 64 * rng.below(16), 64));
            break;
          case 8:
            trace.append(PmOp{OpType::TxBegin, 0, 0, 0, 0, {}});
            tx_depth++;
            break;
          default:
            if (tx_depth > 0) {
                trace.append(PmOp{OpType::TxAdd, addr, 64, 0, 0, {}});
            } else {
                trace.append(PmOp::sfence());
            }
        }
    }
    while (tx_depth-- > 0)
        trace.append(PmOp{OpType::TxEnd, 0, 0, 0, 0, {}});

    // Rewrite the flush/fence ops into the target model's vocabulary.
    for (auto &op : trace.mutableOps()) {
        if (kind == ModelKind::Hops) {
            if (op.type == OpType::Sfence)
                op.type = OpType::Dfence;
            if (op.type == OpType::Clwb)
                op.type = OpType::Ofence;
        } else if (kind == ModelKind::Arm) {
            if (op.type == OpType::Sfence)
                op.type = OpType::Dsb;
            if (op.type == OpType::Clwb)
                op.type = OpType::DcCvap;
        }
    }
    return trace;
}

class KernelEquivalenceTest : public ::testing::TestWithParam<ModelKind>
{
};

TEST_P(KernelEquivalenceTest, TemplatedMatchesVirtualDispatch)
{
    const ModelKind kind = GetParam();
    Rng rng(0xbeef + static_cast<uint64_t>(kind));

    Engine templated(kind);
    Engine per_op(kind, Engine::Dispatch::TemplatedPerOp);
    Engine virtualised(kind, Engine::Dispatch::Virtual);
    ASSERT_EQ(templated.dispatch(), Engine::Dispatch::Templated);
    ASSERT_EQ(per_op.dispatch(), Engine::Dispatch::TemplatedPerOp);
    ASSERT_EQ(virtualised.dispatch(), Engine::Dispatch::Virtual);

    for (int round = 0; round < 60; round++) {
        const Trace trace = randomTrace(rng, round, kind);
        const auto fast = signature(templated.check(trace));
        const auto unbatched = signature(per_op.check(trace));
        const auto slow = signature(virtualised.check(trace));
        ASSERT_EQ(fast, slow) << "round " << round;
        ASSERT_EQ(unbatched, slow) << "round " << round;
    }
}

TEST_P(KernelEquivalenceTest, WriteRunBatchingMatchesOracle)
{
    // Long write runs are what the batched kernel coalesces; make
    // them adversarial: overlapping writes inside a run (forces the
    // mid-run flush), empty writes (must vanish without a trace, as
    // per-op exclusion-covers treats them vacuously), runs longer
    // than the batch cap, and runs cut short by every other op type.
    const ModelKind kind = GetParam();
    Rng rng(0xfeed + static_cast<uint64_t>(kind));

    Engine templated(kind);
    Engine per_op(kind, Engine::Dispatch::TemplatedPerOp);
    Engine virtualised(kind, Engine::Dispatch::Virtual);

    for (int round = 0; round < 40; round++) {
        Trace trace(round, 0);
        const size_t runs = 1 + rng.below(6);
        for (size_t run = 0; run < runs; run++) {
            const size_t len = 1 + rng.below(80);
            for (size_t w = 0; w < len; w++) {
                const uint64_t addr = 64 * rng.below(24);
                const uint64_t size =
                    rng.below(10) == 0 ? 0 : 8 + rng.below(120);
                trace.append(PmOp::write(addr, size));
            }
            switch (rng.below(4)) {
              case 0:
                trace.append(PmOp::clwb(64 * rng.below(24), 64));
                break;
              case 1:
                trace.append(PmOp::sfence());
                break;
              case 2:
                trace.append(PmOp::isPersist(64 * rng.below(24), 64));
                break;
              default:
                break; // back-to-back runs
            }
        }
        for (auto &op : trace.mutableOps()) {
            if (kind == ModelKind::Hops) {
                if (op.type == OpType::Sfence)
                    op.type = OpType::Dfence;
                if (op.type == OpType::Clwb)
                    op.type = OpType::Ofence;
            } else if (kind == ModelKind::Arm) {
                if (op.type == OpType::Sfence)
                    op.type = OpType::Dsb;
                if (op.type == OpType::Clwb)
                    op.type = OpType::DcCvap;
            }
        }
        const auto oracle = signature(virtualised.check(trace));
        ASSERT_EQ(signature(templated.check(trace)), oracle)
            << "round " << round;
        ASSERT_EQ(signature(per_op.check(trace)), oracle)
            << "round " << round;
    }
}

TEST_P(KernelEquivalenceTest, ReusedEngineMatchesFreshEngine)
{
    const ModelKind kind = GetParam();
    Rng rng(0xcafe + static_cast<uint64_t>(kind));

    // One engine reused across every trace (the pool-worker pattern)
    // against a throwaway engine per trace: leaked state would show up
    // as diverging findings.
    Engine reused(kind);
    for (int round = 0; round < 60; round++) {
        const Trace trace = randomTrace(rng, round, kind);
        Engine fresh(kind);
        const auto expected = signature(fresh.check(trace));
        ASSERT_EQ(signature(reused.check(trace)), expected)
            << "round " << round;
        // And checking the same trace twice on the reused engine must
        // be idempotent.
        ASSERT_EQ(signature(reused.check(trace)), expected)
            << "round " << round;
    }
}

INSTANTIATE_TEST_SUITE_P(Models, KernelEquivalenceTest,
                         ::testing::Values(ModelKind::X86, ModelKind::Hops,
                                           ModelKind::Arm),
                         [](const auto &info) {
                             switch (info.param) {
                               case ModelKind::X86:
                                 return "X86";
                               case ModelKind::Hops:
                                 return "Hops";
                               default:
                                 return "Arm";
                             }
                         });

/** Capture the traces a pmds map workload emits instead of checking. */
std::vector<Trace>
recordMapWorkload(pmds::MapKind kind, uint64_t seed)
{
    txlib::ObjPool pool(32 << 20);
    auto map = pmds::makeMap(kind, pool);

    pmtestInit(Config{});
    pmtestThreadInit();

    std::vector<Trace> traces;
    pmtestSetTraceSink([&](Trace &&trace) {
        traces.push_back(std::move(trace));
    });
    pmtestStart();

    Rng rng(seed);
    std::vector<uint8_t> value(64, 0x5a);
    for (int step = 0; step < 200; step++) {
        const uint64_t key = 1 + rng.below(60);
        if (rng.chance(70, 100)) {
            map->insert(key, value.data(), value.size());
        } else {
            map->remove(key);
        }
        if (step % 50 == 49)
            pmtestSendTrace();
    }
    pmtestSendTrace();
    pmtestSetTraceSink(nullptr);
    pmtestExit();
    return traces;
}

TEST(KernelEquivalenceTable1Test, WorkloadReportsAreIdentical)
{
    // The Table 1 structures drive the kernel through the real op mix
    // (TX events, flushes, checkers). Reports from the rewritten
    // kernel must match the virtual-dispatch baseline finding for
    // finding, message for message.
    const pmds::MapKind kinds[] = {
        pmds::MapKind::Ctree,
        pmds::MapKind::Btree,
        pmds::MapKind::Rbtree,
        pmds::MapKind::HashmapTx,
        pmds::MapKind::HashmapAtomic,
    };

    for (const auto kind : kinds) {
        const std::vector<Trace> traces = recordMapWorkload(kind, 1234);
        ASSERT_FALSE(traces.empty());

        Engine reused(ModelKind::X86);
        Engine per_op(ModelKind::X86,
                      Engine::Dispatch::TemplatedPerOp);
        size_t ops = 0;
        for (const auto &trace : traces) {
            ops += trace.size();
            Engine baseline(ModelKind::X86, Engine::Dispatch::Virtual);
            const auto oracle = signature(baseline.check(trace));
            ASSERT_EQ(signature(reused.check(trace)), oracle)
                << "map kind " << static_cast<int>(kind);
            ASSERT_EQ(signature(per_op.check(trace)), oracle)
                << "map kind " << static_cast<int>(kind);
        }
        EXPECT_GT(ops, 0u);
    }
}

TEST(KernelEquivalenceCorpusTest, SeededBugVerdictsAreIdentical)
{
    // The seeded-bug corpus is the repair loop's regression anchor:
    // every dispatch mode must report each planted bug identically,
    // finding for finding, message for message — and actually find
    // something in every case.
    const std::vector<SeedTrace> corpus = seedCorpusTraces();
    ASSERT_FALSE(corpus.empty());

    Engine templated(ModelKind::X86);
    Engine per_op(ModelKind::X86, Engine::Dispatch::TemplatedPerOp);
    for (const SeedTrace &seed : corpus) {
        Engine oracle(ModelKind::X86, Engine::Dispatch::Virtual);
        const auto expected = signature(oracle.check(seed.trace));
        EXPECT_FALSE(expected.empty()) << seed.name;
        ASSERT_EQ(signature(templated.check(seed.trace)), expected)
            << seed.name;
        ASSERT_EQ(signature(per_op.check(seed.trace)), expected)
            << seed.name;
    }
}

} // namespace
} // namespace pmtest::core
