#include "core/interval_map.hh"

#include <gtest/gtest.h>

#include <map>

#include "util/random.hh"

namespace pmtest::core
{
namespace
{

TEST(IntervalMapTest, AssignAndQuery)
{
    IntervalMap<int> m;
    m.assign(AddrRange(10, 10), 1);
    EXPECT_TRUE(m.anyOverlap(AddrRange(15, 1)));
    EXPECT_FALSE(m.anyOverlap(AddrRange(20, 5)));
    EXPECT_FALSE(m.anyOverlap(AddrRange(0, 10)));
    EXPECT_EQ(m.size(), 1u);
}

TEST(IntervalMapTest, OverwriteSplitsBoundaries)
{
    IntervalMap<int> m;
    m.assign(AddrRange(0, 30), 1);
    m.assign(AddrRange(10, 10), 2);

    std::vector<std::tuple<uint64_t, uint64_t, int>> entries;
    m.forEach([&](const auto &e) {
        entries.emplace_back(e.start, e.end, e.value);
    });
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0], std::make_tuple(0u, 10u, 1));
    EXPECT_EQ(entries[1], std::make_tuple(10u, 20u, 2));
    EXPECT_EQ(entries[2], std::make_tuple(20u, 30u, 1));
}

TEST(IntervalMapTest, EraseLeavesRemainders)
{
    IntervalMap<int> m;
    m.assign(AddrRange(0, 100), 7);
    m.erase(AddrRange(40, 20));
    EXPECT_TRUE(m.anyOverlap(AddrRange(0, 40)));
    EXPECT_FALSE(m.anyOverlap(AddrRange(40, 20)));
    EXPECT_TRUE(m.anyOverlap(AddrRange(60, 40)));
}

TEST(IntervalMapTest, ForEachOverlapClips)
{
    IntervalMap<int> m;
    m.assign(AddrRange(0, 100), 1);
    m.forEachOverlap(AddrRange(30, 10), [](const auto &e) {
        EXPECT_EQ(e.start, 30u);
        EXPECT_EQ(e.end, 40u);
    });
}

TEST(IntervalMapTest, CoversDetectsGaps)
{
    IntervalMap<int> m;
    m.assign(AddrRange(0, 10), 1);
    m.assign(AddrRange(10, 10), 2);
    m.assign(AddrRange(25, 10), 3);
    EXPECT_TRUE(m.covers(AddrRange(0, 20)));
    EXPECT_TRUE(m.covers(AddrRange(5, 10)));
    EXPECT_FALSE(m.covers(AddrRange(0, 30)));
    EXPECT_FALSE(m.covers(AddrRange(18, 10)));
    EXPECT_TRUE(m.covers(AddrRange(7, 0))); // empty is covered
}

TEST(IntervalMapTest, MutableIteration)
{
    IntervalMap<int> m;
    m.assign(AddrRange(0, 10), 1);
    m.assign(AddrRange(10, 10), 2);
    m.forEachOverlapMut(AddrRange(0, 20),
                        [](uint64_t, uint64_t, int &v) { v *= 10; });
    m.forEachOverlap(AddrRange(0, 20), [](const auto &e) {
        EXPECT_EQ(e.value % 10, 0);
    });
}

/** Reference model: byte-granular map. */
class IntervalMapModelTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(IntervalMapModelTest, MatchesByteGranularReference)
{
    Rng rng(GetParam());
    IntervalMap<int> m;
    std::map<uint64_t, int> reference; // byte -> value

    for (int step = 0; step < 300; step++) {
        const uint64_t start = rng.below(256);
        const uint64_t size = 1 + rng.below(32);
        if (rng.chance(3, 4)) {
            const int value = static_cast<int>(rng.below(100));
            m.assign(AddrRange(start, size), value);
            for (uint64_t a = start; a < start + size; a++)
                reference[a] = value;
        } else {
            m.erase(AddrRange(start, size));
            for (uint64_t a = start; a < start + size; a++)
                reference.erase(a);
        }

        // Validate with random probes.
        for (int probe = 0; probe < 5; probe++) {
            const uint64_t p_start = rng.below(280);
            const uint64_t p_size = 1 + rng.below(16);

            std::map<uint64_t, int> got;
            m.forEachOverlap(
                AddrRange(p_start, p_size), [&](const auto &e) {
                    for (uint64_t a = e.start; a < e.end; a++)
                        got[a] = e.value;
                });

            std::map<uint64_t, int> expect;
            for (uint64_t a = p_start; a < p_start + p_size; a++) {
                auto it = reference.find(a);
                if (it != reference.end())
                    expect[a] = it->second;
            }
            ASSERT_EQ(got, expect) << "step " << step;

            const bool covers =
                m.covers(AddrRange(p_start, p_size));
            EXPECT_EQ(covers, expect.size() == p_size);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalMapModelTest,
                         ::testing::Values(1, 2, 3, 4, 5));

} // namespace
} // namespace pmtest::core
