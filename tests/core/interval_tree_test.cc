#include "core/interval_tree.hh"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.hh"

namespace pmtest::core
{
namespace
{

TEST(IntervalTreeTest, EmptyTree)
{
    IntervalTree<int> t;
    EXPECT_TRUE(t.empty());
    EXPECT_FALSE(t.anyOverlap(AddrRange(0, 100)));
    EXPECT_FALSE(t.covers(AddrRange(0, 1)));
    EXPECT_TRUE(t.covers(AddrRange(0, 0)));
}

TEST(IntervalTreeTest, OverlapQueries)
{
    IntervalTree<int> t;
    t.insert(AddrRange(10, 10), 1);
    t.insert(AddrRange(30, 10), 2);
    EXPECT_TRUE(t.anyOverlap(AddrRange(15, 1)));
    EXPECT_TRUE(t.anyOverlap(AddrRange(35, 10)));
    EXPECT_FALSE(t.anyOverlap(AddrRange(20, 10)));
    EXPECT_FALSE(t.anyOverlap(AddrRange(0, 10)));
}

TEST(IntervalTreeTest, OverlappingIntervalsCoexist)
{
    IntervalTree<int> t;
    t.insert(AddrRange(0, 20), 1);
    t.insert(AddrRange(10, 20), 2);
    int hits = 0;
    t.forEachOverlap(AddrRange(15, 1),
                     [&](const AddrRange &, const int &) { hits++; });
    EXPECT_EQ(hits, 2);
}

TEST(IntervalTreeTest, CoversSweepsUnions)
{
    IntervalTree<int> t;
    t.insert(AddrRange(0, 10), 1);
    t.insert(AddrRange(8, 10), 2); // overlaps the first
    t.insert(AddrRange(18, 5), 3); // adjacent
    EXPECT_TRUE(t.covers(AddrRange(0, 23)));
    EXPECT_FALSE(t.covers(AddrRange(0, 24)));
    EXPECT_TRUE(t.covers(AddrRange(5, 10)));
}

TEST(IntervalTreeTest, ClearResets)
{
    IntervalTree<int> t;
    t.insert(AddrRange(0, 10), 1);
    t.clear();
    EXPECT_TRUE(t.empty());
    EXPECT_FALSE(t.anyOverlap(AddrRange(0, 10)));
}

TEST(IntervalTreeTest, StaysBalancedUnderSortedInsertion)
{
    // Sorted insertion is the AVL worst case; with balancing, large N
    // still answers overlap queries correctly and quickly.
    IntervalTree<int> t;
    constexpr int kN = 10000;
    for (int i = 0; i < kN; i++)
        t.insert(AddrRange(i * 10, 5), i);
    EXPECT_EQ(t.size(), static_cast<size_t>(kN));
    for (int i = 0; i < kN; i += 97) {
        EXPECT_TRUE(t.anyOverlap(AddrRange(i * 10, 1)));
        EXPECT_FALSE(t.anyOverlap(AddrRange(i * 10 + 5, 5)));
    }
}

class IntervalTreeRandomTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(IntervalTreeRandomTest, MatchesLinearReference)
{
    Rng rng(GetParam());
    IntervalTree<int> t;
    std::vector<AddrRange> reference;

    for (int i = 0; i < 500; i++) {
        const AddrRange r(rng.below(1000), 1 + rng.below(50));
        t.insert(r, i);
        reference.push_back(r);

        const AddrRange probe(rng.below(1050), 1 + rng.below(30));
        bool expect_overlap = false;
        for (const auto &x : reference)
            expect_overlap |= x.overlaps(probe);
        ASSERT_EQ(t.anyOverlap(probe), expect_overlap) << "step " << i;

        size_t expect_hits = 0;
        for (const auto &x : reference)
            expect_hits += x.overlaps(probe) ? 1 : 0;
        size_t hits = 0;
        t.forEachOverlap(probe,
                         [&](const AddrRange &, const int &) { hits++; });
        ASSERT_EQ(hits, expect_hits);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalTreeRandomTest,
                         ::testing::Values(10, 20, 30));

} // namespace
} // namespace pmtest::core
