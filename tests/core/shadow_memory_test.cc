#include "core/shadow_memory.hh"

#include <gtest/gtest.h>

namespace pmtest::core
{
namespace
{

TEST(ShadowMemoryTest, WriteOpensPersistInterval)
{
    ShadowMemory shadow;
    shadow.recordWrite(AddrRange(0x10, 64));
    const auto intervals = shadow.persistIntervals(AddrRange(0x10, 64));
    ASSERT_EQ(intervals.size(), 1u);
    EXPECT_EQ(intervals[0].second, Interval::open(0));
    EXPECT_FALSE(shadow.allPersisted(AddrRange(0x10, 64)));
}

TEST(ShadowMemoryTest, UnwrittenRangePassesVacuously)
{
    ShadowMemory shadow;
    EXPECT_TRUE(shadow.allPersisted(AddrRange(0x1000, 64)));
    EXPECT_FALSE(shadow.anyWrite(AddrRange(0x1000, 64)));
}

TEST(ShadowMemoryTest, FenceClosesFlushedWrite)
{
    ShadowMemory shadow;
    shadow.recordWrite(AddrRange(0x10, 64));
    shadow.recordClwb(AddrRange(0x10, 64));
    shadow.bumpTimestamp();
    shadow.completePendingFlushes();

    EXPECT_TRUE(shadow.allPersisted(AddrRange(0x10, 64)));
    const auto intervals = shadow.persistIntervals(AddrRange(0x10, 64));
    ASSERT_EQ(intervals.size(), 1u);
    EXPECT_EQ(intervals[0].second, Interval(0, 1));
}

TEST(ShadowMemoryTest, FenceWithoutFlushLeavesOpen)
{
    ShadowMemory shadow;
    shadow.recordWrite(AddrRange(0x10, 64));
    shadow.bumpTimestamp();
    shadow.completePendingFlushes();
    EXPECT_FALSE(shadow.allPersisted(AddrRange(0x10, 64)));
}

TEST(ShadowMemoryTest, WriteAfterClwbInvalidatesPendingFlush)
{
    // write A; clwb A; write A; sfence — the second store is not
    // covered by the writeback (paper §4.4 write rule clears status).
    ShadowMemory shadow;
    shadow.recordWrite(AddrRange(0x10, 8));
    shadow.recordClwb(AddrRange(0x10, 8));
    shadow.recordWrite(AddrRange(0x10, 8));
    shadow.bumpTimestamp();
    shadow.completePendingFlushes();
    EXPECT_FALSE(shadow.allPersisted(AddrRange(0x10, 8)));
}

TEST(ShadowMemoryTest, PartialOverwriteKeepsOtherBytes)
{
    ShadowMemory shadow;
    shadow.recordWrite(AddrRange(0, 64));
    shadow.recordClwb(AddrRange(0, 64));
    shadow.bumpTimestamp();
    shadow.completePendingFlushes(); // all persisted

    shadow.recordWrite(AddrRange(16, 16)); // re-dirty the middle
    EXPECT_TRUE(shadow.allPersisted(AddrRange(0, 16)));
    EXPECT_FALSE(shadow.allPersisted(AddrRange(16, 16)));
    EXPECT_FALSE(shadow.allPersisted(AddrRange(0, 64)));
    AddrRange open;
    EXPECT_FALSE(shadow.allPersisted(AddrRange(0, 64), &open));
    EXPECT_EQ(open.addr, 16u);
}

TEST(ShadowMemoryTest, ScanClwbFlagsRedundantFlush)
{
    ShadowMemory shadow;
    shadow.recordWrite(AddrRange(0x10, 8));
    shadow.recordClwb(AddrRange(0x10, 8));
    const ClwbScan scan = shadow.scanClwb(AddrRange(0x10, 8));
    EXPECT_TRUE(scan.redundant);
}

TEST(ShadowMemoryTest, ScanClwbFlagsUnmodifiedData)
{
    ShadowMemory shadow;
    const ClwbScan scan = shadow.scanClwb(AddrRange(0x99, 8));
    EXPECT_TRUE(scan.unmodified);
    EXPECT_FALSE(scan.redundant);
}

TEST(ShadowMemoryTest, ScanClwbFlagsAlreadyCleanData)
{
    ShadowMemory shadow;
    shadow.recordWrite(AddrRange(0x10, 8));
    shadow.recordClwb(AddrRange(0x10, 8));
    shadow.bumpTimestamp();
    shadow.completePendingFlushes();
    const ClwbScan scan = shadow.scanClwb(AddrRange(0x10, 8));
    EXPECT_TRUE(scan.alreadyClean);
    EXPECT_FALSE(scan.redundant);
    EXPECT_FALSE(scan.unmodified);
}

TEST(ShadowMemoryTest, CleanScanOnFreshWrite)
{
    ShadowMemory shadow;
    shadow.recordWrite(AddrRange(0x10, 8));
    const ClwbScan scan = shadow.scanClwb(AddrRange(0x10, 8));
    EXPECT_FALSE(scan.redundant);
    EXPECT_FALSE(scan.unmodified);
    EXPECT_FALSE(scan.alreadyClean);
}

TEST(ShadowMemoryTest, DuplicateClwbCoalescesWithinEpoch)
{
    // Regression: repeated clwb of the same line used to append a new
    // fence-pending entry per call, making completePendingFlushes()
    // O(flushes x overlaps) within an epoch. Duplicates must coalesce
    // at record time.
    ShadowMemory shadow;
    shadow.recordWrite(AddrRange(0x10, 64));
    for (int i = 0; i < 1000; i++)
        shadow.recordClwb(AddrRange(0x10, 64));
    EXPECT_EQ(shadow.pendingFlushCount(), 1u);

    shadow.bumpTimestamp();
    shadow.completePendingFlushes();
    EXPECT_EQ(shadow.pendingFlushCount(), 0u);
    EXPECT_TRUE(shadow.allPersisted(AddrRange(0x10, 64)));
    const auto intervals = shadow.persistIntervals(AddrRange(0x10, 64));
    ASSERT_EQ(intervals.size(), 1u);
    EXPECT_EQ(intervals[0].second, Interval(0, 1));
}

TEST(ShadowMemoryTest, OverlappingClwbRangesStayDisjoint)
{
    // Overlapping flush ranges carve into disjoint pending entries
    // instead of accumulating one entry per issued clwb.
    ShadowMemory shadow;
    shadow.recordWrite(AddrRange(0, 128));
    for (int i = 0; i < 100; i++) {
        shadow.recordClwb(AddrRange(0, 64));
        shadow.recordClwb(AddrRange(32, 64)); // overlaps the first
    }
    EXPECT_LE(shadow.pendingFlushCount(), 3u);

    shadow.bumpTimestamp();
    shadow.completePendingFlushes();
    EXPECT_TRUE(shadow.allPersisted(AddrRange(0, 96)));
    EXPECT_FALSE(shadow.allPersisted(AddrRange(96, 32))); // unflushed
}

TEST(ShadowMemoryTest, DuplicateWritesCoalesceOpenWriteBookkeeping)
{
    // The HOPS dfence path keeps written-since-dfence ranges; writing
    // the same word in a loop must not grow that set.
    ShadowMemory shadow;
    for (int i = 0; i < 1000; i++)
        shadow.recordWrite(AddrRange(0x40, 8));
    EXPECT_EQ(shadow.openWriteCount(), 1u);

    shadow.bumpTimestamp();
    shadow.completeAllWrites();
    EXPECT_EQ(shadow.openWriteCount(), 0u);
    EXPECT_TRUE(shadow.allPersisted(AddrRange(0x40, 8)));
}

TEST(ShadowMemoryTest, WriteAfterClwbStillInvalidatesCoalescedFlush)
{
    // The coalesced bookkeeping must preserve the invalidation rule:
    // a write after the clwb reopens the persist interval even though
    // the pending-flush range was recorded only once.
    ShadowMemory shadow;
    shadow.recordWrite(AddrRange(0x10, 8));
    shadow.recordClwb(AddrRange(0x10, 8));
    shadow.recordClwb(AddrRange(0x10, 8)); // duplicate
    shadow.recordWrite(AddrRange(0x10, 8)); // invalidates both
    shadow.bumpTimestamp();
    shadow.completePendingFlushes();
    EXPECT_FALSE(shadow.allPersisted(AddrRange(0x10, 8)));
}

TEST(ShadowMemoryTest, CompleteAllWritesClosesEverything)
{
    // The HOPS dfence rule.
    ShadowMemory shadow;
    shadow.recordWrite(AddrRange(0, 8));
    shadow.bumpTimestamp(); // ofence
    shadow.recordWrite(AddrRange(64, 8));
    shadow.bumpTimestamp(); // dfence...
    shadow.completeAllWrites();

    EXPECT_TRUE(shadow.allPersisted(AddrRange(0, 8)));
    EXPECT_TRUE(shadow.allPersisted(AddrRange(64, 8)));
    const auto a = shadow.persistIntervals(AddrRange(0, 8));
    const auto b = shadow.persistIntervals(AddrRange(64, 8));
    EXPECT_EQ(a[0].second, Interval(0, 2));
    EXPECT_EQ(b[0].second, Interval(1, 2));
}

} // namespace
} // namespace pmtest::core
