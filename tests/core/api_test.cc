#include "core/api.hh"

#include <gtest/gtest.h>

#include <thread>

namespace pmtest
{
namespace
{

/** Fixture that guarantees framework teardown on failure paths. */
class ApiTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }
};

TEST_F(ApiTest, LifecycleAndTracking)
{
    EXPECT_FALSE(pmtestInitialized());
    pmtestInit(Config{});
    EXPECT_TRUE(pmtestInitialized());
    pmtestThreadInit();

    EXPECT_FALSE(pmtestTracking());
    pmtestStart();
    EXPECT_TRUE(pmtestTracking());
    pmtestEnd();
    EXPECT_FALSE(pmtestTracking());

    pmtestExit();
    EXPECT_FALSE(pmtestInitialized());
}

TEST_F(ApiTest, UninitializedCallsAreSafeNoOps)
{
    uint64_t dst = 0, src = 42;
    pmStore(&dst, &src, sizeof(dst));
    EXPECT_EQ(dst, 42u) << "memory effect still happens";
    pmClwb(&dst, sizeof(dst));
    pmSfence();
    pmtestIsPersist(&dst, sizeof(dst));
    pmtestSendTrace();
    pmtestGetResult();
    EXPECT_EQ(pmtestTracesSubmitted(), 0u);
    EXPECT_TRUE(pmtestResults().clean());
}

TEST_F(ApiTest, EndToEndBugDetection)
{
    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    uint64_t a = 0, b = 0, v = 7;
    pmStore(&a, &v, sizeof(a));
    pmClwb(&a, sizeof(a));
    pmSfence();
    pmStore(&b, &v, sizeof(b)); // never flushed
    pmtestIsPersist(&a, sizeof(a));          // pass
    pmtestIsPersist(&b, sizeof(b));          // FAIL
    pmtestIsOrderedBefore(&a, sizeof(a), &b, sizeof(b)); // pass

    pmtestSendTrace();
    const auto report = pmtestResults();
    EXPECT_EQ(report.failCount(), 1u) << report.str();
    EXPECT_EQ(report.findings()[0].kind,
              core::FindingKind::NotPersisted);
}

TEST_F(ApiTest, RecordingGatedByStartEnd)
{
    pmtestInit(Config{});
    pmtestThreadInit();

    uint64_t a = 0, v = 1;
    pmStore(&a, &v, sizeof(a)); // not tracking yet
    EXPECT_EQ(pmtestOpsRecorded(), 0u);

    pmtestStart();
    pmStore(&a, &v, sizeof(a));
    EXPECT_EQ(pmtestOpsRecorded(), 1u);
    pmtestEnd();

    pmStore(&a, &v, sizeof(a));
    EXPECT_EQ(pmtestOpsRecorded(), 1u);
}

TEST_F(ApiTest, EmptyTraceIsNotSubmitted)
{
    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();
    pmtestSendTrace();
    EXPECT_EQ(pmtestTracesSubmitted(), 0u);
}

TEST_F(ApiTest, VariableRegistry)
{
    pmtestInit(Config{});
    uint64_t var = 0;
    pmtestRegVar("my-var", &var, sizeof(var));

    const void *addr = nullptr;
    size_t size = 0;
    EXPECT_TRUE(pmtestGetVar("my-var", &addr, &size));
    EXPECT_EQ(addr, &var);
    EXPECT_EQ(size, sizeof(var));

    pmtestUnregVar("my-var");
    EXPECT_FALSE(pmtestGetVar("my-var", &addr, &size));
    EXPECT_FALSE(pmtestGetVar("never-registered", &addr, &size));
}

TEST_F(ApiTest, TraceSinkReceivesTraces)
{
    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    size_t sink_traces = 0, sink_ops = 0;
    pmtestSetTraceSink([&](Trace &&t) {
        sink_traces++;
        sink_ops += t.size();
    });

    uint64_t a = 0, v = 1;
    pmStore(&a, &v, sizeof(a));
    pmSfence();
    pmtestSendTrace();
    EXPECT_EQ(sink_traces, 1u);
    EXPECT_EQ(sink_ops, 2u);
    EXPECT_TRUE(pmtestResults().clean()) << "engine never saw it";
}

TEST_F(ApiTest, PoolMirroringIntoCacheSim)
{
    pmtestInit(Config{});
    pmtestThreadInit();

    pmem::PmPool pool(1 << 16, true);
    pmtestAttachPool(&pool);
    ASSERT_EQ(pmtestAttachedPool(), &pool);

    auto *p = static_cast<uint64_t *>(pool.at(pool.alloc(8)));
    uint64_t v = 0xfeed;
    pmStore(p, &v, sizeof(v));
    // Cached but not durable yet.
    uint64_t on_device = 1;
    pool.pmDevice()->read(pool.offsetOf(p), &on_device,
                          sizeof(on_device));
    EXPECT_EQ(on_device, 0u);

    pmClwb(p, sizeof(v));
    pmSfence();
    pool.pmDevice()->read(pool.offsetOf(p), &on_device,
                          sizeof(on_device));
    EXPECT_EQ(on_device, 0xfeedu);

    pmtestDetachPool();
    EXPECT_EQ(pmtestAttachedPool(), nullptr);
}

TEST_F(ApiTest, MultiThreadedCapturesAreIndependent)
{
    pmtestInit(Config{.model = core::ModelKind::X86, .workers = 2});
    pmtestThreadInit();
    pmtestStart();

    std::thread worker([] {
        pmtestThreadInit();
        pmtestStart();
        uint64_t b = 0, v = 2;
        pmStore(&b, &v, sizeof(b)); // unflushed in this thread
        pmtestIsPersist(&b, sizeof(b));
        pmtestSendTrace();
        pmtestEnd();
    });
    worker.join();

    uint64_t a = 0, v = 1;
    pmStore(&a, &v, sizeof(a));
    pmClwb(&a, sizeof(a));
    pmSfence();
    pmtestIsPersist(&a, sizeof(a));
    pmtestSendTrace();

    const auto report = pmtestResults();
    EXPECT_EQ(report.failCount(), 1u)
        << "only the worker thread's trace fails";
    EXPECT_EQ(pmtestTracesSubmitted(), 2u);
}

TEST_F(ApiTest, PmAssignTypedStore)
{
    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();
    uint32_t x = 0;
    pmAssign(&x, 77u);
    EXPECT_EQ(x, 77u);
    EXPECT_EQ(pmtestOpsRecorded(), 1u);
}

} // namespace
} // namespace pmtest
