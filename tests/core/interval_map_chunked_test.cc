/**
 * @file
 * Chunk-layout validation of the IntervalMap backing store: fuzzed
 * equivalence of the chunked map against both retired layouts (flat
 * sorted vector, node std::map) under mixed assign/erase/covers/
 * overlap/batch sequences, entry-for-entry — the fragmentation a
 * given op sequence produces is observable engine behavior, so all
 * three layouts must store literally identical entries. Plus
 * deterministic units for the seams the fuzz can't aim at reliably:
 * an exactly-full chunk splitting, a near-empty chunk merging, and
 * range ops spanning multiple chunks.
 */

#include "core/interval_map.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "bench/flat_interval_map.hh"
#include "bench/node_interval_map.hh"
#include "util/random.hh"

namespace pmtest::core
{
namespace
{

constexpr size_t kCap = IntervalMap<uint64_t>::kChunkCapacity;

using Entries = std::vector<std::tuple<uint64_t, uint64_t, uint64_t>>;

Entries
dump(const IntervalMap<uint64_t> &map)
{
    Entries out;
    map.forEach([&](const auto &e) {
        out.emplace_back(e.start, e.end, e.value);
    });
    return out;
}

Entries
dump(const bench::FlatIntervalMap<uint64_t> &map)
{
    Entries out;
    map.forEach([&](const auto &e) {
        out.emplace_back(e.start, e.end, e.value);
    });
    return out;
}

Entries
dump(const bench::NodeIntervalMap<uint64_t> &map)
{
    Entries out;
    map.forEachOverlap(AddrRange(0, ~uint64_t{0}), [&](const auto &e) {
        out.emplace_back(e.start, e.end, e.value);
    });
    return out;
}

/** Sorted pairwise-disjoint ranges, as assignBatch requires. */
std::vector<AddrRange>
randomDisjointRanges(Rng &rng, size_t max_n, uint64_t span)
{
    std::vector<AddrRange> ranges;
    const size_t n = 1 + rng.below(max_n);
    for (size_t i = 0; i < n; i++)
        ranges.emplace_back(rng.below(span), 8 + rng.below(200));
    std::sort(ranges.begin(), ranges.end(),
              [](const AddrRange &a, const AddrRange &b) {
                  return a.addr < b.addr;
              });
    std::vector<AddrRange> disjoint;
    uint64_t pos = 0;
    for (const AddrRange &r : ranges) {
        if (r.addr >= pos) {
            disjoint.push_back(r);
            pos = r.end();
        }
    }
    return disjoint;
}

TEST(IntervalMapChunkedTest, FuzzedEquivalenceWithRetiredLayouts)
{
    // Wide address space and wide ranges: populations run to many
    // hundreds of entries (dozens of chunks), ranges regularly cross
    // chunk seams, and erases empty whole chunks.
    for (uint64_t seed = 1; seed <= 6; seed++) {
        Rng rng(seed * 0x1234567);
        IntervalMap<uint64_t> chunked;
        bench::FlatIntervalMap<uint64_t> flat;
        bench::NodeIntervalMap<uint64_t> node;

        for (int step = 0; step < 2500; step++) {
            const uint64_t span = 64 << 10;
            const AddrRange range(rng.below(span),
                                  8 + rng.below(1500));
            const uint64_t value = rng.below(1000);
            switch (rng.below(12)) {
              case 0:
              case 1:
              case 2:
              case 3:
                chunked.assign(range, value);
                flat.assign(range, value);
                node.assign(range, value);
                break;
              case 4:
              case 5:
                chunked.erase(range);
                flat.erase(range);
                node.erase(range);
                break;
              case 6:
                ASSERT_EQ(chunked.covers(range), flat.covers(range))
                    << "seed " << seed << " step " << step;
                break;
              case 7:
                ASSERT_EQ(chunked.anyOverlap(range),
                          flat.anyOverlap(range))
                    << "seed " << seed << " step " << step;
                break;
              case 8: {
                Entries a, b;
                chunked.forEachOverlap(range, [&](const auto &e) {
                    a.emplace_back(e.start, e.end, e.value);
                });
                flat.forEachOverlap(range, [&](const auto &e) {
                    b.emplace_back(e.start, e.end, e.value);
                });
                ASSERT_EQ(a, b)
                    << "seed " << seed << " step " << step;
                break;
              }
              case 9: {
                // Batched assign on the chunked map vs the same
                // ranges applied one by one to the baselines.
                const auto batch =
                    randomDisjointRanges(rng, 40, span);
                chunked.assignBatch(batch.data(), batch.size(),
                                    value);
                for (const AddrRange &r : batch) {
                    flat.assign(r, value);
                    node.assign(r, value);
                }
                break;
              }
              case 10: {
                // Batched overlap walk vs per-probe forEachOverlap.
                const auto probes =
                    randomDisjointRanges(rng, 20, span);
                Entries a, b;
                chunked.forEachOverlapBatch(
                    probes.data(), probes.size(),
                    [&](size_t, const auto &e) {
                        a.emplace_back(e.start, e.end, e.value);
                    });
                for (const AddrRange &r : probes)
                    flat.forEachOverlap(r, [&](const auto &e) {
                        b.emplace_back(e.start, e.end, e.value);
                    });
                ASSERT_EQ(a, b)
                    << "seed " << seed << " step " << step;
                break;
              }
              default:
                if (rng.below(40) == 0) {
                    chunked.clear();
                    flat.clear();
                    node.clear();
                }
                break;
            }
            ASSERT_TRUE(chunked.validate())
                << "seed " << seed << " step " << step;
            if (step % 16 == 0) {
                const Entries expected = dump(flat);
                ASSERT_EQ(dump(chunked), expected)
                    << "seed " << seed << " step " << step;
                ASSERT_EQ(dump(node), expected)
                    << "seed " << seed << " step " << step;
            }
        }
        // Final full-state check for every layout.
        const Entries expected = dump(flat);
        ASSERT_EQ(dump(chunked), expected) << "seed " << seed;
        ASSERT_EQ(dump(node), expected) << "seed " << seed;
    }
}

TEST(IntervalMapChunkedTest, ExactlyFullChunkSplitsOnNextInsert)
{
    IntervalMap<uint64_t> map;
    // Disjoint 8-byte entries with gaps, ascending: appends fill one
    // chunk to exactly kChunkCapacity without splitting.
    for (size_t i = 0; i < kCap; i++)
        map.assign(AddrRange(32 * i, 8), i);
    ASSERT_TRUE(map.validate());
    EXPECT_EQ(map.chunkCount(), 1u);
    EXPECT_EQ(map.size(), kCap);

    // One more entry in a middle gap pushes past capacity: split.
    map.assign(AddrRange(32 * (kCap / 2) + 16, 8), 777);
    ASSERT_TRUE(map.validate());
    EXPECT_EQ(map.chunkCount(), 2u);
    EXPECT_EQ(map.size(), kCap + 1);
    EXPECT_TRUE(map.covers(AddrRange(32 * (kCap / 2) + 16, 8)));
}

TEST(IntervalMapChunkedTest, NearEmptyChunkMergesWithNeighbor)
{
    IntervalMap<uint64_t> map;
    // Force a split, then erase almost all of the right chunk: the
    // single surviving entry must fold back into its neighbor.
    for (size_t i = 0; i <= kCap; i++)
        map.assign(AddrRange(32 * i, 8), i);
    ASSERT_TRUE(map.validate());
    ASSERT_EQ(map.chunkCount(), 2u);

    // Erase everything except the first entry of the left chunk and
    // the very last entry: the right chunk shrinks to one entry and
    // merges (combined size is far below the merge limit).
    map.erase(AddrRange(8, 32 * kCap - 8));
    ASSERT_TRUE(map.validate());
    EXPECT_EQ(map.size(), 2u);
    EXPECT_EQ(map.chunkCount(), 1u);
    EXPECT_TRUE(map.covers(AddrRange(0, 8)));
    EXPECT_TRUE(map.covers(AddrRange(32 * kCap, 8)));
}

TEST(IntervalMapChunkedTest, CrossChunkRangeEraseAndAssign)
{
    IntervalMap<uint64_t> map;
    bench::FlatIntervalMap<uint64_t> flat;
    // Several chunks worth of disjoint entries.
    const size_t n = 4 * kCap;
    for (size_t i = 0; i < n; i++) {
        map.assign(AddrRange(32 * i, 8), i);
        flat.assign(AddrRange(32 * i, 8), i);
    }
    ASSERT_TRUE(map.validate());
    ASSERT_GE(map.chunkCount(), 3u);

    // Erase from inside the first chunk to inside the last: middle
    // chunks vanish whole, the boundary entries are carved.
    const AddrRange hole(32 * 10 + 4, 32 * (n - 10) - 8);
    map.erase(hole);
    flat.erase(hole);
    ASSERT_TRUE(map.validate());
    ASSERT_EQ(dump(map), dump(flat));
    EXPECT_FALSE(map.anyOverlap(hole));

    // Assign straight across what is left: one entry replaces every
    // chunk in the span.
    const AddrRange blanket(16, 32 * n);
    map.assign(blanket, 4242);
    flat.assign(blanket, 4242);
    ASSERT_TRUE(map.validate());
    ASSERT_EQ(dump(map), dump(flat));
    EXPECT_TRUE(map.covers(blanket));
}

TEST(IntervalMapChunkedTest, BatchSeamAndCapacityBoundaries)
{
    IntervalMap<uint64_t> map;
    bench::FlatIntervalMap<uint64_t> flat;

    // A batch that exactly fills one chunk via the append path.
    std::vector<AddrRange> fill;
    for (size_t i = 0; i < kCap; i++)
        fill.emplace_back(64 * i, 16);
    map.assignBatch(fill.data(), fill.size(), 1);
    for (const AddrRange &r : fill)
        flat.assign(r, 1);
    ASSERT_TRUE(map.validate());
    ASSERT_EQ(dump(map), dump(flat));

    // Gap inserts into the exactly-full chunk: room for only two
    // extra items before the buffer cap, so the run is clipped and
    // the overflowing chunk splits mid-batch.
    std::vector<AddrRange> gaps;
    for (const size_t i : {size_t{5}, size_t{6}, size_t{7},
                           size_t{40}, size_t{90}})
        gaps.emplace_back(64 * i + 24, 8);
    map.assignBatch(gaps.data(), gaps.size(), 3);
    for (const AddrRange &r : gaps)
        flat.assign(r, 3);
    ASSERT_TRUE(map.validate());
    ASSERT_EQ(dump(map), dump(flat));

    // A batch whose ranges straddle the seam between the existing
    // population and fresh address space, overlap stored entries,
    // and include empties — the fallback paths.
    std::vector<AddrRange> mixed;
    mixed.emplace_back(64 * (kCap - 2) + 8, 100); // overlaps stored
    mixed.emplace_back(64 * kCap + 8, 0);         // empty: skipped
    mixed.emplace_back(64 * kCap + 16, 16);       // past the end
    mixed.emplace_back(64 * (kCap + 4), 4096);    // long append
    map.assignBatch(mixed.data(), mixed.size(), 2);
    for (const AddrRange &r : mixed)
        flat.assign(r, 2);
    ASSERT_TRUE(map.validate());
    ASSERT_EQ(dump(map), dump(flat));

    // Batched walk over probes spanning the whole population, one
    // probe crossing every seam.
    std::vector<AddrRange> probes;
    probes.emplace_back(0, 64 * (kCap + 100));
    Entries a, b;
    map.forEachOverlapBatch(probes.data(), probes.size(),
                            [&](size_t, const auto &e) {
                                a.emplace_back(e.start, e.end,
                                               e.value);
                            });
    flat.forEachOverlap(probes[0], [&](const auto &e) {
        b.emplace_back(e.start, e.end, e.value);
    });
    ASSERT_EQ(a, b);
}

} // namespace
} // namespace pmtest::core
