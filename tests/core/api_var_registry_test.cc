/**
 * @file
 * The named-variable registry in its intended role (paper Table 2:
 * "allow programmers to register the address of a persistent object
 * with a name and check its persistency status later"): a library
 * registers an object; code in another scope fetches it by name and
 * places checkers on it.
 */

#include <gtest/gtest.h>

#include "core/api.hh"

namespace pmtest
{
namespace
{

class ApiVarRegistryTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }
};

/** "Library" code: updates its object and registers it by name. */
void
libraryUpdate(bool flush)
{
    alignas(64) static uint64_t internal_state;
    uint64_t v = 42;
    pmStore(&internal_state, &v, sizeof(internal_state));
    if (flush) {
        PMTEST_CLWB(&internal_state, sizeof(internal_state));
        PMTEST_SFENCE();
    }
    pmtestRegVar("lib/internal-state", &internal_state,
                 sizeof(internal_state));
}

/** "Application" code: checks the library object without its scope. */
void
applicationCheck()
{
    const void *addr = nullptr;
    size_t size = 0;
    ASSERT_TRUE(pmtestGetVar("lib/internal-state", &addr, &size));
    pmtestIsPersist(addr, size, PMTEST_HERE);
}

TEST_F(ApiVarRegistryTest, CheckRegisteredVarFromAnotherScopePasses)
{
    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    libraryUpdate(/*flush=*/true);
    applicationCheck();
    pmtestSendTrace();

    const auto report = pmtestResults();
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST_F(ApiVarRegistryTest, CheckRegisteredVarDetectsMissingFlush)
{
    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    libraryUpdate(/*flush=*/false);
    applicationCheck();
    pmtestSendTrace();

    const auto report = pmtestResults();
    ASSERT_EQ(report.failCount(), 1u);
    EXPECT_EQ(report.findings()[0].kind,
              core::FindingKind::NotPersisted);
}

TEST_F(ApiVarRegistryTest, ReRegistrationOverwrites)
{
    pmtestInit(Config{});
    uint64_t a = 0, b = 0;
    pmtestRegVar("slot", &a, sizeof(a));
    pmtestRegVar("slot", &b, sizeof(b));

    const void *addr = nullptr;
    size_t size = 0;
    ASSERT_TRUE(pmtestGetVar("slot", &addr, &size));
    EXPECT_EQ(addr, &b);
}

TEST_F(ApiVarRegistryTest, RegistryClearedByExit)
{
    pmtestInit(Config{});
    uint64_t a = 0;
    pmtestRegVar("ephemeral", &a, sizeof(a));
    pmtestExit();

    pmtestInit(Config{});
    const void *addr = nullptr;
    size_t size = 0;
    EXPECT_FALSE(pmtestGetVar("ephemeral", &addr, &size));
}

} // namespace
} // namespace pmtest
