#include "core/engine_pool.hh"

#include <gtest/gtest.h>

namespace pmtest::core
{
namespace
{

Trace
buggyTrace(uint64_t id)
{
    Trace t(id, 0);
    t.append(PmOp::write(0x10, 64));
    t.append(PmOp::isPersist(0x10, 64)); // fails: never flushed
    return t;
}

Trace
cleanTrace(uint64_t id)
{
    Trace t(id, 0);
    t.append(PmOp::write(0x10, 64));
    t.append(PmOp::clwb(0x10, 64));
    t.append(PmOp::sfence());
    t.append(PmOp::isPersist(0x10, 64));
    return t;
}

TEST(EnginePoolTest, SingleWorkerChecksAllTraces)
{
    EnginePool pool(ModelKind::X86, 1);
    for (uint64_t i = 0; i < 10; i++)
        pool.submit(i % 2 ? buggyTrace(i) : cleanTrace(i));
    const Report report = pool.results();
    EXPECT_EQ(report.failCount(), 5u);
    EXPECT_EQ(pool.tracesChecked(), 10u);
}

TEST(EnginePoolTest, MultipleWorkersRoundRobin)
{
    EnginePool pool(ModelKind::X86, 4);
    EXPECT_EQ(pool.workerCount(), 4u);
    for (uint64_t i = 0; i < 40; i++)
        pool.submit(buggyTrace(i));
    const Report report = pool.results();
    EXPECT_EQ(report.failCount(), 40u);
    EXPECT_EQ(pool.tracesChecked(), 40u);
}

TEST(EnginePoolTest, InlineModeChecksSynchronously)
{
    EnginePool pool(ModelKind::X86, 0);
    EXPECT_EQ(pool.workerCount(), 0u);
    pool.submit(buggyTrace(1));
    // No drain needed: inline checking completes inside submit().
    EXPECT_EQ(pool.tracesChecked(), 1u);
    EXPECT_EQ(pool.results().failCount(), 1u);
}

TEST(EnginePoolTest, DrainBlocksUntilComplete)
{
    EnginePool pool(ModelKind::X86, 2);
    for (uint64_t i = 0; i < 100; i++)
        pool.submit(cleanTrace(i));
    pool.drain();
    EXPECT_EQ(pool.tracesChecked(), 100u);
}

TEST(EnginePoolTest, ClearResultsResets)
{
    EnginePool pool(ModelKind::X86, 1);
    pool.submit(buggyTrace(1));
    EXPECT_EQ(pool.results().failCount(), 1u);
    pool.clearResults();
    EXPECT_EQ(pool.results().failCount(), 0u);
    pool.submit(buggyTrace(2));
    EXPECT_EQ(pool.results().failCount(), 1u);
}

TEST(EnginePoolTest, DestructorDrainsPendingWork)
{
    Report report;
    {
        EnginePool pool(ModelKind::X86, 2);
        for (uint64_t i = 0; i < 50; i++)
            pool.submit(cleanTrace(i));
        // Destructor must not lose queued traces.
    }
    SUCCEED();
}

TEST(EnginePoolTest, OpsProcessedAggregates)
{
    EnginePool pool(ModelKind::X86, 2);
    pool.submit(cleanTrace(1)); // 4 ops
    pool.submit(cleanTrace(2)); // 4 ops
    pool.drain();
    EXPECT_EQ(pool.opsProcessed(), 8u);
}

} // namespace
} // namespace pmtest::core
