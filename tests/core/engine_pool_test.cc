#include "core/engine_pool.hh"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace pmtest::core
{
namespace
{

Trace
buggyTrace(uint64_t id)
{
    Trace t(id, 0);
    t.append(PmOp::write(0x10, 64));
    t.append(PmOp::isPersist(0x10, 64)); // fails: never flushed
    return t;
}

Trace
cleanTrace(uint64_t id)
{
    Trace t(id, 0);
    t.append(PmOp::write(0x10, 64));
    t.append(PmOp::clwb(0x10, 64));
    t.append(PmOp::sfence());
    t.append(PmOp::isPersist(0x10, 64));
    return t;
}

TEST(EnginePoolTest, SingleWorkerChecksAllTraces)
{
    EnginePool pool(ModelKind::X86, 1);
    for (uint64_t i = 0; i < 10; i++)
        pool.submit(i % 2 ? buggyTrace(i) : cleanTrace(i));
    const Report report = pool.results();
    EXPECT_EQ(report.failCount(), 5u);
    EXPECT_EQ(pool.tracesChecked(), 10u);
}

TEST(EnginePoolTest, MultipleWorkersRoundRobin)
{
    EnginePool pool(ModelKind::X86, 4);
    EXPECT_EQ(pool.workerCount(), 4u);
    for (uint64_t i = 0; i < 40; i++)
        pool.submit(buggyTrace(i));
    const Report report = pool.results();
    EXPECT_EQ(report.failCount(), 40u);
    EXPECT_EQ(pool.tracesChecked(), 40u);
}

TEST(EnginePoolTest, InlineModeChecksSynchronously)
{
    EnginePool pool(ModelKind::X86, 0);
    EXPECT_EQ(pool.workerCount(), 0u);
    pool.submit(buggyTrace(1));
    // No drain needed: inline checking completes inside submit().
    EXPECT_EQ(pool.tracesChecked(), 1u);
    EXPECT_EQ(pool.results().failCount(), 1u);
}

TEST(EnginePoolTest, DrainBlocksUntilComplete)
{
    EnginePool pool(ModelKind::X86, 2);
    for (uint64_t i = 0; i < 100; i++)
        pool.submit(cleanTrace(i));
    pool.drain();
    EXPECT_EQ(pool.tracesChecked(), 100u);
}

TEST(EnginePoolTest, ClearResultsResets)
{
    EnginePool pool(ModelKind::X86, 1);
    pool.submit(buggyTrace(1));
    EXPECT_EQ(pool.results().failCount(), 1u);
    pool.clearResults();
    EXPECT_EQ(pool.results().failCount(), 0u);
    pool.submit(buggyTrace(2));
    EXPECT_EQ(pool.results().failCount(), 1u);
}

TEST(EnginePoolTest, DestructorDrainsPendingWork)
{
    Report report;
    {
        EnginePool pool(ModelKind::X86, 2);
        for (uint64_t i = 0; i < 50; i++)
            pool.submit(cleanTrace(i));
        // Destructor must not lose queued traces.
    }
    SUCCEED();
}

TEST(EnginePoolTest, OpsProcessedAggregates)
{
    EnginePool pool(ModelKind::X86, 2);
    pool.submit(cleanTrace(1)); // 4 ops
    pool.submit(cleanTrace(2)); // 4 ops
    pool.drain();
    EXPECT_EQ(pool.opsProcessed(), 8u);
}

TEST(EnginePoolTest, SubmitBatchChecksEveryTrace)
{
    EnginePool pool(ModelKind::X86, 2);
    std::vector<Trace> batch;
    for (uint64_t i = 0; i < 25; i++)
        batch.push_back(buggyTrace(i));
    pool.submitBatch(std::move(batch));
    pool.submitBatch({}); // empty batch is a no-op
    const Report report = pool.results();
    EXPECT_EQ(report.failCount(), 25u);
    EXPECT_EQ(pool.tracesChecked(), 25u);
    EXPECT_EQ(pool.stats().batchesSubmitted, 1u);
}

TEST(EnginePoolTest, SubmitBatchInlineMode)
{
    EnginePool pool(ModelKind::X86, 0);
    std::vector<Trace> batch;
    for (uint64_t i = 0; i < 5; i++)
        batch.push_back(buggyTrace(i));
    pool.submitBatch(std::move(batch));
    EXPECT_EQ(pool.results().failCount(), 5u);
}

TEST(EnginePoolTest, StatsCountersAreConsistent)
{
    PoolOptions options;
    options.workers = 3;
    options.queueCapacity = 128;
    EnginePool pool(options);

    for (uint64_t i = 0; i < 30; i++)
        pool.submit(i % 2 ? buggyTrace(i) : cleanTrace(i));
    pool.drain();

    const PoolStats stats = pool.stats();
    ASSERT_EQ(stats.workers.size(), 3u);
    EXPECT_EQ(stats.tracesSubmitted, 30u);
    EXPECT_EQ(stats.tracesCompleted, 30u);
    EXPECT_EQ(stats.queueCapacity, 128u);
    EXPECT_TRUE(stats.workStealing);
    EXPECT_EQ(stats.queuedTraces(), 0u); // drained

    uint64_t checked = 0, ops = 0;
    for (const auto &w : stats.workers) {
        checked += w.tracesChecked;
        ops += w.opsProcessed;
    }
    EXPECT_EQ(checked, 30u);
    EXPECT_EQ(ops, pool.opsProcessed());
    EXPECT_FALSE(stats.str().empty());
}

TEST(EnginePoolTest, InlineModeStatsReportOnePseudoWorker)
{
    EnginePool pool(ModelKind::X86, 0);
    pool.submit(cleanTrace(1));
    const PoolStats stats = pool.stats();
    ASSERT_EQ(stats.workers.size(), 1u);
    EXPECT_EQ(stats.workers[0].tracesChecked, 1u);
    EXPECT_EQ(stats.tracesSubmitted, 1u);
    EXPECT_EQ(stats.tracesCompleted, 1u);
}

TEST(EnginePoolTest, StealingDisabledStillChecksEverything)
{
    PoolOptions options;
    options.workers = 4;
    options.workStealing = false;
    EnginePool pool(options);
    for (uint64_t i = 0; i < 40; i++)
        pool.submit(buggyTrace(i));
    const Report report = pool.results();
    EXPECT_EQ(report.failCount(), 40u);
    EXPECT_FALSE(pool.stats().workStealing);
    EXPECT_EQ(pool.stats().steals, 0u);
}

TEST(EnginePoolTest, QueueCapacityFromEnvironment)
{
    setenv("PMTEST_QUEUE_CAP", "7", /*overwrite=*/1);
    EnginePool pool(ModelKind::X86, 1);
    EXPECT_EQ(pool.queueCapacity(), 7u);

    // PMTEST_QUEUE_CAP=0 forces an unbounded queue.
    setenv("PMTEST_QUEUE_CAP", "0", /*overwrite=*/1);
    EnginePool unbounded(ModelKind::X86, 1);
    EXPECT_EQ(unbounded.queueCapacity(), 0u);
    unsetenv("PMTEST_QUEUE_CAP");
}

TEST(EnginePoolTest, DefaultCapacityDerivedFromWorkerCount)
{
    // The default bounds the total backlog, splitting it across the
    // per-worker queues: more workers -> shallower queues.
    EnginePool one(ModelKind::X86, 1);
    EnginePool four(ModelKind::X86, 4);
    ASSERT_GT(one.queueCapacity(), 0u);
    ASSERT_GT(four.queueCapacity(), 0u);
    EXPECT_EQ(one.queueCapacity(), 4 * four.queueCapacity());
    EXPECT_GE(four.queueCapacity(), 16u);

    // An explicitly unbounded queue is still available.
    PoolOptions options;
    options.workers = 2;
    options.queueCapacity = PoolOptions::kUnboundedQueue;
    EnginePool unbounded(options);
    EXPECT_EQ(unbounded.queueCapacity(), 0u);
}

TEST(EnginePoolTest, ExplicitCapacityBeatsEnvironment)
{
    setenv("PMTEST_QUEUE_CAP", "7", /*overwrite=*/1);
    PoolOptions options;
    options.workers = 1;
    options.queueCapacity = 3;
    EnginePool pool(options);
    EXPECT_EQ(pool.queueCapacity(), 3u);
    unsetenv("PMTEST_QUEUE_CAP");
}

TEST(EnginePoolTest, TakeResultsReturnsAndResets)
{
    EnginePool pool(ModelKind::X86, 1);
    pool.submit(buggyTrace(1));
    EXPECT_EQ(pool.takeResults().failCount(), 1u);
    EXPECT_EQ(pool.results().failCount(), 0u);
    pool.submit(buggyTrace(2));
    EXPECT_EQ(pool.takeResults().failCount(), 1u);
}

} // namespace
} // namespace pmtest::core
