#include "core/report.hh"

#include <gtest/gtest.h>

namespace pmtest::core
{
namespace
{

Finding
finding(Severity severity, FindingKind kind, const char *file,
        uint32_t line, const std::string &msg = "m")
{
    Finding f;
    f.severity = severity;
    f.kind = kind;
    f.loc = SourceLocation(file, line);
    f.message = msg;
    return f;
}

TEST(ReportTest, CountsBySeverity)
{
    Report r;
    r.add(finding(Severity::Fail, FindingKind::NotPersisted, "a", 1));
    r.add(finding(Severity::Warn, FindingKind::RedundantFlush, "a", 2));
    r.add(finding(Severity::Fail, FindingKind::NotOrdered, "a", 3));
    EXPECT_EQ(r.failCount(), 2u);
    EXPECT_EQ(r.warnCount(), 1u);
    EXPECT_FALSE(r.passed());
    EXPECT_FALSE(r.clean());
}

TEST(ReportTest, WarnOnlyReportPasses)
{
    Report r;
    r.add(finding(Severity::Warn, FindingKind::DuplicateLog, "a", 1));
    EXPECT_TRUE(r.passed());
    EXPECT_FALSE(r.clean());
}

TEST(ReportTest, MergeAppends)
{
    Report a, b;
    a.add(finding(Severity::Fail, FindingKind::NotPersisted, "a", 1));
    b.add(finding(Severity::Warn, FindingKind::DuplicateLog, "b", 2));
    a.merge(b);
    EXPECT_EQ(a.findings().size(), 2u);
}

TEST(ReportTest, SummaryDeduplicatesBySite)
{
    Report r;
    for (int i = 0; i < 100; i++) {
        r.add(finding(Severity::Fail, FindingKind::MissingLog,
                      "hot.cc", 42, "write without backup"));
    }
    r.add(finding(Severity::Warn, FindingKind::RedundantFlush,
                  "cold.cc", 7));

    const auto summary = r.summary();
    ASSERT_EQ(summary.size(), 2u);
    // FAILs sort first, then by count.
    EXPECT_EQ(summary[0].kind, FindingKind::MissingLog);
    EXPECT_EQ(summary[0].count, 100u);
    EXPECT_EQ(summary[0].loc.str(), "hot.cc:42");
    EXPECT_EQ(summary[0].firstMessage, "write without backup");
    EXPECT_EQ(summary[1].count, 1u);
}

TEST(ReportTest, SummarySeparatesDifferentLinesOfSameFile)
{
    Report r;
    r.add(finding(Severity::Fail, FindingKind::NotOrdered, "x.cc", 1));
    r.add(finding(Severity::Fail, FindingKind::NotOrdered, "x.cc", 2));
    EXPECT_EQ(r.summary().size(), 2u);
}

TEST(ReportTest, SummaryStrMentionsCounts)
{
    Report r;
    for (int i = 0; i < 3; i++)
        r.add(finding(Severity::Fail, FindingKind::NotPersisted,
                      "y.cc", 9));
    const std::string s = r.summaryStr();
    EXPECT_NE(s.find("x3"), std::string::npos);
    EXPECT_NE(s.find("y.cc:9"), std::string::npos);
}

TEST(ReportTest, FindingStrFormat)
{
    const auto f = finding(Severity::Warn, FindingKind::DuplicateLog,
                           "z.cc", 11, "logged twice");
    EXPECT_EQ(f.str(),
              "WARN(duplicate-log) logged twice @ z.cc:11 [f0:t0:op0]");
}

TEST(ReportTest, FindingStrRendersIdentityTriple)
{
    auto f = finding(Severity::Fail, FindingKind::NotPersisted,
                     "a.cc", 3, "not persisted");
    f.fileId = 2;
    f.traceId = 17;
    f.opIndex = 4;
    EXPECT_EQ(f.str(),
              "FAIL(not-persisted) not persisted @ a.cc:3 [f2:t17:op4]");
}

TEST(ReportTest, KindNamesAreStable)
{
    EXPECT_STREQ(findingKindName(FindingKind::NotPersisted),
                 "not-persisted");
    EXPECT_STREQ(findingKindName(FindingKind::MissingLog),
                 "missing-log");
    EXPECT_STREQ(findingKindName(FindingKind::Malformed),
                 "malformed-trace");
}

} // namespace
} // namespace pmtest::core
