/**
 * @file
 * Determinism and equivalence properties of the checking pipeline:
 * random traces must produce identical verdicts whether checked by a
 * bare Engine, an inline pool, or a multi-worker pool — decoupling is
 * a performance feature, never a semantic one.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.hh"
#include "core/engine_pool.hh"
#include "util/random.hh"

namespace pmtest::core
{
namespace
{

/** Generate a random trace mixing PM ops, TX events and checkers. */
Trace
randomTrace(Rng &rng, uint64_t id)
{
    Trace trace(id, 0);
    int tx_depth = 0;
    const size_t n = 5 + rng.below(40);
    for (size_t i = 0; i < n; i++) {
        const uint64_t addr = 64 * rng.below(16);
        switch (rng.below(10)) {
          case 0:
          case 1:
          case 2:
            trace.append(PmOp::write(addr, 8 + rng.below(56)));
            break;
          case 3:
          case 4:
            trace.append(PmOp::clwb(addr, 64));
            break;
          case 5:
            trace.append(PmOp::sfence());
            break;
          case 6:
            trace.append(PmOp::isPersist(addr, 64));
            break;
          case 7:
            trace.append(
                PmOp::isOrderedBefore(addr, 64, 64 * rng.below(16), 64));
            break;
          case 8:
            trace.append(PmOp{OpType::TxBegin, 0, 0, 0, 0, {}});
            tx_depth++;
            break;
          default:
            if (tx_depth > 0) {
                trace.append(PmOp{OpType::TxAdd, addr, 64, 0, 0, {}});
            } else {
                trace.append(PmOp::sfence());
            }
        }
    }
    while (tx_depth-- > 0)
        trace.append(PmOp{OpType::TxEnd, 0, 0, 0, 0, {}});
    return trace;
}

/** Summarize a report as sortable (kind, opIndex) pairs. */
std::vector<std::pair<int, size_t>>
signature(const Report &report)
{
    std::vector<std::pair<int, size_t>> sig;
    for (const auto &f : report.findings())
        sig.emplace_back(static_cast<int>(f.kind), f.opIndex);
    std::sort(sig.begin(), sig.end());
    return sig;
}

class DeterminismTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DeterminismTest, EngineIsDeterministic)
{
    Rng rng(GetParam());
    Engine engine(ModelKind::X86);
    for (int round = 0; round < 50; round++) {
        const Trace trace = randomTrace(rng, round);
        const auto first = signature(engine.check(trace));
        const auto second = signature(engine.check(trace));
        ASSERT_EQ(first, second) << "round " << round;
    }
}

TEST_P(DeterminismTest, PoolMatchesBareEngine)
{
    Rng rng(GetParam() + 500);
    std::vector<Trace> traces;
    for (int i = 0; i < 30; i++)
        traces.push_back(randomTrace(rng, i));

    // Reference: bare engine, sequential.
    Engine engine(ModelKind::X86);
    std::vector<std::pair<int, size_t>> reference;
    for (const auto &t : traces) {
        for (auto &s : signature(engine.check(t)))
            reference.push_back(s);
    }
    std::sort(reference.begin(), reference.end());

    for (size_t workers : {0u, 1u, 3u}) {
        EnginePool pool(ModelKind::X86, workers);
        for (const auto &t : traces)
            pool.submit(t);
        auto got = signature(pool.results());
        std::sort(got.begin(), got.end());
        ASSERT_EQ(got, reference) << workers << " workers";
    }
}

TEST_P(DeterminismTest, HopsEngineIsDeterministic)
{
    Rng rng(GetParam() + 900);
    Engine engine(ModelKind::Hops);
    for (int round = 0; round < 30; round++) {
        // Convert x86 ops to HOPS fences for a valid HOPS trace.
        Trace trace = randomTrace(rng, round);
        for (auto &op : trace.mutableOps()) {
            if (op.type == OpType::Sfence)
                op.type = OpType::Dfence;
            if (op.type == OpType::Clwb)
                op.type = OpType::Ofence;
        }
        const auto first = signature(engine.check(trace));
        const auto second = signature(engine.check(trace));
        ASSERT_EQ(first, second) << "round " << round;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest,
                         ::testing::Values(1, 7, 42));

} // namespace
} // namespace pmtest::core
