/**
 * @file
 * Concurrency stress for the engine pool: many producer threads
 * submitting concurrently, results must aggregate exactly; drains
 * must be safe from any thread; interleaved clear/submit cycles.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/engine_pool.hh"

namespace pmtest::core
{
namespace
{

Trace
traceWithFailures(uint64_t id, size_t n_failures)
{
    Trace t(id, 0);
    for (size_t i = 0; i < n_failures; i++) {
        const uint64_t addr = 0x1000 + 64 * i;
        t.append(PmOp::write(addr, 8));
        t.append(PmOp::isPersist(addr, 8)); // FAIL each time
    }
    return t;
}

TEST(EnginePoolStressTest, ConcurrentProducersAggregateExactly)
{
    constexpr size_t kProducers = 8;
    constexpr size_t kTracesPerProducer = 200;
    constexpr size_t kFailuresPerTrace = 3;

    EnginePool pool(ModelKind::X86, 2);
    std::vector<std::thread> producers;
    for (size_t p = 0; p < kProducers; p++) {
        producers.emplace_back([&pool, p] {
            for (size_t i = 0; i < kTracesPerProducer; i++) {
                pool.submit(traceWithFailures(p * 1000 + i,
                                              kFailuresPerTrace));
            }
        });
    }
    for (auto &t : producers)
        t.join();

    const Report report = pool.results();
    EXPECT_EQ(report.failCount(),
              kProducers * kTracesPerProducer * kFailuresPerTrace);
    EXPECT_EQ(pool.tracesChecked(), kProducers * kTracesPerProducer);
}

TEST(EnginePoolStressTest, DrainWhileSubmittingFromOtherThread)
{
    // A bounded producer runs concurrently with drains from the main
    // thread; every drain must terminate (a drain only waits for the
    // traces submitted before it returns, and the producer finishes).
    EnginePool pool(ModelKind::X86, 2);
    constexpr uint64_t kTraces = 2000;
    std::thread producer([&] {
        for (uint64_t id = 0; id < kTraces; id++)
            pool.submit(traceWithFailures(id, 1));
    });

    for (int i = 0; i < 20; i++)
        pool.drain();

    producer.join();
    pool.drain();
    EXPECT_EQ(pool.tracesChecked(), kTraces);
    EXPECT_EQ(pool.results().failCount(), kTraces);
}

TEST(EnginePoolStressTest, ClearBetweenBatches)
{
    EnginePool pool(ModelKind::X86, 2);
    for (int batch = 0; batch < 10; batch++) {
        for (uint64_t i = 0; i < 20; i++)
            pool.submit(traceWithFailures(i, 2));
        EXPECT_EQ(pool.results().failCount(), 40u)
            << "batch " << batch;
        pool.clearResults();
    }
}

TEST(EnginePoolStressTest, TakeResultsLosesNothingUnderConcurrentSubmit)
{
    // Regression test for the results()/clearResults() race: the
    // original implementation called drain() (releasing the result
    // lock) and then re-acquired it to snapshot/reset, so findings of
    // traces completed in the gap could be wiped without ever being
    // observed. takeResults() folds the wait and the snapshot+reset
    // into one critical section: every finding must be returned by
    // exactly one take.
    constexpr size_t kProducers = 4;
    constexpr size_t kTracesPerProducer = 500;

    EnginePool pool(ModelKind::X86, 2);
    std::atomic<size_t> producers_done{0};
    std::vector<std::thread> producers;
    for (size_t p = 0; p < kProducers; p++) {
        producers.emplace_back([&, p] {
            for (size_t i = 0; i < kTracesPerProducer; i++)
                pool.submit(traceWithFailures(p * 1000 + i, 1));
            producers_done.fetch_add(1, std::memory_order_relaxed);
        });
    }

    // Consume concurrently with the producers: every take races with
    // in-flight submissions, which is exactly the window the original
    // drain-then-relock implementation lost findings in.
    uint64_t observed = 0;
    while (producers_done.load(std::memory_order_relaxed) <
           kProducers) {
        observed += pool.takeResults().failCount();
    }
    for (auto &t : producers)
        t.join();
    observed += pool.takeResults().failCount();

    EXPECT_EQ(observed, kProducers * kTracesPerProducer);
    EXPECT_EQ(pool.results().failCount(), 0u); // everything was taken
}

TEST(EnginePoolStressTest, WorkStealingRescuesSkewedTraceSizes)
{
    // One giant trace pins a worker; without stealing the small
    // traces round-robined behind it would wait. With stealing every
    // trace is checked and idle workers record steals.
    EnginePool pool(ModelKind::X86, 2);

    Trace giant(0, 0);
    for (size_t i = 0; i < 50000; i++) {
        const uint64_t addr = 0x1000 + 64 * (i % 512);
        giant.append(PmOp::write(addr, 8));
    }
    pool.submit(std::move(giant));
    // Round-robin sends every other small trace to the giant's queue;
    // the other worker must steal them instead of idling.
    for (uint64_t i = 1; i <= 200; i++)
        pool.submit(traceWithFailures(i, 1));
    pool.drain();

    const PoolStats stats = pool.stats();
    EXPECT_EQ(pool.tracesChecked(), 201u);
    EXPECT_EQ(pool.results().failCount(), 200u);
    EXPECT_GT(stats.steals, 0u);
}

TEST(EnginePoolStressTest, BoundedQueueExertsBackpressure)
{
    // With capacity 4 per worker, the producer can never observe more
    // than workers * capacity queued traces: a fast producer stalls
    // instead of growing the queues without limit.
    PoolOptions options;
    options.workers = 2;
    options.queueCapacity = 4;
    EnginePool pool(options);

    size_t max_queued = 0;
    for (uint64_t i = 0; i < 500; i++) {
        pool.submit(traceWithFailures(i, 2));
        max_queued =
            std::max(max_queued, pool.stats().queuedTraces());
    }
    pool.drain();

    EXPECT_LE(max_queued, 2u * 4u);
    EXPECT_EQ(pool.results().failCount(), 1000u);
}

TEST(EnginePoolStressTest, BatchedProducersAggregateExactly)
{
    constexpr size_t kProducers = 4;
    constexpr size_t kBatches = 40;
    constexpr size_t kBatchSize = 10;

    PoolOptions options;
    options.workers = 2;
    options.queueCapacity = 16; // smaller than a full producer load
    EnginePool pool(options);

    std::vector<std::thread> producers;
    for (size_t p = 0; p < kProducers; p++) {
        producers.emplace_back([&pool, p] {
            for (size_t b = 0; b < kBatches; b++) {
                std::vector<Trace> batch;
                for (size_t i = 0; i < kBatchSize; i++) {
                    batch.push_back(traceWithFailures(
                        p * 10000 + b * 100 + i, 1));
                }
                pool.submitBatch(std::move(batch));
            }
        });
    }
    for (auto &t : producers)
        t.join();

    const Report report = pool.results();
    EXPECT_EQ(report.failCount(), kProducers * kBatches * kBatchSize);
    EXPECT_EQ(pool.stats().batchesSubmitted, kProducers * kBatches);
}

TEST(EnginePoolStressTest, ManySmallTracesThroughput)
{
    // Sanity guard on per-trace bookkeeping: 10k traces must check
    // without blowing up memory or deadlocking.
    EnginePool pool(ModelKind::X86, 1);
    for (uint64_t i = 0; i < 10000; i++) {
        Trace t(i, 0);
        t.append(PmOp::write(0x10, 8));
        t.append(PmOp::clwb(0x10, 8));
        t.append(PmOp::sfence());
        pool.submit(std::move(t));
    }
    pool.drain();
    EXPECT_EQ(pool.tracesChecked(), 10000u);
    EXPECT_EQ(pool.opsProcessed(), 30000u);
    EXPECT_TRUE(pool.results().clean());
}

} // namespace
} // namespace pmtest::core
