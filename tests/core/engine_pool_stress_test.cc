/**
 * @file
 * Concurrency stress for the engine pool: many producer threads
 * submitting concurrently, results must aggregate exactly; drains
 * must be safe from any thread; interleaved clear/submit cycles.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/engine_pool.hh"

namespace pmtest::core
{
namespace
{

Trace
traceWithFailures(uint64_t id, size_t n_failures)
{
    Trace t(id, 0);
    for (size_t i = 0; i < n_failures; i++) {
        const uint64_t addr = 0x1000 + 64 * i;
        t.append(PmOp::write(addr, 8));
        t.append(PmOp::isPersist(addr, 8)); // FAIL each time
    }
    return t;
}

TEST(EnginePoolStressTest, ConcurrentProducersAggregateExactly)
{
    constexpr size_t kProducers = 8;
    constexpr size_t kTracesPerProducer = 200;
    constexpr size_t kFailuresPerTrace = 3;

    EnginePool pool(ModelKind::X86, 2);
    std::vector<std::thread> producers;
    for (size_t p = 0; p < kProducers; p++) {
        producers.emplace_back([&pool, p] {
            for (size_t i = 0; i < kTracesPerProducer; i++) {
                pool.submit(traceWithFailures(p * 1000 + i,
                                              kFailuresPerTrace));
            }
        });
    }
    for (auto &t : producers)
        t.join();

    const Report report = pool.results();
    EXPECT_EQ(report.failCount(),
              kProducers * kTracesPerProducer * kFailuresPerTrace);
    EXPECT_EQ(pool.tracesChecked(), kProducers * kTracesPerProducer);
}

TEST(EnginePoolStressTest, DrainWhileSubmittingFromOtherThread)
{
    // A bounded producer runs concurrently with drains from the main
    // thread; every drain must terminate (a drain only waits for the
    // traces submitted before it returns, and the producer finishes).
    EnginePool pool(ModelKind::X86, 2);
    constexpr uint64_t kTraces = 2000;
    std::thread producer([&] {
        for (uint64_t id = 0; id < kTraces; id++)
            pool.submit(traceWithFailures(id, 1));
    });

    for (int i = 0; i < 20; i++)
        pool.drain();

    producer.join();
    pool.drain();
    EXPECT_EQ(pool.tracesChecked(), kTraces);
    EXPECT_EQ(pool.results().failCount(), kTraces);
}

TEST(EnginePoolStressTest, ClearBetweenBatches)
{
    EnginePool pool(ModelKind::X86, 2);
    for (int batch = 0; batch < 10; batch++) {
        for (uint64_t i = 0; i < 20; i++)
            pool.submit(traceWithFailures(i, 2));
        EXPECT_EQ(pool.results().failCount(), 40u)
            << "batch " << batch;
        pool.clearResults();
    }
}

TEST(EnginePoolStressTest, ManySmallTracesThroughput)
{
    // Sanity guard on per-trace bookkeeping: 10k traces must check
    // without blowing up memory or deadlocking.
    EnginePool pool(ModelKind::X86, 1);
    for (uint64_t i = 0; i < 10000; i++) {
        Trace t(i, 0);
        t.append(PmOp::write(0x10, 8));
        t.append(PmOp::clwb(0x10, 8));
        t.append(PmOp::sfence());
        pool.submit(std::move(t));
    }
    pool.drain();
    EXPECT_EQ(pool.tracesChecked(), 10000u);
    EXPECT_EQ(pool.opsProcessed(), 30000u);
    EXPECT_TRUE(pool.results().clean());
}

} // namespace
} // namespace pmtest::core
