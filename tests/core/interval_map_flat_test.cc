/**
 * @file
 * Differential validation of the IntervalMap backing store (now the
 * chunked layout; historically the flat sorted vector): every
 * operation sequence must behave exactly like a naive per-byte
 * reference model — assign/erase/covers/anyOverlap/forEachOverlap
 * over random ranges — and the storage must keep its capacity across
 * clear() so reused maps stop allocating. Chunk-layout specifics
 * (split/merge boundaries, batch ops, cross-layout equivalence) live
 * in interval_map_chunked_test.cc.
 */

#include "core/interval_map.hh"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "util/random.hh"

namespace pmtest::core
{
namespace
{

/**
 * Byte-granular reference: the simplest possible model of "disjoint
 * ranges mapped to values".
 */
class ByteReference
{
  public:
    void
    assign(const AddrRange &range, int value)
    {
        for (uint64_t a = range.addr; a < range.end(); a++)
            bytes_[a] = value;
    }

    void
    erase(const AddrRange &range)
    {
        for (uint64_t a = range.addr; a < range.end(); a++)
            bytes_.erase(a);
    }

    std::map<uint64_t, int>
    overlap(const AddrRange &range) const
    {
        std::map<uint64_t, int> out;
        for (uint64_t a = range.addr; a < range.end(); a++) {
            auto it = bytes_.find(a);
            if (it != bytes_.end())
                out[a] = it->second;
        }
        return out;
    }

    bool
    covers(const AddrRange &range) const
    {
        return overlap(range).size() == range.size;
    }

  private:
    std::map<uint64_t, int> bytes_;
};

class FlatMapDifferentialTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FlatMapDifferentialTest, RandomRangesMatchByteReference)
{
    Rng rng(GetParam());
    IntervalMap<int> flat;
    ByteReference reference;

    for (int step = 0; step < 1200; step++) {
        // A mix of small local ranges and occasional huge spans that
        // swallow many stored entries at once (the carve fast/slow
        // paths both get exercised).
        const bool wide = rng.chance(1, 10);
        const uint64_t start = rng.below(1024);
        const uint64_t size =
            wide ? 64 + rng.below(512) : 1 + rng.below(48);
        const AddrRange range(start, size);

        if (rng.chance(7, 10)) {
            const int value = static_cast<int>(rng.below(1000));
            flat.assign(range, value);
            reference.assign(range, value);
        } else {
            flat.erase(range);
            reference.erase(range);
        }

        for (int probe = 0; probe < 4; probe++) {
            const AddrRange q(rng.below(1100), 1 + rng.below(96));

            std::map<uint64_t, int> got;
            uint64_t prev_end = 0;
            flat.forEachOverlap(q, [&](const auto &e) {
                EXPECT_GE(e.start, prev_end) << "unsorted/overlapping";
                EXPECT_LT(e.start, e.end);
                prev_end = e.end;
                for (uint64_t a = e.start; a < e.end; a++)
                    got[a] = e.value;
            });
            ASSERT_EQ(got, reference.overlap(q)) << "step " << step;

            EXPECT_EQ(flat.covers(q), reference.covers(q));
            EXPECT_EQ(flat.anyOverlap(q), !reference.overlap(q).empty());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatMapDifferentialTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(FlatMapTest, ClearRetainsCapacity)
{
    IntervalMap<int> m;
    for (uint64_t i = 0; i < 256; i++)
        m.assign(AddrRange(i * 2, 1), static_cast<int>(i));
    ASSERT_EQ(m.size(), 256u);
    const size_t cap = m.capacity();
    ASSERT_GE(cap, 256u);

    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.capacity(), cap); // storage survives the clear

    // Refilling to the same size must not grow the storage.
    for (uint64_t i = 0; i < 256; i++)
        m.assign(AddrRange(i * 2, 1), static_cast<int>(i));
    EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatMapTest, SplitPreservesNonTrivialValues)
{
    // Splitting must duplicate the value correctly even for types
    // with real copy/move semantics (the shadow map stores structs).
    IntervalMap<std::string> m;
    m.assign(AddrRange(0, 100), std::string("payload"));
    m.assign(AddrRange(40, 20), std::string("hole"));

    std::vector<std::tuple<uint64_t, uint64_t, std::string>> entries;
    m.forEach([&](const auto &e) {
        entries.emplace_back(e.start, e.end, e.value);
    });
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0],
              std::make_tuple(uint64_t{0}, uint64_t{40},
                              std::string("payload")));
    EXPECT_EQ(entries[1],
              std::make_tuple(uint64_t{40}, uint64_t{60},
                              std::string("hole")));
    EXPECT_EQ(entries[2],
              std::make_tuple(uint64_t{60}, uint64_t{100},
                              std::string("payload")));
}

TEST(FlatMapTest, AssignExactlyOverSplitBoundaries)
{
    IntervalMap<int> m;
    m.assign(AddrRange(0, 10), 1);
    m.assign(AddrRange(10, 10), 2);
    m.assign(AddrRange(20, 10), 3);

    // Exactly replace the middle entry.
    m.assign(AddrRange(10, 10), 9);
    ASSERT_EQ(m.size(), 3u);

    // Replace a span aligned to entry boundaries on both sides.
    m.assign(AddrRange(0, 30), 5);
    ASSERT_EQ(m.size(), 1u);
    m.forEach([&](const auto &e) {
        EXPECT_EQ(e.start, 0u);
        EXPECT_EQ(e.end, 30u);
        EXPECT_EQ(e.value, 5);
    });
}

} // namespace
} // namespace pmtest::core
