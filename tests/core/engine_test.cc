#include "core/engine.hh"

#include <gtest/gtest.h>

namespace pmtest::core
{
namespace
{

Trace
makeTrace(std::vector<PmOp> ops)
{
    Trace t(1, 0);
    t.append(ops);
    return t;
}

PmOp
op(OpType type, uint64_t addr = 0, uint64_t size = 0)
{
    return PmOp{type, addr, size, 0, 0, {}};
}

TEST(EngineTest, PaperFig7EndToEnd)
{
    // The worked example of §4.4: line 5's isPersist FAILs, line 6's
    // isOrderedBefore passes.
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        PmOp::write(0x10, 64),
        PmOp::clwb(0x10, 64),
        PmOp::sfence(),
        PmOp::write(0x50, 64),
        PmOp::isPersist(0x50, 64),
        PmOp::isOrderedBefore(0x10, 64, 0x50, 64),
    }));

    ASSERT_EQ(report.failCount(), 1u);
    EXPECT_EQ(report.findings()[0].kind, FindingKind::NotPersisted);
    EXPECT_EQ(report.findings()[0].opIndex, 4u);
}

TEST(EngineTest, CleanTracePasses)
{
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        PmOp::write(0x10, 64),
        PmOp::clwb(0x10, 64),
        PmOp::sfence(),
        PmOp::write(0x50, 64),
        PmOp::clwb(0x50, 64),
        PmOp::sfence(),
        PmOp::isOrderedBefore(0x10, 64, 0x50, 64),
        PmOp::isPersist(0x10, 64),
        PmOp::isPersist(0x50, 64),
    }));
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST(EngineTest, Fig1aMissingBarrierDetected)
{
    // The intro's buggy ArrayUpdate: backup.valid set in the same
    // epoch as backup.val, so "val before valid" is not guaranteed.
    constexpr uint64_t kVal = 0x100, kValid = 0x140;
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        PmOp::write(kVal, 8),   // backup.val = ...
        PmOp::write(kValid, 1), // backup.valid = true (no barrier!)
        PmOp::clwb(kVal, 8),
        PmOp::clwb(kValid, 1),
        PmOp::sfence(),
        PmOp::isOrderedBefore(kVal, 8, kValid, 1),
    }));
    ASSERT_EQ(report.failCount(), 1u);
    EXPECT_EQ(report.findings()[0].kind, FindingKind::NotOrdered);
}

TEST(EngineTest, MissingLogInsideTransaction)
{
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        op(OpType::TxBegin),
        op(OpType::TxAdd, 0x10, 64),
        PmOp::write(0x10, 64), // backed up: fine
        PmOp::write(0x80, 64), // NOT backed up: missing-log bug
        PmOp::clwb(0x10, 64),
        PmOp::clwb(0x80, 64),
        PmOp::sfence(),
        op(OpType::TxEnd),
    }));
    ASSERT_EQ(report.failCount(), 1u);
    EXPECT_EQ(report.findings()[0].kind, FindingKind::MissingLog);
    EXPECT_EQ(report.findings()[0].opIndex, 3u);
}

TEST(EngineTest, WritesOutsideTransactionNeedNoLog)
{
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        PmOp::write(0x10, 64),
        PmOp::clwb(0x10, 64),
        PmOp::sfence(),
    }));
    EXPECT_TRUE(report.clean());
}

TEST(EngineTest, LogTreeClearedAtOutermostCommit)
{
    // A TX_ADD from transaction 1 must not cover transaction 2.
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        op(OpType::TxBegin),
        op(OpType::TxAdd, 0x10, 64),
        PmOp::write(0x10, 8),
        PmOp::clwb(0x10, 8),
        PmOp::sfence(),
        op(OpType::TxEnd),
        op(OpType::TxBegin),
        PmOp::write(0x10, 8), // no TX_ADD in this transaction
        op(OpType::TxEnd),
    }));
    ASSERT_EQ(report.failCount(), 1u);
    EXPECT_EQ(report.findings()[0].kind, FindingKind::MissingLog);
}

TEST(EngineTest, NestedTransactionKeepsLog)
{
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        op(OpType::TxBegin),
        op(OpType::TxAdd, 0x10, 64),
        op(OpType::TxBegin), // nested
        PmOp::write(0x10, 8), // covered by the outer TX_ADD
        op(OpType::TxEnd),
        PmOp::write(0x18, 8), // still covered
        PmOp::clwb(0x10, 16),
        PmOp::sfence(),
        op(OpType::TxEnd),
    }));
    EXPECT_EQ(report.failCount(), 0u) << report.str();
}

TEST(EngineTest, DuplicateLogWarns)
{
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        op(OpType::TxBegin),
        op(OpType::TxAdd, 0x10, 64),
        op(OpType::TxAdd, 0x10, 64), // duplicate
        PmOp::write(0x10, 8),
        PmOp::clwb(0x10, 8),
        PmOp::sfence(),
        op(OpType::TxEnd),
    }));
    EXPECT_EQ(report.warnCount(), 1u);
    EXPECT_EQ(report.findings()[0].kind, FindingKind::DuplicateLog);
}

TEST(EngineTest, TxCheckerDetectsIncompleteTransaction)
{
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        op(OpType::TxCheckStart),
        op(OpType::TxBegin),
        op(OpType::TxAdd, 0x10, 64),
        PmOp::write(0x10, 64),
        op(OpType::TxEnd), // no flush/fence: update may be volatile
        op(OpType::TxCheckEnd),
    }));
    ASSERT_GE(report.failCount(), 1u);
    EXPECT_EQ(report.findings()[0].kind, FindingKind::IncompleteTx);
}

TEST(EngineTest, TxCheckerPassesCompleteTransaction)
{
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        op(OpType::TxCheckStart),
        op(OpType::TxBegin),
        op(OpType::TxAdd, 0x10, 64),
        PmOp::write(0x10, 64),
        PmOp::clwb(0x10, 64),
        PmOp::sfence(),
        op(OpType::TxEnd),
        op(OpType::TxCheckEnd),
    }));
    EXPECT_TRUE(report.passed()) << report.str();
}

TEST(EngineTest, TxCheckerFlagsOpenTransaction)
{
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        op(OpType::TxCheckStart),
        op(OpType::TxBegin),
        op(OpType::TxCheckEnd), // TX still open here
        op(OpType::TxEnd),
    }));
    ASSERT_GE(report.failCount(), 1u);
    EXPECT_EQ(report.findings()[0].kind, FindingKind::UnmatchedTx);
}

TEST(EngineTest, ExcludedRangeIsNotChecked)
{
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        op(OpType::Exclude, 0x10, 64),
        op(OpType::TxBegin),
        PmOp::write(0x10, 64), // excluded: no missing-log finding
        op(OpType::TxEnd),
        PmOp::isPersist(0x10, 64), // excluded: checker skipped
    }));
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST(EngineTest, IncludeRestoresTracking)
{
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        op(OpType::Exclude, 0x10, 64),
        op(OpType::Include, 0x10, 64),
        PmOp::write(0x10, 64),
        PmOp::isPersist(0x10, 64), // not flushed: FAIL expected
    }));
    EXPECT_EQ(report.failCount(), 1u);
}

TEST(EngineTest, UnterminatedTransactionFlagged)
{
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        op(OpType::TxBegin),
    }));
    ASSERT_EQ(report.failCount(), 1u);
    EXPECT_EQ(report.findings()[0].kind, FindingKind::UnmatchedTx);
}

TEST(EngineTest, MalformedTxEventsFlagged)
{
    Engine engine(ModelKind::X86);
    const Report report = engine.check(makeTrace({
        op(OpType::TxEnd),
        op(OpType::TxAdd, 0x10, 8),
        op(OpType::TxCheckEnd),
    }));
    EXPECT_EQ(report.failCount(), 3u);
    for (const auto &f : report.findings())
        EXPECT_EQ(f.kind, FindingKind::Malformed);
}

TEST(EngineTest, TracesAreIndependent)
{
    // State (epochs, log tree, exclusions) must not leak between
    // traces: the same trace checked twice yields the same result.
    Engine engine(ModelKind::X86);
    const auto trace = makeTrace({
        op(OpType::Exclude, 0x900, 64),
        PmOp::write(0x10, 64),
        PmOp::clwb(0x10, 64),
        PmOp::sfence(),
        PmOp::isPersist(0x10, 64),
    });
    EXPECT_TRUE(engine.check(trace).clean());
    EXPECT_TRUE(engine.check(trace).clean());
    EXPECT_EQ(engine.tracesChecked(), 2u);
    EXPECT_EQ(engine.opsProcessed(), 10u);
}

TEST(EngineTest, HopsEngineChecksHopsTraces)
{
    Engine engine(ModelKind::Hops);
    const Report report = engine.check(makeTrace({
        PmOp::write(0x10, 64),
        PmOp::ofence(),
        PmOp::write(0x50, 64),
        PmOp::dfence(),
        PmOp::isOrderedBefore(0x10, 64, 0x50, 64),
        PmOp::isPersist(0x10, 64),
        PmOp::isPersist(0x50, 64),
    }));
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST(EngineTest, FindingCarriesLocation)
{
    Engine engine(ModelKind::X86);
    Trace t(1, 0);
    t.append(PmOp::write(0x10, 64));
    t.append(PmOp::isPersist(0x10, 64,
                             SourceLocation("app.cc", 99)));
    const Report report = engine.check(t);
    ASSERT_EQ(report.failCount(), 1u);
    EXPECT_EQ(report.findings()[0].loc.str(), "app.cc:99");
}

} // namespace
} // namespace pmtest::core
