/**
 * @file
 * Additional Mnemosyne-region behaviour: multi-range transactions,
 * large appends split across log entries, read-back semantics, and
 * durability through the simulated cache.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/api.hh"
#include "mnemosyne/region.hh"
#include "pmem/crash_injector.hh"
#include "util/random.hh"

namespace pmtest::mnemosyne
{
namespace
{

class RegionMoreTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }
};

TEST_F(RegionMoreTest, MultiRangeTransactionAppliesAll)
{
    Region region(1 << 20);
    auto *a = static_cast<uint64_t *>(region.alloc(8));
    auto *b = static_cast<uint32_t *>(region.alloc(4));
    auto *c = static_cast<char *>(region.alloc(16));

    region.txBegin();
    region.logAssign<uint64_t>(a, 11);
    region.logAssign<uint32_t>(b, 22);
    region.logAppend(c, "hello world", 12);
    region.txCommit();

    EXPECT_EQ(*a, 11u);
    EXPECT_EQ(*b, 22u);
    EXPECT_STREQ(c, "hello world");
}

TEST_F(RegionMoreTest, LargeAppendSplitsAcrossEntries)
{
    Region region(1 << 20);
    constexpr size_t kBig = 1000; // > LogEntry::kMaxData (64)
    auto *buf = static_cast<uint8_t *>(region.alloc(kBig));
    std::memset(buf, 0, kBig);

    std::vector<uint8_t> payload(kBig);
    Rng rng(3);
    for (auto &b : payload)
        b = static_cast<uint8_t>(rng.next());

    region.txBegin();
    region.logAppend(buf, payload.data(), payload.size());
    region.txCommit();

    EXPECT_EQ(std::memcmp(buf, payload.data(), kBig), 0);
}

TEST_F(RegionMoreTest, StagedWritesInvisibleUntilCommit)
{
    Region region(1 << 20);
    auto *x = static_cast<uint64_t *>(region.alloc(8));
    *x = 5;

    region.txBegin();
    region.logAssign<uint64_t>(x, 9);
    EXPECT_EQ(*x, 5u) << "redo staging defers in-place updates";
    region.txCommit();
    EXPECT_EQ(*x, 9u);
}

TEST_F(RegionMoreTest, SequentialTransactionsReuseLog)
{
    Region region(1 << 20);
    auto *x = static_cast<uint64_t *>(region.alloc(8));
    for (uint64_t i = 0; i < 200; i++) {
        region.txBegin();
        region.logAssign<uint64_t>(x, i);
        region.txCommit();
        ASSERT_EQ(*x, i);
    }
}

TEST_F(RegionMoreTest, CommitIsDurableThroughCacheModel)
{
    pmtestInit(Config{});
    pmtestThreadInit();

    Region region(1 << 20, /*simulate_crashes=*/true);
    pmtestAttachPool(&region.pmPool());

    auto *x = static_cast<uint64_t *>(region.alloc(64));
    region.txBegin();
    region.logAssign<uint64_t>(x, 77);
    region.txCommit();

    // After commit every sampled crash state recovers to x == 77.
    pmem::CrashInjector injector(*region.pmPool().cache());
    Rng rng(1);
    for (int i = 0; i < 20; i++) {
        auto image = injector.sample(rng);
        Region::recoverImage(image);
        uint64_t v;
        std::memcpy(&v, image.data() + region.pmPool().offsetOf(x),
                    sizeof(v));
        EXPECT_EQ(v, 77u);
    }
    pmtestDetachPool();
}

TEST_F(RegionMoreTest, PersistHelperIsImmediatelyDurable)
{
    pmtestInit(Config{});
    pmtestThreadInit();

    Region region(1 << 20, true);
    pmtestAttachPool(&region.pmPool());
    auto *x = static_cast<uint64_t *>(region.alloc(64));
    uint64_t v = 1234;
    region.persist(x, &v, sizeof(v));

    uint64_t on_device = 0;
    region.pmPool().pmDevice()->read(region.pmPool().offsetOf(x),
                                     &on_device, sizeof(on_device));
    EXPECT_EQ(on_device, 1234u);
    pmtestDetachPool();
}

TEST_F(RegionMoreTest, CheckersCleanOnMultiRangeTransactions)
{
    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    Region region(1 << 20);
    region.emitCheckers = true;
    auto *a = static_cast<uint64_t *>(region.alloc(8));
    auto *b = static_cast<uint64_t *>(region.alloc(8));

    for (int i = 0; i < 20; i++) {
        PMTEST_TX_CHECKER_START();
        region.txBegin();
        region.logAssign<uint64_t>(a, i);
        region.logAssign<uint64_t>(b, i * 2);
        region.txCommit();
        PMTEST_TX_CHECKER_END();
        pmtestSendTrace();
    }

    const auto report = pmtestResults();
    EXPECT_TRUE(report.clean()) << report.str();
}

} // namespace
} // namespace pmtest::mnemosyne
