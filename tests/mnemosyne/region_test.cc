#include "mnemosyne/region.hh"

#include <gtest/gtest.h>

#include <cstring>

#include "util/logging.hh"

namespace pmtest::mnemosyne
{
namespace
{

class RegionTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }

    void
    startPmtest()
    {
        pmtestInit(Config{});
        pmtestThreadInit();
        pmtestStart();
    }

    core::Report
    finishPmtest()
    {
        pmtestSendTrace();
        auto report = pmtestResults();
        pmtestEnd();
        pmtestExit();
        return report;
    }
};

TEST_F(RegionTest, CommitAppliesStagedWrites)
{
    Region region(1 << 20);
    auto *x = static_cast<uint64_t *>(region.alloc(8));
    *x = 0;

    region.txBegin();
    region.logAssign<uint64_t>(x, 42);
    EXPECT_EQ(*x, 0u) << "redo log defers the in-place update";
    region.txCommit();
    EXPECT_EQ(*x, 42u);
}

TEST_F(RegionTest, CorrectTransactionIsClean)
{
    Region region(1 << 20);
    region.emitCheckers = true;
    auto *x = static_cast<uint64_t *>(region.alloc(8));

    startPmtest();
    PMTEST_TX_CHECKER_START();
    region.txBegin();
    region.logAssign<uint64_t>(x, 1);
    region.txCommit();
    PMTEST_TX_CHECKER_END();
    const auto report = finishPmtest();
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST_F(RegionTest, SkipDataFlushDetected)
{
    ScopedLogSilencer quiet;
    Region region(1 << 20);
    region.emitCheckers = true;
    region.faults.skipDataFlush = true;
    auto *x = static_cast<uint64_t *>(region.alloc(8));

    startPmtest();
    region.txBegin();
    region.logAssign<uint64_t>(x, 1);
    region.txCommit();
    const auto report = finishPmtest();
    bool not_persisted = false;
    for (const auto &f : report.findings())
        not_persisted |= f.kind == core::FindingKind::NotPersisted;
    EXPECT_TRUE(not_persisted) << report.str();
}

TEST_F(RegionTest, SkipLogFlushBreaksOrdering)
{
    ScopedLogSilencer quiet;
    Region region(1 << 20);
    region.emitCheckers = true;
    region.faults.skipLogFlush = true;
    auto *x = static_cast<uint64_t *>(region.alloc(8));

    startPmtest();
    region.txBegin();
    region.logAssign<uint64_t>(x, 1);
    region.txCommit();
    const auto report = finishPmtest();
    bool not_ordered = false;
    for (const auto &f : report.findings())
        not_ordered |= f.kind == core::FindingKind::NotOrdered;
    EXPECT_TRUE(not_ordered) << report.str();
}

TEST_F(RegionTest, DuplicateAppendWarns)
{
    ScopedLogSilencer quiet;
    Region region(1 << 20);
    region.faults.duplicateAppend = true;
    auto *x = static_cast<uint64_t *>(region.alloc(8));

    startPmtest();
    region.txBegin();
    region.logAssign<uint64_t>(x, 1);
    region.txCommit();
    const auto report = finishPmtest();
    bool dup = false;
    for (const auto &f : report.findings())
        dup |= f.kind == core::FindingKind::DuplicateLog;
    EXPECT_TRUE(dup) << report.str();
}

TEST_F(RegionTest, RecoveryReplaysCommittedLog)
{
    Region region(1 << 20);
    auto *x = static_cast<uint64_t *>(region.alloc(8));
    *x = 7;

    // Crash after the commit record but before the in-place updates:
    // hand-build that image by snapshotting mid-commit is hard from
    // outside, so emulate it — stage the update, commit, then revert
    // the in-place bytes in the image (as if they never reached PM)
    // while keeping the committed log. Recovery must redo them.
    region.txBegin();
    region.logAssign<uint64_t>(x, 99);
    region.txCommit();

    std::vector<uint8_t> image(region.pmPool().base(),
                               region.pmPool().base() +
                                   region.pmPool().size());
    // The log was retired at commit; rebuild a committed log image.
    region.txBegin();
    region.logAssign<uint64_t>(x, 123);
    // Mid-transaction: log holds entries but no commit record; take
    // the pre-commit image and patch the commit flag.
    std::vector<uint8_t> crash(region.pmPool().base(),
                               region.pmPool().base() +
                                   region.pmPool().size());
    region.txCommit();

    // Find the log header: offset is private, so locate it by magic
    // via recoverImage semantics — patch committed=1 at the header.
    // Header layout: RegionHeader at 0 with logOffset at +16.
    uint64_t log_offset;
    std::memcpy(&log_offset, crash.data() + 16, sizeof(log_offset));
    uint64_t one = 1;
    std::memcpy(crash.data() + log_offset, &one, sizeof(one));

    const size_t replayed = Region::recoverImage(crash);
    EXPECT_GE(replayed, 1u);
    uint64_t recovered;
    std::memcpy(&recovered,
                crash.data() + region.pmPool().offsetOf(x),
                sizeof(recovered));
    EXPECT_EQ(recovered, 123u) << "redo applied the staged value";
}

TEST_F(RegionTest, RecoveryDiscardsUncommittedLog)
{
    Region region(1 << 20);
    auto *x = static_cast<uint64_t *>(region.alloc(8));
    *x = 7;

    region.txBegin();
    region.logAssign<uint64_t>(x, 99);
    // Crash before commit.
    std::vector<uint8_t> crash(region.pmPool().base(),
                               region.pmPool().base() +
                                   region.pmPool().size());
    region.txCommit();

    EXPECT_EQ(Region::recoverImage(crash), 0u);
    uint64_t value;
    std::memcpy(&value, crash.data() + region.pmPool().offsetOf(x),
                sizeof(value));
    EXPECT_EQ(value, 7u) << "old value preserved";
}

TEST_F(RegionTest, RootIsStable)
{
    Region region(1 << 20);
    struct R { uint64_t a; };
    R *r1 = region.root<R>();
    r1->a = 3;
    EXPECT_EQ(region.root<R>(), r1);
}

} // namespace
} // namespace pmtest::mnemosyne
