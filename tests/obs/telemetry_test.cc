/**
 * @file
 * Telemetry subsystem tests: histogram bucket math and merge,
 * concurrent counters, span sampling, strict JSON validity of both
 * exporters, pipeline stage coverage, and verdict neutrality.
 *
 * Everything except PipelineAllStagesExported exercises the registry
 * API directly (always compiled), so the suite passes both with
 * PMTEST_TELEMETRY=ON and =OFF.
 */

#include "obs/telemetry.hh"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.hh"
#include "core/engine_pool.hh"
#include "core/trace_ingest.hh"
#include "tests/obs/json_test_util.hh"
#include "trace/trace_capture.hh"
#include "trace/trace_io.hh"
#include "trace/trace_reader.hh"
#include "util/json.hh"

namespace pmtest::obs
{
namespace
{

using test::Json;
using test::JsonParser;

// --- histogram math ------------------------------------------------

TEST(LatencyHistogramTest, BucketBoundaries)
{
    // Bucket 0 holds zero-duration samples; bucket i (i >= 1) holds
    // [2^(i-1), 2^i). Check exactly at every power-of-two boundary.
    EXPECT_EQ(LatencyHistogram::bucketIndex(0), 0u);
    EXPECT_EQ(LatencyHistogram::bucketIndex(1), 1u);
    for (unsigned k = 1; k < 63; k++) {
        const uint64_t pow = uint64_t{1} << k;
        EXPECT_EQ(LatencyHistogram::bucketIndex(pow - 1), k)
            << "below boundary 2^" << k;
        EXPECT_EQ(LatencyHistogram::bucketIndex(pow), k + 1)
            << "at boundary 2^" << k;
    }
    EXPECT_EQ(LatencyHistogram::bucketIndex(UINT64_MAX), 64u);

    EXPECT_EQ(HistogramSnapshot::bucketLowerBound(0), 0u);
    EXPECT_EQ(HistogramSnapshot::bucketLowerBound(1), 1u);
    EXPECT_EQ(HistogramSnapshot::bucketLowerBound(11), 1024u);
    EXPECT_EQ(HistogramSnapshot::bucketLowerBound(64),
              uint64_t{1} << 63);
}

TEST(LatencyHistogramTest, RecordPlacesSamplesInTheirBuckets)
{
    LatencyHistogram hist;
    hist.record(0);
    hist.record(1);
    hist.record(2);
    hist.record(3);
    hist.record(1000);
    const HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.buckets[0], 1u);  // 0
    EXPECT_EQ(snap.buckets[1], 1u);  // 1
    EXPECT_EQ(snap.buckets[2], 2u);  // 2, 3
    EXPECT_EQ(snap.buckets[10], 1u); // 1000 in [512, 1024)
    EXPECT_EQ(snap.count, 5u);
    EXPECT_EQ(snap.sum, 1006u);
    EXPECT_EQ(snap.max, 1000u);
}

TEST(LatencyHistogramTest, QuantilesInterpolateWithinBucket)
{
    LatencyHistogram hist;
    for (int i = 0; i < 100; i++)
        hist.record(1000); // all in [512, 1024), observed max 1000
    const HistogramSnapshot snap = hist.snapshot();
    EXPECT_DOUBLE_EQ(snap.meanNs(), 1000.0);
    for (const double p : {0.50, 0.95, 0.99}) {
        const double q = snap.quantileNs(p);
        EXPECT_GE(q, 512.0) << "p=" << p;
        EXPECT_LE(q, 1000.0) << "p=" << p; // clamped to observed max
    }
    EXPECT_LT(snap.quantileNs(0.50), snap.quantileNs(0.99));
}

TEST(LatencyHistogramTest, EmptyHistogramQuantilesAreZero)
{
    const HistogramSnapshot snap = LatencyHistogram().snapshot();
    EXPECT_EQ(snap.quantileNs(0.5), 0.0);
    EXPECT_EQ(snap.meanNs(), 0.0);
}

TEST(LatencyHistogramTest, CrossThreadRecordThenMerge)
{
    LatencyHistogram a, b;
    std::thread ta([&] {
        for (int i = 0; i < 1000; i++)
            a.record(100);
    });
    std::thread tb([&] {
        for (int i = 0; i < 500; i++)
            b.record(900);
    });
    ta.join();
    tb.join();

    HistogramSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged.count, 1500u);
    EXPECT_EQ(merged.sum, 1000u * 100 + 500u * 900);
    EXPECT_EQ(merged.max, 900u);
    EXPECT_EQ(merged.buckets[7], 1000u); // 100 in [64, 128)
    EXPECT_EQ(merged.buckets[10], 500u); // 900 in [512, 1024)
    // Median lands in the larger, lower bucket; p95 in the upper one.
    EXPECT_LT(merged.quantileNs(0.50), 128.0);
    EXPECT_GE(merged.quantileNs(0.95), 512.0);
}

// --- registry ------------------------------------------------------

TEST(TelemetryTest, ConcurrentCountersSumExactly)
{
    Telemetry &t = Telemetry::instance();
    t.resetForTest();

    constexpr int kThreads = 8;
    constexpr int kIncrements = 10000;
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; i++) {
        threads.emplace_back([&t] {
            for (int n = 0; n < kIncrements; n++) {
                t.addCount(Counter::TracesChecked);
                t.addCount(Counter::OpsChecked, 3);
            }
        });
    }
    // Concurrent reader: snapshots must be safe against recorders
    // (values racy, access not).
    std::thread reader([&t] {
        for (int n = 0; n < 50; n++)
            (void)t.metrics();
    });
    for (auto &th : threads)
        th.join();
    reader.join();

    const MetricsSnapshot snap = t.metrics();
    EXPECT_EQ(snap.counter(Counter::TracesChecked),
              uint64_t{kThreads} * kIncrements);
    EXPECT_EQ(snap.counter(Counter::OpsChecked),
              uint64_t{kThreads} * kIncrements * 3);
    EXPECT_GE(snap.threads, uint32_t{kThreads});
}

TEST(TelemetryTest, SpanSamplingKeepsOneInN)
{
    Telemetry &t = Telemetry::instance();
    t.resetForTest();
    t.enableSpans(4);
    for (int i = 0; i < 100; i++)
        t.recordSpan(Stage::EngineCheck, 0, 50);
    t.disableSpans();

    const MetricsSnapshot snap = t.metrics();
    // Histogram sees every span; the timeline keeps every 4th.
    EXPECT_EQ(snap.stage(Stage::EngineCheck).count, 100u);
    EXPECT_EQ(snap.spansRecorded, 25u);
    EXPECT_EQ(snap.spansDropped, 0u);
    t.resetForTest();
}

TEST(TelemetryTest, SpansOffByDefaultButHistogramsLive)
{
    Telemetry &t = Telemetry::instance();
    t.resetForTest();
    ASSERT_FALSE(t.spansEnabled());
    t.recordSpan(Stage::ReportMerge, 0, 10);
    const MetricsSnapshot snap = t.metrics();
    EXPECT_EQ(snap.stage(Stage::ReportMerge).count, 1u);
    EXPECT_EQ(snap.spansRecorded, 0u);
    t.resetForTest();
}

TEST(TelemetryTest, StageAndCounterNamesAreStable)
{
    EXPECT_STREQ(stageName(Stage::EngineCheck), "engine.check");
    EXPECT_STREQ(stageName(Stage::CaptureSeal), "capture.seal");
    EXPECT_STREQ(stageName(Stage::ReportCanonicalize),
                 "report.canonicalize");
    EXPECT_STREQ(counterName(Counter::TracesChecked),
                 "traces_checked");
    EXPECT_STREQ(counterName(Counter::SubmitStalls), "submit_stalls");
    for (size_t s = 0; s < kStageCount; s++)
        EXPECT_STRNE(stageName(static_cast<Stage>(s)), "unknown");
    for (size_t c = 0; c < kCounterCount; c++)
        EXPECT_STRNE(counterName(static_cast<Counter>(c)), "unknown");
}

// --- exporters -----------------------------------------------------

TEST(TelemetryTest, MetricsJsonIsStrictlyValid)
{
    Telemetry &t = Telemetry::instance();
    t.resetForTest();
    t.addCount(Counter::TracesChecked, 7);
    t.recordSpan(Stage::EngineCheck, 0, 1000);

    JsonWriter w;
    t.writeMetricsJson(w);
    ASSERT_TRUE(w.balanced());

    Json doc;
    ASSERT_TRUE(JsonParser(w.str()).parse(&doc)) << w.str();
    ASSERT_EQ(doc.kind, Json::Kind::Object);

    const Json *counters = doc.find("counters");
    ASSERT_NE(counters, nullptr);
    for (size_t c = 0; c < kCounterCount; c++)
        EXPECT_NE(counters->find(counterName(static_cast<Counter>(c))),
                  nullptr);
    EXPECT_EQ(counters->find("traces_checked")->number, 7.0);

    const Json *stages = doc.find("stages");
    ASSERT_NE(stages, nullptr);
    for (size_t s = 0; s < kStageCount; s++) {
        const Json *stage =
            stages->find(stageName(static_cast<Stage>(s)));
        ASSERT_NE(stage, nullptr);
        for (const char *field :
             {"count", "sum_ns", "max_ns", "mean_ns", "p50_ns",
              "p95_ns", "p99_ns"})
            EXPECT_NE(stage->find(field), nullptr) << field;
    }
    EXPECT_EQ(stages->find("engine.check")->find("count")->number, 1.0);

    ASSERT_NE(doc.find("spans"), nullptr);
    ASSERT_NE(doc.find("compiled"), nullptr);
    EXPECT_EQ(doc.find("compiled")->boolean,
              PMTEST_TELEMETRY_ENABLED != 0);
    t.resetForTest();
}

TEST(TelemetryTest, TraceEventJsonIsStrictlyValid)
{
    Telemetry &t = Telemetry::instance();
    t.resetForTest();
    t.setThreadName("obs \"test\" thread"); // exercise escaping
    t.enableSpans();
    const uint64_t epoch = t.epochNanos();
    t.recordSpan(Stage::EngineCheck, epoch + 1000, 500);
    t.recordSpan(Stage::ReportMerge, epoch + 2000, 250);
    t.disableSpans();

    JsonWriter w;
    t.writeTraceEventsJson(w);
    ASSERT_TRUE(w.balanced());

    Json doc;
    ASSERT_TRUE(JsonParser(w.str()).parse(&doc)) << w.str();
    ASSERT_EQ(doc.kind, Json::Kind::Object);
    ASSERT_NE(doc.find("displayTimeUnit"), nullptr);
    EXPECT_EQ(doc.find("displayTimeUnit")->text, "ms");

    const Json *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, Json::Kind::Array);
    ASSERT_GE(events->items.size(), 3u); // >= 1 metadata + 2 spans

    size_t duration_events = 0, metadata_events = 0;
    for (const Json &e : events->items) {
        ASSERT_EQ(e.kind, Json::Kind::Object);
        // Required trace-event fields on every record.
        for (const char *field : {"name", "ph", "ts", "pid", "tid"})
            ASSERT_NE(e.find(field), nullptr) << field;
        const std::string &ph = e.find("ph")->text;
        if (ph == "X") {
            duration_events++;
            ASSERT_NE(e.find("dur"), nullptr);
            EXPECT_EQ(e.find("cat")->text, "pmtest");
            EXPECT_GE(e.find("ts")->number, 0.0);
            EXPECT_GE(e.find("dur")->number, 0.0);
        } else {
            ASSERT_EQ(ph, "M");
            metadata_events++;
            EXPECT_EQ(e.find("name")->text, "thread_name");
            ASSERT_NE(e.find("args"), nullptr);
            ASSERT_NE(e.find("args")->find("name"), nullptr);
        }
    }
    EXPECT_EQ(duration_events, 2u);
    EXPECT_GE(metadata_events, 1u);
    t.resetForTest();
}

// --- pipeline coverage and verdict neutrality ----------------------

Trace
makeBuggyTrace(uint32_t id)
{
    Trace trace(id, 0);
    for (int i = 0; i < 8; i++) {
        const uint64_t addr = 64 * static_cast<uint64_t>(i);
        trace.append(PmOp::write(addr, 64));
        if (i != 3) // one un-flushed store: a real finding to compare
            trace.append(PmOp::clwb(addr, 64));
        trace.append(PmOp::sfence());
        trace.append(PmOp::isPersist(addr, 64));
    }
    return trace;
}

#if PMTEST_TELEMETRY_ENABLED
TEST(TelemetryTest, PipelineExportCoversEveryStage)
{
    Telemetry &t = Telemetry::instance();
    t.resetForTest();
    t.enableSpans();

    // capture → file → mmap ingest → pool → merged report, all in
    // this process so one export sees every stage.
    TraceCapture capture(0);
    capture.start();
    std::vector<Trace> traces;
    for (uint32_t i = 0; i < 16; i++) {
        for (int r = 0; r < 8; r++) {
            const uint64_t addr = 64 * static_cast<uint64_t>(r);
            capture.record(PmOp::write(addr, 64));
            capture.record(PmOp::clwb(addr, 64));
            capture.record(PmOp::sfence());
        }
        traces.push_back(capture.seal());
    }

    const std::string path = "/tmp/pmtest_obs_pipeline_" +
                             std::to_string(getpid()) + ".trace";
    ASSERT_TRUE(saveTracesToFile(path, traces, TraceFormat::V2));

    {
        std::string error;
        auto source =
            openTraceSource(path, IngestMode::Mmap, 0, &error);
        ASSERT_NE(source, nullptr) << error;
        core::PoolOptions options;
        options.workers = 2;
        core::EnginePool pool(options);
        core::IngestOptions ingest;
        ingest.decoders = 2;
        ingest.batch = 4;
        ASSERT_TRUE(
            core::ingest(*source, pool, ingest, nullptr, nullptr));
        core::Report merged = pool.results();
        merged.canonicalize();
    }
    std::remove(path.c_str());
    t.disableSpans();

    JsonWriter w;
    t.writeTraceEventsJson(w);
    Json doc;
    ASSERT_TRUE(JsonParser(w.str()).parse(&doc));

    // Stall and steal stages only fire under backpressure/imbalance,
    // so assert the seven deterministic stages of this pipeline.
    for (const Stage stage :
         {Stage::CaptureSeal, Stage::PoolSubmit, Stage::IngestDecode,
          Stage::IngestSubmit, Stage::EngineCheck, Stage::ReportMerge,
          Stage::ReportCanonicalize}) {
        EXPECT_NE(w.str().find(std::string{"\"name\":\""} +
                               stageName(stage) + "\""),
                  std::string::npos)
            << stageName(stage) << " missing from export";
    }

    const MetricsSnapshot snap = t.metrics();
    EXPECT_EQ(snap.counter(Counter::TracesSealed), 16u);
    EXPECT_EQ(snap.counter(Counter::TracesDecoded), 16u);
    EXPECT_EQ(snap.counter(Counter::TracesChecked), 16u);
    EXPECT_EQ(snap.counter(Counter::ReportsMerged), 16u);
    t.resetForTest();
}
#endif // PMTEST_TELEMETRY_ENABLED

TEST(TelemetryTest, VerdictBytesUnchangedBySpanCollection)
{
    Telemetry &t = Telemetry::instance();
    t.resetForTest();

    std::vector<Trace> traces;
    for (uint32_t i = 0; i < 4; i++)
        traces.push_back(makeBuggyTrace(i));

    auto runCheck = [&traces] {
        core::Engine engine(core::ModelKind::X86);
        core::Report merged;
        for (const auto &trace : traces)
            merged.merge(engine.check(trace));
        merged.canonicalize();
        return merged.str();
    };

    const std::string baseline = runCheck();
    EXPECT_NE(baseline.find("FAIL"), std::string::npos)
        << "comparison must cover a non-trivial verdict";

    t.enableSpans(1);
    const std::string with_spans = runCheck();
    t.enableSpans(3);
    const std::string sampled = runCheck();
    t.disableSpans();
    const std::string after = runCheck();

    EXPECT_EQ(baseline, with_spans);
    EXPECT_EQ(baseline, sampled);
    EXPECT_EQ(baseline, after);
    t.resetForTest();
}

} // namespace
} // namespace pmtest::obs
