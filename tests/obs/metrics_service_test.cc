/**
 * @file
 * Live metrics service tests: strict Prometheus exposition format,
 * pmtest-metrics-v1 schema of the live JSON document, snapshot
 * timestamp monotonicity, the stall watchdog (injected stall through
 * fake gauge samplers, then re-arm on progress), the structured JSONL
 * event log (round-trip parse and the unwritable-path exit-2
 * contract), and the HTTP endpoint under concurrent scrapes.
 *
 * The publisher/render/watchdog/event-log-open tests run in every
 * build configuration; the endpoint tests and event-record content
 * checks need PMTEST_TELEMETRY=ON and skip themselves otherwise.
 */

#include "obs/metrics_service.hh"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.hh"
#include "obs/metrics_publisher.hh"
#include "obs/telemetry.hh"
#include "tests/obs/json_test_util.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace pmtest::obs
{
namespace
{

using test::Json;
using test::JsonParser;

/** Fake gauge state the sampler closures read; tests mutate it. */
struct FakeGauges
{
    std::atomic<uint64_t> submitted{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> consumed{0};

    PoolGauges
    pool() const
    {
        PoolGauges g;
        g.valid = true;
        g.tracesSubmitted = submitted.load();
        g.tracesCompleted = completed.load();
        g.queueDepths = {g.tracesSubmitted - g.tracesCompleted, 0};
        return g;
    }

    IngestGauges
    ingest() const
    {
        IngestGauges g;
        g.valid = true;
        SourceGauge s;
        s.label = "fake.trace";
        s.tracesTotal = 100;
        s.tracesTotalKnown = true;
        s.bytesTotal = 100 * 64;
        s.tracesConsumed = consumed.load();
        s.bytesConsumed = s.tracesConsumed * 64;
        s.drained = s.tracesConsumed >= s.tracesTotal;
        g.done = s.drained;
        g.sources.push_back(std::move(s));
        return g;
    }
};

PublisherOptions
fakeOptions(const FakeGauges &state)
{
    PublisherOptions o;
    o.tool = "obs_test";
    o.poolSampler = [&state] { return state.pool(); };
    o.ingestSampler = [&state] { return state.ingest(); };
    return o;
}

/** One line of Prometheus text exposition, strictly validated. */
void
checkPromLine(const std::string &line)
{
    ASSERT_FALSE(line.empty());
    if (line[0] == '#')
        return; // HELP/TYPE/comment lines are free-form
    // name{labels} value  |  name value
    size_t i = 0;
    ASSERT_TRUE(std::isalpha(static_cast<unsigned char>(line[0])) ||
                line[0] == '_')
        << line;
    while (i < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[i])) ||
            line[i] == '_' || line[i] == ':'))
        i++;
    if (i < line.size() && line[i] == '{') {
        const size_t close = line.find('}', i);
        ASSERT_NE(close, std::string::npos) << line;
        // Labels: key="value" pairs; just require balanced quotes.
        size_t quotes = 0;
        for (size_t k = i; k <= close; k++)
            if (line[k] == '"' && line[k - 1] != '\\')
                quotes++;
        ASSERT_EQ(quotes % 2, 0u) << line;
        i = close + 1;
    }
    ASSERT_LT(i, line.size()) << line;
    ASSERT_EQ(line[i], ' ') << line;
    const std::string value = line.substr(i + 1);
    ASSERT_FALSE(value.empty()) << line;
    char *end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    ASSERT_EQ(*end, '\0') << "unparsable sample value: " << line;
}

/** Minimal blocking HTTP/1.0 GET against 127.0.0.1:port. */
std::string
httpGet(uint16_t port, const std::string &path)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    const std::string req =
        "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
    (void)::send(fd, req.data(), req.size(), 0);
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        response.append(buf, static_cast<size_t>(n));
    ::close(fd);
    return response;
}

std::string
tempPath(const char *stem)
{
    return ::testing::TempDir() + stem + "." +
           std::to_string(::getpid()) + ".jsonl";
}

// --- renderers -----------------------------------------------------

TEST(MetricsPublisherTest, PrometheusExpositionIsStrictlyParsable)
{
    FakeGauges state;
    state.submitted = 10;
    state.completed = 4;
    state.consumed = 42;
    MetricsPublisher pub(fakeOptions(state));
    pub.tickOnceForTest();

    const std::string text = pub.renderPrometheus();
    ASSERT_FALSE(text.empty());
    ASSERT_EQ(text.back(), '\n'); // exposition ends in a newline

    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line))
        checkPromLine(line);

    for (const char *needle :
         {"pmtest_snapshot_nanoseconds ",
          "# TYPE pmtest_traces_checked_total counter",
          "pmtest_pool_inflight_traces 6",
          "pmtest_pool_queued_traces 6",
          "pmtest_worker_queue_depth{worker=\"0\"} 6",
          "pmtest_worker_queue_depth{worker=\"1\"} 0",
          "pmtest_ingest_traces_consumed 42",
          "pmtest_ingest_traces_total 100",
          "pmtest_source_traces_consumed{source=\"fake.trace\"} 42",
          "pmtest_process_resident_bytes ",
          "pmtest_traces_checked_per_second "})
        EXPECT_NE(text.find(needle), std::string::npos)
            << "missing: " << needle;
}

TEST(MetricsPublisherTest, JsonDocumentMatchesMetricsV1Schema)
{
    FakeGauges state;
    state.submitted = 8;
    state.completed = 8;
    state.consumed = 100;
    MetricsPublisher pub(fakeOptions(state));
    pub.tickOnceForTest();

    Json doc;
    ASSERT_TRUE(JsonParser(pub.renderJson()).parse(&doc));
    ASSERT_EQ(doc.kind, Json::Kind::Object);

    const Json *schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->text, "pmtest-metrics-v1");
    const Json *live = doc.find("live");
    ASSERT_NE(live, nullptr);
    EXPECT_TRUE(live->boolean);
    const Json *snapshot_ns = doc.find("snapshot_ns");
    ASSERT_NE(snapshot_ns, nullptr);
    EXPECT_GT(snapshot_ns->number, 0.0);

    const Json *gauges = doc.find("gauges");
    ASSERT_NE(gauges, nullptr);
    const Json *pool = gauges->find("pool");
    ASSERT_NE(pool, nullptr);
    EXPECT_EQ(pool->find("in_flight")->number, 0.0);
    ASSERT_NE(pool->find("queue_depths"), nullptr);
    EXPECT_EQ(pool->find("queue_depths")->items.size(), 2u);

    const Json *ingest = gauges->find("ingest");
    ASSERT_NE(ingest, nullptr);
    EXPECT_EQ(ingest->find("traces_consumed")->number, 100.0);
    EXPECT_TRUE(ingest->find("done")->boolean);
    const Json *sources = ingest->find("sources");
    ASSERT_NE(sources, nullptr);
    ASSERT_EQ(sources->items.size(), 1u);
    EXPECT_EQ(sources->items[0].find("source")->text, "fake.trace");
    EXPECT_TRUE(sources->items[0].find("drained")->boolean);

    const Json *process = gauges->find("process");
    ASSERT_NE(process, nullptr);
    EXPECT_GT(process->find("rss_bytes")->number, 0.0);

    const Json *rates = doc.find("rates");
    ASSERT_NE(rates, nullptr);
    EXPECT_NE(rates->find("traces_checked_per_sec"), nullptr);
    EXPECT_NE(rates->find("bytes_consumed_per_sec"), nullptr);

    // The full registry snapshot rides along under "telemetry".
    const Json *telemetry = doc.find("telemetry");
    ASSERT_NE(telemetry, nullptr);
    EXPECT_NE(telemetry->find("counters"), nullptr);
}

TEST(MetricsPublisherTest, SnapshotTimestampIsMonotonic)
{
    FakeGauges state;
    MetricsPublisher pub(fakeOptions(state));
    pub.tickOnceForTest();
    const uint64_t first = pub.latest().metrics.snapshotNs;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    pub.tickOnceForTest();
    const uint64_t second = pub.latest().metrics.snapshotNs;
    EXPECT_GT(first, 0u);
    EXPECT_GT(second, first);
}

// --- watchdog ------------------------------------------------------

TEST(MetricsPublisherTest, WatchdogFiresOnInjectedStallThenRearms)
{
    ScopedLogSilencer quiet;
    FakeGauges state;
    state.submitted = 10;
    state.completed = 5; // 5 in flight, and nothing ever progresses
    state.consumed = 50;

    PublisherOptions options = fakeOptions(state);
    options.stallTicks = 2;
    MetricsPublisher pub(std::move(options));

    pub.tickOnceForTest(); // baseline
    EXPECT_EQ(pub.watchdogFired(), 0u);
    pub.tickOnceForTest(); // stale x1
    EXPECT_EQ(pub.watchdogFired(), 0u);
    pub.tickOnceForTest(); // stale x2 -> fires
    EXPECT_EQ(pub.watchdogFired(), 1u);
    pub.tickOnceForTest(); // same episode: does not re-fire
    EXPECT_EQ(pub.watchdogFired(), 1u);

    state.completed = 6; // progress resumes -> watchdog re-arms
    pub.tickOnceForTest();
    EXPECT_EQ(pub.watchdogFired(), 1u);

    pub.tickOnceForTest(); // stale x1 of a new episode
    pub.tickOnceForTest(); // stale x2 -> second episode fires
    EXPECT_EQ(pub.watchdogFired(), 2u);
}

TEST(MetricsPublisherTest, WatchdogStaysQuietWhenNothingOutstanding)
{
    ScopedLogSilencer quiet;
    FakeGauges state;
    state.submitted = 10;
    state.completed = 10; // nothing in flight
    state.consumed = 100; // source drained
    PublisherOptions options = fakeOptions(state);
    options.stallTicks = 1;
    MetricsPublisher pub(std::move(options));
    for (int i = 0; i < 5; i++)
        pub.tickOnceForTest();
    EXPECT_EQ(pub.watchdogFired(), 0u);
}

// --- event log -----------------------------------------------------

TEST(EventLogTest, UnwritablePathFailsWithPathQualifiedError)
{
    EventLog log;
    std::string error;
    EXPECT_FALSE(
        log.open("/nonexistent-dir-pmtest/events.jsonl", &error));
    EXPECT_NE(error.find("cannot write"), std::string::npos) << error;
    EXPECT_NE(error.find("/nonexistent-dir-pmtest/events.jsonl"),
              std::string::npos)
        << error;
    EXPECT_FALSE(log.active());
}

TEST(EventLogTest, RoundTripStrictJsonlRecords)
{
    const std::string path = tempPath("event_log_roundtrip");
    EventLog log;
    std::string error;
    ASSERT_TRUE(log.open(path, &error)) << error;
    ASSERT_TRUE(log.active());

    log.emit(EventSeverity::Info, "run_start", [](JsonWriter &w) {
        w.member("tool", "obs_test");
        w.member("workers", uint64_t{4});
    });
    log.emit(EventSeverity::Warn, "watchdog_stall");
    log.emit(EventSeverity::Error, "finding", [](JsonWriter &w) {
        w.member("verdict", "FAIL");
        w.member("message", "line with \"quotes\" and\nnewline");
    });
    log.close();

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::vector<Json> records;
    std::string line;
    while (std::getline(in, line)) {
        Json doc;
        ASSERT_TRUE(JsonParser(line).parse(&doc)) << line;
        ASSERT_EQ(doc.kind, Json::Kind::Object);
        records.push_back(std::move(doc));
    }
    std::remove(path.c_str());

#if PMTEST_TELEMETRY_ENABLED
    ASSERT_EQ(records.size(), 3u);
    for (const Json &r : records) {
        ASSERT_NE(r.find("ts_ms"), nullptr);
        ASSERT_NE(r.find("mono_ns"), nullptr);
        ASSERT_NE(r.find("severity"), nullptr);
        ASSERT_NE(r.find("type"), nullptr);
    }
    EXPECT_EQ(records[0].find("type")->text, "run_start");
    EXPECT_EQ(records[0].find("severity")->text, "info");
    EXPECT_EQ(records[0].find("workers")->number, 4.0);
    EXPECT_EQ(records[1].find("severity")->text, "warn");
    EXPECT_EQ(records[2].find("severity")->text, "error");
    EXPECT_EQ(records[2].find("verdict")->text, "FAIL");
#else
    // Telemetry compiled out: the log opens (flag validation stays
    // live) but emits nothing.
    EXPECT_TRUE(records.empty());
#endif
}

// --- HTTP endpoint -------------------------------------------------

TEST(MetricsServiceTest, UnwritableEventLogFailsStartInEveryConfig)
{
    MetricsService service;
    ServiceOptions options;
    options.tool = "obs_test";
    options.eventLogPath = "/nonexistent-dir-pmtest/events.jsonl";
    std::string error;
    EXPECT_FALSE(service.start(std::move(options), &error));
    EXPECT_NE(error.find("cannot write"), std::string::npos) << error;
}

TEST(MetricsServiceTest, ServesBothRoutesUnderConcurrentScrapes)
{
#if PMTEST_TELEMETRY_ENABLED
    Telemetry::instance().resetForTest();
    FakeGauges state;
    state.submitted = 4;
    state.completed = 2;
    state.consumed = 10;

    MetricsService service;
    ServiceOptions options;
    options.tool = "obs_test";
    options.metricsPort = 0; // ephemeral
    options.intervalMs = 5;  // tick hard to race scrapes against it
    options.poolSampler = [&state] { return state.pool(); };
    options.ingestSampler = [&state] { return state.ingest(); };
    std::string error;
    ASSERT_TRUE(service.start(std::move(options), &error)) << error;
    const uint16_t port = service.port();
    ASSERT_NE(port, 0);

    constexpr int kThreads = 4;
    constexpr int kScrapes = 8;
    std::atomic<int> ok{0};
    std::vector<std::thread> scrapers;
    for (int t = 0; t < kThreads; t++) {
        scrapers.emplace_back([&, t] {
            for (int i = 0; i < kScrapes; i++) {
                const bool json = (t + i) % 2 == 0;
                const std::string response = httpGet(
                    port, json ? "/metrics.json" : "/metrics");
                if (response.find("HTTP/1.0 200") != 0)
                    continue;
                const size_t body = response.find("\r\n\r\n");
                if (body == std::string::npos)
                    continue;
                const std::string payload = response.substr(body + 4);
                if (json) {
                    Json doc;
                    if (JsonParser(payload).parse(&doc) &&
                        doc.find("schema") &&
                        doc.find("schema")->text == "pmtest-metrics-v1")
                        ok++;
                } else if (payload.find(
                               "pmtest_snapshot_nanoseconds") !=
                           std::string::npos) {
                    ok++;
                }
            }
        });
    }
    // Keep the counters moving while the scrapers hammer the server.
    for (int i = 0; i < 200; i++) {
        count(Counter::TracesChecked);
        state.completed.fetch_add(i % 2);
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    for (auto &th : scrapers)
        th.join();
    EXPECT_EQ(ok.load(), kThreads * kScrapes);

    service.freeze(); // frozen sample keeps serving
    const std::string after = httpGet(port, "/metrics");
    EXPECT_EQ(after.find("HTTP/1.0 200"), 0u);

    // Scrapes themselves are counted.
    EXPECT_GE(Telemetry::instance()
                  .metrics()
                  .counter(Counter::MetricsScrapes),
              uint64_t{kThreads} * kScrapes);
    service.stop();
    Telemetry::instance().resetForTest();
#else
    GTEST_SKIP() << "telemetry compiled out";
#endif
}

TEST(MetricsServiceTest, UnknownRouteIs404)
{
#if PMTEST_TELEMETRY_ENABLED
    MetricsService service;
    ServiceOptions options;
    options.tool = "obs_test";
    options.metricsPort = 0;
    options.intervalMs = 1000;
    std::string error;
    ASSERT_TRUE(service.start(std::move(options), &error)) << error;
    const std::string response = httpGet(service.port(), "/nope");
    EXPECT_EQ(response.find("HTTP/1.0 404"), 0u) << response;
    service.stop();
#else
    GTEST_SKIP() << "telemetry compiled out";
#endif
}

} // namespace
} // namespace pmtest::obs
