/**
 * @file
 * Strict recursive-descent JSON parser shared by the obs tests.
 *
 * Deliberately unforgiving: no trailing garbage, no unquoted keys, no
 * comments. If the exporters drift from valid JSON, the tests fail
 * before chrome://tracing or Prometheus ever see the output.
 */

#pragma once

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace pmtest::test
{

struct Json
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string text;
    std::vector<Json> items;
    std::vector<std::pair<std::string, Json>> members;

    const Json *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : members)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &s)
        : p_(s.data()), end_(s.data() + s.size())
    {
    }

    bool
    parse(Json *out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        return p_ == end_; // no trailing garbage
    }

  private:
    void
    skipWs()
    {
        while (p_ < end_ && std::isspace(static_cast<unsigned char>(*p_)))
            p_++;
    }

    bool
    literal(const char *word)
    {
        const size_t n = std::strlen(word);
        if (static_cast<size_t>(end_ - p_) < n ||
            std::strncmp(p_, word, n) != 0)
            return false;
        p_ += n;
        return true;
    }

    bool
    parseString(std::string *out)
    {
        if (p_ >= end_ || *p_ != '"')
            return false;
        p_++;
        out->clear();
        while (p_ < end_ && *p_ != '"') {
            if (*p_ == '\\') {
                p_++;
                if (p_ >= end_)
                    return false;
                switch (*p_) {
                  case '"': *out += '"'; break;
                  case '\\': *out += '\\'; break;
                  case '/': *out += '/'; break;
                  case 'n': *out += '\n'; break;
                  case 'r': *out += '\r'; break;
                  case 't': *out += '\t'; break;
                  case 'b': *out += '\b'; break;
                  case 'f': *out += '\f'; break;
                  case 'u': {
                    if (end_ - p_ < 5)
                        return false;
                    for (int i = 1; i <= 4; i++)
                        if (!std::isxdigit(
                                static_cast<unsigned char>(p_[i])))
                            return false;
                    p_ += 4;
                    *out += '?'; // content irrelevant to the tests
                    break;
                  }
                  default:
                    return false;
                }
                p_++;
            } else if (static_cast<unsigned char>(*p_) < 0x20) {
                return false; // raw control char: invalid JSON
            } else {
                *out += *p_++;
            }
        }
        if (p_ >= end_)
            return false;
        p_++; // closing quote
        return true;
    }

    bool
    parseNumber(double *out)
    {
        const char *start = p_;
        if (p_ < end_ && *p_ == '-')
            p_++;
        if (p_ >= end_ || !std::isdigit(static_cast<unsigned char>(*p_)))
            return false;
        while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_)))
            p_++;
        if (p_ < end_ && *p_ == '.') {
            p_++;
            if (p_ >= end_ ||
                !std::isdigit(static_cast<unsigned char>(*p_)))
                return false;
            while (p_ < end_ &&
                   std::isdigit(static_cast<unsigned char>(*p_)))
                p_++;
        }
        if (p_ < end_ && (*p_ == 'e' || *p_ == 'E')) {
            p_++;
            if (p_ < end_ && (*p_ == '+' || *p_ == '-'))
                p_++;
            if (p_ >= end_ ||
                !std::isdigit(static_cast<unsigned char>(*p_)))
                return false;
            while (p_ < end_ &&
                   std::isdigit(static_cast<unsigned char>(*p_)))
                p_++;
        }
        *out = std::strtod(std::string(start, p_).c_str(), nullptr);
        return true;
    }

    bool
    parseValue(Json *out)
    {
        skipWs();
        if (p_ >= end_)
            return false;
        if (*p_ == '{') {
            p_++;
            out->kind = Json::Kind::Object;
            skipWs();
            if (p_ < end_ && *p_ == '}') {
                p_++;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(&key))
                    return false;
                skipWs();
                if (p_ >= end_ || *p_++ != ':')
                    return false;
                Json v;
                if (!parseValue(&v))
                    return false;
                out->members.emplace_back(std::move(key), std::move(v));
                skipWs();
                if (p_ < end_ && *p_ == ',') {
                    p_++;
                    continue;
                }
                break;
            }
            skipWs();
            return p_ < end_ && *p_++ == '}';
        }
        if (*p_ == '[') {
            p_++;
            out->kind = Json::Kind::Array;
            skipWs();
            if (p_ < end_ && *p_ == ']') {
                p_++;
                return true;
            }
            while (true) {
                Json v;
                if (!parseValue(&v))
                    return false;
                out->items.push_back(std::move(v));
                skipWs();
                if (p_ < end_ && *p_ == ',') {
                    p_++;
                    continue;
                }
                break;
            }
            skipWs();
            return p_ < end_ && *p_++ == ']';
        }
        if (*p_ == '"') {
            out->kind = Json::Kind::String;
            return parseString(&out->text);
        }
        if (literal("true")) {
            out->kind = Json::Kind::Bool;
            out->boolean = true;
            return true;
        }
        if (literal("false")) {
            out->kind = Json::Kind::Bool;
            out->boolean = false;
            return true;
        }
        if (literal("null")) {
            out->kind = Json::Kind::Null;
            return true;
        }
        out->kind = Json::Kind::Number;
        return parseNumber(&out->number);
    }

    const char *p_;
    const char *end_;
};

} // namespace pmtest::test
