#include "trace/fix_hint.hh"

#include <gtest/gtest.h>

namespace pmtest
{
namespace
{

Trace
makeTrace(std::vector<PmOp> ops)
{
    Trace t(7, 3);
    t.setFileId(2);
    t.append(ops);
    return t;
}

TEST(FixHintTest, ActionNamesAreStable)
{
    EXPECT_STREQ(fixActionName(FixAction::None), "none");
    EXPECT_STREQ(fixActionName(FixAction::InsertFlushFence),
                 "insert-flush-fence");
    EXPECT_STREQ(fixActionName(FixAction::InsertOrdering),
                 "insert-ordering");
    EXPECT_STREQ(fixActionName(FixAction::DeleteFlush),
                 "delete-flush");
}

TEST(FixHintTest, DefaultHintIsInvalid)
{
    FixHint hint;
    EXPECT_FALSE(hint.valid());
    hint.action = FixAction::InsertFence;
    EXPECT_TRUE(hint.valid());
}

TEST(FixHintTest, SameEditIgnoresVerified)
{
    FixHint a, b;
    a.action = b.action = FixAction::InsertFlush;
    a.addr = b.addr = 0x10;
    b.verified = true;
    EXPECT_TRUE(a.sameEdit(b));
    b.opIndex = 5;
    EXPECT_FALSE(a.sameEdit(b));
}

TEST(FixHintTest, InsertFlushFenceBeforeAnchor)
{
    const Trace trace = makeTrace({
        PmOp::write(0x10, 64),
        PmOp::isPersist(0x10, 64),
    });
    FixHint hint;
    hint.action = FixAction::InsertFlushFence;
    hint.addr = 0x10;
    hint.size = 64;
    hint.opIndex = 1;

    const Trace patched = applyFixHint(trace, hint);
    ASSERT_EQ(patched.size(), 4u);
    EXPECT_EQ(patched.ops()[0].type, OpType::Write);
    EXPECT_EQ(patched.ops()[1].type, OpType::Clwb);
    EXPECT_EQ(patched.ops()[1].addr, 0x10u);
    EXPECT_EQ(patched.ops()[2].type, OpType::Sfence);
    EXPECT_EQ(patched.ops()[3].type, OpType::CheckIsPersist);
}

TEST(FixHintTest, PatchedTraceKeepsIdentityAndArena)
{
    const Trace trace = makeTrace({PmOp::write(0x10, 64)});
    FixHint hint;
    hint.action = FixAction::InsertFence;
    hint.opIndex = 1;
    const Trace patched = applyFixHint(trace, hint);
    EXPECT_EQ(patched.id(), trace.id());
    EXPECT_EQ(patched.threadId(), trace.threadId());
    EXPECT_EQ(patched.fileId(), trace.fileId());
    EXPECT_EQ(patched.size(), 2u);
}

TEST(FixHintTest, InsertedOpsCarryFixHintLocation)
{
    const Trace trace = makeTrace({PmOp::write(0x10, 64)});
    FixHint hint;
    hint.action = FixAction::InsertTxAdd;
    hint.addr = 0x10;
    hint.size = 64;
    hint.opIndex = 0;
    const Trace patched = applyFixHint(trace, hint);
    ASSERT_EQ(patched.size(), 2u);
    EXPECT_STREQ(patched.ops()[0].loc.file, "<fix-hint>");
}

TEST(FixHintTest, InsertTxEndAppendsCountAtTraceEnd)
{
    const Trace trace = makeTrace({
        PmOp{OpType::TxBegin, 0, 0, 0, 0, {}},
        PmOp{OpType::TxBegin, 0, 0, 0, 0, {}},
    });
    FixHint hint;
    hint.action = FixAction::InsertTxEnd;
    hint.opIndex = 2; // == trace.size(): append
    hint.count = 2;
    const Trace patched = applyFixHint(trace, hint);
    ASSERT_EQ(patched.size(), 4u);
    EXPECT_EQ(patched.ops()[2].type, OpType::TxEnd);
    EXPECT_EQ(patched.ops()[3].type, OpType::TxEnd);
}

TEST(FixHintTest, DeleteFlushRemovesTheFlush)
{
    const Trace trace = makeTrace({
        PmOp::write(0x10, 64),
        PmOp::clwb(0x10, 64),
        PmOp::clwb(0x10, 64),
        PmOp::sfence(),
    });
    FixHint hint;
    hint.action = FixAction::DeleteFlush;
    hint.opIndex = 2;
    const Trace patched = applyFixHint(trace, hint);
    ASSERT_EQ(patched.size(), 3u);
    EXPECT_EQ(patched.ops()[0].type, OpType::Write);
    EXPECT_EQ(patched.ops()[1].type, OpType::Clwb);
    EXPECT_EQ(patched.ops()[2].type, OpType::Sfence);
}

TEST(FixHintTest, DeleteWithWrongAnchorTypeIsANoOp)
{
    const Trace trace = makeTrace({
        PmOp::write(0x10, 64),
        PmOp::sfence(),
    });
    FixHint hint;
    hint.action = FixAction::DeleteFlush;
    hint.opIndex = 0; // a write, not a flush
    const Trace patched = applyFixHint(trace, hint);
    EXPECT_EQ(patched.size(), trace.size());

    hint.action = FixAction::DeleteTxAdd;
    hint.opIndex = 1;
    EXPECT_EQ(applyFixHint(trace, hint).size(), trace.size());
}

TEST(FixHintTest, OutOfRangeAnchorIsANoOp)
{
    const Trace trace = makeTrace({PmOp::write(0x10, 64)});
    FixHint hint;
    hint.action = FixAction::InsertFence;
    hint.opIndex = 99;
    EXPECT_EQ(applyFixHint(trace, hint).size(), trace.size());
}

TEST(FixHintTest, InsertOrderingLandsBeforeFirstWriteToB)
{
    // Fig. 1a shape: val and valid written back-to-back, writebacks
    // trail. The repair materializes A's writeback + fence in front
    // of B's write and retires the now-redundant later writeback.
    const Trace trace = makeTrace({
        PmOp::write(0x100, 8),  // A
        PmOp::write(0x140, 1),  // B
        PmOp::clwb(0x100, 8),
        PmOp::clwb(0x140, 1),
        PmOp::sfence(),
        PmOp::isOrderedBefore(0x100, 8, 0x140, 1),
    });
    FixHint hint;
    hint.action = FixAction::InsertOrdering;
    hint.addr = 0x100;
    hint.size = 8;
    hint.addrB = 0x140;
    hint.sizeB = 1;
    hint.opIndex = 5;
    hint.withFlush = true;

    const Trace patched = applyFixHint(trace, hint);
    // +2 inserted, -1 retired clwb(0x100).
    ASSERT_EQ(patched.size(), 7u);
    EXPECT_EQ(patched.ops()[0].type, OpType::Write);
    EXPECT_EQ(patched.ops()[1].type, OpType::Clwb);
    EXPECT_EQ(patched.ops()[1].addr, 0x100u);
    EXPECT_EQ(patched.ops()[2].type, OpType::Sfence);
    EXPECT_EQ(patched.ops()[3].type, OpType::Write);
    EXPECT_EQ(patched.ops()[3].addr, 0x140u);
    EXPECT_EQ(patched.ops()[4].type, OpType::Clwb);
    EXPECT_EQ(patched.ops()[4].addr, 0x140u);
}

TEST(FixHintTest, InsertOrderingSkipsFlushWhenAlreadyFlushed)
{
    // A's writeback already precedes B's write; only the fence is
    // missing, and nothing is retired.
    const Trace trace = makeTrace({
        PmOp::write(0x100, 8),
        PmOp::clwb(0x100, 8),
        PmOp::write(0x140, 1),
        PmOp::clwb(0x140, 1),
        PmOp::sfence(),
        PmOp::isOrderedBefore(0x100, 8, 0x140, 1),
    });
    FixHint hint;
    hint.action = FixAction::InsertOrdering;
    hint.addr = 0x100;
    hint.size = 8;
    hint.addrB = 0x140;
    hint.sizeB = 1;
    hint.opIndex = 5;
    hint.withFlush = true;

    const Trace patched = applyFixHint(trace, hint);
    ASSERT_EQ(patched.size(), 7u);
    EXPECT_EQ(patched.ops()[1].type, OpType::Clwb);
    EXPECT_EQ(patched.ops()[2].type, OpType::Sfence);
    EXPECT_EQ(patched.ops()[3].type, OpType::Write);
    EXPECT_EQ(patched.ops()[3].addr, 0x140u);
}

TEST(FixHintTest, InsertOrderingWithoutFlushInsertsFenceOnly)
{
    const Trace trace = makeTrace({
        PmOp::write(0x10, 64),
        PmOp::write(0x50, 64),
        PmOp::dfence(),
        PmOp::isOrderedBefore(0x10, 64, 0x50, 64),
    });
    FixHint hint;
    hint.action = FixAction::InsertOrdering;
    hint.addr = 0x10;
    hint.size = 64;
    hint.addrB = 0x50;
    hint.sizeB = 64;
    hint.opIndex = 3;
    hint.fenceOp = OpType::Ofence;
    hint.withFlush = false;

    const Trace patched = applyFixHint(trace, hint);
    ASSERT_EQ(patched.size(), 5u);
    EXPECT_EQ(patched.ops()[1].type, OpType::Ofence);
    EXPECT_EQ(patched.ops()[2].type, OpType::Write);
    EXPECT_EQ(patched.ops()[2].addr, 0x50u);
}

TEST(FixHintTest, ApplyHintsResolvesAgainstOriginalIndices)
{
    // Two hints whose anchors would shift if applied sequentially:
    // an insertion at index 1 and a deletion at index 2.
    const Trace trace = makeTrace({
        PmOp::write(0x10, 64),
        PmOp::isPersist(0x10, 64),
        PmOp::clwb(0x80, 64),
        PmOp::sfence(),
    });
    FixHint flush;
    flush.action = FixAction::InsertFlushFence;
    flush.addr = 0x10;
    flush.size = 64;
    flush.opIndex = 1;
    FixHint del;
    del.action = FixAction::DeleteFlush;
    del.opIndex = 2;

    const Trace patched = applyFixHints(trace, {flush, del});
    ASSERT_EQ(patched.size(), 5u);
    EXPECT_EQ(patched.ops()[0].type, OpType::Write);
    EXPECT_EQ(patched.ops()[1].type, OpType::Clwb);
    EXPECT_EQ(patched.ops()[1].addr, 0x10u);
    EXPECT_EQ(patched.ops()[2].type, OpType::Sfence);
    EXPECT_EQ(patched.ops()[3].type, OpType::CheckIsPersist);
    EXPECT_EQ(patched.ops()[4].type, OpType::Sfence);
}

TEST(FixHintTest, DuplicateEditsCollapse)
{
    const Trace trace = makeTrace({
        PmOp::write(0x10, 64),
        PmOp::isPersist(0x10, 64),
    });
    FixHint hint;
    hint.action = FixAction::InsertFence;
    hint.opIndex = 1;
    FixHint same = hint;
    same.verified = true; // differs only in verified: still the same edit

    const Trace patched = applyFixHints(trace, {hint, same});
    EXPECT_EQ(patched.size(), 3u);
}

} // namespace
} // namespace pmtest
