#include "trace/trace_capture.hh"

#include <gtest/gtest.h>

namespace pmtest
{
namespace
{

TEST(TraceCaptureTest, DisabledByDefault)
{
    TraceCapture cap(1);
    cap.record(PmOp::write(0x10, 8));
    EXPECT_EQ(cap.pendingOps(), 0u);
}

TEST(TraceCaptureTest, RecordsWhileEnabled)
{
    TraceCapture cap(1);
    cap.start();
    cap.record(PmOp::write(0x10, 8));
    cap.record(PmOp::sfence());
    EXPECT_EQ(cap.pendingOps(), 2u);
    cap.stop();
    cap.record(PmOp::sfence());
    EXPECT_EQ(cap.pendingOps(), 2u);
}

TEST(TraceCaptureTest, SealStartsFreshBuffer)
{
    TraceCapture cap(4);
    cap.start();
    cap.record(PmOp::write(0x10, 8));
    Trace first = cap.seal();
    EXPECT_EQ(first.size(), 1u);
    EXPECT_EQ(first.threadId(), 4u);
    EXPECT_EQ(cap.pendingOps(), 0u);

    cap.record(PmOp::sfence());
    Trace second = cap.seal();
    EXPECT_EQ(second.size(), 1u);
    EXPECT_NE(first.id(), second.id());
}

TEST(TraceCaptureTest, SealedTraceIdsMonotonic)
{
    TraceCapture cap(0);
    cap.start();
    cap.record(PmOp::sfence());
    const uint64_t id1 = cap.seal().id();
    cap.record(PmOp::sfence());
    const uint64_t id2 = cap.seal().id();
    EXPECT_LT(id1, id2);
}

} // namespace
} // namespace pmtest
