#include "trace/concurrent_queue.hh"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace pmtest
{
namespace
{

TEST(ConcurrentQueueTest, FifoOrder)
{
    ConcurrentQueue<int> q;
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_EQ(q.pop().value(), 3);
}

TEST(ConcurrentQueueTest, TryPopEmpty)
{
    ConcurrentQueue<int> q;
    EXPECT_FALSE(q.tryPop().has_value());
    q.push(5);
    EXPECT_EQ(q.tryPop().value(), 5);
}

TEST(ConcurrentQueueTest, CloseDrainsThenReturnsNullopt)
{
    ConcurrentQueue<int> q;
    q.push(1);
    q.close();
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(ConcurrentQueueTest, PopBlocksUntilPush)
{
    ConcurrentQueue<int> q;
    std::thread producer([&] { q.push(42); });
    EXPECT_EQ(q.pop().value(), 42);
    producer.join();
}

TEST(ConcurrentQueueTest, MultiProducerAllItemsArrive)
{
    ConcurrentQueue<int> q;
    constexpr int kPerThread = 100;
    std::vector<std::thread> producers;
    for (int t = 0; t < 4; t++) {
        producers.emplace_back([&q, t] {
            for (int i = 0; i < kPerThread; i++)
                q.push(t * kPerThread + i);
        });
    }
    for (auto &p : producers)
        p.join();

    std::vector<bool> seen(4 * kPerThread, false);
    for (int i = 0; i < 4 * kPerThread; i++) {
        auto v = q.pop();
        ASSERT_TRUE(v.has_value());
        EXPECT_FALSE(seen[*v]);
        seen[*v] = true;
    }
    EXPECT_TRUE(q.empty());
}

TEST(ConcurrentQueueTest, ReopenAfterClose)
{
    ConcurrentQueue<int> q;
    q.close();
    EXPECT_FALSE(q.pop().has_value());
    q.reopen();
    q.push(7);
    EXPECT_EQ(q.pop().value(), 7);
}

} // namespace
} // namespace pmtest
