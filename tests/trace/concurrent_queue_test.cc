#include "trace/concurrent_queue.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace pmtest
{
namespace
{

TEST(ConcurrentQueueTest, FifoOrder)
{
    ConcurrentQueue<int> q;
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_EQ(q.pop().value(), 3);
}

TEST(ConcurrentQueueTest, TryPopEmpty)
{
    ConcurrentQueue<int> q;
    EXPECT_FALSE(q.tryPop().has_value());
    q.push(5);
    EXPECT_EQ(q.tryPop().value(), 5);
}

TEST(ConcurrentQueueTest, CloseDrainsThenReturnsNullopt)
{
    ConcurrentQueue<int> q;
    q.push(1);
    q.close();
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(ConcurrentQueueTest, PopBlocksUntilPush)
{
    ConcurrentQueue<int> q;
    std::thread producer([&] { q.push(42); });
    EXPECT_EQ(q.pop().value(), 42);
    producer.join();
}

TEST(ConcurrentQueueTest, MultiProducerAllItemsArrive)
{
    ConcurrentQueue<int> q;
    constexpr int kPerThread = 100;
    std::vector<std::thread> producers;
    for (int t = 0; t < 4; t++) {
        producers.emplace_back([&q, t] {
            for (int i = 0; i < kPerThread; i++)
                q.push(t * kPerThread + i);
        });
    }
    for (auto &p : producers)
        p.join();

    std::vector<bool> seen(4 * kPerThread, false);
    for (int i = 0; i < 4 * kPerThread; i++) {
        auto v = q.pop();
        ASSERT_TRUE(v.has_value());
        EXPECT_FALSE(seen[*v]);
        seen[*v] = true;
    }
    EXPECT_TRUE(q.empty());
}

TEST(ConcurrentQueueTest, ReopenAfterClose)
{
    ConcurrentQueue<int> q;
    q.close();
    EXPECT_FALSE(q.pop().has_value());
    q.reopen();
    q.push(7);
    EXPECT_EQ(q.pop().value(), 7);
}

TEST(ConcurrentQueueTest, TryPushRespectsCapacity)
{
    ConcurrentQueue<int> q(/*capacity=*/2);
    EXPECT_EQ(q.capacity(), 2u);
    int a = 1, b = 2, c = 3;
    EXPECT_TRUE(q.tryPush(a));
    EXPECT_TRUE(q.tryPush(b));
    EXPECT_FALSE(q.tryPush(c));
    EXPECT_EQ(c, 3); // rejected item untouched
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_TRUE(q.tryPush(c));
    EXPECT_EQ(q.size(), 2u);
}

TEST(ConcurrentQueueTest, UnboundedTryPushAlwaysSucceeds)
{
    ConcurrentQueue<int> q;
    for (int i = 0; i < 1000; i++) {
        int v = i;
        EXPECT_TRUE(q.tryPush(v));
    }
    EXPECT_EQ(q.size(), 1000u);
}

TEST(ConcurrentQueueTest, PushBlocksWhileFullUntilPop)
{
    // Backpressure: a producer pushing into a full queue must wait
    // for a consumer, and its item must arrive afterwards.
    ConcurrentQueue<int> q(/*capacity=*/1);
    q.push(1);

    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        q.push(2); // blocks until the pop below
        pushed.store(true);
    });

    // Give the producer a chance to block (no reliable way to assert
    // "is blocked"; the FIFO order assertion below is the real check).
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_FALSE(pushed.load());

    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    producer.join();
    EXPECT_TRUE(pushed.load());
}

TEST(ConcurrentQueueTest, CloseReleasesBlockedProducer)
{
    ConcurrentQueue<int> q(/*capacity=*/1);
    q.push(1);
    std::thread producer([&] { q.push(2); });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.close(); // must not strand the producer at shutdown
    producer.join();
    // The late item is still enqueued — nothing is lost.
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(ConcurrentQueueTest, PushAllKeepsOrderAcrossCapacityChunks)
{
    ConcurrentQueue<int> q(/*capacity=*/4);
    std::vector<int> items;
    for (int i = 0; i < 20; i++)
        items.push_back(i);

    std::thread producer([&] { q.pushAll(std::move(items)); });
    for (int i = 0; i < 20; i++)
        EXPECT_EQ(q.pop().value(), i);
    producer.join();
    EXPECT_TRUE(q.empty());
}

TEST(ConcurrentQueueTest, TryPushAllIsAllOrNothing)
{
    ConcurrentQueue<int> q(/*capacity=*/3);
    std::vector<int> batch = {1, 2, 3, 4};
    EXPECT_FALSE(q.tryPushAll(batch));
    EXPECT_EQ(batch.size(), 4u); // rejected batch untouched
    EXPECT_TRUE(q.empty());

    batch.pop_back();
    EXPECT_TRUE(q.tryPushAll(batch));
    EXPECT_TRUE(batch.empty());
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop().value(), 1);
}

TEST(ConcurrentQueueTest, ProducerStallsAreCounted)
{
    ConcurrentQueue<int> q(/*capacity=*/1);
    q.push(1);
    EXPECT_EQ(q.producerStalls(), 0u);

    std::thread producer([&] { q.push(2); });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(q.pop().value(), 1);
    producer.join();

    EXPECT_EQ(q.producerStalls(), 1u);
    EXPECT_GT(q.producerStallNanos(), 0u);
    // A push with room to spare does not count as a stall.
    q.pop();
    q.push(3);
    EXPECT_EQ(q.producerStalls(), 1u);
}

TEST(ConcurrentQueueTest, WakeMarkHoldsProducerUntilBelowMark)
{
    // Kernel wait-queue hysteresis: a producer blocked on a full
    // 4-slot queue with wake mark 2 stays parked while occupancy is
    // 3 and 2, and resumes only once it drops to 1 (< mark).
    ConcurrentQueue<int> q(/*capacity=*/4, /*wake_mark=*/2);
    EXPECT_EQ(q.wakeMark(), 2u);
    for (int i = 0; i < 4; i++)
        q.push(i);

    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        q.push(4);
        pushed.store(true);
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_FALSE(pushed.load());

    EXPECT_EQ(q.pop().value(), 0); // depth 3: still parked
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_FALSE(pushed.load());

    EXPECT_EQ(q.pop().value(), 1); // depth 2: still parked
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_FALSE(pushed.load());

    EXPECT_EQ(q.pop().value(), 2); // depth 1 < mark: wake
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_EQ(q.pop().value(), 3);
    EXPECT_EQ(q.pop().value(), 4);
    EXPECT_GE(q.producerStalls(), 1u);
}

TEST(ConcurrentQueueTest, PushUnlessClosedDropsAfterShutdown)
{
    ConcurrentQueue<int> q(/*capacity=*/1);
    EXPECT_TRUE(q.pushUnlessClosed(1));

    // A producer parked on the full queue is released by close() and
    // reports failure instead of enqueueing into a dead queue.
    std::thread producer([&] { EXPECT_FALSE(q.pushUnlessClosed(2)); });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.close();
    producer.join();

    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_FALSE(q.pop().has_value());
    EXPECT_FALSE(q.pushUnlessClosed(3));
}

} // namespace
} // namespace pmtest
