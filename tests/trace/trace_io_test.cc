#include "trace/trace_io.hh"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

namespace pmtest
{
namespace
{

Trace
sampleTrace(uint64_t id)
{
    Trace t(id, 3);
    t.append(PmOp::write(0x100, 64, SourceLocation("a.cc", 10)));
    t.append(PmOp::clwb(0x100, 64, SourceLocation("a.cc", 11)));
    t.append(PmOp::sfence(SourceLocation("b.cc", 20)));
    t.append(PmOp::isOrderedBefore(0x100, 64, 0x200, 32,
                                   SourceLocation("a.cc", 12)));
    t.append(PmOp{OpType::TxAdd, 0x300, 16, 0, 0, {}}); // no loc
    return t;
}

TEST(TraceIoTest, RoundTripPreservesEverything)
{
    std::vector<Trace> traces{sampleTrace(7), sampleTrace(8)};
    std::stringstream stream;
    const size_t bytes = saveTraces(stream, traces);
    EXPECT_GT(bytes, 0u);

    bool ok = false;
    const auto loaded = loadTraces(stream, &ok);
    ASSERT_TRUE(ok);
    ASSERT_EQ(loaded.traces.size(), 2u);

    for (size_t t = 0; t < 2; t++) {
        const Trace &orig = traces[t];
        const Trace &got = loaded.traces[t];
        EXPECT_EQ(got.id(), orig.id());
        EXPECT_EQ(got.threadId(), orig.threadId());
        ASSERT_EQ(got.size(), orig.size());
        for (size_t i = 0; i < orig.size(); i++) {
            const PmOp &a = orig.ops()[i];
            const PmOp &b = got.ops()[i];
            EXPECT_EQ(a.type, b.type) << "op " << i;
            EXPECT_EQ(a.addr, b.addr);
            EXPECT_EQ(a.size, b.size);
            EXPECT_EQ(a.addrB, b.addrB);
            EXPECT_EQ(a.sizeB, b.sizeB);
            EXPECT_EQ(a.loc.valid(), b.loc.valid());
            if (a.loc.valid()) {
                EXPECT_EQ(a.loc.str(), b.loc.str()) << "op " << i;
            }
        }
    }
}

TEST(TraceIoTest, ExplicitV1FormatRoundTrips)
{
    std::vector<Trace> traces{sampleTrace(5)};
    std::stringstream stream;
    EXPECT_GT(saveTraces(stream, traces, TraceFormat::V1), 0u);

    bool ok = false;
    const auto loaded = loadTraces(stream, &ok);
    ASSERT_TRUE(ok);
    ASSERT_EQ(loaded.traces.size(), 1u);
    EXPECT_EQ(loaded.traces[0].id(), 5u);
    EXPECT_EQ(loaded.traces[0].size(), traces[0].size());
}

TEST(TraceIoTest, DefaultFormatIsIndexedV2)
{
    std::stringstream stream;
    saveTraces(stream, {sampleTrace(1)});
    const std::string bytes = stream.str();
    ASSERT_GT(bytes.size(), TraceWire::kFooterBytes);
    uint64_t footer_magic = 0;
    std::memcpy(&footer_magic,
                bytes.data() + bytes.size() - sizeof(uint64_t),
                sizeof(uint64_t));
    EXPECT_EQ(footer_magic, TraceWire::kFooterMagic);
}

TEST(TraceIoTest, EmptyTraceListRoundTrips)
{
    std::stringstream stream;
    saveTraces(stream, {});
    bool ok = false;
    const auto loaded = loadTraces(stream, &ok);
    EXPECT_TRUE(ok);
    EXPECT_TRUE(loaded.traces.empty());
}

TEST(TraceIoTest, GarbageInputRejected)
{
    std::stringstream stream("this is not a trace file at all");
    bool ok = true;
    const auto loaded = loadTraces(stream, &ok);
    EXPECT_FALSE(ok);
    EXPECT_TRUE(loaded.traces.empty());
}

TEST(TraceIoTest, TruncatedInputRejected)
{
    std::stringstream full;
    saveTraces(full, {sampleTrace(1)});
    const std::string bytes = full.str();
    std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
    bool ok = true;
    loadTraces(truncated, &ok);
    EXPECT_FALSE(ok);
}

TEST(TraceIoTest, FileRoundTrip)
{
    const std::string path = "/tmp/pmtest_trace_io_test.bin";
    ASSERT_TRUE(saveTracesToFile(path, {sampleTrace(42)}));
    bool ok = false;
    const auto loaded = loadTracesFromFile(path, &ok);
    ASSERT_TRUE(ok);
    ASSERT_EQ(loaded.traces.size(), 1u);
    EXPECT_EQ(loaded.traces[0].id(), 42u);
    std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileReported)
{
    bool ok = true;
    loadTracesFromFile("/nonexistent/nowhere.bin", &ok);
    EXPECT_FALSE(ok);
}

} // namespace
} // namespace pmtest
