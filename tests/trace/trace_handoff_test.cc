/**
 * @file
 * Copy-free hand-off guarantees: a trace's op buffer must travel by
 * move from the capture buffer through queues to the checking worker.
 * The tests pin the buffer's data pointer at capture time and assert
 * the same allocation arrives at every later stage.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "trace/concurrent_queue.hh"
#include "trace/trace.hh"
#include "trace/trace_capture.hh"

namespace pmtest
{
namespace
{

Trace
makeTrace(uint64_t id, size_t ops)
{
    Trace t(id, 0);
    for (size_t i = 0; i < ops; i++)
        t.append(PmOp::write(64 * i, 64));
    return t;
}

TEST(TraceHandoffTest, MoveStealsTheOpBuffer)
{
    Trace source = makeTrace(1, 100);
    const PmOp *data = source.ops().data();

    Trace byCtor(std::move(source));
    EXPECT_EQ(byCtor.ops().data(), data);

    Trace byAssign;
    byAssign = std::move(byCtor);
    EXPECT_EQ(byAssign.ops().data(), data);
    EXPECT_EQ(byAssign.size(), 100u);
}

TEST(TraceHandoffTest, SealHandsOverTheCaptureBuffer)
{
    TraceCapture capture(3);
    capture.start();
    for (size_t i = 0; i < 200; i++)
        capture.record(PmOp::write(64 * i, 64));

    const PmOp *data = capture.openTrace().ops().data();
    Trace sealed = capture.seal();
    EXPECT_EQ(sealed.ops().data(), data); // stolen, not copied
    EXPECT_EQ(sealed.size(), 200u);
    EXPECT_EQ(sealed.threadId(), 3u);

    // The replacement buffer is pre-sized for the next same-shaped
    // trace: recording 200 more ops must not reallocate.
    EXPECT_GE(capture.openTrace().capacity(), 200u);
    for (size_t i = 0; i < 200; i++)
        capture.record(PmOp::write(64 * i, 64));
    const PmOp *second = capture.openTrace().ops().data();
    EXPECT_EQ(capture.seal().ops().data(), second);
}

TEST(TraceHandoffTest, QueueTransportPreservesTheBuffer)
{
    ConcurrentQueue<Trace> queue;
    Trace t = makeTrace(7, 150);
    const PmOp *data = t.ops().data();

    queue.push(std::move(t));
    auto popped = queue.pop();
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(popped->ops().data(), data);
    EXPECT_EQ(popped->size(), 150u);
}

TEST(TraceHandoffTest, BatchTransportPreservesEveryBuffer)
{
    ConcurrentQueue<Trace> queue;
    std::vector<Trace> batch;
    std::vector<const PmOp *> data;
    for (uint64_t i = 0; i < 8; i++) {
        batch.push_back(makeTrace(i, 40 + 10 * i));
        data.push_back(batch.back().ops().data());
    }

    queue.pushAll(std::move(batch));
    for (uint64_t i = 0; i < 8; i++) {
        auto popped = queue.pop();
        ASSERT_TRUE(popped.has_value());
        EXPECT_EQ(popped->ops().data(), data[i]) << "trace " << i;
    }
}

TEST(TraceHandoffTest, StealPathPreservesTheBuffer)
{
    // tryPopHalf is the work-stealing hand-off; stolen traces must
    // move out of the victim queue, not copy.
    ConcurrentQueue<Trace> queue;
    std::vector<const PmOp *> data;
    for (uint64_t i = 0; i < 6; i++) {
        Trace t = makeTrace(i, 30);
        data.push_back(t.ops().data());
        queue.push(std::move(t));
    }

    std::vector<Trace> stolen;
    ASSERT_EQ(queue.tryPopHalf(stolen), 3u);
    for (size_t i = 0; i < stolen.size(); i++)
        EXPECT_EQ(stolen[i].ops().data(), data[i]) << "stolen " << i;
}

TEST(TraceHandoffTest, AppendGrowsInChunksFromInitialCapacity)
{
    Trace t;
    EXPECT_EQ(t.capacity(), 0u); // empty trace owns no buffer yet

    t.append(PmOp::sfence());
    EXPECT_GE(t.capacity(), Trace::kInitialCapacity);

    // Filling up to the initial capacity must not reallocate.
    const PmOp *data = t.ops().data();
    for (size_t i = t.size(); i < Trace::kInitialCapacity; i++)
        t.append(PmOp::sfence());
    EXPECT_EQ(t.ops().data(), data);
}

} // namespace
} // namespace pmtest
