#include "trace/pm_op.hh"

#include <gtest/gtest.h>

namespace pmtest
{
namespace
{

TEST(PmOpTest, FactoryBuildersSetFields)
{
    const PmOp w = PmOp::write(0x100, 64);
    EXPECT_EQ(w.type, OpType::Write);
    EXPECT_EQ(w.addr, 0x100u);
    EXPECT_EQ(w.size, 64u);

    const PmOp c = PmOp::clwb(0x140, 8);
    EXPECT_EQ(c.type, OpType::Clwb);

    const PmOp f = PmOp::sfence();
    EXPECT_EQ(f.type, OpType::Sfence);
    EXPECT_EQ(f.addr, 0u);

    const PmOp o = PmOp::isOrderedBefore(0x10, 64, 0x50, 64);
    EXPECT_EQ(o.type, OpType::CheckIsOrderedBefore);
    EXPECT_EQ(o.addrB, 0x50u);
    EXPECT_EQ(o.sizeB, 64u);
}

TEST(PmOpTest, CheckerClassification)
{
    EXPECT_TRUE(isCheckerOp(OpType::CheckIsPersist));
    EXPECT_TRUE(isCheckerOp(OpType::CheckIsOrderedBefore));
    EXPECT_TRUE(isCheckerOp(OpType::TxCheckStart));
    EXPECT_TRUE(isCheckerOp(OpType::TxCheckEnd));
    EXPECT_FALSE(isCheckerOp(OpType::Write));
    EXPECT_FALSE(isCheckerOp(OpType::Sfence));
    EXPECT_FALSE(isCheckerOp(OpType::TxAdd));
}

TEST(PmOpTest, NamesAreDistinct)
{
    EXPECT_STREQ(opTypeName(OpType::Write), "write");
    EXPECT_STREQ(opTypeName(OpType::Clwb), "clwb");
    EXPECT_STREQ(opTypeName(OpType::Sfence), "sfence");
    EXPECT_STREQ(opTypeName(OpType::Ofence), "ofence");
    EXPECT_STREQ(opTypeName(OpType::Dfence), "dfence");
}

TEST(PmOpTest, StrIncludesAddressAndSize)
{
    const PmOp w = PmOp::write(0x10, 64);
    EXPECT_EQ(w.str(), "write(0x10,64)");
    EXPECT_EQ(PmOp::sfence().str(), "sfence()");
}

TEST(PmOpTest, SourceLocationCarried)
{
    const PmOp w = PmOp::write(0x10, 64, SourceLocation("f.cc", 42));
    EXPECT_TRUE(w.loc.valid());
    EXPECT_EQ(w.loc.str(), "f.cc:42");
    EXPECT_FALSE(PmOp::write(0, 1).loc.valid());
}

} // namespace
} // namespace pmtest
