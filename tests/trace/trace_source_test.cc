/**
 * @file
 * TraceSource tests: identity stamping and arena attachment across
 * every source kind, byte-balanced shard partitioning, the v1 stream
 * fallback, the blocking capture source, the multi-source composite,
 * decode-error attribution (file + trace index), and the byte-
 * identity of sharded / multi-file ingest against the single-source
 * run — including a mixed v1+v2 input set against checking each file
 * separately and merging.
 */

#include "trace/trace_source.hh"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine_pool.hh"
#include "core/trace_ingest.hh"
#include "trace/trace_io.hh"

namespace pmtest
{
namespace
{

std::string
tmpPath(const char *tag)
{
    return "/tmp/pmtest_trace_source_test_" +
           std::to_string(getpid()) + "_" + tag + ".bin";
}

Trace
sampleTrace(uint64_t id, uint32_t thread_id, size_t rounds)
{
    Trace t(id, thread_id);
    for (size_t i = 0; i < rounds; i++) {
        const uint64_t addr = 0x1000 + 64 * ((id * 7 + i) % 256);
        t.append(PmOp::write(addr, 64, SourceLocation("wl.cc", 100)));
        // Every third round skips the writeback: a FAIL finding, so
        // the byte-identity tests compare non-empty reports.
        if (i % 3 != 0)
            t.append(PmOp::clwb(addr, 64,
                                SourceLocation("wl.cc", 101)));
        t.append(PmOp::sfence(SourceLocation("wl.cc", 102)));
        t.append(PmOp::isPersist(addr, 64,
                                 SourceLocation("chk.cc", 7)));
    }
    return t;
}

std::vector<Trace>
sampleTraces(size_t count, size_t rounds)
{
    std::vector<Trace> traces;
    for (size_t i = 0; i < count; i++)
        traces.push_back(
            sampleTrace(i, static_cast<uint32_t>(i % 3), rounds));
    return traces;
}

/** Drain @p source completely; fail the test on a source error. */
void
drain(TraceSource &source, std::vector<Trace> *out,
      size_t pull_size = 4)
{
    for (;;) {
        SourceError error;
        const auto result = source.pull(pull_size, out, &error);
        if (result == TraceSource::Pull::End)
            return;
        ASSERT_NE(result, TraceSource::Pull::Error) << error.str();
    }
}

/** Canonical report of one ingest() run over @p source. */
std::string
checkVerdict(TraceSource &source, size_t decoders, size_t workers)
{
    core::PoolOptions options;
    options.workers = workers;
    core::EnginePool pool(options);
    core::IngestOptions ingest_options;
    ingest_options.decoders = decoders;
    ingest_options.batch = 4;
    SourceError error;
    EXPECT_TRUE(core::ingest(source, pool, ingest_options, nullptr,
                             &error))
        << error.str();
    core::Report merged = pool.results();
    merged.canonicalize();
    return merged.str();
}

TEST(TraceSourceTest, V2FileSourceStampsIdentityAndArena)
{
    const auto traces = sampleTraces(6, 3);
    const std::string path = tmpPath("v2_identity");
    ASSERT_TRUE(saveTracesToFile(path, traces, TraceFormat::V2));

    std::string error;
    auto source = openTraceSource(path, IngestMode::Auto, 7, &error);
    ASSERT_TRUE(source) << error;
    EXPECT_EQ(source->traceCount(), traces.size());
    EXPECT_EQ(source->sourceCount(), 1u);
    EXPECT_GT(source->totalOps(), 0u);
    EXPECT_GT(source->sizeBytes(), 0u);

    std::vector<Trace> out;
    drain(*source, &out);
    ASSERT_EQ(out.size(), traces.size());
    for (const auto &trace : out) {
        EXPECT_EQ(trace.fileId(), 7u);
        EXPECT_TRUE(trace.arena() != nullptr)
            << "decoded traces must co-own their string arena";
    }
    std::remove(path.c_str());
}

TEST(TraceSourceTest, StreamFallbackReadsV1Files)
{
    const auto traces = sampleTraces(4, 2);
    const std::string path = tmpPath("v1_fallback");
    ASSERT_TRUE(saveTracesToFile(path, traces, TraceFormat::V1));

    std::string error;
    auto source = openTraceSource(path, IngestMode::Auto, 3, &error);
    ASSERT_TRUE(source) << error;
    EXPECT_FALSE(source->mmapBacked());
    EXPECT_EQ(source->traceCount(), traces.size());
    EXPECT_GT(source->sizeBytes(), 0u);

    std::vector<Trace> out;
    drain(*source, &out);
    ASSERT_EQ(out.size(), traces.size());
    for (const auto &trace : out)
        EXPECT_EQ(trace.fileId(), 3u);

    // Mmap mode must reject the same v1 file with a path-qualified
    // error instead of silently falling back.
    error.clear();
    auto strict = openTraceSource(path, IngestMode::Mmap, 0, &error);
    EXPECT_FALSE(strict);
    EXPECT_NE(error.find(path), std::string::npos) << error;

    std::remove(path.c_str());
}

TEST(TraceSourceTest, ShardsPartitionTheIndexExactly)
{
    const auto traces = sampleTraces(11, 3);
    const std::string path = tmpPath("shard_partition");
    ASSERT_TRUE(saveTracesToFile(path, traces, TraceFormat::V2));

    std::string error;
    std::shared_ptr<const TraceFileReader> reader =
        TraceFileReader::open(path, IngestMode::Auto, &error);
    ASSERT_TRUE(reader) << error;

    for (const size_t shards : {size_t{1}, size_t{2}, size_t{3},
                                size_t{7}, size_t{11}, size_t{40}}) {
        auto slices = shardTraceSource(reader, path, 0, shards);
        ASSERT_FALSE(slices.empty());
        EXPECT_LE(slices.size(), std::min(shards, traces.size()));

        // Contiguous, in order, covering [0, count) exactly, and no
        // empty shard (the factory clamps instead).
        size_t at = 0;
        uint64_t shard_bytes = 0;
        for (const auto &slice : slices) {
            const auto *v2 =
                dynamic_cast<const V2FileSource *>(slice.get());
            ASSERT_NE(v2, nullptr);
            EXPECT_EQ(v2->begin(), at);
            EXPECT_GT(v2->end(), v2->begin());
            at = v2->end();
            shard_bytes += slice->sizeBytes();
        }
        EXPECT_EQ(at, traces.size()) << shards << " shards";
        // Shards account frame bytes only, so they sum to less than
        // the whole file (header + index + footer excluded).
        if (slices.size() > 1)
            EXPECT_LT(shard_bytes, reader->sizeBytes());
    }
    std::remove(path.c_str());
}

TEST(TraceSourceTest, ShardNamesCarryTheSlice)
{
    const auto traces = sampleTraces(4, 2);
    const std::string path = tmpPath("shard_names");
    ASSERT_TRUE(saveTracesToFile(path, traces, TraceFormat::V2));

    std::string error;
    std::shared_ptr<const TraceFileReader> reader =
        TraceFileReader::open(path, IngestMode::Auto, &error);
    ASSERT_TRUE(reader) << error;
    auto slices = shardTraceSource(reader, path, 0, 2);
    ASSERT_EQ(slices.size(), 2u);
    EXPECT_EQ(slices[0]->name(), path + "[1/2]");
    EXPECT_EQ(slices[1]->name(), path + "[2/2]");
    std::remove(path.c_str());
}

TEST(TraceSourceTest, ShardedIngestMatchesWholeFileByteForByte)
{
    const auto traces = sampleTraces(23, 5);
    const std::string path = tmpPath("shard_verdict");
    ASSERT_TRUE(saveTracesToFile(path, traces, TraceFormat::V2));

    std::string error;
    auto whole = openTraceSource(path, IngestMode::Auto, 0, &error);
    ASSERT_TRUE(whole) << error;
    const std::string reference = checkVerdict(*whole, 1, 0);
    EXPECT_NE(reference.find("FAIL"), std::string::npos)
        << "workload must produce findings for the comparison to "
           "mean anything";

    std::shared_ptr<const TraceFileReader> reader =
        TraceFileReader::open(path, IngestMode::Auto, &error);
    ASSERT_TRUE(reader) << error;
    MultiTraceSource sharded(shardTraceSource(reader, path, 0, 4));
    EXPECT_EQ(sharded.sourceCount(), 4u);
    EXPECT_EQ(sharded.traceCount(), traces.size());
    EXPECT_EQ(checkVerdict(sharded, 4, 4), reference);

    std::remove(path.c_str());
}

TEST(TraceSourceTest, MixedV1V2SetMatchesPerFileCheckAndMerge)
{
    // Both files reuse trace ids 0..N-1, so the canonical order of
    // the combined run genuinely depends on the fileId tiebreak.
    const auto first = sampleTraces(7, 4);
    const auto second = sampleTraces(5, 3);
    const std::string v1_path = tmpPath("mixed_v1");
    const std::string v2_path = tmpPath("mixed_v2");
    ASSERT_TRUE(saveTracesToFile(v1_path, first, TraceFormat::V1));
    ASSERT_TRUE(saveTracesToFile(v2_path, second, TraceFormat::V2));

    // Reference: check each file separately (with its input-order
    // fileId) and merge the reports.
    std::string error;
    core::Report reference;
    {
        auto a = openTraceSource(v1_path, IngestMode::Auto, 0,
                                 &error);
        ASSERT_TRUE(a) << error;
        core::EnginePool pool(core::PoolOptions{});
        SourceError source_error;
        ASSERT_TRUE(core::ingest(*a, pool, core::IngestOptions{},
                                 nullptr, &source_error))
            << source_error.str();
        reference.merge(pool.results());
    }
    {
        auto b = openTraceSource(v2_path, IngestMode::Auto, 1,
                                 &error);
        ASSERT_TRUE(b) << error;
        core::EnginePool pool(core::PoolOptions{});
        SourceError source_error;
        ASSERT_TRUE(core::ingest(*b, pool, core::IngestOptions{},
                                 nullptr, &source_error))
            << source_error.str();
        reference.merge(pool.results());
    }
    reference.canonicalize();
    EXPECT_GT(reference.failCount(), 0u);

    // Combined run: one multi-source over both files, parallel
    // decoders and workers.
    std::vector<std::unique_ptr<TraceSource>> children;
    children.push_back(
        openTraceSource(v1_path, IngestMode::Auto, 0, &error));
    ASSERT_TRUE(children.back()) << error;
    children.push_back(
        openTraceSource(v2_path, IngestMode::Auto, 1, &error));
    ASSERT_TRUE(children.back()) << error;
    MultiTraceSource combined(std::move(children));
    EXPECT_EQ(combined.sourceCount(), 2u);
    EXPECT_EQ(combined.traceCount(), first.size() + second.size());
    EXPECT_EQ(checkVerdict(combined, 3, 4), reference.str());

    std::remove(v1_path.c_str());
    std::remove(v2_path.c_str());
}

TEST(TraceSourceTest, CaptureSourceBlocksUntilPushOrClose)
{
    CaptureTraceSource capture("<test-capture>", 9);

    std::thread producer([&] {
        for (uint64_t i = 0; i < 10; i++)
            capture.push(sampleTrace(i, 0, 2));
        capture.close();
    });

    std::vector<Trace> out;
    for (;;) {
        SourceError error;
        const auto result = capture.pull(3, &out, &error);
        if (result == TraceSource::Pull::End)
            break;
        ASSERT_EQ(result, TraceSource::Pull::Items);
    }
    producer.join();

    ASSERT_EQ(out.size(), 10u);
    for (const auto &trace : out)
        EXPECT_EQ(trace.fileId(), 9u);
    EXPECT_EQ(capture.traceCount(), TraceSource::kUnknownCount);

    // A closed, drained source stays at End.
    SourceError error;
    EXPECT_EQ(capture.pull(3, &out, &error),
              TraceSource::Pull::End);
}

TEST(TraceSourceTest, CaptureSinkFeedsIngest)
{
    CaptureTraceSource capture;
    auto sink = capture.sink();

    std::thread producer([&] {
        for (uint64_t i = 0; i < 8; i++)
            sink(sampleTrace(i, 0, 3));
        capture.close();
    });

    const std::string verdict = checkVerdict(capture, 2, 2);
    producer.join();
    EXPECT_NE(verdict.find("FAIL"), std::string::npos);
}

TEST(TraceSourceTest, DecodeErrorNamesFileAndTraceIndex)
{
    const auto traces = sampleTraces(3, 2);
    const std::string path = tmpPath("decode_error");
    ASSERT_TRUE(saveTracesToFile(path, traces, TraceFormat::V2));

    // Corrupt the first body's op_count (body offset 12, after the
    // 8-byte frame length): frame chaining and the index CRC still
    // validate, but decode cross-checks against the index and fails.
    {
        std::fstream f(path, std::ios::binary | std::ios::in |
                                 std::ios::out);
        f.seekp(static_cast<std::streamoff>(TraceWire::kHeaderBytes +
                                            8 + 12));
        const char bogus = 0x5a;
        f.write(&bogus, 1);
    }

    std::string open_error;
    auto source =
        openTraceSource(path, IngestMode::Auto, 0, &open_error);
    ASSERT_TRUE(source) << open_error;

    core::EnginePool pool(core::PoolOptions{});
    SourceError error;
    EXPECT_FALSE(core::ingest(*source, pool, core::IngestOptions{},
                              nullptr, &error));
    EXPECT_EQ(error.file, path);
    EXPECT_EQ(error.traceIndex, 0u);
    EXPECT_NE(error.str().find(path + ": trace #0: "),
              std::string::npos)
        << error.str();

    std::remove(path.c_str());
}

TEST(TraceSourceTest, SourceErrorRendersFileAndIndex)
{
    SourceError error;
    error.file = "set.trace";
    error.traceIndex = 12;
    error.message = "corrupt trace body (decode failed)";
    EXPECT_EQ(error.str(), "set.trace: trace #12: corrupt trace "
                           "body (decode failed)");
}

} // namespace
} // namespace pmtest
