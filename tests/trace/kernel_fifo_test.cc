#include "trace/kernel_fifo.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace pmtest
{
namespace
{

Trace
makeTrace(uint64_t id)
{
    Trace t(id, 0);
    t.append(PmOp::sfence());
    return t;
}

TEST(KernelFifoTest, PushPopRoundTrip)
{
    KernelFifo fifo(8);
    EXPECT_TRUE(fifo.push(makeTrace(1)));
    EXPECT_TRUE(fifo.push(makeTrace(2)));
    EXPECT_EQ(fifo.pop()->id(), 1u);
    EXPECT_EQ(fifo.pop()->id(), 2u);
}

TEST(KernelFifoTest, DefaultCapacityMatchesPaper)
{
    KernelFifo fifo;
    EXPECT_EQ(fifo.capacity(), 1024u);
}

TEST(KernelFifoTest, ProducerBlocksWhenFullAndResumesBelowHalf)
{
    KernelFifo fifo(4);
    for (uint64_t i = 0; i < 4; i++)
        EXPECT_TRUE(fifo.push(makeTrace(i)));

    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        EXPECT_TRUE(fifo.push(makeTrace(99)));
        pushed = true;
    });

    // Let the producer reach the full FIFO and park itself.
    while (fifo.producerStalls() == 0)
        std::this_thread::yield();

    // One pop leaves 3 >= capacity/2, so the producer stays parked.
    EXPECT_TRUE(fifo.pop().has_value());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(pushed.load());

    // Dropping below half (< 2) wakes the producer.
    EXPECT_TRUE(fifo.pop().has_value());
    EXPECT_TRUE(fifo.pop().has_value());
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_GE(fifo.producerStalls(), 1u);
}

TEST(KernelFifoTest, ShutdownWakesProducerWithFailure)
{
    KernelFifo fifo(2);
    EXPECT_TRUE(fifo.push(makeTrace(1)));
    EXPECT_TRUE(fifo.push(makeTrace(2)));

    std::atomic<bool> result{true};
    std::thread producer([&] { result = fifo.push(makeTrace(3)); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    fifo.shutdown();
    producer.join();
    EXPECT_FALSE(result.load());
}

TEST(KernelFifoTest, ShutdownDrainsConsumers)
{
    KernelFifo fifo(4);
    EXPECT_TRUE(fifo.push(makeTrace(5)));
    fifo.shutdown();
    EXPECT_EQ(fifo.pop()->id(), 5u);
    EXPECT_FALSE(fifo.pop().has_value());
}

} // namespace
} // namespace pmtest
