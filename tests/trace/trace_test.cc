#include "trace/trace.hh"

#include <gtest/gtest.h>

namespace pmtest
{
namespace
{

TEST(TraceTest, AppendPreservesProgramOrder)
{
    Trace t(7, 3);
    t.append(PmOp::write(0x10, 64));
    t.append(PmOp::clwb(0x10, 64));
    t.append(PmOp::sfence());

    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t.ops()[0].type, OpType::Write);
    EXPECT_EQ(t.ops()[1].type, OpType::Clwb);
    EXPECT_EQ(t.ops()[2].type, OpType::Sfence);
    EXPECT_EQ(t.id(), 7u);
    EXPECT_EQ(t.threadId(), 3u);
}

TEST(TraceTest, BulkAppend)
{
    Trace t;
    t.append({PmOp::write(0, 8), PmOp::write(8, 8)});
    EXPECT_EQ(t.size(), 2u);
}

TEST(TraceTest, ClearKeepsIdentity)
{
    Trace t(9, 1);
    t.append(PmOp::sfence());
    t.clear();
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.id(), 9u);
}

TEST(TraceTest, StrListsOps)
{
    Trace t(1, 0);
    t.append(PmOp::write(0x10, 64));
    const std::string s = t.str();
    EXPECT_NE(s.find("write(0x10,64)"), std::string::npos);
    EXPECT_NE(s.find("trace #1"), std::string::npos);
}

} // namespace
} // namespace pmtest
