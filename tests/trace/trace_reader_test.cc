/**
 * @file
 * TraceFileReader (mmap-backed indexed v2 reader) tests: round-trips
 * in both backing modes, v1 rejection, fail-closed behaviour on every
 * truncation point and footer/index/frame corruption, and the
 * determinism contract of the parallel ingest pipeline against the
 * serial v1 loader.
 */

#include "trace/trace_reader.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "core/engine_pool.hh"
#include "core/trace_ingest.hh"
#include "trace/trace_io.hh"

namespace pmtest
{
namespace
{

std::string
tmpPath(const char *tag)
{
    return std::string("/tmp/pmtest_trace_reader_test_") + tag +
           ".bin";
}

Trace
sampleTrace(uint64_t id, uint32_t thread_id, size_t rounds)
{
    Trace t(id, thread_id);
    for (size_t i = 0; i < rounds; i++) {
        const uint64_t addr = 0x1000 + 64 * ((id * 7 + i) % 256);
        t.append(PmOp::write(addr, 64, SourceLocation("wl.cc", 100)));
        // Every third round skips the writeback: a FAIL finding, so
        // the determinism test compares non-empty reports.
        if (i % 3 != 0)
            t.append(PmOp::clwb(addr, 64,
                                SourceLocation("wl.cc", 101)));
        t.append(PmOp::sfence(SourceLocation("wl.cc", 102)));
        t.append(PmOp::isPersist(addr, 64,
                                 SourceLocation("chk.cc", 7)));
    }
    return t;
}

std::vector<Trace>
sampleTraces(size_t count, size_t rounds)
{
    std::vector<Trace> traces;
    for (size_t i = 0; i < count; i++)
        traces.push_back(
            sampleTrace(i, static_cast<uint32_t>(i % 3), rounds));
    return traces;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path,
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

void
expectTracesEqual(const Trace &a, const Trace &b)
{
    EXPECT_EQ(a.id(), b.id());
    EXPECT_EQ(a.threadId(), b.threadId());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i++) {
        const PmOp &x = a.ops()[i];
        const PmOp &y = b.ops()[i];
        EXPECT_EQ(x.type, y.type) << "op " << i;
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.size, y.size);
        EXPECT_EQ(x.addrB, y.addrB);
        EXPECT_EQ(x.sizeB, y.sizeB);
        EXPECT_EQ(x.loc.valid(), y.loc.valid());
        if (x.loc.valid())
            EXPECT_EQ(x.loc.str(), y.loc.str()) << "op " << i;
    }
}

void
roundTripIn(IngestMode mode, bool expect_mmap)
{
    const auto traces = sampleTraces(5, 4);
    const std::string path = tmpPath("roundtrip");
    ASSERT_TRUE(saveTracesToFile(path, traces, TraceFormat::V2));

    std::string error;
    auto reader = TraceFileReader::open(path, mode, &error);
    ASSERT_TRUE(reader) << error;
    EXPECT_EQ(reader->mmapBacked(), expect_mmap);
    ASSERT_EQ(reader->traceCount(), traces.size());

    uint64_t total = 0;
    for (size_t i = 0; i < traces.size(); i++) {
        EXPECT_EQ(reader->opCount(i), traces[i].size());
        EXPECT_EQ(reader->threadId(i), traces[i].threadId());
        total += traces[i].size();

        DecodedTrace decoded;
        ASSERT_TRUE(reader->decode(i, &decoded));
        expectTracesEqual(traces[i], decoded.trace);
    }
    EXPECT_EQ(reader->totalOps(), total);
    std::remove(path.c_str());
}

TEST(TraceReaderTest, RoundTripMmap)
{
    roundTripIn(IngestMode::Mmap, true);
}

TEST(TraceReaderTest, RoundTripStreamFallback)
{
    roundTripIn(IngestMode::Stream, false);
}

TEST(TraceReaderTest, EmptyFileRoundTrips)
{
    const std::string path = tmpPath("empty");
    ASSERT_TRUE(saveTracesToFile(path, {}, TraceFormat::V2));
    std::string error;
    auto reader = TraceFileReader::open(path, IngestMode::Auto,
                                        &error);
    ASSERT_TRUE(reader) << error;
    EXPECT_EQ(reader->traceCount(), 0u);
    EXPECT_EQ(reader->totalOps(), 0u);
    std::remove(path.c_str());
}

TEST(TraceReaderTest, V1FileRejectedButStreamLoaderReadsIt)
{
    const auto traces = sampleTraces(3, 2);
    const std::string path = tmpPath("v1");
    ASSERT_TRUE(saveTracesToFile(path, traces, TraceFormat::V1));

    // No index footer: the reader must refuse, not guess.
    std::string error;
    auto reader = TraceFileReader::open(path, IngestMode::Auto,
                                        &error);
    EXPECT_FALSE(reader);
    EXPECT_FALSE(error.empty());

    // The sequential loader still understands the v1 format.
    bool ok = false;
    const auto loaded = loadTracesFromFile(path, &ok);
    ASSERT_TRUE(ok);
    ASSERT_EQ(loaded.traces.size(), traces.size());
    for (size_t i = 0; i < traces.size(); i++)
        expectTracesEqual(traces[i], loaded.traces[i]);
    std::remove(path.c_str());
}

TEST(TraceReaderTest, MissingFileReported)
{
    std::string error;
    auto reader = TraceFileReader::open("/nonexistent/nowhere.bin",
                                        IngestMode::Auto, &error);
    EXPECT_FALSE(reader);
    EXPECT_FALSE(error.empty());
}

TEST(TraceReaderTest, EveryTruncationFailsClosed)
{
    const auto traces = sampleTraces(3, 2);
    const std::string path = tmpPath("full");
    ASSERT_TRUE(saveTracesToFile(path, traces, TraceFormat::V2));
    const std::string bytes = readFile(path);
    std::remove(path.c_str());
    ASSERT_GT(bytes.size(), TraceWire::kFooterBytes);

    const std::string cut_path = tmpPath("truncated");
    for (size_t len = 0; len < bytes.size(); len++) {
        writeFile(cut_path, bytes.substr(0, len));
        std::string error;
        auto reader = TraceFileReader::open(cut_path,
                                            IngestMode::Mmap,
                                            &error);
        EXPECT_FALSE(reader) << "prefix of " << len
                             << " bytes accepted";
    }
    std::remove(cut_path.c_str());
}

TEST(TraceReaderTest, CorruptFooterBytesRejected)
{
    const auto traces = sampleTraces(2, 3);
    const std::string path = tmpPath("footer");
    ASSERT_TRUE(saveTracesToFile(path, traces, TraceFormat::V2));
    const std::string bytes = readFile(path);

    const std::string flip_path = tmpPath("footer_flip");
    for (size_t i = bytes.size() - TraceWire::kFooterBytes;
         i < bytes.size(); i++) {
        std::string mutated = bytes;
        mutated[i] = static_cast<char>(mutated[i] ^ 0x5a);
        writeFile(flip_path, mutated);
        std::string error;
        auto reader = TraceFileReader::open(flip_path,
                                            IngestMode::Mmap,
                                            &error);
        EXPECT_FALSE(reader) << "footer byte " << i << " flip "
                             << "accepted";
    }
    std::remove(path.c_str());
    std::remove(flip_path.c_str());
}

TEST(TraceReaderTest, CorruptIndexCaughtByCrc)
{
    const auto traces = sampleTraces(4, 2);
    const std::string path = tmpPath("index");
    ASSERT_TRUE(saveTracesToFile(path, traces, TraceFormat::V2));
    std::string bytes = readFile(path);

    // The index sits right before the footer.
    const size_t index_bytes =
        traces.size() * TraceWire::kIndexEntryBytes;
    const size_t index_start =
        bytes.size() - TraceWire::kFooterBytes - index_bytes;
    const std::string flip_path = tmpPath("index_flip");
    for (size_t off = 0; off < index_bytes;
         off += TraceWire::kIndexEntryBytes / 2) {
        std::string mutated = bytes;
        mutated[index_start + off] =
            static_cast<char>(mutated[index_start + off] ^ 0x01);
        writeFile(flip_path, mutated);
        std::string error;
        auto reader = TraceFileReader::open(flip_path,
                                            IngestMode::Mmap,
                                            &error);
        EXPECT_FALSE(reader) << "index byte " << off << " flip "
                             << "accepted";
    }
    std::remove(path.c_str());
    std::remove(flip_path.c_str());
}

TEST(TraceReaderTest, CorruptFrameLengthRejected)
{
    const auto traces = sampleTraces(3, 2);
    const std::string path = tmpPath("framelen");
    ASSERT_TRUE(saveTracesToFile(path, traces, TraceFormat::V2));
    std::string bytes = readFile(path);

    // First frame_len lives right after the 16-byte header. The
    // index CRC does not cover frames, so this exercises the frame
    // chaining validation specifically.
    bytes[TraceWire::kHeaderBytes] =
        static_cast<char>(bytes[TraceWire::kHeaderBytes] ^ 0x7f);
    writeFile(path, bytes);
    std::string error;
    auto reader = TraceFileReader::open(path, IngestMode::Mmap,
                                        &error);
    EXPECT_FALSE(reader);
    std::remove(path.c_str());
}

TEST(TraceReaderTest, ParallelIngestMatchesSerialByteForByte)
{
    const auto traces = sampleTraces(40, 6);
    const std::string v2_path = tmpPath("det_v2");
    const std::string v1_path = tmpPath("det_v1");
    ASSERT_TRUE(saveTracesToFile(v2_path, traces, TraceFormat::V2));
    ASSERT_TRUE(saveTracesToFile(v1_path, traces, TraceFormat::V1));

    // Serial reference: v1 stream loader + one engine, in file order.
    // The bundle owns the source-path strings the findings point at,
    // so it must stay alive until the last serial.str() below.
    core::Report serial;
    bool ok = false;
    const auto loaded = loadTracesFromFile(v1_path, &ok);
    ASSERT_TRUE(ok);
    {
        core::Engine engine(core::ModelKind::X86);
        for (const auto &trace : loaded.traces)
            serial.merge(engine.check(trace));
        serial.canonicalize();
    }
    ASSERT_GT(serial.failCount(), 0u)
        << "workload must produce findings for the comparison to "
           "mean anything";

    // Parallel pipeline: mmap source, 4 decoders, 4 pool workers.
    // The reports own the trace arenas, so nothing else needs to
    // outlive them.
    core::Report parallel;
    {
        std::string error;
        auto source =
            openTraceSource(v2_path, IngestMode::Mmap, 0, &error);
        ASSERT_TRUE(source) << error;
        core::PoolOptions options;
        options.workers = 4;
        core::EnginePool pool(options);
        core::IngestOptions ingest;
        ingest.decoders = 4;
        core::IngestStats stats;
        ASSERT_TRUE(
            core::ingest(*source, pool, ingest, &stats, nullptr));
        parallel = pool.results();
        parallel.canonicalize();

        EXPECT_TRUE(stats.active);
        EXPECT_TRUE(stats.mmapBacked);
        EXPECT_EQ(stats.sources, 1u);
        EXPECT_EQ(stats.tracesDecoded, traces.size());
        EXPECT_GT(stats.bytesMapped, 0u);
    }

    EXPECT_EQ(serial.failCount(), parallel.failCount());
    EXPECT_EQ(serial.warnCount(), parallel.warnCount());
    EXPECT_EQ(serial.str(), parallel.str());

    std::remove(v2_path.c_str());
    std::remove(v1_path.c_str());
}

} // namespace
} // namespace pmtest
