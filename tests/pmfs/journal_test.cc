#include "pmfs/journal.hh"

#include <gtest/gtest.h>

#include <cstring>

#include "util/logging.hh"

namespace pmtest::pmfs
{
namespace
{

class JournalTest : public ::testing::Test
{
  protected:
    static constexpr size_t kPoolSize = 1 << 20;
    static constexpr uint64_t kJournalOffset = 4096;
    static constexpr uint64_t kJournalSize = 32 * 1024;

    JournalTest() : pool_(kPoolSize)
    {
        // Minimal superblock so recoverImage can find the journal.
        Superblock sb;
        sb.magic = Superblock::kMagic;
        sb.journalOffset = kJournalOffset;
        sb.journalSize = kJournalSize;
        std::memcpy(pool_.base(), &sb, sizeof(sb));
        std::memset(pool_.base() + kJournalOffset, 0, kJournalSize);
    }

    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }

    std::vector<uint8_t>
    snapshot() const
    {
        return {pool_.base(), pool_.base() + pool_.size()};
    }

    pmem::PmPool pool_;
};

TEST_F(JournalTest, CommitRetiresTransaction)
{
    Journal journal(pool_, kJournalOffset, kJournalSize);
    auto *meta = static_cast<uint64_t *>(
        pool_.at(pool_.alloc(8)));
    *meta = 5;

    journal.beginTransaction();
    EXPECT_TRUE(journal.open());
    journal.addLogEntry(meta, 8);
    *meta = 6;
    journal.commitTransaction();
    EXPECT_FALSE(journal.open());

    auto image = snapshot();
    EXPECT_EQ(Journal::recoverImage(image), 0u)
        << "committed: nothing to roll back";
}

TEST_F(JournalTest, UncommittedTransactionRollsBack)
{
    Journal journal(pool_, kJournalOffset, kJournalSize);
    const uint64_t meta_off = pool_.alloc(8);
    auto *meta = static_cast<uint64_t *>(pool_.at(meta_off));
    *meta = 5;

    journal.beginTransaction();
    journal.addLogEntry(meta, 8);
    *meta = 6; // modified in place, crash before commit

    auto image = snapshot();
    EXPECT_GE(Journal::recoverImage(image), 1u);
    uint64_t recovered;
    std::memcpy(&recovered, image.data() + meta_off,
                sizeof(recovered));
    EXPECT_EQ(recovered, 5u);

    journal.commitTransaction();
}

TEST_F(JournalTest, CommitRecordStopsRollback)
{
    // If the commit record persisted, recovery must NOT roll back
    // even when the live flag is still set (crash between commit
    // record and journal retirement).
    Journal journal(pool_, kJournalOffset, kJournalSize);
    const uint64_t meta_off = pool_.alloc(8);
    auto *meta = static_cast<uint64_t *>(pool_.at(meta_off));
    *meta = 5;

    journal.beginTransaction();
    journal.addLogEntry(meta, 8);
    *meta = 6;

    auto image = snapshot();
    // Hand-append the commit record to the image, as the crash point
    // right after pmfs_commit_logentry's flush.
    JournalHeader hdr;
    std::memcpy(&hdr, image.data() + kJournalOffset, sizeof(hdr));
    LogEntry commit;
    commit.genId = hdr.genId;
    commit.type = 1;
    std::memcpy(image.data() + kJournalOffset + sizeof(JournalHeader) +
                    hdr.entryCount * sizeof(LogEntry),
                &commit, sizeof(commit));

    EXPECT_EQ(Journal::recoverImage(image), 0u);
    uint64_t value;
    std::memcpy(&value, image.data() + meta_off, sizeof(value));
    EXPECT_EQ(value, 6u) << "new value survives";

    journal.commitTransaction();
}

TEST_F(JournalTest, RedundantCommitFlushWarned)
{
    // The paper's new bug 1 (journal.c:632): committing flushes the
    // already-flushed commit entry a second time.
    ScopedLogSilencer quiet;
    Journal journal(pool_, kJournalOffset, kJournalSize);
    journal.faults.redundantCommitFlush = true;
    auto *meta = static_cast<uint64_t *>(pool_.at(pool_.alloc(8)));

    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    journal.beginTransaction();
    journal.addLogEntry(meta, 8);
    uint64_t v = 1;
    pmStore(meta, &v, 8);
    pmClwb(meta, 8);
    pmSfence();
    journal.commitTransaction();

    pmtestSendTrace();
    const auto report = pmtestResults();
    bool redundant = false;
    for (const auto &f : report.findings())
        redundant |= f.kind == core::FindingKind::RedundantFlush;
    EXPECT_TRUE(redundant) << report.str();
}

TEST_F(JournalTest, CleanCommitProducesNoFindings)
{
    Journal journal(pool_, kJournalOffset, kJournalSize);
    auto *meta = static_cast<uint64_t *>(pool_.at(pool_.alloc(8)));

    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    journal.beginTransaction();
    journal.addLogEntry(meta, 8);
    uint64_t v = 1;
    pmStore(meta, &v, 8);
    pmClwb(meta, 8);
    pmSfence();
    journal.commitTransaction();

    pmtestSendTrace();
    const auto report = pmtestResults();
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST_F(JournalTest, StaleGenerationEntriesIgnored)
{
    Journal journal(pool_, kJournalOffset, kJournalSize);
    const uint64_t meta_off = pool_.alloc(8);
    auto *meta = static_cast<uint64_t *>(pool_.at(meta_off));

    // Transaction 1 commits normally.
    *meta = 1;
    journal.beginTransaction();
    journal.addLogEntry(meta, 8);
    *meta = 2;
    journal.commitTransaction();

    // Transaction 2 crashes mid-flight; its rollback must not apply
    // generation-1 leftovers beyond its own entries.
    journal.beginTransaction();
    journal.addLogEntry(meta, 8); // snapshots value 2
    *meta = 3;
    auto image = snapshot();
    journal.commitTransaction();

    EXPECT_GE(Journal::recoverImage(image), 1u);
    uint64_t recovered;
    std::memcpy(&recovered, image.data() + meta_off,
                sizeof(recovered));
    EXPECT_EQ(recovered, 2u);
}

} // namespace
} // namespace pmtest::pmfs
