#include "pmfs/pmfs.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace pmtest::pmfs
{
namespace
{

class PmfsTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }
};

TEST_F(PmfsTest, CreateLookupUnlink)
{
    Pmfs fs(4 << 20, false, false);
    EXPECT_EQ(fs.lookup("a"), -1);
    const int ino = fs.create("a");
    EXPECT_GE(ino, 0);
    EXPECT_EQ(fs.lookup("a"), ino);
    EXPECT_EQ(fs.create("a"), -1) << "duplicate names rejected";
    EXPECT_EQ(fs.fileCount(), 1u);
    EXPECT_TRUE(fs.unlink("a"));
    EXPECT_EQ(fs.lookup("a"), -1);
    EXPECT_FALSE(fs.unlink("a"));
    EXPECT_EQ(fs.fileCount(), 0u);
}

TEST_F(PmfsTest, WriteReadRoundTrip)
{
    Pmfs fs(4 << 20, false, false);
    const int ino = fs.create("data");
    const std::string payload = "the quick brown fox";
    EXPECT_EQ(fs.write(ino, 0, payload.data(), payload.size()),
              static_cast<long>(payload.size()));
    EXPECT_EQ(fs.fileSize(ino), payload.size());

    std::string out(payload.size(), 0);
    EXPECT_EQ(fs.read(ino, 0, out.data(), out.size()),
              static_cast<long>(payload.size()));
    EXPECT_EQ(out, payload);
}

TEST_F(PmfsTest, WriteAcrossBlockBoundaries)
{
    Pmfs fs(4 << 20, false, false);
    const int ino = fs.create("big");
    std::string payload(kBlockSize * 3 + 100, 'q');
    for (size_t i = 0; i < payload.size(); i++)
        payload[i] = static_cast<char>('a' + i % 26);

    EXPECT_EQ(fs.write(ino, 0, payload.data(), payload.size()),
              static_cast<long>(payload.size()));
    std::string out(payload.size(), 0);
    EXPECT_EQ(fs.read(ino, 0, out.data(), out.size()),
              static_cast<long>(payload.size()));
    EXPECT_EQ(out, payload);
}

TEST_F(PmfsTest, SparseWriteReadsHolesAsZero)
{
    Pmfs fs(4 << 20, false, false);
    const int ino = fs.create("sparse");
    const std::string payload = "end";
    // Write into the third block only.
    fs.write(ino, kBlockSize * 2, payload.data(), payload.size());
    std::vector<char> out(kBlockSize, 1);
    fs.read(ino, 0, out.data(), out.size());
    for (char c : out)
        EXPECT_EQ(c, 0);
}

TEST_F(PmfsTest, MaxFileSizeEnforced)
{
    Pmfs fs(4 << 20, false, false);
    const int ino = fs.create("cap");
    const char b = 'x';
    EXPECT_EQ(fs.write(ino, kDirectBlocks * kBlockSize, &b, 1), -1);
    EXPECT_GT(fs.write(ino, kDirectBlocks * kBlockSize - 1, &b, 1), 0);
}

TEST_F(PmfsTest, TracesFlowThroughKernelFifo)
{
    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    Pmfs fs(4 << 20, false, /*use_fifo=*/true);
    const int ino = fs.create("f");
    const std::string payload(128, 'z');
    fs.write(ino, 0, payload.data(), payload.size());

    fs.drainTraces();
    EXPECT_GT(pmtestTracesSubmitted(), 0u);
    const auto report = pmtestResults();
    EXPECT_TRUE(report.clean()) << report.str();
    pmtestEnd();
    pmtestExit();
}

TEST_F(PmfsTest, CleanOperationsYieldNoFindings)
{
    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    Pmfs fs(4 << 20, false, false);
    fs.emitCheckers = true;
    const std::string payload(600, 'p');
    for (int i = 0; i < 8; i++) {
        const std::string name = "file" + std::to_string(i);
        const int ino = fs.create(name);
        fs.write(ino, 0, payload.data(), payload.size());
    }
    fs.unlink("file3");
    pmtestSendTrace();

    const auto report = pmtestResults();
    EXPECT_TRUE(report.clean()) << report.str();
    pmtestEnd();
    pmtestExit();
}

TEST_F(PmfsTest, DoubleFlushXipBugDetected)
{
    ScopedLogSilencer quiet;
    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    Pmfs fs(4 << 20, false, false);
    fs.faults.doubleFlushXip = true;
    const int ino = fs.create("f");
    const std::string payload(64, 'z');
    fs.write(ino, 0, payload.data(), payload.size());
    pmtestSendTrace();

    const auto report = pmtestResults();
    bool redundant = false;
    for (const auto &f : report.findings())
        redundant |= f.kind == core::FindingKind::RedundantFlush;
    EXPECT_TRUE(redundant) << report.str();
    pmtestEnd();
    pmtestExit();
}

TEST_F(PmfsTest, FlushUnmappedBufferDetected)
{
    ScopedLogSilencer quiet;
    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    Pmfs fs(4 << 20, false, false);
    fs.faults.flushUnmapped = true;
    const int ino = fs.create("f");
    const std::string payload(64, 'z');
    fs.write(ino, 0, payload.data(), payload.size());
    pmtestSendTrace();

    const auto report = pmtestResults();
    bool unnecessary = false;
    for (const auto &f : report.findings())
        unnecessary |= f.kind == core::FindingKind::UnnecessaryFlush;
    EXPECT_TRUE(unnecessary) << report.str();
    pmtestEnd();
    pmtestExit();
}

TEST_F(PmfsTest, CrashRecoveryRollsBackMetadata)
{
    Pmfs fs(4 << 20, false, false);
    const int ino = fs.create("victim");
    ASSERT_GE(ino, 0);

    // Crash mid-unlink: journal open, inode cleared in place.
    fs.journal().beginTransaction();
    // Emulate the unlink body manually so the journal stays open.
    // (The public unlink() always commits.)
    auto &pool = fs.pmPool();
    std::vector<uint8_t> image(pool.base(),
                               pool.base() + pool.size());
    fs.journal().commitTransaction();

    EXPECT_EQ(Pmfs::recoverImage(image), 0u)
        << "no entries were logged before the crash";
}

} // namespace
} // namespace pmtest::pmfs
