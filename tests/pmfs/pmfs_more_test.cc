/**
 * @file
 * Additional mini-PMFS behaviour: block reuse after unlink, many
 * files, overwrites, offset writes, name limits, and inode-table
 * exhaustion.
 */

#include <gtest/gtest.h>

#include "pmfs/pmfs.hh"

namespace pmtest::pmfs
{
namespace
{

TEST(PmfsMoreTest, BlocksAreReusedAfterUnlink)
{
    Pmfs fs(2 << 20, false, false);
    const std::string payload(kBlockSize * 4, 'r');

    // Fill a good chunk of the volume, delete, refill — if blocks
    // leaked this would exhaust the volume.
    for (int round = 0; round < 20; round++) {
        for (int i = 0; i < 8; i++) {
            const std::string name = "f" + std::to_string(i);
            const int ino = fs.create(name);
            ASSERT_GE(ino, 0) << "round " << round;
            ASSERT_GT(fs.write(ino, 0, payload.data(),
                               payload.size()),
                      0)
                << "round " << round;
        }
        for (int i = 0; i < 8; i++)
            ASSERT_TRUE(fs.unlink("f" + std::to_string(i)));
    }
    EXPECT_EQ(fs.fileCount(), 0u);
}

TEST(PmfsMoreTest, OverwriteKeepsSize)
{
    Pmfs fs(2 << 20, false, false);
    const int ino = fs.create("x");
    const std::string first(300, 'a');
    const std::string second(100, 'b');
    fs.write(ino, 0, first.data(), first.size());
    fs.write(ino, 0, second.data(), second.size());
    EXPECT_EQ(fs.fileSize(ino), first.size())
        << "overwrite within the file does not shrink it";

    std::string out(300, 0);
    fs.read(ino, 0, out.data(), out.size());
    EXPECT_EQ(out.substr(0, 100), second);
    EXPECT_EQ(out.substr(100), first.substr(100));
}

TEST(PmfsMoreTest, ReadPastEofTruncates)
{
    Pmfs fs(2 << 20, false, false);
    const int ino = fs.create("x");
    const std::string payload(100, 'q');
    fs.write(ino, 0, payload.data(), payload.size());

    std::string out(500, 0);
    EXPECT_EQ(fs.read(ino, 40, out.data(), out.size()), 60);
    EXPECT_EQ(fs.read(ino, 100, out.data(), out.size()), 0);
    EXPECT_EQ(fs.read(ino, 5000, out.data(), out.size()), 0);
}

TEST(PmfsMoreTest, LongNamesRejected)
{
    Pmfs fs(2 << 20, false, false);
    const std::string too_long(kNameLen, 'n');
    EXPECT_EQ(fs.create(too_long), -1);
    const std::string ok(kNameLen - 1, 'n');
    EXPECT_GE(fs.create(ok), 0);
}

TEST(PmfsMoreTest, InodeTableExhaustion)
{
    Pmfs fs(4 << 20, false, false);
    int created = 0;
    for (int i = 0; i < 400; i++) {
        if (fs.create("file" + std::to_string(i)) >= 0)
            created++;
    }
    EXPECT_EQ(created, 256) << "inode table capacity";
    EXPECT_TRUE(fs.unlink("file0"));
    EXPECT_GE(fs.create("replacement"), 0)
        << "freed inode is reusable";
}

TEST(PmfsMoreTest, BadInodeOperationsFail)
{
    Pmfs fs(2 << 20, false, false);
    char b = 0;
    EXPECT_EQ(fs.write(-1, 0, &b, 1), -1);
    EXPECT_EQ(fs.write(9999, 0, &b, 1), -1);
    EXPECT_EQ(fs.read(-1, 0, &b, 1), -1);
    EXPECT_EQ(fs.fileSize(-1), 0u);
    const int ino = fs.create("f");
    fs.unlink("f");
    EXPECT_EQ(fs.write(ino, 0, &b, 1), -1) << "stale inode";
}

TEST(PmfsMoreTest, FifoBackpressureSurvivesBurst)
{
    // Hammer the FIFO-backed volume; producer stalls are fine, data
    // loss is not.
    Pmfs fs(8 << 20, false, /*use_fifo=*/true);
    const std::string payload(600, 'z');
    for (int i = 0; i < 64; i++) {
        const std::string name = "b" + std::to_string(i % 4);
        int ino = fs.lookup(name);
        if (ino < 0)
            ino = fs.create(name);
        ASSERT_GT(fs.write(ino, 0, payload.data(), payload.size()),
                  0);
    }
    fs.drainTraces();
    EXPECT_EQ(fs.fileCount(), 4u);
}

} // namespace
} // namespace pmtest::pmfs
