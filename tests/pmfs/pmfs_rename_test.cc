#include <gtest/gtest.h>

#include "core/api.hh"
#include "pmfs/pmfs.hh"

namespace pmtest::pmfs
{
namespace
{

class PmfsRenameTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }
};

TEST_F(PmfsRenameTest, RenameKeepsContentAndInode)
{
    Pmfs fs(2 << 20, false, false);
    const int ino = fs.create("old");
    const std::string payload = "contents";
    fs.write(ino, 0, payload.data(), payload.size());

    EXPECT_TRUE(fs.rename("old", "new"));
    EXPECT_EQ(fs.lookup("old"), -1);
    EXPECT_EQ(fs.lookup("new"), ino);

    std::string out(payload.size(), 0);
    EXPECT_GT(fs.read(ino, 0, out.data(), out.size()), 0);
    EXPECT_EQ(out, payload);
    EXPECT_EQ(fs.fileCount(), 1u);
}

TEST_F(PmfsRenameTest, RenameRejectsBadArguments)
{
    Pmfs fs(2 << 20, false, false);
    fs.create("a");
    fs.create("b");
    EXPECT_FALSE(fs.rename("missing", "c"));
    EXPECT_FALSE(fs.rename("a", "b")) << "target exists";
    const std::string too_long(kNameLen, 'x');
    EXPECT_FALSE(fs.rename("a", too_long));
    EXPECT_EQ(fs.lookup("a"), 0);
}

TEST_F(PmfsRenameTest, RenameIsCleanUnderPmtest)
{
    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    Pmfs fs(2 << 20, false, false);
    fs.emitCheckers = true;
    fs.create("x");
    EXPECT_TRUE(fs.rename("x", "y"));
    pmtestSendTrace();

    const auto report = pmtestResults();
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST_F(PmfsRenameTest, RenameIsJournaled)
{
    // Crash mid-rename (before commit) must roll back to the old
    // name: emulate by journaling + modifying without commit, using
    // the same sequence rename() performs.
    Pmfs fs(2 << 20, true, false);
    const int ino = fs.create("victim");
    ASSERT_GE(ino, 0);

    auto &pool = fs.pmPool();
    Superblock sb;
    std::memcpy(&sb, pool.base(), sizeof(sb));
    auto *inode = reinterpret_cast<Inode *>(
        pool.base() + sb.inodeTableOffset + ino * sizeof(Inode));

    fs.journal().beginTransaction();
    fs.journal().addLogEntry(inode, sizeof(Inode));
    Inode updated = *inode;
    std::memset(updated.name, 0, kNameLen);
    std::strncpy(updated.name, "renamed", kNameLen - 1);
    pmStore(inode, &updated, sizeof(updated));

    std::vector<uint8_t> image(pool.base(),
                               pool.base() + pool.size());
    fs.journal().commitTransaction();

    Pmfs::recoverImage(image);
    Inode recovered;
    std::memcpy(&recovered,
                image.data() + sb.inodeTableOffset +
                    ino * sizeof(Inode),
                sizeof(recovered));
    EXPECT_STREQ(recovered.name, "victim");
}

} // namespace
} // namespace pmtest::pmfs
