/**
 * @file
 * PMFS crash/recovery through the cache model: operations on a
 * simulated volume, crash images sampled at operation boundaries,
 * journal recovery, and direct inspection of the recovered on-media
 * metadata.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "core/api.hh"
#include "pmem/crash_injector.hh"
#include "pmfs/pmfs.hh"
#include "util/random.hh"

namespace pmtest::pmfs
{
namespace
{

/** Parse a volume image: count in-use inodes and find one by name. */
struct ImageFs
{
    explicit ImageFs(const std::vector<uint8_t> &image)
    {
        std::memcpy(&sb, image.data(), sizeof(sb));
        valid = sb.magic == Superblock::kMagic;
        if (!valid)
            return;
        for (uint64_t i = 0; i < sb.nInodes; i++) {
            Inode ino;
            std::memcpy(&ino,
                        image.data() + sb.inodeTableOffset +
                            i * sizeof(Inode),
                        sizeof(ino));
            inodes.push_back(ino);
        }
    }

    size_t
    fileCount() const
    {
        size_t n = 0;
        for (const auto &ino : inodes)
            n += ino.inUse ? 1 : 0;
        return n;
    }

    const Inode *
    find(const std::string &name) const
    {
        for (const auto &ino : inodes)
            if (ino.inUse && name == ino.name)
                return &ino;
        return nullptr;
    }

    Superblock sb;
    std::vector<Inode> inodes;
    bool valid = false;
};

class PmfsCrashTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        if (pmtestInitialized())
            pmtestExit();
    }
};

TEST_F(PmfsCrashTest, CompletedOpsSurviveEveryCrashState)
{
    pmtestInit(Config{});
    pmtestThreadInit();

    Pmfs fs(4 << 20, /*simulate_crashes=*/true, /*use_fifo=*/false);
    pmtestAttachPool(&fs.pmPool());

    const std::string payload(700, 'k');
    for (int i = 0; i < 6; i++) {
        const std::string name = "crash" + std::to_string(i);
        const int ino = fs.create(name);
        ASSERT_GE(ino, 0);
        ASSERT_GT(fs.write(ino, 0, payload.data(), payload.size()),
                  0);
    }
    fs.unlink("crash2");

    pmem::CrashInjector injector(*fs.pmPool().cache());
    Rng rng(77);
    for (int s = 0; s < 20; s++) {
        auto image = injector.sample(rng);
        Pmfs::recoverImage(image);
        ImageFs parsed(image);
        ASSERT_TRUE(parsed.valid);
        EXPECT_EQ(parsed.fileCount(), 5u);
        EXPECT_EQ(parsed.find("crash2"), nullptr);
        const Inode *f0 = parsed.find("crash0");
        ASSERT_NE(f0, nullptr);
        EXPECT_EQ(f0->size, payload.size());
    }
    pmtestDetachPool();
}

TEST_F(PmfsCrashTest, MidJournalCrashRollsBackCreate)
{
    pmtestInit(Config{});
    pmtestThreadInit();

    Pmfs fs(4 << 20, true, false);
    pmtestAttachPool(&fs.pmPool());
    ASSERT_GE(fs.create("stable"), 0);

    // Re-create the create() body by hand, crashing before commit:
    // journal the inode, modify it in place, never commit.
    const int victim = 1; // the next free inode slot
    auto &pool = fs.pmPool();
    fs.journal().beginTransaction();
    // Locate the inode table via the live superblock.
    Superblock sb;
    std::memcpy(&sb, pool.base(), sizeof(sb));
    auto *ino = reinterpret_cast<Inode *>(
        pool.base() + sb.inodeTableOffset + victim * sizeof(Inode));
    fs.journal().addLogEntry(ino, sizeof(Inode));
    Inode updated{};
    updated.inUse = 1;
    std::strncpy(updated.name, "halfway", kNameLen - 1);
    pmStore(ino, &updated, sizeof(updated));
    pmClwb(ino, sizeof(Inode));
    pmSfence();

    pmem::CrashInjector injector(*pool.cache());
    Rng rng(78);
    for (int s = 0; s < 20; s++) {
        auto image = injector.sample(rng);
        Pmfs::recoverImage(image);
        ImageFs parsed(image);
        ASSERT_TRUE(parsed.valid);
        EXPECT_EQ(parsed.find("halfway"), nullptr)
            << "uncommitted create must roll back";
        EXPECT_NE(parsed.find("stable"), nullptr);
        EXPECT_EQ(parsed.fileCount(), 1u);
    }

    fs.journal().commitTransaction();
    pmtestDetachPool();
}

TEST_F(PmfsCrashTest, SkippedDataFlushLosesDataInSomeCrashState)
{
    // The writeback-class bug PMTest flags corresponds to real data
    // loss: with the data flush skipped, some crash state holds an
    // inode pointing at stale block contents.
    pmtestInit(Config{});
    pmtestThreadInit();

    Pmfs fs(4 << 20, true, false);
    fs.faults.skipDataFlush = true;
    pmtestAttachPool(&fs.pmPool());

    const std::string payload(512, 'Z');
    const int ino = fs.create("lossy");
    ASSERT_GT(fs.write(ino, 0, payload.data(), payload.size()), 0);

    Superblock sb;
    std::memcpy(&sb, fs.pmPool().base(), sizeof(sb));

    pmem::CrashInjector injector(*fs.pmPool().cache());
    Rng rng(79);
    bool stale_seen = false;
    for (int s = 0; s < 40 && !stale_seen; s++) {
        auto image = injector.sample(rng);
        Pmfs::recoverImage(image);
        ImageFs parsed(image);
        const Inode *f = parsed.find("lossy");
        if (!f || f->size != payload.size())
            continue;
        // The inode is durable; check whether its data block is.
        const uint64_t block = f->blocks[0];
        if (block == 0)
            continue;
        char first = 0;
        std::memcpy(&first,
                    image.data() + sb.dataOffset +
                        (block - 1) * kBlockSize,
                    1);
        stale_seen = first != 'Z';
    }
    EXPECT_TRUE(stale_seen)
        << "skipping the data flush should expose stale blocks";
    pmtestDetachPool();
}

} // namespace
} // namespace pmtest::pmfs
