#include "pmem/pm_pool.hh"

#include <gtest/gtest.h>

#include "pmem/image_view.hh"

namespace pmtest::pmem
{
namespace
{

TEST(PmPoolTest, AllocationsAreDisjointAndAligned)
{
    PmPool pool(1 << 16);
    const uint64_t a = pool.alloc(100);
    const uint64_t b = pool.alloc(50);
    EXPECT_NE(a, b);
    EXPECT_EQ(a % 16, 0u);
    EXPECT_EQ(b % 16, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_GE(a, PmPool::kRootSize);
}

TEST(PmPoolTest, FreeCoalescesAndReuses)
{
    PmPool pool(1 << 16);
    const uint64_t a = pool.alloc(64);
    const uint64_t b = pool.alloc(64);
    const uint64_t c = pool.alloc(64);
    (void)c;
    pool.free(a);
    pool.free(b);
    // The coalesced hole fits a 128-byte allocation at a's offset.
    const uint64_t d = pool.alloc(128);
    EXPECT_EQ(d, a);
}

TEST(PmPoolTest, OffsetPointerRoundTrip)
{
    PmPool pool(4096);
    const uint64_t off = pool.alloc(32);
    void *ptr = pool.at(off);
    EXPECT_TRUE(pool.contains(ptr));
    EXPECT_EQ(pool.offsetOf(ptr), off);
    int outside = 0;
    EXPECT_FALSE(pool.contains(&outside));
}

TEST(PmPoolTest, AllocatedBytesTracked)
{
    PmPool pool(1 << 16);
    const uint64_t a = pool.alloc(100); // rounded to 112
    EXPECT_EQ(pool.allocatedBytes(), 112u);
    pool.free(a);
    EXPECT_EQ(pool.allocatedBytes(), 0u);
}

TEST(PmPoolTest, SimulationOptional)
{
    PmPool plain(4096);
    EXPECT_FALSE(plain.simulating());
    EXPECT_EQ(plain.cache(), nullptr);

    PmPool simulated(4096, true);
    EXPECT_TRUE(simulated.simulating());
    ASSERT_NE(simulated.cache(), nullptr);
    EXPECT_EQ(simulated.pmDevice()->size(), 4096u);
}

TEST(PmPoolDeathTest, DoubleFreePanics)
{
    PmPool pool(4096);
    const uint64_t a = pool.alloc(16);
    pool.free(a);
    EXPECT_DEATH(pool.free(a), "not an allocation");
}

TEST(ImageViewTest, TranslatesLivePointers)
{
    PmPool pool(4096, true);
    const uint64_t off = pool.alloc(8);
    auto *p = static_cast<uint64_t *>(pool.at(off));
    *p = 0xdeadbeef;

    std::vector<uint8_t> image(pool.base(), pool.base() + pool.size());
    ImageView view(pool, image);
    EXPECT_EQ(view.read<uint64_t>(p), 0xdeadbeefu);
    EXPECT_EQ(view.readAt<uint64_t>(off), 0xdeadbeefu);
    EXPECT_TRUE(view.contains(p));
}

} // namespace
} // namespace pmtest::pmem
