#include "pmem/tracked_image.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "pmem/crash_injector.hh"
#include "util/random.hh"

namespace pmtest::pmem
{
namespace
{

std::vector<uint8_t>
patternImage(size_t size, uint8_t seed = 0)
{
    std::vector<uint8_t> image(size);
    for (size_t i = 0; i < size; i++)
        image[i] = static_cast<uint8_t>(seed + i * 7);
    return image;
}

TEST(ReadSetTracker, RecordsReadRangesInFirstReadOrder)
{
    auto image = patternImage(256);
    ReadSetTracker tracker;
    TrackedImage view(image, &tracker);

    uint8_t buf[16];
    view.readBytes(128, buf, 8);
    view.readBytes(0, buf, 4);
    view.readBytes(132, buf, 8); // overlaps [132,136): only 4 new

    ASSERT_EQ(tracker.readRanges().size(), 3u);
    EXPECT_EQ(tracker.readRanges()[0],
              (ReadSetTracker::ReadRange{128, 8}));
    EXPECT_EQ(tracker.readRanges()[1],
              (ReadSetTracker::ReadRange{0, 4}));
    EXPECT_EQ(tracker.readRanges()[2],
              (ReadSetTracker::ReadRange{136, 4}));

    ASSERT_EQ(tracker.readLines().size(), 2u);
    EXPECT_EQ(tracker.readLines()[0], 2u); // line of offset 128
    EXPECT_EQ(tracker.readLines()[1], 0u);
    EXPECT_TRUE(tracker.lineRead(2));
    EXPECT_FALSE(tracker.lineRead(1));
}

TEST(ReadSetTracker, AdjacentReadsCoalesceIntoOneRange)
{
    auto image = patternImage(128);
    ReadSetTracker tracker;
    TrackedImage view(image, &tracker);

    uint8_t buf[8];
    view.readBytes(8, buf, 8);
    view.readBytes(16, buf, 8);

    ASSERT_EQ(tracker.readRanges().size(), 1u);
    EXPECT_EQ(tracker.readRanges()[0],
              (ReadSetTracker::ReadRange{8, 16}));
}

TEST(ReadSetTracker, WrittenBytesAreDerivedDataNotCrashReads)
{
    auto image = patternImage(128);
    ReadSetTracker tracker;
    TrackedImage view(image, &tracker);

    view.writeAt<uint64_t>(0, 0xdeadbeef);
    uint8_t buf[8];
    view.readBytes(0, buf, 8); // reads back own write

    EXPECT_TRUE(tracker.readRanges().empty());
    EXPECT_TRUE(tracker.readLines().empty());
    EXPECT_EQ(tracker.contentHash(), ReadSetTracker::kFnvOffset);
}

TEST(ReadSetTracker, RereadingRecordedBytesAddsNothing)
{
    auto image = patternImage(128);
    ReadSetTracker tracker;
    TrackedImage view(image, &tracker);

    uint8_t buf[8];
    view.readBytes(32, buf, 8);
    const uint64_t hash = tracker.contentHash();
    const auto ranges = tracker.readRanges();
    view.readBytes(32, buf, 8);
    view.readBytes(34, buf, 4);

    EXPECT_EQ(tracker.contentHash(), hash);
    EXPECT_EQ(tracker.readRanges(), ranges);
}

TEST(ReadSetTracker, ContentHashDistinguishesObservedBytes)
{
    auto a = patternImage(128, 0);
    auto b = patternImage(128, 1);
    ReadSetTracker ta, tb;
    uint8_t buf[8];
    TrackedImage(a, &ta).readBytes(0, buf, 8);
    TrackedImage(b, &tb).readBytes(0, buf, 8);

    EXPECT_NE(ta.contentHash(), tb.contentHash());
    // Same positions read: the range signature agrees even though
    // the content differs.
    EXPECT_EQ(ta.rangeSignature(), tb.rangeSignature());
}

TEST(ReadSetTracker, RangeSignatureDistinguishesPositions)
{
    auto image = patternImage(128);
    ReadSetTracker ta, tb;
    uint8_t buf[8];
    TrackedImage(image, &ta).readBytes(0, buf, 8);
    TrackedImage(image, &tb).readBytes(8, buf, 8);
    EXPECT_NE(ta.rangeSignature(), tb.rangeSignature());
}

TEST(ReadSetTracker, HashImageOverMatchesContentHash)
{
    auto image = patternImage(256);
    ReadSetTracker tracker;
    TrackedImage view(image, &tracker);
    uint8_t buf[16];
    view.readBytes(100, buf, 16);
    view.readBytes(3, buf, 5);

    EXPECT_EQ(ReadSetTracker::hashImageOver(image,
                                            tracker.readRanges()),
              tracker.contentHash());

    // Perturb a crash-read byte: the hash must move.
    auto other = image;
    other[104] ^= 0xff;
    EXPECT_NE(ReadSetTracker::hashImageOver(other,
                                            tracker.readRanges()),
              tracker.contentHash());

    // Perturb an unread byte: the hash must not move.
    auto unread = image;
    unread[200] ^= 0xff;
    EXPECT_EQ(ReadSetTracker::hashImageOver(unread,
                                            tracker.readRanges()),
              tracker.contentHash());
}

TEST(ReadSetTracker, HashImageOverOutOfBoundsIsNoMatch)
{
    std::vector<ReadSetTracker::ReadRange> ranges = {{120, 16}};
    auto small = patternImage(128);
    EXPECT_EQ(ReadSetTracker::hashImageOver(small, ranges),
              ReadSetTracker::kNoMatch);
}

TEST(ReadSetTracker, UndoRestoresImageExactly)
{
    auto image = patternImage(512);
    const auto pristine = image;
    ReadSetTracker tracker;
    TrackedImage view(image, &tracker);

    Rng rng(7);
    for (int i = 0; i < 100; i++) {
        const uint64_t off = rng.next() % (image.size() - 16);
        const size_t size = 1 + rng.next() % 16;
        std::vector<uint8_t> junk(size);
        for (auto &b : junk)
            b = static_cast<uint8_t>(rng.next());
        view.writeBytes(off, junk.data(), size);
    }
    ASSERT_NE(image, pristine) << "writes must have landed";

    tracker.undo(image);
    EXPECT_EQ(image, pristine);
}

TEST(ReadSetTracker, ResetClearsEverything)
{
    auto image = patternImage(128);
    ReadSetTracker tracker;
    TrackedImage view(image, &tracker);
    uint8_t buf[8];
    view.readBytes(0, buf, 8);
    view.writeAt<uint32_t>(64, 1);

    tracker.reset();
    EXPECT_TRUE(tracker.readRanges().empty());
    EXPECT_TRUE(tracker.readLines().empty());
    EXPECT_EQ(tracker.contentHash(), ReadSetTracker::kFnvOffset);

    // Undo after reset is a no-op: the write log is gone.
    const auto current = image;
    tracker.undo(image);
    EXPECT_EQ(image, current);
}

TEST(TrackedImage, UntrackedAccessorStillWorks)
{
    auto image = patternImage(128);
    TrackedImage view(image);
    EXPECT_EQ(view.tracker(), nullptr);
    view.writeAt<uint64_t>(8, 12345);
    EXPECT_EQ(view.readAt<uint64_t>(8), 12345u);
}

TEST(PredicateMemo, ReusesVerdictForMatchingReadSet)
{
    auto image = patternImage(256);
    ReadSetTracker tracker;
    TrackedImage view(image, &tracker);
    uint8_t buf[8];
    view.readBytes(64, buf, 8);

    PredicateMemo memo;
    memo.insert(tracker, /*verdict=*/true);
    EXPECT_EQ(memo.size(), 1u);

    // Same bytes at the crash-read ranges: hit, with read lines.
    auto candidate = image;
    candidate[200] ^= 0xff; // unread byte may differ freely
    const auto *hit = memo.lookup(candidate);
    ASSERT_NE(hit, nullptr);
    EXPECT_TRUE(hit->verdict);
    EXPECT_EQ(hit->readLines, tracker.readLines());

    // A crash-read byte differs: no entry may be reused.
    candidate[64] ^= 0xff;
    EXPECT_EQ(memo.lookup(candidate), nullptr);
}

TEST(PredicateMemo, ClearEmptiesTheCache)
{
    auto image = patternImage(128);
    ReadSetTracker tracker;
    TrackedImage view(image, &tracker);
    uint8_t buf[4];
    view.readBytes(0, buf, 4);

    PredicateMemo memo;
    memo.insert(tracker, false);
    memo.clear();
    EXPECT_EQ(memo.size(), 0u);
    EXPECT_EQ(memo.lookup(image), nullptr);
}

} // namespace
} // namespace pmtest::pmem
