#include "pmem/crash_injector.hh"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

namespace pmtest::pmem
{
namespace
{

TEST(CrashInjectorTest, CleanCacheYieldsSingleState)
{
    PmDevice dev(256);
    CacheSim cache(dev);
    CrashInjector injector(cache);
    EXPECT_EQ(injector.stateCount(), 1u);

    size_t visited = 0;
    injector.enumerate([&](const std::vector<uint8_t> &image) {
        visited++;
        EXPECT_EQ(image, dev.image());
    });
    EXPECT_EQ(visited, 1u);
}

TEST(CrashInjectorTest, DirtyLineDoublesStateSpace)
{
    PmDevice dev(256);
    CacheSim cache(dev);
    uint64_t v = 42;
    cache.store(0, &v, sizeof(v));

    CrashInjector injector(cache);
    // One dirty line with one snapshot: old content or new content.
    EXPECT_EQ(injector.stateCount(), 2u);

    std::set<uint64_t> first_words;
    injector.enumerate([&](const std::vector<uint8_t> &image) {
        uint64_t w;
        std::memcpy(&w, image.data(), sizeof(w));
        first_words.insert(w);
    });
    EXPECT_EQ(first_words, (std::set<uint64_t>{0, 42}));
}

TEST(CrashInjectorTest, IndependentLinesMultiply)
{
    PmDevice dev(512);
    CacheSim cache(dev);
    uint64_t v = 1;
    cache.store(0, &v, sizeof(v));
    cache.store(64, &v, sizeof(v));
    cache.store(128, &v, sizeof(v));

    CrashInjector injector(cache);
    EXPECT_EQ(injector.stateCount(), 8u);

    size_t visited = injector.enumerate([](const auto &) {});
    EXPECT_EQ(visited, 8u);
}

TEST(CrashInjectorTest, EnumerationRespectsLimit)
{
    PmDevice dev(512);
    CacheSim cache(dev);
    uint64_t v = 1;
    for (int i = 0; i < 6; i++)
        cache.store(i * 64, &v, sizeof(v));

    CrashInjector injector(cache);
    const uint64_t visited =
        injector.enumerate([](const auto &) {}, 10);
    EXPECT_EQ(visited, 10u);
}

TEST(CrashInjectorTest, SampleDrawsLegalStates)
{
    PmDevice dev(256);
    CacheSim cache(dev);
    uint32_t v1 = 5, v2 = 9;
    cache.store(0, &v1, sizeof(v1));
    cache.store(4, &v2, sizeof(v2));

    CrashInjector injector(cache);
    Rng rng(3);
    for (int i = 0; i < 50; i++) {
        auto image = injector.sample(rng);
        uint32_t a, b;
        std::memcpy(&a, image.data(), 4);
        std::memcpy(&b, image.data() + 4, 4);
        // Legal contents: snapshots in order — (0,0), (5,0), (5,9).
        const bool legal = (a == 0 && b == 0) || (a == 5 && b == 0) ||
                           (a == 5 && b == 9);
        EXPECT_TRUE(legal) << "a=" << a << " b=" << b;
    }
}

TEST(CrashInjectorTest, StateCountSaturatesAtCap)
{
    PmDevice dev(4096);
    CacheSim cache(dev);
    uint64_t v = 1;
    for (int i = 0; i < 60; i++)
        cache.store(i * 64, &v, sizeof(v));
    CrashInjector injector(cache);
    EXPECT_EQ(injector.stateCount(1000), 1000u);
}

} // namespace
} // namespace pmtest::pmem
