#include "pmem/cache_sim.hh"

#include <gtest/gtest.h>

namespace pmtest::pmem
{
namespace
{

TEST(CacheSimTest, StoreIsNotDurableUntilFlushedAndFenced)
{
    PmDevice dev(256);
    CacheSim cache(dev);
    const uint64_t v = 0x1122334455667788ULL;
    cache.store(0, &v, sizeof(v));

    // Device still holds old data.
    uint64_t on_device = 1;
    dev.read(0, &on_device, sizeof(on_device));
    EXPECT_EQ(on_device, 0u);

    // Loads see the cached value.
    uint64_t loaded = 0;
    cache.load(0, &loaded, sizeof(loaded));
    EXPECT_EQ(loaded, v);

    cache.clwb(0, sizeof(v));
    dev.read(0, &on_device, sizeof(on_device));
    EXPECT_EQ(on_device, 0u) << "clwb alone is not durability";

    cache.sfence();
    dev.read(0, &on_device, sizeof(on_device));
    EXPECT_EQ(on_device, v);
    EXPECT_TRUE(cache.clean());
}

TEST(CacheSimTest, StoreAfterClwbIsNotCoveredByFence)
{
    PmDevice dev(256);
    CacheSim cache(dev);
    uint32_t a = 1;
    cache.store(0, &a, sizeof(a));
    cache.clwb(0, sizeof(a));
    uint32_t b = 2; // lands after the writeback captured the line
    cache.store(0, &b, sizeof(b));
    cache.sfence();

    uint32_t on_device = 0;
    dev.read(0, &on_device, sizeof(on_device));
    EXPECT_EQ(on_device, 1u) << "fence persists the clwb-time content";
    EXPECT_FALSE(cache.clean()) << "the second store remains volatile";
}

TEST(CacheSimTest, CrashChoicesIncludeIntermediateStates)
{
    PmDevice dev(256);
    CacheSim cache(dev);
    uint32_t v1 = 1, v2 = 2;
    cache.store(0, &v1, sizeof(v1));
    cache.store(0, &v2, sizeof(v2));

    auto choices = cache.crashChoices();
    ASSERT_EQ(choices.size(), 1u);
    // Both post-store snapshots are legal crash contents.
    EXPECT_GE(choices[0].candidates.size(), 2u);
}

TEST(CacheSimTest, CleanAfterFlushAll)
{
    PmDevice dev(512);
    CacheSim cache(dev);
    uint64_t v = 7;
    cache.store(0, &v, sizeof(v));
    cache.store(128, &v, sizeof(v));
    EXPECT_FALSE(cache.clean());
    cache.flushAll();
    EXPECT_TRUE(cache.clean());
    uint64_t out = 0;
    dev.read(128, &out, sizeof(out));
    EXPECT_EQ(out, 7u);
}

TEST(CacheSimTest, CrossLineStoreSplits)
{
    PmDevice dev(256);
    CacheSim cache(dev);
    std::vector<uint8_t> data(100, 0xee);
    cache.store(30, data.data(), data.size()); // spans lines 0 and 1&2
    auto choices = cache.crashChoices();
    EXPECT_GE(choices.size(), 2u);
    cache.flushAll();
    std::vector<uint8_t> out(100, 0);
    dev.read(30, out.data(), out.size());
    EXPECT_EQ(out, data);
}

TEST(CacheSimTest, StatsCount)
{
    PmDevice dev(256);
    CacheSim cache(dev);
    uint8_t b = 1;
    cache.store(0, &b, 1);
    cache.clwb(0, 1);
    cache.sfence();
    EXPECT_EQ(cache.storeCount(), 1u);
    EXPECT_EQ(cache.flushCount(), 1u);
    EXPECT_EQ(cache.fenceCount(), 1u);
}

TEST(CacheSimTest, SnapshotCapBoundsMemory)
{
    PmDevice dev(256);
    CacheSim cache(dev);
    for (uint32_t i = 0; i < 100; i++)
        cache.store(0, &i, sizeof(i));
    auto choices = cache.crashChoices();
    ASSERT_EQ(choices.size(), 1u);
    EXPECT_LE(choices[0].candidates.size(), 17u);
}

} // namespace
} // namespace pmtest::pmem
