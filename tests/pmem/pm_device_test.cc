#include "pmem/pm_device.hh"

#include <gtest/gtest.h>

namespace pmtest::pmem
{
namespace
{

TEST(PmDeviceTest, ZeroInitialized)
{
    PmDevice dev(256);
    EXPECT_EQ(dev.size(), 256u);
    for (uint64_t i = 0; i < 256; i++)
        EXPECT_EQ(dev.byteAt(i), 0);
}

TEST(PmDeviceTest, WriteReadRoundTrip)
{
    PmDevice dev(128);
    const char data[] = "hello";
    dev.write(10, data, sizeof(data));
    char out[sizeof(data)] = {};
    dev.read(10, out, sizeof(data));
    EXPECT_STREQ(out, "hello");
    EXPECT_EQ(dev.mediaWrites(), 1u);
}

TEST(PmDeviceTest, SetImageReplacesContent)
{
    PmDevice dev(64);
    std::vector<uint8_t> image(64, 0xcd);
    dev.setImage(image);
    EXPECT_EQ(dev.byteAt(5), 0xcd);
}

TEST(PmDeviceDeathTest, OutOfRangeAccessPanics)
{
    PmDevice dev(64);
    uint8_t b = 0;
    EXPECT_DEATH(dev.read(60, &b, 8), "out of range");
    EXPECT_DEATH(dev.write(65, &b, 1), "out of range");
}

TEST(PmDeviceDeathTest, SetImageSizeMismatchPanics)
{
    PmDevice dev(64);
    std::vector<uint8_t> wrong(32, 0);
    EXPECT_DEATH(dev.setImage(wrong), "mismatch");
}

} // namespace
} // namespace pmtest::pmem
