#include "baseline/yat.hh"

#include <gtest/gtest.h>

#include <cstring>

namespace pmtest::baseline
{
namespace
{

/**
 * A two-word "valid flag" protocol on a pool: data must persist
 * before valid. The recovery predicate checks: if valid is set, data
 * must hold the new value.
 */
class YatTest : public ::testing::Test
{
  protected:
    YatTest() : pool_(1 << 16)
    {
        // Allocate a full line each so the words land on distinct
        // cache lines and can persist independently.
        data_ = static_cast<uint64_t *>(pool_.at(pool_.alloc(64)));
        valid_ = static_cast<uint64_t *>(pool_.at(pool_.alloc(64)));
        *data_ = 0;
        *valid_ = 0;
        // Snapshot the pre-execution durable state: the trace
        // builders mutate live memory before replay.
        initialImage_.assign(pool_.base(), pool_.base() + pool_.size());
    }

    Yat
    makeYat()
    {
        Yat yat(pool_);
        yat.setInitialImage(initialImage_);
        return yat;
    }

    Yat::Predicate
    predicate()
    {
        const uint64_t data_off = pool_.offsetOf(data_);
        const uint64_t valid_off = pool_.offsetOf(valid_);
        return [data_off, valid_off](std::vector<uint8_t> &image) {
            uint64_t data, valid;
            std::memcpy(&data, image.data() + data_off, 8);
            std::memcpy(&valid, image.data() + valid_off, 8);
            return valid == 0 || data == 42;
        };
    }

    Trace
    correctTrace()
    {
        // data=42; clwb; sfence; valid=1; clwb; sfence.
        *data_ = 42;
        *valid_ = 1;
        Trace t(1, 0);
        t.append(PmOp::write(addr(data_), 8));
        t.append(PmOp::clwb(addr(data_), 8));
        t.append(PmOp::sfence());
        t.append(PmOp::write(addr(valid_), 8));
        t.append(PmOp::clwb(addr(valid_), 8));
        t.append(PmOp::sfence());
        return t;
    }

    Trace
    buggyTrace()
    {
        // data=42; valid=1; clwb both; sfence — valid may persist
        // before data.
        *data_ = 42;
        *valid_ = 1;
        Trace t(1, 0);
        t.append(PmOp::write(addr(data_), 8));
        t.append(PmOp::write(addr(valid_), 8));
        t.append(PmOp::clwb(addr(data_), 8));
        t.append(PmOp::clwb(addr(valid_), 8));
        t.append(PmOp::sfence());
        return t;
    }

    static uint64_t addr(const void *p)
    {
        return reinterpret_cast<uint64_t>(p);
    }

    pmem::PmPool pool_;
    uint64_t *data_;
    uint64_t *valid_;
    std::vector<uint8_t> initialImage_;
};

TEST_F(YatTest, CorrectProtocolSurvivesAllCrashStates)
{
    Yat yat = makeYat();
    const auto result = yat.run(correctTrace(), predicate());
    EXPECT_GT(result.statesTested, 0u);
    EXPECT_EQ(result.failures, 0u);
    EXPECT_EQ(result.crashPoints, 6u);
}

TEST_F(YatTest, BuggyProtocolHasFailingCrashState)
{
    Yat yat = makeYat();
    const auto result = yat.run(buggyTrace(), predicate());
    EXPECT_GT(result.failures, 0u)
        << "some crash state exposes valid=1 with stale data";
}

TEST_F(YatTest, FinalOnlyTestsOneCrashPoint)
{
    // Strip the trailing fence so lines are still in flight at the
    // single (final) crash point.
    Trace trace = buggyTrace();
    trace.mutableOps().pop_back();

    Yat yat = makeYat();
    const auto result = yat.runFinal(trace, predicate());
    EXPECT_EQ(result.crashPoints, 1u);
    EXPECT_GT(result.failures, 0u);
}

TEST_F(YatTest, CapTruncatesEnumeration)
{
    Yat yat = makeYat();
    const auto result = yat.run(buggyTrace(), predicate(), 2);
    EXPECT_TRUE(result.truncated);
    EXPECT_LE(result.statesTested, 2u * result.crashPoints);
}

TEST_F(YatTest, StateCountGrowsWithTraceLength)
{
    // Quantifies why exhaustive testing explodes (paper §2.2): more
    // unfenced lines, more states per crash point.
    Yat yat = makeYat();
    const auto small = yat.runFinal(buggyTrace(), predicate());

    Trace longer = buggyTrace();
    // Strip the trailing fence so all lines stay in flight.
    auto &ops = longer.mutableOps();
    ops.pop_back();
    const auto big = yat.runFinal(longer, predicate());
    EXPECT_GT(big.statesTested, small.statesTested);
}

} // namespace
} // namespace pmtest::baseline
