/**
 * @file
 * Differential validation of the representative crash-state oracle:
 * representative mode must account for exactly the states exhaustive
 * mode tests — same covered totals, same failure totals, point by
 * point — while running the recovery predicate far fewer times. Also
 * pins memo equivalence and worker-count determinism.
 */

#include "baseline/yat.hh"

#include <gtest/gtest.h>

#include <cstring>

#include "util/random.hh"

namespace pmtest::baseline
{
namespace
{

/**
 * The yat_test valid-flag protocol, extended with a handful of
 * payload lines so the crash-state space is big enough to prune:
 * recovery reads valid, and only when it is set reads data — the
 * payload lines are never read, so every payload choice collapses
 * into one representative class.
 */
class RepresentativeYatTest : public ::testing::Test
{
  protected:
    static constexpr size_t kPayloadLines = 4;

    RepresentativeYatTest() : pool_(1 << 16)
    {
        data_ = static_cast<uint64_t *>(pool_.at(pool_.alloc(64)));
        valid_ = static_cast<uint64_t *>(pool_.at(pool_.alloc(64)));
        *data_ = 0;
        *valid_ = 0;
        for (size_t i = 0; i < kPayloadLines; i++) {
            payload_[i] =
                static_cast<uint64_t *>(pool_.at(pool_.alloc(64)));
            *payload_[i] = 0;
        }
        initialImage_.assign(pool_.base(),
                             pool_.base() + pool_.size());
    }

    Yat
    makeYat()
    {
        Yat yat(pool_);
        yat.setInitialImage(initialImage_);
        return yat;
    }

    /** Tracked recovery: read valid; only if set, read data. */
    pmem::TrackedPredicate
    predicate()
    {
        const uint64_t data_off = pool_.offsetOf(data_);
        const uint64_t valid_off = pool_.offsetOf(valid_);
        return [data_off, valid_off](pmem::TrackedImage &image) {
            const auto valid = image.readAt<uint64_t>(valid_off);
            if (valid == 0)
                return true;
            return image.readAt<uint64_t>(data_off) == 42;
        };
    }

    /**
     * data=42, valid=1, payload writes, one combined flush, fence —
     * every line is in flight together, so valid may persist before
     * data (the bug) and the payload lines inflate the state space.
     */
    Trace
    buggyTrace()
    {
        *data_ = 42;
        *valid_ = 1;
        Trace t(1, 0);
        t.append(PmOp::write(addr(data_), 8));
        t.append(PmOp::write(addr(valid_), 8));
        for (size_t i = 0; i < kPayloadLines; i++) {
            *payload_[i] = 0x1000 + i;
            t.append(PmOp::write(addr(payload_[i]), 8));
        }
        t.append(PmOp::clwb(addr(data_), 8));
        t.append(PmOp::clwb(addr(valid_), 8));
        t.append(PmOp::sfence());
        return t;
    }

    /** Correctly fenced variant: data durable before valid. */
    Trace
    correctTrace()
    {
        *data_ = 42;
        *valid_ = 1;
        Trace t(1, 0);
        t.append(PmOp::write(addr(data_), 8));
        t.append(PmOp::clwb(addr(data_), 8));
        t.append(PmOp::sfence());
        t.append(PmOp::write(addr(valid_), 8));
        for (size_t i = 0; i < kPayloadLines; i++) {
            *payload_[i] = 0x2000 + i;
            t.append(PmOp::write(addr(payload_[i]), 8));
        }
        t.append(PmOp::clwb(addr(valid_), 8));
        t.append(PmOp::sfence());
        return t;
    }

    Yat::OracleResult
    runMode(const Trace &trace, Yat::OracleOptions::Mode mode,
            size_t workers = 1, bool memoize = true)
    {
        Yat yat = makeYat();
        Yat::OracleOptions opts;
        opts.mode = mode;
        opts.workers = workers;
        opts.memoize = memoize;
        return yat.runOracle(trace, predicate(), opts);
    }

    static uint64_t addr(const void *p)
    {
        return reinterpret_cast<uint64_t>(p);
    }

    pmem::PmPool pool_;
    uint64_t *data_;
    uint64_t *valid_;
    uint64_t *payload_[kPayloadLines];
    std::vector<uint8_t> initialImage_;
};

TEST_F(RepresentativeYatTest, RepresentativeMatchesExhaustiveOnBug)
{
    const Trace trace = buggyTrace();
    const auto ex =
        runMode(trace, Yat::OracleOptions::Mode::Exhaustive);
    const auto re =
        runMode(trace, Yat::OracleOptions::Mode::Representative);

    EXPECT_GT(ex.failures, 0u) << "the protocol is buggy";
    EXPECT_EQ(re.crashPoints, ex.crashPoints);
    EXPECT_EQ(re.statesCovered, ex.statesCovered);
    EXPECT_EQ(re.failures, ex.failures);
    EXPECT_EQ(re.rawStates, ex.rawStates);
    EXPECT_FALSE(re.truncated);
    // Exhaustive tests every covered state; representative fewer.
    EXPECT_EQ(ex.statesTested, ex.statesCovered);
    EXPECT_LT(re.statesTested, ex.statesCovered);
    EXPECT_GT(re.reductionRatio(), 1.0);
}

TEST_F(RepresentativeYatTest, RepresentativeMatchesExhaustiveOnClean)
{
    const Trace trace = correctTrace();
    const auto ex =
        runMode(trace, Yat::OracleOptions::Mode::Exhaustive);
    const auto re =
        runMode(trace, Yat::OracleOptions::Mode::Representative);

    EXPECT_EQ(ex.failures, 0u);
    EXPECT_EQ(re.failures, 0u);
    EXPECT_EQ(re.statesCovered, ex.statesCovered);
}

TEST_F(RepresentativeYatTest, UnreadPayloadLinesCollapse)
{
    // At the crash point right after the payload writes, recovery
    // reads only valid (still 0 on the device), so the 4 payload
    // lines and both flag lines collapse into a handful of classes.
    Trace trace = buggyTrace();
    trace.mutableOps().pop_back(); // drop the fence: all in flight
    Yat yat = makeYat();
    Yat::OracleOptions opts;
    opts.mode = Yat::OracleOptions::Mode::Representative;
    opts.finalOnly = true;
    opts.workers = 1;
    const auto re = yat.runOracle(trace, predicate(), opts);

    opts.mode = Yat::OracleOptions::Mode::Exhaustive;
    const auto ex = yat.runOracle(trace, predicate(), opts);

    EXPECT_EQ(re.statesCovered, ex.statesCovered);
    EXPECT_EQ(re.failures, ex.failures);
    EXPECT_GE(ex.statesCovered, 64u) << "2^6 line combinations";
    // Recovery reads at most valid and data: <= 4 distinguishable
    // classes regardless of the payload lines.
    EXPECT_LE(re.statesTested, 4u);
}

TEST_F(RepresentativeYatTest, MemoizationPreservesVerdicts)
{
    const Trace trace = buggyTrace();
    const auto memo = runMode(
        trace, Yat::OracleOptions::Mode::Representative, 1, true);
    const auto raw = runMode(
        trace, Yat::OracleOptions::Mode::Representative, 1, false);

    EXPECT_EQ(memo.statesCovered, raw.statesCovered);
    EXPECT_EQ(memo.failures, raw.failures);
    EXPECT_EQ(memo.crashPoints, raw.crashPoints);
    EXPECT_EQ(raw.memoHits, 0u);
    // The flag protocol repeats across crash points: the memo must
    // actually fire, and it does not change which classes the DFS
    // visits — only whether the predicate re-runs for them.
    EXPECT_GT(memo.memoHits, 0u);
    EXPECT_EQ(memo.statesTested, raw.statesTested);
}

TEST_F(RepresentativeYatTest, ParallelCountsMatchSerial)
{
    const Trace trace = buggyTrace();
    const auto serial = runMode(
        trace, Yat::OracleOptions::Mode::Representative, 1);
    for (size_t workers : {2, 4, 7}) {
        const auto par = runMode(
            trace, Yat::OracleOptions::Mode::Representative, workers);
        EXPECT_EQ(par.crashPoints, serial.crashPoints);
        EXPECT_EQ(par.statesTested, serial.statesTested);
        EXPECT_EQ(par.statesCovered, serial.statesCovered);
        EXPECT_EQ(par.rawStates, serial.rawStates);
        EXPECT_EQ(par.failures, serial.failures);
        EXPECT_EQ(par.truncated, serial.truncated);
    }
}

TEST_F(RepresentativeYatTest, ParallelExhaustiveMatchesLegacyRun)
{
    // The legacy exhaustive entry point and the oracle in exhaustive
    // mode walk the same canonical space.
    const Trace trace = buggyTrace();
    Yat yat = makeYat();
    const uint64_t data_off = pool_.offsetOf(data_);
    const uint64_t valid_off = pool_.offsetOf(valid_);
    const auto legacy = yat.run(
        trace, [&](std::vector<uint8_t> &image) {
            uint64_t data, valid;
            std::memcpy(&data, image.data() + data_off, 8);
            std::memcpy(&valid, image.data() + valid_off, 8);
            return valid == 0 || data == 42;
        });

    Yat::OracleOptions opts;
    opts.mode = Yat::OracleOptions::Mode::Exhaustive;
    opts.memoize = false;
    opts.workers = 4;
    const auto oracle = yat.runOracle(trace, predicate(), opts);

    EXPECT_EQ(oracle.crashPoints, legacy.crashPoints);
    EXPECT_EQ(oracle.statesTested, legacy.statesTested);
    EXPECT_EQ(oracle.statesCovered, legacy.statesTested);
    EXPECT_EQ(oracle.failures, legacy.failures);
}

TEST_F(RepresentativeYatTest, PerPointCapTruncates)
{
    Yat yat = makeYat();
    Yat::OracleOptions opts;
    opts.mode = Yat::OracleOptions::Mode::Exhaustive;
    opts.perPointCap = 2;
    opts.workers = 1;
    const auto result = yat.runOracle(buggyTrace(), predicate(), opts);
    EXPECT_TRUE(result.truncated);
    EXPECT_LE(result.statesTested, 2u * result.crashPoints);
}

TEST_F(RepresentativeYatTest, EmptyTraceYieldsEmptyResult)
{
    Yat yat = makeYat();
    const Trace empty(1, 0);
    const auto result = yat.runOracle(empty, predicate());
    EXPECT_EQ(result.crashPoints, 0u);
    EXPECT_EQ(result.statesTested, 0u);
    EXPECT_EQ(result.reductionRatio(), 1.0);
}

/**
 * Randomized differential sweep: arbitrary interleavings of writes,
 * writebacks, and fences over a few lines, with a recovery predicate
 * whose read set depends on what it observes. Representative and
 * exhaustive modes must agree exactly on covered and failing totals
 * for every trace.
 */
TEST_F(RepresentativeYatTest, RandomizedDifferentialSweep)
{
    Rng rng(0xd1ffe7);
    uint64_t *lines[2 + kPayloadLines];
    lines[0] = data_;
    lines[1] = valid_;
    for (size_t i = 0; i < kPayloadLines; i++)
        lines[2 + i] = payload_[i];

    for (int iter = 0; iter < 25; iter++) {
        // Rebuild the pristine pool state for each generated trace.
        std::memcpy(pool_.base(), initialImage_.data(),
                    initialImage_.size());
        Trace t(1, 0);
        const size_t ops = 6 + rng.next() % 8;
        for (size_t i = 0; i < ops; i++) {
            const size_t line = rng.next() % (2 + kPayloadLines);
            switch (rng.next() % 4) {
            case 0:
            case 1: {
                *lines[line] = rng.next() % 5; // small value domain
                t.append(PmOp::write(addr(lines[line]), 8));
                break;
            }
            case 2:
                t.append(PmOp::clwb(addr(lines[line]), 8));
                break;
            case 3:
                t.append(PmOp::sfence());
                break;
            }
        }

        Yat yat = makeYat();
        Yat::OracleOptions opts;
        opts.workers = 1;
        opts.mode = Yat::OracleOptions::Mode::Exhaustive;
        opts.memoize = false;
        const auto ex = yat.runOracle(t, predicate(), opts);
        opts.mode = Yat::OracleOptions::Mode::Representative;
        opts.memoize = (iter % 2) == 0;
        const auto re = yat.runOracle(t, predicate(), opts);

        ASSERT_EQ(re.crashPoints, ex.crashPoints) << "iter " << iter;
        ASSERT_EQ(re.statesCovered, ex.statesCovered)
            << "iter " << iter;
        ASSERT_EQ(re.failures, ex.failures) << "iter " << iter;
        ASSERT_LE(re.statesTested, ex.statesTested)
            << "iter " << iter;
    }
}

} // namespace
} // namespace pmtest::baseline
