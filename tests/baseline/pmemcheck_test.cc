#include "baseline/pmemcheck.hh"

#include <gtest/gtest.h>

namespace pmtest::baseline
{
namespace
{

Trace
makeTrace(std::vector<PmOp> ops)
{
    Trace t(1, 0);
    t.append(ops);
    return t;
}

TEST(PmemcheckTest, CleanTraceHasNoFindings)
{
    Pmemcheck tool;
    tool.onTrace(makeTrace({
        PmOp::write(0x10, 64),
        PmOp::clwb(0x10, 64),
        PmOp::sfence(),
    }));
    const auto report = tool.finish();
    EXPECT_TRUE(report.clean()) << report.str();
}

TEST(PmemcheckTest, UnflushedStoreReportedAtExit)
{
    Pmemcheck tool;
    tool.onTrace(makeTrace({PmOp::write(0x10, 64)}));
    const auto report = tool.finish();
    EXPECT_GE(report.failCount(), 1u);
    EXPECT_EQ(report.findings()[0].kind,
              core::FindingKind::NotPersisted);
}

TEST(PmemcheckTest, FlushWithoutFenceStillNotPersistent)
{
    Pmemcheck tool;
    tool.onTrace(makeTrace({
        PmOp::write(0x10, 64),
        PmOp::clwb(0x10, 64),
        // no fence
    }));
    const auto report = tool.finish();
    EXPECT_GE(report.failCount(), 1u);
}

TEST(PmemcheckTest, RedundantFlushWarned)
{
    Pmemcheck tool;
    tool.onTrace(makeTrace({
        PmOp::write(0x10, 64),
        PmOp::clwb(0x10, 64),
        PmOp::clwb(0x10, 64),
        PmOp::sfence(),
    }));
    EXPECT_GE(tool.report().warnCount(), 1u);
}

TEST(PmemcheckTest, IsPersistCheckerHonoured)
{
    Pmemcheck tool;
    tool.onTrace(makeTrace({
        PmOp::write(0x10, 64),
        PmOp::isPersist(0x10, 64), // not persistent here
    }));
    EXPECT_EQ(tool.report().failCount(), 1u);
}

TEST(PmemcheckTest, StateSpansTraces)
{
    // Unlike PMTest's independent traces, pmemcheck's shadow state is
    // process-global: a flush in a later trace covers an earlier
    // store.
    Pmemcheck tool;
    tool.onTrace(makeTrace({PmOp::write(0x10, 64)}));
    tool.onTrace(makeTrace({
        PmOp::clwb(0x10, 64),
        PmOp::sfence(),
    }));
    EXPECT_TRUE(tool.finish().clean());
}

TEST(PmemcheckTest, OpsProcessedCounted)
{
    Pmemcheck tool;
    tool.onTrace(makeTrace({
        PmOp::write(0x10, 8),
        PmOp::clwb(0x10, 8),
        PmOp::sfence(),
    }));
    EXPECT_EQ(tool.opsProcessed(), 3u);
}

} // namespace
} // namespace pmtest::baseline
