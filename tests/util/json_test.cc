#include "util/json.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace pmtest
{
namespace
{

TEST(JsonWriterTest, EmptyContainers)
{
    JsonWriter obj;
    obj.beginObject().endObject();
    EXPECT_EQ(obj.str(), "{}");
    EXPECT_TRUE(obj.balanced());

    JsonWriter arr;
    arr.beginArray().endArray();
    EXPECT_EQ(arr.str(), "[]");
    EXPECT_TRUE(arr.balanced());
}

TEST(JsonWriterTest, CommasAndNesting)
{
    JsonWriter w;
    w.beginObject();
    w.key("a").value(1);
    w.key("b").beginArray().value(2).value(3).endArray();
    w.key("c").beginObject().member("d", true).endObject();
    w.endObject();
    EXPECT_EQ(w.str(), R"({"a":1,"b":[2,3],"c":{"d":true}})");
    EXPECT_TRUE(w.balanced());
}

TEST(JsonWriterTest, ScalarFormats)
{
    JsonWriter w;
    w.beginArray();
    w.value(false);
    w.value(std::numeric_limits<uint64_t>::max());
    w.value(int64_t{-42});
    w.value(3.5, 2);
    w.value("plain");
    w.endArray();
    EXPECT_EQ(w.str(), R"([false,18446744073709551615,-42,3.50,"plain"])");
}

TEST(JsonWriterTest, EscapesControlAndQuotes)
{
    JsonWriter w;
    w.beginObject();
    w.member("k\"ey", "a\\b\nc\td\x01");
    w.endObject();
    EXPECT_EQ(w.str(), "{\"k\\\"ey\":\"a\\\\b\\nc\\td\\u0001\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesRenderZero)
{
    JsonWriter w;
    w.beginArray();
    w.value(std::numeric_limits<double>::quiet_NaN(), 3);
    w.value(std::numeric_limits<double>::infinity(), 3);
    w.endArray();
    EXPECT_EQ(w.str(), "[0.000,0.000]");
}

TEST(JsonWriterTest, BalancedTracksOpenContainers)
{
    JsonWriter w;
    w.beginObject();
    EXPECT_FALSE(w.balanced());
    w.key("x").beginArray();
    EXPECT_FALSE(w.balanced());
    w.endArray();
    w.endObject();
    EXPECT_TRUE(w.balanced());
}

} // namespace
} // namespace pmtest
