#include "util/random.hh"

#include <gtest/gtest.h>

#include <set>

namespace pmtest
{
namespace
{

TEST(RngTest, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; i++)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(RngTest, BelowStaysInRange)
{
    Rng rng(9);
    for (int i = 0; i < 1000; i++)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, RangeInclusive)
{
    Rng rng(5);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; i++) {
        const uint64_t v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all values hit eventually
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; i++) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; i++) {
        EXPECT_FALSE(rng.chance(0, 100));
        EXPECT_TRUE(rng.chance(100, 100));
    }
}

TEST(RngTest, KeyLengthAndCharset)
{
    Rng rng(17);
    const std::string k = rng.key(12);
    EXPECT_EQ(k.size(), 12u);
    for (char c : k) {
        EXPECT_GE(c, 'a');
        EXPECT_LE(c, 'z');
    }
}

} // namespace
} // namespace pmtest
