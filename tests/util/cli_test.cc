/**
 * @file
 * The shared command-line parser: typed flags, strict numeric
 * parsing (no atol leniency), the --help contract, uniform usage
 * errors, and positional-count enforcement — the behavior every tool
 * delegates to.
 */

#include "util/cli.hh"

#include <gtest/gtest.h>

#include <vector>

namespace pmtest::util
{
namespace
{

/** Run @p parser over the arguments, argv[0] included. */
CliStatus
parse(CliParser &parser, std::vector<const char *> args,
      std::vector<std::string> *positionals = nullptr)
{
    args.insert(args.begin(), "tool");
    return parser.parse(static_cast<int>(args.size()),
                        const_cast<char **>(args.data()),
                        positionals);
}

TEST(CliTest, FlagSetsBool)
{
    bool quiet = false;
    CliParser cli("t");
    cli.addFlag("--quiet", &quiet, "h");
    EXPECT_EQ(parse(cli, {"--quiet"}), CliStatus::Ok);
    EXPECT_TRUE(quiet);
}

TEST(CliTest, FlagRejectsValue)
{
    bool quiet = false;
    CliParser cli("t");
    cli.addFlag("--quiet", &quiet, "h");
    testing::internal::CaptureStderr();
    EXPECT_EQ(parse(cli, {"--quiet=1"}), CliStatus::Error);
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("--quiet takes no value"), std::string::npos);
    EXPECT_NE(err.find("usage: t"), std::string::npos);
}

TEST(CliTest, SizeParsesStrictly)
{
    size_t workers = 0;
    CliParser cli("t");
    cli.addSize("--workers", &workers, "h");
    EXPECT_EQ(parse(cli, {"--workers=12"}), CliStatus::Ok);
    EXPECT_EQ(workers, 12u);
}

TEST(CliTest, SizeRejectsMalformedValues)
{
    size_t n = 7;
    CliParser cli("t");
    cli.addSize("--n", &n, "h");
    for (const char *bad :
         {"--n=", "--n=abc", "--n=12x", "--n=1 2", "--n=-1",
          "--n=99999999999999999999999", "--n"}) {
        testing::internal::CaptureStderr();
        EXPECT_EQ(parse(cli, {bad}), CliStatus::Error) << bad;
        const std::string err =
            testing::internal::GetCapturedStderr();
        EXPECT_NE(err.find("invalid value for --n"),
                  std::string::npos)
            << bad;
        EXPECT_EQ(n, 7u) << bad << " wrote through on error";
    }
}

TEST(CliTest, SizeEnforcesMaxAndClampsMin)
{
    size_t port = 0;
    CliParser cli("t");
    cli.addSize("--port", &port, "h", 0, 65535);
    testing::internal::CaptureStderr();
    EXPECT_EQ(parse(cli, {"--port=70000"}), CliStatus::Error);
    EXPECT_NE(testing::internal::GetCapturedStderr().find(
                  "(max 65535)"),
              std::string::npos);

    size_t batch = 0;
    CliParser cli2("t");
    cli2.addSize("--batch", &batch, "h", 1);
    EXPECT_EQ(parse(cli2, {"--batch=0"}), CliStatus::Ok);
    EXPECT_EQ(batch, 1u) << "0 clamps up to 1";
}

TEST(CliTest, StringNeedsValue)
{
    std::string out;
    CliParser cli("t");
    cli.addString("--json", &out, "h");
    EXPECT_EQ(parse(cli, {"--json=a.json"}), CliStatus::Ok);
    EXPECT_EQ(out, "a.json");
    testing::internal::CaptureStderr();
    EXPECT_EQ(parse(cli, {"--json="}), CliStatus::Error);
    EXPECT_NE(testing::internal::GetCapturedStderr().find(
                  "--json needs a value"),
              std::string::npos);
}

TEST(CliTest, OptionalStringTracksPresence)
{
    bool present = false;
    std::string out = "-";
    CliParser cli("t");
    cli.addOptionalString("--fix-hints", &present, &out, "h");
    EXPECT_EQ(parse(cli, {"--fix-hints"}), CliStatus::Ok);
    EXPECT_TRUE(present);
    EXPECT_EQ(out, "-") << "bare flag keeps the default";

    present = false;
    EXPECT_EQ(parse(cli, {"--fix-hints=h.json"}), CliStatus::Ok);
    EXPECT_TRUE(present);
    EXPECT_EQ(out, "h.json");

    testing::internal::CaptureStderr();
    EXPECT_EQ(parse(cli, {"--fix-hints="}), CliStatus::Error);
    EXPECT_NE(testing::internal::GetCapturedStderr().find(
                  "or omit '='"),
              std::string::npos);
}

TEST(CliTest, ChoiceMapsNamesToValues)
{
    int model = 0;
    CliParser cli("t");
    cli.addChoice("--model", &model,
                  {{"x86", 1}, {"hops", 2}, {"arm", 3}}, "h");
    EXPECT_EQ(parse(cli, {"--model=arm"}), CliStatus::Ok);
    EXPECT_EQ(model, 3);

    testing::internal::CaptureStderr();
    EXPECT_EQ(parse(cli, {"--model=sparc"}), CliStatus::Error);
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("invalid value for --model: 'sparc'"),
              std::string::npos);
    EXPECT_NE(err.find("(choices: x86, hops, arm)"),
              std::string::npos);
}

TEST(CliTest, UnknownOptionIsAnError)
{
    CliParser cli("t");
    testing::internal::CaptureStderr();
    EXPECT_EQ(parse(cli, {"--no-such-flag"}), CliStatus::Error);
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("unknown option '--no-such-flag'"),
              std::string::npos);
    EXPECT_NE(err.find("usage:"), std::string::npos);
}

TEST(CliTest, HelpPrintsToStdout)
{
    bool quiet = false;
    CliParser cli("t", "<file>");
    cli.addFlag("--quiet", &quiet, "suppress output");
    testing::internal::CaptureStdout();
    EXPECT_EQ(parse(cli, {"--help"}), CliStatus::Help);
    const std::string out = testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("usage: tool"), std::string::npos)
        << "argv[0] overrides the configured tool name";
    EXPECT_NE(out.find("suppress output"), std::string::npos);
    EXPECT_NE(out.find("<file>"), std::string::npos);
}

TEST(CliTest, PositionalCountsEnforced)
{
    CliParser cli("t", "<in> <out>");
    cli.positionalCount(2, 2);
    std::vector<std::string> pos;
    EXPECT_EQ(parse(cli, {"a", "b"}, &pos), CliStatus::Ok);
    ASSERT_EQ(pos.size(), 2u);
    EXPECT_EQ(pos[0], "a");
    EXPECT_EQ(pos[1], "b");

    testing::internal::CaptureStderr();
    EXPECT_EQ(parse(cli, {"a"}, &pos), CliStatus::Error);
    EXPECT_NE(testing::internal::GetCapturedStderr().find("usage:"),
              std::string::npos);

    testing::internal::CaptureStderr();
    EXPECT_EQ(parse(cli, {"a", "b", "c"}, &pos), CliStatus::Error);
    EXPECT_NE(testing::internal::GetCapturedStderr().find(
                  "unexpected argument 'c'"),
              std::string::npos);
}

TEST(CliTest, FlagsAndPositionalsInterleave)
{
    bool quiet = false;
    CliParser cli("t", "<file>...");
    cli.addFlag("--quiet", &quiet, "h");
    cli.positionalCount(1);
    std::vector<std::string> pos;
    EXPECT_EQ(parse(cli, {"a", "--quiet", "b"}, &pos), CliStatus::Ok);
    EXPECT_TRUE(quiet);
    ASSERT_EQ(pos.size(), 2u);
    EXPECT_EQ(pos[1], "b");
}

TEST(CliTest, UsageErrorReportsPostParseCombos)
{
    CliParser cli("t");
    testing::internal::CaptureStderr();
    EXPECT_EQ(cli.usageError("--a requires --b"), CliStatus::Error);
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("--a requires --b"), std::string::npos);
    EXPECT_NE(err.find("usage: t"), std::string::npos);
}

TEST(CliTest, ExitCodesMatchTheToolContract)
{
    EXPECT_EQ(cliExitCode(CliStatus::Help), 0);
    EXPECT_EQ(cliExitCode(CliStatus::Error), 2);
}

} // namespace
} // namespace pmtest::util
