#include "util/logging.hh"

#include <gtest/gtest.h>

namespace pmtest
{
namespace
{

TEST(LoggingTest, ThresholdRoundTrip)
{
    const LogLevel before = logThreshold();
    setLogThreshold(LogLevel::Error);
    EXPECT_EQ(logThreshold(), LogLevel::Error);
    setLogThreshold(before);
}

TEST(LoggingTest, SilencerRestoresThreshold)
{
    const LogLevel before = setLogThreshold(LogLevel::Info);
    {
        ScopedLogSilencer quiet;
        EXPECT_EQ(logThreshold(), LogLevel::None);
    }
    EXPECT_EQ(logThreshold(), LogLevel::Info);
    setLogThreshold(before);
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash)
{
    ScopedLogSilencer quiet;
    inform("should be dropped");
    warn("should be dropped");
}

} // namespace
} // namespace pmtest
