#include "util/stats.hh"

#include <gtest/gtest.h>

namespace pmtest
{
namespace
{

TEST(StatsTest, EmptyReturnsZeros)
{
    Stats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.geomean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(StatsTest, MeanMinMax)
{
    Stats s;
    s.add(1.0);
    s.add(2.0);
    s.add(6.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(StatsTest, Geomean)
{
    Stats s;
    s.add(2.0);
    s.add(8.0);
    EXPECT_NEAR(s.geomean(), 4.0, 1e-9);
}

TEST(TextTableTest, AlignsColumns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"long-name", "22"});
    const std::string out = t.str();
    // All rows should be present, header first.
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    // Header appears before data.
    EXPECT_LT(out.find("name"), out.find("long-name"));
}

TEST(FmtDoubleTest, Precision)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(2.0, 0), "2");
}

} // namespace
} // namespace pmtest
