/**
 * @file
 * Table 1 reproduction: the tool landscape. Prints the qualitative
 * capability matrix and backs the Speed column with measurements:
 *
 *  - end-to-end slowdown of the same real workload (redis-lite + LRU
 *    client) under PMTest and under the pmemcheck stand-in (which
 *    includes the modelled Valgrind whole-program tax);
 *  - the Yat-style exhaustive tester on a recorded low-level
 *    workload, with its per-state replay cost and the state-space
 *    growth that makes uncapped runs impractical (the paper quotes
 *    >5 years for ~100k PM operations).
 */

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "baseline/yat.hh"
#include "bench/bench_util.hh"
#include "core/api.hh"
#include "pmds/hashmap_atomic.hh"
#include "util/clock.hh"
#include "workloads/clients.hh"
#include "workloads/tool_harness.hh"

namespace
{

using namespace pmtest;
using namespace pmtest::workloads;

/** Record the traces of a small low-level hashmap workload. */
std::vector<Trace>
recordWorkload(txlib::ObjPool &pool, size_t ops)
{
    std::vector<Trace> traces;
    pmtestInit(Config{});
    pmtestSetTraceSink(
        [&](Trace &&trace) { traces.push_back(std::move(trace)); });
    pmtestThreadInit();
    pmtestStart();

    pmds::HashmapAtomic map(pool);
    std::vector<uint8_t> value(64, 0x2f);
    for (size_t i = 0; i < ops; i++)
        map.insert(1 + i * 3, value.data(), value.size());

    pmtestSendTrace();
    pmtestExit();
    return traces;
}

} // namespace

int
main()
{
    bench::banner("Table 1", "testing-tool comparison");

    std::printf(
        "Tool            Speed   Flexibility  Target software   "
        "Kernel?\n"
        "Yat             low     low          PMFS              "
        "yes\n"
        "Pmemcheck       medium  low          PMDK              "
        "no\n"
        "PMTest          high    high         any CCS           "
        "yes\n\n");

    // --- End-to-end speed on a real workload -----------------------
    {
        const StagedWorkload redis = [](bool checkers) {
            auto pool = std::make_shared<txlib::ObjPool>(32 << 20);
            auto server =
                std::make_shared<RedisLite>(*pool, /*capacity=*/200);
            server->emitCheckers = checkers;
            return [pool, server] {
                ClientConfig config;
                config.ops = 1500 * bench::scale();
                config.keySpace = 300;
                config.valueSize = 128;
                runRedisLruClient(*server, config);
            };
        };
        auto best = [&](Tool tool) {
            double sec = 1e30;
            for (int rep = 0; rep < 3; rep++)
                sec = std::min(sec, runStaged(tool, redis).seconds);
            return sec;
        };
        const double native = best(Tool::Native);
        const double pmtest = best(Tool::PMTest);
        const double pmemcheck = best(Tool::Pmemcheck);
        std::printf("End-to-end, redis-lite + LRU client:\n");
        std::printf("  PMTest    : %5.2fx slowdown\n",
                    pmtest / native);
        std::printf("  Pmemcheck : %5.2fx slowdown (incl. modelled "
                    "DBI tax)\n\n",
                    pmemcheck / native);
    }

    // --- Yat: exhaustive enumeration on a recorded workload --------
    {
        txlib::ObjPool pool(2u << 20);
        const auto traces =
            recordWorkload(pool, 50 * bench::scale());
        size_t total_ops = 0;
        for (const auto &t : traces)
            total_ops += t.size();
        std::printf("Yat, recorded low-level workload (%zu traces, "
                    "%zu PM ops):\n",
                    traces.size(), total_ops);

        baseline::Yat yat(pool.pmPool());
        constexpr uint64_t kCap = 16;
        Timer timer;
        uint64_t tested = 0, points = 0;
        const size_t sample = std::min<size_t>(traces.size(), 8);
        for (size_t i = 0; i < sample; i++) {
            const auto result = yat.run(
                traces[i],
                [](std::vector<uint8_t> &) { return true; }, kCap);
            tested += result.statesTested;
            points += result.crashPoints;
        }
        const double sec = timer.elapsedSec();
        std::printf("  %zu/%zu traces, %llu crash points, %llu "
                    "states (capped at %llu/point): %.2f s — %.1f "
                    "us/state\n",
                    sample, traces.size(),
                    static_cast<unsigned long long>(points),
                    static_cast<unsigned long long>(tested),
                    static_cast<unsigned long long>(kCap), sec,
                    sec * 1e6 / std::max<uint64_t>(tested, 1));
        std::printf("  Uncapped, each unfenced line doubles the "
                    "space per crash point; the paper reports >5 "
                    "years for ~100k PM operations.\n");
    }
    return 0;
}
