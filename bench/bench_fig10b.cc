/**
 * @file
 * Fig. 10b reproduction: PMTest overhead breakdown into "framework"
 * (operation tracking + trace plumbing, measured by running PMTest
 * with no checkers annotated) and "checker" (the extra cost once the
 * structures emit their checker annotations).
 *
 * Expected shape (paper): because checking is decoupled onto worker
 * threads, checkers contribute only a minority of the total overhead
 * (paper: 18.9–37.8%).
 */

#include <algorithm>
#include <vector>

#include "bench/bench_util.hh"
#include "workloads/microbench.hh"

int
main()
{
    using namespace pmtest;
    using namespace pmtest::workloads;

    bench::banner("Fig. 10b",
                  "PMTest overhead breakdown: framework vs checkers");

    const size_t insertions = 1000 * bench::scale();
    constexpr int kReps = 3;
    const std::vector<size_t> tx_sizes = {64, 256, 1024, 4096};

    TextTable table;
    table.header({"structure", "txsize(B)", "framework", "+checkers",
                  "checker-share"});

    Stats share_all;
    uint64_t steals = 0, stall_ns = 0;
    for (pmds::MapKind kind : pmds::kAllMapKinds) {
        for (size_t tx_size : tx_sizes) {
            MicrobenchConfig config;
            config.kind = kind;
            config.insertions = insertions;
            config.valueSize = tx_size;

            auto best = [&](Tool tool) {
                double sec = 1e30;
                for (int rep = 0; rep < kReps; rep++) {
                    const auto run = runMicrobench(config, tool);
                    sec = std::min(sec, run.seconds);
                    if (tool == Tool::PMTest) {
                        steals += run.poolStats.steals;
                        stall_ns += run.poolStats.producerStallNanos;
                    }
                }
                return sec;
            };
            const double t_native = best(Tool::Native);
            const double t_framework = best(Tool::PMTestNoCheck);
            const double t_full = best(Tool::PMTest);

            const double oh_framework = t_framework - t_native;
            const double oh_full = t_full - t_native;
            const double oh_checker =
                std::max(0.0, oh_full - oh_framework);
            const double share =
                oh_full > 0 ? oh_checker / oh_full : 0.0;
            share_all.add(share * 100.0);

            table.row({pmds::mapKindName(kind),
                       std::to_string(tx_size),
                       bench::fmtSlowdown(t_framework / t_native),
                       bench::fmtSlowdown(t_full / t_native),
                       fmtDouble(share * 100.0, 1) + "%"});
        }
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("Checker share of total overhead: avg %.1f%% "
                "(paper: 18.9-37.8%%)\n",
                share_all.mean());
    std::printf("dispatch: %llu steals, %.1f ms producer stall across "
                "the PMTest runs\n",
                static_cast<unsigned long long>(steals),
                static_cast<double>(stall_ns) * 1e-6);
    return 0;
}
