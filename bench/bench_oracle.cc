/**
 * @file
 * Ground-truth oracle harness: exhaustive vs representative vs
 * parallel crash-state exploration on the Table-1 workload shapes,
 * emitting JSON for CI trend tracking.
 *
 * Gated sections report the *states-tested reduction* in the
 * "speedup" field — verdicts obtained by exhaustive enumeration per
 * verdict the representative oracle needs for the same coverage.
 * That ratio is a property of the workload and the recovery read
 * set, not of the machine, so CI gates it exactly like the kernel
 * speedups (bench/check_kernel_regression.py against
 * bench/oracle_baseline.json). The parallel section's wall-clock
 * speedup IS machine-dependent and is deliberately left out of the
 * baseline — the gate prints it as a note.
 *
 * Structure-level sections (txlib / atomic map / PMFS) run on spaces
 * of 2^20..2^30+ states where exhaustive enumeration is infeasible;
 * their reduction is statesCovered/statesTested of one representative
 * pass, and their exhaustive column is reported as the covered total.
 *
 * Flags:
 *  --smoke        shrink the wall-clock sections for CI.
 *  --json=PATH    where to write the JSON (default BENCH_oracle.json).
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "baseline/yat.hh"
#include "bench/bench_util.hh"
#include "core/api.hh"
#include "pmds/hashmap_atomic.hh"
#include "pmds/hashmap_tx.hh"
#include "pmfs/pmfs.hh"
#include "txlib/undo_log.hh"
#include "util/cli.hh"
#include "util/clock.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace
{

using namespace pmtest;
using baseline::Yat;
using ByteMap = std::map<uint64_t, std::vector<uint8_t>>;

/** One measured section; "reduction" is what CI gates. */
struct Section
{
    std::string name;
    uint64_t exhaustiveStates = 0; ///< tested, or covered when inf.
    uint64_t representativeStates = 0;
    double reduction = 0; ///< exhaustiveStates / representativeStates
    double wallExhaustiveMs = -1; ///< <0 = not run (infeasible)
    double wallRepresentativeMs = 0;
};

/**
 * The valid-flag protocol with @p payload_lines extra in-flight
 * lines — the microbenchmark shape whose crash-state space grows
 * 2^lines per crash point (paper §2.2).
 */
struct FlagWorkload
{
    explicit FlagWorkload(size_t payload_lines)
        : pool(1 << 16), payloadLines(payload_lines)
    {
        data = static_cast<uint64_t *>(pool.at(pool.alloc(64)));
        valid = static_cast<uint64_t *>(pool.at(pool.alloc(64)));
        *data = 0;
        *valid = 0;
        payload.resize(payload_lines);
        for (auto &p : payload) {
            p = static_cast<uint64_t *>(pool.at(pool.alloc(64)));
            *p = 0;
        }
        initial.assign(pool.base(), pool.base() + pool.size());
    }

    Trace
    trace()
    {
        *data = 42;
        *valid = 1;
        Trace t(1, 0);
        t.append(PmOp::write(addr(data), 8));
        t.append(PmOp::write(addr(valid), 8));
        for (size_t i = 0; i < payload.size(); i++) {
            *payload[i] = 0x1000 + i;
            t.append(PmOp::write(addr(payload[i]), 8));
        }
        t.append(PmOp::clwb(addr(data), 8));
        t.append(PmOp::clwb(addr(valid), 8));
        t.append(PmOp::sfence());
        return t;
    }

    pmem::TrackedPredicate
    predicate() const
    {
        const uint64_t data_off = pool.offsetOf(data);
        const uint64_t valid_off = pool.offsetOf(valid);
        return [data_off, valid_off](pmem::TrackedImage &image) {
            if (image.readAt<uint64_t>(valid_off) == 0)
                return true;
            return image.readAt<uint64_t>(data_off) == 42;
        };
    }

    Yat
    yat()
    {
        Yat y(pool);
        y.setInitialImage(initial);
        return y;
    }

    static uint64_t addr(const void *p)
    {
        return reinterpret_cast<uint64_t>(p);
    }

    pmem::PmPool pool;
    size_t payloadLines;
    uint64_t *data = nullptr;
    uint64_t *valid = nullptr;
    std::vector<uint64_t *> payload;
    std::vector<uint8_t> initial;
};

Yat::OracleOptions
options(Yat::OracleOptions::Mode mode, size_t workers = 1)
{
    Yat::OracleOptions opts;
    opts.mode = mode;
    opts.workers = workers;
    return opts;
}

/** Exhaustive vs representative on the flag-protocol trace. */
Section
measureFlagTrace(size_t payload_lines)
{
    FlagWorkload w(payload_lines);
    const Trace trace = w.trace();
    Yat yat = w.yat();

    Timer timer;
    const auto ex = yat.runOracle(
        trace, w.predicate(),
        options(Yat::OracleOptions::Mode::Exhaustive));
    const double ex_ms = timer.elapsedNs() * 1e-6;

    timer.reset();
    const auto re = yat.runOracle(
        trace, w.predicate(),
        options(Yat::OracleOptions::Mode::Representative));
    const double re_ms = timer.elapsedNs() * 1e-6;

    if (ex.statesCovered != re.statesCovered ||
        ex.failures != re.failures)
        panic("representative/exhaustive verdict divergence");

    Section s;
    s.name = "flag-trace-" + std::to_string(payload_lines) + "-lines";
    s.exhaustiveStates = ex.statesTested;
    s.representativeStates = re.statesTested;
    s.reduction = double(ex.statesTested) / double(re.statesTested);
    s.wallExhaustiveMs = ex_ms;
    s.wallRepresentativeMs = re_ms;
    return s;
}

/** Representative-only structure-level section. */
Section
measurePool(const char *name, pmem::PmPool &pool,
            const pmem::TrackedPredicate &predicate)
{
    Timer timer;
    const auto result = Yat::explorePool(
        pool, predicate,
        options(Yat::OracleOptions::Mode::Representative));
    const double re_ms = timer.elapsedNs() * 1e-6;

    if (result.failures != 0)
        panic("clean workload failed ground-truth validation");

    Section s;
    s.name = name;
    s.exhaustiveStates = result.statesCovered;
    s.representativeStates = result.statesTested;
    s.reduction = result.reductionRatio();
    s.wallRepresentativeMs = re_ms;
    return s;
}

Section
measureTxlibOpenTx()
{
    pmtestInit(Config{});
    pmtestThreadInit();
    txlib::ObjPool pool(4 << 20, /*simulate_crashes=*/true);
    pmtestAttachPool(&pool.pmPool());
    pmds::HashmapTx map(pool);
    ByteMap reference;
    const std::vector<uint8_t> value(40, 0x5a);
    for (uint64_t k = 1; k <= 12; k++) {
        map.insert(k, value.data(), value.size());
        reference[k] = value;
    }
    pool.txBegin();
    for (int i = 0; i < 24; i++) {
        auto *obj = static_cast<uint64_t *>(pool.txAllocRaw(64));
        uint64_t payload[8];
        for (int w = 0; w < 8; w++)
            payload[w] = 0x4000 * (i + 1) + w + 1;
        pool.txWrite(obj, payload, sizeof(payload));
    }

    Section s = measurePool(
        "txlib-open-tx", pool.pmPool(),
        [&](pmem::TrackedImage &image) {
            txlib::recoverImage(image);
            ByteMap walked;
            if (!pmds::HashmapTx::readImage(pool.pmPool(),
                                            image.raw(), &walked,
                                            image.tracker()))
                return false;
            return walked == reference;
        });
    pool.txCommit();
    pmtestDetachPool();
    pmtestExit();
    return s;
}

Section
measureAtomicMapStaged()
{
    pmtestInit(Config{});
    pmtestThreadInit();
    txlib::ObjPool pool(4 << 20, /*simulate_crashes=*/true);
    pmtestAttachPool(&pool.pmPool());
    pmds::HashmapAtomic map(pool);
    const std::vector<uint8_t> value(32, 0x4c);
    for (uint64_t k = 1; k <= 15; k++)
        map.insert(k, value.data(), value.size());
    for (int i = 0; i < 30; i++) {
        auto *buf = static_cast<uint64_t *>(pool.allocRaw(64));
        uint64_t payload[8];
        for (int w = 0; w < 8; w++)
            payload[w] = 0xbeef0000 + 8 * i + w;
        pmStore(buf, payload, sizeof(payload));
    }

    Section s = measurePool(
        "atomic-map-staged", pool.pmPool(),
        [&](pmem::TrackedImage &image) {
            uint64_t recounted = 0;
            if (!pmds::HashmapAtomic::recoverImage(
                    pool.pmPool(), image.raw(), &recounted,
                    image.tracker()))
                return false;
            return recounted == 15;
        });
    pmtestDetachPool();
    pmtestExit();
    return s;
}

Section
measurePmfsJournal()
{
    pmtestInit(Config{});
    pmtestThreadInit();
    pmfs::Pmfs fs(4 << 20, /*simulate_crashes=*/true,
                  /*use_fifo=*/false);
    pmtestAttachPool(&fs.pmPool());
    fs.faults.skipDataFlush = true;
    const std::string payload(700, 'q');
    for (int i = 0; i < 3; i++) {
        const int ino = fs.create("bench" + std::to_string(i));
        if (ino < 0 ||
            fs.write(ino, 0, payload.data(), payload.size()) !=
                static_cast<long>(payload.size()))
            panic("pmfs setup failed");
    }

    Section s = measurePool(
        "pmfs-journal", fs.pmPool(),
        [&](pmem::TrackedImage &image) {
            pmfs::Pmfs::recoverImage(image);
            const auto sb = image.readAt<pmfs::Superblock>(0);
            if (sb.magic != pmfs::Superblock::kMagic)
                return false;
            size_t in_use = 0;
            for (uint64_t i = 0; i < sb.nInodes; i++) {
                const auto ino = image.readAt<pmfs::Inode>(
                    sb.inodeTableOffset + i * sizeof(pmfs::Inode));
                if (ino.inUse)
                    in_use++;
            }
            return in_use == 3;
        });
    pmtestDetachPool();
    pmtestExit();
    return s;
}

/** Cross-crash-point memo reuse on the flag trace (serial). */
Section
measureMemoReuse(size_t payload_lines)
{
    FlagWorkload w(payload_lines);
    const Trace trace = w.trace();
    Yat yat = w.yat();

    auto opts = options(Yat::OracleOptions::Mode::Representative);
    opts.memoize = false;
    Timer timer;
    const auto raw = yat.runOracle(trace, w.predicate(), opts);
    const double raw_ms = timer.elapsedNs() * 1e-6;

    opts.memoize = true;
    timer.reset();
    const auto memo = yat.runOracle(trace, w.predicate(), opts);
    const double memo_ms = timer.elapsedNs() * 1e-6;

    if (memo.failures != raw.failures)
        panic("memoization changed the failure total");

    // Reduction = predicate executions avoided: every class still
    // gets a verdict, the memo just serves repeats from the cache.
    Section s;
    s.name = "memo-cross-point";
    s.exhaustiveStates = raw.statesTested;
    s.representativeStates = memo.statesTested - memo.memoHits;
    s.reduction = double(s.exhaustiveStates) /
                  double(s.representativeStates);
    s.wallExhaustiveMs = raw_ms;
    s.wallRepresentativeMs = memo_ms;
    return s;
}

/**
 * Wall-clock crash-point parallelism (machine-dependent; not in the
 * committed baseline). Exhaustive mode on a wide flag trace gives
 * each crash point enough work for the team to matter.
 */
Section
measureParallel(size_t payload_lines)
{
    FlagWorkload w(payload_lines);
    const Trace trace = w.trace();
    Yat yat = w.yat();

    auto opts = options(Yat::OracleOptions::Mode::Exhaustive, 1);
    opts.memoize = false;
    Timer timer;
    const auto serial = yat.runOracle(trace, w.predicate(), opts);
    const double serial_ms = timer.elapsedNs() * 1e-6;

    opts.workers = 0; // size from util::defaultPipelineLayout
    timer.reset();
    const auto par = yat.runOracle(trace, w.predicate(), opts);
    const double par_ms = timer.elapsedNs() * 1e-6;

    if (par.statesTested != serial.statesTested ||
        par.failures != serial.failures)
        panic("parallel merge diverged from serial counts");

    Section s;
    s.name = "parallel-crash-points";
    s.exhaustiveStates = serial.statesTested;
    s.representativeStates = par.statesTested;
    s.reduction = serial_ms / par_ms; // wall-clock speedup
    s.wallExhaustiveMs = serial_ms;
    s.wallRepresentativeMs = par_ms;
    return s;
}

void
printSection(const Section &s)
{
    if (s.wallExhaustiveMs >= 0) {
        std::printf("%-22s %12llu states %10.2f ms exhaustive\n",
                    s.name.c_str(),
                    static_cast<unsigned long long>(
                        s.exhaustiveStates),
                    s.wallExhaustiveMs);
    } else {
        std::printf("%-22s %12llu states    (exhaustive "
                    "infeasible)\n",
                    s.name.c_str(),
                    static_cast<unsigned long long>(
                        s.exhaustiveStates));
    }
    std::printf("%-22s %12llu tested %10.2f ms   -> %.1fx\n", "",
                static_cast<unsigned long long>(
                    s.representativeStates),
                s.wallRepresentativeMs, s.reduction);
}

bool
writeJson(const std::string &path,
          const std::vector<Section> &sections, bool smoke)
{
    JsonWriter w;
    w.beginObject();
    w.member("bench", "oracle");
    w.member("smoke", smoke);
    w.member("scale", pmtest::bench::scale());
    w.key("sections").beginArray();
    for (const Section &s : sections) {
        w.beginObject();
        w.member("name", s.name);
        w.member("exhaustive_states", s.exhaustiveStates);
        w.member("representative_states", s.representativeStates);
        w.member("speedup", s.reduction, 3);
        if (s.wallExhaustiveMs >= 0)
            w.member("wall_exhaustive_ms", s.wallExhaustiveMs, 3);
        w.member("wall_representative_ms", s.wallRepresentativeMs,
                 3);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return pmtest::bench::writeJsonFile(path, w);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_path = "BENCH_oracle.json";
    pmtest::util::CliParser cli("bench_oracle");
    cli.addFlag("--smoke", &smoke, "tiny deterministic run for CI");
    cli.addString("--json", &json_path,
                  "result document path (default BENCH_oracle.json)");
    cli.positionalCount(0, 0);
    const auto cli_status = cli.parse(argc, argv);
    if (cli_status != pmtest::util::CliStatus::Ok)
        return pmtest::util::cliExitCode(cli_status);

    pmtest::bench::banner(
        "Ground-truth oracle",
        "exhaustive vs representative vs parallel crash-state "
        "exploration");

    // The reduction sections are deterministic workload properties —
    // identical in smoke and full runs, so one committed baseline
    // (bench/oracle_baseline.json) serves both. Only the wall-clock
    // parallel section scales down under --smoke.
    std::vector<Section> sections;
    sections.push_back(measureFlagTrace(10));
    sections.push_back(measureTxlibOpenTx());
    sections.push_back(measureAtomicMapStaged());
    sections.push_back(measurePmfsJournal());
    sections.push_back(measureMemoReuse(10));
    sections.push_back(measureParallel(smoke ? 11 : 15));
    for (const Section &s : sections)
        printSection(s);

    if (!writeJson(json_path, sections, smoke))
        return 2;
    return 0;
}
