/**
 * @file
 * Table 5 reproduction: the synthetic bug campaign. 42 bugs across
 * the six classes are injected into the microbenchmark structures,
 * the Mnemosyne-style library and the mini PMFS; every one must be
 * detected by the checkers the paper prescribes (18 low-level
 * checkers for the low-level classes, 2 transaction checker pairs for
 * the transactional classes).
 */

#include "bench/bench_util.hh"
#include "util/clock.hh"
#include "workloads/bug_injector.hh"

int
main()
{
    using namespace pmtest;
    using namespace pmtest::workloads;

    bench::banner("Table 5", "synthetic crash-consistency bug campaign");

    Timer timer;
    const auto cases = buildTable5Campaign();
    const auto outcome = runCampaign(cases);
    const double sec = timer.elapsedSec();

    TextTable table;
    table.header({"bug class", "#cases", "#detected"});
    const char *order[] = {"ordering",  "writeback", "perf-writeback",
                           "backup",    "completion", "perf-log"};
    for (const char *category : order) {
        const auto it = outcome.byCategory.find(category);
        if (it == outcome.byCategory.end())
            continue;
        table.row({category, std::to_string(it->second.first),
                   std::to_string(it->second.second)});
    }
    table.row({"TOTAL", std::to_string(outcome.total),
               std::to_string(outcome.detected)});
    std::printf("%s\n", table.str().c_str());

    if (!outcome.missed.empty()) {
        std::printf("MISSED cases:\n");
        for (const auto &id : outcome.missed)
            std::printf("  %s\n", id.c_str());
    } else {
        std::printf("All injected bugs detected "
                    "(paper: 42/42 detected).\n");
    }
    std::printf("Campaign wall time: %.2f s\n", sec);
    return outcome.missed.empty() ? 0 : 1;
}
