/**
 * @file
 * Ablation A4 (google-benchmark): raw checking-engine throughput.
 * Measures operations checked per second as a function of trace
 * length, write-range size and checker density — the numbers behind
 * the claim that validation is cheap enough to run at development
 * time (paper §2.2's "fast" requirement). Also measures the
 * worker-pool dispatch overhead per trace.
 *
 * Two further axes ablate the checking-kernel rewrite: reusing one
 * engine's trace state across traces versus constructing a fresh
 * engine per trace (the pre-rewrite pool behaviour), and the
 * model-templated dispatch versus per-op virtual dispatch.
 */

#include <benchmark/benchmark.h>

#include "core/engine.hh"
#include "core/engine_pool.hh"
#include "util/random.hh"

namespace
{

using namespace pmtest;
using namespace pmtest::core;

/** A well-formed trace: N protocol rounds + a checker per round. */
Trace
makeTrace(size_t rounds, size_t range_size, uint64_t seed)
{
    Rng rng(seed);
    Trace trace(seed, 0);
    for (size_t i = 0; i < rounds; i++) {
        const uint64_t addr = 64 * rng.below(1024);
        trace.append(PmOp::write(addr, range_size));
        trace.append(PmOp::clwb(addr, range_size));
        trace.append(PmOp::sfence());
        trace.append(PmOp::isPersist(addr, range_size));
    }
    return trace;
}

void
BM_EngineThroughput(benchmark::State &state)
{
    const Trace trace =
        makeTrace(static_cast<size_t>(state.range(0)), 64, 42);
    Engine engine(ModelKind::X86);
    for (auto _ : state) {
        const Report report = engine.check(trace);
        benchmark::DoNotOptimize(report.failCount());
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}

void
BM_EngineWideRanges(benchmark::State &state)
{
    // Range size does not change the op count — coarse tracking is
    // insensitive to how many bytes each operation covers.
    const Trace trace =
        makeTrace(256, static_cast<size_t>(state.range(0)), 42);
    Engine engine(ModelKind::X86);
    for (auto _ : state) {
        const Report report = engine.check(trace);
        benchmark::DoNotOptimize(report.failCount());
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}

void
BM_EngineCheckerDensity(benchmark::State &state)
{
    // Extra isPersist checkers per round (0, 1, 4, 16).
    const size_t extra = static_cast<size_t>(state.range(0));
    Rng rng(7);
    Trace trace(1, 0);
    for (size_t i = 0; i < 256; i++) {
        const uint64_t addr = 64 * rng.below(1024);
        trace.append(PmOp::write(addr, 64));
        trace.append(PmOp::clwb(addr, 64));
        trace.append(PmOp::sfence());
        for (size_t c = 0; c < extra; c++)
            trace.append(PmOp::isPersist(addr, 64));
    }
    Engine engine(ModelKind::X86);
    for (auto _ : state) {
        const Report report = engine.check(trace);
        benchmark::DoNotOptimize(report.failCount());
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}

void
BM_PoolDispatch(benchmark::State &state)
{
    // Per-trace cost of the decoupled path: queue, wake, check, ack.
    const Trace trace = makeTrace(4, 64, 42);
    EnginePool pool(ModelKind::X86,
                    static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        pool.submit(trace);
    }
    pool.drain();
    state.SetItemsProcessed(state.iterations() * trace.size());
}

void
BM_EngineStateReused(benchmark::State &state)
{
    // One engine across all traces: shadow-memory storage, exclusion
    // lists and TX bookkeeping keep their capacity between checks.
    const Trace trace =
        makeTrace(static_cast<size_t>(state.range(0)), 64, 42);
    Engine engine(ModelKind::X86);
    for (auto _ : state) {
        const Report report = engine.check(trace);
        benchmark::DoNotOptimize(report.failCount());
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}

void
BM_EngineStateFresh(benchmark::State &state)
{
    // A new engine per trace: every check starts from cold storage —
    // the allocation profile the pool had before state reuse.
    const Trace trace =
        makeTrace(static_cast<size_t>(state.range(0)), 64, 42);
    for (auto _ : state) {
        Engine engine(ModelKind::X86);
        const Report report = engine.check(trace);
        benchmark::DoNotOptimize(report.failCount());
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}

void
BM_EngineDispatchTemplated(benchmark::State &state)
{
    const Trace trace =
        makeTrace(static_cast<size_t>(state.range(0)), 64, 42);
    Engine engine(ModelKind::X86, Engine::Dispatch::Templated);
    for (auto _ : state) {
        const Report report = engine.check(trace);
        benchmark::DoNotOptimize(report.failCount());
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}

void
BM_EngineDispatchVirtual(benchmark::State &state)
{
    // Per-op virtual call into the model (the pre-rewrite kernel).
    const Trace trace =
        makeTrace(static_cast<size_t>(state.range(0)), 64, 42);
    Engine engine(ModelKind::X86, Engine::Dispatch::Virtual);
    for (auto _ : state) {
        const Report report = engine.check(trace);
        benchmark::DoNotOptimize(report.failCount());
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}

} // namespace

BENCHMARK(BM_EngineThroughput)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_EngineWideRanges)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_EngineCheckerDensity)->Arg(0)->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(BM_PoolDispatch)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_EngineStateReused)->Arg(4)->Arg(64)->Arg(1024);
BENCHMARK(BM_EngineStateFresh)->Arg(4)->Arg(64)->Arg(1024);
BENCHMARK(BM_EngineDispatchTemplated)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_EngineDispatchVirtual)->Arg(16)->Arg(256)->Arg(4096);

BENCHMARK_MAIN();
