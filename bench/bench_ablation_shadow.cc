/**
 * @file
 * Ablation A1 (google-benchmark): the shadow-memory representation.
 * The paper stores persistency status in an interval tree keyed by
 * address ranges (O(log n) updates at operation granularity); the
 * natural alternative — per-byte shadow state, as binary
 * instrumentation tools keep — pays for every byte of every store.
 * This benchmark applies the same synthetic PM-operation stream to
 * both and reports ns/op as the range size grows.
 */

#include <benchmark/benchmark.h>

#include <unordered_map>

#include "core/shadow_memory.hh"
#include "util/random.hh"

namespace
{

using namespace pmtest;
using namespace pmtest::core;

/** Synthetic op stream: write/clwb/fence over a working set. */
struct OpStream
{
    struct Op
    {
        int kind; // 0 = write, 1 = clwb, 2 = fence
        uint64_t addr;
        uint64_t size;
    };

    std::vector<Op> ops;

    OpStream(size_t n_ops, uint64_t range_size, uint64_t seed)
    {
        Rng rng(seed);
        for (size_t i = 0; i < n_ops; i++) {
            const uint64_t dice = rng.below(10);
            const uint64_t addr = rng.below(1 << 20);
            if (dice < 5) {
                ops.push_back({0, addr, range_size});
            } else if (dice < 9) {
                ops.push_back({1, addr, range_size});
            } else {
                ops.push_back({2, 0, 0});
            }
        }
    }
};

void
BM_IntervalShadow(benchmark::State &state)
{
    const OpStream stream(4096, state.range(0), 42);
    for (auto _ : state) {
        ShadowMemory shadow;
        for (const auto &op : stream.ops) {
            switch (op.kind) {
              case 0:
                shadow.recordWrite(AddrRange(op.addr, op.size));
                break;
              case 1:
                shadow.recordClwb(AddrRange(op.addr, op.size));
                break;
              default:
                shadow.bumpTimestamp();
                shadow.completePendingFlushes();
            }
        }
        benchmark::DoNotOptimize(shadow.entryCount());
    }
    state.SetItemsProcessed(state.iterations() * stream.ops.size());
}

/** Per-byte baseline: the granularity binary instrumentation pays. */
void
BM_ByteShadow(benchmark::State &state)
{
    const OpStream stream(4096, state.range(0), 42);
    for (auto _ : state) {
        // byte -> (epoch, flushed?)
        std::unordered_map<uint64_t, std::pair<uint64_t, bool>> shadow;
        uint64_t epoch = 0;
        for (const auto &op : stream.ops) {
            switch (op.kind) {
              case 0:
                for (uint64_t a = op.addr; a < op.addr + op.size; a++)
                    shadow[a] = {epoch, false};
                break;
              case 1:
                for (uint64_t a = op.addr; a < op.addr + op.size;
                     a++) {
                    auto it = shadow.find(a);
                    if (it != shadow.end())
                        it->second.second = true;
                }
                break;
              default:
                epoch++;
            }
        }
        benchmark::DoNotOptimize(shadow.size());
    }
    state.SetItemsProcessed(state.iterations() * stream.ops.size());
}

} // namespace

BENCHMARK(BM_IntervalShadow)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_ByteShadow)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

BENCHMARK_MAIN();
