/**
 * @file
 * Ablation A1 (google-benchmark): the shadow-memory representation.
 * The paper stores persistency status in an interval tree keyed by
 * address ranges (O(log n) updates at operation granularity); the
 * natural alternative — per-byte shadow state, as binary
 * instrumentation tools keep — pays for every byte of every store.
 * This benchmark applies the same synthetic PM-operation stream to
 * both and reports ns/op as the range size grows.
 *
 * A second axis ablates the interval map's own backing store: the
 * flat sorted-vector layout (core::IntervalMap) against the original
 * one-heap-node-per-entry std::map layout (bench::NodeIntervalMap) on
 * an interval-heavy stream of assigns, erases, coverage queries and
 * overlap scans.
 */

#include <benchmark/benchmark.h>

#include <unordered_map>

#include "bench/node_interval_map.hh"
#include "core/interval_map.hh"
#include "core/shadow_memory.hh"
#include "util/random.hh"

namespace
{

using namespace pmtest;
using namespace pmtest::core;

/** Synthetic op stream: write/clwb/fence over a working set. */
struct OpStream
{
    struct Op
    {
        int kind; // 0 = write, 1 = clwb, 2 = fence
        uint64_t addr;
        uint64_t size;
    };

    std::vector<Op> ops;

    OpStream(size_t n_ops, uint64_t range_size, uint64_t seed)
    {
        Rng rng(seed);
        for (size_t i = 0; i < n_ops; i++) {
            const uint64_t dice = rng.below(10);
            const uint64_t addr = rng.below(1 << 20);
            if (dice < 5) {
                ops.push_back({0, addr, range_size});
            } else if (dice < 9) {
                ops.push_back({1, addr, range_size});
            } else {
                ops.push_back({2, 0, 0});
            }
        }
    }
};

void
BM_IntervalShadow(benchmark::State &state)
{
    const OpStream stream(4096, state.range(0), 42);
    for (auto _ : state) {
        ShadowMemory shadow;
        for (const auto &op : stream.ops) {
            switch (op.kind) {
              case 0:
                shadow.recordWrite(AddrRange(op.addr, op.size));
                break;
              case 1:
                shadow.recordClwb(AddrRange(op.addr, op.size));
                break;
              default:
                shadow.bumpTimestamp();
                shadow.completePendingFlushes();
            }
        }
        benchmark::DoNotOptimize(shadow.entryCount());
    }
    state.SetItemsProcessed(state.iterations() * stream.ops.size());
}

/** Per-byte baseline: the granularity binary instrumentation pays. */
void
BM_ByteShadow(benchmark::State &state)
{
    const OpStream stream(4096, state.range(0), 42);
    for (auto _ : state) {
        // byte -> (epoch, flushed?)
        std::unordered_map<uint64_t, std::pair<uint64_t, bool>> shadow;
        uint64_t epoch = 0;
        for (const auto &op : stream.ops) {
            switch (op.kind) {
              case 0:
                for (uint64_t a = op.addr; a < op.addr + op.size; a++)
                    shadow[a] = {epoch, false};
                break;
              case 1:
                for (uint64_t a = op.addr; a < op.addr + op.size;
                     a++) {
                    auto it = shadow.find(a);
                    if (it != shadow.end())
                        it->second.second = true;
                }
                break;
              default:
                epoch++;
            }
        }
        benchmark::DoNotOptimize(shadow.size());
    }
    state.SetItemsProcessed(state.iterations() * stream.ops.size());
}

/**
 * Interval-heavy stream exercising the map operations the engine's
 * hot path issues: mostly assigns (recordWrite), some erases, and a
 * covers + overlap-scan probe per mutation (isPersist checking).
 */
struct IntervalStream
{
    struct Op
    {
        int kind; // 0 = assign, 1 = erase, 2 = covers, 3 = overlap
        uint64_t addr;
        uint64_t size;
    };

    std::vector<Op> ops;

    IntervalStream(size_t n_ops, uint64_t working_set, uint64_t seed)
    {
        Rng rng(seed);
        for (size_t i = 0; i < n_ops; i++) {
            const uint64_t dice = rng.below(10);
            const uint64_t addr = 64 * rng.below(working_set / 64);
            const uint64_t size = 8 + rng.below(120);
            if (dice < 5) {
                ops.push_back({0, addr, size});
            } else if (dice < 6) {
                ops.push_back({1, addr, size});
            } else if (dice < 8) {
                ops.push_back({2, addr, size});
            } else {
                ops.push_back({3, addr, size});
            }
        }
    }
};

/** Drive any interval-map type through the stream; map is reused. */
template <typename MapT>
uint64_t
runIntervalStream(MapT &map, const IntervalStream &stream)
{
    uint64_t acc = 0;
    map.clear();
    for (const auto &op : stream.ops) {
        const AddrRange range(op.addr, op.size);
        switch (op.kind) {
          case 0:
            map.assign(range, op.addr);
            break;
          case 1:
            map.erase(range);
            break;
          case 2:
            acc += map.covers(range);
            break;
          default:
            map.forEachOverlap(range, [&](const auto &e) {
                acc += e.end - e.start;
            });
        }
    }
    return acc;
}

/** Flat sorted-vector interval map (current shadow-memory backing). */
void
BM_FlatIntervalMap(benchmark::State &state)
{
    const IntervalStream stream(
        8192, static_cast<uint64_t>(state.range(0)), 42);
    IntervalMap<uint64_t> map;
    for (auto _ : state)
        benchmark::DoNotOptimize(runIntervalStream(map, stream));
    state.SetItemsProcessed(state.iterations() * stream.ops.size());
}

/** Node-per-entry std::map baseline (pre-rewrite backing). */
void
BM_NodeIntervalMap(benchmark::State &state)
{
    const IntervalStream stream(
        8192, static_cast<uint64_t>(state.range(0)), 42);
    pmtest::bench::NodeIntervalMap<uint64_t> map;
    for (auto _ : state)
        benchmark::DoNotOptimize(runIntervalStream(map, stream));
    state.SetItemsProcessed(state.iterations() * stream.ops.size());
}

} // namespace

BENCHMARK(BM_IntervalShadow)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_ByteShadow)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

// Working-set sizes in bytes: small sets stress carve/split density,
// large sets stress the search.
BENCHMARK(BM_FlatIntervalMap)
    ->Arg(4 << 10)->Arg(64 << 10)->Arg(1 << 20);
BENCHMARK(BM_NodeIntervalMap)
    ->Arg(4 << 10)->Arg(64 << 10)->Arg(1 << 20);

BENCHMARK_MAIN();
