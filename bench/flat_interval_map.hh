/**
 * @file
 * The single flat sorted-vector interval map this repository shipped
 * before the chunked rewrite, preserved verbatim as the "before" side
 * of the storage-layout ablation. Benchmarks pit it against
 * core::IntervalMap (chunked) and NodeIntervalMap (std::map) on the
 * same op streams; nothing outside bench/ and tests/ may include this
 * header.
 *
 * Strengths and the known cliff: lookups binary-search one contiguous
 * array (great cache behavior while the map is small), but every
 * mutation splices with memmove over the whole suffix — O(n) per op,
 * which is what loses to node storage once a sparse workload grows
 * the map to thousands of entries (the 1 MiB sparse shape in
 * bench_kernel).
 */

#ifndef PMTEST_BENCH_FLAT_INTERVAL_MAP_HH
#define PMTEST_BENCH_FLAT_INTERVAL_MAP_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/interval.hh"

namespace pmtest::bench
{

/**
 * Map from disjoint half-open ranges [start, end) to values of type V,
 * backed by one flat vector of ranges sorted by start.
 */
template <typename V>
class FlatIntervalMap
{
  public:
    /** One visited entry: [start, end) -> value. */
    struct Entry
    {
        uint64_t start;
        uint64_t end;
        const V &value;
    };

    /**
     * Assign @p value to [range.addr, range.end()).
     *
     * Fused carve-and-insert: when the assignment replaces at least
     * one fully-covered stored item, the new item overwrites that slot
     * in place and only the surplus items are spliced out.
     */
    void
    assign(const core::AddrRange &range, V value)
    {
        if (range.empty())
            return;
        size_t idx = firstOverlap(range);
        if (idx == items_.size() || items_[idx].start >= range.end()) {
            // Nothing overlaps: plain sorted insert.
            items_.insert(
                items_.begin() + idx,
                Item{range.addr, range.end(), std::move(value)});
            return;
        }

        Item &first = items_[idx];
        if (first.start < range.addr && first.end > range.end()) {
            // One item strictly contains the range: split into
            // [left][new][right] with a single two-element splice.
            const Item middle{range.addr, range.end(),
                              std::move(value)};
            const Item right{range.end(), first.end, first.value};
            first.end = range.addr;
            items_.insert(items_.begin() + idx + 1, {middle, right});
            return;
        }

        if (first.start < range.addr) {
            // Left remainder keeps the old value in place.
            first.end = range.addr;
            idx++;
        }
        size_t last = idx;
        while (last < items_.size() && items_[last].end <= range.end())
            last++; // fully covered by the assignment
        if (last < items_.size() && items_[last].start < range.end()) {
            // Right remainder keeps the old value in place.
            items_[last].start = range.end();
        }
        if (last > idx) {
            // Reuse the first covered slot; drop the rest.
            items_[idx] =
                Item{range.addr, range.end(), std::move(value)};
            items_.erase(items_.begin() + idx + 1,
                         items_.begin() + last);
        } else {
            items_.insert(
                items_.begin() + idx,
                Item{range.addr, range.end(), std::move(value)});
        }
    }

    /** Remove any values within the range. */
    void
    erase(const core::AddrRange &range)
    {
        if (range.empty())
            return;
        carve(range);
    }

    /** Remove everything; the backing storage keeps its capacity. */
    void clear() { items_.clear(); }

    /**
     * Invoke @p fn for every stored entry overlapping @p range, in
     * address order. The entry passed is clipped to the overlap.
     */
    template <typename Fn>
    void
    forEachOverlap(const core::AddrRange &range, Fn &&fn) const
    {
        if (range.empty())
            return;
        for (size_t i = firstOverlap(range);
             i < items_.size() && items_[i].start < range.end(); i++) {
            const Item &item = items_[i];
            fn(Entry{std::max(item.start, range.addr),
                     std::min(item.end, range.end()), item.value});
        }
    }

    /**
     * Mutable overlap iteration: @p fn receives the value by reference
     * (the entry bounds are the stored, unclipped bounds).
     */
    template <typename Fn>
    void
    forEachOverlapMut(const core::AddrRange &range, Fn &&fn)
    {
        if (range.empty())
            return;
        for (size_t i = firstOverlap(range);
             i < items_.size() && items_[i].start < range.end(); i++)
            fn(items_[i].start, items_[i].end, items_[i].value);
    }

    /** Whether any entry overlaps the range. */
    bool
    anyOverlap(const core::AddrRange &range) const
    {
        if (range.empty())
            return false;
        const size_t i = firstOverlap(range);
        return i < items_.size() && items_[i].start < range.end();
    }

    /**
     * Whether the union of stored ranges fully covers @p range
     * (regardless of values).
     */
    bool
    covers(const core::AddrRange &range) const
    {
        if (range.empty())
            return true;
        uint64_t pos = range.addr;
        for (size_t i = firstOverlap(range);
             i < items_.size() && items_[i].start < range.end(); i++) {
            if (items_[i].start > pos)
                return false; // gap
            pos = std::max(pos, items_[i].end);
            if (pos >= range.end())
                return true;
        }
        return false;
    }

    /** Invoke @p fn for every stored entry, in address order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Item &item : items_)
            fn(Entry{item.start, item.end, item.value});
    }

    /** Number of stored (disjoint) entries. */
    size_t size() const { return items_.size(); }

    /** True when no entries are stored. */
    bool empty() const { return items_.empty(); }

    /** Entries the backing storage can hold without reallocating. */
    size_t capacity() const { return items_.capacity(); }

    /** Pre-size the backing storage. */
    void reserve(size_t entries) { items_.reserve(entries); }

  private:
    struct Item
    {
        uint64_t start;
        uint64_t end;
        V value;
    };

    /**
     * Index of the first stored item with end > range.addr — the only
     * candidate for overlapping @p range.
     */
    size_t
    firstOverlap(const core::AddrRange &range) const
    {
        size_t idx = static_cast<size_t>(
            std::upper_bound(items_.begin(), items_.end(), range.addr,
                             [](uint64_t addr, const Item &item) {
                                 return addr < item.start;
                             }) -
            items_.begin());
        if (idx > 0 && items_[idx - 1].end > range.addr)
            idx--;
        return idx;
    }

    /**
     * Remove the range from all stored items, splitting boundary items
     * so their parts outside the range survive.
     * @return the index at which an item starting at range.addr
     *         belongs after the carve.
     */
    size_t
    carve(const core::AddrRange &range)
    {
        size_t idx = firstOverlap(range);
        if (idx == items_.size() || items_[idx].start >= range.end())
            return idx; // nothing overlaps

        Item &first = items_[idx];
        if (first.start < range.addr && first.end > range.end()) {
            // One item strictly contains the range: split in two.
            Item right{range.end(), first.end, first.value};
            first.end = range.addr;
            items_.insert(items_.begin() + idx + 1, std::move(right));
            return idx + 1;
        }

        if (first.start < range.addr) {
            // Left remainder keeps the old value in place.
            first.end = range.addr;
            idx++;
        }
        size_t last = idx;
        while (last < items_.size() && items_[last].end <= range.end())
            last++; // fully covered: drop
        if (last < items_.size() && items_[last].start < range.end()) {
            // Right remainder keeps the old value in place.
            items_[last].start = range.end();
        }
        items_.erase(items_.begin() + idx, items_.begin() + last);
        return idx;
    }

    std::vector<Item> items_;
};

} // namespace pmtest::bench

#endif // PMTEST_BENCH_FLAT_INTERVAL_MAP_HH
