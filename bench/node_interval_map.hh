/**
 * @file
 * The node-backed (std::map) interval map this repository shipped
 * before the flat sorted-vector rewrite, preserved verbatim as the
 * "before" side of the storage-layout ablation. Benchmarks pit it
 * against core::IntervalMap on the same op streams; nothing outside
 * bench/ may include this header.
 */

#ifndef PMTEST_BENCH_NODE_INTERVAL_MAP_HH
#define PMTEST_BENCH_NODE_INTERVAL_MAP_HH

#include <cstdint>
#include <map>

#include "core/interval.hh"

namespace pmtest::bench
{

/**
 * Map from disjoint half-open ranges [start, end) to values of type V,
 * backed by one heap node per entry (std::map keyed by range start).
 */
template <typename V>
class NodeIntervalMap
{
  public:
    /** One visited entry: [start, end) -> value. */
    struct Entry
    {
        uint64_t start;
        uint64_t end;
        const V &value;
    };

    /** Assign @p value to [range.addr, range.end()). */
    void
    assign(const core::AddrRange &range, V value)
    {
        if (range.empty())
            return;
        carve(range);
        map_[range.addr] = Slot{range.end(), std::move(value)};
    }

    /** Remove any values within the range. */
    void
    erase(const core::AddrRange &range)
    {
        if (range.empty())
            return;
        carve(range);
    }

    /** Remove everything (releases every node). */
    void clear() { map_.clear(); }

    /** Invoke @p fn for every entry overlapping @p range, clipped. */
    template <typename Fn>
    void
    forEachOverlap(const core::AddrRange &range, Fn &&fn) const
    {
        if (range.empty())
            return;
        auto it = firstOverlap(range);
        for (; it != map_.end() && it->first < range.end(); ++it) {
            fn(Entry{std::max(it->first, range.addr),
                     std::min(it->second.end, range.end()),
                     it->second.value});
        }
    }

    /** Whether any entry overlaps the range. */
    bool
    anyOverlap(const core::AddrRange &range) const
    {
        if (range.empty())
            return false;
        auto it = firstOverlap(range);
        return it != map_.end() && it->first < range.end();
    }

    /** Whether the union of stored ranges fully covers @p range. */
    bool
    covers(const core::AddrRange &range) const
    {
        if (range.empty())
            return true;
        uint64_t pos = range.addr;
        auto it = firstOverlap(range);
        for (; it != map_.end() && it->first < range.end(); ++it) {
            if (it->first > pos)
                return false; // gap
            pos = std::max(pos, it->second.end);
            if (pos >= range.end())
                return true;
        }
        return false;
    }

    /** Number of stored (disjoint) entries. */
    size_t size() const { return map_.size(); }

  private:
    struct Slot
    {
        uint64_t end;
        V value;
    };

    using Map = std::map<uint64_t, Slot>;

    typename Map::const_iterator
    firstOverlap(const core::AddrRange &range) const
    {
        auto it = map_.upper_bound(range.addr);
        if (it != map_.begin()) {
            auto prev = std::prev(it);
            if (prev->second.end > range.addr)
                return prev;
        }
        return it;
    }

    typename Map::iterator
    firstOverlapMut(const core::AddrRange &range)
    {
        auto it = map_.upper_bound(range.addr);
        if (it != map_.begin()) {
            auto prev = std::prev(it);
            if (prev->second.end > range.addr)
                return prev;
        }
        return it;
    }

    void
    carve(const core::AddrRange &range)
    {
        auto it = firstOverlapMut(range);
        while (it != map_.end() && it->first < range.end()) {
            const uint64_t e_start = it->first;
            const uint64_t e_end = it->second.end;
            V value = std::move(it->second.value);
            it = map_.erase(it);

            if (e_start < range.addr)
                map_[e_start] = Slot{range.addr, value};
            if (e_end > range.end()) {
                it = map_.emplace(range.end(),
                                  Slot{e_end, std::move(value)})
                         .first;
                ++it;
            }
        }
    }

    Map map_;
};

} // namespace pmtest::bench

#endif // PMTEST_BENCH_NODE_INTERVAL_MAP_HH
