#!/usr/bin/env python3
"""Validate pmtest live observability outputs in CI.

Three modes, one per output format:

  --prom FILE    Prometheus text exposition scraped from /metrics:
                 every line must parse, and the gauge/rate families
                 the dashboard depends on must be present.
  --json FILE    pmtest-metrics-v1 document (from /metrics.json with
                 --live, or a --metrics-json file without it).
  --events FILE  structured JSONL event log from --event-log: every
                 record must carry the envelope fields, and a
                 completed run must be bracketed by run_start and
                 run_stop.

Exits non-zero with a message on the first violation.
"""

import argparse
import json
import re
import sys

SAMPLE_RE = re.compile(
    r'^[A-Za-z_:][A-Za-z0-9_:]*'         # metric name
    r'(\{[^{}]*\})?'                     # optional label set
    r' -?[0-9.eE+]+(inf|nan)?$'          # sample value
)

REQUIRED_PROM = [
    "pmtest_snapshot_nanoseconds",
    "pmtest_traces_checked_total",
    "pmtest_pool_inflight_traces",
    "pmtest_worker_queue_depth",
    "pmtest_ingest_traces_consumed",
    "pmtest_ingest_bytes_consumed",
    "pmtest_process_resident_bytes",
    "pmtest_traces_checked_per_second",
    "pmtest_ingest_bytes_per_second",
]

EVENT_ENVELOPE = ["ts_ms", "mono_ns", "severity", "type"]


def fail(msg):
    print(f"check_metrics: {msg}", file=sys.stderr)
    sys.exit(1)


def check_prom(path):
    names = set()
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            if not SAMPLE_RE.match(line):
                fail(f"{path}:{lineno}: unparsable sample: {line!r}")
            names.add(re.split(r"[ {]", line, 1)[0])
    for required in REQUIRED_PROM:
        if required not in names:
            fail(f"{path}: missing metric family {required}")
    print(f"{path}: {len(names)} metric families OK")


def check_json(path, live):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "pmtest-metrics-v1":
        fail(f"{path}: schema is {doc.get('schema')!r}")
    if live:
        if doc.get("live") is not True:
            fail(f"{path}: expected a live document")
        if not isinstance(doc.get("snapshot_ns"), int):
            fail(f"{path}: snapshot_ns missing or not an integer")
        gauges = doc.get("gauges")
        if not isinstance(gauges, dict):
            fail(f"{path}: gauges object missing")
        pool = gauges.get("pool", {})
        for key in ("in_flight", "queued", "queue_depths"):
            if key not in pool:
                fail(f"{path}: gauges.pool.{key} missing")
        ingest = gauges.get("ingest", {})
        for key in ("traces_consumed", "bytes_consumed", "sources"):
            if key not in ingest:
                fail(f"{path}: gauges.ingest.{key} missing")
        process = gauges.get("process", {})
        if process.get("rss_bytes", 0) <= 0:
            fail(f"{path}: gauges.process.rss_bytes not positive")
        rates = doc.get("rates")
        if not isinstance(rates, dict) or \
                "traces_checked_per_sec" not in rates:
            fail(f"{path}: rates.traces_checked_per_sec missing")
        if "counters" not in doc.get("telemetry", {}):
            fail(f"{path}: telemetry.counters missing")
    print(f"{path}: pmtest-metrics-v1 OK" + (" (live)" if live else ""))


def check_events(path):
    types = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: invalid JSON: {e}")
            for key in EVENT_ENVELOPE:
                if key not in record:
                    fail(f"{path}:{lineno}: missing {key!r}")
            if record["severity"] not in ("info", "warn", "error"):
                fail(f"{path}:{lineno}: bad severity "
                     f"{record['severity']!r}")
            if record["type"] == "finding":
                for key in ("verdict", "kind", "trace_id", "op_index"):
                    if key not in record:
                        fail(f"{path}:{lineno}: finding missing "
                             f"{key!r}")
            types.append(record["type"])
    if not types:
        fail(f"{path}: no events")
    if types[0] != "run_start":
        fail(f"{path}: first event is {types[0]!r}, not run_start")
    if "run_stop" not in types:
        fail(f"{path}: no run_stop event")
    print(f"{path}: {len(types)} events OK "
          f"({len(set(types))} distinct types)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--prom", help="Prometheus exposition file")
    parser.add_argument("--json", dest="json_path",
                        help="pmtest-metrics-v1 document")
    parser.add_argument("--live", action="store_true",
                        help="require the live gauges in --json")
    parser.add_argument("--events", help="JSONL event log")
    args = parser.parse_args()
    if not (args.prom or args.json_path or args.events):
        parser.error("nothing to check")
    if args.prom:
        check_prom(args.prom)
    if args.json_path:
        check_json(args.json_path, args.live)
    if args.events:
        check_events(args.events)


if __name__ == "__main__":
    main()
