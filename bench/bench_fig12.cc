/**
 * @file
 * Fig. 12 reproduction: scalability of PMTest with memcached-lite.
 *
 *  (a) more memcached threads on a single engine worker -> slowdown
 *      grows (one worker falls behind the trace stream);
 *  (b) four memcached threads, more engine workers -> slowdown
 *      shrinks;
 *  (c) scaling both together -> roughly flat, with a slight rise from
 *      inter-thread communication.
 *
 * Each measured point also snapshots the engine pool's dispatch
 * statistics (steals, steal scans, producer stall time, queue
 * capacity, batch count) from its fastest tool run, so a slowdown can
 * be attributed to backpressure or load imbalance instead of guessed
 * at. --json=PATH dumps points + dispatch stats for CI trend
 * tracking.
 */

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.hh"
#include "util/timer.hh"
#include "workloads/clients.hh"
#include "workloads/memcached_lite.hh"

namespace
{

using namespace pmtest;
using namespace pmtest::workloads;

/**
 * Run n_threads clients against one server; returns seconds. When
 * running under PMTest, the pool's dispatch statistics are snapshotted
 * into @p stats_out just before the framework exits.
 */
double
runThreaded(size_t n_threads, size_t n_workers, bool under_pmtest,
            bool ycsb, core::PoolStats *stats_out = nullptr)
{
    if (under_pmtest)
        pmtestInit(Config{.model = core::ModelKind::X86,
                          .workers = n_workers});

    // Setup (region construction, warm-up) is untimed.
    mnemosyne::Region region(64 << 20);
    MemcachedLite server(region);
    for (uint64_t k = 0; k < 300; k++)
        server.set("key-" + std::to_string(k), std::string(128, 'w'));

    Timer timer;
    std::vector<std::thread> clients;
    for (size_t t = 0; t < n_threads; t++) {
        clients.emplace_back([&, t] {
            pmtestThreadInit();
            pmtestStart();
            ClientConfig config;
            config.ops = 2000 * bench::scale();
            config.keySpace = 300;
            config.valueSize = 128;
            config.seed = 1000 + t;
            if (ycsb) {
                runYcsbClient(server, config);
            } else {
                runMemslapClient(server, config);
            }
            pmtestSendTrace();
            pmtestEnd();
        });
    }
    for (auto &c : clients)
        c.join();
    if (under_pmtest) {
        pmtestGetResult();
        if (stats_out)
            *stats_out = pmtestPoolStats();
    }
    const double seconds = timer.elapsedSec();

    if (under_pmtest)
        pmtestExit();
    return seconds;
}

/** Slowdown plus the dispatch stats of the fastest tool run. */
struct Measurement
{
    double slowdown = 0;
    core::PoolStats stats;
};

Measurement
measure(size_t n_threads, size_t n_workers, bool ycsb)
{
    double native = 1e30, tool = 1e30;
    Measurement m;
    for (int rep = 0; rep < 3; rep++) {
        native = std::min(native,
                          runThreaded(n_threads, 1, false, ycsb));
        core::PoolStats stats;
        const double sec =
            runThreaded(n_threads, n_workers, true, ycsb, &stats);
        if (sec < tool) {
            tool = sec;
            m.stats = std::move(stats);
        }
    }
    m.slowdown = tool / native;
    return m;
}

/** One fully measured sweep point, for the table and the JSON dump. */
struct Point
{
    std::string sweep;
    size_t threads = 0;
    size_t workers = 0;
    Measurement memslap;
    Measurement ycsb;
};

void
sweep(const char *tag, const char *title,
      const std::vector<std::pair<size_t, size_t>> &grid,
      std::vector<Point> &points)
{
    std::printf("%s\n", title);
    TextTable table;
    table.header({"app-threads", "engine-workers", "memslap", "ycsb",
                  "steals", "stall-ms"});
    for (const auto &[threads, workers] : grid) {
        Point p;
        p.sweep = tag;
        p.threads = threads;
        p.workers = workers;
        p.memslap = measure(threads, workers, false);
        p.ycsb = measure(threads, workers, true);
        const auto &stats = p.memslap.stats;
        table.row({std::to_string(threads), std::to_string(workers),
                   pmtest::bench::fmtSlowdown(p.memslap.slowdown),
                   pmtest::bench::fmtSlowdown(p.ycsb.slowdown),
                   std::to_string(stats.steals),
                   fmtDouble(stats.producerStallNanos / 1e6, 1)});
        points.push_back(std::move(p));
    }
    std::printf("%s\n", table.str().c_str());
}

void
writeStatsJson(std::FILE *f, const core::PoolStats &stats)
{
    std::fprintf(f,
                 "{\"steals\": %llu, \"steal_scans\": %llu, "
                 "\"producer_stall_ms\": %.3f, "
                 "\"queue_capacity\": %zu, \"batches\": %llu, "
                 "\"traces\": %llu}",
                 static_cast<unsigned long long>(stats.steals),
                 static_cast<unsigned long long>(stats.stealScans),
                 stats.producerStallNanos / 1e6, stats.queueCapacity,
                 static_cast<unsigned long long>(
                     stats.batchesSubmitted),
                 static_cast<unsigned long long>(
                     stats.tracesCompleted));
}

bool
writeJson(const std::string &path, const std::vector<Point> &points)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig12\",\n");
    std::fprintf(f, "  \"scale\": %zu,\n", pmtest::bench::scale());
    std::fprintf(f, "  \"points\": [\n");
    for (size_t i = 0; i < points.size(); i++) {
        const Point &p = points[i];
        std::fprintf(f,
                     "    {\"sweep\": \"%s\", \"app_threads\": %zu, "
                     "\"engine_workers\": %zu,\n"
                     "     \"memslap_slowdown\": %.3f, "
                     "\"ycsb_slowdown\": %.3f,\n"
                     "     \"memslap_dispatch\": ",
                     p.sweep.c_str(), p.threads, p.workers,
                     p.memslap.slowdown, p.ycsb.slowdown);
        writeStatsJson(f, p.memslap.stats);
        std::fprintf(f, ",\n     \"ycsb_dispatch\": ");
        writeStatsJson(f, p.ycsb.stats);
        std::fprintf(f, "}%s\n",
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int i = 1; i < argc; i++) {
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        } else {
            std::fprintf(stderr, "usage: %s [--json=PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    bench::banner("Fig. 12",
                  "memcached scalability: app threads vs engine "
                  "workers");

    std::vector<Point> points;
    sweep("a", "(a) scaling memcached threads, single PMTest worker:",
          {{1, 1}, {2, 1}, {4, 1}}, points);
    sweep("b", "(b) four memcached threads, scaling PMTest workers:",
          {{4, 1}, {4, 2}, {4, 4}}, points);
    sweep("c", "(c) scaling both together:", {{1, 1}, {2, 2}, {4, 4}},
          points);

    std::printf("Expected shape (paper): (a) rises, (b) falls, "
                "(c) roughly flat with a mild rise.\n");

    if (!json_path.empty()) {
        if (!writeJson(json_path, points))
            return 1;
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
