/**
 * @file
 * Fig. 12 reproduction: scalability of PMTest with memcached-lite.
 *
 *  (a) more memcached threads on a single engine worker -> slowdown
 *      grows (one worker falls behind the trace stream);
 *  (b) four memcached threads, more engine workers -> slowdown
 *      shrinks;
 *  (c) scaling both together -> roughly flat, with a slight rise from
 *      inter-thread communication.
 *
 * Each measured point also snapshots the engine pool's dispatch
 * statistics (steals, steal scans, producer stall time, queue
 * capacity, batch count) from its fastest tool run, so a slowdown can
 * be attributed to backpressure or load imbalance instead of guessed
 * at. --json=PATH dumps points + dispatch stats for CI trend
 * tracking.
 */

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.hh"
#include "core/stats_json.hh"
#include "util/clock.hh"
#include "workloads/clients.hh"
#include "workloads/memcached_lite.hh"

namespace
{

using namespace pmtest;
using namespace pmtest::workloads;

/**
 * Run n_threads clients against one server; returns seconds. When
 * running under PMTest, the pool's dispatch statistics are snapshotted
 * into @p stats_out just before the framework exits.
 */
double
runThreaded(size_t n_threads, size_t n_workers, bool under_pmtest,
            bool ycsb, core::PoolStats *stats_out = nullptr)
{
    if (under_pmtest)
        pmtestInit(Config{.model = core::ModelKind::X86,
                          .workers = n_workers});

    // Setup (region construction, warm-up) is untimed.
    mnemosyne::Region region(64 << 20);
    MemcachedLite server(region);
    for (uint64_t k = 0; k < 300; k++)
        server.set("key-" + std::to_string(k), std::string(128, 'w'));

    Timer timer;
    std::vector<std::thread> clients;
    for (size_t t = 0; t < n_threads; t++) {
        clients.emplace_back([&, t] {
            pmtestThreadInit();
            pmtestStart();
            ClientConfig config;
            config.ops = 2000 * bench::scale();
            config.keySpace = 300;
            config.valueSize = 128;
            config.seed = 1000 + t;
            if (ycsb) {
                runYcsbClient(server, config);
            } else {
                runMemslapClient(server, config);
            }
            pmtestSendTrace();
            pmtestEnd();
        });
    }
    for (auto &c : clients)
        c.join();
    if (under_pmtest) {
        pmtestGetResult();
        if (stats_out)
            *stats_out = pmtestPoolStats();
    }
    const double seconds = timer.elapsedSec();

    if (under_pmtest)
        pmtestExit();
    return seconds;
}

/** Slowdown plus the dispatch stats of the fastest tool run. */
struct Measurement
{
    double slowdown = 0;
    core::PoolStats stats;
};

Measurement
measure(size_t n_threads, size_t n_workers, bool ycsb)
{
    double native = 1e30, tool = 1e30;
    Measurement m;
    for (int rep = 0; rep < 3; rep++) {
        native = std::min(native,
                          runThreaded(n_threads, 1, false, ycsb));
        core::PoolStats stats;
        const double sec =
            runThreaded(n_threads, n_workers, true, ycsb, &stats);
        if (sec < tool) {
            tool = sec;
            m.stats = std::move(stats);
        }
    }
    m.slowdown = tool / native;
    return m;
}

/** One fully measured sweep point, for the table and the JSON dump. */
struct Point
{
    std::string sweep;
    size_t threads = 0;
    size_t workers = 0;
    Measurement memslap;
    Measurement ycsb;
};

void
sweep(const char *tag, const char *title,
      const std::vector<std::pair<size_t, size_t>> &grid,
      std::vector<Point> &points)
{
    std::printf("%s\n", title);
    TextTable table;
    table.header({"app-threads", "engine-workers", "memslap", "ycsb",
                  "steals", "stall-ms"});
    for (const auto &[threads, workers] : grid) {
        Point p;
        p.sweep = tag;
        p.threads = threads;
        p.workers = workers;
        p.memslap = measure(threads, workers, false);
        p.ycsb = measure(threads, workers, true);
        const auto &stats = p.memslap.stats;
        table.row({std::to_string(threads), std::to_string(workers),
                   pmtest::bench::fmtSlowdown(p.memslap.slowdown),
                   pmtest::bench::fmtSlowdown(p.ycsb.slowdown),
                   std::to_string(stats.steals),
                   fmtDouble(stats.producerStallNanos / 1e6, 1)});
        points.push_back(std::move(p));
    }
    std::printf("%s\n", table.str().c_str());
}

bool
writeJson(const std::string &path, const std::vector<Point> &points)
{
    JsonWriter w;
    w.beginObject();
    w.member("bench", "fig12");
    w.member("scale", pmtest::bench::scale());
    w.key("points").beginArray();
    for (const Point &p : points) {
        w.beginObject();
        w.member("sweep", p.sweep);
        w.member("app_threads", p.threads);
        w.member("engine_workers", p.workers);
        w.member("memslap_slowdown", p.memslap.slowdown, 3);
        w.member("ycsb_slowdown", p.ycsb.slowdown, 3);
        w.key("memslap_dispatch");
        core::writePoolStatsJson(w, p.memslap.stats);
        w.key("ycsb_dispatch");
        core::writePoolStatsJson(w, p.ycsb.stats);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return pmtest::bench::writeJsonFile(path, w);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int i = 1; i < argc; i++) {
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        } else {
            std::fprintf(stderr, "usage: %s [--json=PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    bench::banner("Fig. 12",
                  "memcached scalability: app threads vs engine "
                  "workers");

    std::vector<Point> points;
    sweep("a", "(a) scaling memcached threads, single PMTest worker:",
          {{1, 1}, {2, 1}, {4, 1}}, points);
    sweep("b", "(b) four memcached threads, scaling PMTest workers:",
          {{4, 1}, {4, 2}, {4, 4}}, points);
    sweep("c", "(c) scaling both together:", {{1, 1}, {2, 2}, {4, 4}},
          points);

    std::printf("Expected shape (paper): (a) rises, (b) falls, "
                "(c) roughly flat with a mild rise.\n");

    if (!json_path.empty()) {
        if (!writeJson(json_path, points))
            return 1;
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
