/**
 * @file
 * Fig. 12 reproduction: scalability of PMTest with memcached-lite.
 *
 *  (a) more memcached threads on a single engine worker -> slowdown
 *      grows (one worker falls behind the trace stream);
 *  (b) four memcached threads, more engine workers -> slowdown
 *      shrinks;
 *  (c) scaling both together -> roughly flat, with a slight rise from
 *      inter-thread communication.
 */

#include <algorithm>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "util/timer.hh"
#include "workloads/clients.hh"
#include "workloads/memcached_lite.hh"

namespace
{

using namespace pmtest;
using namespace pmtest::workloads;

/** Run n_threads clients against one server; returns seconds. */
double
runThreaded(size_t n_threads, size_t n_workers, bool under_pmtest,
            bool ycsb)
{
    if (under_pmtest)
        pmtestInit(Config{.model = core::ModelKind::X86,
                          .workers = n_workers});

    // Setup (region construction, warm-up) is untimed.
    mnemosyne::Region region(64 << 20);
    MemcachedLite server(region);
    for (uint64_t k = 0; k < 300; k++)
        server.set("key-" + std::to_string(k), std::string(128, 'w'));

    Timer timer;
    std::vector<std::thread> clients;
    for (size_t t = 0; t < n_threads; t++) {
        clients.emplace_back([&, t] {
            pmtestThreadInit();
            pmtestStart();
            ClientConfig config;
            config.ops = 2000 * bench::scale();
            config.keySpace = 300;
            config.valueSize = 128;
            config.seed = 1000 + t;
            if (ycsb) {
                runYcsbClient(server, config);
            } else {
                runMemslapClient(server, config);
            }
            pmtestSendTrace();
            pmtestEnd();
        });
    }
    for (auto &c : clients)
        c.join();
    if (under_pmtest)
        pmtestGetResult();
    const double seconds = timer.elapsedSec();

    if (under_pmtest)
        pmtestExit();
    return seconds;
}

double
slowdown(size_t n_threads, size_t n_workers, bool ycsb)
{
    double native = 1e30, tool = 1e30;
    for (int rep = 0; rep < 3; rep++) {
        native = std::min(native,
                          runThreaded(n_threads, 1, false, ycsb));
        tool = std::min(tool,
                        runThreaded(n_threads, n_workers, true, ycsb));
    }
    return tool / native;
}

void
sweep(const char *title,
      const std::vector<std::pair<size_t, size_t>> &points)
{
    std::printf("%s\n", title);
    TextTable table;
    table.header({"app-threads", "engine-workers", "memslap", "ycsb"});
    for (const auto &[threads, workers] : points) {
        table.row({std::to_string(threads), std::to_string(workers),
                   pmtest::bench::fmtSlowdown(
                       slowdown(threads, workers, false)),
                   pmtest::bench::fmtSlowdown(
                       slowdown(threads, workers, true))});
    }
    std::printf("%s\n", table.str().c_str());
}

} // namespace

int
main()
{
    bench::banner("Fig. 12",
                  "memcached scalability: app threads vs engine "
                  "workers");

    sweep("(a) scaling memcached threads, single PMTest worker:",
          {{1, 1}, {2, 1}, {4, 1}});
    sweep("(b) four memcached threads, scaling PMTest workers:",
          {{4, 1}, {4, 2}, {4, 4}});
    sweep("(c) scaling both together:", {{1, 1}, {2, 2}, {4, 4}});

    std::printf("Expected shape (paper): (a) rises, (b) falls, "
                "(c) roughly flat with a mild rise.\n");
    return 0;
}
