/**
 * @file
 * Ablation A2: decoupled checking. The paper pipelines program
 * execution and checking by running the engine on worker threads
 * (§3.2, Fig. 8). This harness runs the same microbenchmark with
 * inline checking (0 workers — the coupled design), one worker, and
 * two workers, quantifying what decoupling buys.
 *
 * Two dispatch experiments follow:
 *  - skewed trace sizes: one 100k-op trace among thousands of 100-op
 *    traces, dispatched to 4 workers with stealing off (the original
 *    pinned round-robin — small traces queue head-of-line behind the
 *    giant) vs stealing on (idle workers steal the stuck queue).
 *  - bounded backpressure: a fast producer against a single worker
 *    with a small queue capacity — the queue depth stays at the
 *    bound and the overflow shows up as producer stall time instead
 *    of unbounded memory growth.
 */

#include <algorithm>
#include <chrono>
#include <thread>

#include "bench/bench_util.hh"
#include "core/engine_pool.hh"
#include "util/clock.hh"
#include "util/cpu.hh"
#include "workloads/microbench.hh"

namespace
{

using namespace pmtest;

/**
 * A clean trace of @p ops write/clwb/sfence triplets cycling over
 * @p lines distinct cache lines.
 */
Trace
makeTrace(uint64_t id, size_t ops, size_t lines)
{
    Trace t(id, 0);
    for (size_t i = 0; i < ops / 3 + 1; i++) {
        const uint64_t addr = 0x1000 + 64 * (i % lines);
        t.append(PmOp::write(addr, 8));
        t.append(PmOp::clwb(addr, 8));
        t.append(PmOp::sfence());
    }
    return t;
}

struct SkewResult
{
    double smallsSeconds = 0; ///< until every small trace is checked
    double totalSeconds = 0;  ///< until the giant is checked too
    core::PoolStats stats;
};

/** One @p giant_ops trace among @p smalls 100-op traces, 4 workers. */
SkewResult
runSkewed(bool stealing, size_t giant_ops, size_t smalls)
{
    // Prebuild the traces: the timer must measure dispatch +
    // checking, not trace construction on the producer. The giant
    // writes distinct lines (a large PM footprint, so its check time
    // actually dominates a small trace's); smalls reuse a hot 1 KiB
    // window.
    std::vector<Trace> traces;
    traces.reserve(smalls + 1);
    traces.push_back(makeTrace(0, giant_ops, giant_ops / 3 + 1));
    for (size_t i = 0; i < smalls; i++)
        traces.push_back(makeTrace(1 + i, 100, 16));

    core::PoolOptions options;
    options.workers = 4;
    options.workStealing = stealing;
    core::EnginePool pool(options);

    // The giant goes first (round-robin lands it on worker 0); the
    // smalls follow in dispatch batches so the producer keeps every
    // queue backlogged — the measurement is then checking-bound and
    // the two modes differ only in who drains the giant's queue.
    constexpr size_t kDispatchBatch = 64;
    Timer timer;
    pool.submit(std::move(traces[0]));
    std::vector<Trace> batch;
    batch.reserve(kDispatchBatch);
    for (size_t i = 1; i < traces.size(); i++) {
        batch.push_back(std::move(traces[i]));
        if (batch.size() == kDispatchBatch) {
            pool.submitBatch(std::move(batch));
            batch.clear();
        }
    }
    pool.submitBatch(std::move(batch));

    SkewResult result;
    // Head-of-line metric: when is every *small* trace's result
    // ready? Pinned dispatch parks a quarter of them behind the giant
    // (checked >= smalls leaves at most one trace outstanding, so the
    // error is one small trace).
    while (pool.tracesChecked() < smalls)
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    result.smallsSeconds = timer.elapsedSec();
    pool.drain();
    result.totalSeconds = timer.elapsedSec();
    result.stats = pool.stats();
    return result;
}

/** Fast producer, one worker, bounded queue: measure backpressure. */
void
runBackpressure(size_t capacity, size_t traces)
{
    core::PoolOptions options;
    options.workers = 1;
    options.queueCapacity = capacity;
    core::EnginePool pool(options);

    size_t max_depth = 0;
    Timer timer;
    for (size_t i = 0; i < traces; i++) {
        pool.submit(makeTrace(i, 300, 64));
        max_depth = std::max(max_depth, pool.stats().queuedTraces());
    }
    pool.drain();
    const double sec = timer.elapsedSec();
    const core::PoolStats stats = pool.stats();

    std::printf("capacity %zu: %zu traces in %s s, max queued %zu, "
                "producer stalled %.1f ms\n",
                capacity, traces, fmtDouble(sec, 3).c_str(), max_depth,
                static_cast<double>(stats.producerStallNanos) * 1e-6);
}

} // namespace

int
main()
{
    using namespace pmtest;
    using namespace pmtest::workloads;

    bench::banner("Ablation A2",
                  "decoupled (worker-thread) vs inline checking");

    const size_t insertions = 600 * bench::scale();

    TextTable table;
    table.header({"structure", "native(s)", "inline", "1 worker",
                  "2 workers"});

    for (pmds::MapKind kind :
         {pmds::MapKind::Ctree, pmds::MapKind::HashmapTx,
          pmds::MapKind::HashmapAtomic}) {
        MicrobenchConfig config;
        config.kind = kind;
        config.insertions = insertions;
        config.valueSize = 256;

        const auto native = runMicrobench(config, Tool::Native);
        const auto inline_run =
            runMicrobench(config, Tool::PMTestInline);

        config.workers = 1;
        const auto one = runMicrobench(config, Tool::PMTest);
        config.workers = 2;
        const auto two = runMicrobench(config, Tool::PMTest);

        table.row({pmds::mapKindName(kind),
                   fmtDouble(native.seconds, 4),
                   bench::fmtSlowdown(inline_run.seconds /
                                      native.seconds),
                   bench::fmtSlowdown(one.seconds / native.seconds),
                   bench::fmtSlowdown(two.seconds / native.seconds)});
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("Expected shape: inline > 1 worker >= 2 workers — "
                "checking off the critical path is where PMTest's "
                "runtime advantage comes from.\n\n");

    bench::banner("Dispatch", "skewed trace sizes, 4 workers");
    // One 100k-op trace among many 100-op traces. Both sides scale
    // together so the skew ratio survives PMTEST_BENCH_SCALE.
    const size_t giant_ops = 100000 * bench::scale();
    const size_t smalls = 1000 * bench::scale();
    // Best-of-3 (on the head-of-line metric) to de-noise.
    SkewResult pinned = runSkewed(false, giant_ops, smalls);
    SkewResult stealing = runSkewed(true, giant_ops, smalls);
    for (int rep = 1; rep < 3; rep++) {
        SkewResult p = runSkewed(false, giant_ops, smalls);
        if (p.smallsSeconds < pinned.smallsSeconds)
            pinned = p;
        SkewResult s = runSkewed(true, giant_ops, smalls);
        if (s.smallsSeconds < stealing.smallsSeconds)
            stealing = s;
    }
    std::printf("pinned round-robin: smalls done %s s, all done %s s\n",
                fmtDouble(pinned.smallsSeconds, 3).c_str(),
                fmtDouble(pinned.totalSeconds, 3).c_str());
    std::printf("work stealing:      smalls done %s s, all done %s s\n",
                fmtDouble(stealing.smallsSeconds, 3).c_str(),
                fmtDouble(stealing.totalSeconds, 3).c_str());
    std::printf("head-of-line speedup (time to small-trace results): "
                "%.2fx, %llu steals\n",
                pinned.smallsSeconds / stealing.smallsSeconds,
                static_cast<unsigned long long>(stealing.stats.steals));
    // 4 workers + 1 producer want 5 cores; below that, go through
    // the shared detection helper (PMTEST_WORKERS overrides it, so a
    // CI pin or a big-machine run can force either note path).
    const size_t cores = util::configuredWorkers();
    if (cores < 5) {
        std::printf("note: %zu effective core(s) — total wall time is "
                    "work-conserving here; on a multicore host the "
                    "speedup shows in 'all done' too.\n",
                    cores);
    }
    std::printf("%s\n", stealing.stats.str().c_str());
    std::printf("Expected shape: >= 1.5x — without stealing the small "
                "traces round-robined behind the 100k-op trace wait "
                "for it; with stealing idle workers drain that queue "
                "while the giant is still being checked.\n\n");

    bench::banner("Dispatch", "bounded queue backpressure, 1 worker");
    runBackpressure(/*capacity=*/64, /*traces=*/2000 * bench::scale());
    std::printf("Expected shape: max queued stays at the capacity "
                "bound; the overflow is absorbed as producer stall "
                "time, not memory.\n");
    return 0;
}
