/**
 * @file
 * Ablation A2: decoupled checking. The paper pipelines program
 * execution and checking by running the engine on worker threads
 * (§3.2, Fig. 8). This harness runs the same microbenchmark with
 * inline checking (0 workers — the coupled design), one worker, and
 * two workers, quantifying what decoupling buys.
 */

#include "bench/bench_util.hh"
#include "workloads/microbench.hh"

int
main()
{
    using namespace pmtest;
    using namespace pmtest::workloads;

    bench::banner("Ablation A2",
                  "decoupled (worker-thread) vs inline checking");

    const size_t insertions = 600 * bench::scale();

    TextTable table;
    table.header({"structure", "native(s)", "inline", "1 worker",
                  "2 workers"});

    for (pmds::MapKind kind :
         {pmds::MapKind::Ctree, pmds::MapKind::HashmapTx,
          pmds::MapKind::HashmapAtomic}) {
        MicrobenchConfig config;
        config.kind = kind;
        config.insertions = insertions;
        config.valueSize = 256;

        const auto native = runMicrobench(config, Tool::Native);
        const auto inline_run =
            runMicrobench(config, Tool::PMTestInline);

        config.workers = 1;
        const auto one = runMicrobench(config, Tool::PMTest);
        config.workers = 2;
        const auto two = runMicrobench(config, Tool::PMTest);

        table.row({pmds::mapKindName(kind),
                   fmtDouble(native.seconds, 4),
                   bench::fmtSlowdown(inline_run.seconds /
                                      native.seconds),
                   bench::fmtSlowdown(one.seconds / native.seconds),
                   bench::fmtSlowdown(two.seconds / native.seconds)});
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("Expected shape: inline > 1 worker >= 2 workers — "
                "checking off the critical path is where PMTest's "
                "runtime advantage comes from.\n");
    return 0;
}
