#!/usr/bin/env python3
"""Gate pmtest_recall results against the committed baseline.

Usage: check_recall.py CURRENT.json BASELINE.json

Recall is a correctness metric, not a performance one, so the gate is
exact: checker recall and oracle recall/precision must not drop below
the committed baseline values, no false positives may appear beyond
the baseline, and the oracle's state-space reduction ratio must stay
at or above 10x (the representative-oracle acceptance floor). Seeded
populations growing is fine; detection falling behind them is not —
the recall *ratio* is what gates, so adding new seeded bugs that are
caught keeps passing.

Exit status: 0 ok, 1 regression, 2 usage/parse error.
"""

import json
import sys

REDUCTION_FLOOR = 10.0


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "pmtest-recall-v1":
        print(f"error: {path}: not a pmtest-recall-v1 document",
              file=sys.stderr)
        sys.exit(2)
    return doc


def gate(name, got, want, failed):
    verdict = "ok" if got >= want else "FAIL"
    print(f"{verdict:4} {name}: {got:.3f} (baseline {want:.3f})")
    return failed or got < want


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    current = load(argv[1])
    baseline = load(argv[2])

    failed = False
    failed = gate("checker recall", current["checker"]["recall"],
                  baseline["checker"]["recall"], failed)
    failed = gate("oracle recall", current["oracle"]["recall"],
                  baseline["oracle"]["recall"], failed)
    failed = gate("oracle precision", current["oracle"]["precision"],
                  baseline["oracle"]["precision"], failed)
    failed = gate("oracle reduction ratio",
                  current["oracle"]["reduction_ratio"],
                  REDUCTION_FLOOR, failed)

    missed = current["checker"].get("seed_corpus", {}).get("missed", [])
    for camp in ("table5", "table6"):
        missed += current["checker"].get(camp, {}).get("missed", [])
    missed += current["oracle"].get("missed", [])
    for case in missed:
        print(f"miss {case}")

    seeded = current["checker"]["seeded"]
    base_seeded = baseline["checker"]["seeded"]
    if seeded < base_seeded:
        print(f"FAIL checker population shrank: {seeded} seeded "
              f"cases (baseline {base_seeded})")
        failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
