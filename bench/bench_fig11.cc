/**
 * @file
 * Fig. 11 reproduction: PMTest slowdown on the real workloads
 * (paper Table 4): memcached-lite driven by Memslap- and YCSB-style
 * clients, redis-lite driven by an LRU-stress client, and the mini
 * PMFS driven by OLTP- and Filebench-style clients. Redis is also run
 * under the pmemcheck stand-in, as in the paper's text.
 *
 * Setup (pool construction, store pre-population) happens outside the
 * timed region; only client execution is measured.
 *
 * Expected shape (paper): 1.33–1.98x slowdown (avg 1.69x) — much
 * lower than the microbenchmarks because real workloads are less
 * PM-operation intensive; pmemcheck on Redis is far worse
 * (paper: 22.3x).
 */

#include <algorithm>
#include <memory>

#include "bench/bench_util.hh"
#include "pmfs/pmfs.hh"
#include "workloads/clients.hh"
#include "workloads/tool_harness.hh"

namespace
{

using namespace pmtest;
using namespace pmtest::workloads;

ClientConfig
clientConfig()
{
    ClientConfig config;
    config.ops = 3000 * bench::scale();
    config.keySpace = 400;
    config.valueSize = 128;
    return config;
}

StagedWorkload
memcachedWorkload(bool ycsb)
{
    return [ycsb](bool checkers) {
        auto region = std::make_shared<mnemosyne::Region>(64 << 20);
        region->emitCheckers = checkers;
        auto server = std::make_shared<MemcachedLite>(*region);
        // Pre-populate so GETs mostly hit, like a warmed cache.
        for (uint64_t k = 0; k < clientConfig().keySpace; k++)
            server->set("key-" + std::to_string(k),
                        std::string(128, 'w'));
        return [region, server, ycsb] {
            if (ycsb) {
                runYcsbClient(*server, clientConfig());
            } else {
                runMemslapClient(*server, clientConfig());
            }
        };
    };
}

StagedWorkload
redisWorkload()
{
    return [](bool checkers) {
        auto pool = std::make_shared<txlib::ObjPool>(64 << 20);
        auto server =
            std::make_shared<RedisLite>(*pool, /*capacity=*/300);
        server->emitCheckers = checkers;
        return [pool, server] {
            runRedisLruClient(*server, clientConfig());
        };
    };
}

StagedWorkload
pmfsWorkload(bool oltp)
{
    return [oltp](bool checkers) {
        auto fs = std::make_shared<pmfs::Pmfs>(32 << 20, false,
                                               /*use_fifo=*/true);
        fs->emitCheckers = checkers;
        return [fs, oltp] {
            ClientConfig config = clientConfig();
            config.ops /= 4; // file ops are heavier than KV ops
            if (oltp) {
                runOltpClient(*fs, config, 0);
            } else {
                runFilebenchClient(*fs, config, 0);
            }
            fs->drainTraces();
        };
    };
}

uint64_t g_steals = 0;   ///< stolen traces across PMTest runs
uint64_t g_stall_ns = 0; ///< producer stall across PMTest runs

double
bestOf(Tool tool, const StagedWorkload &workload, int reps)
{
    double best = 1e30;
    for (int i = 0; i < reps; i++) {
        const RunResult run = runStaged(tool, workload);
        best = std::min(best, run.seconds);
        if (tool == Tool::PMTest) {
            g_steals += run.poolStats.steals;
            g_stall_ns += run.poolStats.producerStallNanos;
        }
    }
    return best;
}

} // namespace

int
main()
{
    bench::banner("Fig. 11", "real-workload slowdown under PMTest");

    struct Row
    {
        const char *name;
        StagedWorkload workload;
        bool also_pmemcheck;
    };
    const Row rows[] = {
        {"memcached+memslap", memcachedWorkload(false), false},
        {"memcached+ycsb", memcachedWorkload(true), false},
        {"redis+lru", redisWorkload(), true},
        {"pmfs+oltp", pmfsWorkload(true), false},
        {"pmfs+filebench", pmfsWorkload(false), false},
    };
    constexpr int kReps = 3;

    TextTable table;
    table.header({"workload", "native(s)", "pmtest", "pmemcheck"});
    Stats pmtest_all;

    for (const auto &row : rows) {
        const double native = bestOf(Tool::Native, row.workload, kReps);
        const double pmtest = bestOf(Tool::PMTest, row.workload, kReps);
        const double s_pmtest = pmtest / native;
        pmtest_all.add(s_pmtest);

        std::string pmemcheck_cell = "-";
        if (row.also_pmemcheck) {
            const double pmemcheck =
                bestOf(Tool::Pmemcheck, row.workload, kReps);
            pmemcheck_cell = bench::fmtSlowdown(pmemcheck / native);
        }
        table.row({row.name, fmtDouble(native, 4),
                   bench::fmtSlowdown(s_pmtest), pmemcheck_cell});
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("PMTest slowdown on real workloads: avg %s "
                "(paper: 1.69x avg, 1.33-1.98x range)\n",
                bench::fmtSlowdown(pmtest_all.mean()).c_str());
    std::printf("dispatch: %llu steals, %.1f ms producer stall across "
                "the PMTest runs\n",
                static_cast<unsigned long long>(g_steals),
                static_cast<double>(g_stall_ns) * 1e-6);
    return 0;
}
