/**
 * @file
 * Ablation A3: trace batching granularity. PMTest_SEND_TRACE lets the
 * programmer divide the program into independent sections (paper
 * §4.2, "for better testing speed"). This harness emits the same
 * synthetic transaction stream and seals a trace every K
 * transactions, sweeping K: tiny traces pay dispatch overhead per
 * trace, huge traces serialize poorly against the worker pool and
 * grow the shadow memory.
 */

#include "bench/bench_util.hh"
#include "core/api.hh"
#include "util/clock.hh"

namespace
{

using namespace pmtest;

/** One synthetic transaction: undo-log-shaped op pattern. */
void
emitTransaction(uint8_t *heap, size_t tx_index)
{
    uint8_t *log = heap + (tx_index % 64) * 256;
    uint8_t *data = heap + 64 * 256 + (tx_index % 64) * 256;
    uint8_t bytes[128] = {};

    pmTxBegin();
    pmTxAdd(data, 128);
    pmStore(log, bytes, 128, PMTEST_HERE);
    pmClwb(log, 128, PMTEST_HERE);
    pmSfence(PMTEST_HERE);
    pmStore(data, bytes, 128, PMTEST_HERE);
    pmClwb(data, 128, PMTEST_HERE);
    pmSfence(PMTEST_HERE);
    pmTxEnd();
}

double
run(size_t n_tx, size_t batch, size_t trace_batch = 1)
{
    std::vector<uint8_t> heap(1 << 20, 0);

    Config config;
    config.traceBatch = trace_batch;
    pmtestInit(config);
    pmtestThreadInit();
    pmtestStart();

    Timer timer;
    for (size_t i = 0; i < n_tx; i++) {
        emitTransaction(heap.data(), i);
        if ((i + 1) % batch == 0)
            pmtestSendTrace();
    }
    pmtestSendTrace();
    pmtestGetResult();
    const double seconds = timer.elapsedSec();

    pmtestExit();
    return seconds;
}

} // namespace

int
main()
{
    bench::banner("Ablation A3",
                  "trace batching: transactions per SEND_TRACE");

    const size_t n_tx = 20000 * bench::scale();
    const size_t batches[] = {1, 4, 16, 64, 256, 1024};

    TextTable table;
    table.header({"tx/trace", "time(s)", "ktx/s"});
    for (size_t batch : batches) {
        const double sec = run(n_tx, batch);
        table.row({std::to_string(batch), fmtDouble(sec, 4),
                   fmtDouble(n_tx / sec / 1e3, 1)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("Expected shape: a moderate batch is fastest; "
                "per-transaction traces pay dispatch cost, giant "
                "traces lose pipelining.\n\n");

    // Producer-side dispatch batching (Config::traceBatch): traces
    // stay small (1 tx each, best checking granularity) but are
    // submitted N at a time under one queue lock.
    bench::banner("Ablation A3b",
                  "dispatch batching: traces per submit (1 tx/trace)");
    const size_t trace_batches[] = {1, 4, 16, 64};
    TextTable table2;
    table2.header({"traces/submit", "time(s)", "ktx/s"});
    for (size_t trace_batch : trace_batches) {
        const double sec = run(n_tx, 1, trace_batch);
        table2.row({std::to_string(trace_batch), fmtDouble(sec, 4),
                    fmtDouble(n_tx / sec / 1e3, 1)});
    }
    std::printf("%s\n", table2.str().c_str());
    std::printf("Expected shape: batching amortizes per-submit queue "
                "locking without giving up per-transaction checking "
                "granularity.\n");
    return 0;
}
