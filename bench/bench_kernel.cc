/**
 * @file
 * Checking-kernel ablation harness: one binary measuring the three
 * rewrite axes end to end and emitting the results as JSON for CI
 * trend tracking.
 *
 *  - storage: flat sorted-vector IntervalMap vs the node-backed
 *    std::map layout it replaced, on an interval-heavy op stream.
 *  - state: one reused engine (capacity-retaining reset) vs a fresh
 *    engine per trace.
 *  - dispatch: model-templated kernel vs per-op virtual dispatch.
 *
 * Flags:
 *  --smoke        tiny workload (seconds -> milliseconds); CI uses
 *                 this to validate the harness and capture the JSON.
 *  --json=PATH    where to write the JSON (default BENCH_kernel.json).
 *  --metrics-json=PATH  telemetry snapshot (counters + stage latency
 *                 histograms) of the run.
 *  --trace-events=PATH  Chrome trace-event / Perfetto timeline of the
 *                 run's engine.check spans.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "bench/node_interval_map.hh"
#include "core/engine.hh"
#include "core/interval_map.hh"
#include "obs/telemetry.hh"
#include "util/json.hh"
#include "util/random.hh"
#include "util/clock.hh"

namespace
{

using namespace pmtest;
using namespace pmtest::core;

/** One measured comparison: candidate vs baseline on the same work. */
struct Section
{
    std::string name;
    std::string baseline;
    std::string candidate;
    double baselineMops = 0;
    double candidateMops = 0;

    double speedup() const { return candidateMops / baselineMops; }
};

using pmtest::bestOfSeconds;

// --- storage: flat vs node interval map ----------------------------

struct IntervalOp
{
    int kind; // 0 = assign, 1 = erase, 2 = covers, 3 = overlap
    uint64_t addr;
    uint64_t size;
};

std::vector<IntervalOp>
makeIntervalStream(size_t n_ops, uint64_t working_set, uint64_t seed)
{
    Rng rng(seed);
    std::vector<IntervalOp> ops;
    ops.reserve(n_ops);
    for (size_t i = 0; i < n_ops; i++) {
        const uint64_t dice = rng.below(10);
        const uint64_t addr = 64 * rng.below(working_set / 64);
        const uint64_t size = 8 + rng.below(120);
        if (dice < 5) {
            ops.push_back({0, addr, size});
        } else if (dice < 6) {
            ops.push_back({1, addr, size});
        } else if (dice < 8) {
            ops.push_back({2, addr, size});
        } else {
            ops.push_back({3, addr, size});
        }
    }
    return ops;
}

template <typename MapT>
uint64_t
runIntervalStream(MapT &map, const std::vector<IntervalOp> &ops)
{
    uint64_t acc = 0;
    map.clear();
    for (const auto &op : ops) {
        const AddrRange range(op.addr, op.size);
        switch (op.kind) {
          case 0:
            map.assign(range, op.addr);
            break;
          case 1:
            map.erase(range);
            break;
          case 2:
            acc += map.covers(range);
            break;
          default:
            map.forEachOverlap(range, [&](const auto &e) {
                acc += e.end - e.start;
            });
        }
    }
    return acc;
}

Section
measureStorage(size_t stream_ops, int passes, uint64_t working_set,
               const char *tag)
{
    const auto ops = makeIntervalStream(stream_ops, working_set, 42);
    volatile uint64_t sink = 0;

    IntervalMap<uint64_t> flat;
    const double flat_sec = bestOfSeconds(3, [&] {
        for (int p = 0; p < passes; p++)
            sink += runIntervalStream(flat, ops);
    });

    pmtest::bench::NodeIntervalMap<uint64_t> node;
    const double node_sec = bestOfSeconds(3, [&] {
        for (int p = 0; p < passes; p++)
            sink += runIntervalStream(node, ops);
    });

    const double total = static_cast<double>(stream_ops) * passes;
    Section s;
    s.name = std::string("interval_map_storage_") + tag;
    s.baseline = "node_std_map";
    s.candidate = "flat_vector";
    s.baselineMops = total / node_sec * 1e-6;
    s.candidateMops = total / flat_sec * 1e-6;
    return s;
}

// --- state: reused vs fresh engine ---------------------------------

std::vector<Trace>
makeTraces(size_t count, size_t rounds, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Trace> traces;
    traces.reserve(count);
    for (size_t t = 0; t < count; t++) {
        Trace trace(t, 0);
        for (size_t i = 0; i < rounds; i++) {
            const uint64_t addr = 64 * rng.below(1024);
            trace.append(PmOp::write(addr, 64));
            trace.append(PmOp::clwb(addr, 64));
            trace.append(PmOp::sfence());
            trace.append(PmOp::isPersist(addr, 64));
        }
        traces.push_back(std::move(trace));
    }
    return traces;
}

Section
measureStateReuse(size_t traces_n, size_t rounds)
{
    const auto traces = makeTraces(traces_n, rounds, 7);
    size_t total_ops = 0;
    for (const auto &t : traces)
        total_ops += t.size();
    volatile uint64_t sink = 0;

    Engine reused(ModelKind::X86);
    const double reused_sec = bestOfSeconds(3, [&] {
        for (const auto &t : traces)
            sink += reused.check(t).failCount();
    });

    const double fresh_sec = bestOfSeconds(3, [&] {
        for (const auto &t : traces) {
            Engine fresh(ModelKind::X86);
            sink += fresh.check(t).failCount();
        }
    });

    Section s;
    s.name = "engine_state";
    s.baseline = "fresh_per_trace";
    s.candidate = "reused";
    s.baselineMops = static_cast<double>(total_ops) / fresh_sec * 1e-6;
    s.candidateMops = static_cast<double>(total_ops) / reused_sec * 1e-6;
    return s;
}

// --- dispatch: templated vs virtual --------------------------------

Section
measureDispatch(size_t rounds, int passes)
{
    const auto traces = makeTraces(1, rounds, 11);
    const Trace &trace = traces.front();
    volatile uint64_t sink = 0;

    Engine templated(ModelKind::X86, Engine::Dispatch::Templated);
    const double fast_sec = bestOfSeconds(3, [&] {
        for (int p = 0; p < passes; p++)
            sink += templated.check(trace).failCount();
    });

    Engine virtualised(ModelKind::X86, Engine::Dispatch::Virtual);
    const double slow_sec = bestOfSeconds(3, [&] {
        for (int p = 0; p < passes; p++)
            sink += virtualised.check(trace).failCount();
    });

    const double total = static_cast<double>(trace.size()) * passes;
    Section s;
    s.name = "model_dispatch";
    s.baseline = "virtual";
    s.candidate = "templated";
    s.baselineMops = total / slow_sec * 1e-6;
    s.candidateMops = total / fast_sec * 1e-6;
    return s;
}

// --- reporting -----------------------------------------------------

void
printSection(const Section &s)
{
    std::printf("%-20s %-16s %8.2f Mops/s\n", s.name.c_str(),
                s.baseline.c_str(), s.baselineMops);
    std::printf("%-20s %-16s %8.2f Mops/s   -> %.2fx\n", "",
                s.candidate.c_str(), s.candidateMops, s.speedup());
}

bool
writeJson(const std::string &path, const std::vector<Section> &sections,
          bool smoke)
{
    JsonWriter w;
    w.beginObject();
    w.member("bench", "kernel");
    w.member("smoke", smoke);
    w.member("scale", pmtest::bench::scale());
    w.key("sections").beginArray();
    for (const Section &s : sections) {
        w.beginObject();
        w.member("name", s.name);
        w.member("baseline", s.baseline);
        w.member("candidate", s.candidate);
        w.member("baseline_mops", s.baselineMops, 3);
        w.member("candidate_mops", s.candidateMops, 3);
        w.member("speedup", s.speedup(), 3);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return pmtest::bench::writeJsonFile(path, w);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_path = "BENCH_kernel.json";
    std::string metrics_path;
    std::string trace_events_path;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        } else if (std::strncmp(argv[i], "--metrics-json=", 15) == 0) {
            metrics_path = argv[i] + 15;
        } else if (std::strncmp(argv[i], "--trace-events=", 15) == 0) {
            trace_events_path = argv[i] + 15;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--json=PATH]\n"
                         "          [--metrics-json=PATH] "
                         "[--trace-events=PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    if (!trace_events_path.empty())
        obs::Telemetry::instance().enableSpans();

    pmtest::bench::banner("Kernel ablation",
                          "flat storage, state reuse, devirtualised "
                          "dispatch");

    const size_t s = pmtest::bench::scale();
    std::vector<Section> sections;
    if (smoke) {
        sections.push_back(measureStorage(1024, 2, 4 << 10, "hot4k"));
        sections.push_back(measureStorage(1024, 2, 64 << 10, "64k"));
        sections.push_back(measureStateReuse(16, 16));
        sections.push_back(measureDispatch(256, 4));
    } else {
        sections.push_back(
            measureStorage(8192, 50 * s, 4 << 10, "hot4k"));
        sections.push_back(
            measureStorage(8192, 50 * s, 64 << 10, "64k"));
        sections.push_back(measureStateReuse(512 * s, 64));
        sections.push_back(measureDispatch(4096, 100 * s));
    }

    for (const auto &section : sections)
        printSection(section);

    if (!writeJson(json_path, sections, smoke))
        return 1;
    std::printf("\nwrote %s\n", json_path.c_str());
    if (!metrics_path.empty() &&
        !pmtest::bench::writeBenchMetricsJson(metrics_path,
                                              "bench_kernel"))
        return 1;
    if (!trace_events_path.empty()) {
        std::string error;
        if (!obs::Telemetry::instance().writeTraceEventsFile(
                trace_events_path, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 1;
        }
    }
    return 0;
}
