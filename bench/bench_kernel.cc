/**
 * @file
 * Checking-kernel ablation harness: one binary measuring the three
 * rewrite axes end to end and emitting the results as JSON for CI
 * trend tracking.
 *
 *  - storage: chunked IntervalMap vs the flat sorted-vector layout it
 *    replaced, on hot (4 KiB / 64 KiB), sparse never-retouched
 *    (1 MiB / 8 MiB) and mixed hot+sparse shapes — the sparse shapes
 *    are the flat layout's O(n)-memmove cliff — plus one chunked vs
 *    node-std::map section for continuity with the older trend line.
 *  - batch: assignBatch (sort once, walk chunks once) vs a per-op
 *    assign loop over identical sorted disjoint ranges.
 *  - state: one reused engine (capacity-retaining reset) vs a fresh
 *    engine per trace.
 *  - dispatch: model-templated kernel vs per-op virtual dispatch,
 *    and the batched write-run kernel vs the same templated kernel
 *    with batching off (Dispatch::TemplatedPerOp).
 *
 * Flags:
 *  --smoke        tiny workload (seconds -> milliseconds); CI uses
 *                 this to validate the harness and capture the JSON.
 *  --json=PATH    where to write the JSON (default BENCH_kernel.json).
 *  --metrics-json=PATH  telemetry snapshot (counters + stage latency
 *                 histograms) of the run.
 *  --trace-events=PATH  Chrome trace-event / Perfetto timeline of the
 *                 run's engine.check spans.
 *  --metrics-port=N  serve live /metrics and /metrics.json on
 *                 127.0.0.1:N for the duration of the run.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "bench/flat_interval_map.hh"
#include "bench/node_interval_map.hh"
#include "core/engine.hh"
#include "core/interval_map.hh"
#include "obs/metrics_service.hh"
#include "obs/telemetry.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/random.hh"
#include "util/clock.hh"

namespace
{

using namespace pmtest;
using namespace pmtest::core;

/** One measured comparison: candidate vs baseline on the same work. */
struct Section
{
    std::string name;
    std::string baseline;
    std::string candidate;
    double baselineMops = 0;
    double candidateMops = 0;

    double speedup() const { return candidateMops / baselineMops; }
};

using pmtest::bestOfSeconds;

// --- storage: chunked vs flat (and node) interval map --------------

struct IntervalOp
{
    int kind; // 0 = assign, 1 = erase, 2 = covers, 3 = overlap
    uint64_t addr;
    uint64_t size;
};

std::vector<IntervalOp>
makeIntervalStream(size_t n_ops, uint64_t working_set, uint64_t seed)
{
    Rng rng(seed);
    std::vector<IntervalOp> ops;
    ops.reserve(n_ops);
    for (size_t i = 0; i < n_ops; i++) {
        const uint64_t dice = rng.below(10);
        const uint64_t addr = 64 * rng.below(working_set / 64);
        const uint64_t size = 8 + rng.below(120);
        if (dice < 5) {
            ops.push_back({0, addr, size});
        } else if (dice < 6) {
            ops.push_back({1, addr, size});
        } else if (dice < 8) {
            ops.push_back({2, addr, size});
        } else {
            ops.push_back({3, addr, size});
        }
    }
    return ops;
}

/**
 * The adversarial shape for a flat sorted vector: @p span/@p stride
 * disjoint 64 B ranges (the gaps keep them from coalescing), each
 * assigned exactly once in random order and never retouched. Every
 * insert lands at a random rank, so the flat layout memmoves half
 * the accumulated tail per op — O(n) splice with nothing amortising
 * it — while the chunked layout moves at most one chunk.
 */
std::vector<IntervalOp>
makeSparseStream(uint64_t span, uint64_t stride, uint64_t seed)
{
    Rng rng(seed);
    const size_t count = span / stride;
    std::vector<IntervalOp> ops;
    ops.reserve(count);
    for (size_t i = 0; i < count; i++)
        ops.push_back({0, 0x100000 + stride * i, 64});
    for (size_t i = count; i > 1; i--)
        std::swap(ops[i - 1], ops[rng.below(i)]);
    return ops;
}

/**
 * Hot/sparse mix: three of four ops churn a hot 4 KiB window with the
 * usual assign/erase/covers/overlap mix; every fourth op plants a
 * unique never-retouched range in a 4 MiB span above it. In the flat
 * layout the hot window sorts *below* the sparse tail, so every hot
 * splice pays a memmove proportional to the sparse population.
 */
std::vector<IntervalOp>
makeMixedStream(size_t n_ops, uint64_t seed)
{
    Rng rng(seed);
    const auto sparse = makeSparseStream(4 << 20, 512, seed ^ 0x9e37);
    std::vector<IntervalOp> ops;
    ops.reserve(n_ops);
    size_t next_sparse = 0;
    for (size_t i = 0; i < n_ops; i++) {
        if (i % 4 == 3 && next_sparse < sparse.size()) {
            ops.push_back(sparse[next_sparse++]);
            continue;
        }
        const uint64_t dice = rng.below(10);
        const uint64_t addr = 64 * rng.below((4 << 10) / 64);
        const uint64_t size = 8 + rng.below(120);
        const int kind = dice < 5 ? 0 : dice < 6 ? 1 : dice < 8 ? 2 : 3;
        ops.push_back({kind, addr, size});
    }
    return ops;
}

template <typename MapT>
uint64_t
runIntervalStream(MapT &map, const std::vector<IntervalOp> &ops)
{
    uint64_t acc = 0;
    map.clear();
    for (const auto &op : ops) {
        const AddrRange range(op.addr, op.size);
        switch (op.kind) {
          case 0:
            map.assign(range, op.addr);
            break;
          case 1:
            map.erase(range);
            break;
          case 2:
            acc += map.covers(range);
            break;
          default:
            map.forEachOverlap(range, [&](const auto &e) {
                acc += e.end - e.start;
            });
        }
    }
    return acc;
}

/** Chunked IntervalMap vs @p BaselineT on one prebuilt op stream. */
template <typename BaselineT>
Section
measureStorage(const std::vector<IntervalOp> &ops, int passes,
               const char *tag, const char *baseline_name)
{
    volatile uint64_t sink = 0;

    IntervalMap<uint64_t> chunked;
    const double chunked_sec = bestOfSeconds(3, [&] {
        for (int p = 0; p < passes; p++)
            sink += runIntervalStream(chunked, ops);
    });

    BaselineT baseline;
    const double baseline_sec = bestOfSeconds(3, [&] {
        for (int p = 0; p < passes; p++)
            sink += runIntervalStream(baseline, ops);
    });

    const double total = static_cast<double>(ops.size()) * passes;
    Section s;
    s.name = std::string("interval_map_storage_") + tag;
    s.baseline = baseline_name;
    s.candidate = "chunked";
    s.baselineMops = total / baseline_sec * 1e-6;
    s.candidateMops = total / chunked_sec * 1e-6;
    return s;
}

// --- batch: assignBatch vs a per-op assign loop --------------------

Section
measureBatchAssign(size_t batches_n, size_t per_batch, int passes)
{
    // Sorted disjoint 64 B ranges with 64 B gaps, per_batch to a
    // batch. Batches are shuffled so some land inside existing chunks
    // (gap-run inserts) and some past the end (append runs) — both
    // single-walk paths, against per_batch separate binary searches.
    Rng rng(99);
    std::vector<std::vector<AddrRange>> batches(batches_n);
    for (size_t b = 0; b < batches_n; b++) {
        const uint64_t base = b * per_batch * 128;
        auto &batch = batches[b];
        batch.reserve(per_batch);
        for (size_t i = 0; i < per_batch; i++)
            batch.emplace_back(base + 128 * i, 64);
    }
    for (size_t i = batches_n; i > 1; i--)
        std::swap(batches[i - 1], batches[rng.below(i)]);

    volatile uint64_t sink = 0;
    IntervalMap<uint64_t> batched;
    const double batch_sec = bestOfSeconds(3, [&] {
        for (int p = 0; p < passes; p++) {
            batched.clear();
            for (const auto &b : batches)
                batched.assignBatch(b.data(), b.size(), 7);
            sink += batched.size();
        }
    });

    IntervalMap<uint64_t> per_op;
    const double perop_sec = bestOfSeconds(3, [&] {
        for (int p = 0; p < passes; p++) {
            per_op.clear();
            for (const auto &b : batches)
                for (const AddrRange &r : b)
                    per_op.assign(r, 7);
            sink += per_op.size();
        }
    });

    const double total =
        static_cast<double>(batches_n) * per_batch * passes;
    Section s;
    s.name = "interval_batch_assign";
    s.baseline = "per_op_assign";
    s.candidate = "assign_batch";
    s.baselineMops = total / perop_sec * 1e-6;
    s.candidateMops = total / batch_sec * 1e-6;
    return s;
}

// --- state: reused vs fresh engine ---------------------------------

std::vector<Trace>
makeTraces(size_t count, size_t rounds, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Trace> traces;
    traces.reserve(count);
    for (size_t t = 0; t < count; t++) {
        Trace trace(t, 0);
        for (size_t i = 0; i < rounds; i++) {
            const uint64_t addr = 64 * rng.below(1024);
            trace.append(PmOp::write(addr, 64));
            trace.append(PmOp::clwb(addr, 64));
            trace.append(PmOp::sfence());
            trace.append(PmOp::isPersist(addr, 64));
        }
        traces.push_back(std::move(trace));
    }
    return traces;
}

Section
measureStateReuse(size_t traces_n, size_t rounds)
{
    const auto traces = makeTraces(traces_n, rounds, 7);
    size_t total_ops = 0;
    for (const auto &t : traces)
        total_ops += t.size();
    volatile uint64_t sink = 0;

    Engine reused(ModelKind::X86);
    const double reused_sec = bestOfSeconds(3, [&] {
        for (const auto &t : traces)
            sink += reused.check(t).failCount();
    });

    const double fresh_sec = bestOfSeconds(3, [&] {
        for (const auto &t : traces) {
            Engine fresh(ModelKind::X86);
            sink += fresh.check(t).failCount();
        }
    });

    Section s;
    s.name = "engine_state";
    s.baseline = "fresh_per_trace";
    s.candidate = "reused";
    s.baselineMops = static_cast<double>(total_ops) / fresh_sec * 1e-6;
    s.candidateMops = static_cast<double>(total_ops) / reused_sec * 1e-6;
    return s;
}

// --- dispatch: templated vs virtual --------------------------------

Section
measureDispatch(size_t rounds, int passes)
{
    const auto traces = makeTraces(1, rounds, 11);
    const Trace &trace = traces.front();
    volatile uint64_t sink = 0;

    Engine templated(ModelKind::X86, Engine::Dispatch::Templated);
    const double fast_sec = bestOfSeconds(3, [&] {
        for (int p = 0; p < passes; p++)
            sink += templated.check(trace).failCount();
    });

    Engine virtualised(ModelKind::X86, Engine::Dispatch::Virtual);
    const double slow_sec = bestOfSeconds(3, [&] {
        for (int p = 0; p < passes; p++)
            sink += virtualised.check(trace).failCount();
    });

    const double total = static_cast<double>(trace.size()) * passes;
    Section s;
    s.name = "model_dispatch";
    s.baseline = "virtual";
    s.candidate = "templated";
    s.baselineMops = total / slow_sec * 1e-6;
    s.candidateMops = total / fast_sec * 1e-6;
    return s;
}

// --- dispatch: batched write runs vs per-op templated --------------

/**
 * Table-1-shaped traces: each round writes 8 distinct lines back to
 * back, then flushes them and fences — the write-run pattern the
 * batched kernel coalesces into one sorted shadow splice.
 */
std::vector<Trace>
makeWriteRunTraces(size_t count, size_t rounds, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Trace> traces;
    traces.reserve(count);
    for (size_t t = 0; t < count; t++) {
        Trace trace(t, 0);
        for (size_t i = 0; i < rounds; i++) {
            const uint64_t base = 64 * 8 * rng.below(512);
            for (size_t w = 0; w < 8; w++)
                trace.append(PmOp::write(base + 64 * w, 64));
            for (size_t w = 0; w < 8; w++)
                trace.append(PmOp::clwb(base + 64 * w, 64));
            trace.append(PmOp::sfence());
        }
        traces.push_back(std::move(trace));
    }
    return traces;
}

Section
measureEngineBatch(size_t traces_n, size_t rounds)
{
    const auto traces = makeWriteRunTraces(traces_n, rounds, 21);
    size_t total_ops = 0;
    for (const auto &t : traces)
        total_ops += t.size();
    volatile uint64_t sink = 0;

    Engine batched(ModelKind::X86, Engine::Dispatch::Templated);
    const double batched_sec = bestOfSeconds(3, [&] {
        for (const auto &t : traces)
            sink += batched.check(t).failCount();
    });

    Engine per_op(ModelKind::X86, Engine::Dispatch::TemplatedPerOp);
    const double perop_sec = bestOfSeconds(3, [&] {
        for (const auto &t : traces)
            sink += per_op.check(t).failCount();
    });

    Section s;
    s.name = "engine_batched_writes";
    s.baseline = "templated_per_op";
    s.candidate = "templated_batched";
    s.baselineMops =
        static_cast<double>(total_ops) / perop_sec * 1e-6;
    s.candidateMops =
        static_cast<double>(total_ops) / batched_sec * 1e-6;
    return s;
}

// --- reporting -----------------------------------------------------

void
printSection(const Section &s)
{
    std::printf("%-20s %-16s %8.2f Mops/s\n", s.name.c_str(),
                s.baseline.c_str(), s.baselineMops);
    std::printf("%-20s %-16s %8.2f Mops/s   -> %.2fx\n", "",
                s.candidate.c_str(), s.candidateMops, s.speedup());
}

bool
writeJson(const std::string &path, const std::vector<Section> &sections,
          bool smoke)
{
    JsonWriter w;
    w.beginObject();
    w.member("bench", "kernel");
    w.member("smoke", smoke);
    w.member("scale", pmtest::bench::scale());
    w.key("sections").beginArray();
    for (const Section &s : sections) {
        w.beginObject();
        w.member("name", s.name);
        w.member("baseline", s.baseline);
        w.member("candidate", s.candidate);
        w.member("baseline_mops", s.baselineMops, 3);
        w.member("candidate_mops", s.candidateMops, 3);
        w.member("speedup", s.speedup(), 3);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return pmtest::bench::writeJsonFile(path, w);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_path = "BENCH_kernel.json";
    std::string metrics_path;
    std::string trace_events_path;
    size_t metrics_port = static_cast<size_t>(-1);
    pmtest::util::CliParser cli("bench_kernel");
    cli.addFlag("--smoke", &smoke, "tiny deterministic run for CI");
    cli.addString("--json", &json_path,
                  "result document path (default BENCH_kernel.json)");
    cli.addString("--metrics-json", &metrics_path,
                  "write the pmtest-metrics-v1 snapshot");
    cli.addString("--trace-events", &trace_events_path,
                  "write a Chrome trace-event timeline");
    cli.addSize("--metrics-port", &metrics_port,
                "serve /metrics on 127.0.0.1:N (0 = ephemeral)", 0,
                65535);
    cli.positionalCount(0, 0);
    const auto cli_status = cli.parse(argc, argv);
    if (cli_status != pmtest::util::CliStatus::Ok)
        return pmtest::util::cliExitCode(cli_status);
    if (!trace_events_path.empty())
        obs::Telemetry::instance().enableSpans();

    // Live scrape endpoint for the benchmark run (used by the <2%
    // overhead measurement in EXPERIMENTS.md): telemetry counters,
    // stage latencies, and process gauges — no pool/ingest samplers.
    obs::MetricsService metrics_service;
    if (metrics_port != static_cast<size_t>(-1)) {
        obs::ServiceOptions service_options;
        service_options.tool = "bench_kernel";
        service_options.metricsPort =
            static_cast<int32_t>(metrics_port);
        std::string service_error;
        if (!metrics_service.start(std::move(service_options),
                                   &service_error)) {
            std::fprintf(stderr, "%s\n", service_error.c_str());
            return 2;
        }
    }

    pmtest::bench::banner("Kernel ablation",
                          "chunked storage, batched splices, state "
                          "reuse, devirtualised dispatch");

    using Flat = pmtest::bench::FlatIntervalMap<uint64_t>;
    using Node = pmtest::bench::NodeIntervalMap<uint64_t>;
    const size_t s = pmtest::bench::scale();
    const int sp = static_cast<int>(s); // int passes
    std::vector<Section> sections;
    if (smoke) {
        // Small enough for CI, large enough that each timed rep is
        // milliseconds — the speedup ratios gate regressions
        // (bench/check_kernel_regression.py), so they must be stable.
        sections.push_back(measureStorage<Flat>(
            makeIntervalStream(2048, 4 << 10, 42), 8, "hot4k",
            "flat_vector"));
        sections.push_back(measureStorage<Flat>(
            makeIntervalStream(2048, 64 << 10, 42), 8, "64k",
            "flat_vector"));
        sections.push_back(measureStorage<Flat>(
            makeSparseStream(1 << 20, 512, 13), 2, "sparse1m",
            "flat_vector"));
        sections.push_back(measureStorage<Flat>(
            makeSparseStream(8 << 20, 2048, 17), 1, "sparse8m",
            "flat_vector"));
        sections.push_back(measureStorage<Flat>(
            makeMixedStream(2048, 23), 8, "mixed", "flat_vector"));
        sections.push_back(measureStorage<Node>(
            makeIntervalStream(2048, 4 << 10, 42), 8, "node_hot4k",
            "node_std_map"));
        sections.push_back(measureBatchAssign(128, 16, 6));
        sections.push_back(measureStateReuse(64, 32));
        sections.push_back(measureDispatch(512, 8));
        sections.push_back(measureEngineBatch(32, 32));
    } else {
        sections.push_back(measureStorage<Flat>(
            makeIntervalStream(8192, 4 << 10, 42), 50 * sp, "hot4k",
            "flat_vector"));
        sections.push_back(measureStorage<Flat>(
            makeIntervalStream(8192, 64 << 10, 42), 50 * sp, "64k",
            "flat_vector"));
        sections.push_back(measureStorage<Flat>(
            makeSparseStream(1 << 20, 128, 13), 2 * sp, "sparse1m",
            "flat_vector"));
        sections.push_back(measureStorage<Flat>(
            makeSparseStream(8 << 20, 512, 17), 1, "sparse8m",
            "flat_vector"));
        sections.push_back(measureStorage<Flat>(
            makeMixedStream(8192, 23), 10 * sp, "mixed",
            "flat_vector"));
        sections.push_back(measureStorage<Node>(
            makeIntervalStream(8192, 4 << 10, 42), 50 * sp,
            "node_hot4k", "node_std_map"));
        sections.push_back(measureBatchAssign(512, 16, 10 * sp));
        sections.push_back(measureStateReuse(512 * s, 64));
        sections.push_back(measureDispatch(4096, 100 * sp));
        sections.push_back(measureEngineBatch(256 * s, 64));
    }

    for (const auto &section : sections)
        printSection(section);

    if (!writeJson(json_path, sections, smoke))
        return 1;
    std::printf("\nwrote %s\n", json_path.c_str());
    if (!metrics_path.empty() &&
        !pmtest::bench::writeBenchMetricsJson(metrics_path,
                                              "bench_kernel"))
        return 1;
    if (!trace_events_path.empty()) {
        std::string error;
        if (!obs::Telemetry::instance().writeTraceEventsFile(
                trace_events_path, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 1;
        }
    }
    metrics_service.stop();
    return 0;
}
