/**
 * @file
 * Table 6 reproduction: the known (commit-history) and new bugs.
 * Each case re-creates one of the six real bugs at its faithful code
 * site — the PMFS xips.c double flush, the files.c unmapped-buffer
 * flush, the rbtree missing undo log entry, the journal.c redundant
 * commit flush, and the two btree_map bugs — and checks that PMTest
 * reports the expected finding kind.
 */

#include "bench/bench_util.hh"
#include "workloads/bug_injector.hh"

int
main()
{
    using namespace pmtest;
    using namespace pmtest::workloads;

    bench::banner("Table 6", "known + new real-bug reproductions");

    const auto cases = buildTable6Campaign();

    TextTable table;
    table.header({"case", "type", "expected finding", "detected"});
    size_t detected = 0;
    for (const auto &bug : cases) {
        const auto report = bug.run();
        const bool hit = reportContains(report, bug.expected);
        detected += hit ? 1 : 0;
        table.row({bug.id, bug.category,
                   core::findingKindName(bug.expected),
                   hit ? "yes" : "NO"});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("%zu/%zu real bugs detected "
                "(paper: 3 known + 3 new, all detected)\n",
                detected, cases.size());
    return detected == cases.size() ? 0 : 1;
}
