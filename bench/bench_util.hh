/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses. Scale
 * is controlled by the PMTEST_BENCH_SCALE environment variable
 * (default 1): the defaults keep every binary in the seconds range on
 * a laptop; raise the scale for larger, more stable numbers.
 */

#ifndef PMTEST_BENCH_BENCH_UTIL_HH
#define PMTEST_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/telemetry.hh"
#include "util/json.hh"
#include "util/stats.hh"

namespace pmtest::bench
{

/** Global scale factor from PMTEST_BENCH_SCALE (>= 1). */
inline size_t
scale()
{
    static const size_t value = [] {
        const char *env = std::getenv("PMTEST_BENCH_SCALE");
        if (!env)
            return size_t{1};
        const long parsed = std::atol(env);
        return parsed > 0 ? static_cast<size_t>(parsed) : size_t{1};
    }();
    return value;
}

/** Print a harness banner naming the paper artifact it regenerates. */
inline void
banner(const char *artifact, const char *description)
{
    std::printf("==============================================="
                "=============\n");
    std::printf("%s — %s\n", artifact, description);
    std::printf("(scale=%zu; set PMTEST_BENCH_SCALE to grow the "
                "workload)\n",
                scale());
    std::printf("==============================================="
                "=============\n");
}

/** Format a slowdown as "3.42x". */
inline std::string
fmtSlowdown(double factor)
{
    return fmtDouble(factor, 2) + "x";
}

/** Write a finished JsonWriter document to @p path ("-" = stdout). */
inline bool
writeJsonFile(const std::string &path, const JsonWriter &w)
{
    std::string error;
    if (pmtest::writeJsonFile(path, w, &error))
        return true;
    std::fprintf(stderr, "%s\n", error.c_str());
    return false;
}

/**
 * Write the standard bench telemetry snapshot (counters + per-stage
 * latency histograms) for harness @p bench to @p path.
 */
inline bool
writeBenchMetricsJson(const std::string &path, const char *bench)
{
    JsonWriter w;
    w.beginObject();
    w.member("schema", "pmtest-metrics-v1");
    w.member("tool", bench);
    w.member("scale", scale());
    w.key("telemetry");
    obs::Telemetry::instance().writeMetricsJson(w);
    w.endObject();
    return pmtest::bench::writeJsonFile(path, w);
}

} // namespace pmtest::bench

#endif // PMTEST_BENCH_BENCH_UTIL_HH
