/**
 * @file
 * Offline ingest harness: load→verdict wall time and peak-RSS growth
 * of the v2 mmap-parallel ingest pipeline against the sequential v1
 * stream loader, on two file shapes:
 *
 *  - table1_small: many small traces (the Table 1 micro-benchmark
 *    shape) — dispatch-bound, where parallel decode overlapping the
 *    engine pool pays off.
 *  - few_large: a handful of big traces — decode-bound, where the
 *    per-trace frame index lets decoders work on different traces at
 *    once.
 *
 * Phases per shape (in this order, because ru_maxrss is a monotonic
 * high-water mark — the candidates run first so their growth is not
 * masked by the baseline's):
 *  1. v2 + mmap + 4 decoders + worker pool   (the pipeline)
 *  2. v2 + mmap + 2 decoders + worker pool   (scaling point)
 *  3. v2 + mmap + 1 decoder  + worker pool   (overlap only)
 *  4. v2 + mmap + 4 decoders over 4 shards   (--shards path; Auto
 *     affinity resolves to pinned decoder→worker placement here)
 *  5. same, affinity forced to shared        (placement comparison)
 *  6. v2 split across 3 files + 4 decoders   (multi-file path)
 *  7. v1 + stream loader + serial engine     (the baseline)
 *
 * Every phase produces a canonicalized Report; verdict_match asserts
 * every configuration's merged report is byte-identical to the
 * serial one — the determinism contract of the TraceSource pipeline.
 *
 * Flags:
 *  --smoke        tiny workload; CI uses this to validate the harness
 *                 and capture the JSON.
 *  --json=PATH    where to write the JSON (default BENCH_ingest.json).
 */

#include <sys/resource.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench/bench_util.hh"
#include "core/engine.hh"
#include "core/engine_pool.hh"
#include "core/trace_ingest.hh"
#include "trace/trace_io.hh"
#include "trace/trace_source.hh"
#include "util/cli.hh"
#include "util/random.hh"
#include "util/clock.hh"

namespace
{

using namespace pmtest;
using namespace pmtest::core;

/** Current peak RSS in KiB (monotonic high-water mark). */
size_t
peakRssKb()
{
    struct rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    return static_cast<size_t>(usage.ru_maxrss);
}

/**
 * Synthesize traces with a persist/flush pattern; roughly one in
 * sixty-four rounds skips the writeback, so every shape produces
 * findings (the verdict comparison must compare something
 * non-trivial) while the check stage stays op-dominated rather than
 * finding-report-dominated, as in the paper's mostly-correct
 * workloads.
 */
std::vector<Trace>
makeTraces(size_t count, size_t rounds, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Trace> traces;
    traces.reserve(count);
    for (size_t t = 0; t < count; t++) {
        Trace trace(t, static_cast<uint32_t>(t % 4));
        for (size_t i = 0; i < rounds; i++) {
            const uint64_t addr = 64 * rng.below(4096);
            trace.append(PmOp::write(addr, 64));
            if (rng.below(64) != 0)
                trace.append(PmOp::clwb(addr, 64));
            trace.append(PmOp::sfence());
            trace.append(PmOp::isPersist(addr, 64));
        }
        traces.push_back(std::move(trace));
    }
    return traces;
}

/** One timed load→verdict phase. */
struct Phase
{
    std::string name;
    double seconds = 0;
    size_t rssGrowthKb = 0;
    std::string verdict; ///< canonicalized Report::str()
    size_t failCount = 0;
};

/** Drain @p source through ingest() into a pool; canonical verdict. */
Phase
runSource(std::string name, std::unique_ptr<TraceSource> source,
          size_t decoders, size_t workers, Timer &timer,
          size_t rss_before,
          IngestOptions::Affinity affinity = IngestOptions::Affinity::Auto)
{
    Phase phase;
    phase.name = std::move(name);

    PoolOptions options;
    options.workers = workers;
    EnginePool pool(options);
    IngestOptions ingest_options;
    ingest_options.decoders = decoders;
    ingest_options.batch = 32;
    ingest_options.affinity = affinity;
    IngestStats stats;
    SourceError error;
    if (!ingest(*source, pool, ingest_options, &stats, &error)) {
        std::fprintf(stderr, "ingest failed: %s\n",
                     error.str().c_str());
        std::exit(1);
    }
    Report merged = pool.results();
    merged.canonicalize();

    phase.seconds = timer.elapsedSec();
    phase.rssGrowthKb = peakRssKb() - rss_before;
    phase.verdict = merged.str();
    phase.failCount = merged.failCount();
    return phase;
}

/** v2 file → decoder team → engine pool (optionally sharded). */
Phase
runPipeline(const std::string &path, size_t decoders, size_t workers,
            size_t shards = 1,
            IngestOptions::Affinity affinity = IngestOptions::Affinity::Auto)
{
    std::string name = "v2_mmap_" + std::to_string(decoders) + "dec";
    if (shards > 1)
        name += "_sh" + std::to_string(shards);
    if (affinity == IngestOptions::Affinity::Pinned)
        name += "_pin";
    else if (affinity == IngestOptions::Affinity::Shared)
        name += "_shr";
    const size_t rss_before = peakRssKb();
    Timer timer;

    std::string error;
    std::unique_ptr<TraceSource> source;
    if (shards > 1) {
        std::shared_ptr<const TraceFileReader> reader =
            TraceFileReader::open(path, IngestMode::Mmap, &error);
        if (!reader) {
            std::fprintf(stderr, "open %s: %s\n", path.c_str(),
                         error.c_str());
            std::exit(1);
        }
        source = std::make_unique<MultiTraceSource>(
            shardTraceSource(std::move(reader), path, 0, shards));
    } else {
        source = openTraceSource(path, IngestMode::Mmap, 0, &error);
        if (!source) {
            std::fprintf(stderr, "open %s: %s\n", path.c_str(),
                         error.c_str());
            std::exit(1);
        }
    }
    return runSource(std::move(name), std::move(source), decoders,
                     workers, timer, rss_before, affinity);
}

/** The same trace set split across several v2 files. */
Phase
runMultiFile(const std::vector<std::string> &paths, size_t decoders,
             size_t workers)
{
    std::string name = "v2_multi" + std::to_string(paths.size()) +
                       "_" + std::to_string(decoders) + "dec";
    const size_t rss_before = peakRssKb();
    Timer timer;

    std::vector<std::unique_ptr<TraceSource>> children;
    children.reserve(paths.size());
    for (size_t i = 0; i < paths.size(); i++) {
        std::string error;
        auto child = openTraceSource(paths[i], IngestMode::Mmap,
                                     static_cast<uint32_t>(i),
                                     &error);
        if (!child) {
            std::fprintf(stderr, "open %s: %s\n", paths[i].c_str(),
                         error.c_str());
            std::exit(1);
        }
        children.push_back(std::move(child));
    }
    auto source =
        std::make_unique<MultiTraceSource>(std::move(children));
    return runSource(std::move(name), std::move(source), decoders,
                     workers, timer, rss_before);
}

/** v1 file → sequential stream loader → one inline engine. */
Phase
runSerialBaseline(const std::string &path)
{
    Phase phase;
    phase.name = "v1_stream_serial";
    const size_t rss_before = peakRssKb();
    Timer timer;

    bool ok = false;
    auto bundle = loadTracesFromFile(path, &ok);
    if (!ok) {
        std::fprintf(stderr, "cannot load %s\n", path.c_str());
        std::exit(1);
    }
    Engine engine(ModelKind::X86);
    Report merged;
    for (const auto &trace : bundle.traces)
        merged.merge(engine.check(trace));
    merged.canonicalize();

    phase.seconds = timer.elapsedSec();
    phase.rssGrowthKb = peakRssKb() - rss_before;
    phase.verdict = merged.str();
    phase.failCount = merged.failCount();
    return phase;
}

/** A file shape: trace population + its measured phases. */
struct Shape
{
    std::string name;
    size_t traceCount = 0;
    size_t totalOps = 0;
    size_t fileBytesV2 = 0;
    std::vector<Phase> phases;
    bool verdictMatch = false;

    double
    speedup() const
    {
        // baseline (last phase) over the 4-decoder pipeline (first).
        return phases.back().seconds / phases.front().seconds;
    }
};

Shape
runShape(const std::string &name, size_t count, size_t rounds,
         size_t workers)
{
    const auto traces = makeTraces(count, rounds, 0xbeef + count);
    Shape shape;
    shape.name = name;
    shape.traceCount = traces.size();
    for (const auto &t : traces)
        shape.totalOps += t.size();

    const std::string base =
        "/tmp/pmtest_bench_ingest_" + std::to_string(getpid()) + "_" +
        name;
    const std::string v2_path = base + ".v2.trace";
    const std::string v1_path = base + ".v1.trace";
    if (!saveTracesToFile(v2_path, traces, TraceFormat::V2) ||
        !saveTracesToFile(v1_path, traces, TraceFormat::V1)) {
        std::fprintf(stderr, "cannot write trace files under /tmp\n");
        std::exit(1);
    }

    // The same trace set split across three v2 part files, for the
    // multi-file ingest phase.
    std::vector<std::string> part_paths;
    {
        const size_t parts = 3;
        size_t at = 0;
        for (size_t p = 0; p < parts; p++) {
            const size_t take =
                (traces.size() - at) / (parts - p);
            std::vector<Trace> part(traces.begin() + at,
                                    traces.begin() + at + take);
            at += take;
            const std::string path =
                base + ".part" + std::to_string(p) + ".trace";
            if (!saveTracesToFile(path, part, TraceFormat::V2)) {
                std::fprintf(stderr,
                             "cannot write trace files under /tmp\n");
                std::exit(1);
            }
            part_paths.push_back(path);
        }
    }

    {
        std::string error;
        auto reader = TraceFileReader::open(v2_path, IngestMode::Mmap,
                                            &error);
        if (!reader) {
            std::fprintf(stderr, "open %s: %s\n", v2_path.c_str(),
                         error.c_str());
            std::exit(1);
        }
        shape.fileBytesV2 = reader->sizeBytes();
    }

    // Candidate phases first: ru_maxrss only ever rises, so later
    // phases would otherwise report zero growth no matter what they
    // allocate.
    shape.phases.push_back(runPipeline(v2_path, 4, workers));
    shape.phases.push_back(runPipeline(v2_path, 2, workers));
    shape.phases.push_back(runPipeline(v2_path, 1, workers));
    shape.phases.push_back(runPipeline(v2_path, 4, workers, 4));
    shape.phases.push_back(runPipeline(v2_path, 4, workers, 4,
                                       IngestOptions::Affinity::Shared));
    shape.phases.push_back(runMultiFile(part_paths, 4, workers));
    shape.phases.push_back(runSerialBaseline(v1_path));

    shape.verdictMatch = true;
    for (const auto &phase : shape.phases) {
        shape.verdictMatch =
            shape.verdictMatch &&
            phase.verdict == shape.phases.back().verdict &&
            phase.failCount == shape.phases.back().failCount;
    }

    std::remove(v2_path.c_str());
    std::remove(v1_path.c_str());
    for (const auto &path : part_paths)
        std::remove(path.c_str());
    return shape;
}

void
printShape(const Shape &shape)
{
    std::printf("%s: %zu traces, %zu ops, v2 file %.1f MiB\n",
                shape.name.c_str(), shape.traceCount, shape.totalOps,
                shape.fileBytesV2 / (1024.0 * 1024.0));
    for (const auto &phase : shape.phases) {
        std::printf("  %-18s %8.3f s   rss +%zu KiB   %zu FAIL\n",
                    phase.name.c_str(), phase.seconds,
                    phase.rssGrowthKb, phase.failCount);
    }
    std::printf("  speedup (v1 serial / v2 mmap 4dec): %.2fx, "
                "verdict %s\n",
                shape.speedup(),
                shape.verdictMatch ? "identical" : "MISMATCH");
}

bool
writeJson(const std::string &path, const std::vector<Shape> &shapes,
          bool smoke)
{
    JsonWriter w;
    w.beginObject();
    w.member("bench", "ingest");
    w.member("smoke", smoke);
    w.member("scale", pmtest::bench::scale());
    w.key("shapes").beginArray();
    for (const Shape &shape : shapes) {
        w.beginObject();
        w.member("name", shape.name);
        w.member("traces", shape.traceCount);
        w.member("ops", shape.totalOps);
        w.member("v2_bytes", shape.fileBytesV2);
        w.member("verdict_match", shape.verdictMatch);
        w.member("speedup", shape.speedup(), 3);
        w.key("phases").beginArray();
        for (const Phase &phase : shape.phases) {
            w.beginObject();
            w.member("name", phase.name);
            w.member("seconds", phase.seconds, 6);
            w.member("rss_growth_kb", phase.rssGrowthKb);
            w.member("fail_count", phase.failCount);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return pmtest::bench::writeJsonFile(path, w);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_path = "BENCH_ingest.json";
    std::string metrics_path;
    std::string trace_events_path;
    pmtest::util::CliParser cli("bench_ingest");
    cli.addFlag("--smoke", &smoke, "tiny deterministic run for CI");
    cli.addString("--json", &json_path,
                  "result document path (default BENCH_ingest.json)");
    cli.addString("--metrics-json", &metrics_path,
                  "write the pmtest-metrics-v1 snapshot");
    cli.addString("--trace-events", &trace_events_path,
                  "write a Chrome trace-event timeline");
    cli.positionalCount(0, 0);
    const auto cli_status = cli.parse(argc, argv);
    if (cli_status != pmtest::util::CliStatus::Ok)
        return pmtest::util::cliExitCode(cli_status);
    if (!trace_events_path.empty())
        obs::Telemetry::instance().enableSpans();

    pmtest::bench::banner("Ingest",
                          "v2 mmap-parallel pipeline vs v1 stream "
                          "serial, load->verdict");

    const size_t s = pmtest::bench::scale();
    const size_t workers = 4;
    std::vector<Shape> shapes;
    if (smoke) {
        shapes.push_back(
            runShape("table1_small", 400, 32, workers));
        shapes.push_back(runShape("few_large", 8, 4000, workers));
    } else {
        shapes.push_back(
            runShape("table1_small", 4000 * s, 48, workers));
        shapes.push_back(
            runShape("few_large", 16, 40000 * s, workers));
    }

    bool all_match = true;
    for (const auto &shape : shapes) {
        printShape(shape);
        all_match = all_match && shape.verdictMatch;
    }

    if (!writeJson(json_path, shapes, smoke))
        return 1;
    std::printf("\nwrote %s\n", json_path.c_str());
    if (!metrics_path.empty() &&
        !pmtest::bench::writeBenchMetricsJson(metrics_path,
                                              "bench_ingest"))
        return 1;
    if (!trace_events_path.empty()) {
        std::string error;
        if (!obs::Telemetry::instance().writeTraceEventsFile(
                trace_events_path, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 1;
        }
    }
    return all_match ? 0 : 1;
}
