#!/usr/bin/env python3
"""Gate bench_kernel results against the committed baseline.

Usage: check_kernel_regression.py CURRENT.json BASELINE.json [TOL]

Compares the per-section candidate-vs-baseline speedup ratio — the
only number that is comparable across machines; absolute Mops track
the runner's CPU — and fails when any section's speedup dropped by
more than TOL (default 0.25, i.e. 25%) relative to the committed
baseline. Sections present on only one side are reported: a missing
section in CURRENT fails (a shape silently dropped is a regression in
coverage), a new section passes with a note (the baseline needs
refreshing).

Exit status: 0 ok, 1 regression, 2 usage/parse error.
"""

import json
import sys


def load_sections(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    return {s["name"]: s for s in doc.get("sections", [])}


def main(argv):
    if len(argv) < 3 or len(argv) > 4:
        print(__doc__, file=sys.stderr)
        return 2
    current = load_sections(argv[1])
    baseline = load_sections(argv[2])
    tolerance = float(argv[3]) if len(argv) == 4 else 0.25

    failed = False
    for name, base in sorted(baseline.items()):
        if name not in current:
            print(f"FAIL {name}: section missing from {argv[1]}")
            failed = True
            continue
        got = current[name]["speedup"]
        want = base["speedup"]
        floor = want * (1.0 - tolerance)
        verdict = "ok" if got >= floor else "FAIL"
        print(f"{verdict:4} {name}: speedup {got:.3f} "
              f"(baseline {want:.3f}, floor {floor:.3f})")
        if got < floor:
            failed = True
    for name in sorted(set(current) - set(baseline)):
        print(f"note {name}: not in baseline "
              f"(refresh {argv[2]} to start tracking it)")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
