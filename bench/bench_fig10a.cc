/**
 * @file
 * Fig. 10a reproduction: slowdown of PMTest and the pmemcheck
 * stand-in on the five PMDK-style microbenchmarks, sweeping the
 * transaction size (value bytes) 64–4096. Each run inserts N keys
 * (one transaction per insertion) and is normalized to the native
 * (no-tool) time.
 *
 * Expected shape (paper): PMTest is several times faster than
 * pmemcheck across the board (paper: 5.2–8.9x, avg 7.1x), and
 * PMTest's overhead shrinks as transactions grow because it tracks
 * PM operations at coarse granularity while pmemcheck pays per byte.
 */

#include <algorithm>
#include <vector>

#include "bench/bench_util.hh"
#include "workloads/microbench.hh"

int
main()
{
    using namespace pmtest;
    using namespace pmtest::workloads;

    bench::banner("Fig. 10a",
                  "microbenchmark slowdown: PMTest vs pmemcheck");

    const size_t insertions = 1000 * bench::scale();
    constexpr int kReps = 3;
    const std::vector<size_t> tx_sizes = {64,  128,  256, 512,
                                          1024, 2048, 4096};

    TextTable table;
    table.header({"structure", "txsize(B)", "native(s)", "pmtest",
                  "pmemcheck", "pmemcheck/pmtest"});

    Stats pmtest_all, pmemcheck_all, ratio_all;
    uint64_t steals = 0, stall_ns = 0;
    for (pmds::MapKind kind : pmds::kAllMapKinds) {
        for (size_t tx_size : tx_sizes) {
            MicrobenchConfig config;
            config.kind = kind;
            config.insertions = insertions;
            config.valueSize = tx_size;

            // Best-of-N to de-noise the sub-second native runs.
            auto best = [&](Tool tool) {
                double sec = 1e30;
                for (int rep = 0; rep < kReps; rep++) {
                    const auto run = runMicrobench(config, tool);
                    sec = std::min(sec, run.seconds);
                    if (tool == Tool::PMTest) {
                        steals += run.poolStats.steals;
                        stall_ns += run.poolStats.producerStallNanos;
                    }
                }
                return sec;
            };
            const double t_native = best(Tool::Native);
            const double t_pmtest = best(Tool::PMTest);
            const double t_pmemcheck = best(Tool::Pmemcheck);

            const double s_pmtest = t_pmtest / t_native;
            const double s_pmemcheck = t_pmemcheck / t_native;
            pmtest_all.add(s_pmtest);
            pmemcheck_all.add(s_pmemcheck);
            ratio_all.add(s_pmemcheck / s_pmtest);

            table.row({pmds::mapKindName(kind),
                       std::to_string(tx_size),
                       fmtDouble(t_native, 4),
                       bench::fmtSlowdown(s_pmtest),
                       bench::fmtSlowdown(s_pmemcheck),
                       fmtDouble(s_pmemcheck / s_pmtest, 2)});
        }
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("PMTest slowdown: avg %s (min %s, max %s)\n",
                bench::fmtSlowdown(pmtest_all.mean()).c_str(),
                bench::fmtSlowdown(pmtest_all.min()).c_str(),
                bench::fmtSlowdown(pmtest_all.max()).c_str());
    std::printf("pmemcheck slowdown: avg %s (min %s, max %s)\n",
                bench::fmtSlowdown(pmemcheck_all.mean()).c_str(),
                bench::fmtSlowdown(pmemcheck_all.min()).c_str(),
                bench::fmtSlowdown(pmemcheck_all.max()).c_str());
    std::printf("PMTest speedup over pmemcheck: avg %.2fx "
                "(paper: 7.1x avg, 5.2-8.9x range)\n",
                ratio_all.mean());
    std::printf("dispatch: %llu steals, %.1f ms producer stall across "
                "the PMTest runs (PMTEST_QUEUE_CAP bounds the "
                "queues)\n",
                static_cast<unsigned long long>(steals),
                static_cast<double>(stall_ns) * 1e-6);
    return 0;
}
