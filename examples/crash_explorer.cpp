/**
 * @file
 * Why interval checking beats crash-state enumeration (paper §2.2 /
 * Table 1): this example runs the same buggy protocol through
 *
 *   (a) the Yat-style exhaustive tester, counting how many crash
 *       states it must replay, and
 *   (b) PMTest, which reaches the same verdict from one pass over
 *       the trace,
 *
 * and prints the actual inconsistent crash image the bug can produce.
 *
 *   $ ./crash_explorer
 */

#include <cstdio>
#include <cstring>

#include "baseline/yat.hh"
#include "core/api.hh"
#include "core/engine.hh"
#include "util/clock.hh"

int
main()
{
    using namespace pmtest;

    std::printf("== Crash-state explorer: exhaustive vs interval "
                "checking ==\n\n");

    // A pool holding the classic data/valid pair on separate lines.
    pmem::PmPool pool(1 << 16);
    auto *data = static_cast<uint64_t *>(pool.at(pool.alloc(64)));
    auto *valid = static_cast<uint64_t *>(pool.at(pool.alloc(64)));
    std::vector<uint8_t> initial(pool.base(),
                                 pool.base() + pool.size());

    // The buggy protocol: both stores in one epoch.
    *data = 42;
    *valid = 1;
    Trace trace(0, 0);
    trace.append(PmOp::write(reinterpret_cast<uint64_t>(data), 8));
    trace.append(PmOp::write(reinterpret_cast<uint64_t>(valid), 8));
    trace.append(PmOp::clwb(reinterpret_cast<uint64_t>(data), 8));
    trace.append(PmOp::clwb(reinterpret_cast<uint64_t>(valid), 8));
    trace.append(PmOp::sfence());
    trace.append(PmOp::isOrderedBefore(
        reinterpret_cast<uint64_t>(data), 8,
        reinterpret_cast<uint64_t>(valid), 8));

    // (a) Exhaustive enumeration.
    const uint64_t data_off = pool.offsetOf(data);
    const uint64_t valid_off = pool.offsetOf(valid);
    std::vector<uint8_t> bad_image;
    baseline::Yat yat(pool);
    yat.setInitialImage(initial);
    Timer yat_timer;
    const auto yat_result = yat.run(
        trace, [&](std::vector<uint8_t> &image) {
            uint64_t d, v;
            std::memcpy(&d, image.data() + data_off, 8);
            std::memcpy(&v, image.data() + valid_off, 8);
            const bool consistent = v == 0 || d == 42;
            if (!consistent && bad_image.empty())
                bad_image = image;
            return consistent;
        });
    const double yat_sec = yat_timer.elapsedSec();

    std::printf("Yat-style enumeration: %llu crash points, "
                "%llu states replayed, %llu inconsistent (%.3f ms)\n",
                static_cast<unsigned long long>(yat_result.crashPoints),
                static_cast<unsigned long long>(yat_result.statesTested),
                static_cast<unsigned long long>(yat_result.failures),
                yat_sec * 1e3);
    if (!bad_image.empty()) {
        uint64_t d, v;
        std::memcpy(&d, bad_image.data() + data_off, 8);
        std::memcpy(&v, bad_image.data() + valid_off, 8);
        std::printf("  an actual bad crash image: data=%llu "
                    "valid=%llu  <- valid points at stale data\n",
                    static_cast<unsigned long long>(d),
                    static_cast<unsigned long long>(v));
    }

    // (b) PMTest: one pass over the trace.
    core::Engine engine(core::ModelKind::X86);
    Timer pmtest_timer;
    const auto report = engine.check(trace);
    const double pmtest_sec = pmtest_timer.elapsedSec();
    std::printf("\nPMTest interval checking: %zu FAIL in one pass "
                "(%.3f ms)\n",
                report.failCount(), pmtest_sec * 1e3);
    for (const auto &finding : report.findings())
        std::printf("  %s\n", finding.str().c_str());

    std::printf("\nSame verdict; the enumeration cost grows "
                "exponentially with in-flight lines, the interval "
                "pass stays linear in the trace.\n");
    return 0;
}
