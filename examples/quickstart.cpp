/**
 * @file
 * Quickstart: testing a low-level crash-consistency protocol with the
 * two fundamental checkers.
 *
 * This is the paper's Fig. 1a scenario: an undo-logging array update
 * that misses two persist barriers. We run the buggy version and the
 * fixed version under PMTest and print what the checkers report.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "core/api.hh"

namespace
{

struct Backup
{
    alignas(64) uint64_t val = 0;
    alignas(64) uint64_t valid = 0;
};

alignas(64) uint64_t g_array[16];
Backup g_backup;

/**
 * Crash-consistent array update via undo logging. With buggy=true the
 * two persist barriers of Fig. 1a are omitted.
 */
void
arrayUpdate(int index, uint64_t new_val, bool buggy)
{
    using namespace pmtest;

    // backup.val = array[index]
    pmAssign(&g_backup.val, g_array[index], PMTEST_HERE);
    if (!buggy) {
        PMTEST_CLWB(&g_backup.val, sizeof(g_backup.val));
        PMTEST_SFENCE(); // missing in the buggy version
    }
    // backup.valid = true
    pmAssign<uint64_t>(&g_backup.valid, 1, PMTEST_HERE);
    PMTEST_CLWB(&g_backup.valid, sizeof(g_backup.valid));
    PMTEST_SFENCE();

    // The assertion a developer writes: the saved value must persist
    // no later than the flag that declares it valid.
    PMTEST_IS_ORDERED_BEFORE(&g_backup.val, sizeof(g_backup.val),
                             &g_backup.valid, sizeof(g_backup.valid));

    // array[index] = new_val
    pmAssign(&g_array[index], new_val, PMTEST_HERE);
    if (!buggy) {
        PMTEST_CLWB(&g_array[index], sizeof(uint64_t));
        PMTEST_SFENCE(); // the other missing barrier
    }
    // backup.valid = false
    pmAssign<uint64_t>(&g_backup.valid, 0, PMTEST_HERE);
    PMTEST_CLWB(&g_backup.valid, sizeof(g_backup.valid));
    PMTEST_SFENCE();

    PMTEST_IS_ORDERED_BEFORE(&g_array[index], sizeof(uint64_t),
                             &g_backup.valid, sizeof(g_backup.valid));
    PMTEST_IS_PERSIST(&g_backup.valid, sizeof(g_backup.valid));
}

void
runOnce(bool buggy)
{
    using namespace pmtest;

    pmtestInit(Config{});    // PMTest_INIT
    pmtestThreadInit();      // PMTest_THREAD_INIT
    pmtestStart();           // PMTest_START

    arrayUpdate(2, 42, buggy);

    pmtestSendTrace();       // PMTest_SEND_TRACE
    pmtestGetResult();       // PMTest_GET_RESULT

    const auto report = pmtestResults();
    std::printf("%s version: %zu FAIL, %zu WARN\n",
                buggy ? "buggy" : "fixed", report.failCount(),
                report.warnCount());
    for (const auto &finding : report.findings())
        std::printf("  %s\n", finding.str().c_str());

    pmtestEnd();             // PMTest_END
    pmtestExit();            // PMTest_EXIT
}

} // namespace

int
main()
{
    std::printf("== PMTest quickstart: Fig. 1a array update ==\n\n");
    runOnce(/*buggy=*/true);
    std::printf("\n");
    runOnce(/*buggy=*/false);
    return 0;
}
