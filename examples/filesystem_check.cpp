/**
 * @file
 * Testing a kernel module: the mini PMFS routes its traces through a
 * bounded kernel FIFO to a user-space pump thread (paper Fig. 9b),
 * and PMTest's built-in performance checkers surface the real PMFS
 * journal bug (Table 6, journal.c:632 — the commit path flushes the
 * already-flushed log entry a second time).
 *
 *   $ ./filesystem_check
 */

#include <cstdio>

#include "core/api.hh"
#include "pmfs/pmfs.hh"

namespace
{

void
runOnce(bool with_journal_bug)
{
    using namespace pmtest;

    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    pmfs::Pmfs fs(8 << 20, /*simulate_crashes=*/false,
                  /*use_fifo=*/true);
    fs.journal().faults.redundantCommitFlush = with_journal_bug;
    fs.emitCheckers = true;

    // A small file-server workload.
    const std::string payload(1024, 'd');
    for (int i = 0; i < 8; i++) {
        const std::string name = "file" + std::to_string(i);
        const int ino = fs.create(name);
        fs.write(ino, 0, payload.data(), payload.size());
    }
    std::string read_back(16, 0);
    fs.read(fs.lookup("file3"), 0, read_back.data(),
            read_back.size());
    fs.unlink("file5");

    fs.drainTraces();
    const auto report = pmtestResults();
    std::printf("PMFS %s the journal bug: %zu FAIL, %zu WARN "
                "(%llu traces via the kernel FIFO)\n",
                with_journal_bug ? "with" : "without",
                report.failCount(), report.warnCount(),
                static_cast<unsigned long long>(
                    pmtestTracesSubmitted()));
    size_t shown = 0;
    for (const auto &finding : report.findings()) {
        std::printf("  %s\n", finding.str().c_str());
        if (++shown == 3) {
            std::printf("  ... (%zu more)\n",
                        report.findings().size() - shown);
            break;
        }
    }

    pmtestEnd();
    pmtestExit();
}

} // namespace

int
main()
{
    std::printf("== PMTest: kernel-module testing via the kernel "
                "FIFO ==\n\n");
    runOnce(/*with_journal_bug=*/true);
    std::printf("\n");
    runOnce(/*with_journal_bug=*/false);
    return 0;
}
