/**
 * @file
 * Flexibility across persistency models (paper Fig. 3 and §5.2): the
 * same two checkers test the same logical protocol under both the x86
 * model (write/clwb/sfence) and the HOPS model (write/ofence/dfence).
 * Note what changes: under HOPS, ordering holds after a cheap ofence
 * even though nothing is durable yet.
 *
 *   $ ./hops_port
 */

#include <cstdio>

#include "core/api.hh"

namespace
{

alignas(64) uint64_t g_a;
alignas(64) uint64_t g_b;

/** Fig. 3a: the x86 flavour of "A before B, both durable". */
void
x86Protocol()
{
    using namespace pmtest;
    pmAssign<uint64_t>(&g_a, 1, PMTEST_HERE); // write A
    PMTEST_CLWB(&g_a, sizeof(g_a));
    PMTEST_SFENCE();
    pmAssign<uint64_t>(&g_b, 2, PMTEST_HERE); // write B
    PMTEST_CLWB(&g_b, sizeof(g_b));
    PMTEST_SFENCE();
    PMTEST_IS_ORDERED_BEFORE(&g_a, sizeof(g_a), &g_b, sizeof(g_b));
    PMTEST_IS_PERSIST(&g_a, sizeof(g_a));
    PMTEST_IS_PERSIST(&g_b, sizeof(g_b));
}

/** The ARMv8.2 flavour: DC CVAP + DSB (paper §2.1). */
void
armProtocol()
{
    using namespace pmtest;
    pmAssign<uint64_t>(&g_a, 1, PMTEST_HERE); // write A
    PMTEST_DC_CVAP(&g_a, sizeof(g_a));
    PMTEST_DSB();
    pmAssign<uint64_t>(&g_b, 2, PMTEST_HERE); // write B
    PMTEST_DC_CVAP(&g_b, sizeof(g_b));
    PMTEST_DSB();
    PMTEST_IS_ORDERED_BEFORE(&g_a, sizeof(g_a), &g_b, sizeof(g_b));
    PMTEST_IS_PERSIST(&g_a, sizeof(g_a));
    PMTEST_IS_PERSIST(&g_b, sizeof(g_b));
}

/** Fig. 3b: the HOPS flavour of the same protocol. */
void
hopsProtocol(bool check_durability_early)
{
    using namespace pmtest;
    pmAssign<uint64_t>(&g_a, 1, PMTEST_HERE); // write A
    PMTEST_OFENCE();
    pmAssign<uint64_t>(&g_b, 2, PMTEST_HERE); // write B
    // Ordering already holds here — the light ofence is enough.
    PMTEST_IS_ORDERED_BEFORE(&g_a, sizeof(g_a), &g_b, sizeof(g_b));
    if (check_durability_early) {
        // ...but durability does NOT: this checker FAILs, showing
        // the ofence/dfence split that defines HOPS.
        PMTEST_IS_PERSIST(&g_a, sizeof(g_a));
    }
    PMTEST_DFENCE();
    PMTEST_IS_PERSIST(&g_a, sizeof(g_a));
    PMTEST_IS_PERSIST(&g_b, sizeof(g_b));
}

void
report(const char *label)
{
    const auto r = pmtest::pmtestResults();
    std::printf("%s: %zu FAIL, %zu WARN\n", label, r.failCount(),
                r.warnCount());
    for (const auto &finding : r.findings())
        std::printf("  %s\n", finding.str().c_str());
}

} // namespace

int
main()
{
    using namespace pmtest;
    std::printf("== PMTest: one protocol, three persistency models ==\n\n");

    {
        pmtestInit(Config{.model = core::ModelKind::X86});
        pmtestThreadInit();
        pmtestStart();
        x86Protocol();
        pmtestSendTrace();
        pmtestGetResult();
        report("x86 (clwb/sfence)");
        pmtestExit();
    }
    std::printf("\n");
    {
        pmtestInit(Config{.model = core::ModelKind::Arm});
        pmtestThreadInit();
        pmtestStart();
        armProtocol();
        pmtestSendTrace();
        pmtestGetResult();
        report("ARMv8.2 (DC CVAP/DSB)");
        pmtestExit();
    }
    std::printf("\n");
    {
        pmtestInit(Config{.model = core::ModelKind::Hops});
        pmtestThreadInit();
        pmtestStart();
        hopsProtocol(/*check_durability_early=*/false);
        pmtestSendTrace();
        pmtestGetResult();
        report("HOPS (ofence/dfence)");
        pmtestExit();
    }
    std::printf("\n");
    {
        pmtestInit(Config{.model = core::ModelKind::Hops});
        pmtestThreadInit();
        pmtestStart();
        hopsProtocol(/*check_durability_early=*/true);
        pmtestSendTrace();
        pmtestGetResult();
        report("HOPS, asserting durability before the dfence "
               "(expected FAIL)");
        pmtestExit();
    }
    return 0;
}
