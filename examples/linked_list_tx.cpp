/**
 * @file
 * Testing transactional code with the high-level checkers.
 *
 * This is the paper's Fig. 1b: appendList() wraps its update in a
 * transaction but forgets to back up the list length with TX_ADD.
 * A single pair of TX_CHECKER_START/TX_CHECKER_END around the
 * transaction finds it automatically — no low-level annotations.
 *
 *   $ ./linked_list_tx
 */

#include <cstdio>

#include "core/api.hh"
#include "txlib/obj_pool.hh"

namespace
{

struct Node
{
    uint64_t value;
    Node *next;
};

struct List
{
    Node *head;
    uint64_t length;
};

/** Fig. 1b's appendList. With buggy=true the length TX_ADD is missing. */
void
appendList(pmtest::txlib::ObjPool &pool, List *list, uint64_t value,
           bool buggy)
{
    using namespace pmtest;

    PMTEST_TX_CHECKER_START();
    {
        txlib::TxScope tx(pool, PMTEST_HERE); // TX_BEGIN
        auto *node = pool.txAlloc<Node>(PMTEST_HERE);
        Node init{value, list->head};
        pool.txWrite(node, &init, sizeof(init), PMTEST_HERE);

        pool.txAdd(&list->head, sizeof(list->head), PMTEST_HERE);
        pool.txAssign(&list->head, node, PMTEST_HERE);

        if (!buggy) {
            // The backup the Fig. 1b programmer forgot.
            pool.txAdd(&list->length, sizeof(list->length),
                       PMTEST_HERE);
        }
        pool.txAssign(&list->length, list->length + 1, PMTEST_HERE);
    } // TX_END
    PMTEST_TX_CHECKER_END();
    pmtest::pmtestSendTrace();
}

void
runOnce(bool buggy)
{
    using namespace pmtest;

    txlib::ObjPool pool(1 << 20);
    auto *list = pool.root<List>();

    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();

    appendList(pool, list, 7, buggy);
    appendList(pool, list, 8, buggy);

    pmtestGetResult();
    const auto report = pmtestResults();
    std::printf("%s appendList: %zu FAIL, %zu WARN "
                "(list length now %llu)\n",
                buggy ? "buggy" : "fixed", report.failCount(),
                report.warnCount(),
                static_cast<unsigned long long>(list->length));
    for (const auto &finding : report.findings())
        std::printf("  %s\n", finding.str().c_str());

    pmtestEnd();
    pmtestExit();
}

} // namespace

int
main()
{
    std::printf("== PMTest: Fig. 1b linked list on the "
                "transactional interface ==\n\n");
    runOnce(/*buggy=*/true);
    std::printf("\n");
    runOnce(/*buggy=*/false);
    return 0;
}
