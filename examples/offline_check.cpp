/**
 * @file
 * Record-once / check-offline: capture a program's PM-operation
 * traces to a file, then later replay them through the checking
 * engine (or any other tool) without re-running the program. Useful
 * when the system under test is slow to set up, or when traces come
 * from another machine.
 *
 *   $ ./offline_check
 */

#include <cstdio>

#include "core/api.hh"
#include "core/engine.hh"
#include "trace/trace_io.hh"
#include "txlib/obj_pool.hh"

namespace
{

using namespace pmtest;

/** Run a (buggy) workload and capture its traces via the sink. */
std::vector<Trace>
recordRun()
{
    std::vector<Trace> traces;
    pmtestInit(Config{});
    pmtestSetTraceSink(
        [&](Trace &&trace) { traces.push_back(std::move(trace)); });
    pmtestThreadInit();
    pmtestStart();

    txlib::ObjPool pool(1 << 20);
    auto *x = static_cast<uint64_t *>(pool.allocRaw(8));
    auto *y = static_cast<uint64_t *>(pool.allocRaw(8));

    // Transaction 1: correct.
    pool.txBegin(PMTEST_HERE);
    pool.txAdd(x, 8, PMTEST_HERE);
    pool.txAssign<uint64_t>(x, 1, PMTEST_HERE);
    pool.txCommit(PMTEST_HERE);
    pmtestSendTrace();

    // Transaction 2: modifies y without backing it up.
    pool.txBegin(PMTEST_HERE);
    pool.txAssign<uint64_t>(y, 2, PMTEST_HERE);
    pool.txCommit(PMTEST_HERE);
    pmtestSendTrace();

    pmtestExit();
    return traces;
}

} // namespace

int
main()
{
    std::printf("== PMTest: offline trace checking ==\n\n");

    // Phase 1: record.
    const auto traces = recordRun();
    const std::string path = "/tmp/pmtest_offline_example.trace";
    if (!saveTracesToFile(path, traces)) {
        std::printf("failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf("recorded %zu traces to %s\n", traces.size(),
                path.c_str());

    // Phase 2 (possibly days later, possibly elsewhere): check.
    bool ok = false;
    const auto loaded = loadTracesFromFile(path, &ok);
    if (!ok) {
        std::printf("failed to load traces\n");
        return 1;
    }

    core::Engine engine(core::ModelKind::X86);
    core::Report merged;
    for (const auto &trace : loaded.traces)
        merged.merge(engine.check(trace));

    std::printf("offline check: %zu FAIL, %zu WARN\n",
                merged.failCount(), merged.warnCount());
    std::printf("%s", merged.summaryStr().c_str());

    std::remove(path.c_str());
    return 0;
}
