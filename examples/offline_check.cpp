/**
 * @file
 * Record-once / check-offline: capture a program's PM-operation
 * traces to a file, then later replay them through the checking
 * engine (or any other tool) without re-running the program. Useful
 * when the system under test is slow to set up, or when traces come
 * from another machine.
 *
 * Files are written in the indexed v2 format (per-trace framing plus
 * an index footer), so besides the sequential loader used here they
 * can be mmap'd and decoded in parallel by pmtest_check
 * (--ingest=mmap --decoders=N) — see src/trace/trace_reader.hh.
 *
 *   $ ./offline_check [output.trace] [--trace-events=FILE]
 *
 * With no argument the trace file goes to /tmp and is removed after
 * the check; with an explicit path it is kept, so a pipeline (e.g.
 * the CI offline-check smoke job) can hand it to pmtest_check.
 * --trace-events exports a Chrome trace-event timeline of this
 * process — the recording side of the pipeline, so it includes the
 * capture.seal spans that pmtest_check (which only replays) cannot
 * see.
 */

#include <cstdio>
#include <cstring>

#include "core/api.hh"
#include "core/engine.hh"
#include "obs/telemetry.hh"
#include "trace/trace_io.hh"
#include "txlib/obj_pool.hh"

namespace
{

using namespace pmtest;

/** Run a (buggy) workload and capture its traces via the sink. */
std::vector<Trace>
recordRun()
{
    std::vector<Trace> traces;
    pmtestInit(Config{});
    pmtestSetTraceSink(
        [&](Trace &&trace) { traces.push_back(std::move(trace)); });
    pmtestThreadInit();
    pmtestStart();

    txlib::ObjPool pool(1 << 20);
    auto *x = static_cast<uint64_t *>(pool.allocRaw(8));
    auto *y = static_cast<uint64_t *>(pool.allocRaw(8));

    // Transaction 1: correct.
    pool.txBegin(PMTEST_HERE);
    pool.txAdd(x, 8, PMTEST_HERE);
    pool.txAssign<uint64_t>(x, 1, PMTEST_HERE);
    pool.txCommit(PMTEST_HERE);
    pmtestSendTrace();

    // Transaction 2: modifies y without backing it up.
    pool.txBegin(PMTEST_HERE);
    pool.txAssign<uint64_t>(y, 2, PMTEST_HERE);
    pool.txCommit(PMTEST_HERE);
    pmtestSendTrace();

    pmtestExit();
    return traces;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("== PMTest: offline trace checking ==\n\n");

    std::string out_path;
    std::string trace_events_path;
    for (int i = 1; i < argc; i++) {
        if (std::strncmp(argv[i], "--trace-events=", 15) == 0) {
            trace_events_path = argv[i] + 15;
        } else if (out_path.empty() && argv[i][0] != '-') {
            out_path = argv[i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [output.trace] "
                         "[--trace-events=FILE]\n",
                         argv[0]);
            return 2;
        }
    }
    if (!trace_events_path.empty()) {
        obs::Telemetry::instance().enableSpans();
        obs::nameThread("main");
    }

    const bool keep = !out_path.empty();
    const std::string path =
        keep ? out_path : "/tmp/pmtest_offline_example.trace";

    // Phase 1: record.
    const auto traces = recordRun();
    if (!saveTracesToFile(path, traces)) {
        std::printf("failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf("recorded %zu traces to %s\n", traces.size(),
                path.c_str());

    // Phase 2 (possibly days later, possibly elsewhere): check.
    bool ok = false;
    const auto loaded = loadTracesFromFile(path, &ok);
    if (!ok) {
        std::printf("failed to load traces\n");
        return 1;
    }

    core::Engine engine(core::ModelKind::X86);
    core::Report merged;
    for (const auto &trace : loaded.traces)
        merged.merge(engine.check(trace));
    merged.canonicalize();

    std::printf("offline check: %zu FAIL, %zu WARN\n",
                merged.failCount(), merged.warnCount());
    std::printf("%s", merged.summaryStr().c_str());

    if (!keep)
        std::remove(path.c_str());
    if (!trace_events_path.empty()) {
        std::string error;
        if (!obs::Telemetry::instance().writeTraceEventsFile(
                trace_events_path, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 1;
        }
        std::printf("wrote trace events to %s\n",
                    trace_events_path.c_str());
    }
    return 0;
}
