/**
 * @file
 * Record-once / check-offline: capture a program's PM-operation
 * traces, check them online through the in-process capture source,
 * save them to a file, and later replay the file through the exact
 * same ingest pipeline without re-running the program. Useful when
 * the system under test is slow to set up, or when traces come from
 * another machine.
 *
 * Both checks ride `core::ingest(TraceSource&, EnginePool&, …)`:
 * the online pass pulls from a CaptureTraceSource fed by the trace
 * sink, the offline pass from the file source `openTraceSource`
 * builds (the indexed v2 reader here; the same call accepts legacy
 * v1 files). The two canonical reports are byte-identical — the live
 * and replayed pipelines are the same pipeline.
 *
 * Files are written in the indexed v2 format (per-trace framing plus
 * an index footer), so they can also be mmap'd and decoded in
 * parallel by pmtest_check (--ingest=mmap --decoders=N --shards=N)
 * — see src/trace/trace_reader.hh.
 *
 *   $ ./offline_check [output.trace] [--trace-events=FILE]
 *
 * With no argument the trace file goes to /tmp and is removed after
 * the check; with an explicit path it is kept, so a pipeline (e.g.
 * the CI offline-check smoke job) can hand it to pmtest_check.
 * --trace-events exports a Chrome trace-event timeline of this
 * process — the recording side of the pipeline, so it includes the
 * capture.seal spans that pmtest_check (which only replays) cannot
 * see.
 */

#include <cstdio>
#include <cstring>

#include "core/api.hh"
#include "core/engine_pool.hh"
#include "core/trace_ingest.hh"
#include "obs/telemetry.hh"
#include "trace/trace_io.hh"
#include "trace/trace_source.hh"
#include "txlib/obj_pool.hh"

namespace
{

using namespace pmtest;

/**
 * Run a (buggy) workload. Sealed traces flow into @p capture for the
 * online check and into @p saved for the save-to-file phase.
 */
void
recordRun(CaptureTraceSource *capture, std::vector<Trace> *saved)
{
    pmtestInit(Config{});
    pmtestSetTraceSink([&](Trace &&trace) {
        saved->push_back(trace);
        capture->push(std::move(trace));
    });
    pmtestThreadInit();
    pmtestStart();

    txlib::ObjPool pool(1 << 20);
    auto *x = static_cast<uint64_t *>(pool.allocRaw(8));
    auto *y = static_cast<uint64_t *>(pool.allocRaw(8));

    // Transaction 1: correct.
    pool.txBegin(PMTEST_HERE);
    pool.txAdd(x, 8, PMTEST_HERE);
    pool.txAssign<uint64_t>(x, 1, PMTEST_HERE);
    pool.txCommit(PMTEST_HERE);
    pmtestSendTrace();

    // Transaction 2: modifies y without backing it up.
    pool.txBegin(PMTEST_HERE);
    pool.txAssign<uint64_t>(y, 2, PMTEST_HERE);
    pool.txCommit(PMTEST_HERE);
    pmtestSendTrace();

    pmtestExit();
    capture->close();
}

/** Drain @p source through the unified ingest; canonical report. */
core::Report
checkSource(TraceSource &source)
{
    core::PoolOptions options;
    options.model = core::ModelKind::X86;
    options.workers = 0; // inline checking; the pipeline is the same
    core::EnginePool pool(options);
    core::IngestOptions ingest_options;
    core::IngestStats stats;
    SourceError error;
    if (!core::ingest(source, pool, ingest_options, &stats, &error)) {
        std::fprintf(stderr, "ingest failed: %s\n",
                     error.str().c_str());
        std::exit(1);
    }
    core::Report merged = pool.results();
    merged.canonicalize();
    return merged;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("== PMTest: offline trace checking ==\n\n");

    std::string out_path;
    std::string trace_events_path;
    for (int i = 1; i < argc; i++) {
        if (std::strncmp(argv[i], "--trace-events=", 15) == 0) {
            trace_events_path = argv[i] + 15;
        } else if (out_path.empty() && argv[i][0] != '-') {
            out_path = argv[i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [output.trace] "
                         "[--trace-events=FILE]\n",
                         argv[0]);
            return 2;
        }
    }
    if (!trace_events_path.empty()) {
        obs::Telemetry::instance().enableSpans();
        obs::nameThread("main");
    }

    const bool keep = !out_path.empty();
    const std::string path =
        keep ? out_path : "/tmp/pmtest_offline_example.trace";

    // Phase 1: record, checking online through the capture source.
    CaptureTraceSource capture;
    std::vector<Trace> traces;
    recordRun(&capture, &traces);
    const core::Report online = checkSource(capture);
    std::printf("online check:  %zu FAIL, %zu WARN "
                "(live capture source)\n",
                online.failCount(), online.warnCount());

    if (!saveTracesToFile(path, traces)) {
        std::printf("failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf("recorded %zu traces to %s\n", traces.size(),
                path.c_str());

    // Phase 2 (possibly days later, possibly elsewhere): reopen the
    // file as a source and run the identical pipeline.
    std::string error;
    auto source = openTraceSource(path, IngestMode::Auto, 0, &error);
    if (!source) {
        std::printf("failed to load traces: %s\n", error.c_str());
        return 1;
    }
    const core::Report offline = checkSource(*source);

    std::printf("offline check: %zu FAIL, %zu WARN\n",
                offline.failCount(), offline.warnCount());
    std::printf("%s", offline.summaryStr().c_str());
    std::printf("online and offline reports %s\n",
                online.str() == offline.str() ? "match"
                                              : "DIFFER");

    if (!keep)
        std::remove(path.c_str());
    if (!trace_events_path.empty()) {
        std::string err;
        if (!obs::Telemetry::instance().writeTraceEventsFile(
                trace_events_path, &err)) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 1;
        }
        std::printf("wrote trace events to %s\n",
                    trace_events_path.c_str());
    }
    return online.str() == offline.str() ? 0 : 1;
}
