#include "txlib/obj_pool.hh"

#include <cstring>

#include "core/interval_map.hh"
#include "util/logging.hh"

namespace pmtest::txlib
{

ObjPool::ObjPool(size_t size, bool simulate_crashes, size_t log_size)
    : pool_(size, simulate_crashes)
{
    // Lay out the header (in the root area) and the log region. This
    // happens before any tracking starts, so plain memcpy is fine —
    // a freshly created pool is consistent by construction. The log
    // never takes more than a quarter of the pool.
    log_size = std::min(log_size, size / 4);
    const uint64_t log_offset = pool_.alloc(log_size);

    PoolHeader header;
    header.magic = PoolHeader::kMagic;
    header.logOffset = log_offset;
    header.logSize = log_size;
    std::memcpy(pool_.base(), &header, sizeof(header));
    headerPtr_ = reinterpret_cast<PoolHeader *>(pool_.base());

    LogHeader log;
    std::memcpy(pool_.base() + log_offset, &log, sizeof(log));

    // Mirror the initial layout into the simulated device so crash
    // images always contain a valid header.
    if (pool_.simulating()) {
        pool_.cache()->store(0, &header, sizeof(header));
        pool_.cache()->store(log_offset, &log, sizeof(log));
        pool_.cache()->flushAll();
    }
}

LogHeader *
ObjPool::logHeader()
{
    return reinterpret_cast<LogHeader *>(
        pool_.base() + headerPtr_->logOffset);
}

void *
ObjPool::rootRaw(size_t size)
{
    if (headerPtr_->rootOffset == 0) {
        const uint64_t offset = pool_.alloc(size);
        std::memset(pool_.at(offset), 0, size);

        PoolHeader updated = *headerPtr_;
        updated.rootOffset = offset;
        updated.rootSize = size;
        // The root pointer must be durable before use.
        persist(headerPtr_, &updated, sizeof(updated), PMTEST_HERE);
        if (pool_.simulating()) {
            // Zero-fill of the root object bypassed instrumentation.
            pool_.cache()->store(offset, pool_.at(offset), size);
            pool_.cache()->flushAll();
        }
    }
    if (headerPtr_->rootSize < size)
        fatal("ObjPool::root: root object smaller than requested");
    return pool_.at(headerPtr_->rootOffset);
}

void *
ObjPool::allocRaw(size_t size)
{
    return pool_.at(pool_.alloc(size));
}

void *
ObjPool::txAllocRaw(size_t size, SourceLocation loc)
{
    void *ptr = allocRaw(size);
    if (tx_.depth > 0) {
        // PMDK semantics: a freshly allocated object is covered by the
        // transaction machinery — no TX_ADD needed before writing it.
        appendLogEntry(LogEntry::Alloc, ptr, size, loc);
        pmTxAdd(ptr, size, loc);
        tx_.logged.emplace_back(ptr, size);
    }
    return ptr;
}

bool
ObjPool::coveredByLog(const void *addr, size_t size) const
{
    // Containment within a single logged range covers the practical
    // cases (whole-object snapshots); partially covered ranges are
    // re-logged, which is safe.
    const auto *a = static_cast<const uint8_t *>(addr);
    for (const auto &[ptr, len] : tx_.logged) {
        const auto *p = static_cast<const uint8_t *>(ptr);
        if (a >= p && a + size <= p + len)
            return true;
    }
    return false;
}

void
ObjPool::freeRaw(void *ptr)
{
    pool_.free(pool_.offsetOf(ptr));
}

void
ObjPool::txBegin(SourceLocation loc)
{
    txMutex_.lock();
    tx_.depth++;
    if (tx_.depth == 1) {
        // The undo log is library-internal state: exclude it from the
        // testing scope so the engine's transaction rules only see
        // user-visible persistent objects (PMTest_EXCLUDE, Table 2).
        pmtestExclude(pool_.base() + headerPtr_->logOffset,
                      headerPtr_->logSize);
        // Open the log: mark it valid before any entry lands.
        LogHeader *log = logHeader();
        LogHeader opened = *log;
        opened.valid = 1;
        opened.entryCount = 0;
        pmStore(log, &opened, sizeof(opened), loc);
        pmClwb(log, sizeof(LogHeader), loc);
        pmSfence(loc);
        tx_.modified.clear();
        tx_.logged.clear();
    }
    pmTxBegin(loc);
}

void
ObjPool::appendLogEntry(uint64_t kind, const void *addr, size_t size,
                        SourceLocation loc)
{
    LogHeader *log = logHeader();
    const uint64_t capacity = logCapacity(headerPtr_->logSize);
    const auto *bytes = static_cast<const uint8_t *>(addr);
    uint64_t pool_off = pool_.offsetOf(addr);

    while (size > 0) {
        const size_t chunk =
            std::min<size_t>(size, LogEntry::kMaxData);
        if (log->entryCount >= capacity)
            fatal("ObjPool: undo log full");

        LogEntry entry;
        entry.kind = kind;
        entry.offset = pool_off;
        entry.size = chunk;
        if (kind == LogEntry::Snapshot)
            std::memcpy(entry.data, bytes, chunk);

        auto *slot = reinterpret_cast<LogEntry *>(
            pool_.base() + headerPtr_->logOffset +
            logEntryOffset(log->entryCount));
        // Persist the entry data first...
        pmStore(slot, &entry, sizeof(entry), loc);
        pmClwb(slot, sizeof(entry), loc);
        if (!bugs.skipLogPersist)
            pmSfence(loc);
        // ...then the count that makes it visible to recovery.
        LogHeader bumped = *log;
        bumped.entryCount++;
        pmStore(log, &bumped, sizeof(bumped), loc);
        pmClwb(log, sizeof(LogHeader), loc);
        if (!bugs.skipLogPersist)
            pmSfence(loc);

        bytes += chunk;
        pool_off += chunk;
        size -= chunk;
    }
}

void
ObjPool::txAdd(const void *addr, size_t size, SourceLocation loc)
{
    if (tx_.depth > 0 && coveredByLog(addr, size))
        return; // already snapshotted (or allocated) in this TX
    txAddDup(addr, size, loc);
}

void
ObjPool::txAddDup(const void *addr, size_t size, SourceLocation loc)
{
    // The logical event goes into the trace first: the engine's log
    // tree must cover the range before the in-place writes appear.
    pmTxAdd(addr, size, loc);
    if (tx_.depth == 0) {
        warn("txAdd outside a transaction (recorded; engine will "
             "flag it)");
        return;
    }
    appendLogEntry(LogEntry::Snapshot, addr, size, loc);
    tx_.logged.emplace_back(addr, size);
}

void
ObjPool::txWrite(void *dst, const void *src, size_t size,
                 SourceLocation loc)
{
    pmStore(dst, src, size, loc);
    if (tx_.depth > 0)
        tx_.modified.emplace_back(dst, size);
}

void
ObjPool::txCommit(SourceLocation loc)
{
    if (tx_.depth == 0)
        fatal("ObjPool::txCommit without txBegin");

    if (tx_.depth == 1) {
        // Outermost commit: make every in-place update durable, then
        // retire the log. This is the point where PMDK guarantees
        // persistence (§7.1). Ranges modified several times are
        // coalesced so each byte is written back exactly once.
        if (!bugs.skipCommitFlush) {
            core::IntervalMap<bool> dirty;
            for (const auto &[ptr, size] : tx_.modified) {
                dirty.assign(core::AddrRange(
                                 reinterpret_cast<uint64_t>(ptr),
                                 size),
                             true);
            }
            dirty.forEach([&](const auto &entry) {
                pmClwb(reinterpret_cast<void *>(entry.start),
                       entry.end - entry.start, loc);
            });
        }
        if (!bugs.skipCommitFlush && !bugs.skipCommitFence)
            pmSfence(loc);

        LogHeader *log = logHeader();
        LogHeader closed;
        closed.valid = 0;
        closed.entryCount = 0;
        pmStore(log, &closed, sizeof(closed), loc);
        pmClwb(log, sizeof(LogHeader), loc);
        pmSfence(loc);
        tx_.modified.clear();
        tx_.logged.clear();
    }

    pmTxEnd(loc);
    tx_.depth--;
    txMutex_.unlock();
}

void
ObjPool::persist(void *dst, const void *src, size_t size,
                 SourceLocation loc)
{
    pmStore(dst, src, size, loc);
    pmClwb(dst, size, loc);
    pmSfence(loc);
}

} // namespace pmtest::txlib
