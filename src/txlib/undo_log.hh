/**
 * @file
 * Persistent layout of the txlib undo log and pool header, plus the
 * recovery procedure. The layout lives at fixed offsets inside a
 * pmem::PmPool so that recovery can be run against *crash images*
 * (raw byte vectors produced by the crash injector) exactly as it
 * would run against the pool after a real power failure.
 *
 * Commit protocol (mirrors PMDK's libpmemobj undo transactions):
 *  1. TX_ADD persists a snapshot entry (entry data, then the count)
 *     before the object is modified in place;
 *  2. modifications happen in place;
 *  3. commit flushes all modified ranges, fences, then clears the
 *     log's valid flag (persisted) — the commit point.
 * Recovery: a valid log means the crash hit mid-transaction; apply
 * snapshots in reverse to roll the in-place updates back.
 */

#ifndef PMTEST_TXLIB_UNDO_LOG_HH
#define PMTEST_TXLIB_UNDO_LOG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pmem/tracked_image.hh"

namespace pmtest::txlib
{

/** Pool header, at offset 0 of every txlib pool. */
struct PoolHeader
{
    static constexpr uint64_t kMagic = 0x504d544553545042ULL;

    uint64_t magic = 0;      ///< kMagic once initialized
    uint64_t rootOffset = 0; ///< offset of the root object (0 = none)
    uint64_t rootSize = 0;   ///< size of the root object
    uint64_t logOffset = 0;  ///< offset of the undo-log region
    uint64_t logSize = 0;    ///< bytes reserved for the undo log
};

/** Undo-log region header. */
struct LogHeader
{
    uint64_t valid = 0;      ///< nonzero while a transaction is open
    uint64_t entryCount = 0; ///< number of persisted entries
};

/** One undo-log entry. */
struct LogEntry
{
    /** Entry kinds. */
    enum Kind : uint64_t
    {
        Snapshot = 1, ///< data[] holds the pre-modification bytes
        Alloc = 2,    ///< range was freshly allocated in this TX
    };

    /** Max snapshot payload per entry; larger TX_ADDs are split. */
    static constexpr size_t kMaxData = 256;

    uint64_t kind = Snapshot;
    uint64_t offset = 0; ///< pool offset of the saved range
    uint64_t size = 0;   ///< bytes saved (<= kMaxData)
    uint8_t data[kMaxData] = {};
};

/** Byte offset of entry @p index within the log region. */
constexpr uint64_t
logEntryOffset(uint64_t index)
{
    return sizeof(LogHeader) + index * sizeof(LogEntry);
}

/** Number of entries a log region of @p log_size bytes can hold. */
constexpr uint64_t
logCapacity(uint64_t log_size)
{
    return (log_size - sizeof(LogHeader)) / sizeof(LogEntry);
}

/**
 * Roll back an interrupted transaction in a raw pool image.
 *
 * Reads the pool header at offset 0; if the log is valid, applies the
 * snapshot entries in reverse order and clears the valid flag.
 *
 * @param image a full pool image (e.g. from CrashInjector)
 * @return number of snapshot entries applied (0 if the log was clean)
 */
size_t recoverImage(std::vector<uint8_t> &image);

/**
 * recoverImage() against a TrackedImage: with a tracker attached,
 * every byte recovery depends on (and every byte it repairs) is
 * recorded, which is what the representative crash-state oracle
 * prunes and rolls back with. The untracked overload above wraps
 * this one.
 */
size_t recoverImage(pmem::TrackedImage &image);

/** Whether the image's log is marked valid (crash mid-transaction). */
bool imageLogValid(const std::vector<uint8_t> &image);

/** Tracked variant of imageLogValid(). */
bool imageLogValid(const pmem::TrackedImage &image);

} // namespace pmtest::txlib

#endif // PMTEST_TXLIB_UNDO_LOG_HH
