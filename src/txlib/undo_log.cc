#include "txlib/undo_log.hh"

#include <cstddef>
#include <cstring>

#include "util/logging.hh"

namespace pmtest::txlib
{

bool
imageLogValid(const std::vector<uint8_t> &image)
{
    // Only reads; TrackedImage's mutability is unused.
    pmem::TrackedImage view(const_cast<std::vector<uint8_t> &>(image));
    return imageLogValid(view);
}

bool
imageLogValid(const pmem::TrackedImage &image)
{
    const auto header = image.readAt<PoolHeader>(0);
    if (header.magic != PoolHeader::kMagic)
        return false;
    const auto log = image.readAt<LogHeader>(header.logOffset);
    return log.valid != 0;
}

size_t
recoverImage(std::vector<uint8_t> &image)
{
    pmem::TrackedImage view(image);
    return recoverImage(view);
}

size_t
recoverImage(pmem::TrackedImage &image)
{
    const auto header = image.readAt<PoolHeader>(0);
    if (header.magic != PoolHeader::kMagic)
        return 0; // not a txlib pool (or header itself was lost)

    const auto log = image.readAt<LogHeader>(header.logOffset);
    if (log.valid == 0)
        return 0; // no transaction in flight at the crash

    size_t applied = 0;
    // Apply snapshots newest-first so overlapping TX_ADDs of the same
    // range restore the oldest (pre-transaction) data last. Entry
    // fields and payloads are read individually — recovery's read set
    // is exactly the bytes it depends on, which is what lets the
    // oracle prune crash states recovery cannot distinguish.
    for (uint64_t i = log.entryCount; i-- > 0;) {
        const uint64_t entry_off =
            header.logOffset + logEntryOffset(i);
        const auto kind = image.readAt<uint64_t>(
            entry_off + offsetof(LogEntry, kind));
        if (kind != LogEntry::Snapshot)
            continue; // alloc entries need no data rollback
        const auto offset = image.readAt<uint64_t>(
            entry_off + offsetof(LogEntry, offset));
        const auto size = image.readAt<uint64_t>(
            entry_off + offsetof(LogEntry, size));
        if (size > LogEntry::kMaxData ||
            offset + size > image.size()) {
            // Torn entry (count persisted before data): skip it; the
            // commit protocol guarantees this cannot happen for a
            // correctly instrumented library, but crash images from
            // buggy programs can contain anything.
            continue;
        }
        uint8_t data[LogEntry::kMaxData];
        image.readBytes(entry_off + offsetof(LogEntry, data), data,
                        size);
        image.writeBytes(offset, data, size);
        applied++;
    }

    // Clear the valid flag: recovery is idempotent.
    LogHeader cleared = log;
    cleared.valid = 0;
    cleared.entryCount = 0;
    image.writeAt(header.logOffset, cleared);
    return applied;
}

} // namespace pmtest::txlib
