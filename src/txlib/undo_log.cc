#include "txlib/undo_log.hh"

#include <cstring>

#include "util/logging.hh"

namespace pmtest::txlib
{

namespace
{

template <typename T>
T
readAt(const std::vector<uint8_t> &image, uint64_t offset)
{
    T value;
    if (offset + sizeof(T) > image.size())
        panic("recoverImage: read outside image");
    std::memcpy(&value, image.data() + offset, sizeof(T));
    return value;
}

} // namespace

bool
imageLogValid(const std::vector<uint8_t> &image)
{
    const auto header = readAt<PoolHeader>(image, 0);
    if (header.magic != PoolHeader::kMagic)
        return false;
    const auto log = readAt<LogHeader>(image, header.logOffset);
    return log.valid != 0;
}

size_t
recoverImage(std::vector<uint8_t> &image)
{
    const auto header = readAt<PoolHeader>(image, 0);
    if (header.magic != PoolHeader::kMagic)
        return 0; // not a txlib pool (or header itself was lost)

    const auto log = readAt<LogHeader>(image, header.logOffset);
    if (log.valid == 0)
        return 0; // no transaction in flight at the crash

    size_t applied = 0;
    // Apply snapshots newest-first so overlapping TX_ADDs of the same
    // range restore the oldest (pre-transaction) data last.
    for (uint64_t i = log.entryCount; i-- > 0;) {
        const uint64_t entry_off =
            header.logOffset + logEntryOffset(i);
        const auto entry = readAt<LogEntry>(image, entry_off);
        if (entry.kind != LogEntry::Snapshot)
            continue; // alloc entries need no data rollback
        if (entry.size > LogEntry::kMaxData ||
            entry.offset + entry.size > image.size()) {
            // Torn entry (count persisted before data): skip it; the
            // commit protocol guarantees this cannot happen for a
            // correctly instrumented library, but crash images from
            // buggy programs can contain anything.
            continue;
        }
        std::memcpy(image.data() + entry.offset, entry.data, entry.size);
        applied++;
    }

    // Clear the valid flag: recovery is idempotent.
    LogHeader cleared = log;
    cleared.valid = 0;
    cleared.entryCount = 0;
    std::memcpy(image.data() + header.logOffset, &cleared,
                sizeof(cleared));
    return applied;
}

} // namespace pmtest::txlib
