/**
 * @file
 * ObjPool: the PMDK-libpmemobj-like transactional object store (the
 * paper's "high-level library" CCS category). Provides a root object,
 * a persistent allocator, and failure-atomic undo-log transactions
 * with TX_BEGIN / TX_ADD / TX_END semantics — including the PMDK
 * behaviour the paper highlights in §7.1: updates are only guaranteed
 * persistent when the *outermost* transaction ends.
 *
 * Every PM operation the library performs is instrumented through the
 * pmtest API (pmStore/pmClwb/pmSfence/pmTx*), so programs built on it
 * are testable with both the low-level and the transaction checkers.
 */

#ifndef PMTEST_TXLIB_OBJ_POOL_HH
#define PMTEST_TXLIB_OBJ_POOL_HH

#include <cstdint>
#include <mutex>
#include <vector>

#include "core/api.hh"
#include "pmem/pm_pool.hh"
#include "txlib/undo_log.hh"
#include "util/source_location.hh"

namespace pmtest::txlib
{

/**
 * Fault-injection knobs. Real code never sets these; the Table 5
 * bug-injection campaign uses them to plant transaction-class bugs
 * inside the library (completion bugs), while backup/ordering bugs
 * are planted at the workload level by skipping TX_ADD calls.
 */
struct BugKnobs
{
    /** Commit without flushing modified ranges (incomplete TX). */
    bool skipCommitFlush = false;
    /** Commit without the fence after the flushes (ordering bug). */
    bool skipCommitFence = false;
    /** Skip persisting undo-log entries before modification. */
    bool skipLogPersist = false;
};

/** A transactional persistent object pool. */
class ObjPool
{
  public:
    /**
     * @param size pool size in bytes
     * @param simulate_crashes build the pool with a cache/device pair
     *        so crash images can be generated
     * @param log_size bytes reserved for the undo log
     */
    explicit ObjPool(size_t size, bool simulate_crashes = false,
                     size_t log_size = 1 << 20);

    /** The underlying PM pool (attachable via pmtestAttachPool). */
    pmem::PmPool &pmPool() { return pool_; }
    const pmem::PmPool &pmPool() const { return pool_; }

    /** @{ Root object: created on first access, then stable. */
    void *rootRaw(size_t size);

    template <typename T>
    T *
    root()
    {
        return static_cast<T *>(rootRaw(sizeof(T)));
    }
    /** @} */

    /** @{ Allocation. txAlloc* additionally undo-logs the allocation
     *  so in-TX initialization of the new object needs no TX_ADD
     *  (PMDK semantics). */
    void *allocRaw(size_t size);
    void *txAllocRaw(size_t size, SourceLocation loc = {});

    template <typename T>
    T *
    txAlloc(SourceLocation loc = {})
    {
        return static_cast<T *>(txAllocRaw(sizeof(T), loc));
    }

    void freeRaw(void *ptr);
    /** @} */

    /** @{ Transactions (nesting supported; one TX at a time). */
    void txBegin(SourceLocation loc = {});
    void txCommit(SourceLocation loc = {});
    int txDepth() const { return tx_.depth; }

    /**
     * Snapshot @p size bytes at @p addr into the undo log (TX_ADD).
     * Ranges already covered by this transaction's log — including
     * ranges freshly allocated in it — are skipped silently, like
     * fixed PMDK. Use txAddDup() to model the historical behaviour of
     * logging unconditionally (the Table 6 duplicate-log bug).
     */
    void txAdd(const void *addr, size_t size, SourceLocation loc = {});

    /** TX_ADD without the dedup check (fault injection only). */
    void txAddDup(const void *addr, size_t size, SourceLocation loc = {});

    /** In-place modification inside a TX (tracked for commit flush). */
    void txWrite(void *dst, const void *src, size_t size,
                 SourceLocation loc = {});

    template <typename T>
    void
    txAssign(T *dst, const T &value, SourceLocation loc = {})
    {
        txWrite(dst, &value, sizeof(T), loc);
    }
    /** @} */

    /** Non-transactional durable write: store + clwb + sfence. */
    void persist(void *dst, const void *src, size_t size,
                 SourceLocation loc = {});

    /** Fault-injection knobs (Table 5 campaign). */
    BugKnobs bugs;

  private:
    struct TxContext
    {
        int depth = 0;
        /** Modified host-address ranges, flushed at outermost commit. */
        std::vector<std::pair<void *, size_t>> modified;
        /** Ranges already covered by the log (snapshots + allocs). */
        std::vector<std::pair<const void *, size_t>> logged;
    };

    /** Whether @p addr..@p size is fully covered by tx_.logged. */
    bool coveredByLog(const void *addr, size_t size) const;

    PoolHeader *header() { return headerPtr_; }
    LogHeader *logHeader();
    void appendLogEntry(uint64_t kind, const void *addr, size_t size,
                        SourceLocation loc);
    void persistLogHeader(SourceLocation loc);

    pmem::PmPool pool_;
    PoolHeader *headerPtr_;
    std::recursive_mutex txMutex_;
    TxContext tx_;
};

/** RAII transaction scope: begin on construction, commit on close. */
class TxScope
{
  public:
    explicit TxScope(ObjPool &pool, SourceLocation loc = {})
        : pool_(pool)
    {
        pool_.txBegin(loc);
    }

    /** Commit explicitly (idempotent). */
    void
    commit(SourceLocation loc = {})
    {
        if (!done_) {
            pool_.txCommit(loc);
            done_ = true;
        }
    }

    ~TxScope() { commit(); }

    TxScope(const TxScope &) = delete;
    TxScope &operator=(const TxScope &) = delete;

  private:
    ObjPool &pool_;
    bool done_ = false;
};

} // namespace pmtest::txlib

#endif // PMTEST_TXLIB_OBJ_POOL_HH
