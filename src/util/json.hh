/**
 * @file
 * Minimal streaming JSON writer. One serializer shared by every
 * machine-readable output in the repo — `pmtest_check --metrics-json`,
 * the telemetry trace-event exporter, and the bench `--json` dumps —
 * so the emitted formats stay structurally valid (escaping, comma
 * placement, nesting balance) and cannot drift apart in dialect.
 *
 * Usage is push-style; the writer tracks the container stack and
 * inserts commas:
 *
 *   JsonWriter w;
 *   w.beginObject();
 *   w.key("name").value("flush");
 *   w.key("samples").beginArray().value(1).value(2).endArray();
 *   w.endObject();
 *   std::string out = w.str();
 */

#ifndef PMTEST_UTIL_JSON_HH
#define PMTEST_UTIL_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pmtest
{

/** Streaming JSON serializer writing into an owned string buffer. */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Write an object key; the next value call supplies its value. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v);
    JsonWriter &value(bool v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(int v) { return value(static_cast<int64_t>(v)); }
    JsonWriter &value(unsigned v)
    {
        return value(static_cast<uint64_t>(v));
    }
    /** Fixed-precision double (JSON has no NaN/Inf; both render 0). */
    JsonWriter &value(double v, int precision = 6);

    /** key() + value() in one call, for scalar members. */
    template <typename V>
    JsonWriter &
    member(std::string_view name, V v)
    {
        key(name);
        return value(v);
    }
    JsonWriter &
    member(std::string_view name, double v, int precision)
    {
        key(name);
        return value(v, precision);
    }

    /** The serialized document. Valid once all containers closed. */
    const std::string &str() const { return out_; }

    /** True when every begun container has been ended. */
    bool balanced() const { return stack_.empty(); }

  private:
    enum class Frame : uint8_t
    {
        Object,
        Array
    };

    void prefix(bool is_key);
    void escaped(std::string_view s);

    std::string out_;
    std::vector<Frame> stack_;
    bool needComma_ = false;
    bool pendingKey_ = false;
};

/**
 * Write a finished document to @p path ("-" = stdout, with a
 * trailing newline). The one implementation of the "--x-json=FILE"
 * output contract shared by the tools and benches. @return false
 * with @p error set to "cannot write <path>" on failure.
 */
bool writeJsonFile(const std::string &path, const JsonWriter &w,
                   std::string *error = nullptr);

} // namespace pmtest

#endif // PMTEST_UTIL_JSON_HH
