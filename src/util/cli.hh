/**
 * @file
 * The one command-line flag parser every tool and bench harness in
 * the repo goes through. Before this existed, the strict-from_chars
 * numeric helper, the usage()/exit-2 dance and the "--flag=value"
 * prefix matching were copied (with drift: pmtest_recall used
 * strtol, bench_kernel accepted "--metrics-port=12garbage" via the
 * same) across pmtest_check, pmtest_recall and the benches. CliParser
 * centralizes the contract:
 *
 *  - a typed flag table (bool switches, strictly-parsed sizes with
 *    clamp/max bounds, strings, optional-value strings, named
 *    choices) declared once per tool;
 *  - `--help`/`-h` prints the generated usage plus one help line per
 *    flag to stdout and reports CliStatus::Help (callers exit 0);
 *  - every malformed value and every unknown `-`-prefixed argument
 *    prints a one-line diagnostic followed by the usage text to
 *    stderr and reports CliStatus::Error — callers exit 2, uniformly,
 *    which is the flag-error contract CI asserts against all tools;
 *  - numeric values go through std::from_chars with full-string
 *    consumption: empty values, trailing junk and overflow are hard
 *    errors, never silently 0 as with atol/strtol.
 *
 * Positional arguments are collected in order; min/max positional
 * counts are enforced by parse() when configured.
 */

#ifndef PMTEST_UTIL_CLI_HH
#define PMTEST_UTIL_CLI_HH

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace pmtest::util
{

/** Outcome of one CliParser::parse call. */
enum class CliStatus
{
    Ok,    ///< flags parsed; proceed
    Help,  ///< --help was printed to stdout; exit 0
    Error, ///< diagnostic + usage printed to stderr; exit 2
};

/** One value a choice flag accepts, mapped to an integer code. */
struct CliChoice
{
    const char *name;
    int value;
};

/** Declarative command-line parser with uniform error reporting. */
class CliParser
{
  public:
    /**
     * @param tool         program name printed in the usage line
     *                     (argv[0] overrides it at parse time)
     * @param positionals  rendering of the positional arguments in
     *                     the usage line (e.g. "<trace-file-or-dir>...")
     */
    explicit CliParser(std::string tool, std::string positionals = "");

    /** A plain switch: `--name` sets *out to true. */
    void addFlag(const char *name, bool *out, const char *help);

    /**
     * A strictly-parsed numeric option `--name=N`. Values above
     * @p maxValue are usage errors; values below @p clampMin are
     * clamped up to it (the 0-means-1 convention of --batch and
     * friends). The full value string must parse: empty, trailing
     * junk and overflow are usage errors.
     */
    void addSize(const char *name, size_t *out, const char *help,
                 size_t clampMin = 0, size_t maxValue = ~size_t{0});

    /** A string option `--name=VALUE`; the empty value is an error. */
    void addString(const char *name, std::string *out,
                   const char *help);

    /**
     * A string option whose value is optional: bare `--name` sets
     * only *present; `--name=VALUE` also overwrites *out (empty
     * VALUE is an error). The --fix-hints[=FILE] shape.
     */
    void addOptionalString(const char *name, bool *present,
                           std::string *out, const char *help);

    /**
     * A named-choice option `--name=CHOICE`. Unknown choices are
     * usage errors listing the accepted names.
     */
    void addChoice(const char *name, int *out,
                   std::vector<CliChoice> choices, const char *help);

    /** Require between @p min and @p max positional arguments. */
    void positionalCount(size_t min, size_t max = ~size_t{0});

    /**
     * Parse @p argv. Positional (non-`-`) arguments are appended to
     * @p positionals (required when the parser was configured with a
     * positional rendering or count). On Error a diagnostic and the
     * usage text have already been printed to stderr.
     */
    CliStatus parse(int argc, char **argv,
                    std::vector<std::string> *positionals = nullptr);

    /** Print the one-line usage summary to @p out. */
    void printUsage(std::FILE *out) const;

    /** Print usage plus the per-flag help table (--help output). */
    void printHelp(std::FILE *out) const;

    /**
     * Report a post-parse usage error (a flag combination the table
     * cannot express): prints "@p message" and the usage text to
     * stderr. @return CliStatus::Error so callers can
     * `return cliExit(parser.usageError(...))`.
     */
    CliStatus usageError(const std::string &message) const;

  private:
    enum class Kind : uint8_t
    {
        Flag,
        Size,
        String,
        OptionalString,
        Choice,
    };

    struct Spec
    {
        std::string name; ///< including leading dashes ("--workers")
        Kind kind;
        const char *help;
        bool *boolOut = nullptr;
        size_t *sizeOut = nullptr;
        std::string *stringOut = nullptr;
        int *choiceOut = nullptr;
        std::vector<CliChoice> choices;
        size_t clampMin = 0;
        size_t maxValue = ~size_t{0};
    };

    /** "--name=N" / "--name=FILE" / "--name=x|y" usage rendering. */
    std::string usageToken(const Spec &spec) const;

    CliStatus fail(const std::string &message) const;

    std::string tool_;
    std::string positionals_;
    std::vector<Spec> specs_;
    size_t minPositionals_ = 0;
    size_t maxPositionals_ = ~size_t{0};
};

/** Map a CliStatus to the process exit code (Ok asserts false). */
int cliExitCode(CliStatus status);

} // namespace pmtest::util

#endif // PMTEST_UTIL_CLI_HH
