#include "util/cpu.hh"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace pmtest::util
{

size_t
hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

size_t
envThreadOverride(const char *name, size_t fallback)
{
    const char *raw = std::getenv(name);
    if (!raw || !*raw)
        return fallback;
    size_t value = 0;
    const char *end = raw + std::strlen(raw);
    const auto [ptr, ec] = std::from_chars(raw, end, value);
    if (ec != std::errc{} || ptr != end || value == 0)
        return fallback; // malformed or zero: ignore the override
    return value;
}

size_t
configuredWorkers()
{
    return envThreadOverride("PMTEST_WORKERS", hardwareThreads());
}

PipelineLayout
defaultPipelineLayout()
{
    const size_t cores = hardwareThreads();
    PipelineLayout layout;
    if (cores <= 1) {
        layout.workers = 0; // inline: threads would only switch
        layout.decoders = 1;
    } else {
        layout.decoders = std::clamp<size_t>(cores / 4, 1, 4);
        layout.workers = cores - layout.decoders;
    }
    layout.workers = envThreadOverride("PMTEST_WORKERS",
                                       layout.workers);
    layout.decoders = envThreadOverride("PMTEST_DECODERS",
                                        layout.decoders);
    return layout;
}

} // namespace pmtest::util
