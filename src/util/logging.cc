#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace pmtest
{

namespace
{

std::atomic<LogLevel> g_threshold{LogLevel::Warn};
std::mutex g_log_mutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
      case LogLevel::None: return "none";
    }
    return "?";
}

} // namespace

LogLevel
logThreshold()
{
    return g_threshold.load(std::memory_order_relaxed);
}

LogLevel
setLogThreshold(LogLevel level)
{
    return g_threshold.exchange(level, std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level < logThreshold())
        return;
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "pmtest: %s: %s\n", levelName(level), msg.c_str());
}

void
inform(const std::string &msg)
{
    logMessage(LogLevel::Info, msg);
}

void
warn(const std::string &msg)
{
    logMessage(LogLevel::Warn, msg);
}

void
panic(const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(g_log_mutex);
        std::fprintf(stderr, "pmtest: panic: %s\n", msg.c_str());
    }
    std::abort();
}

void
fatal(const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(g_log_mutex);
        std::fprintf(stderr, "pmtest: fatal: %s\n", msg.c_str());
    }
    std::exit(1);
}

} // namespace pmtest
