/**
 * @file
 * Core-count detection and the derived default pipeline layout, in
 * one place. Every component that sizes a thread team — engine-pool
 * workers, ingest decoders, the bench harnesses' skip heuristics —
 * goes through these helpers, so the precedence is uniform
 * everywhere: explicit flag beats PMTEST_WORKERS / PMTEST_DECODERS
 * environment overrides, which beat hardware detection (documented
 * in README "Thread-count precedence").
 */

#ifndef PMTEST_UTIL_CPU_HH
#define PMTEST_UTIL_CPU_HH

#include <cstddef>

namespace pmtest::util
{

/** std::thread::hardware_concurrency(), clamped to at least 1. */
size_t hardwareThreads();

/**
 * The value of environment variable @p name when it parses as a
 * positive integer, else @p fallback. Unset, empty, malformed and
 * zero values all fall back — an override can only name a real
 * thread count (pass --workers=0 to a tool for inline mode).
 */
size_t envThreadOverride(const char *name, size_t fallback);

/**
 * The core count benches and tools should size against:
 * PMTEST_WORKERS when set, else the detected hardware threads.
 */
size_t configuredWorkers();

/** Default worker/decoder split for the offline pipeline. */
struct PipelineLayout
{
    size_t workers;  ///< pool workers (0 = inline checking)
    size_t decoders; ///< decoder threads (>= 1)
};

/**
 * Derive the default pipeline layout from the available cores. A
 * single-core host checks inline with one decoder — extra threads
 * only add context switching (EXPERIMENTS.md, decoder scaling). A
 * multi-core host gives roughly a quarter of the cores (clamped to
 * 1..4) to decoding and the rest to engine workers, matching the
 * measured decode:check cost ratio. PMTEST_WORKERS / PMTEST_DECODERS
 * override the respective halves; explicit tool flags override both
 * (applied by the callers).
 */
PipelineLayout defaultPipelineLayout();

} // namespace pmtest::util

#endif // PMTEST_UTIL_CPU_HH
