/**
 * @file
 * Wall-clock timing helpers used by the benchmark harnesses to report
 * slowdown factors (time under a testing tool / native time).
 */

#ifndef PMTEST_UTIL_TIMER_HH
#define PMTEST_UTIL_TIMER_HH

#include <chrono>
#include <cstdint>

namespace pmtest
{

/** Simple steady-clock stopwatch. Starts on construction. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed time in nanoseconds since construction/reset. */
    uint64_t
    elapsedNs() const
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - start_)
            .count();
    }

    /** Elapsed time in seconds. */
    double elapsedSec() const { return elapsedNs() * 1e-9; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace pmtest

#endif // PMTEST_UTIL_TIMER_HH
