/**
 * @file
 * Small statistics accumulator used by benchmark harnesses: collects
 * samples and reports min/max/mean/geomean, plus a helper for printing
 * aligned result tables resembling the paper's figures.
 */

#ifndef PMTEST_UTIL_STATS_HH
#define PMTEST_UTIL_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace pmtest
{

/** Accumulates double-valued samples and derives summary statistics. */
class Stats
{
  public:
    /** Add one sample. */
    void add(double v);

    /** Number of samples. */
    size_t count() const { return samples_.size(); }

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** Geometric mean (0 when empty; samples must be positive). */
    double geomean() const;

    /** Minimum sample (0 when empty). */
    double min() const;

    /** Maximum sample (0 when empty). */
    double max() const;

    /** All samples, in insertion order. */
    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
};

/**
 * Fixed-width text table writer. Benches use it to print rows that
 * mirror the paper's figures (one series per tool, one column per
 * parameter point).
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render with padded columns. */
    std::string str() const;

  private:
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given precision. */
std::string fmtDouble(double v, int precision = 2);

} // namespace pmtest

#endif // PMTEST_UTIL_STATS_HH
