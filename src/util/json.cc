#include "util/json.hh"

#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace pmtest
{

void
JsonWriter::prefix(bool is_key)
{
    if (pendingKey_) {
        // A key was written and this is its value.
        if (is_key)
            fatal("JsonWriter: key after key");
        pendingKey_ = false;
        return;
    }
    if (!stack_.empty() && stack_.back() == Frame::Object && !is_key)
        fatal("JsonWriter: value in object without key");
    if (needComma_)
        out_ += ',';
    needComma_ = false;
}

void
JsonWriter::escaped(std::string_view s)
{
    out_ += '"';
    for (const char c : s) {
        switch (c) {
          case '"':
            out_ += "\\\"";
            break;
          case '\\':
            out_ += "\\\\";
            break;
          case '\n':
            out_ += "\\n";
            break;
          case '\r':
            out_ += "\\r";
            break;
          case '\t':
            out_ += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out_ += buf;
            } else {
                out_ += c;
            }
        }
    }
    out_ += '"';
}

JsonWriter &
JsonWriter::beginObject()
{
    prefix(false);
    out_ += '{';
    stack_.push_back(Frame::Object);
    needComma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != Frame::Object ||
        pendingKey_)
        fatal("JsonWriter: unbalanced endObject");
    stack_.pop_back();
    out_ += '}';
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    prefix(false);
    out_ += '[';
    stack_.push_back(Frame::Array);
    needComma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != Frame::Array)
        fatal("JsonWriter: unbalanced endArray");
    stack_.pop_back();
    out_ += ']';
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    if (stack_.empty() || stack_.back() != Frame::Object)
        fatal("JsonWriter: key outside object");
    prefix(true);
    escaped(name);
    out_ += ':';
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    prefix(false);
    escaped(v);
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string_view(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    prefix(false);
    out_ += v ? "true" : "false";
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    prefix(false);
    out_ += std::to_string(v);
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    prefix(false);
    out_ += std::to_string(v);
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v, int precision)
{
    prefix(false);
    if (!std::isfinite(v))
        v = 0; // JSON has no NaN/Inf encoding
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    out_ += buf;
    needComma_ = true;
    return *this;
}

bool
writeJsonFile(const std::string &path, const JsonWriter &w,
              std::string *error)
{
    if (path == "-") {
        std::fwrite(w.str().data(), 1, w.str().size(), stdout);
        std::fputc('\n', stdout);
        return true;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        if (error)
            *error = "cannot write " + path;
        return false;
    }
    const bool ok = std::fwrite(w.str().data(), 1, w.str().size(),
                                f) == w.str().size();
    std::fclose(f);
    if (!ok && error)
        *error = "cannot write " + path;
    return ok;
}

} // namespace pmtest
