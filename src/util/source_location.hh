/**
 * @file
 * Lightweight source location record attached to traced PM operations
 * and checkers, so that WARN/FAIL reports can point at the offending
 * `file:line` exactly as the paper's checking engine does.
 */

#ifndef PMTEST_UTIL_SOURCE_LOCATION_HH
#define PMTEST_UTIL_SOURCE_LOCATION_HH

#include <cstdint>
#include <string>

namespace pmtest
{

/**
 * A (file, line) pair. We use a plain const char* for the file name:
 * every call site passes __FILE__, which has static storage duration,
 * so no ownership is needed and records stay trivially copyable.
 */
struct SourceLocation
{
    const char *file = "";
    uint32_t line = 0;

    constexpr SourceLocation() = default;
    constexpr SourceLocation(const char *f, uint32_t l) : file(f), line(l) {}

    /** Whether this record carries a real location. */
    constexpr bool valid() const { return line != 0; }

    /** Render as "file:line" (or "<unknown>" when unset). */
    std::string
    str() const
    {
        if (!valid())
            return "<unknown>";
        return std::string(file) + ":" + std::to_string(line);
    }
};

/** Convenience macro: the current source location. */
#define PMTEST_HERE ::pmtest::SourceLocation(__FILE__, __LINE__)

} // namespace pmtest

#endif // PMTEST_UTIL_SOURCE_LOCATION_HH
