#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pmtest
{

void
Stats::add(double v)
{
    samples_.push_back(v);
}

double
Stats::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : samples_)
        sum += v;
    return sum / samples_.size();
}

double
Stats::geomean() const
{
    if (samples_.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : samples_)
        log_sum += std::log(v);
    return std::exp(log_sum / samples_.size());
}

double
Stats::min() const
{
    if (samples_.empty())
        return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
Stats::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

void
TextTable::header(std::vector<std::string> cells)
{
    rows_.insert(rows_.begin(), std::move(cells));
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    // Compute per-column widths.
    std::vector<size_t> widths;
    for (const auto &row : rows_) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); i++)
            widths[i] = std::max(widths[i], row[i].size());
    }

    std::string out;
    for (const auto &row : rows_) {
        for (size_t i = 0; i < row.size(); i++) {
            out += row[i];
            if (i + 1 < row.size())
                out += std::string(widths[i] - row[i].size() + 2, ' ');
        }
        out += '\n';
    }
    return out;
}

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

} // namespace pmtest
