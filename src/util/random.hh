/**
 * @file
 * Deterministic pseudo-random number generation for workload generators,
 * crash-state sampling and property tests. All randomness in this
 * repository flows through SplitMix64/Xoshiro so runs are reproducible
 * from a single seed.
 */

#ifndef PMTEST_UTIL_RANDOM_HH
#define PMTEST_UTIL_RANDOM_HH

#include <cstdint>
#include <string>

namespace pmtest
{

/**
 * SplitMix64: tiny, high-quality 64-bit generator. Mainly used to seed
 * Xoshiro256** and for one-shot hashing of seeds.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state_(seed) {}

    /** Next 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    uint64_t state_;
};

/**
 * Xoshiro256**: the repository-wide PRNG. Fast, 256-bit state, good
 * statistical quality; deterministic given the seed.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5ca1ab1eULL)
    {
        SplitMix64 sm(seed);
        for (auto &s : state_)
            s = sm.next();
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        // Rejection-free modulo is fine here: bound is tiny compared
        // to 2^64 in all our uses, so bias is negligible for tests.
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw with probability num/den. */
    bool
    chance(uint64_t num, uint64_t den)
    {
        return below(den) < num;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Random printable key of the given length (lowercase letters). */
    std::string
    key(size_t len)
    {
        std::string s(len, 'a');
        for (auto &c : s)
            c = static_cast<char>('a' + below(26));
        return s;
    }

  private:
    static uint64_t rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace pmtest

#endif // PMTEST_UTIL_RANDOM_HH
