/**
 * @file
 * The one wall-clock module: every timing consumer — the benchmark
 * harnesses' slowdown measurements, the engine pool's stall
 * accounting, and the obs/ telemetry layer's span timestamps — reads
 * the same monotonic clock through these helpers, so numbers from
 * different layers are directly comparable.
 */

#ifndef PMTEST_UTIL_CLOCK_HH
#define PMTEST_UTIL_CLOCK_HH

#include <chrono>
#include <cstdint>

namespace pmtest
{

/** Current monotonic time in nanoseconds (steady clock). */
inline uint64_t
monotonicNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Simple steady-clock stopwatch. Starts on construction. */
class Timer
{
  public:
    Timer() : start_(monotonicNanos()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = monotonicNanos(); }

    /** Elapsed time in nanoseconds since construction/reset. */
    uint64_t elapsedNs() const { return monotonicNanos() - start_; }

    /** Elapsed time in seconds. */
    double elapsedSec() const { return elapsedNs() * 1e-9; }

  private:
    uint64_t start_;
};

/**
 * Best-of-@p reps wall time of @p fn, in seconds. The standard
 * benchmark-harness measurement loop: the minimum over repetitions
 * discards scheduler noise, which only ever adds time.
 */
template <typename Fn>
double
bestOfSeconds(int reps, Fn &&fn)
{
    double best = 0;
    for (int i = 0; i < reps; i++) {
        Timer timer;
        fn();
        const double sec = timer.elapsedSec();
        if (i == 0 || sec < best)
            best = sec;
    }
    return best;
}

} // namespace pmtest

#endif // PMTEST_UTIL_CLOCK_HH
