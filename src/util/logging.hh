/**
 * @file
 * Minimal logging helpers, modelled after gem5's inform()/warn()/panic()
 * trio. All output goes to stderr; verbosity is globally adjustable so
 * tests and benchmarks can silence the framework.
 */

#ifndef PMTEST_UTIL_LOGGING_HH
#define PMTEST_UTIL_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace pmtest
{

/** Log verbosity levels, in increasing severity. */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    None = 4,
};

/** Global log threshold: messages below this level are dropped. */
LogLevel logThreshold();

/** Set the global log threshold; returns the previous value. */
LogLevel setLogThreshold(LogLevel level);

/** Emit a single log line at the given level (thread-safe). */
void logMessage(LogLevel level, const std::string &msg);

/** Informative message (level Info). */
void inform(const std::string &msg);

/** Warning message (level Warn). */
void warn(const std::string &msg);

/**
 * Unrecoverable internal error: log and abort. Used for "should never
 * happen" conditions, i.e. bugs in this framework itself.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Unrecoverable user error: log and exit(1). Used for invalid
 * configuration or misuse of the public API.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * RAII guard that silences logging for its lifetime; used by tests and
 * benchmarks that intentionally provoke warnings.
 */
class ScopedLogSilencer
{
  public:
    ScopedLogSilencer() : saved_(setLogThreshold(LogLevel::None)) {}
    ~ScopedLogSilencer() { setLogThreshold(saved_); }

    ScopedLogSilencer(const ScopedLogSilencer &) = delete;
    ScopedLogSilencer &operator=(const ScopedLogSilencer &) = delete;

  private:
    LogLevel saved_;
};

} // namespace pmtest

#endif // PMTEST_UTIL_LOGGING_HH
