#include "util/cli.hh"

#include <charconv>
#include <cstring>

namespace pmtest::util
{

CliParser::CliParser(std::string tool, std::string positionals)
    : tool_(std::move(tool)), positionals_(std::move(positionals))
{
}

void
CliParser::addFlag(const char *name, bool *out, const char *help)
{
    Spec spec;
    spec.name = name;
    spec.kind = Kind::Flag;
    spec.help = help;
    spec.boolOut = out;
    specs_.push_back(std::move(spec));
}

void
CliParser::addSize(const char *name, size_t *out, const char *help,
                   size_t clamp_min, size_t max_value)
{
    Spec spec;
    spec.name = name;
    spec.kind = Kind::Size;
    spec.help = help;
    spec.sizeOut = out;
    spec.clampMin = clamp_min;
    spec.maxValue = max_value;
    specs_.push_back(std::move(spec));
}

void
CliParser::addString(const char *name, std::string *out,
                     const char *help)
{
    Spec spec;
    spec.name = name;
    spec.kind = Kind::String;
    spec.help = help;
    spec.stringOut = out;
    specs_.push_back(std::move(spec));
}

void
CliParser::addOptionalString(const char *name, bool *present,
                             std::string *out, const char *help)
{
    Spec spec;
    spec.name = name;
    spec.kind = Kind::OptionalString;
    spec.help = help;
    spec.boolOut = present;
    spec.stringOut = out;
    specs_.push_back(std::move(spec));
}

void
CliParser::addChoice(const char *name, int *out,
                     std::vector<CliChoice> choices, const char *help)
{
    Spec spec;
    spec.name = name;
    spec.kind = Kind::Choice;
    spec.help = help;
    spec.choiceOut = out;
    spec.choices = std::move(choices);
    specs_.push_back(std::move(spec));
}

void
CliParser::positionalCount(size_t min, size_t max)
{
    minPositionals_ = min;
    maxPositionals_ = max;
}

std::string
CliParser::usageToken(const Spec &spec) const
{
    switch (spec.kind) {
      case Kind::Flag:
        return "[" + spec.name + "]";
      case Kind::Size:
        return "[" + spec.name + "=N]";
      case Kind::String:
        return "[" + spec.name + "=FILE]";
      case Kind::OptionalString:
        return "[" + spec.name + "[=FILE]]";
      case Kind::Choice: {
        std::string token = "[" + spec.name + "=";
        for (size_t i = 0; i < spec.choices.size(); i++) {
            if (i)
                token += "|";
            token += spec.choices[i].name;
        }
        return token + "]";
      }
    }
    return spec.name;
}

void
CliParser::printUsage(std::FILE *out) const
{
    std::string line = "usage: " + tool_;
    const std::string indent(7 + tool_.size() + 1, ' ');
    size_t column = line.size();
    std::fputs(line.c_str(), out);
    const auto emit = [&](const std::string &token) {
        // Wrap at ~72 columns, aligned under the first flag.
        if (column + 1 + token.size() > 72 && column > indent.size()) {
            std::fprintf(out, "\n%s%s", indent.c_str(),
                         token.c_str());
            column = indent.size() + token.size();
        } else {
            std::fprintf(out, " %s", token.c_str());
            column += 1 + token.size();
        }
    };
    for (const auto &spec : specs_)
        emit(usageToken(spec));
    if (!positionals_.empty())
        emit(positionals_);
    std::fputc('\n', out);
}

void
CliParser::printHelp(std::FILE *out) const
{
    printUsage(out);
    if (specs_.empty())
        return;
    std::fputc('\n', out);
    for (const auto &spec : specs_) {
        std::string token = usageToken(spec);
        // Strip the optional-flag brackets in the table rendering.
        token = token.substr(1, token.size() - 2);
        std::fprintf(out, "  %-28s %s\n", token.c_str(), spec.help);
    }
}

CliStatus
CliParser::fail(const std::string &message) const
{
    std::fprintf(stderr, "%s\n", message.c_str());
    printUsage(stderr);
    return CliStatus::Error;
}

CliStatus
CliParser::usageError(const std::string &message) const
{
    return fail(message);
}

CliStatus
CliParser::parse(int argc, char **argv,
                 std::vector<std::string> *positionals)
{
    if (argc > 0 && argv[0] && argv[0][0] != '\0')
        tool_ = argv[0];

    size_t positional_count = 0;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp(stdout);
            return CliStatus::Help;
        }
        if (arg.empty() || arg[0] != '-') {
            positional_count++;
            if (positional_count > maxPositionals_)
                return fail("unexpected argument '" + arg + "'");
            if (positionals)
                positionals->push_back(arg);
            continue;
        }

        const Spec *matched = nullptr;
        std::string value;
        bool has_value = false;
        for (const auto &spec : specs_) {
            if (arg == spec.name) {
                matched = &spec;
                break;
            }
            if (arg.size() > spec.name.size() + 1 &&
                arg.compare(0, spec.name.size(), spec.name) == 0 &&
                arg[spec.name.size()] == '=') {
                matched = &spec;
                value = arg.substr(spec.name.size() + 1);
                has_value = true;
                break;
            }
            // "--flag=" (empty value) must name the flag in the
            // diagnostic, not fall through to "unknown option".
            if (arg == spec.name + "=") {
                matched = &spec;
                has_value = true;
                break;
            }
        }
        if (!matched)
            return fail("unknown option '" + arg + "'");

        const Spec &spec = *matched;
        switch (spec.kind) {
          case Kind::Flag:
            if (has_value)
                return fail(spec.name + " takes no value");
            *spec.boolOut = true;
            break;
          case Kind::Size: {
            if (!has_value || value.empty())
                return fail("invalid value for " + spec.name +
                            ": ''");
            size_t parsed = 0;
            const char *begin = value.c_str();
            const char *end = begin + value.size();
            const auto [ptr, ec] =
                std::from_chars(begin, end, parsed);
            if (ec != std::errc{} || ptr != end)
                return fail("invalid value for " + spec.name + ": '" +
                            value + "'");
            if (parsed > spec.maxValue)
                return fail("invalid value for " + spec.name + ": '" +
                            value + "' (max " +
                            std::to_string(spec.maxValue) + ")");
            *spec.sizeOut = parsed < spec.clampMin ? spec.clampMin
                                                   : parsed;
            break;
          }
          case Kind::String:
            if (!has_value || value.empty())
                return fail(spec.name + " needs a value");
            *spec.stringOut = value;
            break;
          case Kind::OptionalString:
            if (has_value && value.empty())
                return fail(spec.name +
                            " needs a value (or omit '=')");
            *spec.boolOut = true;
            if (has_value)
                *spec.stringOut = value;
            break;
          case Kind::Choice: {
            const CliChoice *hit = nullptr;
            if (has_value) {
                for (const auto &choice : spec.choices)
                    if (value == choice.name)
                        hit = &choice;
            }
            if (!hit) {
                std::string names;
                for (const auto &choice : spec.choices) {
                    if (!names.empty())
                        names += ", ";
                    names += choice.name;
                }
                return fail("invalid value for " + spec.name + ": '" +
                            value + "' (choices: " + names + ")");
            }
            *spec.choiceOut = hit->value;
            break;
          }
        }
    }

    if (positional_count < minPositionals_) {
        printUsage(stderr);
        return CliStatus::Error;
    }
    return CliStatus::Ok;
}

int
cliExitCode(CliStatus status)
{
    return status == CliStatus::Help ? 0 : 2;
}

} // namespace pmtest::util
