/**
 * @file
 * Yat stand-in: the exhaustive crash-state tester (paper §2.2,
 * Table 1). Yat replays a trace of PM operations and, at chosen crash
 * points, enumerates every legal combination of in-flight writes
 * reaching the medium, then runs the software's recovery + checker on
 * each resulting image. Exact, but exponential — the paper quotes
 * five years for a 100k-operation trace; here it is both the Table 1
 * "slow" comparator and the ground-truth oracle for property tests
 * that validate PMTest's interval verdicts on small traces.
 */

#ifndef PMTEST_BASELINE_YAT_HH
#define PMTEST_BASELINE_YAT_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "pmem/pm_pool.hh"
#include "trace/trace.hh"

namespace pmtest::baseline
{

/** The exhaustive crash-state tester. */
class Yat
{
  public:
    /**
     * Recovery predicate: given a crash image, run recovery and
     * return true when the recovered state is consistent.
     */
    using Predicate =
        std::function<bool(std::vector<uint8_t> &image)>;

    /** Aggregate result of one exhaustive run. */
    struct Result
    {
        uint64_t crashPoints = 0;  ///< op boundaries tested
        uint64_t statesTested = 0; ///< crash images replayed
        uint64_t failures = 0;     ///< images whose recovery failed
        bool truncated = false;    ///< a per-point cap was hit
    };

    /**
     * @param pool the live pool the trace's addresses point into
     *        (used to translate host addresses to device offsets)
     */
    explicit Yat(pmem::PmPool &pool) : pool_(pool) {}

    /**
     * Set the durable image the replay starts from. Defaults to the
     * pool's current content; tests that execute the program before
     * replaying its trace pass the pre-execution snapshot here so
     * "old" values are reconstructed faithfully.
     */
    void
    setInitialImage(std::vector<uint8_t> image)
    {
        initialImage_ = std::move(image);
    }

    /**
     * Replay @p trace op by op against a fresh device/cache pair; at
     * every op boundary enumerate crash images (up to
     * @p per_point_cap) and run @p predicate on each.
     *
     * Trace records carry addresses, not data, so replay reads the
     * written bytes from live memory at replay time. The replay is
     * exact when each location is written at most once in the trace
     * (how the ground-truth property tests use it); for repeated
     * writes, use the pmtestAttachPool() mirroring path instead,
     * which captures data at execution time.
     */
    Result run(const Trace &trace, const Predicate &predicate,
               uint64_t per_point_cap = UINT64_MAX);

    /**
     * Like run(), but only tests the final state (the single crash
     * point at the end of the trace). Used by property tests that
     * compare against a single PMTest checker placed at the end.
     */
    Result runFinal(const Trace &trace, const Predicate &predicate,
                    uint64_t per_point_cap = UINT64_MAX);

  private:
    Result runImpl(const Trace &trace, const Predicate &predicate,
                   uint64_t per_point_cap, bool every_point);

    pmem::PmPool &pool_;
    std::vector<uint8_t> initialImage_;
};

} // namespace pmtest::baseline

#endif // PMTEST_BASELINE_YAT_HH
