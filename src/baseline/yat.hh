/**
 * @file
 * Yat stand-in: the exhaustive crash-state tester (paper §2.2,
 * Table 1). Yat replays a trace of PM operations and, at chosen crash
 * points, enumerates every legal combination of in-flight writes
 * reaching the medium, then runs the software's recovery + checker on
 * each resulting image. Exact, but exponential — the paper quotes
 * five years for a 100k-operation trace; here it is both the Table 1
 * "slow" comparator and the ground-truth oracle for property tests
 * that validate PMTest's interval verdicts on small traces.
 */

#ifndef PMTEST_BASELINE_YAT_HH
#define PMTEST_BASELINE_YAT_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "pmem/crash_injector.hh"
#include "pmem/pm_pool.hh"
#include "trace/trace.hh"

namespace pmtest::baseline
{

/** The exhaustive crash-state tester. */
class Yat
{
  public:
    /**
     * Recovery predicate: given a crash image, run recovery and
     * return true when the recovered state is consistent.
     */
    using Predicate =
        std::function<bool(std::vector<uint8_t> &image)>;

    /** Aggregate result of one exhaustive run. */
    struct Result
    {
        uint64_t crashPoints = 0;  ///< op boundaries tested
        uint64_t statesTested = 0; ///< crash images replayed
        uint64_t failures = 0;     ///< images whose recovery failed
        bool truncated = false;    ///< a per-point cap was hit
    };

    /**
     * @param pool the live pool the trace's addresses point into
     *        (used to translate host addresses to device offsets)
     */
    explicit Yat(pmem::PmPool &pool) : pool_(pool) {}

    /**
     * Set the durable image the replay starts from. Defaults to the
     * pool's current content; tests that execute the program before
     * replaying its trace pass the pre-execution snapshot here so
     * "old" values are reconstructed faithfully.
     */
    void
    setInitialImage(std::vector<uint8_t> image)
    {
        initialImage_ = std::move(image);
    }

    /**
     * Replay @p trace op by op against a fresh device/cache pair; at
     * every op boundary enumerate crash images (up to
     * @p per_point_cap) and run @p predicate on each.
     *
     * Trace records carry addresses, not data, so replay reads the
     * written bytes from live memory at replay time. The replay is
     * exact when each location is written at most once in the trace
     * (how the ground-truth property tests use it); for repeated
     * writes, use the pmtestAttachPool() mirroring path instead,
     * which captures data at execution time.
     */
    Result run(const Trace &trace, const Predicate &predicate,
               uint64_t per_point_cap = UINT64_MAX);

    /**
     * Like run(), but only tests the final state (the single crash
     * point at the end of the trace). Used by property tests that
     * compare against a single PMTest checker placed at the end.
     */
    Result runFinal(const Trace &trace, const Predicate &predicate,
                    uint64_t per_point_cap = UINT64_MAX);

    /** Options for the scalable oracle entry points below. */
    struct OracleOptions
    {
        enum class Mode : uint8_t
        {
            /** Run recovery on every canonical crash state. */
            Exhaustive,
            /**
             * Run recovery once per recovery-distinguishable class,
             * weighting each verdict by the class size. Same failure
             * totals as Exhaustive, exponentially fewer runs.
             */
            Representative
        };

        Mode mode = Mode::Representative;
        /** Cap on recovery runs per crash point (classes in
         *  representative mode). */
        uint64_t perPointCap = UINT64_MAX;
        /**
         * Worker threads exploring crash points. 0 sizes from
         * util::defaultPipelineLayout() (1 on a single-core host);
         * 1 forces serial exploration.
         */
        size_t workers = 0;
        /** Reuse verdicts across crash points whose images agree on
         *  the recovery read set (see pmem::PredicateMemo). */
        bool memoize = true;
        /** Test only the single crash point after the last op. */
        bool finalOnly = false;
    };

    /**
     * Aggregate result of one oracle run. All merged counters are
     * independent of worker count and scheduling except memoHits
     * (which points hit the memo depends on which worker explored
     * them first — the verdicts and totals do not).
     */
    struct OracleResult
    {
        uint64_t crashPoints = 0;   ///< op boundaries tested
        uint64_t statesTested = 0;  ///< recovery verdicts obtained
        uint64_t statesCovered = 0; ///< crash states accounted for
        uint64_t rawStates = 0;     ///< pre-dedup cache-model states
        uint64_t failures = 0;      ///< states whose recovery failed
        uint64_t memoHits = 0;      ///< verdicts served from the memo
        bool truncated = false;     ///< a per-point cap was hit

        /** Crash states proven per recovery run (>= 1). */
        double
        reductionRatio() const
        {
            return statesTested == 0 ? 1.0
                                     : static_cast<double>(statesCovered) /
                                           static_cast<double>(statesTested);
        }
    };

    /**
     * Replay @p trace as run() does, but explore each crash point
     * with delta images, read-set pruning (per @p options.mode), and
     * a crash-point-parallel worker team. The predicate must route
     * every image access through its TrackedImage (or an ImageView
     * carrying the tracker) — see CrashInjector::explore.
     */
    OracleResult runOracle(const Trace &trace,
                           const pmem::TrackedPredicate &predicate,
                           const OracleOptions &options);

    /** runOracle() with default options. */
    OracleResult
    runOracle(const Trace &trace,
              const pmem::TrackedPredicate &predicate)
    {
        return runOracle(trace, predicate, OracleOptions());
    }

    /**
     * Explore the crash states of a live simulating pool *now* (one
     * crash point at the pool's current cache/device state). This is
     * how structure-level workloads — whose traces rewrite locations
     * and so cannot be replayed from addresses — get ground truth:
     * execute the workload against the pool, then ask what recovery
     * sees if power fails here.
     */
    static OracleResult
    explorePool(pmem::PmPool &pool,
                const pmem::TrackedPredicate &predicate,
                const OracleOptions &options);

    /** explorePool() with default options. */
    static OracleResult
    explorePool(pmem::PmPool &pool,
                const pmem::TrackedPredicate &predicate)
    {
        return explorePool(pool, predicate, OracleOptions());
    }

  private:
    Result runImpl(const Trace &trace, const Predicate &predicate,
                   uint64_t per_point_cap, bool every_point);
    void replayOp(pmem::CacheSim &cache, const PmOp &op) const;

    pmem::PmPool &pool_;
    std::vector<uint8_t> initialImage_;
};

} // namespace pmtest::baseline

#endif // PMTEST_BASELINE_YAT_HH
