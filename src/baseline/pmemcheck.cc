#include "baseline/pmemcheck.hh"

#include <atomic>

#include "core/interval.hh"

namespace pmtest::baseline
{

namespace
{
std::atomic<bool> g_dbi_active{false};
} // namespace

void
setDbiActive(bool active)
{
    g_dbi_active.store(active, std::memory_order_relaxed);
}

bool
dbiActive()
{
    return g_dbi_active.load(std::memory_order_relaxed);
}

using core::Finding;
using core::FindingKind;
using core::Severity;

void
Pmemcheck::onTrace(const Trace &trace)
{
    const auto &ops = trace.ops();
    for (size_t i = 0; i < ops.size(); i++) {
        handleOp(ops[i], i, trace.id());
        opsProcessed_++;
    }
}

void
Pmemcheck::handleOp(const PmOp &op, size_t index, uint64_t trace_id)
{
    switch (op.type) {
      case OpType::Write:
        // Word-granular tracking: one shadow entry per stored word,
        // as a binary-instrumentation tool sees the store stream.
        for (uint64_t w = firstWord(op.addr);
             w <= lastWord(op.addr, op.size); w++) {
            ByteInfo &info = shadow_[w];
            info.state = ByteState::Dirty;
            info.storeLoc = op.loc;
        }
        break;

      case OpType::Clwb:
      case OpType::ClflushOpt:
      case OpType::Clflush: {
        bool any_dirty = false;
        bool any_reflush = false;
        for (uint64_t w = firstWord(op.addr);
             w <= lastWord(op.addr, op.size); w++) {
            auto it = shadow_.find(w);
            if (it == shadow_.end())
                continue;
            if (it->second.state == ByteState::Dirty) {
                it->second.state = ByteState::Flushing;
                flushing_.push_back(w);
                any_dirty = true;
            } else {
                any_reflush = true;
            }
        }
        if (!any_dirty) {
            Finding f;
            f.severity = Severity::Warn;
            f.kind = any_reflush ? FindingKind::RedundantFlush
                                 : FindingKind::UnnecessaryFlush;
            f.message = "flush of range with no dirty stores";
            f.loc = op.loc;
            f.traceId = trace_id;
            f.opIndex = index;
            report_.add(std::move(f));
        }
        break;
      }

      case OpType::Sfence:
        // Promote only the bytes with an in-flight flush; a store
        // after the flush re-dirtied its byte and stays Dirty.
        for (uint64_t a : flushing_) {
            auto it = shadow_.find(a);
            if (it != shadow_.end() &&
                it->second.state == ByteState::Flushing) {
                it->second.state = ByteState::Clean;
            }
        }
        flushing_.clear();
        break;

      case OpType::CheckIsPersist: {
        // Honour the generic checker so capability comparisons can
        // run the same annotated binary under both tools.
        for (uint64_t w = firstWord(op.addr);
             w <= lastWord(op.addr, op.size); w++) {
            auto it = shadow_.find(w);
            if (it != shadow_.end() &&
                it->second.state != ByteState::Clean) {
                Finding f;
                f.severity = Severity::Fail;
                f.kind = FindingKind::NotPersisted;
                f.message = "store not made persistent";
                f.loc = op.loc;
                f.traceId = trace_id;
                f.opIndex = index;
                report_.add(std::move(f));
                break;
            }
        }
        break;
      }

      default:
        // Transactions, HOPS fences and the ordering checker are not
        // supported — pmemcheck is PMDK/x86-specific (Table 1).
        break;
    }
}

core::Report
Pmemcheck::finish()
{
    for (const auto &[addr, info] : shadow_) {
        if (info.state == ByteState::Clean)
            continue;
        Finding f;
        f.severity = Severity::Fail;
        f.kind = FindingKind::NotPersisted;
        f.message = "store not made persistent at exit (word at " +
                    core::AddrRange(addr << 3, 8).str() + ")";
        f.loc = info.storeLoc;
        report_.add(std::move(f));
        // One finding per store site is enough; pmemcheck aggregates.
        break;
    }
    return report_;
}

} // namespace pmtest::baseline
