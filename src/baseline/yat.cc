#include "baseline/yat.hh"

#include <atomic>
#include <cstring>
#include <thread>

#include "obs/telemetry.hh"
#include "pmem/cache_sim.hh"
#include "pmem/crash_injector.hh"
#include "pmem/pm_device.hh"
#include "util/cpu.hh"
#include "util/logging.hh"

namespace pmtest::baseline
{

namespace
{

uint64_t
satAdd(uint64_t a, uint64_t b)
{
    return (a > UINT64_MAX - b) ? UINT64_MAX : a + b;
}

/** Fold one crash point's exploration into an oracle result. */
void
accumulate(Yat::OracleResult &into,
           const pmem::CrashInjector::ExploreResult &er,
           uint64_t raw_states)
{
    into.crashPoints++;
    into.statesTested = satAdd(into.statesTested, er.statesTested);
    into.statesCovered = satAdd(into.statesCovered, er.statesCovered);
    into.rawStates = satAdd(into.rawStates, raw_states);
    into.failures = satAdd(into.failures, er.failures);
    into.memoHits = satAdd(into.memoHits, er.memoHits);
    if (er.truncated)
        into.truncated = true;
}

void
countOracle(const Yat::OracleResult &r)
{
    obs::count(obs::Counter::OracleStatesTested, r.statesTested);
    obs::count(obs::Counter::OracleStatesCovered, r.statesCovered);
    obs::count(obs::Counter::OracleMemoHits, r.memoHits);
}

} // namespace

Yat::Result
Yat::run(const Trace &trace, const Predicate &predicate,
         uint64_t per_point_cap)
{
    return runImpl(trace, predicate, per_point_cap, true);
}

Yat::Result
Yat::runFinal(const Trace &trace, const Predicate &predicate,
              uint64_t per_point_cap)
{
    return runImpl(trace, predicate, per_point_cap, false);
}

void
Yat::replayOp(pmem::CacheSim &cache, const PmOp &op) const
{
    switch (op.type) {
      case OpType::Write: {
        // The trace records the *new* content's address; replay
        // copies the bytes the program actually wrote, which at
        // replay time still live at that address.
        const void *data = reinterpret_cast<const void *>(op.addr);
        cache.store(pool_.offsetOf(data), data, op.size);
        break;
      }
      case OpType::Clwb:
      case OpType::ClflushOpt:
      case OpType::Clflush:
        cache.clwb(
            pool_.offsetOf(reinterpret_cast<const void *>(op.addr)),
            op.size);
        break;
      case OpType::Sfence:
      case OpType::Dfence:
        cache.sfence();
        break;
      default:
        break; // checkers/TX events do not affect the medium
    }
}

Yat::Result
Yat::runImpl(const Trace &trace, const Predicate &predicate,
             uint64_t per_point_cap, bool every_point)
{
    Result result;

    // Replay into a private device/cache pair seeded with the
    // initial image (the pool's current content unless the caller
    // supplied a pre-execution snapshot) — the trace then perturbs it.
    pmem::PmDevice device(pool_.size());
    device.setImage(initialImage_.empty()
                        ? std::vector<uint8_t>(pool_.base(),
                                               pool_.base() +
                                                   pool_.size())
                        : initialImage_);
    pmem::CacheSim cache(device, true);

    // One scratch image reused across every crash state; assignment
    // keeps the capacity, so only the first state allocates.
    std::vector<uint8_t> scratch;

    auto test_point = [&] {
        pmem::CrashInjector injector(cache);
        const uint64_t visited = injector.enumerate(
            [&](const std::vector<uint8_t> &image) {
                scratch = image;
                if (!predicate(scratch))
                    result.failures++;
                result.statesTested++;
            },
            per_point_cap);
        if (visited >= per_point_cap)
            result.truncated = true;
        result.crashPoints++;
    };

    for (const auto &op : trace.ops()) {
        replayOp(cache, op);
        if (every_point)
            test_point();
    }
    if (!every_point)
        test_point();
    return result;
}

Yat::OracleResult
Yat::runOracle(const Trace &trace,
               const pmem::TrackedPredicate &predicate,
               const OracleOptions &options)
{
    const auto &ops = trace.ops();
    const uint64_t points = options.finalOnly ? 1 : ops.size();
    OracleResult result;
    if (points == 0)
        return result;

    size_t workers = options.workers;
    if (workers == 0)
        workers = std::max<size_t>(1, util::defaultPipelineLayout().workers);
    workers = static_cast<size_t>(
        std::min<uint64_t>(workers, points));

    const std::vector<uint8_t> initial =
        initialImage_.empty()
            ? std::vector<uint8_t>(pool_.base(),
                                   pool_.base() + pool_.size())
            : initialImage_;

    // Crash points are claimed in contiguous blocks off a shared
    // counter; each worker's claims are monotonically increasing, so
    // a worker only ever replays the trace forward into its private
    // device/cache pair, and a write-log-synced mirror of the device
    // image doubles as the in-place working image for exploration
    // (CrashInjector::explore restores it before returning).
    std::atomic<uint64_t> next_point{0};
    const uint64_t block =
        std::max<uint64_t>(1, points / (workers * 4));

    auto explore_points = [&](OracleResult &local) {
        pmem::PmDevice device(pool_.size());
        device.setImage(initial);
        device.enableWriteLog();
        pmem::CacheSim cache(device, true);
        std::vector<uint8_t> mirror = device.image();
        device.takeWriteLog(); // mirror is synced from here on
        pmem::PredicateMemo memo;
        uint64_t replayed = 0;

        for (;;) {
            const uint64_t begin = next_point.fetch_add(block);
            if (begin >= points)
                break;
            const uint64_t end = std::min(points, begin + block);
            for (uint64_t p = begin; p < end; p++) {
                const uint64_t target =
                    options.finalOnly ? ops.size() : p + 1;
                while (replayed < target) {
                    replayOp(cache, ops[replayed]);
                    replayed++;
                }
                for (const auto &wr : device.takeWriteLog()) {
                    std::memcpy(mirror.data() + wr.offset,
                                device.image().data() + wr.offset,
                                wr.size);
                }

                obs::SpanScope span(obs::Stage::OracleEnumerate);
                pmem::CrashInjector injector(cache, false);
                pmem::CrashInjector::ExploreOptions eo;
                eo.representative =
                    options.mode == OracleOptions::Mode::Representative;
                eo.stateCap = options.perPointCap;
                eo.memo = options.memoize ? &memo : nullptr;
                accumulate(local,
                           injector.explore(mirror, predicate, eo),
                           injector.rawStateCount());
            }
        }
    };

    if (workers <= 1) {
        explore_points(result);
    } else {
        std::vector<OracleResult> locals(workers);
        std::vector<std::thread> team;
        team.reserve(workers);
        for (size_t w = 0; w < workers; w++)
            team.emplace_back(
                [&, w] { explore_points(locals[w]); });
        for (auto &t : team)
            t.join();
        for (const OracleResult &local : locals) {
            result.crashPoints += local.crashPoints;
            result.statesTested =
                satAdd(result.statesTested, local.statesTested);
            result.statesCovered =
                satAdd(result.statesCovered, local.statesCovered);
            result.rawStates = satAdd(result.rawStates, local.rawStates);
            result.failures = satAdd(result.failures, local.failures);
            result.memoHits = satAdd(result.memoHits, local.memoHits);
            if (local.truncated)
                result.truncated = true;
        }
    }

    countOracle(result);
    return result;
}

Yat::OracleResult
Yat::explorePool(pmem::PmPool &pool,
                 const pmem::TrackedPredicate &predicate,
                 const OracleOptions &options)
{
    if (!pool.simulating())
        panic("Yat::explorePool: pool has no crash simulation");

    obs::SpanScope span(obs::Stage::OracleEnumerate);
    pmem::CrashInjector injector(*pool.cache(), false);
    std::vector<uint8_t> working = pool.pmDevice()->image();
    pmem::PredicateMemo memo;

    pmem::CrashInjector::ExploreOptions eo;
    eo.representative =
        options.mode == OracleOptions::Mode::Representative;
    eo.stateCap = options.perPointCap;
    eo.memo = options.memoize ? &memo : nullptr;

    OracleResult result;
    accumulate(result, injector.explore(working, predicate, eo),
               injector.rawStateCount());
    countOracle(result);
    return result;
}

} // namespace pmtest::baseline
