#include "baseline/yat.hh"

#include "pmem/cache_sim.hh"
#include "pmem/crash_injector.hh"
#include "pmem/pm_device.hh"

namespace pmtest::baseline
{

Yat::Result
Yat::run(const Trace &trace, const Predicate &predicate,
         uint64_t per_point_cap)
{
    return runImpl(trace, predicate, per_point_cap, true);
}

Yat::Result
Yat::runFinal(const Trace &trace, const Predicate &predicate,
              uint64_t per_point_cap)
{
    return runImpl(trace, predicate, per_point_cap, false);
}

Yat::Result
Yat::runImpl(const Trace &trace, const Predicate &predicate,
             uint64_t per_point_cap, bool every_point)
{
    Result result;

    // Replay into a private device/cache pair seeded with the
    // initial image (the pool's current content unless the caller
    // supplied a pre-execution snapshot) — the trace then perturbs it.
    pmem::PmDevice device(pool_.size());
    device.setImage(initialImage_.empty()
                        ? std::vector<uint8_t>(pool_.base(),
                                               pool_.base() +
                                                   pool_.size())
                        : initialImage_);
    pmem::CacheSim cache(device, true);

    auto test_point = [&] {
        pmem::CrashInjector injector(cache);
        const uint64_t visited = injector.enumerate(
            [&](const std::vector<uint8_t> &image) {
                std::vector<uint8_t> copy = image;
                if (!predicate(copy))
                    result.failures++;
                result.statesTested++;
            },
            per_point_cap);
        if (visited >= per_point_cap)
            result.truncated = true;
        result.crashPoints++;
    };

    const auto &ops = trace.ops();
    for (const auto &op : ops) {
        switch (op.type) {
          case OpType::Write: {
            // The trace records the *new* content's address; replay
            // copies the bytes the program actually wrote, which at
            // replay time still live at that address.
            const void *data =
                reinterpret_cast<const void *>(op.addr);
            cache.store(pool_.offsetOf(data), data, op.size);
            break;
          }
          case OpType::Clwb:
          case OpType::ClflushOpt:
          case OpType::Clflush:
            cache.clwb(pool_.offsetOf(
                           reinterpret_cast<const void *>(op.addr)),
                       op.size);
            break;
          case OpType::Sfence:
          case OpType::Dfence:
            cache.sfence();
            break;
          default:
            break; // checkers/TX events do not affect the medium
        }
        if (every_point)
            test_point();
    }
    if (!every_point)
        test_point();
    return result;
}

} // namespace pmtest::baseline
