/**
 * @file
 * Pmemcheck stand-in: a store-granular, synchronous persistence
 * checker, structurally modelled on the Valgrind tool the paper
 * compares against (§6.2.1). Two properties make it slow relative to
 * PMTest, and both are reproduced here:
 *
 *  1. granularity — state is tracked per 8-byte *word* of every
 *     store (the binary-instrumentation analogue: Valgrind sees the
 *     program's individual store instructions), not per coarse
 *     range;
 *  2. coupling — every trace is processed synchronously on the
 *     application thread (install via pmtestSetTraceSink), whereas
 *     PMTest's engine runs decoupled on workers.
 *
 * Checking semantics mirror pmemcheck's: stores to PM must be flushed
 * and fenced before the region of interest ends; flushing a clean
 * byte and double-flushing are reported like pmemcheck's
 * "redundant flush" diagnostics.
 */

#ifndef PMTEST_BASELINE_PMEMCHECK_HH
#define PMTEST_BASELINE_PMEMCHECK_HH

#include <cstdint>
#include <unordered_map>

#include "core/report.hh"
#include "trace/trace.hh"

namespace pmtest::baseline
{

/**
 * @{ Dynamic-binary-instrumentation cost model. The real pmemcheck
 * runs the whole program under Valgrind, which slows *every*
 * instruction by roughly an order of magnitude — that, not the PM-op
 * analysis, dominates its 20x-class slowdowns on real workloads.
 * While the pmemcheck tool is active the harness sets this flag, and
 * workload code multiplies its non-PM compute by dbiSlowdownFactor()
 * to model the tax.
 */
void setDbiActive(bool active);
bool dbiActive();
constexpr size_t dbiSlowdownFactor() { return 15; }
/** @} */

/** The pmemcheck-like synchronous checker. */
class Pmemcheck
{
  public:
    /** Process one trace synchronously (call from the trace sink). */
    void onTrace(const Trace &trace);

    /**
     * Finish the analysis: every byte still dirty (stored but not
     * flushed+fenced) becomes a "store not made persistent" finding.
     */
    core::Report finish();

    /** Findings collected so far (without the end-of-run sweep). */
    const core::Report &report() const { return report_; }

    /** Total ops processed. */
    uint64_t opsProcessed() const { return opsProcessed_; }

  private:
    /** Per-word store state (the Valgrind shadow-memory analogue). */
    enum class ByteState : uint8_t
    {
        Dirty,       ///< stored, no flush yet
        Flushing,    ///< flush issued, fence outstanding
        Clean,       ///< flushed and fenced
    };

    struct ByteInfo
    {
        ByteState state = ByteState::Dirty;
        SourceLocation storeLoc{};
    };

    void handleOp(const PmOp &op, size_t index, uint64_t trace_id);

    /** Shadow state keyed by word index (addr >> 3). */
    std::unordered_map<uint64_t, ByteInfo> shadow_;
    /** Words with an issued-but-unfenced flush (drained at sfence). */
    std::vector<uint64_t> flushing_;

    static uint64_t firstWord(uint64_t addr) { return addr >> 3; }
    static uint64_t lastWord(uint64_t addr, uint64_t size)
    {
        return (addr + (size ? size - 1 : 0)) >> 3;
    }
    core::Report report_;
    uint64_t opsProcessed_ = 0;
};

} // namespace pmtest::baseline

#endif // PMTEST_BASELINE_PMEMCHECK_HH
