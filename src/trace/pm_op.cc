#include "trace/pm_op.hh"

#include <cstdio>

namespace pmtest
{

const char *
opTypeName(OpType type)
{
    switch (type) {
      case OpType::Write: return "write";
      case OpType::Clwb: return "clwb";
      case OpType::ClflushOpt: return "clflushopt";
      case OpType::Clflush: return "clflush";
      case OpType::Sfence: return "sfence";
      case OpType::Ofence: return "ofence";
      case OpType::Dfence: return "dfence";
      case OpType::DcCvap: return "dc_cvap";
      case OpType::Dsb: return "dsb";
      case OpType::TxBegin: return "tx_begin";
      case OpType::TxEnd: return "tx_end";
      case OpType::TxAdd: return "tx_add";
      case OpType::CheckIsPersist: return "isPersist";
      case OpType::CheckIsOrderedBefore: return "isOrderedBefore";
      case OpType::TxCheckStart: return "tx_check_start";
      case OpType::TxCheckEnd: return "tx_check_end";
      case OpType::Exclude: return "exclude";
      case OpType::Include: return "include";
    }
    return "?";
}

bool
isCheckerOp(OpType type)
{
    switch (type) {
      case OpType::CheckIsPersist:
      case OpType::CheckIsOrderedBefore:
      case OpType::TxCheckStart:
      case OpType::TxCheckEnd:
        return true;
      default:
        return false;
    }
}

std::string
PmOp::str() const
{
    char buf[128];
    switch (type) {
      case OpType::Sfence:
      case OpType::Ofence:
      case OpType::Dfence:
      case OpType::Dsb:
      case OpType::TxBegin:
      case OpType::TxEnd:
      case OpType::TxCheckStart:
      case OpType::TxCheckEnd:
        std::snprintf(buf, sizeof(buf), "%s()", opTypeName(type));
        break;
      case OpType::CheckIsOrderedBefore:
        std::snprintf(buf, sizeof(buf), "%s(0x%llx,%llu,0x%llx,%llu)",
                      opTypeName(type),
                      static_cast<unsigned long long>(addr),
                      static_cast<unsigned long long>(size),
                      static_cast<unsigned long long>(addrB),
                      static_cast<unsigned long long>(sizeB));
        break;
      default:
        std::snprintf(buf, sizeof(buf), "%s(0x%llx,%llu)",
                      opTypeName(type),
                      static_cast<unsigned long long>(addr),
                      static_cast<unsigned long long>(size));
        break;
    }
    return buf;
}

} // namespace pmtest
