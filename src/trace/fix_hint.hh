/**
 * @file
 * Machine-readable fix hints and the trace-level patcher that applies
 * them — the repair half of the detect→repair→verify loop
 * (Hippocrates-style, but at trace granularity instead of LLVM IR).
 *
 * Every finding class the checking engine emits has a mechanical
 * repair: a missing writeback becomes an inserted flush + fence, a
 * missing ordering point becomes a fence in front of the later write,
 * a redundant writeback is deleted, a missing undo-log backup becomes
 * an inserted TX_ADD. A FixHint encodes exactly one such edit against
 * the *unpatched* trace: which action, which address range, and which
 * op index anchors the edit. The concrete op vocabulary (clwb vs
 * DC CVAP, sfence vs dfence) is chosen by the persistency model at
 * synthesis time and carried in the hint, so the patcher itself is
 * model-agnostic.
 *
 * Hints are only ever *proposals*: `core::verifyHints` replays each
 * patched trace through the same engine and accepts a hint only when
 * the original finding disappears and no new findings are introduced.
 */

#ifndef PMTEST_TRACE_FIX_HINT_HH
#define PMTEST_TRACE_FIX_HINT_HH

#include <cstdint>
#include <vector>

#include "trace/pm_op.hh"
#include "trace/trace.hh"

namespace pmtest
{

/** The mechanical repair a FixHint proposes. */
enum class FixAction : uint8_t
{
    None,             ///< no mechanical repair known for this finding
    InsertFlush,      ///< insert flushOp of [addr,size) before opIndex
    InsertFence,      ///< insert fenceOp before opIndex
    InsertFlushFence, ///< insert flushOp of [addr,size) + fenceOp
                      ///< before opIndex
    InsertOrdering,   ///< order [addr,size) before [addrB,sizeB):
                      ///< insert fenceOp — plus, when withFlush and no
                      ///< earlier writeback of the range exists,
                      ///< flushOp (retiring the writeback it replaces)
                      ///< — in front of the first write to
                      ///< [addrB,sizeB) preceding opIndex
    InsertTxAdd,      ///< insert TX_ADD of [addr,size) before opIndex
    InsertTxEnd,      ///< insert `count` TX_END ops before opIndex
    DeleteFlush,      ///< delete the writeback op at opIndex
    DeleteTxAdd,      ///< delete the TX_ADD op at opIndex
};

/** Stable machine-readable name of @p action ("insert-flush", ...). */
const char *fixActionName(FixAction action);

/**
 * One proposed trace edit. Trivially copyable (findings carry hints
 * by value). All op indices refer to the *unpatched* trace; when
 * several hints are applied together, applyFixHints resolves every
 * edit against the original index space first.
 */
struct FixHint
{
    FixAction action = FixAction::None;
    uint64_t addr = 0;  ///< primary range: flush / log target
    uint64_t size = 0;
    uint64_t addrB = 0; ///< InsertOrdering: the range that must come
    uint64_t sizeB = 0; ///< second
    uint64_t opIndex = 0; ///< anchor op in the unpatched trace
    OpType flushOp = OpType::Clwb;   ///< model's writeback op
    OpType fenceOp = OpType::Sfence; ///< model's completing fence
    uint32_t count = 1;   ///< InsertTxEnd: transactions to close
    bool withFlush = false; ///< InsertOrdering: [addr,size) must also
                            ///< be durable (strict models)
    bool verified = false;  ///< set by core::verifyHints on success

    /** Whether this hint proposes an edit at all. */
    bool valid() const { return action != FixAction::None; }

    /** Edit-identity equality (ignores the verified flag). */
    bool sameEdit(const FixHint &other) const;
};

/**
 * Apply one hint to @p trace, returning the patched copy. Identity
 * (id, threadId, fileId) and the string arena carry over. A hint
 * whose anchor does not match — a delete action pointing at an op of
 * the wrong type, or an opIndex past the end — patches nothing and
 * the trace is returned unchanged (verification then rejects the
 * hint, which is the honest outcome).
 */
Trace applyFixHint(const Trace &trace, const FixHint &hint);

/**
 * Apply a set of hints to @p trace in one pass. Duplicate edits
 * (several findings proposing the identical repair) collapse to one;
 * every edit is resolved against the original op indices, so hints
 * never shift one another.
 */
Trace applyFixHints(const Trace &trace, const std::vector<FixHint> &hints);

} // namespace pmtest

#endif // PMTEST_TRACE_FIX_HINT_HH
