/**
 * @file
 * TraceSource: the one abstraction every ingest path feeds through.
 *
 * The offline/online checking pipeline used to have three hand-wired
 * entry paths — the v1 sequential stream loader, the v2 mmap reader
 * with its private decoder team, and the in-process capture sink —
 * each with its own arena-lifetime and backpressure plumbing. A
 * TraceSource turns all of them into one shape: a thread-safe
 * provider that yields batches of decoded, identity-stamped traces,
 * so `core::ingest(TraceSource&, EnginePool&, …)` is the *only*
 * decoder-team/backpressure implementation in the repo.
 *
 * Identity model: every yielded trace carries a stable
 * (fileId, traceId) pair — fileId assigned per input source in input
 * order, traceId recorded by the producer — and every trace co-owns
 * the string arena its SourceLocations point into. Because
 * `Report::canonicalize()` sorts findings by (fileId, traceId,
 * opIndex), any assignment of sources/shards to decoder threads
 * produces a byte-identical merged report.
 *
 * Implementations:
 *  - V2FileSource      whole v2 file, or a byte-range shard of one
 *                      ([begin, end) slice of the index footer);
 *                      decode happens on the *pulling* thread, so N
 *                      pullers decode N traces concurrently.
 *  - StreamTraceSource pre-loaded traces from the sequential loader
 *                      (the only reader of legacy v1 files).
 *  - CaptureTraceSource the in-process capture sink: the program
 *                      under test pushes sealed traces, the ingest
 *                      pulls them — the online path rides the same
 *                      ingest loop as the offline one.
 *  - MultiTraceSource  an ordered set of child sources (multiple
 *                      files, or the shards of one file), drained in
 *                      order with cross-child pull parallelism.
 */

#ifndef PMTEST_TRACE_TRACE_SOURCE_HH
#define PMTEST_TRACE_TRACE_SOURCE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "trace/trace.hh"
#include "trace/trace_reader.hh"

namespace pmtest
{

/**
 * Where and why a source failed to yield a trace: the file (or
 * source name), the index of the offending trace within that file,
 * and a human-readable reason. pmtest_check prints these verbatim.
 */
struct SourceError
{
    std::string file;
    size_t traceIndex = 0;
    std::string message;

    /** Render as "file: trace #N: message". */
    std::string str() const;
};

/**
 * A thread-safe provider of decoded traces. pull() may be called
 * concurrently from any number of decoder threads; each call claims
 * and decodes a disjoint batch.
 */
class TraceSource
{
  public:
    /** traceCount() value when the total is not known up front. */
    static constexpr size_t kUnknownCount = ~size_t{0};

    /** Outcome of one pull() call. */
    enum class Pull
    {
        Items, ///< @p out received at least one trace
        End,   ///< the source is exhausted (nothing appended)
        Error, ///< a trace failed to decode; *error describes it
    };

    virtual ~TraceSource() = default;

    /** Human-readable source name (path, "path[2/4]", "<capture>"). */
    virtual const std::string &name() const = 0;

    /** Traces this source will yield, or kUnknownCount. */
    virtual size_t traceCount() const = 0;

    /** Total PM ops, when an index knows it up front (else 0). */
    virtual uint64_t totalOps() const = 0;

    /** Bytes mapped/buffered behind this source (0 when n/a). */
    virtual uint64_t sizeBytes() const = 0;

    /** True when every byte behind this source is mmap-backed. */
    virtual bool mmapBacked() const = 0;

    /** Number of leaf sources (composites sum their children). */
    virtual size_t sourceCount() const { return 1; }

    /**
     * Traces already yielded by pull() (monotonic). Composites sum
     * their children. Thread-safe at any moment of a live run — this
     * is the ingest-progress gauge the metrics publisher samples.
     */
    virtual uint64_t consumedTraces() const { return 0; }

    /**
     * Input bytes behind the yielded traces (frame bytes for indexed
     * files, a pro-rata estimate for pre-decoded streams, 0 where
     * byte accounting is meaningless, e.g. in-process capture).
     */
    virtual uint64_t consumedBytes() const { return 0; }

    /**
     * Claim and decode up to @p max traces into @p out (appended).
     * Every yielded trace has its fileId stamped and its string
     * arena attached. Blocking is implementation-defined: file
     * sources never block; the capture source blocks until traces
     * arrive or the producer closes it.
     */
    virtual Pull pull(size_t max, std::vector<Trace> *out,
                      SourceError *error) = 0;
};

/**
 * A whole v2 indexed file, or a [begin, end) index slice of one
 * (a byte-range shard). Shards of the same file share one reader —
 * one mapping, one validation — via the shared_ptr. pull() claims a
 * run of indices from an atomic cursor and decodes outside any lock,
 * so concurrent pullers decode different traces in parallel.
 */
class V2FileSource final : public TraceSource
{
  public:
    /** Source over the whole of @p reader. */
    V2FileSource(std::shared_ptr<const TraceFileReader> reader,
                 std::string path, uint32_t file_id);

    /**
     * Source over index entries [begin, end) of @p reader; the name
     * is "path[shard/shards]" when @p shards > 1.
     */
    V2FileSource(std::shared_ptr<const TraceFileReader> reader,
                 std::string path, uint32_t file_id, size_t begin,
                 size_t end, size_t shard, size_t shards);

    const std::string &name() const override { return name_; }
    size_t traceCount() const override { return end_ - begin_; }
    uint64_t totalOps() const override;
    uint64_t sizeBytes() const override;
    bool mmapBacked() const override { return reader_->mmapBacked(); }

    Pull pull(size_t max, std::vector<Trace> *out,
              SourceError *error) override;

    uint64_t consumedTraces() const override
    {
        return consumedTraces_.load(std::memory_order_relaxed);
    }
    uint64_t consumedBytes() const override
    {
        return consumedBytes_.load(std::memory_order_relaxed);
    }

    /** First index (inclusive) of this source's slice. */
    size_t begin() const { return begin_; }

    /** One-past-last index of this source's slice. */
    size_t end() const { return end_; }

  private:
    std::shared_ptr<const TraceFileReader> reader_;
    std::string path_; ///< bare file path (for SourceError)
    std::string name_; ///< path, possibly with a [shard/shards] tag
    uint32_t fileId_;
    size_t begin_;
    size_t end_;
    std::atomic<size_t> cursor_;
    std::atomic<uint64_t> consumedTraces_{0};
    std::atomic<uint64_t> consumedBytes_{0};
};

/**
 * Pre-loaded traces from the sequential stream loader — the adapter
 * that keeps legacy v1 files (and unmappable streams) on the unified
 * ingest path. Decode happened at construction; pull() just hands
 * out disjoint runs under a lock.
 */
class StreamTraceSource final : public TraceSource
{
  public:
    /**
     * Takes ownership of @p loaded (traces + their shared arena) as
     * produced by loadTracesFromFile. @p file_bytes is the on-disk
     * size, for stats.
     */
    StreamTraceSource(std::string path, uint32_t file_id,
                      LoadedTraces loaded, uint64_t file_bytes);

    const std::string &name() const override { return name_; }
    size_t traceCount() const override { return traces_.size(); }
    uint64_t totalOps() const override { return totalOps_; }
    uint64_t sizeBytes() const override { return fileBytes_; }
    bool mmapBacked() const override { return false; }

    Pull pull(size_t max, std::vector<Trace> *out,
              SourceError *error) override;

    uint64_t consumedTraces() const override;
    uint64_t consumedBytes() const override;

  private:
    std::string name_;
    std::vector<Trace> traces_;
    uint64_t totalOps_ = 0;
    uint64_t fileBytes_ = 0;
    mutable std::mutex mutex_;
    size_t cursor_ = 0; ///< guarded by mutex_
};

/**
 * The in-process capture sink as a TraceSource: the program under
 * test pushes sealed traces (install sink() via pmtestSetTraceSink),
 * the checking side pulls them through the same ingest() loop the
 * offline paths use. pull() blocks until traces arrive or close().
 */
class CaptureTraceSource final : public TraceSource
{
  public:
    explicit CaptureTraceSource(std::string name = "<capture>",
                                uint32_t file_id = 0);

    /** Enqueue one sealed trace (producer side; any thread). */
    void push(Trace &&trace);

    /** No more traces will arrive; blocked pulls drain and end. */
    void close();

    /** A sink callable suitable for pmtestSetTraceSink(). */
    std::function<void(Trace &&)> sink();

    const std::string &name() const override { return name_; }
    size_t traceCount() const override { return kUnknownCount; }
    uint64_t totalOps() const override { return 0; }
    uint64_t sizeBytes() const override { return 0; }
    bool mmapBacked() const override { return false; }

    Pull pull(size_t max, std::vector<Trace> *out,
              SourceError *error) override;

    uint64_t consumedTraces() const override;

  private:
    std::string name_;
    uint32_t fileId_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<Trace> queue_; ///< guarded by mutex_
    size_t head_ = 0;          ///< first unpulled element
    uint64_t pulled_ = 0;      ///< lifetime total (survives drains)
    bool closed_ = false;
};

/**
 * An ordered set of child sources drained front to back. Identity
 * comes from the children (each stamps its own fileId), so the
 * composite only routes pulls: concurrent pullers drain the current
 * child together and roll over to the next when it ends — shards and
 * multi-file sets parallelize across children with no barrier.
 */
class MultiTraceSource final : public TraceSource
{
  public:
    explicit MultiTraceSource(
        std::vector<std::unique_ptr<TraceSource>> children);

    const std::string &name() const override { return name_; }
    size_t traceCount() const override;
    uint64_t totalOps() const override;
    uint64_t sizeBytes() const override;
    bool mmapBacked() const override;
    size_t sourceCount() const override;
    uint64_t consumedTraces() const override;
    uint64_t consumedBytes() const override;

    /** The child sources, for per-source reporting. */
    const std::vector<std::unique_ptr<TraceSource>> &
    children() const
    {
        return children_;
    }

    /**
     * Mutable child access for the pinned ingest mode, which drains
     * each child directly (decoder c pulls child c) instead of going
     * through the shared pull() cursor. Children stamp their own
     * fileId, so draining them directly yields the identical trace
     * stream either way.
     */
    std::vector<std::unique_ptr<TraceSource>> &children()
    {
        return children_;
    }

    Pull pull(size_t max, std::vector<Trace> *out,
              SourceError *error) override;

  private:
    std::vector<std::unique_ptr<TraceSource>> children_;
    std::string name_;
    std::atomic<size_t> current_{0}; ///< first non-exhausted child
};

/**
 * Open one trace file as a source, stamping its traces with
 * @p file_id:
 *  - IngestMode::Mmap   — require the v2 indexed reader (error on v1
 *    or unmappable files);
 *  - IngestMode::Stream — force the sequential loader (v1 and v2);
 *  - IngestMode::Auto   — indexed reader when the file has a v2
 *    index, silent fallback to the stream loader otherwise.
 * @return nullptr with *error set when the file cannot be read.
 */
std::unique_ptr<TraceSource>
openTraceSource(const std::string &path, IngestMode mode,
                uint32_t file_id, std::string *error);

/**
 * Split @p reader's index into @p shards byte-balanced contiguous
 * slices (frame-byte partitioning, so one huge trace does not leave
 * its shard siblings idle). Returns fewer sources than requested
 * when the file has fewer traces than shards; at least one source is
 * returned even for an empty file.
 */
std::vector<std::unique_ptr<TraceSource>>
shardTraceSource(std::shared_ptr<const TraceFileReader> reader,
                 const std::string &path, uint32_t file_id,
                 size_t shards);

} // namespace pmtest

#endif // PMTEST_TRACE_TRACE_SOURCE_HH
