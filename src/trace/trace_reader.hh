/**
 * @file
 * Indexed, zero-copy access to a v2 trace file (trace_io.hh): the
 * reader maps the file with mmap (or, as a fallback, reads it into
 * one buffer), validates the index footer once — magic, CRC32,
 * exact size accounting, frame chaining — and then decodes *one
 * trace per call* straight from its framed slice.
 *
 * That per-trace decode granularity is what enables pipelined
 * offline checking: a decoder thread team can fan the calls out and
 * feed the engine pool while later traces are still being decoded,
 * so peak memory is the in-flight window rather than the whole file
 * (pmtest_check --ingest=mmap --decoders=N; see core/trace_ingest.hh).
 *
 * Safety contract: open() fails closed on any structural damage
 * (truncation, corrupt footer, CRC mismatch, frame lengths that do
 * not chain exactly to the index), and decode() never reads outside
 * the mapping — every field access is bounds-checked against the
 * trace's own frame.
 */

#ifndef PMTEST_TRACE_TRACE_READER_HH
#define PMTEST_TRACE_TRACE_READER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hh"
#include "trace/trace_io.hh"

namespace pmtest
{

/** How a trace file is brought into memory. */
enum class IngestMode
{
    Auto,   ///< mmap if possible, else read()
    Mmap,   ///< require mmap
    Stream, ///< read() the file into a buffer (no mmap)
};

/**
 * One decoded trace plus the string arena its source locations point
 * into. Arenas are per-trace so concurrent decode() calls never
 * share mutable state; keep the bundle alive as long as the trace
 * (or any Finding derived from it) is used.
 */
struct DecodedTrace
{
    Trace trace;
    std::shared_ptr<std::deque<std::string>> strings;
};

/** Random-access reader over a mapped v2 trace file. */
class TraceFileReader
{
  public:
    /**
     * Open and validate @p path.
     * @return the reader, or nullptr (with *error describing why)
     *         when the file is missing, not a v2 trace file, or
     *         structurally damaged. v1 files are reported as such so
     *         callers can fall back to the sequential loadTraces path.
     */
    static std::unique_ptr<TraceFileReader>
    open(const std::string &path, IngestMode mode = IngestMode::Auto,
         std::string *error = nullptr);

    ~TraceFileReader();

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    /** Number of traces in the file. */
    size_t traceCount() const { return index_.size(); }

    /** Op count of trace @p i (from the index; no decode needed). */
    uint32_t opCount(size_t i) const { return index_[i].opCount; }

    /**
     * Bytes trace @p i occupies on disk (length prefix + framed
     * body). Validation proved the frames tile [header, index)
     * exactly, so this is the gap to the next frame (or the index).
     * Byte-range sharding balances shards on these sizes.
     */
    uint64_t
    frameBytes(size_t i) const
    {
        const uint64_t next = i + 1 < index_.size()
                                  ? index_[i + 1].offset
                                  : indexOffset_;
        return next - index_[i].offset;
    }

    /** Producing thread of trace @p i. */
    uint32_t threadId(size_t i) const { return index_[i].threadId; }

    /** Total PM operations across all traces (index sum). */
    uint64_t totalOps() const;

    /** True when the file is mmap-backed (false: heap buffer). */
    bool mmapBacked() const { return mmapped_; }

    /** Bytes mapped (or buffered) for the whole file. */
    size_t sizeBytes() const { return size_; }

    /**
     * Decode trace @p i from its framed slice. Thread-safe: the
     * mapping is immutable and each call fills its own arena.
     * @return false when the body is malformed (fails closed).
     */
    bool decode(size_t i, DecodedTrace *out) const;

  private:
    struct IndexEntry
    {
        uint64_t offset; ///< absolute offset of the frame_len field
        uint32_t opCount;
        uint32_t threadId;
    };

    TraceFileReader() = default;

    /** Validate header, footer, CRC and frame chaining. */
    bool validate(std::string *error);

    const uint8_t *data_ = nullptr;
    size_t size_ = 0;
    uint64_t indexOffset_ = 0; ///< where frames end / the index begins
    bool mmapped_ = false;
    std::vector<uint8_t> buffer_; ///< read() fallback storage
    std::vector<IndexEntry> index_;
};

} // namespace pmtest

#endif // PMTEST_TRACE_TRACE_READER_HH
