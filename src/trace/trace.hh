/**
 * @file
 * A Trace: an ordered, self-contained batch of PM operations and
 * checkers produced by the program under test between two
 * PMTest_SEND_TRACE() calls. Traces are independent of one another
 * (the paper's §4.3): each gets its own shadow memory when checked.
 */

#ifndef PMTEST_TRACE_TRACE_HH
#define PMTEST_TRACE_TRACE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "trace/pm_op.hh"

namespace pmtest
{

/**
 * An ordered batch of PM operations with identifying metadata.
 *
 * Traces are the unit of hand-off between capture and checking, so
 * they are cheaply movable end-to-end: moving a trace steals its op
 * buffer (no PmOp is copied), appends grow the buffer in doubling
 * chunks from a non-trivial initial capacity (avoiding the tiny
 * first allocations of a cold vector), and nothing ever calls
 * shrink_to_fit — a recycled buffer keeps its capacity.
 */
class Trace
{
  public:
    /** First growth chunk of a cold op buffer. */
    static constexpr size_t kInitialCapacity = 64;

    Trace() = default;
    Trace(uint64_t id, uint32_t thread_id) : id_(id), threadId_(thread_id) {}

    Trace(const Trace &) = default;
    Trace &operator=(const Trace &) = default;
    Trace(Trace &&) noexcept = default;
    Trace &operator=(Trace &&) noexcept = default;

    /** Append one operation record, in program order. */
    void
    append(const PmOp &op)
    {
        if (ops_.size() == ops_.capacity())
            grow(ops_.size() + 1);
        ops_.push_back(op);
    }

    /** Append a sequence of records. */
    void
    append(const std::vector<PmOp> &ops)
    {
        if (ops_.size() + ops.size() > ops_.capacity())
            grow(ops_.size() + ops.size());
        ops_.insert(ops_.end(), ops.begin(), ops.end());
    }

    /** Pre-size the op buffer (never shrinks). */
    void reserve(size_t records) { ops_.reserve(records); }

    /** Records the op buffer can hold without reallocating. */
    size_t capacity() const { return ops_.capacity(); }

    /** All records, in program order. */
    const std::vector<PmOp> &ops() const { return ops_; }

    /** Mutable access for builders (bug injectors rewrite traces). */
    std::vector<PmOp> &mutableOps() { return ops_; }

    /** Number of records. */
    size_t size() const { return ops_.size(); }

    /** True when the trace holds no records. */
    bool empty() const { return ops_.empty(); }

    /** Drop all records (retains identity). */
    void clear() { ops_.clear(); }

    /** Monotonic trace id assigned by the producer. */
    uint64_t id() const { return id_; }

    /** Id of the producing application thread. */
    uint32_t threadId() const { return threadId_; }

    /**
     * Id of the trace *source* this trace came from (0 when there is
     * only one source). Assigned by the ingest layer in input order,
     * so (fileId, id) is a stable identity across any decoder/shard
     * assignment — the key Report::canonicalize sorts by.
     */
    uint32_t fileId() const { return fileId_; }

    /** Set the source id (TraceSource implementations stamp this). */
    void setFileId(uint32_t file_id) { fileId_ = file_id; }

    /** Set identity; used when a capture buffer is sealed into a trace. */
    void
    setIdentity(uint64_t id, uint32_t thread_id)
    {
        id_ = id;
        threadId_ = thread_id;
    }

    /**
     * String arena the ops' SourceLocations point into, when this
     * trace was decoded from a file (null for live-captured traces,
     * whose locations are __FILE__ literals with static storage).
     * Sharing the arena through the trace lets reports take ownership
     * of the file-name storage their findings reference, so a Report
     * can safely outlive the reader/bundle that decoded the trace.
     */
    const std::shared_ptr<const std::deque<std::string>> &
    arena() const
    {
        return arena_;
    }

    /** Attach the owning string arena (decoder-side). */
    void
    setArena(std::shared_ptr<const std::deque<std::string>> arena)
    {
        arena_ = std::move(arena);
    }

    /** Multi-line dump for diagnostics. */
    std::string str() const;

  private:
    /** Reserve for at least @p needed records in doubling chunks. */
    void
    grow(size_t needed)
    {
        size_t target = std::max(ops_.capacity() * 2, kInitialCapacity);
        while (target < needed)
            target *= 2;
        ops_.reserve(target);
    }

    std::vector<PmOp> ops_;
    uint64_t id_ = 0;
    uint32_t threadId_ = 0;
    uint32_t fileId_ = 0;
    std::shared_ptr<const std::deque<std::string>> arena_;
};

} // namespace pmtest

#endif // PMTEST_TRACE_TRACE_HH
