/**
 * @file
 * The seeded-bug corpus: one minimal, deterministic reproduction
 * trace per fixable finding class (x86 model), each op tagged with a
 * synthetic source location naming the class. Shared between the
 * pmtest_seed_corpus tool (which serializes it for the detect→repair
 * →verify loop) and the kernel-equivalence tests (which pin every
 * dispatch mode to identical verdicts on exactly these shapes).
 */

#ifndef PMTEST_TRACE_SEED_CORPUS_HH
#define PMTEST_TRACE_SEED_CORPUS_HH

#include <vector>

#include "trace/trace.hh"

namespace pmtest
{

/** One seeded bug: the class name and its reproduction trace. */
struct SeedTrace
{
    const char *name;
    Trace trace;
};

/**
 * Build the corpus: every Fail-severity class except Malformed
 * (deliberately unfixable), plus the flush-hygiene warns. Fully
 * deterministic — same library version, identical traces (ids 1..n
 * in corpus order, fileId 0).
 */
std::vector<SeedTrace> seedCorpusTraces();

} // namespace pmtest

#endif // PMTEST_TRACE_SEED_CORPUS_HH
