/**
 * @file
 * A bounded FIFO modelling the kernel-to-user trace channel of the
 * paper's §4.5: PMFS (a kernel module) cannot link the user-space
 * checking engine, so traces cross a kernel FIFO (/proc/PMTest) with
 * 1024 entries. When the FIFO fills, the producer parks itself on an
 * interruptible wait queue and resumes once the FIFO is less than
 * half full.
 *
 * Implementation-wise this is now a thin adapter over
 * ConcurrentQueue's bounded-backpressure primitives (capacity bound
 * + half-capacity wake mark + stall accounting) — the same machinery
 * the engine pool's dispatch queues use — so the kernel path reports
 * the same backpressure statistics (stall count, stall time, queue
 * depth) as the user-space path instead of keeping a private buffer
 * implementation.
 */

#ifndef PMTEST_TRACE_KERNEL_FIFO_HH
#define PMTEST_TRACE_KERNEL_FIFO_HH

#include <cstddef>
#include <optional>

#include "trace/concurrent_queue.hh"
#include "trace/trace.hh"

namespace pmtest
{

/**
 * Bounded trace FIFO with the kernel-side backpressure protocol:
 * push() blocks while full and wakes only when occupancy drops below
 * half capacity, mirroring the wait-queue behaviour the paper
 * describes for the kernel module integration.
 */
class KernelFifo
{
  public:
    /** Default capacity used by the paper: 1024 trace entries. */
    static constexpr size_t defaultCapacity = 1024;

    explicit KernelFifo(size_t capacity = defaultCapacity)
        : queue_(capacity, capacity / 2)
    {
    }

    /**
     * Push a trace. Blocks (producer on the wait queue) while the
     * FIFO is full; wakes when occupancy < capacity/2 or the FIFO is
     * shut down.
     * @return false if the FIFO was shut down before the push landed.
     */
    bool push(Trace trace) { return queue_.pushUnlessClosed(std::move(trace)); }

    /**
     * Pop the oldest trace, blocking while open and empty.
     * @return the trace, or std::nullopt once shut down and drained.
     */
    std::optional<Trace> pop() { return queue_.pop(); }

    /** Shut down: wake all waiters; pops drain, pushes fail. */
    void shutdown() { queue_.close(); }

    /** Current occupancy (racy; stats only). */
    size_t size() const { return queue_.size(); }

    /** Configured capacity. */
    size_t capacity() const { return queue_.capacity(); }

    /** Number of times a producer had to block on the wait queue. */
    uint64_t producerStalls() const { return queue_.producerStalls(); }

    /** Total time producers spent parked on the wait queue. */
    uint64_t
    producerStallNanos() const
    {
        return queue_.producerStallNanos();
    }

  private:
    ConcurrentQueue<Trace> queue_;
};

} // namespace pmtest

#endif // PMTEST_TRACE_KERNEL_FIFO_HH
