/**
 * @file
 * A bounded FIFO modelling the kernel-to-user trace channel of the
 * paper's §4.5: PMFS (a kernel module) cannot link the user-space
 * checking engine, so traces cross a kernel FIFO (/proc/PMTest) with
 * 1024 entries. When the FIFO fills, the producer parks itself on an
 * interruptible wait queue and resumes once the FIFO is less than
 * half full.
 */

#ifndef PMTEST_TRACE_KERNEL_FIFO_HH
#define PMTEST_TRACE_KERNEL_FIFO_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "trace/trace.hh"

namespace pmtest
{

/**
 * Bounded trace FIFO with the kernel-side backpressure protocol:
 * push() blocks while full and wakes only when occupancy drops below
 * half capacity, mirroring the wait-queue behaviour the paper
 * describes for the kernel module integration.
 */
class KernelFifo
{
  public:
    /** Default capacity used by the paper: 1024 trace entries. */
    static constexpr size_t defaultCapacity = 1024;

    explicit KernelFifo(size_t capacity = defaultCapacity);

    /**
     * Push a trace. Blocks (producer on the wait queue) while the
     * FIFO is full; wakes when occupancy < capacity/2 or the FIFO is
     * shut down.
     * @return false if the FIFO was shut down before the push landed.
     */
    bool push(Trace trace);

    /**
     * Pop the oldest trace, blocking while open and empty.
     * @return the trace, or std::nullopt once shut down and drained.
     */
    std::optional<Trace> pop();

    /** Shut down: wake all waiters; pops drain, pushes fail. */
    void shutdown();

    /** Current occupancy (racy; stats only). */
    size_t size() const;

    /** Configured capacity. */
    size_t capacity() const { return capacity_; }

    /** Number of times a producer had to block on the wait queue. */
    uint64_t producerStalls() const;

  private:
    const size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<Trace> items_;
    bool shutdown_ = false;
    uint64_t producerStalls_ = 0;
};

} // namespace pmtest

#endif // PMTEST_TRACE_KERNEL_FIFO_HH
