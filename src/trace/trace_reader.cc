#include "trace/trace_reader.hh"

#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace pmtest
{

namespace
{

void
setError(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
}

/** Load a little-endian scalar from a validated offset. */
template <typename T>
T
load(const uint8_t *data, size_t offset)
{
    T value;
    std::memcpy(&value, data + offset, sizeof(T));
    return value;
}

} // namespace

std::unique_ptr<TraceFileReader>
TraceFileReader::open(const std::string &path, IngestMode mode,
                      std::string *error)
{
    std::unique_ptr<TraceFileReader> reader(new TraceFileReader());

    if (mode != IngestMode::Stream) {
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd >= 0) {
            struct stat st{};
            if (::fstat(fd, &st) == 0 && st.st_size > 0) {
                void *map = ::mmap(nullptr,
                                   static_cast<size_t>(st.st_size),
                                   PROT_READ, MAP_PRIVATE, fd, 0);
                if (map != MAP_FAILED) {
                    reader->data_ = static_cast<const uint8_t *>(map);
                    reader->size_ = static_cast<size_t>(st.st_size);
                    reader->mmapped_ = true;
                }
            }
            ::close(fd);
        }
        if (!reader->mmapped_ && mode == IngestMode::Mmap) {
            setError(error, path + ": cannot mmap");
            return nullptr;
        }
    }

    if (!reader->mmapped_) {
        // read() fallback: one buffered copy of the file. Slower and
        // not zero-copy, but the index/decode machinery is identical.
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            setError(error, path + ": cannot open");
            return nullptr;
        }
        in.seekg(0, std::ios::end);
        const std::streamoff len = in.tellg();
        in.seekg(0);
        if (len < 0) {
            setError(error, path + ": cannot size");
            return nullptr;
        }
        reader->buffer_.resize(static_cast<size_t>(len));
        in.read(reinterpret_cast<char *>(reader->buffer_.data()), len);
        if (!in.good() && len > 0) {
            setError(error, path + ": short read");
            return nullptr;
        }
        reader->data_ = reader->buffer_.data();
        reader->size_ = reader->buffer_.size();
    }

    if (!reader->validate(error))
        return nullptr;
    return reader;
}

TraceFileReader::~TraceFileReader()
{
    if (mmapped_ && data_)
        ::munmap(const_cast<uint8_t *>(data_), size_);
}

bool
TraceFileReader::validate(std::string *error)
{
    constexpr size_t header = TraceWire::kHeaderBytes;
    constexpr size_t footer = TraceWire::kFooterBytes;
    constexpr size_t entry = TraceWire::kIndexEntryBytes;

    if (size_ < header + footer) {
        setError(error, "not a v2 trace file (too small)");
        return false;
    }
    if (load<uint64_t>(data_, 0) != TraceWire::kMagic) {
        setError(error, "not a PMTest trace file (bad magic)");
        return false;
    }
    const uint32_t version = load<uint32_t>(data_, 8);
    if (version == static_cast<uint32_t>(TraceFormat::V1)) {
        setError(error, "v1 trace file: no index footer "
                        "(use the sequential stream loader)");
        return false;
    }
    if (version != static_cast<uint32_t>(TraceFormat::V2)) {
        setError(error, "unsupported trace format version " +
                            std::to_string(version));
        return false;
    }
    const uint32_t count = load<uint32_t>(data_, 12);

    // Footer tail: index_offset u64, crc u32, count u32, magic u64.
    const size_t tail = size_ - footer;
    if (load<uint64_t>(data_, tail + 16) != TraceWire::kFooterMagic) {
        setError(error, "corrupt footer (bad index magic)");
        return false;
    }
    const uint64_t index_offset = load<uint64_t>(data_, tail);
    const uint32_t index_crc = load<uint32_t>(data_, tail + 8);
    const uint32_t index_count = load<uint32_t>(data_, tail + 12);
    if (index_count != count) {
        setError(error, "corrupt footer (trace count mismatch)");
        return false;
    }
    // Exact size accounting: header + frames + index + footer must
    // tile the file with no slack, so truncation or appended junk is
    // always caught.
    const uint64_t index_bytes = uint64_t{count} * entry;
    if (index_offset < header || index_bytes > size_ ||
        index_offset != size_ - footer - index_bytes) {
        setError(error, "corrupt footer (index offset out of range)");
        return false;
    }
    if (crc32(data_ + index_offset, static_cast<size_t>(index_bytes)) !=
        index_crc) {
        setError(error, "corrupt index (CRC mismatch)");
        return false;
    }
    indexOffset_ = index_offset;

    // Frames must chain exactly: entry i's frame ends where entry
    // i+1 begins, and the last frame ends at the index.
    index_.reserve(count);
    uint64_t expected = header;
    for (uint32_t i = 0; i < count; i++) {
        const size_t at = static_cast<size_t>(index_offset) + i * entry;
        IndexEntry e;
        e.offset = load<uint64_t>(data_, at);
        e.opCount = load<uint32_t>(data_, at + 8);
        e.threadId = load<uint32_t>(data_, at + 12);
        if (e.offset != expected ||
            e.offset + sizeof(uint64_t) > index_offset) {
            setError(error, "corrupt index (frame offsets do not "
                            "chain)");
            index_.clear();
            return false;
        }
        const uint64_t frame_len =
            load<uint64_t>(data_, static_cast<size_t>(e.offset));
        if (frame_len > index_offset - e.offset - sizeof(uint64_t)) {
            setError(error, "corrupt frame (length exceeds index)");
            index_.clear();
            return false;
        }
        expected = e.offset + sizeof(uint64_t) + frame_len;
        index_.push_back(e);
    }
    if (expected != index_offset) {
        setError(error, "corrupt index (frames do not reach the "
                        "index)");
        index_.clear();
        return false;
    }
    return true;
}

uint64_t
TraceFileReader::totalOps() const
{
    uint64_t total = 0;
    for (const auto &e : index_)
        total += e.opCount;
    return total;
}

bool
TraceFileReader::decode(size_t i, DecodedTrace *out) const
{
    if (i >= index_.size())
        return false;
    const IndexEntry &e = index_[i];
    const size_t offset = static_cast<size_t>(e.offset);
    const uint64_t frame_len = load<uint64_t>(data_, offset);

    out->strings = std::make_shared<std::deque<std::string>>();
    if (!decodeTraceBody(data_ + offset + sizeof(uint64_t),
                         static_cast<size_t>(frame_len), &out->trace,
                         out->strings.get())) {
        return false;
    }
    // The trace co-owns its string arena, so a Report holding the
    // trace's arena stays valid after this reader is destroyed.
    out->trace.setArena(out->strings);
    // Cross-check the decode against the index: a mismatch means the
    // frame and the footer disagree — treat as corruption.
    return out->trace.size() == e.opCount &&
           out->trace.threadId() == e.threadId;
}

} // namespace pmtest
