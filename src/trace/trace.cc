#include "trace/trace.hh"

namespace pmtest
{

std::string
Trace::str() const
{
    std::string out = "trace #" + std::to_string(id_) + " (thread " +
                      std::to_string(threadId_) + ", " +
                      std::to_string(ops_.size()) + " ops)\n";
    for (const auto &op : ops_) {
        out += "  ";
        out += op.str();
        if (op.loc.valid()) {
            out += " @ ";
            out += op.loc.str();
        }
        out += '\n';
    }
    return out;
}

} // namespace pmtest
