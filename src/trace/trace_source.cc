#include "trace/trace_source.hh"

#include <algorithm>
#include <fstream>

#include "obs/telemetry.hh"

namespace pmtest
{

std::string
SourceError::str() const
{
    return file + ": trace #" + std::to_string(traceIndex) + ": " +
           message;
}

// ---------------------------------------------------------------------------
// V2FileSource
// ---------------------------------------------------------------------------

V2FileSource::V2FileSource(
    std::shared_ptr<const TraceFileReader> reader, std::string path,
    uint32_t file_id)
    : V2FileSource(std::move(reader), std::move(path), file_id, 0, 0,
                   0, 1)
{
    end_ = reader_->traceCount();
    cursor_.store(begin_, std::memory_order_relaxed);
}

V2FileSource::V2FileSource(
    std::shared_ptr<const TraceFileReader> reader, std::string path,
    uint32_t file_id, size_t begin, size_t end, size_t shard,
    size_t shards)
    : reader_(std::move(reader)), path_(std::move(path)),
      fileId_(file_id), begin_(begin), end_(end), cursor_(begin)
{
    name_ = path_;
    if (shards > 1) {
        name_ += "[" + std::to_string(shard + 1) + "/" +
                 std::to_string(shards) + "]";
    }
}

uint64_t
V2FileSource::totalOps() const
{
    uint64_t total = 0;
    for (size_t i = begin_; i < end_; i++)
        total += reader_->opCount(i);
    return total;
}

uint64_t
V2FileSource::sizeBytes() const
{
    // A whole-file source accounts the full mapping (header, index
    // and footer included); a shard accounts only its frame bytes,
    // so sibling shards sum to less than one double-counted file.
    if (begin_ == 0 && end_ == reader_->traceCount())
        return reader_->sizeBytes();
    uint64_t total = 0;
    for (size_t i = begin_; i < end_; i++)
        total += reader_->frameBytes(i);
    return total;
}

TraceSource::Pull
V2FileSource::pull(size_t max, std::vector<Trace> *out,
                   SourceError *error)
{
    if (max == 0)
        return Pull::Items;
    const size_t first =
        cursor_.fetch_add(max, std::memory_order_relaxed);
    if (first >= end_)
        return Pull::End;
    const size_t last = std::min(end_, first + max);
    uint64_t pulled_bytes = 0;
    for (size_t i = first; i < last; i++) {
        DecodedTrace decoded;
        if (!reader_->decode(i, &decoded)) {
            if (error) {
                error->file = path_;
                error->traceIndex = i;
                error->message = "corrupt trace body (decode failed)";
            }
            return Pull::Error;
        }
        decoded.trace.setFileId(fileId_);
        pulled_bytes += reader_->frameBytes(i);
        out->push_back(std::move(decoded.trace));
    }
    consumedTraces_.fetch_add(last - first, std::memory_order_relaxed);
    consumedBytes_.fetch_add(pulled_bytes, std::memory_order_relaxed);
    return Pull::Items;
}

// ---------------------------------------------------------------------------
// StreamTraceSource
// ---------------------------------------------------------------------------

StreamTraceSource::StreamTraceSource(std::string path,
                                     uint32_t file_id,
                                     LoadedTraces loaded,
                                     uint64_t file_bytes)
    : name_(std::move(path)), traces_(std::move(loaded.traces)),
      fileBytes_(file_bytes)
{
    for (auto &trace : traces_) {
        totalOps_ += trace.size();
        trace.setFileId(file_id);
    }
}

TraceSource::Pull
StreamTraceSource::pull(size_t max, std::vector<Trace> *out,
                        SourceError *)
{
    if (max == 0)
        return Pull::Items;
    std::lock_guard<std::mutex> lock(mutex_);
    if (cursor_ >= traces_.size())
        return Pull::End;
    const size_t last = std::min(traces_.size(), cursor_ + max);
    for (; cursor_ < last; cursor_++)
        out->push_back(std::move(traces_[cursor_]));
    return Pull::Items;
}

uint64_t
StreamTraceSource::consumedTraces() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cursor_;
}

uint64_t
StreamTraceSource::consumedBytes() const
{
    // Decode happened up front, so attribute file bytes pro rata to
    // the traces handed out — good enough for a progress gauge.
    std::lock_guard<std::mutex> lock(mutex_);
    if (traces_.empty())
        return cursor_ ? fileBytes_ : 0;
    return fileBytes_ * cursor_ / traces_.size();
}

// ---------------------------------------------------------------------------
// CaptureTraceSource
// ---------------------------------------------------------------------------

CaptureTraceSource::CaptureTraceSource(std::string name,
                                       uint32_t file_id)
    : name_(std::move(name)), fileId_(file_id)
{
}

void
CaptureTraceSource::push(Trace &&trace)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        trace.setFileId(fileId_);
        queue_.push_back(std::move(trace));
    }
    cv_.notify_one();
}

void
CaptureTraceSource::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    cv_.notify_all();
}

std::function<void(Trace &&)>
CaptureTraceSource::sink()
{
    return [this](Trace &&trace) { push(std::move(trace)); };
}

TraceSource::Pull
CaptureTraceSource::pull(size_t max, std::vector<Trace> *out,
                         SourceError *)
{
    if (max == 0)
        return Pull::Items;
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return head_ < queue_.size() || closed_; });
    if (head_ == queue_.size())
        return Pull::End; // closed and drained
    const size_t last = std::min(queue_.size(), head_ + max);
    pulled_ += last - head_;
    for (; head_ < last; head_++)
        out->push_back(std::move(queue_[head_]));
    if (head_ == queue_.size()) {
        // Fully drained: reclaim the moved-out prefix so a
        // long-running capture does not accumulate dead traces.
        queue_.clear();
        head_ = 0;
    }
    return Pull::Items;
}

uint64_t
CaptureTraceSource::consumedTraces() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pulled_;
}

// ---------------------------------------------------------------------------
// MultiTraceSource
// ---------------------------------------------------------------------------

MultiTraceSource::MultiTraceSource(
    std::vector<std::unique_ptr<TraceSource>> children)
    : children_(std::move(children))
{
    name_ = "<" + std::to_string(children_.size()) + " sources>";
}

size_t
MultiTraceSource::traceCount() const
{
    size_t total = 0;
    for (const auto &c : children_) {
        if (c->traceCount() == kUnknownCount)
            return kUnknownCount;
        total += c->traceCount();
    }
    return total;
}

uint64_t
MultiTraceSource::totalOps() const
{
    uint64_t total = 0;
    for (const auto &c : children_)
        total += c->totalOps();
    return total;
}

uint64_t
MultiTraceSource::sizeBytes() const
{
    uint64_t total = 0;
    for (const auto &c : children_)
        total += c->sizeBytes();
    return total;
}

bool
MultiTraceSource::mmapBacked() const
{
    for (const auto &c : children_) {
        if (!c->mmapBacked())
            return false;
    }
    return !children_.empty();
}

size_t
MultiTraceSource::sourceCount() const
{
    size_t total = 0;
    for (const auto &c : children_)
        total += c->sourceCount();
    return total;
}

uint64_t
MultiTraceSource::consumedTraces() const
{
    uint64_t total = 0;
    for (const auto &c : children_)
        total += c->consumedTraces();
    return total;
}

uint64_t
MultiTraceSource::consumedBytes() const
{
    uint64_t total = 0;
    for (const auto &c : children_)
        total += c->consumedBytes();
    return total;
}

TraceSource::Pull
MultiTraceSource::pull(size_t max, std::vector<Trace> *out,
                       SourceError *error)
{
    size_t i = current_.load(std::memory_order_acquire);
    while (i < children_.size()) {
        const Pull result = children_[i]->pull(max, out, error);
        if (result != Pull::End)
            return result;
        // This child is exhausted: advance the shared cursor past it
        // (first puller to notice wins; losers just reload) and keep
        // pulling from the next one.
        current_.compare_exchange_strong(i, i + 1,
                                         std::memory_order_acq_rel);
        i = current_.load(std::memory_order_acquire);
    }
    return Pull::End;
}

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

std::unique_ptr<TraceSource>
openTraceSource(const std::string &path, IngestMode mode,
                uint32_t file_id, std::string *error)
{
    obs::SpanScope span(obs::Stage::SourceOpen);

    if (mode != IngestMode::Stream) {
        std::string reader_error;
        auto reader =
            TraceFileReader::open(path, mode, &reader_error);
        if (reader) {
            return std::make_unique<V2FileSource>(
                std::shared_ptr<const TraceFileReader>(
                    std::move(reader)),
                path, file_id);
        }
        if (mode == IngestMode::Mmap) {
            // Validation errors come without the path; I/O errors
            // from open() already carry it.
            if (error) {
                *error = reader_error.rfind(path, 0) == 0
                             ? reader_error
                             : path + ": " + reader_error;
            }
            return nullptr;
        }
        // Auto: v1 files and unmappable streams fall through to the
        // sequential loader without complaint.
    }

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = path + ": cannot open";
        return nullptr;
    }
    in.seekg(0, std::ios::end);
    const std::streamoff len = in.tellg();
    in.seekg(0);
    bool ok = false;
    LoadedTraces loaded = loadTraces(in, &ok);
    if (!ok) {
        if (error)
            *error = path + ": not a readable PMTest trace file";
        return nullptr;
    }
    return std::make_unique<StreamTraceSource>(
        path, file_id, std::move(loaded),
        len > 0 ? static_cast<uint64_t>(len) : 0);
}

std::vector<std::unique_ptr<TraceSource>>
shardTraceSource(std::shared_ptr<const TraceFileReader> reader,
                 const std::string &path, uint32_t file_id,
                 size_t shards)
{
    const size_t count = reader->traceCount();
    const size_t n =
        std::max<size_t>(1, std::min(shards, std::max<size_t>(count, 1)));

    uint64_t total_bytes = 0;
    for (size_t i = 0; i < count; i++)
        total_bytes += reader->frameBytes(i);

    // Byte-balanced contiguous partition: shard s ends where the
    // cumulative frame bytes first reach s+1 shares of the total, so
    // a file of one huge trace and many small ones still splits into
    // comparable decode workloads.
    std::vector<std::unique_ptr<TraceSource>> out;
    out.reserve(n);
    size_t begin = 0;
    uint64_t cum = 0;
    for (size_t s = 0; s < n; s++) {
        size_t end = begin;
        if (s + 1 == n) {
            end = count;
        } else {
            const uint64_t target = total_bytes * (s + 1) / n;
            while (end < count && (cum < target || end == begin)) {
                cum += reader->frameBytes(end);
                end++;
            }
            // Leave at least one trace per remaining shard.
            const size_t remaining_shards = n - s - 1;
            end = std::min(end, count - remaining_shards);
            end = std::max(end, begin);
        }
        out.push_back(std::make_unique<V2FileSource>(
            reader, path, file_id, begin, end, s, n));
        begin = end;
    }
    return out;
}

} // namespace pmtest
