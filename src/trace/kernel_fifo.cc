#include "trace/kernel_fifo.hh"

namespace pmtest
{

KernelFifo::KernelFifo(size_t capacity) : capacity_(capacity) {}

bool
KernelFifo::push(Trace trace)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.size() >= capacity_) {
        // Kernel wait-queue protocol: park until less than half full
        // so the producer is not woken once per pop under sustained
        // pressure.
        producerStalls_++;
        notFull_.wait(lock, [this] {
            return shutdown_ || items_.size() < capacity_ / 2;
        });
    }
    if (shutdown_)
        return false;
    items_.push_back(std::move(trace));
    lock.unlock();
    notEmpty_.notify_one();
    return true;
}

std::optional<Trace>
KernelFifo::pop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    notEmpty_.wait(lock, [this] { return shutdown_ || !items_.empty(); });
    if (items_.empty())
        return std::nullopt;
    Trace t = std::move(items_.front());
    items_.pop_front();
    const bool wake_producers = items_.size() < capacity_ / 2;
    lock.unlock();
    if (wake_producers)
        notFull_.notify_all();
    return t;
}

void
KernelFifo::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    notFull_.notify_all();
    notEmpty_.notify_all();
}

size_t
KernelFifo::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
}

uint64_t
KernelFifo::producerStalls() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return producerStalls_;
}

} // namespace pmtest
