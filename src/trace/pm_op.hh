/**
 * @file
 * The PM-operation record: one entry of a PMTest trace. A trace is the
 * sequence, in program order, of (a) PM operations executed by the
 * crash-consistent software under test and (b) the checkers the
 * programmer placed. Each record carries the metadata the paper
 * describes: operation type, address, size, and source file/line.
 */

#ifndef PMTEST_TRACE_PM_OP_HH
#define PMTEST_TRACE_PM_OP_HH

#include <cstdint>
#include <string>

#include "util/source_location.hh"

namespace pmtest
{

/**
 * Kinds of trace entries.
 *
 * The first group are hardware-level PM operations (x86 and HOPS);
 * the second group are transactional-library events that high-level
 * checkers consume; the third group are the checkers themselves; the
 * last group are testing-scope controls.
 */
enum class OpType : uint8_t
{
    // Hardware PM operations (x86 persistency model).
    Write,          ///< store to a PM range
    Clwb,           ///< cache-line writeback (retains line in cache)
    ClflushOpt,     ///< cache-line flush, weakly ordered
    Clflush,        ///< cache-line flush, strongly ordered
    Sfence,         ///< store fence: orders and completes writebacks

    // Hardware PM operations (HOPS persistency model).
    Ofence,         ///< ordering fence: orders, does not write back
    Dfence,         ///< durability fence: orders and persists

    // Hardware PM operations (ARMv8.2 persistency model).
    DcCvap,         ///< clean data cache to the point of persistence
    Dsb,            ///< data synchronization barrier

    // Transactional-library events.
    TxBegin,        ///< transaction begin (possibly nested)
    TxEnd,          ///< transaction end
    TxAdd,          ///< undo-log snapshot of a persistent range

    // Checkers.
    CheckIsPersist,         ///< isPersist(addr, size)
    CheckIsOrderedBefore,   ///< isOrderedBefore(addrA,.., addrB,..)
    TxCheckStart,           ///< TX_CHECKER_START high-level checker
    TxCheckEnd,             ///< TX_CHECKER_END high-level checker

    // Testing-scope controls.
    Exclude,        ///< remove a range from the testing scope
    Include,        ///< re-add a range to the testing scope
};

/** Human-readable name for an OpType. */
const char *opTypeName(OpType type);

/** True if the type is a checker entry rather than a PM operation. */
bool isCheckerOp(OpType type);

/**
 * A single trace entry. Trivially copyable; traces hold them by value.
 *
 * `addr`/`size` describe the primary range (or range A for
 * isOrderedBefore); `addrB`/`sizeB` are only meaningful for
 * CheckIsOrderedBefore.
 */
struct PmOp
{
    OpType type = OpType::Sfence;
    uint64_t addr = 0;
    uint64_t size = 0;
    uint64_t addrB = 0;
    uint64_t sizeB = 0;
    SourceLocation loc{};

    /** Build a store record. */
    static PmOp
    write(uint64_t addr, uint64_t size, SourceLocation loc = {})
    {
        return {OpType::Write, addr, size, 0, 0, loc};
    }

    /** Build a clwb record. */
    static PmOp
    clwb(uint64_t addr, uint64_t size, SourceLocation loc = {})
    {
        return {OpType::Clwb, addr, size, 0, 0, loc};
    }

    /** Build an sfence record. */
    static PmOp
    sfence(SourceLocation loc = {})
    {
        return {OpType::Sfence, 0, 0, 0, 0, loc};
    }

    /** Build an ofence record (HOPS). */
    static PmOp
    ofence(SourceLocation loc = {})
    {
        return {OpType::Ofence, 0, 0, 0, 0, loc};
    }

    /** Build a dfence record (HOPS). */
    static PmOp
    dfence(SourceLocation loc = {})
    {
        return {OpType::Dfence, 0, 0, 0, 0, loc};
    }

    /** Build a DC CVAP record (ARM). */
    static PmOp
    dcCvap(uint64_t addr, uint64_t size, SourceLocation loc = {})
    {
        return {OpType::DcCvap, addr, size, 0, 0, loc};
    }

    /** Build a DSB record (ARM). */
    static PmOp
    dsb(SourceLocation loc = {})
    {
        return {OpType::Dsb, 0, 0, 0, 0, loc};
    }

    /** Build an isPersist checker record. */
    static PmOp
    isPersist(uint64_t addr, uint64_t size, SourceLocation loc = {})
    {
        return {OpType::CheckIsPersist, addr, size, 0, 0, loc};
    }

    /** Build an isOrderedBefore checker record. */
    static PmOp
    isOrderedBefore(uint64_t addr_a, uint64_t size_a, uint64_t addr_b,
                    uint64_t size_b, SourceLocation loc = {})
    {
        return {OpType::CheckIsOrderedBefore, addr_a, size_a, addr_b,
                size_b, loc};
    }

    /** Render for diagnostics, e.g. "write(0x10,64)". */
    std::string str() const;
};

} // namespace pmtest

#endif // PMTEST_TRACE_PM_OP_HH
