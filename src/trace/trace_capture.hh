/**
 * @file
 * Per-thread trace capture. The program under test (or an instrumented
 * library such as txlib/mnemosyne/pmfs) calls the record* functions for
 * every PM operation; between PMTest_START and PMTest_END the capture
 * buffer accumulates records in program order, and PMTest_SEND_TRACE
 * seals the buffer into an immutable Trace handed to the engine.
 */

#ifndef PMTEST_TRACE_TRACE_CAPTURE_HH
#define PMTEST_TRACE_TRACE_CAPTURE_HH

#include <atomic>
#include <cstdint>

#include "obs/telemetry.hh"
#include "trace/trace.hh"

namespace pmtest
{

/**
 * Accumulates PM operations for a single application thread.
 *
 * Not thread-safe by design: each thread owns exactly one capture
 * (PMTest_THREAD_INIT), mirroring the paper's per-thread trace
 * structures.
 */
class TraceCapture
{
  public:
    explicit TraceCapture(uint32_t thread_id = 0) : threadId_(thread_id) {}

    /** Enable recording (PMTest_START). */
    void start() { enabled_ = true; }

    /** Disable recording (PMTest_END). */
    void stop() { enabled_ = false; }

    /** Whether operations are currently recorded. */
    bool enabled() const { return enabled_; }

    /** Record one operation if capture is enabled. */
    void
    record(const PmOp &op)
    {
        if (enabled_)
            buffer_.append(op);
    }

    /**
     * Record a checker. Checkers are recorded even while tracking of
     * PM operations is enabled or not, as long as the capture itself
     * has been started at least once; in practice programmers place
     * checkers inside the started region, so we keep the same gate.
     */
    void recordChecker(const PmOp &op) { record(op); }

    /**
     * Seal the current buffer into a Trace and start a new buffer
     * (PMTest_SEND_TRACE). The sealed trace receives a fresh id.
     *
     * The seal steals the op buffer (a vector move — no PmOp is
     * copied on the way to the engine), and the replacement buffer is
     * pre-sized to the sealed trace's length: a steady-state producer
     * sealing similarly-sized traces pays one allocation per trace
     * and never re-grows mid-capture.
     */
    Trace
    seal()
    {
        obs::SpanScope span(obs::Stage::CaptureSeal);
        Trace sealed = std::move(buffer_);
        sealed.setIdentity(nextTraceId(), threadId_);
        buffer_ = Trace();
        buffer_.reserve(sealed.size());
        obs::count(obs::Counter::TracesSealed);
        obs::count(obs::Counter::OpsSealed, sealed.size());
        return sealed;
    }

    /** Number of operations pending in the open buffer. */
    size_t pendingOps() const { return buffer_.size(); }

    /** The open (not yet sealed) buffer; test introspection. */
    const Trace &openTrace() const { return buffer_; }

    /** The owning thread's id. */
    uint32_t threadId() const { return threadId_; }

  private:
    /** Process-wide monotonic trace id source. */
    static uint64_t
    nextTraceId()
    {
        static std::atomic<uint64_t> counter{0};
        return counter.fetch_add(1, std::memory_order_relaxed);
    }

    uint32_t threadId_;
    bool enabled_ = false;
    Trace buffer_;
};

} // namespace pmtest

#endif // PMTEST_TRACE_TRACE_CAPTURE_HH
