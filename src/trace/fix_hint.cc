#include "trace/fix_hint.hh"

#include <algorithm>
#include <cstddef>

#include "util/logging.hh"

namespace pmtest
{

namespace
{

/** Location stamped on every op the patcher inserts. */
constexpr SourceLocation kFixLoc("<fix-hint>", 1);

/** Whether [a,a+as) and [b,b+bs) share at least one byte. */
bool
overlaps(uint64_t a, uint64_t as, uint64_t b, uint64_t bs)
{
    return a < b + bs && b < a + as;
}

/** Whether @p type is a writeback op any model emits. */
bool
isFlushOp(OpType type)
{
    return type == OpType::Clwb || type == OpType::ClflushOpt ||
           type == OpType::Clflush || type == OpType::DcCvap;
}

/**
 * Per-original-index edit plan: ops to splice in front of each index,
 * plus a deletion mark. Resolving every hint against this plan — and
 * only then rebuilding the op vector once — means hints can never
 * shift one another's anchors.
 */
struct EditPlan
{
    explicit EditPlan(size_t n) : inserts(n + 1), deleted(n, false) {}

    std::vector<std::vector<PmOp>> inserts; ///< inserts[i]: before op i
    std::vector<bool> deleted;

    bool
    addInsert(size_t index, const PmOp &op)
    {
        if (index >= inserts.size())
            return false;
        inserts[index].push_back(op);
        return true;
    }

    bool
    markDeleted(size_t index)
    {
        if (index >= deleted.size())
            return false;
        deleted[index] = true;
        return true;
    }
};

/** Build the flushOp record a hint asks for. */
PmOp
makeFlush(const FixHint &hint)
{
    return {hint.flushOp, hint.addr, hint.size, 0, 0, kFixLoc};
}

/** Build the fenceOp record a hint asks for. */
PmOp
makeFence(const FixHint &hint)
{
    return {hint.fenceOp, 0, 0, 0, 0, kFixLoc};
}

/**
 * Resolve one hint into @p plan. Returns false when the anchor does
 * not match the trace (index out of range, delete target of the wrong
 * type) — the hint then patches nothing, and replay verification will
 * reject it rather than silently corrupting the trace.
 */
bool
resolveHint(const std::vector<PmOp> &ops, const FixHint &hint,
            EditPlan &plan)
{
    switch (hint.action) {
      case FixAction::None:
        return false;
      case FixAction::InsertFlush:
        return plan.addInsert(hint.opIndex, makeFlush(hint));
      case FixAction::InsertFence:
        return plan.addInsert(hint.opIndex, makeFence(hint));
      case FixAction::InsertFlushFence:
        return plan.addInsert(hint.opIndex, makeFlush(hint)) &&
               plan.addInsert(hint.opIndex, makeFence(hint));
      case FixAction::InsertOrdering: {
        // Order A before B: the machinery must sit in front of B's
        // first write, which we locate by scanning ops before the
        // failing checker. Fall back to the checker itself when no
        // such write exists (B may have been written in an earlier,
        // already-sealed trace).
        const size_t limit = std::min<size_t>(hint.opIndex, ops.size());
        size_t at = limit;
        for (size_t i = 0; i < at; i++) {
            const PmOp &op = ops[i];
            if (op.type == OpType::Write &&
                overlaps(op.addr, op.size, hint.addrB, hint.sizeB)) {
                at = i;
                break;
            }
        }
        bool need_flush = hint.withFlush;
        for (size_t i = 0; need_flush && i < at; i++) {
            // A writeback of A already in place before the insertion
            // point: the fence alone completes it.
            if (isFlushOp(ops[i].type) &&
                overlaps(ops[i].addr, ops[i].size, hint.addr,
                         hint.size)) {
                need_flush = false;
            }
        }
        if (need_flush) {
            if (!plan.addInsert(at, makeFlush(hint)))
                return false;
            // Retire the writeback the inserted one replaces — the
            // first later flush entirely inside [addr,size) would
            // otherwise target already-persistent data and trade the
            // ordering FAIL for an unnecessary-flush WARN.
            for (size_t i = at; i < limit; i++) {
                const PmOp &op = ops[i];
                if (isFlushOp(op.type) && hint.addr <= op.addr &&
                    op.addr + op.size <= hint.addr + hint.size) {
                    plan.markDeleted(i);
                    break;
                }
            }
        }
        return plan.addInsert(at, makeFence(hint));
      }
      case FixAction::InsertTxAdd: {
        PmOp add{OpType::TxAdd, hint.addr, hint.size, 0, 0, kFixLoc};
        return plan.addInsert(hint.opIndex, add);
      }
      case FixAction::InsertTxEnd: {
        PmOp end{OpType::TxEnd, 0, 0, 0, 0, kFixLoc};
        bool ok = hint.count > 0;
        for (uint32_t i = 0; i < hint.count; i++)
            ok = plan.addInsert(hint.opIndex, end) && ok;
        return ok;
      }
      case FixAction::DeleteFlush:
        if (hint.opIndex >= ops.size() ||
            !isFlushOp(ops[hint.opIndex].type)) {
            return false;
        }
        return plan.markDeleted(hint.opIndex);
      case FixAction::DeleteTxAdd:
        if (hint.opIndex >= ops.size() ||
            ops[hint.opIndex].type != OpType::TxAdd) {
            return false;
        }
        return plan.markDeleted(hint.opIndex);
    }
    panic("unknown FixAction");
}

/** Rebuild the trace from @p plan, preserving identity and arena. */
Trace
materialize(const Trace &trace, const EditPlan &plan)
{
    const std::vector<PmOp> &ops = trace.ops();
    Trace patched(trace.id(), trace.threadId());
    patched.setFileId(trace.fileId());
    patched.setArena(trace.arena());
    patched.reserve(ops.size() + 4);
    for (size_t i = 0; i < ops.size(); i++) {
        for (const PmOp &ins : plan.inserts[i])
            patched.append(ins);
        if (!plan.deleted[i])
            patched.append(ops[i]);
    }
    for (const PmOp &ins : plan.inserts[ops.size()])
        patched.append(ins);
    return patched;
}

} // namespace

const char *
fixActionName(FixAction action)
{
    switch (action) {
      case FixAction::None:
        return "none";
      case FixAction::InsertFlush:
        return "insert-flush";
      case FixAction::InsertFence:
        return "insert-fence";
      case FixAction::InsertFlushFence:
        return "insert-flush-fence";
      case FixAction::InsertOrdering:
        return "insert-ordering";
      case FixAction::InsertTxAdd:
        return "insert-tx-add";
      case FixAction::InsertTxEnd:
        return "insert-tx-end";
      case FixAction::DeleteFlush:
        return "delete-flush";
      case FixAction::DeleteTxAdd:
        return "delete-tx-add";
    }
    panic("unknown FixAction");
}

bool
FixHint::sameEdit(const FixHint &other) const
{
    return action == other.action && addr == other.addr &&
           size == other.size && addrB == other.addrB &&
           sizeB == other.sizeB && opIndex == other.opIndex &&
           flushOp == other.flushOp && fenceOp == other.fenceOp &&
           count == other.count && withFlush == other.withFlush;
}

Trace
applyFixHint(const Trace &trace, const FixHint &hint)
{
    return applyFixHints(trace, {hint});
}

Trace
applyFixHints(const Trace &trace, const std::vector<FixHint> &hints)
{
    EditPlan plan(trace.size());
    bool edited = false;
    std::vector<const FixHint *> applied;
    for (const FixHint &hint : hints) {
        const auto dup = std::find_if(
            applied.begin(), applied.end(),
            [&](const FixHint *seen) { return seen->sameEdit(hint); });
        if (dup != applied.end())
            continue;
        applied.push_back(&hint);
        edited = resolveHint(trace.ops(), hint, plan) || edited;
    }
    if (!edited)
        return trace;
    return materialize(trace, plan);
}

} // namespace pmtest
