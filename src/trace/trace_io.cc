#include "trace/trace_io.hh"

#include <array>
#include <cstring>
#include <fstream>
#include <map>
#include <ostream>

namespace pmtest
{

namespace
{

template <typename T>
void
put(std::ostream &out, T value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
bool
get(std::istream &in, T *value)
{
    in.read(reinterpret_cast<char *>(value), sizeof(*value));
    return in.good();
}

template <typename T>
void
putBuf(std::string *buf, T value)
{
    buf->append(reinterpret_cast<const char *>(&value), sizeof(value));
}

/** Bounds-checked cursor over an in-memory body slice. */
class BodyCursor
{
  public:
    BodyCursor(const uint8_t *data, size_t len) : data_(data), len_(len) {}

    template <typename T>
    bool
    read(T *value)
    {
        if (len_ - pos_ < sizeof(T))
            return false;
        std::memcpy(value, data_ + pos_, sizeof(T));
        pos_ += sizeof(T);
        return true;
    }

    /** Advance past @p n raw bytes, exposing them via @p out. */
    bool
    readBytes(size_t n, const uint8_t **out)
    {
        if (len_ - pos_ < n)
            return false;
        *out = data_ + pos_;
        pos_ += n;
        return true;
    }

    bool atEnd() const { return pos_ == len_; }

    size_t remaining() const { return len_ - pos_; }

  private:
    const uint8_t *data_;
    size_t len_;
    size_t pos_ = 0;
};

/** Sanity cap on interned file-name length (matches the v1 loader). */
constexpr uint32_t kMaxNameLen = 1u << 20;

/** Read one v1/v2 trace body from a stream (the v1 sequential path). */
bool
readBodyStream(std::istream &in, Trace *out,
               std::deque<std::string> *arena)
{
    uint64_t id;
    uint32_t thread_id, op_count, string_count;
    if (!get(in, &id) || !get(in, &thread_id) || !get(in, &op_count) ||
        !get(in, &string_count)) {
        return false;
    }

    std::vector<const char *> files;
    for (uint32_t s = 0; s < string_count; s++) {
        uint32_t len;
        if (!get(in, &len) || len > kMaxNameLen)
            return false;
        std::string name(len, 0);
        in.read(name.data(), len);
        if (!in.good() && len > 0)
            return false;
        // The deque never moves existing strings, so the const char*
        // handed to SourceLocation stays valid for the arena's
        // lifetime.
        arena->push_back(std::move(name));
        files.push_back(arena->back().c_str());
    }

    Trace trace(id, thread_id);
    trace.reserve(op_count);
    for (uint32_t i = 0; i < op_count; i++) {
        uint8_t type;
        uint32_t file_idx, line;
        PmOp op;
        if (!get(in, &type) || !get(in, &file_idx) || !get(in, &line) ||
            !get(in, &op.addr) || !get(in, &op.size) ||
            !get(in, &op.addrB) || !get(in, &op.sizeB)) {
            return false;
        }
        op.type = static_cast<OpType>(type);
        if (file_idx >= files.size())
            return false;
        if (line != 0)
            op.loc = SourceLocation(files[file_idx], line);
        trace.append(op);
    }
    *out = std::move(trace);
    return true;
}

} // namespace

uint32_t
crc32(const void *data, size_t len)
{
    // IEEE 802.3 reflected CRC32, nibble-free table built once.
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; i++) {
            uint32_t c = i;
            for (int k = 0; k < 8; k++)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    uint32_t crc = 0xffffffffu;
    const auto *bytes = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < len; i++)
        crc = table[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

void
encodeTraceBody(const Trace &trace, std::string *buf)
{
    putBuf(buf, trace.id());
    putBuf(buf, trace.threadId());
    putBuf(buf, static_cast<uint32_t>(trace.size()));

    // Intern file names for this trace.
    std::map<std::string, uint32_t> index;
    std::vector<std::string> strings;
    for (const auto &op : trace.ops()) {
        const std::string file = op.loc.valid() ? op.loc.file : "";
        if (index.emplace(file, strings.size()).second)
            strings.push_back(file);
    }
    putBuf(buf, static_cast<uint32_t>(strings.size()));
    for (const auto &s : strings) {
        putBuf(buf, static_cast<uint32_t>(s.size()));
        buf->append(s.data(), s.size());
    }

    for (const auto &op : trace.ops()) {
        const std::string file = op.loc.valid() ? op.loc.file : "";
        putBuf(buf, static_cast<uint8_t>(op.type));
        putBuf(buf, index.at(file));
        putBuf(buf, op.loc.line);
        putBuf(buf, op.addr);
        putBuf(buf, op.size);
        putBuf(buf, op.addrB);
        putBuf(buf, op.sizeB);
    }
}

bool
decodeTraceBody(const uint8_t *data, size_t len, Trace *out,
                std::deque<std::string> *arena)
{
    BodyCursor cursor(data, len);
    uint64_t id;
    uint32_t thread_id, op_count, string_count;
    if (!cursor.read(&id) || !cursor.read(&thread_id) ||
        !cursor.read(&op_count) || !cursor.read(&string_count)) {
        return false;
    }

    std::vector<const char *> files;
    files.reserve(string_count);
    for (uint32_t s = 0; s < string_count; s++) {
        uint32_t name_len;
        const uint8_t *bytes;
        if (!cursor.read(&name_len) || name_len > kMaxNameLen ||
            !cursor.readBytes(name_len, &bytes)) {
            return false;
        }
        arena->emplace_back(reinterpret_cast<const char *>(bytes),
                            name_len);
        files.push_back(arena->back().c_str());
    }

    // Ops are fixed-width records, so one exact-size check covers
    // the whole array — it also rejects trailing junk in the frame —
    // and the per-op loop can read without further bounds checks.
    // This is the hot loop of parallel ingest: seven field reads per
    // op, ~25 M ops/s/decoder with per-field checks hoisted out.
    constexpr size_t kOpBytes = 1 + 4 + 4 + 8 + 8 + 8 + 8;
    if (cursor.remaining() != uint64_t{op_count} * kOpBytes)
        return false;
    const uint8_t *p;
    if (!cursor.readBytes(op_count * kOpBytes, &p))
        return false;

    Trace trace(id, thread_id);
    trace.reserve(op_count);
    for (uint32_t i = 0; i < op_count; i++, p += kOpBytes) {
        uint32_t file_idx, line;
        PmOp op;
        std::memcpy(&file_idx, p + 1, sizeof(file_idx));
        std::memcpy(&line, p + 5, sizeof(line));
        std::memcpy(&op.addr, p + 9, sizeof(op.addr));
        std::memcpy(&op.size, p + 17, sizeof(op.size));
        std::memcpy(&op.addrB, p + 25, sizeof(op.addrB));
        std::memcpy(&op.sizeB, p + 33, sizeof(op.sizeB));
        op.type = static_cast<OpType>(*p);
        if (file_idx >= files.size())
            return false;
        if (line != 0)
            op.loc = SourceLocation(files[file_idx], line);
        trace.append(op);
    }
    *out = std::move(trace);
    return true;
}

size_t
saveTraces(std::ostream &out, const std::vector<Trace> &traces,
           TraceFormat format)
{
    const auto start = out.tellp();
    put(out, TraceWire::kMagic);
    put(out, static_cast<uint32_t>(format));
    put(out, static_cast<uint32_t>(traces.size()));

    if (format == TraceFormat::V1) {
        std::string body;
        for (const auto &trace : traces) {
            body.clear();
            encodeTraceBody(trace, &body);
            out.write(body.data(),
                      static_cast<std::streamsize>(body.size()));
        }
        return static_cast<size_t>(out.tellp() - start);
    }

    // v2: length-framed bodies, then the index footer. Offsets are
    // relative to the start of this blob, so a file that begins with
    // the header can be mapped and indexed by TraceFileReader.
    struct Entry
    {
        uint64_t offset;
        uint32_t opCount;
        uint32_t threadId;
    };
    std::vector<Entry> index;
    index.reserve(traces.size());
    uint64_t offset = TraceWire::kHeaderBytes;
    std::string body;
    for (const auto &trace : traces) {
        body.clear();
        encodeTraceBody(trace, &body);
        index.push_back({offset, static_cast<uint32_t>(trace.size()),
                         trace.threadId()});
        put(out, static_cast<uint64_t>(body.size()));
        out.write(body.data(),
                  static_cast<std::streamsize>(body.size()));
        offset += sizeof(uint64_t) + body.size();
    }

    // Serialize the index once so the CRC covers exactly the bytes
    // written (and the bytes the reader will checksum).
    std::string index_bytes;
    index_bytes.reserve(index.size() * TraceWire::kIndexEntryBytes);
    for (const auto &e : index) {
        putBuf(&index_bytes, e.offset);
        putBuf(&index_bytes, e.opCount);
        putBuf(&index_bytes, e.threadId);
    }
    out.write(index_bytes.data(),
              static_cast<std::streamsize>(index_bytes.size()));
    put(out, offset); // index_offset
    put(out, crc32(index_bytes.data(), index_bytes.size()));
    put(out, static_cast<uint32_t>(traces.size()));
    put(out, TraceWire::kFooterMagic);
    return static_cast<size_t>(out.tellp() - start);
}

LoadedTraces
loadTraces(std::istream &in, bool *ok)
{
    LoadedTraces bundle;
    bundle.strings = std::make_shared<std::deque<std::string>>();
    if (ok)
        *ok = false;

    uint64_t magic = 0;
    uint32_t version = 0, trace_count = 0;
    if (!get(in, &magic) || magic != TraceWire::kMagic ||
        !get(in, &version) ||
        (version != static_cast<uint32_t>(TraceFormat::V1) &&
         version != static_cast<uint32_t>(TraceFormat::V2)) ||
        !get(in, &trace_count)) {
        return bundle;
    }

    const bool framed = version == static_cast<uint32_t>(TraceFormat::V2);
    std::vector<uint8_t> frame;
    for (uint32_t t = 0; t < trace_count; t++) {
        Trace trace;
        if (framed) {
            // v2 sequential path: read one framed body at a time.
            // (The index footer exists for random access; a stream
            // reader simply walks the frames and ignores it.)
            uint64_t frame_len = 0;
            if (!get(in, &frame_len))
                return bundle;
            // Reject frames longer than the remaining stream before
            // allocating: a corrupt length field must fail closed,
            // not trigger a multi-gigabyte resize.
            const std::streampos pos = in.tellg();
            if (pos != std::streampos(-1)) {
                in.seekg(0, std::ios::end);
                const std::streampos end = in.tellg();
                in.seekg(pos);
                if (end == std::streampos(-1) ||
                    frame_len > static_cast<uint64_t>(end - pos)) {
                    return bundle;
                }
            } else if (frame_len > (uint64_t{1} << 30)) {
                // Unseekable stream: cap at 1 GiB per frame.
                return bundle;
            }
            frame.resize(frame_len);
            in.read(reinterpret_cast<char *>(frame.data()),
                    static_cast<std::streamsize>(frame_len));
            if ((!in.good() && frame_len > 0) ||
                !decodeTraceBody(frame.data(), frame_len, &trace,
                                 bundle.strings.get())) {
                return bundle;
            }
        } else if (!readBodyStream(in, &trace, bundle.strings.get())) {
            return bundle;
        }
        // Every loaded trace co-owns the bundle's string arena, so
        // reports derived from it can outlive the bundle itself.
        trace.setArena(bundle.strings);
        bundle.traces.push_back(std::move(trace));
    }

    if (ok)
        *ok = true;
    return bundle;
}

bool
saveTracesToFile(const std::string &path,
                 const std::vector<Trace> &traces, TraceFormat format)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    saveTraces(out, traces, format);
    return out.good();
}

LoadedTraces
loadTracesFromFile(const std::string &path, bool *ok)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (ok)
            *ok = false;
        return LoadedTraces{};
    }
    return loadTraces(in, ok);
}

} // namespace pmtest
