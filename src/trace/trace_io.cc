#include "trace/trace_io.hh"

#include <cstring>
#include <fstream>
#include <map>
#include <ostream>

namespace pmtest
{

namespace
{

constexpr uint64_t kMagic = 0x504d5445535454ULL; // "PMTESTT"
constexpr uint32_t kVersion = 1;

template <typename T>
void
put(std::ostream &out, T value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
bool
get(std::istream &in, T *value)
{
    in.read(reinterpret_cast<char *>(value), sizeof(*value));
    return in.good();
}

} // namespace

size_t
saveTraces(std::ostream &out, const std::vector<Trace> &traces)
{
    const auto start = out.tellp();
    put(out, kMagic);
    put(out, kVersion);
    put(out, static_cast<uint32_t>(traces.size()));

    for (const auto &trace : traces) {
        put(out, trace.id());
        put(out, trace.threadId());
        put(out, static_cast<uint32_t>(trace.size()));

        // Intern file names for this trace.
        std::map<std::string, uint32_t> index;
        std::vector<std::string> strings;
        for (const auto &op : trace.ops()) {
            const std::string file = op.loc.valid() ? op.loc.file : "";
            if (index.emplace(file, strings.size()).second)
                strings.push_back(file);
        }
        put(out, static_cast<uint32_t>(strings.size()));
        for (const auto &s : strings) {
            put(out, static_cast<uint32_t>(s.size()));
            out.write(s.data(),
                      static_cast<std::streamsize>(s.size()));
        }

        for (const auto &op : trace.ops()) {
            const std::string file = op.loc.valid() ? op.loc.file : "";
            put(out, static_cast<uint8_t>(op.type));
            put(out, index.at(file));
            put(out, op.loc.line);
            put(out, op.addr);
            put(out, op.size);
            put(out, op.addrB);
            put(out, op.sizeB);
        }
    }
    return static_cast<size_t>(out.tellp() - start);
}

LoadedTraces
loadTraces(std::istream &in, bool *ok)
{
    LoadedTraces bundle;
    bundle.strings = std::make_shared<std::deque<std::string>>();
    if (ok)
        *ok = false;

    uint64_t magic = 0;
    uint32_t version = 0, trace_count = 0;
    if (!get(in, &magic) || magic != kMagic || !get(in, &version) ||
        version != kVersion || !get(in, &trace_count)) {
        return bundle;
    }

    for (uint32_t t = 0; t < trace_count; t++) {
        uint64_t id;
        uint32_t thread_id, op_count, string_count;
        if (!get(in, &id) || !get(in, &thread_id) ||
            !get(in, &op_count) || !get(in, &string_count)) {
            return bundle;
        }

        std::vector<const char *> files;
        for (uint32_t s = 0; s < string_count; s++) {
            uint32_t len;
            if (!get(in, &len) || len > (1u << 20))
                return bundle;
            std::string name(len, 0);
            in.read(name.data(), len);
            if (!in.good() && len > 0)
                return bundle;
            // The deque never moves existing strings, so the
            // const char* handed to SourceLocation stays valid for
            // the bundle's lifetime.
            bundle.strings->push_back(std::move(name));
            files.push_back(bundle.strings->back().c_str());
        }

        Trace trace(id, thread_id);
        for (uint32_t i = 0; i < op_count; i++) {
            uint8_t type;
            uint32_t file_idx, line;
            PmOp op;
            if (!get(in, &type) || !get(in, &file_idx) ||
                !get(in, &line) || !get(in, &op.addr) ||
                !get(in, &op.size) || !get(in, &op.addrB) ||
                !get(in, &op.sizeB)) {
                return bundle;
            }
            op.type = static_cast<OpType>(type);
            if (file_idx >= files.size())
                return bundle;
            if (line != 0)
                op.loc = SourceLocation(files[file_idx], line);
            trace.append(op);
        }
        bundle.traces.push_back(std::move(trace));
    }

    if (ok)
        *ok = true;
    return bundle;
}

bool
saveTracesToFile(const std::string &path,
                 const std::vector<Trace> &traces)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    saveTraces(out, traces);
    return out.good();
}

LoadedTraces
loadTracesFromFile(const std::string &path, bool *ok)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (ok)
            *ok = false;
        return LoadedTraces{};
    }
    return loadTraces(in, ok);
}

} // namespace pmtest
