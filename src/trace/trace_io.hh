/**
 * @file
 * Trace serialization: save recorded traces to a compact binary
 * stream and load them back. This enables the record-once/check-
 * offline workflow — capture a production run's PM operations with
 * tracking enabled, then replay the traces through the checking
 * engine (or a baseline tool) without re-running the program.
 *
 * Two wire formats (little-endian, versioned):
 *
 * v1 (legacy, read-only):
 *   file   := magic u64, version u32 (=1), trace_count u32, body*
 *   body   := id u64, thread_id u32, op_count u32, string_table, op*
 *
 * v2 (current; what saveTraces writes):
 *   file   := magic u64, version u32 (=2), trace_count u32,
 *             frame*, index, tail
 *   frame  := frame_len u64, body[frame_len]
 *   index  := trace_count x { offset u64, op_count u32, thread_id u32 }
 *             (offset = absolute position of the frame_len field)
 *   tail   := index_offset u64, index_crc32 u32, trace_count u32,
 *             footer_magic u64
 *
 * Shared body encoding (v1 and v2):
 *   body   := id u64, thread_id u32, op_count u32, string_table, op*
 *   string_table := count u32, (len u32, bytes)*   (file names)
 *   op     := type u8, file_idx u32, line u32, addr u64, size u64,
 *             addrB u64, sizeB u64
 *
 * The v2 additions make each trace independently locatable: the
 * byte-length framing turns one trace into a self-contained decode
 * unit, and the index footer (validated by magic + CRC32 + exact
 * size accounting) lets `TraceFileReader` (trace_reader.hh) map the
 * file and decode traces in parallel without scanning. `loadTraces`
 * reads both versions, so existing v1 files keep working.
 *
 * File-name strings are interned per trace; loaded traces own their
 * file names via a shared arena so SourceLocation's const char*
 * contract holds.
 */

#ifndef PMTEST_TRACE_TRACE_IO_HH
#define PMTEST_TRACE_TRACE_IO_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace pmtest
{

/** Trace file wire-format versions. */
enum class TraceFormat : uint32_t
{
    V1 = 1, ///< legacy sequential stream (no framing, no index)
    V2 = 2, ///< framed traces + CRC-protected index footer
};

/** Wire-format constants shared by the writer and the indexed reader. */
struct TraceWire
{
    /** Leading file magic ("PMTESTT"). */
    static constexpr uint64_t kMagic = 0x504d5445535454ULL;
    /** v2 footer magic ("PMT2IDX"). */
    static constexpr uint64_t kFooterMagic = 0x58444932544d50ULL;
    /** magic u64 + version u32 + trace_count u32. */
    static constexpr size_t kHeaderBytes = 16;
    /** offset u64 + op_count u32 + thread_id u32. */
    static constexpr size_t kIndexEntryBytes = 16;
    /** index_offset u64 + crc u32 + trace_count u32 + magic u64. */
    static constexpr size_t kFooterBytes = 24;
};

/** CRC32 (IEEE 802.3, reflected) of a byte range. */
uint32_t crc32(const void *data, size_t len);

/**
 * Encode one trace's body (the framed payload, without the length
 * prefix) and append it to @p buf. Shared by saveTraces and tests
 * that hand-build v2 files.
 */
void encodeTraceBody(const Trace &trace, std::string *buf);

/**
 * Decode one trace body from memory with strict bounds checking:
 * never reads past data+len, and fails (returning false) on any
 * malformed field instead of guessing. File-name strings are
 * appended to @p arena (a deque: stable addresses under growth), and
 * the decoded ops point into it.
 */
bool decodeTraceBody(const uint8_t *data, size_t len, Trace *out,
                     std::deque<std::string> *arena);

/**
 * Serialize traces to a binary stream in the requested format
 * (defaults to v2). @return bytes written.
 */
size_t saveTraces(std::ostream &out, const std::vector<Trace> &traces,
                  TraceFormat format = TraceFormat::V2);

/**
 * The result of loading a trace file: the traces plus the string
 * arena their SourceLocations point into. Keep the bundle alive as
 * long as the traces are used.
 */
struct LoadedTraces
{
    std::vector<Trace> traces;
    /** Owns the file-name strings referenced by op locations
     *  (deque: stable addresses under growth). */
    std::shared_ptr<std::deque<std::string>> strings;
};

/**
 * Deserialize traces from a binary stream; accepts v1 and v2 files.
 * @throws nothing; returns an empty bundle on malformed input and
 *         sets *ok to false (when provided).
 */
LoadedTraces loadTraces(std::istream &in, bool *ok = nullptr);

/** Convenience: save to / load from a file path. */
bool saveTracesToFile(const std::string &path,
                      const std::vector<Trace> &traces,
                      TraceFormat format = TraceFormat::V2);
LoadedTraces loadTracesFromFile(const std::string &path,
                                bool *ok = nullptr);

} // namespace pmtest

#endif // PMTEST_TRACE_TRACE_IO_HH
