/**
 * @file
 * Trace serialization: save recorded traces to a compact binary
 * stream and load them back. This enables the record-once/check-
 * offline workflow — capture a production run's PM operations with
 * tracking enabled, then replay the traces through the checking
 * engine (or a baseline tool) without re-running the program.
 *
 * Format (little-endian, versioned):
 *   file   := magic u64, version u32, trace_count u32, trace*
 *   trace  := id u64, thread_id u32, op_count u32, string_table, op*
 *   string_table := count u32, (len u32, bytes)*   (file names)
 *   op     := type u8, file_idx u32, line u32, addr u64, size u64,
 *             addrB u64, sizeB u64
 *
 * File-name strings are interned per trace; loaded traces own their
 * file names via a shared arena so SourceLocation's const char*
 * contract holds.
 */

#ifndef PMTEST_TRACE_TRACE_IO_HH
#define PMTEST_TRACE_TRACE_IO_HH

#include <deque>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace pmtest
{

/** Serialize traces to a binary stream. @return bytes written. */
size_t saveTraces(std::ostream &out, const std::vector<Trace> &traces);

/**
 * The result of loading a trace file: the traces plus the string
 * arena their SourceLocations point into. Keep the bundle alive as
 * long as the traces are used.
 */
struct LoadedTraces
{
    std::vector<Trace> traces;
    /** Owns the file-name strings referenced by op locations
     *  (deque: stable addresses under growth). */
    std::shared_ptr<std::deque<std::string>> strings;
};

/**
 * Deserialize traces from a binary stream.
 * @throws nothing; returns an empty bundle on malformed input and
 *         sets *ok to false (when provided).
 */
LoadedTraces loadTraces(std::istream &in, bool *ok = nullptr);

/** Convenience: save to / load from a file path. */
bool saveTracesToFile(const std::string &path,
                      const std::vector<Trace> &traces);
LoadedTraces loadTracesFromFile(const std::string &path,
                                bool *ok = nullptr);

} // namespace pmtest

#endif // PMTEST_TRACE_TRACE_IO_HH
