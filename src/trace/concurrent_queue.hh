/**
 * @file
 * A thread-safe, closeable FIFO queue. This is the user-space channel
 * between the program under test and the checking engine (the paper's
 * §4.5): producers push sealed traces, engine workers pop them.
 */

#ifndef PMTEST_TRACE_CONCURRENT_QUEUE_HH
#define PMTEST_TRACE_CONCURRENT_QUEUE_HH

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace pmtest
{

/**
 * Unbounded multi-producer/multi-consumer queue.
 *
 * pop() blocks until an item is available or the queue is closed;
 * after close(), pop() drains remaining items and then returns
 * std::nullopt.
 */
template <typename T>
class ConcurrentQueue
{
  public:
    /** Push one item and wake one waiting consumer. */
    void
    push(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            items_.push_back(std::move(item));
        }
        cv_.notify_one();
    }

    /**
     * Pop the head item, blocking while the queue is open and empty.
     * @return the item, or std::nullopt once closed and drained.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return !items_.empty() || closed_; });
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    /** Non-blocking pop. */
    std::optional<T>
    tryPop()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    /** Close the queue: consumers drain and then see std::nullopt. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    /** Reopen a closed queue (used when a framework is re-initialized). */
    void
    reopen()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = false;
    }

    /** Number of queued items (racy; for stats only). */
    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    /** True when empty (racy; for stats only). */
    bool empty() const { return size() == 0; }

  private:
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace pmtest

#endif // PMTEST_TRACE_CONCURRENT_QUEUE_HH
