/**
 * @file
 * A thread-safe, closeable FIFO queue. This is the user-space channel
 * between the program under test and the checking engine (the paper's
 * §4.5): producers push sealed traces, engine workers pop them.
 *
 * The queue supports an optional capacity bound. A bounded queue
 * exerts backpressure: push() blocks the producer while the queue is
 * full, so a program that outruns its checkers stalls instead of
 * growing memory without limit. tryPush() is the non-blocking probe
 * used by dispatchers that want to account stall time or fall back to
 * another queue.
 */

#ifndef PMTEST_TRACE_CONCURRENT_QUEUE_HH
#define PMTEST_TRACE_CONCURRENT_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace pmtest
{

/**
 * Multi-producer/multi-consumer queue, unbounded by default.
 *
 * pop() blocks until an item is available or the queue is closed;
 * after close(), pop() drains remaining items and then returns
 * std::nullopt. With a nonzero capacity, push() blocks while the
 * queue is full; close() releases blocked producers (their items are
 * still enqueued so no trace is lost at shutdown).
 */
template <typename T>
class ConcurrentQueue
{
  public:
    /** @param capacity maximum queued items; 0 = unbounded. */
    explicit ConcurrentQueue(size_t capacity = 0) : capacity_(capacity) {}

    /**
     * Push one item and wake one waiting consumer. On a bounded
     * queue, blocks while full (backpressure) unless closed.
     */
    void
    push(T item)
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            notFullCv_.wait(lock, [this] { return !fullLocked(); });
            items_.push_back(std::move(item));
        }
        cv_.notify_one();
    }

    /**
     * Non-blocking push. @return false when a bounded queue is full
     * (the item is left untouched in that case).
     */
    bool
    tryPush(T &item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (fullLocked())
                return false;
            items_.push_back(std::move(item));
        }
        cv_.notify_one();
        return true;
    }

    /**
     * Push a batch of items under one lock acquisition (amortizes
     * locking for producers that submit many small traces). On a
     * bounded queue the batch is enqueued in chunks, waiting for
     * space between chunks; items keep their order.
     */
    void
    pushAll(std::vector<T> items)
    {
        size_t next = 0;
        while (next < items.size()) {
            {
                std::unique_lock<std::mutex> lock(mutex_);
                notFullCv_.wait(lock,
                                [this] { return !fullLocked(); });
                do {
                    items_.push_back(std::move(items[next++]));
                } while (next < items.size() && !fullLocked());
            }
            cv_.notify_all();
        }
    }

    /**
     * Non-blocking batch push: succeeds only when the whole batch
     * fits (or the queue is unbounded/closed).
     */
    bool
    tryPushAll(std::vector<T> &items)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (capacity_ != 0 && !closed_ &&
                items_.size() + items.size() > capacity_) {
                return false;
            }
            for (auto &item : items)
                items_.push_back(std::move(item));
        }
        items.clear();
        cv_.notify_all();
        return true;
    }

    /**
     * Pop the head item, blocking while the queue is open and empty.
     * @return the item, or std::nullopt once closed and drained.
     */
    std::optional<T>
    pop()
    {
        std::optional<T> item;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return !items_.empty() || closed_; });
            if (items_.empty())
                return std::nullopt;
            item = std::move(items_.front());
            items_.pop_front();
        }
        notFullCv_.notify_one();
        return item;
    }

    /**
     * Non-blocking bulk pop of the front half: removes
     * ceil(size / 2) items (at least one when non-empty) and appends
     * them to @p out in FIFO order. One lock acquisition regardless
     * of how many items move — this is the work-stealing primitive:
     * a thief drains half the victim's backlog per scan instead of
     * re-scanning per trace.
     * @return the number of items appended.
     */
    size_t
    tryPopHalf(std::vector<T> &out)
    {
        size_t popped = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            const size_t take = (items_.size() + 1) / 2;
            for (; popped < take; popped++) {
                out.push_back(std::move(items_.front()));
                items_.pop_front();
            }
        }
        if (popped)
            notFullCv_.notify_all();
        return popped;
    }

    /** Non-blocking pop. */
    std::optional<T>
    tryPop()
    {
        std::optional<T> item;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (items_.empty())
                return std::nullopt;
            item = std::move(items_.front());
            items_.pop_front();
        }
        notFullCv_.notify_one();
        return item;
    }

    /**
     * Close the queue: consumers drain and then see std::nullopt;
     * producers blocked on a full queue are released.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        cv_.notify_all();
        notFullCv_.notify_all();
    }

    /** Reopen a closed queue (used when a framework is re-initialized). */
    void
    reopen()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = false;
    }

    /** Capacity bound (0 = unbounded). */
    size_t capacity() const { return capacity_; }

    /** Number of queued items (racy; for stats only). */
    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    /** True when empty (racy; for stats only). */
    bool empty() const { return size() == 0; }

  private:
    /**
     * Whether a push must wait. A closed queue never blocks
     * producers: shutdown must not deadlock a stalled submitter.
     */
    bool
    fullLocked() const
    {
        return capacity_ != 0 && !closed_ && items_.size() >= capacity_;
    }

    mutable std::mutex mutex_;
    std::condition_variable cv_;        ///< signals "not empty / closed"
    std::condition_variable notFullCv_; ///< signals "space available"
    std::deque<T> items_;
    size_t capacity_ = 0;
    bool closed_ = false;
};

} // namespace pmtest

#endif // PMTEST_TRACE_CONCURRENT_QUEUE_HH
