/**
 * @file
 * A thread-safe, closeable FIFO queue. This is the user-space channel
 * between the program under test and the checking engine (the paper's
 * §4.5): producers push sealed traces, engine workers pop them.
 *
 * The queue supports an optional capacity bound. A bounded queue
 * exerts backpressure: push() blocks the producer while the queue is
 * full, so a program that outruns its checkers stalls instead of
 * growing memory without limit. tryPush() is the non-blocking probe
 * used by dispatchers that want to account stall time or fall back to
 * another queue.
 *
 * A bounded queue may additionally set a *wake mark* below its
 * capacity: a producer that blocked on a full queue is only resumed
 * once occupancy drops under the mark. That is the kernel wait-queue
 * protocol of the paper's §4.5 (PMFS parks writers until the
 * /proc/PMTest FIFO is less than half full) — KernelFifo is now a
 * thin adapter over this primitive, so the kernel path shares the
 * same backpressure machinery and stall statistics as the engine
 * pool's dispatch queues.
 */

#ifndef PMTEST_TRACE_CONCURRENT_QUEUE_HH
#define PMTEST_TRACE_CONCURRENT_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "util/clock.hh"

namespace pmtest
{

/**
 * Multi-producer/multi-consumer queue, unbounded by default.
 *
 * pop() blocks until an item is available or the queue is closed;
 * after close(), pop() drains remaining items and then returns
 * std::nullopt. With a nonzero capacity, push() blocks while the
 * queue is full; close() releases blocked producers (their items are
 * still enqueued so no trace is lost at shutdown).
 */
template <typename T>
class ConcurrentQueue
{
  public:
    /**
     * @param capacity maximum queued items; 0 = unbounded.
     * @param wake_mark occupancy below which producers blocked on a
     *        full queue resume; 0 = resume as soon as any space
     *        frees (no hysteresis). Must be < capacity when set.
     */
    explicit ConcurrentQueue(size_t capacity = 0, size_t wake_mark = 0)
        : capacity_(capacity), wakeMark_(wake_mark)
    {
    }

    /**
     * Push one item and wake one waiting consumer. On a bounded
     * queue, blocks while full (backpressure) unless closed.
     */
    void
    push(T item)
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            waitNotFull(lock);
            items_.push_back(std::move(item));
        }
        cv_.notify_one();
    }

    /**
     * Push unless the queue has been closed: the kernel-FIFO entry
     * point. Blocks like push() while full; once the wait ends,
     * enqueues and returns true only when the queue is still open —
     * after shutdown the item is dropped and false is returned.
     */
    bool
    pushUnlessClosed(T item)
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            waitNotFull(lock);
            if (closed_)
                return false;
            items_.push_back(std::move(item));
        }
        cv_.notify_one();
        return true;
    }

    /**
     * Non-blocking push. @return false when a bounded queue is full
     * (the item is left untouched in that case).
     */
    bool
    tryPush(T &item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (fullLocked())
                return false;
            items_.push_back(std::move(item));
        }
        cv_.notify_one();
        return true;
    }

    /**
     * Push a batch of items under one lock acquisition (amortizes
     * locking for producers that submit many small traces). On a
     * bounded queue the batch is enqueued in chunks, waiting for
     * space between chunks; items keep their order.
     */
    void
    pushAll(std::vector<T> items)
    {
        size_t next = 0;
        while (next < items.size()) {
            {
                std::unique_lock<std::mutex> lock(mutex_);
                waitNotFull(lock);
                do {
                    items_.push_back(std::move(items[next++]));
                } while (next < items.size() && !fullLocked());
            }
            cv_.notify_all();
        }
    }

    /**
     * Non-blocking batch push: succeeds only when the whole batch
     * fits (or the queue is unbounded/closed).
     */
    bool
    tryPushAll(std::vector<T> &items)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (capacity_ != 0 && !closed_ &&
                items_.size() + items.size() > capacity_) {
                return false;
            }
            for (auto &item : items)
                items_.push_back(std::move(item));
        }
        items.clear();
        cv_.notify_all();
        return true;
    }

    /**
     * Pop the head item, blocking while the queue is open and empty.
     * @return the item, or std::nullopt once closed and drained.
     */
    std::optional<T>
    pop()
    {
        std::optional<T> item;
        size_t depth = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return !items_.empty() || closed_; });
            if (items_.empty())
                return std::nullopt;
            item = std::move(items_.front());
            items_.pop_front();
            depth = items_.size();
        }
        notifyProducers(depth);
        return item;
    }

    /**
     * Non-blocking bulk pop of the front half: removes
     * ceil(size / 2) items (at least one when non-empty) and appends
     * them to @p out in FIFO order. One lock acquisition regardless
     * of how many items move — this is the work-stealing primitive:
     * a thief drains half the victim's backlog per scan instead of
     * re-scanning per trace.
     * @return the number of items appended.
     */
    size_t
    tryPopHalf(std::vector<T> &out)
    {
        size_t popped = 0;
        size_t depth = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            const size_t take = (items_.size() + 1) / 2;
            for (; popped < take; popped++) {
                out.push_back(std::move(items_.front()));
                items_.pop_front();
            }
            depth = items_.size();
        }
        if (popped)
            notifyProducers(depth, /*all=*/true);
        return popped;
    }

    /** Non-blocking pop. */
    std::optional<T>
    tryPop()
    {
        std::optional<T> item;
        size_t depth = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (items_.empty())
                return std::nullopt;
            item = std::move(items_.front());
            items_.pop_front();
            depth = items_.size();
        }
        notifyProducers(depth);
        return item;
    }

    /**
     * Close the queue: consumers drain and then see std::nullopt;
     * producers blocked on a full queue are released.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        cv_.notify_all();
        notFullCv_.notify_all();
    }

    /** Reopen a closed queue (used when a framework is re-initialized). */
    void
    reopen()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = false;
    }

    /** Capacity bound (0 = unbounded). */
    size_t capacity() const { return capacity_; }

    /** Producer wake mark (0 = wake as soon as space frees). */
    size_t wakeMark() const { return wakeMark_; }

    /** Times a producer had to block on a full queue. */
    uint64_t
    producerStalls() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return producerStalls_;
    }

    /** Total time producers spent blocked on a full queue. */
    uint64_t
    producerStallNanos() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return stallNanos_;
    }

    /** Number of queued items (racy; for stats only). */
    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    /** True when empty (racy; for stats only). */
    bool empty() const { return size() == 0; }

  private:
    /**
     * Whether a push must wait. A closed queue never blocks
     * producers: shutdown must not deadlock a stalled submitter.
     */
    bool
    fullLocked() const
    {
        return capacity_ != 0 && !closed_ && items_.size() >= capacity_;
    }

    /** Occupancy below which a *blocked* producer may resume. */
    size_t
    wakeLevel() const
    {
        return wakeMark_ != 0 ? wakeMark_ : capacity_;
    }

    /**
     * Block (accounting the stall) until a blocked producer may
     * proceed: below the wake level, or the queue closed.
     */
    void
    waitNotFull(std::unique_lock<std::mutex> &lock)
    {
        if (!fullLocked())
            return;
        producerStalls_++;
        Timer timer;
        notFullCv_.wait(lock, [this] {
            return closed_ || items_.size() < wakeLevel();
        });
        stallNanos_ += timer.elapsedNs();
    }

    /**
     * Wake blocked producers after a pop left @p depth items. With a
     * wake mark, producers stay parked until occupancy drops under
     * the mark and are then all released (the kernel wait-queue
     * protocol); without one, a single producer is resumed per freed
     * slot.
     */
    void
    notifyProducers(size_t depth, bool all = false)
    {
        if (wakeMark_ != 0) {
            if (depth < wakeMark_)
                notFullCv_.notify_all();
        } else if (all) {
            notFullCv_.notify_all();
        } else {
            notFullCv_.notify_one();
        }
    }

    mutable std::mutex mutex_;
    std::condition_variable cv_;        ///< signals "not empty / closed"
    std::condition_variable notFullCv_; ///< signals "space available"
    std::deque<T> items_;
    size_t capacity_ = 0;
    size_t wakeMark_ = 0;
    uint64_t producerStalls_ = 0; ///< guarded by mutex_
    uint64_t stallNanos_ = 0;     ///< guarded by mutex_
    bool closed_ = false;
};

} // namespace pmtest

#endif // PMTEST_TRACE_CONCURRENT_QUEUE_HH
