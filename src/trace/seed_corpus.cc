#include "trace/seed_corpus.hh"

namespace pmtest
{

namespace
{

/** Location literal for line @p line of @p name. */
SourceLocation
at(const char *name, uint32_t line)
{
    return SourceLocation(name, line);
}

/** One seeded bug before trace assembly: a name and its ops. */
struct SeedCase
{
    const char *name;
    std::vector<PmOp> ops;
};

/** All shapes mirror the unit-test reproductions in tests/core. */
std::vector<SeedCase>
buildCorpus()
{
    std::vector<SeedCase> cases;

    {
        const char *n = "seed/not_persisted_missing_flush.cc";
        cases.push_back({n,
                         {
                             PmOp::write(0x10, 64, at(n, 1)),
                             PmOp::isPersist(0x10, 64, at(n, 2)),
                         }});
    }
    {
        const char *n = "seed/not_persisted_missing_fence.cc";
        cases.push_back({n,
                         {
                             PmOp::write(0x10, 64, at(n, 1)),
                             PmOp::clwb(0x10, 64, at(n, 2)),
                             PmOp::isPersist(0x10, 64, at(n, 3)),
                         }});
    }
    {
        // Fig. 1a: val and valid persist in the same epoch.
        const char *n = "seed/not_ordered_same_epoch.cc";
        cases.push_back(
            {n,
             {
                 PmOp::write(0x100, 8, at(n, 1)),
                 PmOp::write(0x140, 1, at(n, 2)),
                 PmOp::clwb(0x100, 8, at(n, 3)),
                 PmOp::clwb(0x140, 1, at(n, 4)),
                 PmOp::sfence(at(n, 5)),
                 PmOp::isOrderedBefore(0x100, 8, 0x140, 1, at(n, 6)),
             }});
    }
    {
        const char *n = "seed/not_ordered_missing_fence.cc";
        cases.push_back(
            {n,
             {
                 PmOp::write(0x100, 8, at(n, 1)),
                 PmOp::clwb(0x100, 8, at(n, 2)),
                 PmOp::write(0x140, 1, at(n, 3)),
                 PmOp::clwb(0x140, 1, at(n, 4)),
                 PmOp::sfence(at(n, 5)),
                 PmOp::isOrderedBefore(0x100, 8, 0x140, 1, at(n, 6)),
             }});
    }
    {
        const char *n = "seed/missing_log.cc";
        cases.push_back(
            {n,
             {
                 PmOp{OpType::TxBegin, 0, 0, 0, 0, at(n, 1)},
                 PmOp{OpType::TxAdd, 0x10, 64, 0, 0, at(n, 2)},
                 PmOp::write(0x10, 64, at(n, 3)),
                 PmOp::write(0x80, 64, at(n, 4)), // unlogged
                 PmOp::clwb(0x10, 64, at(n, 5)),
                 PmOp::clwb(0x80, 64, at(n, 6)),
                 PmOp::sfence(at(n, 7)),
                 PmOp{OpType::TxEnd, 0, 0, 0, 0, at(n, 8)},
             }});
    }
    {
        const char *n = "seed/incomplete_tx.cc";
        cases.push_back(
            {n,
             {
                 PmOp{OpType::TxCheckStart, 0, 0, 0, 0, at(n, 1)},
                 PmOp{OpType::TxBegin, 0, 0, 0, 0, at(n, 2)},
                 PmOp{OpType::TxAdd, 0x10, 64, 0, 0, at(n, 3)},
                 PmOp::write(0x10, 64, at(n, 4)),
                 PmOp{OpType::TxEnd, 0, 0, 0, 0, at(n, 5)},
                 PmOp{OpType::TxCheckEnd, 0, 0, 0, 0, at(n, 6)},
             }});
    }
    {
        const char *n = "seed/unmatched_tx.cc";
        cases.push_back(
            {n, {PmOp{OpType::TxBegin, 0, 0, 0, 0, at(n, 1)}}});
    }
    {
        const char *n = "seed/redundant_flush.cc";
        cases.push_back({n,
                         {
                             PmOp::write(0x10, 64, at(n, 1)),
                             PmOp::clwb(0x10, 64, at(n, 2)),
                             PmOp::clwb(0x10, 64, at(n, 3)),
                             PmOp::sfence(at(n, 4)),
                         }});
    }
    {
        const char *n = "seed/unnecessary_flush_clean.cc";
        cases.push_back({n,
                         {
                             PmOp::write(0x10, 64, at(n, 1)),
                             PmOp::clwb(0x10, 64, at(n, 2)),
                             PmOp::sfence(at(n, 3)),
                             PmOp::clwb(0x10, 64, at(n, 4)),
                         }});
    }
    {
        const char *n = "seed/unnecessary_flush_untouched.cc";
        cases.push_back({n, {PmOp::clwb(0x900, 64, at(n, 1))}});
    }
    {
        const char *n = "seed/duplicate_log.cc";
        cases.push_back(
            {n,
             {
                 PmOp{OpType::TxBegin, 0, 0, 0, 0, at(n, 1)},
                 PmOp{OpType::TxAdd, 0x10, 64, 0, 0, at(n, 2)},
                 PmOp{OpType::TxAdd, 0x10, 64, 0, 0, at(n, 3)},
                 PmOp::write(0x10, 64, at(n, 4)),
                 PmOp::clwb(0x10, 64, at(n, 5)),
                 PmOp::sfence(at(n, 6)),
                 PmOp{OpType::TxEnd, 0, 0, 0, 0, at(n, 7)},
             }});
    }

    return cases;
}

} // namespace

std::vector<SeedTrace>
seedCorpusTraces()
{
    const std::vector<SeedCase> corpus = buildCorpus();
    std::vector<SeedTrace> seeds;
    seeds.reserve(corpus.size());
    uint64_t id = 1;
    for (const SeedCase &seed : corpus) {
        Trace t(id++, 0);
        t.append(seed.ops);
        seeds.push_back({seed.name, std::move(t)});
    }
    return seeds;
}

} // namespace pmtest
