/**
 * @file
 * Mnemosyne-like lightweight persistent memory library (paper Fig. 2a:
 * the "user-space library" CCS flavour that is *not* PMDK). Durable
 * transactions use a write-ahead redo log: log_append() stages the new
 * value of a range in the log, log_flush() makes the log durable (the
 * commit point), after which the in-place updates are applied and
 * flushed. Recovery replays a committed log.
 *
 * Emits pmTxBegin/pmTxAdd/pmTxEnd events so PMTest's transaction
 * checkers work on Mnemosyne programs unchanged: a log_append *is*
 * the backup of the range it stages.
 */

#ifndef PMTEST_MNEMOSYNE_REGION_HH
#define PMTEST_MNEMOSYNE_REGION_HH

#include <cstdint>
#include <mutex>
#include <vector>

#include "core/api.hh"
#include "pmem/pm_pool.hh"
#include "pmem/tracked_image.hh"

namespace pmtest::mnemosyne
{

/** Fault-injection knobs for the Table 5 campaign. */
struct RegionFaults
{
    /** Apply in-place updates without waiting for the log to be
     *  durable (ordering bug: data may persist before its log). */
    bool skipLogFlush = false;
    /** Commit without flushing the in-place updates (durability). */
    bool skipDataFlush = false;
    /** Stage a range in the log twice (performance bug). */
    bool duplicateAppend = false;
};

/** A persistent region with redo-log durable transactions. */
class Region
{
  public:
    /** Persistent redo-log layout (fixed offsets inside the pool). */
    struct LogHeader
    {
        uint64_t committed = 0;
        uint64_t entryCount = 0;
    };

    struct LogEntry
    {
        static constexpr size_t kMaxData = 64;
        uint64_t offset = 0;
        uint64_t size = 0;
        uint8_t data[kMaxData] = {};
    };

    explicit Region(size_t size, bool simulate_crashes = false,
                    size_t log_size = 1 << 20);

    /** The underlying PM pool. */
    pmem::PmPool &pmPool() { return pool_; }

    /** @{ Allocation (volatile metadata, like the txlib pool). */
    void *alloc(size_t size);
    void free(void *ptr);

    template <typename T>
    T *
    root()
    {
        return static_cast<T *>(rootRaw(sizeof(T)));
    }

    void *rootRaw(size_t size);
    /** @} */

    /** @{ Durable transactions. */
    void txBegin(SourceLocation loc = {});

    /**
     * Stage a write of @p size bytes of @p src to @p dst: the new
     * value goes into the redo log now; @p dst is updated at commit.
     */
    void logAppend(void *dst, const void *src, size_t size,
                   SourceLocation loc = {});

    template <typename T>
    void
    logAssign(T *dst, const T &value, SourceLocation loc = {})
    {
        logAppend(dst, &value, sizeof(T), loc);
    }

    /**
     * Commit: flush the log (the durability point), apply the staged
     * updates in place, flush them, and retire the log.
     */
    void txCommit(SourceLocation loc = {});
    /** @} */

    /** Non-transactional durable write. */
    void persist(void *dst, const void *src, size_t size,
                 SourceLocation loc = {});

    /** Emit low-level checkers at the commit ordering points. */
    bool emitCheckers = false;

    /** Fault-injection knobs. */
    RegionFaults faults;

    /**
     * Recovery over a crash image: if the log is committed, replay
     * its entries into the image; then clear the log.
     * @return number of entries replayed.
     */
    static size_t recoverImage(std::vector<uint8_t> &image);

    /**
     * Tracked variant: with a tracker attached every byte recovery
     * reads/repairs is recorded for the crash-state oracle's pruning
     * and rollback. The untracked overload wraps this one.
     */
    static size_t recoverImage(pmem::TrackedImage &image);

  private:
    struct RegionHeader
    {
        static constexpr uint64_t kMagic = 0x4d4e454d4f53594eULL;
        uint64_t magic = 0;
        uint64_t rootOffset = 0;
        uint64_t logOffset = 0;
        uint64_t logSize = 0;
    };

    /** One staged (deferred) in-place update. */
    struct Pending
    {
        void *dst;
        size_t size;
    };

    LogHeader *logHeader();
    LogEntry *logEntryAt(uint64_t index);

    pmem::PmPool pool_;
    RegionHeader *header_;
    std::recursive_mutex txMutex_;
    int txDepth_ = 0;
    std::vector<Pending> pending_;
};

} // namespace pmtest::mnemosyne

#endif // PMTEST_MNEMOSYNE_REGION_HH
