#include "mnemosyne/region.hh"

#include <cstring>

#include "util/logging.hh"

namespace pmtest::mnemosyne
{

Region::Region(size_t size, bool simulate_crashes, size_t log_size)
    : pool_(size, simulate_crashes)
{
    // The redo log never takes more than a quarter of the region.
    log_size = std::min(log_size, size / 4);
    const uint64_t log_offset = pool_.alloc(log_size);

    RegionHeader header;
    header.magic = RegionHeader::kMagic;
    header.logOffset = log_offset;
    header.logSize = log_size;
    std::memcpy(pool_.base(), &header, sizeof(header));
    header_ = reinterpret_cast<RegionHeader *>(pool_.base());

    LogHeader log;
    std::memcpy(pool_.base() + log_offset, &log, sizeof(log));

    if (pool_.simulating()) {
        pool_.cache()->store(0, &header, sizeof(header));
        pool_.cache()->store(log_offset, &log, sizeof(log));
        pool_.cache()->flushAll();
    }
}

Region::LogHeader *
Region::logHeader()
{
    return reinterpret_cast<LogHeader *>(pool_.base() +
                                         header_->logOffset);
}

Region::LogEntry *
Region::logEntryAt(uint64_t index)
{
    return reinterpret_cast<LogEntry *>(
        pool_.base() + header_->logOffset + sizeof(LogHeader) +
        index * sizeof(LogEntry));
}

void *
Region::alloc(size_t size)
{
    return pool_.at(pool_.alloc(size));
}

void
Region::free(void *ptr)
{
    pool_.free(pool_.offsetOf(ptr));
}

void *
Region::rootRaw(size_t size)
{
    if (header_->rootOffset == 0) {
        const uint64_t offset = pool_.alloc(size);
        std::memset(pool_.at(offset), 0, size);

        RegionHeader updated = *header_;
        updated.rootOffset = offset;
        persist(header_, &updated, sizeof(updated), PMTEST_HERE);
        if (pool_.simulating()) {
            pool_.cache()->store(offset, pool_.at(offset), size);
            pool_.cache()->flushAll();
        }
    }
    return pool_.at(header_->rootOffset);
}

void
Region::txBegin(SourceLocation loc)
{
    txMutex_.lock();
    txDepth_++;
    pmTxBegin(loc);
    if (txDepth_ == 1) {
        // The redo-log region is self-protecting (recovery tolerates
        // partial logs before the commit record), so mark it as
        // covered rather than excluding it — this keeps the log's PM
        // operations in the testing scope, where the ordering
        // checkers in txCommit() need them.
        pmTxAdd(pool_.base() + header_->logOffset, header_->logSize,
                loc);
        pending_.clear();
    }
}

void
Region::logAppend(void *dst, const void *src, size_t size,
                  SourceLocation loc)
{
    if (txDepth_ == 0)
        fatal("mnemosyne: log_append outside a transaction");

    // The staged range is backed (redo) by the log: that is exactly
    // what the engine's log tree models, so emit TX_ADD for it.
    pmTxAdd(dst, size, loc);
    if (faults.duplicateAppend)
        pmTxAdd(dst, size, loc);

    LogHeader *log = logHeader();
    const uint64_t capacity =
        (header_->logSize - sizeof(LogHeader)) / sizeof(LogEntry);

    const auto *bytes = static_cast<const uint8_t *>(src);
    auto *dst_bytes = static_cast<uint8_t *>(dst);
    while (size > 0) {
        const size_t chunk = std::min<size_t>(size, LogEntry::kMaxData);
        if (log->entryCount >= capacity)
            fatal("mnemosyne: redo log full");

        LogEntry entry;
        entry.offset = pool_.offsetOf(dst_bytes);
        entry.size = chunk;
        std::memcpy(entry.data, bytes, chunk);

        LogEntry *slot = logEntryAt(log->entryCount);
        pmStore(slot, &entry, sizeof(entry), loc);
        pmClwb(slot, sizeof(entry), loc);

        LogHeader bumped = *log;
        bumped.entryCount++;
        pmStore(log, &bumped, sizeof(bumped), loc);
        pmClwb(log, sizeof(LogHeader), loc);

        if (faults.duplicateAppend) {
            // Stage the same bytes again (pure overhead).
            LogEntry dup = entry;
            LogEntry *dup_slot = logEntryAt(log->entryCount);
            pmStore(dup_slot, &dup, sizeof(dup), loc);
            pmClwb(dup_slot, sizeof(dup), loc);
            LogHeader bumped2 = *log;
            bumped2.entryCount++;
            pmStore(log, &bumped2, sizeof(bumped2), loc);
            pmClwb(log, sizeof(LogHeader), loc);
        }

        pending_.push_back(Pending{dst_bytes, chunk});
        bytes += chunk;
        dst_bytes += chunk;
        size -= chunk;
    }
}

void
Region::txCommit(SourceLocation loc)
{
    if (txDepth_ == 0)
        fatal("mnemosyne: commit outside a transaction");
    if (txDepth_ > 1) {
        txDepth_--;
        pmTxEnd(loc);
        txMutex_.unlock();
        return;
    }

    LogHeader *log = logHeader();

    // log_flush: the staged entries become durable, then the commit
    // record is persisted — in that order. The skipLogFlush fault
    // collapses both fences, so the commit record, the entries and
    // the in-place data all land in one epoch with no ordering.
    if (!faults.skipLogFlush)
        pmSfence(loc);

    // Commit record.
    LogHeader committed = *log;
    committed.committed = 1;
    pmStore(log, &committed, sizeof(committed), loc);
    pmClwb(log, sizeof(LogHeader), loc);
    if (!faults.skipLogFlush)
        pmSfence(loc);

    // Apply the staged updates in place; they may persist any time
    // from here on, which is safe because the log can replay them.
    uint64_t entry_index = 0;
    for (const auto &p : pending_) {
        const LogEntry *entry = logEntryAt(entry_index++);
        if (faults.duplicateAppend)
            entry_index++; // skip the duplicate copy
        pmStore(p.dst, entry->data, p.size, loc);
        if (!faults.skipDataFlush)
            pmClwb(p.dst, p.size, loc);
        if (emitCheckers) {
            pmtestIsOrderedBefore(logHeader(), sizeof(LogHeader),
                                  p.dst, p.size, loc);
        }
    }
    if (!faults.skipDataFlush)
        pmSfence(loc);
    if (emitCheckers) {
        for (const auto &p : pending_)
            pmtestIsPersist(p.dst, p.size, loc);
    }

    // Retire the log.
    LogHeader retired;
    retired.committed = 0;
    retired.entryCount = 0;
    pmStore(log, &retired, sizeof(retired), loc);
    pmClwb(log, sizeof(LogHeader), loc);
    pmSfence(loc);

    pending_.clear();
    txDepth_--;
    pmTxEnd(loc);
    txMutex_.unlock();
}

void
Region::persist(void *dst, const void *src, size_t size,
                SourceLocation loc)
{
    pmStore(dst, src, size, loc);
    pmClwb(dst, size, loc);
    pmSfence(loc);
}

size_t
Region::recoverImage(std::vector<uint8_t> &image)
{
    pmem::TrackedImage view(image);
    return recoverImage(view);
}

size_t
Region::recoverImage(pmem::TrackedImage &image)
{
    if (image.size() < sizeof(RegionHeader))
        return 0;
    const auto header = image.readAt<RegionHeader>(0);
    if (header.magic != RegionHeader::kMagic)
        return 0;

    const auto log = image.readAt<LogHeader>(header.logOffset);
    if (log.committed == 0) {
        // Uncommitted: discard the log; in-place data is untouched
        // because updates are deferred until after the commit record.
        image.writeAt(header.logOffset, LogHeader{});
        return 0;
    }

    size_t applied = 0;
    // Entry fields and payloads are read individually so recovery's
    // recorded read set is exactly the bytes it depends on (what the
    // representative crash-state oracle prunes against).
    for (uint64_t i = 0; i < log.entryCount; i++) {
        const uint64_t off = header.logOffset + sizeof(LogHeader) +
                             i * sizeof(LogEntry);
        if (off + sizeof(LogEntry) > image.size())
            break;
        const auto offset = image.readAt<uint64_t>(
            off + offsetof(LogEntry, offset));
        const auto size = image.readAt<uint64_t>(
            off + offsetof(LogEntry, size));
        if (size > LogEntry::kMaxData ||
            offset + size > image.size())
            continue;
        uint8_t data[LogEntry::kMaxData];
        image.readBytes(off + offsetof(LogEntry, data), data, size);
        image.writeBytes(offset, data, size);
        applied++;
    }

    image.writeAt(header.logOffset, LogHeader{});
    return applied;
}

} // namespace pmtest::mnemosyne
