#include "pmfs/journal.hh"

#include <cstring>

#include "util/logging.hh"

namespace pmtest::pmfs
{

Journal::Journal(pmem::PmPool &pool, uint64_t journal_offset,
                 uint64_t journal_size)
    : pool_(pool), offset_(journal_offset), size_(journal_size)
{
}

JournalHeader *
Journal::header()
{
    return reinterpret_cast<JournalHeader *>(pool_.base() + offset_);
}

LogEntry *
Journal::entryAt(uint64_t index)
{
    return reinterpret_cast<LogEntry *>(
        pool_.base() + offset_ + sizeof(JournalHeader) +
        index * sizeof(LogEntry));
}

void
Journal::persistHeader(SourceLocation loc)
{
    pmClwb(header(), sizeof(JournalHeader), PMTEST_HERE);
    pmSfence(loc);
}

void
Journal::beginTransaction(SourceLocation loc)
{
    if (open_)
        fatal("pmfs journal: nested transactions are not supported");
    JournalHeader *hdr = header();
    JournalHeader opened = *hdr;
    opened.live = 1;
    opened.entryCount = 0;
    opened.genId++;
    pmStore(hdr, &opened, sizeof(opened), PMTEST_HERE);
    persistHeader(loc);
    open_ = true;
    txFirstEntry_ = 0;
}

void
Journal::addLogEntry(const void *addr, size_t size, SourceLocation loc)
{
    if (!open_)
        fatal("pmfs journal: addLogEntry without a transaction");

    JournalHeader *hdr = header();
    const uint64_t capacity =
        (size_ - sizeof(JournalHeader)) / sizeof(LogEntry) - 1;

    const auto *bytes = static_cast<const uint8_t *>(addr);
    uint64_t pool_off = pool_.offsetOf(addr);
    while (size > 0) {
        const size_t chunk = std::min<size_t>(size, LogEntry::kMaxData);
        if (hdr->entryCount >= capacity)
            fatal("pmfs journal: full");

        LogEntry le;
        le.genId = hdr->genId;
        le.type = 0;
        le.size = static_cast<uint32_t>(chunk);
        le.offset = pool_off;
        std::memcpy(le.data, bytes, chunk);

        LogEntry *slot = entryAt(hdr->entryCount);
        pmStore(slot, &le, sizeof(le), PMTEST_HERE);
        pmClwb(slot, sizeof(le), PMTEST_HERE);
        if (!faults.skipLogFence)
            pmSfence(loc);

        JournalHeader bumped = *hdr;
        bumped.entryCount++;
        pmStore(hdr, &bumped, sizeof(bumped), PMTEST_HERE);
        pmClwb(hdr, sizeof(JournalHeader), PMTEST_HERE);
        if (!faults.skipLogFence)
            pmSfence(loc);

        bytes += chunk;
        pool_off += chunk;
        size -= chunk;
    }
}

void
Journal::commitTransaction(SourceLocation loc)
{
    if (!open_)
        fatal("pmfs journal: commit without a transaction");

    JournalHeader *hdr = header();

    // pmfs_commit_logentry: append the commit record and flush it.
    LogEntry le;
    le.genId = hdr->genId;
    le.type = 1; // commit record
    LogEntry *slot = entryAt(hdr->entryCount);
    pmStore(slot, &le, sizeof(le), PMTEST_HERE);
    pmClwb(slot, sizeof(le), PMTEST_HERE);

    if (faults.redundantCommitFlush) {
        // The paper's journal.c:632 bug: flush the whole transaction,
        // which writes the commit entry (already flushed above) back
        // a second time.
        const uint64_t first = offset_ + sizeof(JournalHeader) +
                               txFirstEntry_ * sizeof(LogEntry);
        const uint64_t len =
            (hdr->entryCount - txFirstEntry_ + 1) * sizeof(LogEntry);
        pmClwb(pool_.base() + first, len, PMTEST_HERE);
    }
    pmSfence(loc);

    // Retire the journal.
    JournalHeader closed = *hdr;
    closed.live = 0;
    closed.entryCount = 0;
    pmStore(hdr, &closed, sizeof(closed), PMTEST_HERE);
    persistHeader(loc);
    open_ = false;
}

size_t
Journal::recoverImage(std::vector<uint8_t> &image)
{
    pmem::TrackedImage view(image);
    return recoverImage(view);
}

size_t
Journal::recoverImage(pmem::TrackedImage &image)
{
    if (image.size() < sizeof(Superblock))
        return 0;
    const auto sb = image.readAt<Superblock>(0);
    if (sb.magic != Superblock::kMagic)
        return 0;

    const auto hdr = image.readAt<JournalHeader>(sb.journalOffset);
    if (hdr.live == 0)
        return 0;

    // Look for a commit record of the open generation: if present,
    // the transaction completed and the undo entries are stale. Only
    // the identifying fields are read while scanning — undo payloads
    // are read when (and only if) they are applied, so the recorded
    // read set stays as tight as what recovery depends on.
    bool committed = false;
    std::vector<uint64_t> undo_entries;
    for (uint64_t i = 0; i < hdr.entryCount + 1; i++) {
        const uint64_t off = sb.journalOffset + sizeof(JournalHeader) +
                             i * sizeof(LogEntry);
        if (off + sizeof(LogEntry) > image.size())
            break;
        const auto gen_id = image.readAt<uint64_t>(
            off + offsetof(LogEntry, genId));
        if (gen_id != hdr.genId)
            continue;
        const auto type = image.readAt<uint32_t>(
            off + offsetof(LogEntry, type));
        if (type == 1) {
            committed = true;
            break;
        }
        undo_entries.push_back(off);
    }

    size_t applied = 0;
    if (!committed) {
        for (auto it = undo_entries.rbegin();
             it != undo_entries.rend(); ++it) {
            const auto size = image.readAt<uint32_t>(
                *it + offsetof(LogEntry, size));
            const auto offset = image.readAt<uint64_t>(
                *it + offsetof(LogEntry, offset));
            if (size > LogEntry::kMaxData ||
                offset + size > image.size())
                continue;
            uint8_t data[LogEntry::kMaxData];
            image.readBytes(*it + offsetof(LogEntry, data), data,
                            size);
            image.writeBytes(offset, data, size);
            applied++;
        }
    }

    JournalHeader cleared = hdr;
    cleared.live = 0;
    cleared.entryCount = 0;
    image.writeAt(sb.journalOffset, cleared);
    return applied;
}

} // namespace pmtest::pmfs
