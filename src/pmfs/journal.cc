#include "pmfs/journal.hh"

#include <cstring>

#include "util/logging.hh"

namespace pmtest::pmfs
{

Journal::Journal(pmem::PmPool &pool, uint64_t journal_offset,
                 uint64_t journal_size)
    : pool_(pool), offset_(journal_offset), size_(journal_size)
{
}

JournalHeader *
Journal::header()
{
    return reinterpret_cast<JournalHeader *>(pool_.base() + offset_);
}

LogEntry *
Journal::entryAt(uint64_t index)
{
    return reinterpret_cast<LogEntry *>(
        pool_.base() + offset_ + sizeof(JournalHeader) +
        index * sizeof(LogEntry));
}

void
Journal::persistHeader(SourceLocation loc)
{
    pmClwb(header(), sizeof(JournalHeader), PMTEST_HERE);
    pmSfence(loc);
}

void
Journal::beginTransaction(SourceLocation loc)
{
    if (open_)
        fatal("pmfs journal: nested transactions are not supported");
    JournalHeader *hdr = header();
    JournalHeader opened = *hdr;
    opened.live = 1;
    opened.entryCount = 0;
    opened.genId++;
    pmStore(hdr, &opened, sizeof(opened), PMTEST_HERE);
    persistHeader(loc);
    open_ = true;
    txFirstEntry_ = 0;
}

void
Journal::addLogEntry(const void *addr, size_t size, SourceLocation loc)
{
    if (!open_)
        fatal("pmfs journal: addLogEntry without a transaction");

    JournalHeader *hdr = header();
    const uint64_t capacity =
        (size_ - sizeof(JournalHeader)) / sizeof(LogEntry) - 1;

    const auto *bytes = static_cast<const uint8_t *>(addr);
    uint64_t pool_off = pool_.offsetOf(addr);
    while (size > 0) {
        const size_t chunk = std::min<size_t>(size, LogEntry::kMaxData);
        if (hdr->entryCount >= capacity)
            fatal("pmfs journal: full");

        LogEntry le;
        le.genId = hdr->genId;
        le.type = 0;
        le.size = static_cast<uint32_t>(chunk);
        le.offset = pool_off;
        std::memcpy(le.data, bytes, chunk);

        LogEntry *slot = entryAt(hdr->entryCount);
        pmStore(slot, &le, sizeof(le), PMTEST_HERE);
        pmClwb(slot, sizeof(le), PMTEST_HERE);
        if (!faults.skipLogFence)
            pmSfence(loc);

        JournalHeader bumped = *hdr;
        bumped.entryCount++;
        pmStore(hdr, &bumped, sizeof(bumped), PMTEST_HERE);
        pmClwb(hdr, sizeof(JournalHeader), PMTEST_HERE);
        if (!faults.skipLogFence)
            pmSfence(loc);

        bytes += chunk;
        pool_off += chunk;
        size -= chunk;
    }
}

void
Journal::commitTransaction(SourceLocation loc)
{
    if (!open_)
        fatal("pmfs journal: commit without a transaction");

    JournalHeader *hdr = header();

    // pmfs_commit_logentry: append the commit record and flush it.
    LogEntry le;
    le.genId = hdr->genId;
    le.type = 1; // commit record
    LogEntry *slot = entryAt(hdr->entryCount);
    pmStore(slot, &le, sizeof(le), PMTEST_HERE);
    pmClwb(slot, sizeof(le), PMTEST_HERE);

    if (faults.redundantCommitFlush) {
        // The paper's journal.c:632 bug: flush the whole transaction,
        // which writes the commit entry (already flushed above) back
        // a second time.
        const uint64_t first = offset_ + sizeof(JournalHeader) +
                               txFirstEntry_ * sizeof(LogEntry);
        const uint64_t len =
            (hdr->entryCount - txFirstEntry_ + 1) * sizeof(LogEntry);
        pmClwb(pool_.base() + first, len, PMTEST_HERE);
    }
    pmSfence(loc);

    // Retire the journal.
    JournalHeader closed = *hdr;
    closed.live = 0;
    closed.entryCount = 0;
    pmStore(hdr, &closed, sizeof(closed), PMTEST_HERE);
    persistHeader(loc);
    open_ = false;
}

size_t
Journal::recoverImage(std::vector<uint8_t> &image)
{
    Superblock sb;
    if (image.size() < sizeof(sb))
        return 0;
    std::memcpy(&sb, image.data(), sizeof(sb));
    if (sb.magic != Superblock::kMagic)
        return 0;

    JournalHeader hdr;
    std::memcpy(&hdr, image.data() + sb.journalOffset, sizeof(hdr));
    if (hdr.live == 0)
        return 0;

    // Look for a commit record of the open generation: if present,
    // the transaction completed and the undo entries are stale.
    bool committed = false;
    std::vector<LogEntry> entries;
    for (uint64_t i = 0; i < hdr.entryCount + 1; i++) {
        LogEntry le;
        const uint64_t off = sb.journalOffset + sizeof(JournalHeader) +
                             i * sizeof(LogEntry);
        if (off + sizeof(le) > image.size())
            break;
        std::memcpy(&le, image.data() + off, sizeof(le));
        if (le.genId != hdr.genId)
            continue;
        if (le.type == 1) {
            committed = true;
            break;
        }
        entries.push_back(le);
    }

    size_t applied = 0;
    if (!committed) {
        for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
            if (it->size > LogEntry::kMaxData ||
                it->offset + it->size > image.size())
                continue;
            std::memcpy(image.data() + it->offset, it->data, it->size);
            applied++;
        }
    }

    JournalHeader cleared = hdr;
    cleared.live = 0;
    cleared.entryCount = 0;
    std::memcpy(image.data() + sb.journalOffset, &cleared,
                sizeof(cleared));
    return applied;
}

} // namespace pmtest::pmfs
