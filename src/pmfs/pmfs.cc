#include "pmfs/pmfs.hh"

#include <cstring>

#include "util/logging.hh"

namespace pmtest::pmfs
{

namespace
{
constexpr uint64_t kDefaultInodes = 256;
constexpr uint64_t kJournalSize = 64 * 1024;
} // namespace

Pmfs::Pmfs(size_t size, bool simulate_crashes, bool use_fifo)
    : pool_(size, simulate_crashes), useFifo_(use_fifo)
{
    // Carve the volume: superblock | inode table | journal | bitmap |
    // data blocks. Offsets are computed once and persisted in the
    // superblock so recovery can parse crash images.
    const uint64_t inode_table = pool_.alloc(kDefaultInodes *
                                             sizeof(Inode));
    const uint64_t journal_off = pool_.alloc(kJournalSize);

    // Whatever space remains becomes data blocks; each block also
    // needs one bitmap byte, and the allocator aligns regions.
    const uint64_t reserved = journal_off + kJournalSize + 8192;
    const uint64_t n_blocks =
        (size - reserved) / (kBlockSize + 1) - 2;
    const uint64_t bitmap_off = pool_.alloc(n_blocks);
    const uint64_t data_off = pool_.alloc(n_blocks * kBlockSize);

    Superblock init;
    init.magic = Superblock::kMagic;
    init.nInodes = kDefaultInodes;
    init.inodeTableOffset = inode_table;
    init.journalOffset = journal_off;
    init.journalSize = kJournalSize;
    init.nBlocks = n_blocks;
    init.blockBitmapOffset = bitmap_off;
    init.dataOffset = data_off;
    std::memcpy(pool_.base(), &init, sizeof(init));
    sbPtr_ = reinterpret_cast<Superblock *>(pool_.base());

    std::memset(pool_.base() + inode_table, 0,
                kDefaultInodes * sizeof(Inode));
    std::memset(pool_.base() + journal_off, 0, kJournalSize);
    std::memset(pool_.base() + bitmap_off, 0, n_blocks);

    if (pool_.simulating()) {
        // Mirror the mkfs state wholesale.
        pool_.cache()->store(0, pool_.base(), data_off);
        pool_.cache()->flushAll();
    }

    journal_ = std::make_unique<Journal>(pool_, journal_off,
                                         kJournalSize);

    if (useFifo_) {
        fifo_ = std::make_unique<KernelFifo>();
        pump_ = std::thread([this] {
            while (auto trace = fifo_->pop()) {
                pmtestSubmitTrace(std::move(*trace));
                tracesPumped_.fetch_add(1, std::memory_order_release);
            }
        });
    }
}

Pmfs::~Pmfs()
{
    if (fifo_) {
        fifo_->shutdown();
        if (pump_.joinable())
            pump_.join();
    }
}

Inode *
Pmfs::inodeAt(uint64_t index)
{
    return reinterpret_cast<Inode *>(
               pool_.base() + sbPtr_->inodeTableOffset) +
           index;
}

const Inode *
Pmfs::inodeAt(uint64_t index) const
{
    return reinterpret_cast<const Inode *>(
               pool_.base() + sbPtr_->inodeTableOffset) +
           index;
}

uint8_t *
Pmfs::blockAt(uint64_t block_index)
{
    return pool_.base() + sbPtr_->dataOffset +
           block_index * kBlockSize;
}

long
Pmfs::allocBlock()
{
    uint8_t *bitmap = pool_.base() + sbPtr_->blockBitmapOffset;
    for (uint64_t i = 0; i < sbPtr_->nBlocks; i++) {
        if (bitmap[i] == 0) {
            // Bitmap bytes are metadata: journaled by callers.
            uint8_t one = 1;
            pmStore(&bitmap[i], &one, 1, PMTEST_HERE);
            pmClwb(&bitmap[i], 1, PMTEST_HERE);
            return static_cast<long>(i);
        }
    }
    return -1;
}

void
Pmfs::freeBlock(uint64_t block_index)
{
    uint8_t *bitmap = pool_.base() + sbPtr_->blockBitmapOffset;
    uint8_t zero = 0;
    pmStore(&bitmap[block_index], &zero, 1, PMTEST_HERE);
    pmClwb(&bitmap[block_index], 1, PMTEST_HERE);
}

void
Pmfs::sendTrace()
{
    if (!useFifo_) {
        pmtestSendTrace();
        return;
    }
    Trace trace = pmtestSealTrace();
    if (!trace.empty()) {
        tracesPushed_.fetch_add(1, std::memory_order_relaxed);
        fifo_->push(std::move(trace));
    }
}

void
Pmfs::drainTraces()
{
    if (useFifo_) {
        while (tracesPumped_.load(std::memory_order_acquire) <
               tracesPushed_.load(std::memory_order_relaxed)) {
            std::this_thread::yield();
        }
    }
    pmtestGetResult();
}

int
Pmfs::lookup(const std::string &name) const
{
    for (uint64_t i = 0; i < sbPtr_->nInodes; i++) {
        const Inode *ino = inodeAt(i);
        if (ino->inUse && name == ino->name)
            return static_cast<int>(i);
    }
    return -1;
}

int
Pmfs::create(const std::string &name)
{
    if (name.size() >= kNameLen || lookup(name) >= 0)
        return -1;

    for (uint64_t i = 0; i < sbPtr_->nInodes; i++) {
        Inode *ino = inodeAt(i);
        if (ino->inUse)
            continue;

        journal_->beginTransaction(PMTEST_HERE);
        journal_->addLogEntry(ino, sizeof(Inode), PMTEST_HERE);

        Inode updated{};
        updated.inUse = 1;
        std::strncpy(updated.name, name.c_str(), kNameLen - 1);
        pmStore(ino, &updated, sizeof(updated), PMTEST_HERE);
        pmClwb(ino, sizeof(Inode), PMTEST_HERE);
        pmSfence(PMTEST_HERE);

        journal_->commitTransaction(PMTEST_HERE);
        sendTrace();
        return static_cast<int>(i);
    }
    return -1;
}

bool
Pmfs::unlink(const std::string &name)
{
    const int idx = lookup(name);
    if (idx < 0)
        return false;
    Inode *ino = inodeAt(idx);

    journal_->beginTransaction(PMTEST_HERE);
    journal_->addLogEntry(ino, sizeof(Inode), PMTEST_HERE);

    for (uint64_t b = 0; b < kDirectBlocks; b++) {
        if (ino->blocks[b] != 0)
            freeBlock(ino->blocks[b] - 1);
    }

    Inode cleared{};
    pmStore(ino, &cleared, sizeof(cleared), PMTEST_HERE);
    pmClwb(ino, sizeof(Inode), PMTEST_HERE);
    pmSfence(PMTEST_HERE);

    journal_->commitTransaction(PMTEST_HERE);
    sendTrace();
    return true;
}

bool
Pmfs::rename(const std::string &from, const std::string &to)
{
    if (to.size() >= kNameLen)
        return false;
    const int idx = lookup(from);
    if (idx < 0 || lookup(to) >= 0)
        return false;
    Inode *ino = inodeAt(idx);

    // Metadata-only update: journal the inode, rewrite the name.
    journal_->beginTransaction(PMTEST_HERE);
    journal_->addLogEntry(ino, sizeof(Inode), PMTEST_HERE);

    Inode updated = *ino;
    std::memset(updated.name, 0, kNameLen);
    std::strncpy(updated.name, to.c_str(), kNameLen - 1);
    pmStore(ino, &updated, sizeof(updated), PMTEST_HERE);
    pmClwb(ino, sizeof(Inode), PMTEST_HERE);
    pmSfence(PMTEST_HERE);

    journal_->commitTransaction(PMTEST_HERE);
    sendTrace();
    return true;
}

long
Pmfs::write(int ino_idx, uint64_t offset, const void *data, size_t len)
{
    if (ino_idx < 0 ||
        static_cast<uint64_t>(ino_idx) >= sbPtr_->nInodes)
        return -1;
    Inode *ino = inodeAt(ino_idx);
    if (!ino->inUse)
        return -1;
    if (offset + len > kDirectBlocks * kBlockSize)
        return -1;

    journal_->beginTransaction(PMTEST_HERE);
    journal_->addLogEntry(ino, sizeof(Inode), PMTEST_HERE);

    // XIP data path: copy into blocks and write them back before the
    // metadata commit makes them visible.
    const auto *bytes = static_cast<const uint8_t *>(data);
    Inode updated = *ino;
    size_t remaining = len;
    uint64_t pos = offset;
    while (remaining > 0) {
        const uint64_t bi = pos / kBlockSize;
        const size_t in_block = pos % kBlockSize;
        const size_t chunk =
            std::min(remaining, kBlockSize - in_block);

        if (updated.blocks[bi] == 0) {
            const long nb = allocBlock();
            if (nb < 0) {
                journal_->commitTransaction(PMTEST_HERE);
                sendTrace();
                return -1;
            }
            updated.blocks[bi] = static_cast<uint64_t>(nb) + 1;
        }
        uint8_t *dst = blockAt(updated.blocks[bi] - 1) + in_block;
        pmStore(dst, bytes, chunk, PMTEST_HERE);
        if (!faults.skipDataFlush)
            pmClwb(dst, chunk, PMTEST_HERE);
        if (faults.doubleFlushXip) {
            // xips.c bug: the same buffer is written back again.
            pmClwb(dst, chunk, PMTEST_HERE);
        }

        bytes += chunk;
        pos += chunk;
        remaining -= chunk;
    }
    if (faults.flushUnmapped) {
        // files.c bug: a buffer that was never written gets flushed.
        uint8_t *unmapped =
            blockAt(sbPtr_->nBlocks - 1);
        pmClwb(unmapped, kBlockSize, PMTEST_HERE);
    }
    if (!faults.skipDataFlush && !faults.skipDataFence)
        pmSfence(PMTEST_HERE);

    // Metadata: grown size + new block pointers.
    if (offset + len > updated.size)
        updated.size = offset + len;
    pmStore(ino, &updated, sizeof(updated), PMTEST_HERE);
    pmClwb(ino, sizeof(Inode), PMTEST_HERE);
    pmSfence(PMTEST_HERE);
    if (emitCheckers) {
        // File data must be durable before the inode references it.
        const uint64_t first_block = offset / kBlockSize;
        if (len > 0 && updated.blocks[first_block] != 0) {
            const uint8_t *data_ptr =
                pool_.base() + sbPtr_->dataOffset +
                (updated.blocks[first_block] - 1) * kBlockSize;
            PMTEST_IS_PERSIST(data_ptr, kBlockSize);
            PMTEST_IS_ORDERED_BEFORE(data_ptr, kBlockSize, ino,
                                     sizeof(Inode));
        }
        PMTEST_IS_PERSIST(ino, sizeof(Inode));
    }

    journal_->commitTransaction(PMTEST_HERE);
    sendTrace();
    return static_cast<long>(len);
}

long
Pmfs::read(int ino_idx, uint64_t offset, void *out, size_t len) const
{
    if (ino_idx < 0 ||
        static_cast<uint64_t>(ino_idx) >= sbPtr_->nInodes)
        return -1;
    const Inode *ino = inodeAt(ino_idx);
    if (!ino->inUse || offset >= ino->size)
        return 0;

    len = std::min<uint64_t>(len, ino->size - offset);
    auto *bytes = static_cast<uint8_t *>(out);
    size_t done = 0;
    while (done < len) {
        const uint64_t pos = offset + done;
        const uint64_t bi = pos / kBlockSize;
        const size_t in_block = pos % kBlockSize;
        const size_t chunk =
            std::min(len - done, kBlockSize - in_block);

        if (ino->blocks[bi] == 0) {
            std::memset(bytes + done, 0, chunk); // hole
        } else {
            const uint8_t *src =
                pool_.base() + sbPtr_->dataOffset +
                (ino->blocks[bi] - 1) * kBlockSize + in_block;
            std::memcpy(bytes + done, src, chunk);
        }
        done += chunk;
    }
    return static_cast<long>(done);
}

uint64_t
Pmfs::fileSize(int ino_idx) const
{
    if (ino_idx < 0 ||
        static_cast<uint64_t>(ino_idx) >= sbPtr_->nInodes)
        return 0;
    const Inode *ino = inodeAt(ino_idx);
    return ino->inUse ? ino->size : 0;
}

size_t
Pmfs::fileCount() const
{
    size_t n = 0;
    for (uint64_t i = 0; i < sbPtr_->nInodes; i++)
        n += inodeAt(i)->inUse ? 1 : 0;
    return n;
}

uint64_t
Pmfs::fifoStalls() const
{
    return fifo_ ? fifo_->producerStalls() : 0;
}

uint64_t
Pmfs::fifoStallNanos() const
{
    return fifo_ ? fifo_->producerStallNanos() : 0;
}

size_t
Pmfs::fifoDepth() const
{
    return fifo_ ? fifo_->size() : 0;
}

} // namespace pmtest::pmfs
