/**
 * @file
 * On-"media" layout of the mini PM file system (the PMFS stand-in:
 * see DESIGN.md's substitution table). Fixed-offset superblock, inode
 * table, journal region and data blocks inside a pmem::PmPool, so
 * crash images can be parsed and recovered exactly like the live
 * volume.
 */

#ifndef PMTEST_PMFS_LAYOUT_HH
#define PMTEST_PMFS_LAYOUT_HH

#include <cstdint>

namespace pmtest::pmfs
{

/** Data block size. */
constexpr size_t kBlockSize = 512;

/** Direct blocks per inode (max file size = 16 * 512 = 8 KiB). */
constexpr size_t kDirectBlocks = 16;

/** Max file-name length (including NUL). */
constexpr size_t kNameLen = 48;

/** Superblock, at pool offset 0. */
struct Superblock
{
    static constexpr uint64_t kMagic = 0x504d46532d4c4954ULL;

    uint64_t magic = 0;
    uint64_t nInodes = 0;
    uint64_t inodeTableOffset = 0;
    uint64_t journalOffset = 0;
    uint64_t journalSize = 0;
    uint64_t nBlocks = 0;
    uint64_t blockBitmapOffset = 0;
    uint64_t dataOffset = 0;
};

/** One inode (also serves as the directory entry: flat namespace). */
struct Inode
{
    uint64_t inUse = 0;
    uint64_t size = 0;
    uint64_t blocks[kDirectBlocks] = {}; ///< block indices + 1; 0 = hole
    char name[kNameLen] = {};
};

/** Journal region header. */
struct JournalHeader
{
    uint64_t live = 0;       ///< nonzero while a journal TX is open
    uint64_t entryCount = 0; ///< persisted undo entries
    uint64_t genId = 0;      ///< generation of the open TX
};

/** One journal (undo) log entry — 64 bytes, one cache line. */
struct LogEntry
{
    static constexpr size_t kMaxData = 40;

    uint64_t genId = 0;
    uint32_t type = 0; ///< 0 = data entry, 1 = commit record
    uint32_t size = 0;
    uint64_t offset = 0;
    uint8_t data[kMaxData] = {};
};

static_assert(sizeof(LogEntry) == 64, "journal entries are one line");

} // namespace pmtest::pmfs

#endif // PMTEST_PMFS_LAYOUT_HH
