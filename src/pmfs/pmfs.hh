/**
 * @file
 * The mini PM file system (PMFS stand-in): a flat-namespace,
 * direct-block file system over a pmem::PmPool. Metadata updates are
 * journaled (see journal.hh); file data is written XIP-style with
 * explicit writeback + fence before the metadata commit.
 *
 * Kernel-module integration (paper §4.5, Fig. 9b): the file system
 * "runs in the kernel", so its traces cross a bounded KernelFifo to a
 * user-space pump thread that feeds the checking engine, instead of
 * being submitted directly.
 */

#ifndef PMTEST_PMFS_PMFS_HH
#define PMTEST_PMFS_PMFS_HH

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "core/api.hh"
#include "pmem/pm_pool.hh"
#include "pmfs/journal.hh"
#include "pmfs/layout.hh"
#include "trace/kernel_fifo.hh"

namespace pmtest::pmfs
{

/** File-system level fault knobs (the paper's PMFS bug catalog). */
struct PmfsFaults
{
    /** xips.c:207/262 — flush the same data buffer twice. */
    bool doubleFlushXip = false;
    /** files.c:232 — flush a buffer that was never written. */
    bool flushUnmapped = false;
    /** Synthetic: skip the data flush before metadata commit. */
    bool skipDataFlush = false;
    /** Synthetic: skip the fence between data and metadata. */
    bool skipDataFence = false;
};

/** The mini PM file system. */
class Pmfs
{
  public:
    /**
     * @param size volume size in bytes
     * @param simulate_crashes mirror into a device for crash images
     * @param use_fifo route traces through the kernel FIFO + pump
     *        thread instead of direct submission
     */
    explicit Pmfs(size_t size, bool simulate_crashes = false,
                  bool use_fifo = true);
    ~Pmfs();

    Pmfs(const Pmfs &) = delete;
    Pmfs &operator=(const Pmfs &) = delete;

    /** Create an empty file. @return inode number, or -1 if full. */
    int create(const std::string &name);

    /** Find a file. @return inode number, or -1. */
    int lookup(const std::string &name) const;

    /** Delete a file. @return true when it existed. */
    bool unlink(const std::string &name);

    /**
     * Rename a file (journaled; fails if the target name exists).
     * @return true on success.
     */
    bool rename(const std::string &from, const std::string &to);

    /**
     * Write @p len bytes at @p offset.
     * @return bytes written, or -1 on error (e.g. beyond max size).
     */
    long write(int ino, uint64_t offset, const void *data, size_t len);

    /** Read @p len bytes at @p offset. @return bytes read, or -1. */
    long read(int ino, uint64_t offset, void *out, size_t len) const;

    /** File size in bytes, or 0 for a bad inode. */
    uint64_t fileSize(int ino) const;

    /** Number of files. */
    size_t fileCount() const;

    /** The underlying pool (attachable for crash simulation). */
    pmem::PmPool &pmPool() { return pool_; }

    /** The metadata journal. */
    Journal &journal() { return *journal_; }

    /** Fault knobs. */
    PmfsFaults faults;

    /**
     * Emit low-level checkers at the write path's ordering points
     * (data must persist before the metadata that references it).
     */
    bool emitCheckers = false;

    /** Producer-side stalls on the kernel FIFO (backpressure stat). */
    uint64_t fifoStalls() const;

    /** Time producers spent parked on the kernel FIFO wait queue. */
    uint64_t fifoStallNanos() const;

    /** Traces currently queued in the kernel FIFO (racy; stats). */
    size_t fifoDepth() const;

    /**
     * Wait until every trace pushed into the kernel FIFO has been
     * handed to the checking engine, then wait for the engine itself
     * (the kernel-path equivalent of PMTest_GET_RESULT).
     */
    void drainTraces();

    /**
     * Full-volume recovery over a crash image: journal rollback.
     * @return journal entries applied.
     */
    static size_t recoverImage(std::vector<uint8_t> &image)
    {
        return Journal::recoverImage(image);
    }

    /** Tracked variant (see Journal::recoverImage). */
    static size_t
    recoverImage(pmem::TrackedImage &image)
    {
        return Journal::recoverImage(image);
    }

  private:
    Superblock *sb() { return sbPtr_; }
    const Superblock *sb() const { return sbPtr_; }
    Inode *inodeAt(uint64_t index);
    const Inode *inodeAt(uint64_t index) const;
    uint8_t *blockAt(uint64_t block_index);
    long allocBlock();
    void freeBlock(uint64_t block_index);

    /** Seal the current trace and route it kernel-style. */
    void sendTrace();

    pmem::PmPool pool_;
    Superblock *sbPtr_;
    std::unique_ptr<Journal> journal_;

    bool useFifo_;
    std::unique_ptr<KernelFifo> fifo_;
    std::thread pump_;
    std::atomic<uint64_t> tracesPushed_{0};
    std::atomic<uint64_t> tracesPumped_{0};
};

} // namespace pmtest::pmfs

#endif // PMTEST_PMFS_PMFS_HH
