/**
 * @file
 * The PMFS-style metadata journal (undo logging). This file hosts the
 * paper's PMFS bug sites:
 *
 *  - Table 6 "new" bug (journal.c:632): pmfs_commit_transaction
 *    flushes the commit log entry and then flushes the *entire*
 *    transaction range again — writing back the already-flushed entry
 *    a second time (RedundantFlush WARN).
 *  - Known bug (xips.c:207/262): flushing the same persistent buffer
 *    twice, reproduced by the `doubleFlush` knob.
 *  - Known bug (files.c:232): flushing an unmapped (never written)
 *    buffer, reproduced by the `flushUnmapped` knob.
 */

#ifndef PMTEST_PMFS_JOURNAL_HH
#define PMTEST_PMFS_JOURNAL_HH

#include <cstdint>

#include "core/api.hh"
#include "pmem/pm_pool.hh"
#include "pmem/tracked_image.hh"
#include "pmfs/layout.hh"

namespace pmtest::pmfs
{

/** Journal fault knobs (paper Table 6 reproductions). */
struct JournalFaults
{
    /** Flush the whole TX range again at commit (new bug 1). */
    bool redundantCommitFlush = false;
    /** Skip the fence after logging (synthetic correctness bug). */
    bool skipLogFence = false;
};

/** The metadata undo journal of the mini PMFS. */
class Journal
{
  public:
    /**
     * @param pool the volume
     * @param journal_offset pool offset of the journal region
     * @param journal_size bytes reserved for the region
     */
    Journal(pmem::PmPool &pool, uint64_t journal_offset,
            uint64_t journal_size);

    /** Open a transaction (pmfs_new_transaction). */
    void beginTransaction(SourceLocation loc = {});

    /**
     * Undo-log @p size bytes of current content at @p addr
     * (pmfs_add_logentry). Must be called before the metadata is
     * modified in place.
     */
    void addLogEntry(const void *addr, size_t size,
                     SourceLocation loc = {});

    /**
     * Commit (pmfs_commit_transaction): append the commit record,
     * flush it, fence, and retire the journal.
     */
    void commitTransaction(SourceLocation loc = {});

    /** Whether a transaction is open. */
    bool open() const { return open_; }

    /** Fault knobs. */
    JournalFaults faults;

    /**
     * Roll back an uncommitted journal in a raw volume image: apply
     * undo entries of the open generation in reverse.
     * @return entries applied.
     */
    static size_t recoverImage(std::vector<uint8_t> &image);

    /**
     * Tracked variant: with a tracker attached every byte recovery
     * reads/repairs is recorded for the crash-state oracle's pruning
     * and rollback. The untracked overload wraps this one.
     */
    static size_t recoverImage(pmem::TrackedImage &image);

  private:
    JournalHeader *header();
    LogEntry *entryAt(uint64_t index);
    void persistHeader(SourceLocation loc);

    pmem::PmPool &pool_;
    const uint64_t offset_;
    const uint64_t size_;
    bool open_ = false;
    /** First entry index of the open TX (for the redundant flush). */
    uint64_t txFirstEntry_ = 0;
};

} // namespace pmtest::pmfs

#endif // PMTEST_PMFS_JOURNAL_HH
