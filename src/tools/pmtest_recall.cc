/**
 * @file
 * Seeded-bug recall/precision metric (`pmtest-recall-v1`): how much
 * of the known bug population do the checkers and the representative
 * crash-state oracle actually find?
 *
 *  - Checker campaigns: the Table 5 (42 injected bugs) and Table 6
 *    (known/new real bugs) campaigns from workloads/bug_injector,
 *    plus the seeded-bug trace corpus — recall is detected/seeded.
 *  - Oracle campaign: crash-consistency scenarios with known ground
 *    truth (clean protocols must survive every crash state, seeded
 *    corruptions must fail in some state), each explored in
 *    representative mode — recall over the buggy cases, precision
 *    against the clean ones, and the measured state-space reduction.
 *
 * CI runs this and gates on bench/recall_baseline.json via
 * bench/check_recall.py: recall must never drop below the recorded
 * baseline.
 *
 * Usage: pmtest_recall [--json=FILE] [--metrics-port=N]
 *                      [--event-log=FILE]
 * --metrics-port serves /metrics and /metrics.json live while the
 * campaigns run (oracle counters, RSS, rates); --event-log appends
 * run start/stop records. Both follow the pmtest_check contract
 * (port 0 = ephemeral, "-" = stdout, unwritable path = exit 2).
 * Exit status: 0 on success, 2 on usage/IO errors.
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/check_session.hh"
#include "util/cli.hh"

#include "baseline/yat.hh"
#include "core/api.hh"
#include "core/engine.hh"
#include "pmds/hashmap_atomic.hh"
#include "pmds/hashmap_tx.hh"
#include "pmfs/pmfs.hh"
#include "trace/seed_corpus.hh"
#include "txlib/undo_log.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "workloads/bug_injector.hh"

namespace pmtest
{
namespace
{

using baseline::Yat;
using ByteMap = std::map<uint64_t, std::vector<uint8_t>>;

/** One ground-truth oracle scenario. */
struct OracleCase
{
    const char *id;
    bool seeded; ///< true when some crash state must fail recovery
    std::function<Yat::OracleResult()> run;
};

/** Outcome of the oracle campaign. */
struct OracleCampaign
{
    size_t seeded = 0;
    size_t found = 0;          ///< seeded cases with failures > 0
    size_t clean = 0;
    size_t falsePositives = 0; ///< clean cases with failures > 0
    uint64_t statesTested = 0;
    uint64_t statesCovered = 0;
    std::vector<std::string> missed;
};

Yat::OracleOptions
representativeOptions()
{
    Yat::OracleOptions opts;
    opts.mode = Yat::OracleOptions::Mode::Representative;
    return opts;
}

/** Committed map prefix shared by the txlib scenarios. */
template <typename MapT>
ByteMap
seedMap(MapT &map, uint8_t fill)
{
    ByteMap reference;
    const std::vector<uint8_t> value(40, fill);
    for (uint64_t k = 1; k <= 12; k++) {
        map.insert(k, value.data(), value.size());
        reference[k] = value;
    }
    return reference;
}

/** Open a transaction writing @p objects fresh 64-byte objects. */
void
stageOpenTx(txlib::ObjPool &pool, int objects)
{
    pool.txBegin();
    for (int i = 0; i < objects; i++) {
        auto *obj = static_cast<uint64_t *>(pool.txAllocRaw(64));
        uint64_t payload[8];
        for (int w = 0; w < 8; w++)
            payload[w] = 0x4000 * (i + 1) + w + 1;
        pool.txWrite(obj, payload, sizeof(payload));
    }
}

/** Explore a txlib map pool; optionally seed an unlogged store. */
Yat::OracleResult
runTxlibCase(bool seed_unlogged_write)
{
    pmtestInit(Config{});
    pmtestThreadInit();
    txlib::ObjPool pool(4 << 20, /*simulate_crashes=*/true);
    pmtestAttachPool(&pool.pmPool());
    pmds::HashmapTx map(pool);
    const ByteMap reference = seedMap(map, 0x5a);

    stageOpenTx(pool, 24);
    if (seed_unlogged_write) {
        // The missing-TX_ADD bug class: recovery cannot roll this
        // back, so states where it persisted break the count check.
        txlib::PoolHeader header;
        std::memcpy(&header, pool.pmPool().base(), sizeof(header));
        auto *count = reinterpret_cast<uint64_t *>(
            pool.pmPool().base() + header.rootOffset + 16);
        pmAssign(count, *count + 1);
    }

    const auto result = Yat::explorePool(
        pool.pmPool(),
        [&](pmem::TrackedImage &image) {
            txlib::recoverImage(image);
            ByteMap walked;
            if (!pmds::HashmapTx::readImage(pool.pmPool(),
                                            image.raw(), &walked,
                                            image.tracker()))
                return false;
            return walked == reference;
        },
        representativeOptions());
    pool.txCommit();
    pmtestDetachPool();
    pmtestExit();
    return result;
}

/** Explore an atomic-map pool; optionally skip the node flush. */
Yat::OracleResult
runAtomicMapCase(bool seed_skip_flush)
{
    pmtestInit(Config{});
    pmtestThreadInit();
    txlib::ObjPool pool(4 << 20, /*simulate_crashes=*/true);
    pmtestAttachPool(&pool.pmPool());
    pmds::HashmapAtomic map(pool);

    const std::vector<uint8_t> value(32, 0x4c);
    for (uint64_t k = 1; k <= 12; k++)
        map.insert(k, value.data(), value.size());
    uint64_t expected = 12;
    if (seed_skip_flush) {
        // One more insert with the new-node writeback skipped: the
        // published link may point at a stale (zero) node.
        map.faults.skipFlush = true;
        map.insert(13, value.data(), value.size());
        map.faults.skipFlush = false;
        expected = 13;
    }
    // Unpublished staged buffers inflate the space past 2^30.
    for (int i = 0; i < 30; i++) {
        auto *buf = static_cast<uint64_t *>(pool.allocRaw(64));
        uint64_t payload[8];
        for (int w = 0; w < 8; w++)
            payload[w] = 0xbeef0000 + 8 * i + w;
        pmStore(buf, payload, sizeof(payload));
    }

    const auto result = Yat::explorePool(
        pool.pmPool(),
        [&](pmem::TrackedImage &image) {
            uint64_t recounted = 0;
            if (!pmds::HashmapAtomic::recoverImage(
                    pool.pmPool(), image.raw(), &recounted,
                    image.tracker()))
                return false;
            if (recounted != expected)
                return false;
            if (!seed_skip_flush)
                return true;
            // The stale-node state recounts to 13 (the link is
            // durable) but the node bytes never persisted. Walk the
            // chains for it: the Tx map's image walker shares the
            // node layout and root prefix, and rejects a node whose
            // value pointer is null/garbage.
            return pmds::HashmapTx::readImage(pool.pmPool(),
                                              image.raw(), nullptr,
                                              image.tracker());
        },
        representativeOptions());
    pmtestDetachPool();
    pmtestExit();
    return result;
}

/** Explore a PMFS volume; optionally skip the data fence. */
Yat::OracleResult
runPmfsCase(bool seed_meta_corruption)
{
    pmtestInit(Config{});
    pmtestThreadInit();
    pmfs::Pmfs fs(4 << 20, /*simulate_crashes=*/true,
                  /*use_fifo=*/false);
    pmtestAttachPool(&fs.pmPool());

    fs.faults.skipDataFlush = true; // data lines stay in flight
    const std::string payload(700, 'q');
    for (int i = 0; i < 3; i++) {
        const int ino = fs.create("recall" + std::to_string(i));
        if (ino < 0 ||
            fs.write(ino, 0, payload.data(), payload.size()) !=
                static_cast<long>(payload.size())) {
            panic("pmfs setup failed");
        }
    }
    if (seed_meta_corruption) {
        // An unjournaled in-place metadata store: flip an in-use
        // inode's size without a journal entry. Recovery cannot
        // restore it, so states where it persisted fail the walk.
        pmfs::Superblock sb;
        std::memcpy(&sb, fs.pmPool().base(), sizeof(sb));
        auto *size_field = reinterpret_cast<uint64_t *>(
            fs.pmPool().base() + sb.inodeTableOffset +
            offsetof(pmfs::Inode, size));
        pmAssign(size_field, uint64_t(9999));
    }

    const auto result = Yat::explorePool(
        fs.pmPool(),
        [&](pmem::TrackedImage &image) {
            pmfs::Pmfs::recoverImage(image);
            const auto sb = image.readAt<pmfs::Superblock>(0);
            if (sb.magic != pmfs::Superblock::kMagic)
                return false;
            size_t in_use = 0;
            for (uint64_t i = 0; i < sb.nInodes; i++) {
                const auto ino = image.readAt<pmfs::Inode>(
                    sb.inodeTableOffset + i * sizeof(pmfs::Inode));
                if (!ino.inUse)
                    continue;
                in_use++;
                if (std::strncmp(ino.name, "recall", 6) != 0 ||
                    ino.size != 700)
                    return false;
            }
            return in_use == 3;
        },
        representativeOptions());
    pmtestDetachPool();
    pmtestExit();
    return result;
}

std::vector<OracleCase>
buildOracleCampaign()
{
    return {
        {"txlib-open-tx-clean", false,
         [] { return runTxlibCase(false); }},
        {"txlib-unlogged-write", true,
         [] { return runTxlibCase(true); }},
        {"atomic-map-clean", false,
         [] { return runAtomicMapCase(false); }},
        {"atomic-map-skip-flush", true,
         [] { return runAtomicMapCase(true); }},
        {"pmfs-journaled-clean", false,
         [] { return runPmfsCase(false); }},
        {"pmfs-unjournaled-meta", true,
         [] { return runPmfsCase(true); }},
    };
}

OracleCampaign
runOracleCampaign(const std::vector<OracleCase> &cases)
{
    OracleCampaign out;
    for (const auto &c : cases) {
        const auto result = c.run();
        out.statesTested += result.statesTested;
        out.statesCovered += result.statesCovered;
        const bool flagged = result.failures > 0;
        if (c.seeded) {
            out.seeded++;
            if (flagged)
                out.found++;
            else
                out.missed.push_back(c.id);
        } else {
            out.clean++;
            if (flagged) {
                out.falsePositives++;
                out.missed.push_back(std::string(c.id) +
                                     " (false positive)");
            }
        }
    }
    return out;
}

/** Seed-corpus recall: every seeded trace must produce a finding. */
void
runSeedCorpus(size_t *total, size_t *detected,
              std::vector<std::string> *missed)
{
    core::Engine engine(core::ModelKind::X86);
    for (const auto &seed : seedCorpusTraces()) {
        (*total)++;
        const auto report = engine.check(seed.trace);
        if (!report.findings().empty())
            (*detected)++;
        else
            missed->push_back(seed.name);
    }
}

void
writeCampaignJson(JsonWriter &w, const char *name,
                  const workloads::CampaignOutcome &outcome)
{
    w.key(name).beginObject();
    w.member("seeded", outcome.total);
    w.member("detected", outcome.detected);
    w.key("by_category").beginObject();
    for (const auto &[category, counts] : outcome.byCategory) {
        w.key(category).beginObject();
        w.member("seeded", counts.first);
        w.member("detected", counts.second);
        w.endObject();
    }
    w.endObject();
    w.key("missed").beginArray();
    for (const auto &id : outcome.missed)
        w.value(id);
    w.endArray();
    w.endObject();
}

int
run(const std::string &json_path)
{
    // Checker recall: the injected-bug campaigns + the seed corpus.
    const auto table5 =
        workloads::runCampaign(workloads::buildTable5Campaign());
    const auto table6 =
        workloads::runCampaign(workloads::buildTable6Campaign());
    size_t corpus_total = 0, corpus_detected = 0;
    std::vector<std::string> corpus_missed;
    runSeedCorpus(&corpus_total, &corpus_detected, &corpus_missed);

    // Oracle recall: representative exploration on ground-truth
    // scenarios.
    const auto oracle = runOracleCampaign(buildOracleCampaign());

    const size_t checker_seeded =
        table5.total + table6.total + corpus_total;
    const size_t checker_detected =
        table5.detected + table6.detected + corpus_detected;
    const double checker_recall =
        checker_seeded == 0
            ? 1.0
            : double(checker_detected) / double(checker_seeded);
    const double oracle_recall =
        oracle.seeded == 0 ? 1.0
                           : double(oracle.found) /
                                 double(oracle.seeded);
    const double oracle_precision =
        oracle.found + oracle.falsePositives == 0
            ? 1.0
            : double(oracle.found) /
                  double(oracle.found + oracle.falsePositives);
    const double reduction =
        oracle.statesTested == 0
            ? 1.0
            : double(oracle.statesCovered) /
                  double(oracle.statesTested);

    JsonWriter w;
    w.beginObject();
    w.member("schema", "pmtest-recall-v1");
    w.member("tool", "pmtest_recall");
    w.key("checker").beginObject();
    writeCampaignJson(w, "table5", table5);
    writeCampaignJson(w, "table6", table6);
    w.key("seed_corpus").beginObject();
    w.member("seeded", corpus_total);
    w.member("detected", corpus_detected);
    w.key("missed").beginArray();
    for (const auto &name : corpus_missed)
        w.value(name);
    w.endArray();
    w.endObject();
    w.member("seeded", checker_seeded);
    w.member("detected", checker_detected);
    w.member("recall", checker_recall);
    w.endObject();
    w.key("oracle").beginObject();
    w.member("seeded", oracle.seeded);
    w.member("found", oracle.found);
    w.member("clean", oracle.clean);
    w.member("false_positives", oracle.falsePositives);
    w.member("recall", oracle_recall);
    w.member("precision", oracle_precision);
    w.member("states_tested", oracle.statesTested);
    w.member("states_covered", oracle.statesCovered);
    w.member("reduction_ratio", reduction);
    w.key("missed").beginArray();
    for (const auto &id : oracle.missed)
        w.value(id);
    w.endArray();
    w.endObject();
    w.endObject();

    std::string write_error;
    if (!writeJsonFile(json_path.empty() ? "-" : json_path, w,
                       &write_error)) {
        std::fprintf(stderr, "%s\n", write_error.c_str());
        return 2;
    }

    std::fprintf(stderr,
                 "checker: %zu/%zu seeded bugs detected "
                 "(recall %.3f)\n"
                 "oracle:  %zu/%zu seeded corruptions found, %zu "
                 "false positives (recall %.3f, precision %.3f)\n"
                 "oracle states: %llu tested covering %llu "
                 "(%.1fx reduction)\n",
                 checker_detected, checker_seeded, checker_recall,
                 oracle.found, oracle.seeded, oracle.falsePositives,
                 oracle_recall, oracle_precision,
                 static_cast<unsigned long long>(oracle.statesTested),
                 static_cast<unsigned long long>(
                     oracle.statesCovered),
                 reduction);
    return 0;
}

} // namespace
} // namespace pmtest

int
main(int argc, char **argv)
{
    std::string json_path;
    size_t metrics_port = static_cast<size_t>(-1);
    std::string event_log_path;

    pmtest::util::CliParser cli("pmtest_recall");
    cli.addString("--json", &json_path,
                  "write the pmtest-recall-v1 document (\"-\" = "
                  "stdout)");
    cli.addSize("--metrics-port", &metrics_port,
                "serve /metrics on 127.0.0.1:N (0 = ephemeral)", 0,
                65535);
    cli.addString("--event-log", &event_log_path,
                  "append structured JSONL events (\"-\" = stdout)");
    cli.positionalCount(0, 0);
    const auto status = cli.parse(argc, argv);
    if (status != pmtest::util::CliStatus::Ok)
        return pmtest::util::cliExitCode(status);

    // No engine pool or trace source here — the session-services
    // bracket (the same one CheckSession runs on) still exports the
    // telemetry counters (oracle states, hint replays), process
    // gauges, and the run_start/run_stop event pair.
    pmtest::core::SessionServices services;
    pmtest::obs::ServiceOptions service_options;
    service_options.tool = "pmtest_recall";
    if (metrics_port != static_cast<size_t>(-1))
        service_options.metricsPort =
            static_cast<int32_t>(metrics_port);
    service_options.eventLogPath = event_log_path;
    std::string service_error;
    if (!services.start(std::move(service_options),
                        &service_error)) {
        std::fprintf(stderr, "%s\n", service_error.c_str());
        return 2;
    }
    services.emitRunStart("pmtest_recall");

    int rc;
    {
        // The campaigns intentionally run buggy workloads; keep
        // their expected-failure logging quiet.
        pmtest::ScopedLogSilencer quiet;
        rc = pmtest::run(json_path);
    }
    services.emitRunStop(rc);
    services.stop();
    return rc;
}
