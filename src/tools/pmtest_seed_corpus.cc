/**
 * @file
 * pmtest_seed_corpus: writes a deterministic trace file containing
 * one seeded bug per fixable finding class (x86 model), for
 * exercising the detect→repair→verify loop end to end:
 *
 *   pmtest_seed_corpus corpus.trace
 *   pmtest_check --fix-hints=hints.json corpus.trace
 *
 * Every trace is a minimal reproduction of one bug class, each op
 * tagged with a synthetic source location naming the class, so the
 * emitted fixhints document is self-describing. The corpus itself
 * lives in trace/seed_corpus.cc (shared with the kernel-equivalence
 * tests) and is fully deterministic: same library version,
 * byte-identical file.
 *
 * Exit status: 0 on success, 2 on usage/write errors.
 */

#include <cstdio>
#include <vector>

#include "trace/seed_corpus.hh"
#include "trace/trace_io.hh"
#include "util/cli.hh"

int
main(int argc, char **argv)
{
    using namespace pmtest;

    util::CliParser cli("pmtest_seed_corpus", "<out.trace>");
    cli.positionalCount(1, 1);
    std::vector<std::string> positionals;
    const auto status = cli.parse(argc, argv, &positionals);
    if (status != util::CliStatus::Ok)
        return util::cliExitCode(status);
    const std::string out_path = positionals[0];

    std::vector<SeedTrace> corpus = seedCorpusTraces();
    std::vector<Trace> traces;
    traces.reserve(corpus.size());
    for (SeedTrace &seed : corpus)
        traces.push_back(std::move(seed.trace));

    if (!saveTracesToFile(out_path, traces, TraceFormat::V2)) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 2;
    }
    std::printf("%s: %zu seeded bug traces\n", out_path.c_str(),
                traces.size());
    for (const SeedTrace &seed : corpus)
        std::printf("  %s\n", seed.name);
    return 0;
}
