/**
 * @file
 * pmtest_seed_corpus: writes a deterministic trace file containing
 * one seeded bug per fixable finding class (x86 model), for
 * exercising the detect→repair→verify loop end to end:
 *
 *   pmtest_seed_corpus corpus.trace
 *   pmtest_check --fix-hints=hints.json corpus.trace
 *
 * Every trace is a minimal reproduction of one bug class, each op
 * tagged with a synthetic source location naming the class, so the
 * emitted fixhints document is self-describing. The corpus is fully
 * deterministic: same tool version, byte-identical file.
 *
 * Exit status: 0 on success, 2 on usage/write errors.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "trace/trace.hh"
#include "trace/trace_io.hh"

namespace
{

using namespace pmtest;

/** One seeded bug: a name (becomes the location file) and its ops. */
struct SeedCase
{
    const char *name;
    std::vector<PmOp> ops;
};

/** Location literal for line @p line of @p name. */
SourceLocation
at(const char *name, uint32_t line)
{
    return SourceLocation(name, line);
}

/**
 * The corpus: every Fail-severity class except Malformed (which is
 * deliberately unfixable), plus the flush-hygiene warns. All shapes
 * mirror the unit-test reproductions in tests/core.
 */
std::vector<SeedCase>
buildCorpus()
{
    std::vector<SeedCase> cases;

    {
        const char *n = "seed/not_persisted_missing_flush.cc";
        cases.push_back({n,
                         {
                             PmOp::write(0x10, 64, at(n, 1)),
                             PmOp::isPersist(0x10, 64, at(n, 2)),
                         }});
    }
    {
        const char *n = "seed/not_persisted_missing_fence.cc";
        cases.push_back({n,
                         {
                             PmOp::write(0x10, 64, at(n, 1)),
                             PmOp::clwb(0x10, 64, at(n, 2)),
                             PmOp::isPersist(0x10, 64, at(n, 3)),
                         }});
    }
    {
        // Fig. 1a: val and valid persist in the same epoch.
        const char *n = "seed/not_ordered_same_epoch.cc";
        cases.push_back(
            {n,
             {
                 PmOp::write(0x100, 8, at(n, 1)),
                 PmOp::write(0x140, 1, at(n, 2)),
                 PmOp::clwb(0x100, 8, at(n, 3)),
                 PmOp::clwb(0x140, 1, at(n, 4)),
                 PmOp::sfence(at(n, 5)),
                 PmOp::isOrderedBefore(0x100, 8, 0x140, 1, at(n, 6)),
             }});
    }
    {
        const char *n = "seed/not_ordered_missing_fence.cc";
        cases.push_back(
            {n,
             {
                 PmOp::write(0x100, 8, at(n, 1)),
                 PmOp::clwb(0x100, 8, at(n, 2)),
                 PmOp::write(0x140, 1, at(n, 3)),
                 PmOp::clwb(0x140, 1, at(n, 4)),
                 PmOp::sfence(at(n, 5)),
                 PmOp::isOrderedBefore(0x100, 8, 0x140, 1, at(n, 6)),
             }});
    }
    {
        const char *n = "seed/missing_log.cc";
        cases.push_back(
            {n,
             {
                 PmOp{OpType::TxBegin, 0, 0, 0, 0, at(n, 1)},
                 PmOp{OpType::TxAdd, 0x10, 64, 0, 0, at(n, 2)},
                 PmOp::write(0x10, 64, at(n, 3)),
                 PmOp::write(0x80, 64, at(n, 4)), // unlogged
                 PmOp::clwb(0x10, 64, at(n, 5)),
                 PmOp::clwb(0x80, 64, at(n, 6)),
                 PmOp::sfence(at(n, 7)),
                 PmOp{OpType::TxEnd, 0, 0, 0, 0, at(n, 8)},
             }});
    }
    {
        const char *n = "seed/incomplete_tx.cc";
        cases.push_back(
            {n,
             {
                 PmOp{OpType::TxCheckStart, 0, 0, 0, 0, at(n, 1)},
                 PmOp{OpType::TxBegin, 0, 0, 0, 0, at(n, 2)},
                 PmOp{OpType::TxAdd, 0x10, 64, 0, 0, at(n, 3)},
                 PmOp::write(0x10, 64, at(n, 4)),
                 PmOp{OpType::TxEnd, 0, 0, 0, 0, at(n, 5)},
                 PmOp{OpType::TxCheckEnd, 0, 0, 0, 0, at(n, 6)},
             }});
    }
    {
        const char *n = "seed/unmatched_tx.cc";
        cases.push_back(
            {n, {PmOp{OpType::TxBegin, 0, 0, 0, 0, at(n, 1)}}});
    }
    {
        const char *n = "seed/redundant_flush.cc";
        cases.push_back({n,
                         {
                             PmOp::write(0x10, 64, at(n, 1)),
                             PmOp::clwb(0x10, 64, at(n, 2)),
                             PmOp::clwb(0x10, 64, at(n, 3)),
                             PmOp::sfence(at(n, 4)),
                         }});
    }
    {
        const char *n = "seed/unnecessary_flush_clean.cc";
        cases.push_back({n,
                         {
                             PmOp::write(0x10, 64, at(n, 1)),
                             PmOp::clwb(0x10, 64, at(n, 2)),
                             PmOp::sfence(at(n, 3)),
                             PmOp::clwb(0x10, 64, at(n, 4)),
                         }});
    }
    {
        const char *n = "seed/unnecessary_flush_untouched.cc";
        cases.push_back({n, {PmOp::clwb(0x900, 64, at(n, 1))}});
    }
    {
        const char *n = "seed/duplicate_log.cc";
        cases.push_back(
            {n,
             {
                 PmOp{OpType::TxBegin, 0, 0, 0, 0, at(n, 1)},
                 PmOp{OpType::TxAdd, 0x10, 64, 0, 0, at(n, 2)},
                 PmOp{OpType::TxAdd, 0x10, 64, 0, 0, at(n, 3)},
                 PmOp::write(0x10, 64, at(n, 4)),
                 PmOp::clwb(0x10, 64, at(n, 5)),
                 PmOp::sfence(at(n, 6)),
                 PmOp{OpType::TxEnd, 0, 0, 0, 0, at(n, 7)},
             }});
    }

    return cases;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2 || argv[1][0] == '-') {
        std::fprintf(stderr, "usage: %s <out.trace>\n", argv[0]);
        return 2;
    }

    const std::vector<SeedCase> corpus = buildCorpus();
    std::vector<Trace> traces;
    traces.reserve(corpus.size());
    uint64_t id = 1;
    for (const SeedCase &seed : corpus) {
        Trace t(id++, 0);
        t.append(seed.ops);
        traces.push_back(std::move(t));
    }

    if (!saveTracesToFile(argv[1], traces, TraceFormat::V2)) {
        std::fprintf(stderr, "cannot write %s\n", argv[1]);
        return 2;
    }
    std::printf("%s: %zu seeded bug traces\n", argv[1],
                traces.size());
    for (const SeedCase &seed : corpus)
        std::printf("  %s\n", seed.name);
    return 0;
}
