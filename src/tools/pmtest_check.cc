/**
 * @file
 * pmtest_check: command-line offline checker. Loads a trace file
 * written with trace_io (see examples/offline_check.cpp for the
 * record side) and runs the checking engine over it.
 *
 * Usage:
 *   pmtest_check [--model=x86|hops|arm] [--summary] [--quiet]
 *                [--max-findings=N] [--workers=N] [--queue-cap=N]
 *                [--batch=N] [--ingest=auto|mmap|stream]
 *                [--decoders=N] [--stats] [--metrics-json=FILE]
 *                [--trace-events=FILE] [--span-sample=N]
 *                <trace-file>
 *
 * Ingest paths:
 *  --ingest=mmap   map a v2 trace file and decode traces in parallel
 *                  on --decoders=N threads, feeding the engine pool
 *                  as they decode — decode of trace N+1 overlaps
 *                  checking of trace N and peak memory is the
 *                  in-flight window, not the whole file. Fails on v1
 *                  files (no index footer).
 *  --ingest=stream parse the whole file sequentially through the
 *                  buffered loader before checking (works for v1 and
 *                  v2 files).
 *  --ingest=auto   (default) mmap when the file has a v2 index,
 *                  stream otherwise.
 *
 * --workers=N checks traces on an engine pool instead of a single
 * inline engine (the paper's decoupled mode); --queue-cap bounds the
 * per-worker queues and --batch submits traces N at a time.
 *
 * Output selection and precedence:
 *  - The findings report goes to stdout unless --quiet. --summary
 *    condenses it; --quiet beats --summary.
 *  - --stats (human-readable dispatch/ingest counters on stdout) is
 *    an explicit request and always prints, --quiet notwithstanding.
 *  - --metrics-json=FILE writes the machine-readable snapshot — the
 *    unified pool/ingest stats plus the telemetry counters and stage
 *    latency histograms — to FILE regardless of --quiet/--stats.
 *    FILE may be "-" for stdout.
 *  - --trace-events=FILE enables span collection for the run and
 *    writes a Chrome trace-event / Perfetto timeline to FILE.
 *    --span-sample=N keeps every Nth span per thread (default 1 =
 *    all; higher values bound memory and overhead on huge runs).
 *
 * Findings are reported in canonical (traceId, opIndex) order, so
 * the parallel and serial paths print byte-identical reports.
 *
 * Exit status: 0 when no FAIL findings, 1 when crash-consistency
 * bugs were found, 2 on usage/input errors. Every malformed flag
 * prints the usage text and exits 2.
 */

#include <charconv>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "core/engine_pool.hh"
#include "core/stats_json.hh"
#include "core/trace_ingest.hh"
#include "obs/telemetry.hh"
#include "trace/trace_io.hh"
#include "trace/trace_reader.hh"
#include "util/json.hh"

namespace
{

using namespace pmtest;

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--model=x86|hops|arm] [--summary] [--quiet]\n"
        "          [--max-findings=N] [--workers=N] [--queue-cap=N]\n"
        "          [--batch=N] [--ingest=auto|mmap|stream]\n"
        "          [--decoders=N] [--stats] [--metrics-json=FILE]\n"
        "          [--trace-events=FILE] [--span-sample=N]\n"
        "          <trace-file>\n",
        argv0);
}

/**
 * Parse the numeric value of "--flag=N". Unlike std::atol (which
 * silently maps garbage to 0), any non-digit input, empty value,
 * trailing junk or overflow is a hard usage error: print a message
 * plus the usage text and exit 2.
 */
size_t
parseNumericOption(const std::string &arg, size_t prefix_len,
                   const char *flag, const char *argv0)
{
    const char *begin = arg.c_str() + prefix_len;
    const char *end = arg.c_str() + arg.size();
    size_t value = 0;
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end || begin == end) {
        std::fprintf(stderr, "invalid value for %s: '%s'\n", flag,
                     begin);
        usage(argv0);
        std::exit(2);
    }
    return value;
}

/**
 * Write the unified metrics snapshot: run identity, verdict counts,
 * the shared pool/ingest stats rendering, and the telemetry section
 * (counters, per-stage latency histograms, span accounting).
 */
bool
writeMetricsJson(const std::string &path, const std::string &file,
                 const char *model_name, size_t traces, size_t ops,
                 size_t workers, const core::Report &merged,
                 const core::PoolStats &stats)
{
    JsonWriter w;
    w.beginObject();
    w.member("schema", "pmtest-metrics-v1");
    w.member("tool", "pmtest_check");
    w.member("trace_file", file);
    w.member("model", model_name);
    w.member("traces", traces);
    w.member("ops", ops);
    w.member("workers", workers);
    w.key("verdict").beginObject();
    w.member("fail", merged.failCount());
    w.member("warn", merged.warnCount());
    w.member("findings", merged.findings().size());
    w.endObject();
    w.key("pool");
    core::writePoolStatsJson(w, stats);
    w.key("telemetry");
    obs::Telemetry::instance().writeMetricsJson(w);
    w.endObject();

    if (path == "-") {
        std::fwrite(w.str().data(), 1, w.str().size(), stdout);
        std::fputc('\n', stdout);
        return true;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    const bool ok = std::fwrite(w.str().data(), 1, w.str().size(),
                                f) == w.str().size();
    std::fclose(f);
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    core::ModelKind model = core::ModelKind::X86;
    bool summary = false;
    bool quiet = false;
    bool show_stats = false;
    size_t max_findings = 50;
    size_t workers = 0;
    size_t queue_cap = 0;
    size_t batch = 1;
    size_t decoders = 1;
    size_t span_sample = 1;
    IngestMode ingest = IngestMode::Auto;
    std::string path;
    std::string metrics_path;
    std::string trace_events_path;

    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg.rfind("--model=", 0) == 0) {
            const std::string name = arg.substr(8);
            if (name == "x86") {
                model = core::ModelKind::X86;
            } else if (name == "hops") {
                model = core::ModelKind::Hops;
            } else if (name == "arm") {
                model = core::ModelKind::Arm;
            } else {
                std::fprintf(stderr, "unknown model '%s'\n",
                             name.c_str());
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--summary") {
            summary = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg.rfind("--max-findings=", 0) == 0) {
            max_findings =
                parseNumericOption(arg, 15, "--max-findings", argv[0]);
        } else if (arg.rfind("--workers=", 0) == 0) {
            workers = parseNumericOption(arg, 10, "--workers", argv[0]);
        } else if (arg.rfind("--queue-cap=", 0) == 0) {
            queue_cap =
                parseNumericOption(arg, 12, "--queue-cap", argv[0]);
        } else if (arg.rfind("--batch=", 0) == 0) {
            batch = parseNumericOption(arg, 8, "--batch", argv[0]);
            if (batch == 0)
                batch = 1;
        } else if (arg.rfind("--decoders=", 0) == 0) {
            decoders =
                parseNumericOption(arg, 11, "--decoders", argv[0]);
            if (decoders == 0)
                decoders = 1;
        } else if (arg.rfind("--span-sample=", 0) == 0) {
            span_sample =
                parseNumericOption(arg, 14, "--span-sample", argv[0]);
            if (span_sample == 0)
                span_sample = 1;
        } else if (arg.rfind("--ingest=", 0) == 0) {
            const std::string name = arg.substr(9);
            if (name == "auto") {
                ingest = IngestMode::Auto;
            } else if (name == "mmap") {
                ingest = IngestMode::Mmap;
            } else if (name == "stream") {
                ingest = IngestMode::Stream;
            } else {
                std::fprintf(stderr, "unknown ingest mode '%s'\n",
                             name.c_str());
                usage(argv[0]);
                return 2;
            }
        } else if (arg.rfind("--metrics-json=", 0) == 0) {
            metrics_path = arg.substr(15);
            if (metrics_path.empty()) {
                std::fprintf(stderr,
                             "--metrics-json needs a file path\n");
                usage(argv[0]);
                return 2;
            }
        } else if (arg.rfind("--trace-events=", 0) == 0) {
            trace_events_path = arg.substr(15);
            if (trace_events_path.empty()) {
                std::fprintf(stderr,
                             "--trace-events needs a file path\n");
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--stats") {
            show_stats = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (path.empty()) {
        usage(argv[0]);
        return 2;
    }

    // Span collection must start before the pipeline so capture-side
    // and ingest-side spans land in the timeline.
    if (!trace_events_path.empty())
        obs::Telemetry::instance().enableSpans(span_sample);
    obs::nameThread("main");

    core::PoolOptions options;
    options.model = model;
    options.workers = workers;
    options.queueCapacity = queue_cap;

    // Indexed path: map the file and pipeline decode into checking.
    std::unique_ptr<TraceFileReader> reader;
    if (ingest != IngestMode::Stream) {
        std::string error;
        reader = TraceFileReader::open(path, ingest, &error);
        if (!reader && ingest == IngestMode::Mmap) {
            std::fprintf(stderr, "%s: %s\n", path.c_str(),
                         error.c_str());
            return 2;
        }
        // Auto mode: fall back to the sequential loader (v1 files,
        // unmappable streams) without complaint.
    }

    size_t trace_count = 0;
    size_t total_ops = 0;
    core::Report merged;
    core::PoolStats stats;
    core::ArenaSink arenas; // keeps finding locations alive
    size_t pool_workers = 0;

    if (reader) {
        trace_count = reader->traceCount();
        total_ops = static_cast<size_t>(reader->totalOps());

        core::EnginePool pool(options);
        core::IngestOptions ingest_options;
        ingest_options.decoders = decoders;
        ingest_options.batch = batch;
        core::IngestStats ingest_stats;
        const bool ok = core::ingestTraces(*reader, pool,
                                           ingest_options,
                                           &ingest_stats, &arenas);
        merged = pool.results();
        stats = pool.stats();
        stats.ingest = ingest_stats;
        pool_workers = pool.workerCount();
        if (!ok) {
            std::fprintf(stderr,
                         "%s: corrupt trace body (decode failed)\n",
                         path.c_str());
            return 2;
        }
    } else {
        bool ok = false;
        // Not const: the loaded traces are moved into the pool below
        // — a const bundle would silently copy every op array.
        auto bundle = loadTracesFromFile(path, &ok);
        if (!ok) {
            std::fprintf(stderr,
                         "%s: not a readable PMTest trace file\n",
                         path.c_str());
            return 2;
        }
        arenas.push_back(bundle.strings);

        core::EnginePool pool(options);
        trace_count = bundle.traces.size();
        for (const auto &trace : bundle.traces)
            total_ops += trace.size();
        std::vector<Trace> pending;
        pending.reserve(batch);
        for (auto &trace : bundle.traces) {
            pending.push_back(std::move(trace));
            if (pending.size() >= batch) {
                pool.submitBatch(std::move(pending));
                pending.clear();
            }
        }
        pool.submitBatch(std::move(pending));
        merged = pool.results();
        stats = pool.stats();
        pool_workers = pool.workerCount();
    }

    // Canonical (traceId, opIndex) order: the parallel ingest /
    // worker pool and the serial inline path print byte-identical
    // reports.
    merged.canonicalize();

    if (!quiet) {
        std::printf("%s: %zu traces, %zu PM operations, model=%s, "
                    "%zu workers\n",
                    path.c_str(), trace_count, total_ops,
                    core::makeModel(model)->name(), pool_workers);
        if (summary) {
            std::printf("%s", merged.summaryStr().c_str());
        } else {
            std::printf("%zu FAIL, %zu WARN\n", merged.failCount(),
                        merged.warnCount());
            size_t shown = 0;
            for (const auto &finding : merged.findings()) {
                if (shown++ == max_findings) {
                    std::printf("  ... (%zu more; use --summary)\n",
                                merged.findings().size() - shown + 1);
                    break;
                }
                std::printf("  %s\n", finding.str().c_str());
            }
        }
    }
    // An explicit --stats request wins over --quiet.
    if (show_stats)
        std::printf("%s", stats.str().c_str());
    // The machine-readable outputs are files; they are written
    // whatever the stdout flags say.
    if (!metrics_path.empty()) {
        if (!writeMetricsJson(metrics_path, path,
                              core::makeModel(model)->name(),
                              trace_count, total_ops, pool_workers,
                              merged, stats))
            return 2;
    }
    if (!trace_events_path.empty()) {
        std::string error;
        if (!obs::Telemetry::instance().writeTraceEventsFile(
                trace_events_path, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 2;
        }
    }
    return merged.failCount() == 0 ? 0 : 1;
}
