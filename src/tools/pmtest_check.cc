/**
 * @file
 * pmtest_check: command-line offline checker. Opens one or more
 * trace files (or directories of them) written with trace_io (see
 * examples/offline_check.cpp for the record side) and runs the
 * checking engine over every trace through the unified TraceSource
 * ingest pipeline.
 *
 * Usage:
 *   pmtest_check [--model=x86|hops|arm] [--summary] [--quiet]
 *                [--max-findings=N] [--workers=N] [--queue-cap=N]
 *                [--batch=N] [--ingest=auto|mmap|stream]
 *                [--decoders=N] [--shards=N]
 *                [--affinity=auto|pinned|shared] [--stats]
 *                [--metrics-json=FILE] [--trace-events=FILE]
 *                [--span-sample=N] [--fix-hints[=FILE]]
 *                [--metrics-port=N] [--metrics-interval-ms=N]
 *                [--event-log=FILE] [--progress] [--metrics-linger]
 *                <trace-file-or-dir>...
 *
 * Inputs:
 *  - Each positional argument is a trace file or a directory;
 *    directories expand to their regular files in sorted name order.
 *  - Every input becomes one TraceSource with a stable fileId
 *    assigned in input order, so findings from different files never
 *    collide and the merged report is reproducible.
 *  - Duplicate inputs (after directory expansion and path
 *    canonicalization) are rejected with exit status 2.
 *
 * Ingest paths:
 *  --ingest=mmap   require the indexed v2 reader for every input and
 *                  decode traces in parallel on --decoders=N threads,
 *                  feeding the engine pool as they decode — decode of
 *                  trace N+1 overlaps checking of trace N and peak
 *                  memory is the in-flight window, not the whole
 *                  file. Fails on v1 files (no index footer).
 *  --ingest=stream parse each file sequentially through the buffered
 *                  loader before checking (works for v1 and v2).
 *  --ingest=auto   (default) indexed reader when a file has a v2
 *                  index, stream otherwise — v1 and v2 files mix
 *                  freely in one input set.
 *
 * --shards=N splits a single v2 input into N byte-balanced index
 * ranges that decode independently (decoder threads spread across
 * the shards). Requires exactly one input file with a v2 index.
 *
 * --workers=N checks traces on an engine pool instead of a single
 * inline engine (the paper's decoupled mode); --queue-cap bounds the
 * per-worker queues and --batch submits traces N at a time.
 *
 * Thread-count precedence (core-aware defaults): an explicit
 * --workers/--decoders flag wins; otherwise the PMTEST_WORKERS /
 * PMTEST_DECODERS environment variables; otherwise a layout derived
 * from std::thread::hardware_concurrency() (single core: inline
 * checking, one decoder; multi-core: ~1/4 of the cores decode, the
 * rest check). --affinity picks the decoder→engine placement for
 * multi-source inputs: "pinned" keeps each shard/file on one fixed
 * engine (warm per-shard checking state), "shared" round-robins,
 * "auto" (default) pins when the input is multi-source and at least
 * two workers exist. Every combination prints a byte-identical
 * canonical report.
 *
 * Output selection and precedence:
 *  - The findings report goes to stdout unless --quiet. --summary
 *    condenses it; --quiet beats --summary.
 *  - --stats (human-readable dispatch/ingest counters on stdout,
 *    including one line per input source) is an explicit request and
 *    always prints, --quiet notwithstanding.
 *  - --metrics-json=FILE writes the machine-readable snapshot — the
 *    unified pool/ingest stats plus the telemetry counters and stage
 *    latency histograms — to FILE regardless of --quiet/--stats.
 *    FILE may be "-" for stdout.
 *  - --trace-events=FILE enables span collection for the run and
 *    writes a Chrome trace-event / Perfetto timeline to FILE.
 *    --span-sample=N keeps every Nth span per thread (default 1 =
 *    all; higher values bound memory and overhead on huge runs).
 *  - --fix-hints[=FILE] closes the detect→repair→verify loop: every
 *    finding's synthesized FixHint is applied to its trace by the
 *    trace-level patcher, the patched trace is replayed through the
 *    same engine, and the hint is marked verified only when the
 *    original finding disappears with no new findings introduced.
 *    The `pmtest-fixhints-v1` JSON document goes to FILE ("-" or no
 *    value = stdout). The inputs are re-opened for the replay pass,
 *    so this works with every ingest/shard configuration.
 *
 * Live observability (all optional; none touches the verdict or the
 * stdout report — see src/obs/metrics_service.hh):
 *  - --metrics-port=N serves /metrics (Prometheus text) and
 *    /metrics.json (pmtest-metrics-v1) on 127.0.0.1:N while the run
 *    is live (N=0 picks an ephemeral port, printed on stderr). The
 *    publisher samples queue depths, in-flight traces, per-source
 *    ingest progress, RSS, and rates every --metrics-interval-ms
 *    (default 1000) and watches for pipeline stalls.
 *  - --event-log=FILE appends structured JSONL events (run start/
 *    stop, per-source open/EOF, findings with the [fN:tM:opK]
 *    identity triple and fix-hint status, watchdog warnings). "-"
 *    writes to stdout; an unwritable path exits 2.
 *  - --progress repaints a live TTY line on stderr.
 *  - --metrics-linger keeps the scrape endpoint up after the run
 *    finishes (serving the final frozen sample) until SIGINT/SIGTERM,
 *    then exits with the normal verdict status.
 *
 * Findings are reported in canonical (fileId, traceId, opIndex)
 * order, so any decoder/shard/worker configuration prints a
 * byte-identical report for the same input set.
 *
 * Exit status: 0 when no FAIL findings, 1 when crash-consistency
 * bugs were found, 2 on usage/input errors (malformed flags,
 * unreadable or duplicate inputs, decode failures).
 */

#include <algorithm>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hh"
#include "core/engine_pool.hh"
#include "core/fix_verify.hh"
#include "core/live_gauges.hh"
#include "core/stats_json.hh"
#include "core/trace_ingest.hh"
#include "obs/metrics_service.hh"
#include "obs/telemetry.hh"
#include "trace/trace_source.hh"
#include "util/cpu.hh"
#include "util/json.hh"

namespace
{

using namespace pmtest;
namespace fs = std::filesystem;

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--model=x86|hops|arm] [--summary] [--quiet]\n"
        "          [--max-findings=N] [--workers=N] [--queue-cap=N]\n"
        "          [--batch=N] [--ingest=auto|mmap|stream]\n"
        "          [--decoders=N] [--shards=N]\n"
        "          [--affinity=auto|pinned|shared] [--stats]\n"
        "          [--metrics-json=FILE] [--trace-events=FILE]\n"
        "          [--span-sample=N] [--fix-hints[=FILE]]\n"
        "          [--metrics-port=N] [--metrics-interval-ms=N]\n"
        "          [--event-log=FILE] [--progress] [--metrics-linger]\n"
        "          <trace-file-or-dir>...\n",
        argv0);
}

/**
 * Parse the numeric value of "--flag=N". Unlike std::atol (which
 * silently maps garbage to 0), any non-digit input, empty value,
 * trailing junk or overflow is a hard usage error: print a message
 * plus the usage text and exit 2.
 */
size_t
parseNumericOption(const std::string &arg, size_t prefix_len,
                   const char *flag, const char *argv0)
{
    const char *begin = arg.c_str() + prefix_len;
    const char *end = arg.c_str() + arg.size();
    size_t value = 0;
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end || begin == end) {
        std::fprintf(stderr, "invalid value for %s: '%s'\n", flag,
                     begin);
        usage(argv0);
        std::exit(2);
    }
    return value;
}

/**
 * Expand positional arguments into the flat input-file list:
 * directories contribute their regular files in sorted name order,
 * plain paths pass through. @return false (with a message) on an
 * unreadable or empty directory.
 */
bool
expandInputs(const std::vector<std::string> &args,
             std::vector<std::string> *files)
{
    for (const auto &arg : args) {
        std::error_code ec;
        if (fs::is_directory(arg, ec)) {
            std::vector<std::string> entries;
            for (const auto &entry : fs::directory_iterator(arg, ec)) {
                if (entry.is_regular_file())
                    entries.push_back(entry.path().string());
            }
            if (ec) {
                std::fprintf(stderr, "%s: cannot read directory\n",
                             arg.c_str());
                return false;
            }
            if (entries.empty()) {
                std::fprintf(stderr, "%s: no trace files in "
                                     "directory\n",
                             arg.c_str());
                return false;
            }
            std::sort(entries.begin(), entries.end());
            files->insert(files->end(), entries.begin(),
                          entries.end());
        } else {
            files->push_back(arg);
        }
    }
    return true;
}

/**
 * Reject the same file appearing twice in the input set (directly or
 * via directory expansion): duplicate traces would double every
 * finding. Compares canonicalized paths so "a.trc" and "./a.trc"
 * collide.
 */
bool
rejectDuplicates(const std::vector<std::string> &files)
{
    std::vector<std::string> seen;
    for (const auto &file : files) {
        std::error_code ec;
        fs::path canon = fs::weakly_canonical(file, ec);
        const std::string key = ec ? file : canon.string();
        if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
            std::fprintf(stderr, "duplicate input: %s\n",
                         file.c_str());
            return false;
        }
        seen.push_back(key);
    }
    return true;
}

/**
 * Write the unified metrics snapshot: run identity, verdict counts,
 * the shared pool/ingest stats rendering, and the telemetry section
 * (counters, per-stage latency histograms, span accounting).
 */
bool
writeMetricsJson(const std::string &path, const std::string &file,
                 const char *model_name, size_t traces, size_t ops,
                 size_t workers, size_t sources,
                 const core::Report &merged,
                 const core::PoolStats &stats)
{
    JsonWriter w;
    w.beginObject();
    w.member("schema", "pmtest-metrics-v1");
    w.member("tool", "pmtest_check");
    w.member("trace_file", file);
    w.member("model", model_name);
    w.member("traces", traces);
    w.member("ops", ops);
    w.member("workers", workers);
    w.member("sources", sources);
    w.key("verdict").beginObject();
    w.member("fail", merged.failCount());
    w.member("warn", merged.warnCount());
    w.member("findings", merged.findings().size());
    w.endObject();
    w.key("pool");
    core::writePoolStatsJson(w, stats);
    w.key("telemetry");
    obs::Telemetry::instance().writeMetricsJson(w);
    w.endObject();

    if (path == "-") {
        std::fwrite(w.str().data(), 1, w.str().size(), stdout);
        std::fputc('\n', stdout);
        return true;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    const bool ok = std::fwrite(w.str().data(), 1, w.str().size(),
                                f) == w.str().size();
    std::fclose(f);
    return ok;
}

/** One "  source NAME: ..." line per leaf source. */
void
printSourceStats(const TraceSource &source)
{
    if (const auto *multi =
            dynamic_cast<const MultiTraceSource *>(&source)) {
        for (const auto &child : multi->children())
            printSourceStats(*child);
        return;
    }
    std::printf("  source %s: %zu traces, %llu ops, %llu bytes %s\n",
                source.name().c_str(), source.traceCount(),
                static_cast<unsigned long long>(source.totalOps()),
                static_cast<unsigned long long>(source.sizeBytes()),
                source.mmapBacked() ? "mmapped" : "buffered");
}

/**
 * One "  oracle: ..." line when a ground-truth oracle ran in this
 * process (pmtest_check itself does not run one; the line appears
 * when the binary is linked into an oracle-driving harness). Covered
 * vs tested is the representative-mode pruning win.
 */
void
printOracleStats()
{
    const auto snap = obs::Telemetry::instance().metrics();
    const uint64_t tested =
        snap.counter(obs::Counter::OracleStatesTested);
    if (tested == 0)
        return;
    const uint64_t covered =
        snap.counter(obs::Counter::OracleStatesCovered);
    const uint64_t hits = snap.counter(obs::Counter::OracleMemoHits);
    std::printf("  oracle: %llu states tested covering %llu "
                "(%.1fx reduction), %llu memo hits\n",
                static_cast<unsigned long long>(tested),
                static_cast<unsigned long long>(covered),
                tested ? double(covered) / double(tested) : 1.0,
                static_cast<unsigned long long>(hits));
}

/** One "source_open" event per leaf source of @p source. */
void
emitSourceOpenEvents(obs::EventLog &log, const TraceSource &source)
{
    if (const auto *multi =
            dynamic_cast<const MultiTraceSource *>(&source)) {
        for (const auto &child : multi->children())
            emitSourceOpenEvents(log, *child);
        return;
    }
    log.emit(obs::EventSeverity::Info, "source_open",
             [&](JsonWriter &w) {
                 w.member("source", source.name());
                 const size_t count = source.traceCount();
                 const bool known =
                     count != TraceSource::kUnknownCount;
                 w.member("traces_total_known", known);
                 w.member("traces_total",
                          known ? static_cast<uint64_t>(count) : 0);
                 w.member("bytes_total", source.sizeBytes());
                 w.member("mmap_backed", source.mmapBacked());
             });
}

/**
 * One "finding" event per canonical finding, capped so a pathological
 * input cannot turn the event log into a second copy of the report.
 */
void
emitFindingEvents(obs::EventLog &log, const core::Report &merged)
{
    constexpr size_t kMaxFindingEvents = 10000;
    size_t emitted = 0;
    for (const auto &finding : merged.findings()) {
        if (emitted++ == kMaxFindingEvents) {
            log.emit(obs::EventSeverity::Warn, "findings_truncated",
                     [&](JsonWriter &w) {
                         w.member("emitted", kMaxFindingEvents);
                         w.member("total",
                                  merged.findings().size());
                     });
            break;
        }
        const auto severity =
            finding.severity == core::Severity::Fail
                ? obs::EventSeverity::Error
                : obs::EventSeverity::Warn;
        log.emit(severity, "finding", [&](JsonWriter &w) {
            w.member("verdict",
                     finding.severity == core::Severity::Fail
                         ? "FAIL"
                         : "WARN");
            w.member("kind", core::findingKindName(finding.kind));
            w.member("message", finding.message);
            w.member("loc", finding.loc.str());
            w.member("file_id",
                     static_cast<uint64_t>(finding.fileId));
            w.member("trace_id", finding.traceId);
            w.member("op_index",
                     static_cast<uint64_t>(finding.opIndex));
            w.member("hint_valid", finding.hint.valid());
            w.member("hint_verified", finding.hint.verified);
        });
    }
}

volatile std::sig_atomic_t g_linger_stop = 0;

void
lingerSignalHandler(int)
{
    g_linger_stop = 1;
}

} // namespace

int
main(int argc, char **argv)
{
    core::ModelKind model = core::ModelKind::X86;
    bool summary = false;
    bool quiet = false;
    bool show_stats = false;
    size_t max_findings = 50;
    // Thread counts: SIZE_MAX/0 = "no explicit flag", resolved after
    // parsing via util::defaultPipelineLayout() (flag > env >
    // detected cores).
    size_t workers = static_cast<size_t>(-1);
    size_t queue_cap = 0;
    size_t batch = 1;
    size_t decoders = 0;
    size_t shards = 1;
    auto affinity = core::IngestOptions::Affinity::Auto;
    size_t span_sample = 1;
    IngestMode ingest_mode = IngestMode::Auto;
    std::vector<std::string> input_args;
    std::string metrics_path;
    std::string trace_events_path;
    bool fix_hints = false;
    std::string fix_hints_path = "-";
    int32_t metrics_port = -1; ///< -1 = no scrape server
    size_t metrics_interval_ms = 1000;
    std::string event_log_path;
    bool progress = false;
    bool metrics_linger = false;

    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg.rfind("--model=", 0) == 0) {
            const std::string name = arg.substr(8);
            if (name == "x86") {
                model = core::ModelKind::X86;
            } else if (name == "hops") {
                model = core::ModelKind::Hops;
            } else if (name == "arm") {
                model = core::ModelKind::Arm;
            } else {
                std::fprintf(stderr, "unknown model '%s'\n",
                             name.c_str());
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--summary") {
            summary = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg.rfind("--max-findings=", 0) == 0) {
            max_findings =
                parseNumericOption(arg, 15, "--max-findings", argv[0]);
        } else if (arg.rfind("--workers=", 0) == 0) {
            workers = parseNumericOption(arg, 10, "--workers", argv[0]);
        } else if (arg.rfind("--queue-cap=", 0) == 0) {
            queue_cap =
                parseNumericOption(arg, 12, "--queue-cap", argv[0]);
        } else if (arg.rfind("--batch=", 0) == 0) {
            batch = parseNumericOption(arg, 8, "--batch", argv[0]);
            if (batch == 0)
                batch = 1;
        } else if (arg.rfind("--decoders=", 0) == 0) {
            decoders =
                parseNumericOption(arg, 11, "--decoders", argv[0]);
            if (decoders == 0)
                decoders = 1;
        } else if (arg.rfind("--shards=", 0) == 0) {
            shards = parseNumericOption(arg, 9, "--shards", argv[0]);
            if (shards == 0)
                shards = 1;
        } else if (arg.rfind("--affinity=", 0) == 0) {
            const std::string name = arg.substr(11);
            if (name == "auto") {
                affinity = core::IngestOptions::Affinity::Auto;
            } else if (name == "pinned") {
                affinity = core::IngestOptions::Affinity::Pinned;
            } else if (name == "shared") {
                affinity = core::IngestOptions::Affinity::Shared;
            } else {
                std::fprintf(stderr, "unknown affinity '%s'\n",
                             name.c_str());
                usage(argv[0]);
                return 2;
            }
        } else if (arg.rfind("--span-sample=", 0) == 0) {
            span_sample =
                parseNumericOption(arg, 14, "--span-sample", argv[0]);
            if (span_sample == 0)
                span_sample = 1;
        } else if (arg.rfind("--ingest=", 0) == 0) {
            const std::string name = arg.substr(9);
            if (name == "auto") {
                ingest_mode = IngestMode::Auto;
            } else if (name == "mmap") {
                ingest_mode = IngestMode::Mmap;
            } else if (name == "stream") {
                ingest_mode = IngestMode::Stream;
            } else {
                std::fprintf(stderr, "unknown ingest mode '%s'\n",
                             name.c_str());
                usage(argv[0]);
                return 2;
            }
        } else if (arg.rfind("--metrics-json=", 0) == 0) {
            metrics_path = arg.substr(15);
            if (metrics_path.empty()) {
                std::fprintf(stderr,
                             "--metrics-json needs a file path\n");
                usage(argv[0]);
                return 2;
            }
        } else if (arg.rfind("--trace-events=", 0) == 0) {
            trace_events_path = arg.substr(15);
            if (trace_events_path.empty()) {
                std::fprintf(stderr,
                             "--trace-events needs a file path\n");
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--fix-hints") {
            fix_hints = true;
        } else if (arg.rfind("--fix-hints=", 0) == 0) {
            fix_hints = true;
            fix_hints_path = arg.substr(12);
            if (fix_hints_path.empty()) {
                std::fprintf(stderr,
                             "--fix-hints needs a file path "
                             "(or omit '=' for stdout)\n");
                usage(argv[0]);
                return 2;
            }
        } else if (arg.rfind("--metrics-port=", 0) == 0) {
            const size_t port =
                parseNumericOption(arg, 15, "--metrics-port", argv[0]);
            if (port > 65535) {
                std::fprintf(stderr,
                             "invalid value for --metrics-port: "
                             "'%zu' (max 65535)\n",
                             port);
                usage(argv[0]);
                return 2;
            }
            metrics_port = static_cast<int32_t>(port);
        } else if (arg.rfind("--metrics-interval-ms=", 0) == 0) {
            metrics_interval_ms = parseNumericOption(
                arg, 22, "--metrics-interval-ms", argv[0]);
            if (metrics_interval_ms == 0)
                metrics_interval_ms = 1;
        } else if (arg.rfind("--event-log=", 0) == 0) {
            event_log_path = arg.substr(12);
            if (event_log_path.empty()) {
                std::fprintf(stderr,
                             "--event-log needs a file path\n");
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--progress") {
            progress = true;
        } else if (arg == "--metrics-linger") {
            metrics_linger = true;
        } else if (arg == "--stats") {
            show_stats = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        } else {
            input_args.push_back(arg);
        }
    }
    if (input_args.empty()) {
        usage(argv[0]);
        return 2;
    }

    std::vector<std::string> inputs;
    if (!expandInputs(input_args, &inputs))
        return 2;
    if (!rejectDuplicates(inputs))
        return 2;
    if (shards > 1 && inputs.size() != 1) {
        std::fprintf(stderr,
                     "--shards needs exactly one input file "
                     "(got %zu)\n",
                     inputs.size());
        usage(argv[0]);
        return 2;
    }
    if (shards > 1 && ingest_mode == IngestMode::Stream) {
        std::fprintf(stderr, "--shards needs an indexed (v2) input; "
                             "remove --ingest=stream\n");
        usage(argv[0]);
        return 2;
    }

    // Span collection must start before the pipeline so capture-side
    // and ingest-side spans land in the timeline.
    if (!trace_events_path.empty())
        obs::Telemetry::instance().enableSpans(span_sample);
    obs::nameThread("main");

    // Build the source: one per input file (fileId = input order),
    // or the byte-balanced shards of a single v2 file. A lambda so
    // the fix-hints replay pass can re-open the (drained) inputs with
    // identical fileId assignment; returns null after printing the
    // error.
    const auto buildSource =
        [&]() -> std::unique_ptr<TraceSource> {
        if (shards > 1) {
            std::string error;
            std::shared_ptr<const TraceFileReader> reader =
                TraceFileReader::open(inputs[0], ingest_mode, &error);
            if (!reader) {
                if (error.rfind(inputs[0], 0) != 0)
                    error = inputs[0] + ": " + error;
                std::fprintf(stderr, "%s\n", error.c_str());
                return nullptr;
            }
            return std::make_unique<MultiTraceSource>(
                shardTraceSource(std::move(reader), inputs[0], 0,
                                 shards));
        }
        if (inputs.size() == 1) {
            std::string error;
            auto single =
                openTraceSource(inputs[0], ingest_mode, 0, &error);
            if (!single)
                std::fprintf(stderr, "%s\n", error.c_str());
            return single;
        }
        std::vector<std::unique_ptr<TraceSource>> children;
        children.reserve(inputs.size());
        for (size_t i = 0; i < inputs.size(); i++) {
            std::string error;
            auto child = openTraceSource(
                inputs[i], ingest_mode,
                static_cast<uint32_t>(i), &error);
            if (!child) {
                std::fprintf(stderr, "%s\n", error.c_str());
                return nullptr;
            }
            children.push_back(std::move(child));
        }
        return std::make_unique<MultiTraceSource>(
            std::move(children));
    };

    std::unique_ptr<TraceSource> source = buildSource();
    if (!source)
        return 2;

    // Core-aware defaults: flags beat PMTEST_WORKERS/PMTEST_DECODERS,
    // which beat the hardware-derived layout (see util/cpu.hh).
    const util::PipelineLayout layout = util::defaultPipelineLayout();
    if (workers == static_cast<size_t>(-1))
        workers = layout.workers;
    if (decoders == 0)
        decoders = layout.decoders;

    const size_t trace_count = source->traceCount();
    const size_t total_ops =
        static_cast<size_t>(source->totalOps());

    core::PoolOptions options;
    options.model = model;
    options.workers = workers;
    options.queueCapacity = queue_cap;

    core::Report merged;
    core::PoolStats stats;
    size_t pool_workers = 0;
    bool ingest_ok = false;
    SourceError ingest_error;
    obs::MetricsService service; ///< outlives the pool (linger)
    {
        core::EnginePool pool(options);
        core::IngestProgress ingest_progress;

        obs::ServiceOptions service_options;
        service_options.tool = "pmtest_check";
        service_options.metricsPort = metrics_port;
        service_options.intervalMs = metrics_interval_ms;
        service_options.progress = progress;
        service_options.eventLogPath = event_log_path;
        service_options.poolSampler = core::poolGaugeSampler(pool);
        service_options.ingestSampler =
            core::ingestGaugeSampler(*source, &ingest_progress);
        std::string service_error;
        if (!service.start(std::move(service_options),
                           &service_error)) {
            std::fprintf(stderr, "%s\n", service_error.c_str());
            return 2;
        }
        service.eventLog().emit(
            obs::EventSeverity::Info, "run_start", [&](JsonWriter &w) {
                w.member("tool", "pmtest_check");
                w.member("model", core::makeModel(model)->name());
                w.member("inputs", inputs.size());
                w.member("workers", workers);
                w.member("decoders", decoders);
            });
        emitSourceOpenEvents(service.eventLog(), *source);

        core::IngestOptions ingest_options;
        ingest_options.decoders = decoders;
        ingest_options.batch = batch;
        ingest_options.affinity = affinity;
        ingest_options.progress = &ingest_progress;
        core::IngestStats ingest_stats;
        ingest_ok = core::ingest(*source, pool, ingest_options,
                                 &ingest_stats, &ingest_error);
        merged = pool.results();
        stats = pool.stats();
        stats.ingest = ingest_stats;
        pool_workers = pool.workerCount();

        // Final sample + sampler detach before the pool dies; the
        // scrape server keeps serving the frozen sample.
        service.freeze();
    }
    if (!ingest_ok) {
        std::fprintf(stderr, "%s\n", ingest_error.str().c_str());
        return 2;
    }

    // Canonical (fileId, traceId, opIndex) order: any shard/decoder/
    // worker configuration prints a byte-identical report for the
    // same input set.
    merged.canonicalize();

    // The detect→repair→verify pass: re-open the inputs (the primary
    // source is drained), patch each hinted finding's trace, replay
    // it through the same engine, and emit the fixhints document.
    if (fix_hints) {
        auto replay_source = buildSource();
        if (!replay_source)
            return 2;
        SourceError replay_error;
        const core::HintVerifyStats hint_stats = core::verifyHints(
            merged, *replay_source, model, &replay_error);
        if (!replay_error.message.empty())
            std::fprintf(stderr, "fix-hints replay: %s\n",
                         replay_error.str().c_str());

        JsonWriter w;
        core::writeFixHintsJson(w, merged, hint_stats, model);
        if (fix_hints_path == "-") {
            std::fwrite(w.str().data(), 1, w.str().size(), stdout);
            std::fputc('\n', stdout);
        } else {
            std::FILE *f = std::fopen(fix_hints_path.c_str(), "w");
            if (!f) {
                std::fprintf(stderr, "cannot write %s\n",
                             fix_hints_path.c_str());
                return 2;
            }
            const bool ok =
                std::fwrite(w.str().data(), 1, w.str().size(), f) ==
                w.str().size();
            std::fclose(f);
            if (!ok)
                return 2;
            if (!quiet) {
                std::printf("fix hints: %zu candidates, %zu verified, "
                            "%zu rejected -> %s\n",
                            hint_stats.candidates, hint_stats.verified,
                            hint_stats.rejected,
                            fix_hints_path.c_str());
            }
        }
    }

    if (!quiet) {
        const std::string display =
            inputs.size() == 1
                ? inputs[0]
                : std::to_string(inputs.size()) + " files";
        std::printf("%s: %zu traces, %zu PM operations, model=%s, "
                    "%zu workers\n",
                    display.c_str(), trace_count, total_ops,
                    core::makeModel(model)->name(), pool_workers);
        if (summary) {
            std::printf("%s", merged.summaryStr().c_str());
        } else {
            std::printf("%zu FAIL, %zu WARN\n", merged.failCount(),
                        merged.warnCount());
            size_t shown = 0;
            for (const auto &finding : merged.findings()) {
                if (shown++ == max_findings) {
                    std::printf("  ... (%zu more; use --summary)\n",
                                merged.findings().size() - shown + 1);
                    break;
                }
                std::printf("  %s\n", finding.str().c_str());
            }
        }
    }
    // An explicit --stats request wins over --quiet.
    if (show_stats) {
        if (source->sourceCount() > 1)
            printSourceStats(*source);
        std::printf("%s", stats.str().c_str());
        printOracleStats();
    }
    // The machine-readable outputs are files; they are written
    // whatever the stdout flags say.
    if (!metrics_path.empty()) {
        std::string joined;
        for (const auto &input : inputs) {
            if (!joined.empty())
                joined += ",";
            joined += input;
        }
        if (!writeMetricsJson(metrics_path, joined,
                              core::makeModel(model)->name(),
                              trace_count, total_ops, pool_workers,
                              source->sourceCount(), merged, stats))
            return 2;
    }
    if (!trace_events_path.empty()) {
        std::string error;
        if (!obs::Telemetry::instance().writeTraceEventsFile(
                trace_events_path, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 2;
        }
    }

    const int exit_code = merged.failCount() == 0 ? 0 : 1;

    // Findings go out after the fix-hints replay so hint_verified is
    // final; run_stop closes the audit trail.
    emitFindingEvents(service.eventLog(), merged);
    service.eventLog().emit(
        obs::EventSeverity::Info, "run_stop", [&](JsonWriter &w) {
            w.member("traces", trace_count);
            w.member("ops", total_ops);
            w.member("fail", merged.failCount());
            w.member("warn", merged.warnCount());
            w.member("exit_code", exit_code);
        });

    // --metrics-linger: keep answering scrapes with the frozen final
    // sample until somebody tells us to go (the CI smoke leg curls
    // here, then SIGTERMs). The verdict exit code is preserved.
    if (metrics_linger && service.port() != 0) {
        std::signal(SIGINT, lingerSignalHandler);
        std::signal(SIGTERM, lingerSignalHandler);
        std::fprintf(stderr,
                     "pmtest: run complete; metrics linger on "
                     "http://127.0.0.1:%u (SIGINT/SIGTERM to exit)\n",
                     static_cast<unsigned>(service.port()));
        while (!g_linger_stop)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
    }
    service.stop();
    return exit_code;
}
