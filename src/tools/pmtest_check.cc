/**
 * @file
 * pmtest_check: command-line offline checker. Loads a trace file
 * written with trace_io (see examples/offline_check.cpp for the
 * record side) and runs the checking engine over it.
 *
 * Usage:
 *   pmtest_check [--model=x86|hops|arm] [--summary] [--quiet]
 *                [--max-findings=N] [--workers=N] [--queue-cap=N]
 *                [--batch=N] [--stats] <trace-file>
 *
 * --workers=N checks the loaded traces on an engine pool instead of
 * a single inline engine (the paper's decoupled mode); --queue-cap
 * bounds the per-worker queues, --batch submits traces N at a time,
 * and --stats prints the pool's dispatch statistics (queue depths,
 * steals, producer stall time) after the run.
 *
 * Exit status: 0 when no FAIL findings, 1 when crash-consistency
 * bugs were found, 2 on usage/input errors.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "core/engine_pool.hh"
#include "trace/trace_io.hh"

namespace
{

using namespace pmtest;

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--model=x86|hops|arm] [--summary] [--quiet]\n"
        "          [--max-findings=N] [--workers=N] [--queue-cap=N]\n"
        "          [--batch=N] [--stats] <trace-file>\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    core::ModelKind model = core::ModelKind::X86;
    bool summary = false;
    bool quiet = false;
    bool show_stats = false;
    size_t max_findings = 50;
    size_t workers = 0;
    size_t queue_cap = 0;
    size_t batch = 1;
    std::string path;

    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg.rfind("--model=", 0) == 0) {
            const std::string name = arg.substr(8);
            if (name == "x86") {
                model = core::ModelKind::X86;
            } else if (name == "hops") {
                model = core::ModelKind::Hops;
            } else if (name == "arm") {
                model = core::ModelKind::Arm;
            } else {
                std::fprintf(stderr, "unknown model '%s'\n",
                             name.c_str());
                return 2;
            }
        } else if (arg == "--summary") {
            summary = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg.rfind("--max-findings=", 0) == 0) {
            max_findings =
                static_cast<size_t>(std::atol(arg.c_str() + 15));
        } else if (arg.rfind("--workers=", 0) == 0) {
            workers = static_cast<size_t>(std::atol(arg.c_str() + 10));
        } else if (arg.rfind("--queue-cap=", 0) == 0) {
            queue_cap =
                static_cast<size_t>(std::atol(arg.c_str() + 12));
        } else if (arg.rfind("--batch=", 0) == 0) {
            batch = static_cast<size_t>(std::atol(arg.c_str() + 8));
            if (batch == 0)
                batch = 1;
        } else if (arg == "--stats") {
            show_stats = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (path.empty()) {
        usage(argv[0]);
        return 2;
    }

    bool ok = false;
    // Not const: the loaded traces are moved into the pool below —
    // a const bundle would silently copy every op array instead.
    auto bundle = loadTracesFromFile(path, &ok);
    if (!ok) {
        std::fprintf(stderr, "%s: not a readable PMTest trace file\n",
                     path.c_str());
        return 2;
    }

    core::PoolOptions options;
    options.model = model;
    options.workers = workers;
    options.queueCapacity = queue_cap;
    core::EnginePool pool(options);

    const size_t trace_count = bundle.traces.size();
    size_t total_ops = 0;
    for (const auto &trace : bundle.traces)
        total_ops += trace.size();
    std::vector<Trace> pending;
    pending.reserve(batch);
    for (auto &trace : bundle.traces) {
        pending.push_back(std::move(trace));
        if (pending.size() >= batch) {
            pool.submitBatch(std::move(pending));
            pending.clear();
        }
    }
    pool.submitBatch(std::move(pending));
    const core::Report merged = pool.results();
    const core::PoolStats stats = pool.stats();

    if (!quiet) {
        std::printf("%s: %zu traces, %zu PM operations, model=%s, "
                    "%zu workers\n",
                    path.c_str(), trace_count, total_ops,
                    core::makeModel(model)->name(),
                    pool.workerCount());
        if (summary) {
            std::printf("%s", merged.summaryStr().c_str());
        } else {
            std::printf("%zu FAIL, %zu WARN\n", merged.failCount(),
                        merged.warnCount());
            size_t shown = 0;
            for (const auto &finding : merged.findings()) {
                if (shown++ == max_findings) {
                    std::printf("  ... (%zu more; use --summary)\n",
                                merged.findings().size() - shown + 1);
                    break;
                }
                std::printf("  %s\n", finding.str().c_str());
            }
        }
    }
    // An explicit --stats request wins over --quiet.
    if (show_stats)
        std::printf("%s", stats.str().c_str());
    return merged.failCount() == 0 ? 0 : 1;
}
