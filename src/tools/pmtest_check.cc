/**
 * @file
 * pmtest_check: command-line offline checker. A thin flag-parsing
 * shell: every flag lands in a core::CheckPlan, and the whole run
 * lifecycle — sources, ingest, engine pool, canonical report, every
 * output surface — lives in core::CheckSession (src/core/
 * check_session.hh, where the behavior is documented).
 *
 * Run shapes:
 *  - plain: check the inputs in this process (the historical tool);
 *  - `--worker=i/N --report-out=FILE`: run shard i of an N-way split
 *    and emit a `pmtest-report-v1` wire report instead of stdout;
 *  - `--distribute=N`: fork N workers, gather and merge their wire
 *    reports, and print exactly what the sequential run prints.
 *
 * Exit status: 0 when no FAIL findings, 1 when crash-consistency
 * bugs were found, 2 on usage/input errors (malformed flags,
 * unreadable or duplicate inputs, decode failures, failed workers).
 */

#include <charconv>
#include <cstdio>
#include <string>
#include <vector>

#include "core/check_session.hh"
#include "util/cli.hh"

namespace
{

using namespace pmtest;
using util::CliParser;
using util::CliStatus;

/** Parse the "--worker=i/N" shard spec into the plan. */
bool
parseWorkerSpec(const std::string &spec, core::CheckPlan *plan)
{
    const size_t slash = spec.find('/');
    if (slash == std::string::npos)
        return false;
    uint32_t index = 0, count = 0;
    const char *ibegin = spec.c_str();
    const char *iend = ibegin + slash;
    const char *cbegin = iend + 1;
    const char *cend = spec.c_str() + spec.size();
    const auto [iptr, iec] = std::from_chars(ibegin, iend, index);
    const auto [cptr, cec] = std::from_chars(cbegin, cend, count);
    if (iec != std::errc{} || iptr != iend || cec != std::errc{} ||
        cptr != cend || cbegin == cend || count == 0)
        return false;
    plan->workerIndex = index;
    plan->workerCount = count;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    core::CheckPlan plan;
    int model = static_cast<int>(core::ModelKind::X86);
    int affinity =
        static_cast<int>(core::IngestOptions::Affinity::Auto);
    int ingest = static_cast<int>(IngestMode::Auto);
    size_t metrics_port = static_cast<size_t>(-1);
    std::string worker_spec;

    CliParser cli("pmtest_check", "<trace-file-or-dir>...");
    cli.addChoice("--model", &model,
                  {{"x86", static_cast<int>(core::ModelKind::X86)},
                   {"hops", static_cast<int>(core::ModelKind::Hops)},
                   {"arm", static_cast<int>(core::ModelKind::Arm)}},
                  "persistency model to check against (default x86)");
    cli.addFlag("--summary", &plan.summary,
                "one aggregated line per distinct finding");
    cli.addFlag("--quiet", &plan.quiet,
                "suppress the stdout report (beats --summary)");
    cli.addSize("--max-findings", &plan.maxFindings,
                "findings listed before truncating (default 50)");
    cli.addSize("--workers", &plan.workers,
                "engine pool workers (0 = inline checking)");
    cli.addSize("--queue-cap", &plan.queueCap,
                "per-worker queue bound (0 = default)");
    cli.addSize("--batch", &plan.batch,
                "traces submitted to the pool at a time", 1);
    cli.addChoice("--ingest", &ingest,
                  {{"auto", static_cast<int>(IngestMode::Auto)},
                   {"mmap", static_cast<int>(IngestMode::Mmap)},
                   {"stream", static_cast<int>(IngestMode::Stream)}},
                  "reader selection (default auto: v2 index when "
                  "present)");
    cli.addSize("--decoders", &plan.decoders,
                "decoder threads feeding the pool", 1);
    cli.addSize("--shards", &plan.shards,
                "split one v2 input into N index slices", 1);
    cli.addChoice(
        "--affinity", &affinity,
        {{"auto",
          static_cast<int>(core::IngestOptions::Affinity::Auto)},
         {"pinned",
          static_cast<int>(core::IngestOptions::Affinity::Pinned)},
         {"shared",
          static_cast<int>(core::IngestOptions::Affinity::Shared)}},
        "decoder-to-engine placement for multi-source inputs");
    cli.addFlag("--stats", &plan.showStats,
                "print dispatch/ingest counters (wins over --quiet)");
    cli.addString("--metrics-json", &plan.metricsJsonPath,
                  "write the pmtest-metrics-v1 snapshot (\"-\" = "
                  "stdout)");
    cli.addString("--trace-events", &plan.traceEventsPath,
                  "write a Chrome trace-event timeline");
    cli.addSize("--span-sample", &plan.spanSample,
                "keep every Nth span per thread (default 1 = all)", 1);
    cli.addOptionalString("--fix-hints", &plan.fixHints,
                          &plan.fixHintsPath,
                          "verify fix hints; write pmtest-fixhints-v1 "
                          "(default stdout)");
    cli.addSize("--metrics-port", &metrics_port,
                "serve /metrics on 127.0.0.1:N (0 = ephemeral)", 0,
                65535);
    cli.addSize("--metrics-interval-ms", &plan.metricsIntervalMs,
                "publisher sampling period (default 1000)", 1);
    cli.addString("--event-log", &plan.eventLogPath,
                  "append structured JSONL events (\"-\" = stdout)");
    cli.addFlag("--progress", &plan.progress,
                "live TTY progress line on stderr");
    cli.addFlag("--metrics-linger", &plan.metricsLinger,
                "keep the scrape endpoint up after the run");
    cli.addString("--worker", &worker_spec,
                  "run shard i of N (\"i/N\"); needs --report-out");
    cli.addSize("--distribute", &plan.distribute,
                "fork N workers and merge their reports", 1);
    cli.addString("--report-out", &plan.reportOutPath,
                  "write the pmtest-report-v1 wire report to FILE");
    cli.positionalCount(1);

    const CliStatus status = cli.parse(argc, argv, &plan.inputArgs);
    if (status != CliStatus::Ok)
        return util::cliExitCode(status);
    plan.model = static_cast<core::ModelKind>(model);
    plan.affinity =
        static_cast<core::IngestOptions::Affinity>(affinity);
    plan.ingestMode = static_cast<IngestMode>(ingest);
    if (metrics_port != static_cast<size_t>(-1))
        plan.metricsPort = static_cast<int32_t>(metrics_port);
    if (!worker_spec.empty() && !parseWorkerSpec(worker_spec, &plan))
        return util::cliExitCode(
            cli.usageError("invalid value for --worker: '" +
                           worker_spec + "' (want i/N)"));

    std::string error;
    bool usage_hint = false;
    if (!plan.finalize(&error, &usage_hint)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        if (usage_hint)
            cli.printUsage(stderr);
        return 2;
    }
    return core::runCheckTool(plan);
}
