/**
 * @file
 * pmtest_check: command-line offline checker. Loads a trace file
 * written with trace_io (see examples/offline_check.cpp for the
 * record side) and runs the checking engine over it.
 *
 * Usage:
 *   pmtest_check [--model=x86|hops|arm] [--summary] [--quiet]
 *                [--max-findings=N] <trace-file>
 *
 * Exit status: 0 when no FAIL findings, 1 when crash-consistency
 * bugs were found, 2 on usage/input errors.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/engine.hh"
#include "trace/trace_io.hh"

namespace
{

using namespace pmtest;

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--model=x86|hops|arm] [--summary] [--quiet]\n"
        "          [--max-findings=N] <trace-file>\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    core::ModelKind model = core::ModelKind::X86;
    bool summary = false;
    bool quiet = false;
    size_t max_findings = 50;
    std::string path;

    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg.rfind("--model=", 0) == 0) {
            const std::string name = arg.substr(8);
            if (name == "x86") {
                model = core::ModelKind::X86;
            } else if (name == "hops") {
                model = core::ModelKind::Hops;
            } else if (name == "arm") {
                model = core::ModelKind::Arm;
            } else {
                std::fprintf(stderr, "unknown model '%s'\n",
                             name.c_str());
                return 2;
            }
        } else if (arg == "--summary") {
            summary = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg.rfind("--max-findings=", 0) == 0) {
            max_findings =
                static_cast<size_t>(std::atol(arg.c_str() + 15));
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (path.empty()) {
        usage(argv[0]);
        return 2;
    }

    bool ok = false;
    const auto bundle = loadTracesFromFile(path, &ok);
    if (!ok) {
        std::fprintf(stderr, "%s: not a readable PMTest trace file\n",
                     path.c_str());
        return 2;
    }

    core::Engine engine(model);
    core::Report merged;
    size_t total_ops = 0;
    for (const auto &trace : bundle.traces) {
        merged.merge(engine.check(trace));
        total_ops += trace.size();
    }

    if (!quiet) {
        std::printf("%s: %zu traces, %zu PM operations, model=%s\n",
                    path.c_str(), bundle.traces.size(), total_ops,
                    engine.model().name());
        if (summary) {
            std::printf("%s", merged.summaryStr().c_str());
        } else {
            std::printf("%zu FAIL, %zu WARN\n", merged.failCount(),
                        merged.warnCount());
            size_t shown = 0;
            for (const auto &finding : merged.findings()) {
                if (shown++ == max_findings) {
                    std::printf("  ... (%zu more; use --summary)\n",
                                merged.findings().size() - shown + 1);
                    break;
                }
                std::printf("  %s\n", finding.str().c_str());
            }
        }
    }
    return merged.failCount() == 0 ? 0 : 1;
}
