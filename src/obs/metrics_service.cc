#include "obs/metrics_service.hh"

#include <cstdio>

namespace pmtest::obs
{

bool
MetricsService::start(ServiceOptions options, std::string *error)
{
    stop();

    // Event-log path validation is configuration-independent: the
    // exit-2 contract for unwritable paths must not depend on how the
    // binary was compiled.
    if (!options.eventLogPath.empty() &&
        !eventLog_.open(options.eventLogPath, error))
        return false;

    const bool wants_live = options.metricsPort >= 0 ||
                            options.progress;

#if PMTEST_TELEMETRY_ENABLED
    if (wants_live) {
        PublisherOptions po;
        po.intervalMs = options.intervalMs;
        po.stallTicks = options.stallTicks;
        po.tool = options.tool;
        po.progress = options.progress;
        po.eventLog = eventLog_.active() ? &eventLog_ : nullptr;
        po.poolSampler = std::move(options.poolSampler);
        po.ingestSampler = std::move(options.ingestSampler);
        publisher_ = std::make_unique<MetricsPublisher>(std::move(po));

        if (options.metricsPort >= 0) {
            server_ = std::make_unique<MetricsHttpServer>();
            MetricsPublisher *pub = publisher_.get();
            auto handler = [pub](const std::string &path,
                                 std::string *body,
                                 std::string *content_type) {
                if (path == "/metrics") {
                    *body = pub->renderPrometheus();
                    *content_type =
                        "text/plain; version=0.0.4; charset=utf-8";
                    count(Counter::MetricsScrapes);
                    return true;
                }
                if (path == "/metrics.json") {
                    *body = pub->renderJson();
                    *content_type = "application/json";
                    count(Counter::MetricsScrapes);
                    return true;
                }
                return false;
            };
            if (!server_->start(
                    static_cast<uint16_t>(options.metricsPort),
                    std::move(handler), error)) {
                publisher_.reset();
                server_.reset();
                eventLog_.close();
                return false;
            }
            std::fprintf(stderr, "pmtest: serving metrics on "
                                 "http://127.0.0.1:%u/metrics\n",
                         static_cast<unsigned>(server_->port()));
        }
        publisher_->start();
    }
#else
    if (wants_live)
        std::fprintf(stderr,
                     "pmtest: live metrics compiled out "
                     "(PMTEST_TELEMETRY=OFF); --metrics-port/"
                     "--progress ignored\n");
#endif
    return true;
}

void
MetricsService::freeze()
{
    if (publisher_)
        publisher_->freeze();
}

void
MetricsService::stop()
{
    if (server_) {
        server_->stop();
        server_.reset();
    }
    if (publisher_) {
        publisher_->stop();
        publisher_.reset();
    }
    eventLog_.close();
}

} // namespace pmtest::obs
