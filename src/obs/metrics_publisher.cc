#include "obs/metrics_publisher.hh"

#include <cstdio>

#if defined(__GLIBC__)
#include <malloc.h>
#endif
#include <unistd.h>

#include "util/json.hh"
#include "util/logging.hh"

namespace pmtest::obs
{

namespace
{

/** Escape a Prometheus label value (backslash, quote, newline). */
std::string
promEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\' || c == '"')
            out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    return out;
}

void
promLine(std::string &out, const std::string &name, uint64_t value)
{
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
}

void
promLine(std::string &out, const std::string &name, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out += name;
    out += ' ';
    out += buf;
    out += '\n';
}

/** Current resident set size in bytes, from /proc/self/statm. */
uint64_t
sampleRssBytes()
{
    std::FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0;
    unsigned long long total = 0, resident = 0;
    const int n = std::fscanf(f, "%llu %llu", &total, &resident);
    std::fclose(f);
    if (n != 2)
        return 0;
    return static_cast<uint64_t>(resident) *
           static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
}

/** Heap bytes currently held from the allocator, when knowable. */
uint64_t
sampleHeapBytes()
{
#if defined(__GLIBC__) && \
    (__GLIBC__ > 2 || (__GLIBC__ == 2 && __GLIBC_MINOR__ >= 33))
    const struct mallinfo2 mi = ::mallinfo2();
    return static_cast<uint64_t>(mi.uordblks) +
           static_cast<uint64_t>(mi.hblkhd);
#else
    return 0;
#endif
}

} // namespace

uint64_t
PoolGauges::queuedTraces() const
{
    uint64_t sum = 0;
    for (uint64_t d : queueDepths)
        sum += d;
    return sum;
}

uint64_t
IngestGauges::tracesTotal() const
{
    uint64_t sum = 0;
    for (const auto &s : sources)
        if (s.tracesTotalKnown)
            sum += s.tracesTotal;
    return sum;
}

bool
IngestGauges::tracesTotalKnown() const
{
    if (sources.empty())
        return false;
    for (const auto &s : sources)
        if (!s.tracesTotalKnown)
            return false;
    return true;
}

uint64_t
IngestGauges::bytesTotal() const
{
    uint64_t sum = 0;
    for (const auto &s : sources)
        sum += s.bytesTotal;
    return sum;
}

uint64_t
IngestGauges::tracesConsumed() const
{
    uint64_t sum = 0;
    for (const auto &s : sources)
        sum += s.tracesConsumed;
    return sum;
}

uint64_t
IngestGauges::bytesConsumed() const
{
    uint64_t sum = 0;
    for (const auto &s : sources)
        sum += s.bytesConsumed;
    return sum;
}

size_t
IngestGauges::drainedSources() const
{
    size_t n = 0;
    for (const auto &s : sources)
        if (s.drained)
            n++;
    return n;
}

MetricsPublisher::MetricsPublisher(PublisherOptions options)
    : options_(std::move(options))
{
}

MetricsPublisher::~MetricsPublisher()
{
    stop();
}

void
MetricsPublisher::start()
{
    if (running_)
        return;
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        stopRequested_ = false;
    }
    running_ = true;
    thread_ = std::thread([this] {
        while (true) {
            {
                std::unique_lock<std::mutex> lock(wakeMutex_);
                wakeCv_.wait_for(
                    lock, std::chrono::milliseconds(options_.intervalMs),
                    [this] { return stopRequested_; });
                if (stopRequested_)
                    return;
            }
            tick();
        }
    });
}

void
MetricsPublisher::stop()
{
    if (!running_)
        return;
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        stopRequested_ = true;
    }
    wakeCv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    running_ = false;
}

void
MetricsPublisher::freeze()
{
    stop();
    tick(); // final sample while the sampled objects are still alive
    if (options_.progress)
        std::fputc('\n', stderr); // leave the progress line intact
    options_.poolSampler = nullptr;
    options_.ingestSampler = nullptr;
}

GaugeSample
MetricsPublisher::takeSample()
{
    GaugeSample sample;
    sample.metrics = Telemetry::instance().metrics();
    if (options_.poolSampler)
        sample.pool = options_.poolSampler();
    if (options_.ingestSampler)
        sample.ingest = options_.ingestSampler();
    sample.rssBytes = sampleRssBytes();
    sample.heapBytes = sampleHeapBytes();
    return sample;
}

void
MetricsPublisher::tick()
{
    GaugeSample sample = takeSample();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (hasPrev_) {
            const uint64_t dt_ns =
                sample.metrics.snapshotNs > latest_.metrics.snapshotNs
                    ? sample.metrics.snapshotNs -
                          latest_.metrics.snapshotNs
                    : 0;
            if (dt_ns > 0) {
                const double dt = dt_ns * 1e-9;
                auto rate = [&](uint64_t now, uint64_t before) {
                    return now > before ? (now - before) / dt : 0.0;
                };
                sample.tracesCheckedPerSec =
                    rate(sample.metrics.counter(Counter::TracesChecked),
                         latest_.metrics.counter(
                             Counter::TracesChecked));
                sample.opsCheckedPerSec =
                    rate(sample.metrics.counter(Counter::OpsChecked),
                         latest_.metrics.counter(Counter::OpsChecked));
                sample.tracesDecodedPerSec =
                    rate(sample.metrics.counter(Counter::TracesDecoded),
                         latest_.metrics.counter(
                             Counter::TracesDecoded));
                sample.bytesConsumedPerSec =
                    rate(sample.ingest.bytesConsumed(),
                         latest_.ingest.bytesConsumed());
            }
        }
    }

    runWatchdog(sample);
    emitSourceEvents(sample);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        hasPrev_ = true;
        latest_ = sample;
    }

    if (options_.progress)
        paintProgress(sample);
}

void
MetricsPublisher::runWatchdog(const GaugeSample &sample)
{
    // Progress signature: any of these moving means the pipeline is
    // alive. Gauge-only progress (queue rebalancing) deliberately
    // does not count — shuffling queued work is not progress.
    const uint64_t sig =
        sample.metrics.counter(Counter::TracesDecoded) +
        sample.metrics.counter(Counter::TracesChecked) +
        sample.metrics.counter(Counter::ReportsMerged) +
        sample.pool.tracesCompleted + sample.ingest.tracesConsumed() +
        sample.ingest.bytesConsumed();

    const bool ingest_outstanding =
        sample.ingest.valid && !sample.ingest.done &&
        sample.ingest.drainedSources() < sample.ingest.sources.size();
    const bool pool_outstanding =
        sample.pool.valid && sample.pool.inFlight() > 0;
    const bool outstanding = ingest_outstanding || pool_outstanding;

    const bool first_tick = !sigValid_;
    sigValid_ = true;
    if (first_tick || sig != lastProgressSig_ || !outstanding) {
        lastProgressSig_ = sig;
        staleTicks_ = 0;
        stallActive_ = false;
        return;
    }

    staleTicks_++;
    if (staleTicks_ < options_.stallTicks || stallActive_)
        return;
    stallActive_ = true;

    const char *stage = pool_outstanding ? "engine.check"
                                         : "ingest.decode";
    warn("metrics watchdog: no pipeline progress for " +
         std::to_string(staleTicks_) + " ticks (" +
         std::to_string(staleTicks_ * options_.intervalMs) + " ms): " +
         stage + " stalled with " +
         std::to_string(sample.pool.inFlight()) +
         " traces in flight, " +
         std::to_string(sample.ingest.drainedSources()) + "/" +
         std::to_string(sample.ingest.sources.size()) +
         " sources drained");
    count(Counter::WatchdogStalls);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        watchdogFired_++;
    }
    if (options_.eventLog) {
        options_.eventLog->emit(
            EventSeverity::Warn, "watchdog_stall", [&](JsonWriter &w) {
                w.member("stage", stage);
                w.member("stale_ticks",
                         static_cast<uint64_t>(staleTicks_));
                w.member("stale_ms",
                         staleTicks_ * options_.intervalMs);
                w.member("in_flight", sample.pool.inFlight());
                w.member("queued", sample.pool.queuedTraces());
                w.member("sources_drained",
                         static_cast<uint64_t>(
                             sample.ingest.drainedSources()));
                w.member("sources",
                         static_cast<uint64_t>(
                             sample.ingest.sources.size()));
            });
    }
}

void
MetricsPublisher::emitSourceEvents(const GaugeSample &sample)
{
    if (!options_.eventLog || !sample.ingest.valid)
        return;
    const auto &sources = sample.ingest.sources;
    if (sourceDrained_.size() != sources.size())
        sourceDrained_.assign(sources.size(), false);
    for (size_t i = 0; i < sources.size(); i++) {
        if (!sources[i].drained || sourceDrained_[i])
            continue;
        sourceDrained_[i] = true;
        options_.eventLog->emit(
            EventSeverity::Info, "source_eof", [&](JsonWriter &w) {
                w.member("source", sources[i].label);
                w.member("traces_consumed", sources[i].tracesConsumed);
                w.member("bytes_consumed", sources[i].bytesConsumed);
            });
    }
}

void
MetricsPublisher::paintProgress(const GaugeSample &sample) const
{
    std::string line = "\r[" + options_.tool + "]";
    const uint64_t consumed = sample.ingest.tracesConsumed();
    if (sample.ingest.valid && sample.ingest.tracesTotalKnown()) {
        const uint64_t total = sample.ingest.tracesTotal();
        const unsigned pct =
            total ? static_cast<unsigned>(consumed * 100 / total) : 100;
        line += " " + std::to_string(consumed) + "/" +
                std::to_string(total) + " traces (" +
                std::to_string(pct) + "%)";
    } else if (sample.ingest.valid) {
        line += " " + std::to_string(consumed) + " traces";
    }
    if (sample.pool.valid) {
        line += " | in-flight " + std::to_string(sample.pool.inFlight());
        line += " | queued " +
                std::to_string(sample.pool.queuedTraces());
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), " | %.0f tr/s",
                  sample.tracesCheckedPerSec);
    line += buf;
    line += " | rss " +
            std::to_string(sample.rssBytes / (1024 * 1024)) + " MiB";
    line += "   "; // wipe leftovers from a longer previous paint
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

GaugeSample
MetricsPublisher::latest() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return latest_;
}

uint64_t
MetricsPublisher::watchdogFired() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return watchdogFired_;
}

std::string
MetricsPublisher::renderPrometheus() const
{
    const GaugeSample sample = latest();
    const MetricsSnapshot &m = sample.metrics;
    std::string out;
    out.reserve(4096);

    out += "# pmtest live metrics (" + options_.tool + ")\n";
    promLine(out, "pmtest_snapshot_nanoseconds", m.snapshotNs);

    for (size_t i = 0; i < kCounterCount; i++) {
        const std::string name =
            std::string("pmtest_") +
            counterName(static_cast<Counter>(i)) + "_total";
        out += "# TYPE " + name + " counter\n";
        promLine(out, name, m.counters[i]);
    }

    promLine(out, "pmtest_spans_recorded_total", m.spansRecorded);
    promLine(out, "pmtest_spans_dropped_total", m.spansDropped);
    promLine(out, "pmtest_telemetry_threads",
             static_cast<uint64_t>(m.threads));

    out += "# TYPE pmtest_stage_latency_nanoseconds summary\n";
    for (size_t i = 0; i < kStageCount; i++) {
        const HistogramSnapshot &h = m.stages[i];
        if (h.count == 0)
            continue;
        const std::string label =
            std::string("{stage=\"") +
            promEscape(stageName(static_cast<Stage>(i))) + "\"";
        for (double q : {0.5, 0.95, 0.99}) {
            char qbuf[32];
            std::snprintf(qbuf, sizeof(qbuf), ",quantile=\"%g\"}", q);
            promLine(out,
                     "pmtest_stage_latency_nanoseconds" + label + qbuf,
                     h.quantileNs(q));
        }
        promLine(out,
                 "pmtest_stage_latency_nanoseconds_sum" + label + "}",
                 h.sum);
        promLine(out,
                 "pmtest_stage_latency_nanoseconds_count" + label + "}",
                 h.count);
    }

    if (sample.pool.valid) {
        promLine(out, "pmtest_pool_inflight_traces",
                 sample.pool.inFlight());
        promLine(out, "pmtest_pool_queued_traces",
                 sample.pool.queuedTraces());
        promLine(out, "pmtest_pool_traces_submitted",
                 sample.pool.tracesSubmitted);
        promLine(out, "pmtest_pool_traces_completed",
                 sample.pool.tracesCompleted);
        for (size_t i = 0; i < sample.pool.queueDepths.size(); i++)
            promLine(out,
                     "pmtest_worker_queue_depth{worker=\"" +
                         std::to_string(i) + "\"}",
                     sample.pool.queueDepths[i]);
    }

    if (sample.ingest.valid) {
        promLine(out, "pmtest_ingest_traces_consumed",
                 sample.ingest.tracesConsumed());
        if (sample.ingest.tracesTotalKnown())
            promLine(out, "pmtest_ingest_traces_total",
                     sample.ingest.tracesTotal());
        promLine(out, "pmtest_ingest_bytes_consumed",
                 sample.ingest.bytesConsumed());
        promLine(out, "pmtest_ingest_bytes_total",
                 sample.ingest.bytesTotal());
        promLine(out, "pmtest_ingest_sources",
                 static_cast<uint64_t>(sample.ingest.sources.size()));
        promLine(out, "pmtest_ingest_sources_drained",
                 static_cast<uint64_t>(sample.ingest.drainedSources()));
        promLine(out, "pmtest_ingest_done",
                 static_cast<uint64_t>(sample.ingest.done ? 1 : 0));
        for (const auto &s : sample.ingest.sources) {
            const std::string label =
                "{source=\"" + promEscape(s.label) + "\"}";
            promLine(out, "pmtest_source_traces_consumed" + label,
                     s.tracesConsumed);
            promLine(out, "pmtest_source_bytes_consumed" + label,
                     s.bytesConsumed);
        }
    }

    promLine(out, "pmtest_process_resident_bytes", sample.rssBytes);
    promLine(out, "pmtest_process_heap_bytes", sample.heapBytes);

    promLine(out, "pmtest_traces_checked_per_second",
             sample.tracesCheckedPerSec);
    promLine(out, "pmtest_ops_checked_per_second",
             sample.opsCheckedPerSec);
    promLine(out, "pmtest_traces_decoded_per_second",
             sample.tracesDecodedPerSec);
    promLine(out, "pmtest_ingest_bytes_per_second",
             sample.bytesConsumedPerSec);
    return out;
}

std::string
MetricsPublisher::renderJson() const
{
    const GaugeSample sample = latest();
    JsonWriter w;
    w.beginObject();
    w.member("schema", "pmtest-metrics-v1");
    w.member("tool", options_.tool);
    w.member("live", true);
    w.member("snapshot_ns", sample.metrics.snapshotNs);

    w.key("gauges").beginObject();
    w.key("pool").beginObject();
    w.member("valid", sample.pool.valid);
    w.member("in_flight", sample.pool.inFlight());
    w.member("queued", sample.pool.queuedTraces());
    w.member("traces_submitted", sample.pool.tracesSubmitted);
    w.member("traces_completed", sample.pool.tracesCompleted);
    w.key("queue_depths").beginArray();
    for (uint64_t d : sample.pool.queueDepths)
        w.value(d);
    w.endArray();
    w.endObject();

    w.key("ingest").beginObject();
    w.member("valid", sample.ingest.valid);
    w.member("done", sample.ingest.done);
    w.member("traces_consumed", sample.ingest.tracesConsumed());
    w.member("traces_total", sample.ingest.tracesTotal());
    w.member("traces_total_known", sample.ingest.tracesTotalKnown());
    w.member("bytes_consumed", sample.ingest.bytesConsumed());
    w.member("bytes_total", sample.ingest.bytesTotal());
    w.member("sources_drained",
             static_cast<uint64_t>(sample.ingest.drainedSources()));
    w.key("sources").beginArray();
    for (const auto &s : sample.ingest.sources) {
        w.beginObject();
        w.member("source", s.label);
        w.member("traces_consumed", s.tracesConsumed);
        w.member("traces_total", s.tracesTotal);
        w.member("traces_total_known", s.tracesTotalKnown);
        w.member("bytes_consumed", s.bytesConsumed);
        w.member("bytes_total", s.bytesTotal);
        w.member("drained", s.drained);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("process").beginObject();
    w.member("rss_bytes", sample.rssBytes);
    w.member("heap_bytes", sample.heapBytes);
    w.endObject();
    w.endObject(); // gauges

    w.key("rates").beginObject();
    w.member("traces_checked_per_sec", sample.tracesCheckedPerSec);
    w.member("ops_checked_per_sec", sample.opsCheckedPerSec);
    w.member("traces_decoded_per_sec", sample.tracesDecodedPerSec);
    w.member("bytes_consumed_per_sec", sample.bytesConsumedPerSec);
    w.endObject();

    w.key("telemetry");
    Telemetry::instance().writeMetricsJson(w, sample.metrics);
    w.endObject();
    return w.str();
}

} // namespace pmtest::obs
